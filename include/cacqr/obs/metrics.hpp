#pragma once
/// \file metrics.hpp
/// \brief Process-wide metrics registry: named counters, gauges, and
///        fixed-bucket histograms, snapshot-able as deterministic JSON.
///
/// Instruments register by name on first use and keep the returned
/// pointer (lookup is mutex-guarded, updates are plain atomics -- cache
/// the handle on hot paths).  `Registry::global()` is the process-wide
/// instance the library's own instrumentation (serve admission, rt
/// per-backend traffic, packing-arena growth) reports into; tests can
/// construct private registries.
///
/// `snapshot()` serializes names in sorted order through support::Json,
/// so the same set of instruments always yields the same key sequence
/// (the schema round-trip tests assert this).  With `CACQR_METRICS=
/// <path>` in the environment, the global registry writes a snapshot to
/// that path at process exit (parent process only -- fork()ed transport
/// children exit via _Exit and never double-write).

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cacqr/support/json.hpp"
#include "cacqr/support/math.hpp"

namespace cacqr::obs {

/// Monotone counter.
class Counter {
 public:
  void add(u64 delta = 1) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] u64 value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<u64> v_{0};
};

/// Last-write-wins instantaneous value, with a monotone-max helper for
/// high-water marks.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void record_max(double v) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i],
/// plus one overflow bucket.  Bounds are fixed at registration.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds)
      : bounds_(bounds.begin(), bounds.end()),
        counts_(bounds.size() + 1) {}

  void observe(double x) noexcept {
    std::size_t i = 0;
    while (i < bounds_.size() && x > bounds_[i]) ++i;
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + x,
                                       std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] u64 count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] u64 bucket_count(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<u64>> counts_;  ///< bounds.size() + 1 (overflow)
  std::atomic<u64> count_{0};
  std::atomic<double> sum_{0.0};
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry (leaked singleton: usable from atexit
  /// hooks and late thread exits).
  [[nodiscard]] static Registry& global();

  /// Finds or creates; returned references stay valid for the registry's
  /// lifetime.  A histogram's bounds are taken from the FIRST
  /// registration; later lookups ignore `bounds`.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::span<const double> bounds);

  /// Deterministic snapshot: {"schema_version", "counters", "gauges",
  /// "histograms"}, each instrument map in sorted-name order.
  [[nodiscard]] support::Json snapshot() const;

  /// snapshot() through support::write_json_file (atomic tmp+rename).
  bool write_snapshot(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> hists_;
};

}  // namespace cacqr::obs
