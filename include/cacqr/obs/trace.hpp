#pragma once
/// \file trace.hpp
/// \brief Span tracing: per-rank, per-thread event rings exported as
///        Chrome trace-event / Perfetto JSON.
///
/// Recording is controlled by `CACQR_TRACE=off|rank0|all` (default off)
/// and writes to `CACQR_TRACE_DIR` (default "cacqr_trace").  The hot
/// path when tracing is off is a single relaxed atomic load + branch
/// (`trace_on()`); call sites in hot loops guard their argument
/// construction on it.  Recording NEVER touches numerical state, cost
/// tallies, or the modeled clock, so results are bitwise identical
/// trace-on vs trace-off (tests/obs asserts this end to end).
///
/// Storage: one fixed-capacity event ring per recording thread
/// (`CACQR_TRACE_BUF` events, default 16384).  The owning thread is the
/// only writer and publishes entries with a release store on the count;
/// the exporter reads the published prefix, so flushing from another
/// thread at process exit is race-free.  A full ring drops new events
/// (counted by `dropped_events()`) rather than blocking or reallocating.
///
/// Rank attribution: `set_trace_rank()` tags the calling thread with the
/// SPMD rank whose work it executes (rt sets it around the rank body;
/// lin::parallel workers adopt their owner's tag per region).  Events on
/// untagged threads (rank -1) land on a shared "driver" process row.
/// Under `rank0`, only rank-0 and driver threads record.
///
/// Multi-process runs: every process writes its own
/// `trace-<pid>.json`; the shm launcher registers its children so the
/// parent's exit hook merges itself + children into `trace.json`.  For
/// mpi (no common parent of ours) use `cacqr-trace merge <dir>`.

#include <atomic>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "cacqr/support/math.hpp"

namespace cacqr::obs {

enum class TraceMode { off = 0, rank0 = 1, all = 2 };

namespace detail {
/// -1 until the first query initializes it from CACQR_TRACE.
extern std::atomic<int> g_trace_mode;
int init_trace_mode_from_env();  // throws Error on a malformed value

/// Forked children inherit the parent's ring contents; clearing them
/// prevents the parent's pre-fork events from being exported twice.
void reset_after_fork() noexcept;

/// Parent-side registration of a fork()ed child: its trace file is
/// included in this process's exit-time merge.
void note_forked_child(int pid);
}  // namespace detail

/// Cheap global gate: true when tracing is enabled in any mode.  Guard
/// argument construction at hot call sites on this.
inline bool trace_on() {
  const int v = detail::g_trace_mode.load(std::memory_order_relaxed);
  if (v >= 0) return v > 0;
  return detail::init_trace_mode_from_env() > 0;
}

[[nodiscard]] TraceMode trace_mode();
/// Test/program override of CACQR_TRACE; enabling registers the
/// exit-time flush exactly like the env path.
void set_trace_mode(TraceMode mode);

/// Output directory (CACQR_TRACE_DIR, default "cacqr_trace"); created
/// lazily on first flush.
[[nodiscard]] std::string trace_dir();
void set_trace_dir(const std::string& dir);

/// Tags the calling thread with the rank whose work it runs (-1 = none,
/// the "driver" row).  Returns the previous tag.
int set_trace_rank(int rank) noexcept;
[[nodiscard]] int trace_rank() noexcept;

/// Per-thread ring capacity (events) for rings created AFTER this call;
/// 0 restores the CACQR_TRACE_BUF / default behavior.  Test hook.
void set_trace_buffer_capacity(std::size_t events) noexcept;

/// Events recorded-then-dropped because a ring was full (process-wide).
[[nodiscard]] u64 dropped_events() noexcept;

/// Monotonic nanoseconds (CLOCK_MONOTONIC: comparable across the
/// processes of one machine, which is what makes merged timelines line
/// up under the shm transport).
[[nodiscard]] u64 now_ns() noexcept;

/// One numeric event argument.  `key` must be a string with static
/// storage duration (events store the pointer).
struct Arg {
  const char* key;
  double value;
};

/// Fresh process-unique id for an async (b/e) event pair.
[[nodiscard]] u64 new_async_id() noexcept;

// ----------------------------------------------------------- recording
// `cat` and `name` must have static storage duration.  All recorders are
// no-ops when the mode (and the thread's rank under rank0) says so.

/// Complete span: ph "X", [t0_ns, t1_ns].
void complete(const char* cat, const char* name, u64 t0_ns, u64 t1_ns,
              std::initializer_list<Arg> args = {});
/// Instant event: ph "i" at now.
void instant(const char* cat, const char* name,
             std::initializer_list<Arg> args = {});
/// Counter sample: ph "C" (one named series per `name`).
void counter(const char* cat, const char* name, double value);
/// Nestable async begin/end: ph "b"/"e", paired by (cat, id).
void async_begin(const char* cat, const char* name, u64 id,
                 std::initializer_list<Arg> args = {});
void async_end(const char* cat, const char* name, u64 id,
               std::initializer_list<Arg> args = {});

/// RAII complete-span: stamps t0 at construction (when tracing is on)
/// and records at destruction.  Up to 6 args may be attached.
class SpanScope {
 public:
  SpanScope(const char* cat, const char* name)
      : on_(trace_on()), cat_(cat), name_(name) {
    if (on_) t0_ = now_ns();
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() { close(); }

  /// Attaches an argument to the span (ignored when off or full).
  void arg(const char* key, double value) noexcept {
    if (on_ && nargs_ < 6) args_[nargs_++] = {key, value};
  }

  /// Ends the span now instead of at scope exit (idempotent); lets one
  /// scope hold several consecutive spans.
  void close() noexcept;

 private:
  bool on_;
  const char* cat_;
  const char* name_;
  u64 t0_ = 0;
  int nargs_ = 0;
  Arg args_[6];
};

// ------------------------------------------------------------- export

/// Flushes every ring of THIS process to `trace-<pid>.json` under
/// trace_dir() (schema: {"schema_version", "traceEvents": [...]}).
/// Returns false on I/O failure or when nothing was recorded.
bool write_process_trace();

/// Merges the given trace files' traceEvents into `out_path` (atomic
/// write; unreadable/malformed inputs are skipped, never fatal).
bool merge_trace_files(const std::vector<std::string>& paths,
                       const std::string& out_path);

/// Merges every `trace-*.json` under `dir` into `out_path`.
bool merge_trace_dir(const std::string& dir, const std::string& out_path);

}  // namespace cacqr::obs
