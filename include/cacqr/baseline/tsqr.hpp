#pragma once
/// \file tsqr.hpp
/// \brief TSQR: binary-reduction-tree Householder QR for tall-skinny
///        matrices (Demmel et al., the paper's reference [5]).
///
/// The m x n matrix is row-blocked over P ranks.  The up-sweep QR-factors
/// each local block, then pairwise stacks and factors the n x n R factors
/// up a binary tree (log P rounds of n^2/2-word messages); the down-sweep
/// propagates n x n "contribution" blocks back down the tree, and each
/// leaf applies its stored local Householder factors to recover its rows
/// of explicit Q.  Costs ~2 log P alpha + ~2 n^2 log P beta +
/// (2mn^2/P + O(n^3 log P)) gamma: latency-optimal like CholeskyQR2, but
/// with n^2 log P words versus CQR2's n^2, and no 3D generalization --
/// the niche CA-CQR2 fills (paper Sections I-II).

#include "cacqr/dist/dist_matrix.hpp"

namespace cacqr::baseline {

struct TsqrResult {
  dist::DistMatrix q;  ///< distributed like the input (rows cyclic over P)
  lin::Matrix r;       ///< n x n upper triangular, replicated on all ranks
};

/// Factors a row-distributed matrix (layout: row_procs == comm.size(),
/// col_procs == 1, my_row == comm.rank()).  Requires P a power of two and
/// local blocks with at least n rows (m/P >= n).
[[nodiscard]] TsqrResult tsqr(const dist::DistMatrix& a,
                              const rt::Comm& comm);

}  // namespace cacqr::baseline
