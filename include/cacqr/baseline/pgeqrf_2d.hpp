#pragma once
/// \file pgeqrf_2d.hpp
/// \brief ScaLAPACK-PGEQRF-style 2D block-cyclic Householder QR: the
///        baseline the paper's evaluation compares CA-CQR2 against.
///
/// The algorithm reproduces ScaLAPACK's communication structure:
///   - panel factorization: for each of the b columns, one 2-word
///     allreduce over the process column (norm + diagonal element) and
///     one <= b-word allreduce (reflector application), so
///     alpha ~ 4 n log pr on the critical path -- the O(n log P)
///     synchronization that CholeskyQR2 removes;
///   - compact-WY T formation: one b^2-word allreduce per panel;
///   - a (V, T) broadcast along the process row and a blocked trailing
///     update with one b x n_loc allreduce per panel:
///     beta ~ (mn/pr + n^2/pc) modulo log factors, the classic 2D QR cost.
///
/// Explicit Q formation (PDORGQR-style) applies the stored panels to a
/// distributed identity in reverse.

#include "cacqr/baseline/block_cyclic.hpp"

namespace cacqr::baseline {

struct Pgeqrf2dResult {
  BlockCyclicMatrix q;  ///< m x n explicit orthonormal factor
  BlockCyclicMatrix r;  ///< n x n upper triangular
};

struct Pgeqrf2dOptions {
  /// Flip signs so diag(R) >= 0 (makes the factorization unique for
  /// testing; costs one extra n-word allreduce).  ScaLAPACK itself does
  /// not normalize -- disable for cost measurements.
  bool normalize_signs = true;
};

/// Factors a block-cyclic matrix (panel width == layout block size, as in
/// ScaLAPACK).  Requires m >= n.
[[nodiscard]] Pgeqrf2dResult pgeqrf_2d(const BlockCyclicMatrix& a,
                                       const ProcGrid2d& g,
                                       Pgeqrf2dOptions opts = {});

}  // namespace cacqr::baseline
