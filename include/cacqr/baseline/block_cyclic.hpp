#pragma once
/// \file block_cyclic.hpp
/// \brief 2D process grid and block-cyclic matrix layout, ScaLAPACK-style.
///
/// The PGEQRF baseline reproduces ScaLAPACK's data decomposition: an
/// m x n matrix is tiled into b x b blocks; block (I, J) lives on process
/// (I mod pr, J mod pc) at local block position (I / pr, J / pc).  Local
/// storage concatenates the owned blocks in global order, so any global
/// row/column range that is block-aligned maps to a contiguous local
/// range -- the property the panel algorithms rely on.
///
/// For bookkeeping simplicity (this is a comparator, not the library's
/// contribution) dimensions must satisfy b*pr | m and b*pc | n; the bench
/// harnesses and tests choose conforming sizes.

#include "cacqr/lin/matrix.hpp"
#include "cacqr/rt/comm.hpp"

namespace cacqr::baseline {

/// pr x pc process grid over a communicator of pr*pc ranks; rank =
/// mycol + pc * myrow (row-major, like ScaLAPACK's default).
class ProcGrid2d {
 public:
  ProcGrid2d(rt::Comm world, int pr, int pc);

  [[nodiscard]] int pr() const noexcept { return pr_; }
  [[nodiscard]] int pc() const noexcept { return pc_; }
  [[nodiscard]] int myrow() const noexcept { return myrow_; }
  [[nodiscard]] int mycol() const noexcept { return mycol_; }
  [[nodiscard]] const rt::Comm& world() const noexcept { return world_; }
  /// Ranks sharing my process row (pc members; comm rank == mycol).
  [[nodiscard]] const rt::Comm& row_comm() const noexcept { return row_; }
  /// Ranks sharing my process column (pr members; comm rank == myrow).
  [[nodiscard]] const rt::Comm& col_comm() const noexcept { return col_; }

 private:
  int pr_;
  int pc_;
  int myrow_ = 0;
  int mycol_ = 0;
  rt::Comm world_;
  rt::Comm row_;
  rt::Comm col_;
};

/// This rank's piece of a block-cyclic matrix.
class BlockCyclicMatrix {
 public:
  BlockCyclicMatrix() = default;

  /// Zero matrix; requires b*pr | rows and b*pc | cols.
  BlockCyclicMatrix(i64 rows, i64 cols, i64 block, const ProcGrid2d& g);

  /// Extracts the local part of a replicated global matrix.
  [[nodiscard]] static BlockCyclicMatrix from_global(lin::ConstMatrixView a,
                                                     i64 block,
                                                     const ProcGrid2d& g);
  /// Distributed m x n identity (leading n columns of I_m).
  [[nodiscard]] static BlockCyclicMatrix identity(i64 rows, i64 cols,
                                                  i64 block,
                                                  const ProcGrid2d& g);

  [[nodiscard]] i64 rows() const noexcept { return rows_; }
  [[nodiscard]] i64 cols() const noexcept { return cols_; }
  [[nodiscard]] i64 block() const noexcept { return block_; }
  [[nodiscard]] lin::Matrix& local() noexcept { return local_; }
  [[nodiscard]] const lin::Matrix& local() const noexcept { return local_; }

  /// Global index of local row/column (and the inverse existence tests).
  [[nodiscard]] i64 global_row(i64 li) const noexcept;
  [[nodiscard]] i64 global_col(i64 lj) const noexcept;

  /// First local row whose global index is >= k*b + j, given that global
  /// row block k is the cut point (0 <= j < b).  Because local blocks are
  /// sorted by global block index, rows >= this cut form a contiguous
  /// local suffix.
  [[nodiscard]] i64 local_row_cut(i64 block_k, i64 j) const noexcept;
  /// First local column whose global index is >= k*b (block-aligned cut).
  [[nodiscard]] i64 local_col_cut(i64 block_k) const noexcept;

  /// Reassembles the global matrix on every rank (test utility); the
  /// communicator must be the grid's world communicator.
  [[nodiscard]] lin::Matrix gather(const ProcGrid2d& g) const;

 private:
  i64 rows_ = 0;
  i64 cols_ = 0;
  i64 block_ = 1;
  int pr_ = 1;
  int pc_ = 1;
  int myrow_ = 0;
  int mycol_ = 0;
  lin::Matrix local_;
};

}  // namespace cacqr::baseline
