#pragma once
/// \file shifted.hpp
/// \brief Shifted CholeskyQR3: the unconditionally stable extension the
///        paper's conclusion points to (Fukaya, Kannan, Nakatsukasa,
///        Yamamoto, Yanagisawa, 2018; paper reference [3]).
///
/// Plain CholeskyQR2 requires kappa(A) <~ eps^{-1/2}: beyond that the Gram
/// matrix is numerically indefinite and the Cholesky factorization fails.
/// Shifted CholeskyQR adds s ~ 11 (mn + n(n+1)) eps ||A||_2^2 to the Gram
/// diagonal, making the first factorization succeed for kappa up to
/// ~eps^{-1}; the resulting Q1 has kappa(Q1) <~ eps^{-1/2}, so a regular
/// CholeskyQR2 finishes the job with Householder-level orthogonality.
/// Total: three passes (CQR3).

#include "cacqr/core/ca_cqr.hpp"
#include "cacqr/core/cqr.hpp"

namespace cacqr::core {

/// The Fukaya-et-al. shift for an m x n matrix given (an upper bound on)
/// ||A||_2^2.  The callers below bound ||A||_2^2 by ||A||_F^2, which only
/// enlarges the shift -- harmless, since subsequent passes repair R.
[[nodiscard]] double recommended_shift(i64 m, i64 n, double norm2_sq);

/// Sequential shifted CholeskyQR3.
[[nodiscard]] QrFactors shifted_cqr3(lin::ConstMatrixView a);

/// Distributed shifted CholeskyQR3 over the tunable grid: one shifted
/// CA-CQR pass followed by CA-CQR2, R composed on the subcube.  Same
/// preconditions as ca_cqr; charge: three ca_cqr passes + two compose_r
/// (one extra 1-word slice Allreduce for the Frobenius norm bound).
[[nodiscard]] CaCqrResult ca_cqr3(const dist::DistMatrix& a,
                                  const grid::TunableGrid& g,
                                  CaCqrOptions opts = {});

}  // namespace cacqr::core
