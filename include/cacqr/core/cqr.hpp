#pragma once
/// \file cqr.hpp
/// \brief Sequential CholeskyQR and CholeskyQR2 (paper Algorithms 4-5).
///
/// CholeskyQR computes W = A^T A, the Cholesky factor R^T = chol(W), and
/// Q = A R^{-1}.  Its orthogonality error grows as kappa(A)^2 * eps, but
/// the factorization residual ||A - QR|| stays at eps; CholeskyQR2 runs a
/// second pass on Q to restore Householder-level orthogonality whenever
/// kappa(A) <~ eps^{-1/2} (Yamamoto et al., ETNA 2015).  The shifted
/// third-pass variant for harder conditioning lives in shifted.hpp.

#include "cacqr/lin/matrix.hpp"

namespace cacqr::core {

/// Reduced QR factors.
struct QrFactors {
  lin::Matrix q;  ///< m x n, approximately orthonormal columns
  lin::Matrix r;  ///< n x n, upper triangular with positive diagonal
};

/// Algorithm 4: one CholeskyQR pass.  Throws NotSpdError when the Gram
/// matrix is not numerically SPD (kappa(A)^2 >~ 1/eps).  Requires m >= n.
/// Gamma charge (the tally the 1-rank modeled clock sees): m n (n+1) for
/// the Gram product + n^3/3 + O(n^2) for chol/inverse + m n (n+1) for the
/// triangular multiply -- ~2 m n^2 + n^3/3 total.
[[nodiscard]] QrFactors cqr(lin::ConstMatrixView a);

/// Algorithm 5: CholeskyQR2 (two passes, R = R2 * R1).  Twice the cqr
/// charge plus the n^2 (n+1) triangular compose.
[[nodiscard]] QrFactors cqr2(lin::ConstMatrixView a);

}  // namespace cacqr::core
