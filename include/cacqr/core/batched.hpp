#pragma once
/// \file batched.hpp
/// \brief Stacked 1D-CholeskyQR2 sweep over a micro-batch of tall-skinny
///        panels: one Gram Allreduce per pass for the whole batch.
///
/// The serving scheduler (serve/) groups compatible small factorize jobs
/// and runs them through this entry point so the per-message alpha of the
/// Gram Allreduce is paid once per batch instead of once per job -- the
/// same aggregation argument the paper applies to panel latency, lifted to
/// whole requests.  Each panel's local Gram contribution is written into a
/// slab at a fixed offset and a single Allreduce sums the concatenation.
///
/// Bitwise contract: every panel's Q/R are byte-identical to the same
/// panel run standalone through `factorize` on the cqr_1d plan.  This
/// holds because the Allreduce schedule (recursive-halving reduce-scatter
/// + Bruck allgather, src/rt/collectives.cpp) pairs RANKS, not elements:
/// the per-element summation tree has the same shape at every offset of
/// any payload, the keeper/sender role swap only commutes IEEE additions
/// (bitwise-safe), and everything outside the Allreduce is per-panel
/// local arithmetic executed by the same thread at the same budget.  The
/// standalone driver delegates to a batch of one, so the two paths are
/// literally the same code; tests/serve/test_batched.cpp asserts the
/// byte-equality across budgets x overlap x precision.

#include <exception>
#include <span>
#include <vector>

#include "cacqr/lin/matrix.hpp"
#include "cacqr/rt/comm.hpp"
#include "cacqr/support/precision.hpp"

namespace cacqr::core {

/// Options shared by every panel of one batched sweep (the batching key:
/// the scheduler only groups jobs that agree on all of these).
struct BatchedOptions {
  int passes = 2;          ///< 1 = CQR, 2 = CQR2, 3 = shifted CQR3 per panel
  bool auto_shift = true;  ///< NotSpd panels retry shifted CholeskyQR3
  i64 base_case = 0;       ///< forwarded to the shifted fallback
  Precision precision = Precision::fp64;
};

/// Per-panel outcome of a batched sweep.
struct BatchedItem {
  lin::Matrix q;
  lin::Matrix r;
  bool ok = true;           ///< false: `error` holds the panel's failure
  bool used_shift = false;  ///< panel fell back to shifted CholeskyQR3
  std::exception_ptr error;
};

/// Factors each panel (m_i x n_i, m_i >= n_i >= 1) over the full
/// communicator exactly like the standalone cqr_1d driver, but with the
/// per-pass Gram Allreduces of the whole batch fused into one collective.
/// Panels may differ in shape; they must share `opts`.  Collective: every
/// rank passes the same panel sequence.  A panel whose Cholesky breaks
/// down (NotSpdError) is isolated: with auto_shift it reruns through the
/// shifted CholeskyQR3 path after the sweep (used_shift = true),
/// otherwise its item carries the error (ok = false) -- the other panels
/// of the batch are unaffected either way.  Non-NotSpd errors propagate
/// by throwing, as standalone.
[[nodiscard]] std::vector<BatchedItem> factorize_batched(
    std::span<const lin::ConstMatrixView> panels, const rt::Comm& world,
    const BatchedOptions& opts = {});

}  // namespace cacqr::core
