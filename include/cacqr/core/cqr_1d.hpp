#pragma once
/// \file cqr_1d.hpp
/// \brief The existing parallel 1D-CholeskyQR2 (paper Algorithms 6-7).
///
/// The matrix is partitioned by rows over a 1D grid of P ranks (cyclic,
/// matching the DistMatrix convention with row_procs == P, col_procs == 1).
/// Each rank forms its local Gram contribution, one Allreduce sums it, all
/// ranks factor redundantly, and Q is computed locally -- total cost
/// O(log P) alpha + n^2 beta + (mn^2/P + n^3) gamma (paper Table I).  The
/// per-rank O(n^2) memory and O(n^3) redundant compute are what restrict
/// this variant to very overdetermined matrices and what CA-CQR2 removes.

#include "cacqr/dist/dist_matrix.hpp"
#include "cacqr/support/precision.hpp"

namespace cacqr::core {

/// 1D result: Q distributed like A; R replicated on every rank.
struct Cqr1dResult {
  dist::DistMatrix q;
  lin::Matrix r;
};

/// Algorithm 6: one 1D-CholeskyQR pass.  `a` must have col_procs == 1 and
/// row_procs == comm.size() with my_row == comm.rank(), and m >= n.
/// Collective.  Per-rank charge: one Allreduce(n^2, P) -- 2 ceil(lg P)
/// alpha + 2 n^2 beta -- plus (m/P) n (n+1) + n^3/3 + (m/P) n (n+1) gamma
/// (local Gram, redundant CholInv, local triangular multiply).  Throws
/// NotSpdError consistently on every rank (the factorization input is
/// replicated by the Allreduce).
///
/// `gram_precision` != fp64 runs the Gram stage in fp32: the local panel
/// is narrowed, the Gram product runs through the fp32 kernel lane, and
/// the Allreduce ships a half-width payload (n^2 beta instead of 2 n^2),
/// after which the sum is widened and everything downstream (CholInv,
/// the triangular multiply) stays fp64.  The rounding is elementwise and
/// the collective schedule unchanged, so the result is still bitwise
/// deterministic across thread budgets and overlap settings.
[[nodiscard]] Cqr1dResult cqr_1d(const dist::DistMatrix& a,
                                 const rt::Comm& comm,
                                 Precision gram_precision = Precision::fp64);

/// Algorithm 7: 1D-CholeskyQR2: twice the cqr_1d charge plus the
/// redundant sequential compose R = R2 * R1 on every rank.  `precision`
/// maps onto the two passes: fp64 keeps both Grams in fp64 (bit-identical
/// to the historical driver), `mixed` runs the FIRST pass's Gram in fp32
/// and lets the full-precision second pass restore fp64-level
/// orthogonality (the CholeskyQR2 correction argument), `fp32` runs both
/// Grams in fp32.
[[nodiscard]] Cqr1dResult cqr2_1d(const dist::DistMatrix& a,
                                  const rt::Comm& comm,
                                  Precision precision = Precision::fp64);

}  // namespace cacqr::core
