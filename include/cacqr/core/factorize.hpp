#pragma once
/// \file factorize.hpp
/// \brief High-level QR driver: variant/grid selection (heuristic,
///        model-planned, or measured), padding, stability fallback.
///
/// The low-level entry points require grid-divisible dimensions and an
/// explicit configuration.  This driver accepts any m >= n matrix and
/// rank count: it selects a variant and grid, pads the matrix to
/// divisible dimensions with the SPD-preserving augmentation
///
///     A_pad = [ A  0       ]     =>  Q_pad = [ Q  0 ],  R_pad = [ R  0    ]
///             [ 0  delta*I ]                 [ 0  I ]           [ 0  dI   ]
///
/// (zero rows keep the Gram matrix intact; delta-scaled identity columns
/// keep it definite), runs the factorization, and strips the padding.
/// On a Cholesky breakdown (kappa(A)^2 >~ 1/eps) it falls back to
/// shifted CholeskyQR3 when `auto_shift` is set.
///
/// Configuration selection (`plan_mode`):
///   * `heuristic` (default): the closed-form grid rule `choose_grid`
///     (c = (Pn/m)^(1/3)) on the CA-CQR family -- exactly the historical
///     behavior, bit for bit, with no extra communication.
///   * `model`: the tune:: planner scores every valid configuration of
///     all three variants (1D-CQR2, CA-CQR2 grids, the PGEQRF baseline)
///     against a calibrated MachineProfile and the best is executed.
///   * `measured`: like `model`, then the top-k candidates are trial-run
///     on the actual input through this communicator (timings agreed
///     across ranks by one Allreduce per candidate, so every rank picks
///     the same winner); the winner's trial result is returned directly,
///     so measured mode costs k trial factorizations total.
/// Both planned modes consult a process-wide memo and the persistent
/// plan cache (`CACQR_TUNE_DIR`, keyed by profile fingerprint + problem
/// key) first, so repeated workloads skip planning -- and in measured
/// mode the trials -- entirely.  Trial runs and cache-hit broadcasts
/// charge the run's cost counters (they are real communication); the
/// heuristic path charges exactly what it always has.

#include "cacqr/core/ca_cqr.hpp"
#include "cacqr/tune/planner.hpp"

namespace cacqr::core {

/// How factorize picks the variant and grid (see file comment).
enum class PlanMode { heuristic, model, measured };

/// The process-wide default for FactorizeOptions::precision: resolves
/// CACQR_PRECISION ("fp64" | "mixed" | "fp32") once at first use; unset
/// means fp64 (the bit-identical legacy path) and a malformed value
/// fails loudly on every call, mirroring the CACQR_KERNEL rules.  An
/// explicit `opts.precision = ...` always wins -- the env var only moves
/// the default, so whole applications can be flipped without a rebuild.
[[nodiscard]] Precision default_precision();

struct FactorizeOptions {
  /// Explicit CA-CQR grid shape; BOTH nonzero forces the CA-CQR family
  /// on this grid regardless of plan_mode.  A partially specified grid
  /// (one of c/d zero) falls back to automatic selection, as the
  /// heuristic driver always did.
  int c = 0;
  int d = 0;
  /// CFR3D base-case knob (0 = paper default).
  i64 base_case = 0;
  /// 1 = CholeskyQR, 2 = CholeskyQR2 (default), 3 = shifted CholeskyQR3.
  /// Applies to the CholeskyQR variants; the PGEQRF baseline ignores it.
  int passes = 2;
  /// Retry with shifted CholeskyQR3 when the Gram factorization fails.
  bool auto_shift = true;
  /// Gram-stage precision of the CholeskyQR families (pgeqrf_2d ignores
  /// it).  fp64 (default) is bit-identical to the always-double driver.
  /// `mixed` runs the FIRST pass's Gram assembly in fp32 -- narrowed
  /// panel, fp32 kernel lane, half-width collective payloads -- and
  /// relies on the fp64 second pass (CholeskyQR2's correction sweep) to
  /// restore fp64-level orthogonality on matrices with kappa(A) within
  /// fp32's CholeskyQR range; beyond that the Gram Cholesky fails and
  /// `auto_shift` falls back to full-fp64 shifted CholeskyQR3 exactly as
  /// in fp64 mode.  `fp32` keeps the fp32 Gram for both passes (fastest,
  /// fp32-level accuracy).  All modes stay bitwise deterministic across
  /// thread budgets and overlap settings.  The default comes from
  /// default_precision() (CACQR_PRECISION, fp64 when unset).
  Precision precision = default_precision();
  /// Variant/grid selection policy (see file comment).
  PlanMode plan_mode = PlanMode::heuristic;
  /// Calibrated profile for model/measured planning; nullptr uses
  /// tune::generic_profile().  Must be identical on every rank (the
  /// usual replicated-options contract).
  const tune::MachineProfile* profile = nullptr;
  /// How many top model candidates plan_mode=measured trial-runs.
  int plan_top_k = 3;
};

struct FactorizeResult {
  lin::Matrix q;  ///< m x n, gathered on every rank
  lin::Matrix r;  ///< n x n upper triangular, gathered on every rank
  std::string algo = "ca_cqr";  ///< "cqr_1d" | "ca_cqr" | "pgeqrf_2d"
  int c = 1;      ///< CA-CQR grid actually used (c=1, d=P for cqr_1d)
  int d = 1;
  int pr = 0;     ///< PGEQRF grid (0 unless algo == "pgeqrf_2d")
  int pc = 0;
  i64 block = 0;
  bool used_shift = false;  ///< whether the shifted fallback ran
  /// The micro-kernel variant the local level-3 kernels dispatched to
  /// during this factorization (lin::kernel::active_variant at entry).
  std::string kernel_variant;
  /// How the configuration was chosen: plan.source is "heuristic",
  /// "model", "measured", or "cache"; predicted/measured seconds are
  /// filled when the planner produced them.
  tune::Plan plan;
};

/// Picks the valid (c, d) grid for P ranks closest to the paper's optimum
/// c = (P n / m)^(1/3) (i.e. m/d == n/c), preferring powers of two.
[[nodiscard]] std::pair<int, int> choose_grid(int nranks, i64 m, i64 n);

/// Collective over `world`: every rank passes the same global matrix
/// (e.g. regenerated from a seed) and receives the gathered factors.
/// Convenience driver for moderate sizes -- production users hold the
/// distributed CaCqrResult from ca_cqr2 directly.  Preconditions: m >= n
/// and identical (a, opts) on every rank.  Charge: the selected variant's
/// cost at padded dimensions (padding adds at most one row/column cycle)
/// plus the final gathers; planned modes add their trial runs and plan
/// broadcasts; on breakdown with auto_shift the shifted CholeskyQR3
/// retry runs on top.
[[nodiscard]] FactorizeResult factorize(lin::ConstMatrixView a,
                                        const rt::Comm& world,
                                        FactorizeOptions opts = {});

}  // namespace cacqr::core
