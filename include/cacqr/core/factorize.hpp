#pragma once
/// \file factorize.hpp
/// \brief High-level QR driver: grid selection, padding, stability
///        fallback.
///
/// The low-level CA-CQR2 entry points require grid-divisible dimensions
/// and an explicit grid.  This driver accepts any m >= n matrix and rank
/// count: it picks a (c, d) grid near the paper's communication-optimal
/// ratio m/d == n/c, pads the matrix to divisible dimensions with the
/// SPD-preserving augmentation
///
///     A_pad = [ A  0       ]     =>  Q_pad = [ Q  0 ],  R_pad = [ R  0    ]
///             [ 0  delta*I ]                 [ 0  I ]           [ 0  dI   ]
///
/// (zero rows keep the Gram matrix intact; delta-scaled identity columns
/// keep it definite), runs the requested CholeskyQR variant, and strips
/// the padding.  On a Cholesky breakdown (kappa(A)^2 >~ 1/eps) it falls
/// back to shifted CholeskyQR3 when `auto_shift` is set.

#include "cacqr/core/ca_cqr.hpp"

namespace cacqr::core {

struct FactorizeOptions {
  /// Grid shape; 0 selects automatically (see choose_grid).
  int c = 0;
  int d = 0;
  /// CFR3D base-case knob (0 = paper default).
  i64 base_case = 0;
  /// 1 = CholeskyQR, 2 = CholeskyQR2 (default), 3 = shifted CholeskyQR3.
  int passes = 2;
  /// Retry with shifted CholeskyQR3 when the Gram factorization fails.
  bool auto_shift = true;
};

struct FactorizeResult {
  lin::Matrix q;  ///< m x n, gathered on every rank
  lin::Matrix r;  ///< n x n upper triangular, gathered on every rank
  int c = 1;      ///< grid actually used
  int d = 1;
  bool used_shift = false;  ///< whether the shifted fallback ran
};

/// Picks the valid (c, d) grid for P ranks closest to the paper's optimum
/// c = (P n / m)^(1/3) (i.e. m/d == n/c), preferring powers of two.
[[nodiscard]] std::pair<int, int> choose_grid(int nranks, i64 m, i64 n);

/// Collective over `world`: every rank passes the same global matrix
/// (e.g. regenerated from a seed) and receives the gathered factors.
/// Convenience driver for moderate sizes -- production users hold the
/// distributed CaCqrResult from ca_cqr2 directly.  Preconditions: m >= n
/// and identical (a, opts) on every rank.  Charge: the selected variant's
/// cost at padded dimensions (padding adds at most one d-row / c-column
/// cycle) plus the two final gathers; on breakdown with auto_shift the
/// shifted CholeskyQR3 retry runs on top.
[[nodiscard]] FactorizeResult factorize(lin::ConstMatrixView a,
                                        const rt::Comm& world,
                                        FactorizeOptions opts = {});

}  // namespace cacqr::core
