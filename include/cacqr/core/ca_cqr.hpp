#pragma once
/// \file ca_cqr.hpp
/// \brief CA-CQR and CA-CQR2: communication-avoiding CholeskyQR over a
///        tunable c x d x c processor grid (paper Algorithms 8-9).
///
/// The input m x n matrix is distributed cyclically over each slice of the
/// grid (rows over d, columns over c) and replicated across the depth
/// dimension.  One pass:
///
///   1-5. Z = A^T A assembled so that every one of the d/c cubic subgrids
///        owns a full copy distributed over its slice (a row-broadcast,
///        a local Gram product, a reduction within contiguous y-groups,
///        an allreduce across strided y-groups, and a depth broadcast);
///   6-7. CFR3D on each subcube redundantly computes R^T and R^{-T};
///   8.   each subcube multiplies its (m c/d) x n row-panel of A by
///        R^{-1} with MM3D -- no communication crosses subcube boundaries.
///
/// With c = 1 this is exactly 1D-CQR (local Syrk + one Allreduce +
/// redundant factorization + local triangular multiply); with c = d =
/// P^(1/3) it is the full 3D algorithm.  The c knob trades the paper's
/// Table I costs: alpha ~ c^2 log P, beta ~ mn/(dc) + n^2/c^2,
/// gamma ~ mn^2/(dc^2) + n^3/c^3, memory ~ mn/(dc) + n^2/c^2.

#include "cacqr/dist/dist_matrix.hpp"
#include "cacqr/support/precision.hpp"

namespace cacqr::core {

struct CaCqrOptions {
  /// CFR3D base-case dimension (0 = paper default n/c^2; see cfr3d.hpp).
  i64 base_case = 0;
  /// Value added to the Gram matrix diagonal before factorization
  /// (shifted CholeskyQR; see shifted.hpp for the recommended magnitude).
  double shift = 0.0;
  /// The paper's InverseDepth knob (Section III-A; the strong-scaling
  /// legends' third tuple entry).  0 computes the full triangular
  /// inverse and one MM3D for Q = A R^{-1}; depth k > 0 inverts only the
  /// 2^k diagonal blocks of R and computes Q by block back-substitution,
  /// cutting the multiply flops toward half at the cost of ~2x more
  /// synchronization per extra level.  Only meaningful for c > 1
  /// (at c == 1 the local triangular multiply already exploits
  /// structure).  Clamped to the available recursion depth.
  int inverse_depth = 0;
  /// Gram-stage precision.  fp64 (default) is bit-identical to the
  /// historical path.  Anything else runs the whole Gram assembly
  /// (lines 1-5) in fp32 -- narrowed panel broadcast, fp32 kernel-lane
  /// product, half-width reduce/allreduce/bcast payloads -- then widens
  /// the agreed sum; Cholesky and the Q update stay fp64.  In ca_cqr2,
  /// `mixed` applies the fp32 Gram to the FIRST pass only (the fp64
  /// second pass restores fp64-level orthogonality) while `fp32` keeps
  /// it for both passes.
  Precision precision = Precision::fp64;
};

/// CA-CQR output.
struct CaCqrResult {
  /// Q, distributed exactly like the input A (rows over d, columns over
  /// c, replicated over depth).
  dist::DistMatrix q;
  /// R (n x n upper triangular), distributed over each subcube's slice
  /// (rows and columns over c), replicated over depth and across the d/c
  /// subcubes.
  dist::DistMatrix r;
};

/// Lines 1-5 of Algorithm 8: the Gram matrix Z = A^T A, landed on every
/// subcube slice.  Exposed separately so the per-line cost benches can
/// measure this phase against the paper's Table V rows.  Collective over
/// the whole grid.  Charge: Bcast(mn/(dc), c) + Reduce(n^2/c^2, c) +
/// Allreduce(n^2/c^2, d/c) + Bcast(n^2/c^2, c) (the corrected line-5
/// operand; DESIGN.md section 8) plus the local Gram/gemm gamma.
/// `gram_precision` != fp64 runs the whole stage in fp32: every payload
/// above ships half the words (fp32 pairs riding whole 8-byte words) and
/// the local product uses the fp32 kernel lane; the returned Z is the
/// widened fp64 image of the fp32 sum.
[[nodiscard]] dist::DistMatrix ca_gram(
    const dist::DistMatrix& a, const grid::TunableGrid& g,
    Precision gram_precision = Precision::fp64);

/// Algorithm 8: one CA-CholeskyQR pass.  Throws NotSpdError when the
/// (shifted) Gram matrix is not numerically SPD; every rank throws
/// consistently because the factorization inputs are replicated.
/// Preconditions: `a` distributed over `g` (rows over d, columns over c),
/// m >= n, d | m, c | n, and n >= c^2 for the CFR3D base case.  Charge:
/// ca_gram + CFR3D on the subcube + 2 Transpose(n^2/c^2) + the Q = A
/// R^{-1} multiply (one MM3D of the (m c/d) x n panel when inverse_depth
/// == 0, the block_backsolve sweep otherwise); Table I totals
/// alpha ~ c^2 log P, beta ~ mn/(dc) + n^2/c^2, gamma ~ mn^2/(dc^2) +
/// n^3/c^3.
[[nodiscard]] CaCqrResult ca_cqr(const dist::DistMatrix& a,
                                 const grid::TunableGrid& g,
                                 CaCqrOptions opts = {});

/// Algorithm 9: CA-CholeskyQR2 (two passes, R = R2 * R1 via MM3D): twice
/// the ca_cqr charge plus one compose_r.  Same preconditions.
[[nodiscard]] CaCqrResult ca_cqr2(const dist::DistMatrix& a,
                                  const grid::TunableGrid& g,
                                  CaCqrOptions opts = {});

/// Composes two upper-triangular factors R = R2 * R1 on the subcube
/// (Algorithm 9 line 4); local triangular multiply when c == 1.
[[nodiscard]] dist::DistMatrix compose_r(const dist::DistMatrix& r2,
                                         const dist::DistMatrix& r1,
                                         const grid::TunableGrid& g);

}  // namespace cacqr::core
