#pragma once
/// \file rng.hpp
/// \brief Deterministic pseudo-random generation for reproducible
///        experiments.
///
/// The paper evaluates on random matrices.  To make every test and bench
/// reproducible bit-for-bit (and to let every SPMD rank regenerate the same
/// global matrix without communication), we use a self-contained
/// xoshiro256** generator seeded via splitmix64 instead of std::mt19937,
/// whose streams differ across standard library implementations.

#include <cstdint>

namespace cacqr {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation, re-expressed in C++).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    // splitmix64 expansion of the seed into the 256-bit state, as
    // recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next 64 uniformly random bits.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal via Box-Muller (cached second variate).
  double normal() noexcept;

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) noexcept { return next_u64() % n; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace cacqr
