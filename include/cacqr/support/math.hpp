#pragma once
/// \file math.hpp
/// \brief Small integer utilities shared by grid/layout/cost code.

#include <cstdint>
#include <limits>

#include "cacqr/support/error.hpp"

namespace cacqr {

using i64 = std::int64_t;
using u64 = std::uint64_t;

/// True iff x is a power of two (x > 0).
[[nodiscard]] constexpr bool is_pow2(i64 x) noexcept {
  return x > 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)) for x >= 1.
[[nodiscard]] constexpr int ilog2(i64 x) noexcept {
  int r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// ceil(log2(x)) for x >= 1; 0 for x == 1.
[[nodiscard]] constexpr int ceil_log2(i64 x) noexcept {
  return is_pow2(x) ? ilog2(x) : ilog2(x) + 1;
}

/// ceil(a / b) for a >= 0, b > 0.
[[nodiscard]] constexpr i64 ceil_div(i64 a, i64 b) noexcept {
  return (a + b - 1) / b;
}

/// Smallest multiple of b that is >= a (a >= 0, b > 0).
[[nodiscard]] constexpr i64 round_up(i64 a, i64 b) noexcept {
  return ceil_div(a, b) * b;
}

/// Integer cube root for exact cubes; throws otherwise.
[[nodiscard]] inline i64 exact_cbrt(i64 x) {
  i64 r = 0;
  while (r * r * r < x) ++r;
  ensure_dim(r * r * r == x, "exact_cbrt: ", x, " is not a perfect cube");
  return r;
}

/// Multiplication with overflow detection; dimensions and word counts in
/// cost models can exceed 2^32 easily (e.g. m = 2^25, n = 2^13).
[[nodiscard]] inline i64 checked_mul(i64 a, i64 b) {
  ensure(a >= 0 && b >= 0, "checked_mul: negative operand");
  if (a != 0) {
    ensure(b <= std::numeric_limits<i64>::max() / a,
           "checked_mul: overflow: ", a, " * ", b);
  }
  return a * b;
}

/// x^e for small non-negative integer exponents.
[[nodiscard]] constexpr i64 ipow(i64 x, int e) noexcept {
  i64 r = 1;
  for (int i = 0; i < e; ++i) r *= x;
  return r;
}

}  // namespace cacqr
