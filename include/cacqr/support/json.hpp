#pragma once
/// \file json.hpp
/// \brief Minimal JSON value type, writer, and parser for the persistent
///        artifacts this library produces and consumes (the tune/ plan
///        cache, calibration profiles, bench emitters).
///
/// No external JSON dependency exists in the build environment, so this
/// is a small self-contained implementation with two properties the plan
/// cache relies on:
///
///   * **Deterministic serialization**: objects keep insertion order and
///     `dump()` emits doubles via a shortest-round-trip format, so
///     serializing the same value twice yields byte-identical text (the
///     cache round-trip tests assert this).
///   * **Tolerant parsing**: `parse()` returns std::nullopt on any
///     malformed input instead of throwing, so a corrupted or
///     truncated cache file is *ignored*, never fatal.
///
/// Numbers are stored as double (every integer this library persists
/// fits in the 53-bit mantissa).  Object lookup is linear -- the files
/// involved hold at most a few hundred keys.

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cacqr/support/math.hpp"

namespace cacqr::support {

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() noexcept : type_(Type::Null) {}
  Json(bool b) noexcept : type_(Type::Bool), bool_(b) {}  // NOLINT(google-explicit-constructor)
  Json(double v) noexcept : type_(Type::Number), num_(v) {}  // NOLINT
  Json(i64 v) noexcept : type_(Type::Number), num_(static_cast<double>(v)) {}  // NOLINT
  Json(int v) noexcept : type_(Type::Number), num_(v) {}     // NOLINT
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : type_(Type::String), str_(s) {}             // NOLINT

  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::Array;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::Object;
    return j;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::Object;
  }

  /// Typed accessors with fallbacks: wrong-type access returns the
  /// fallback, matching the cache's ignore-don't-throw discipline.
  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] double as_number(double fallback = 0.0) const noexcept {
    return is_number() ? num_ : fallback;
  }
  [[nodiscard]] i64 as_int(i64 fallback = 0) const noexcept {
    // Range-checked: a corrupted file holding 1e300 must read as the
    // fallback, not as an out-of-range float-to-int cast (UB).
    constexpr double lo = -9.2e18;
    constexpr double hi = 9.2e18;
    return is_number() && num_ >= lo && num_ <= hi
               ? static_cast<i64>(num_)
               : fallback;
  }
  [[nodiscard]] const std::string& as_string() const noexcept {
    static const std::string empty;
    return is_string() ? str_ : empty;
  }

  // ------------------------------------------------------------- array
  [[nodiscard]] std::size_t size() const noexcept {
    return is_array() ? arr_.size() : (is_object() ? obj_.size() : 0);
  }
  /// Element i of an array; Null for out-of-range or non-array.
  [[nodiscard]] const Json& at(std::size_t i) const noexcept;
  void push_back(Json v) {
    type_ = Type::Array;
    arr_.push_back(std::move(v));
  }

  // ------------------------------------------------------------ object
  /// Member lookup; Null when absent or not an object.
  [[nodiscard]] const Json& operator[](std::string_view key) const noexcept;
  [[nodiscard]] bool has(std::string_view key) const noexcept;
  /// Inserts or replaces; insertion order is serialization order.
  void set(std::string_view key, Json v);
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const noexcept {
    return obj_;
  }

  // ----------------------------------------------------------- text IO
  /// Serializes deterministically.  indent < 0: compact single line;
  /// indent >= 0: pretty-printed with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Strict parse of a complete JSON document (trailing non-whitespace
  /// rejected).  Returns std::nullopt on any error.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text);

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// Reads and parses a JSON file; std::nullopt when the file is missing,
/// unreadable, or malformed (the cache's "ignore, not fatal" rule).
[[nodiscard]] std::optional<Json> read_json_file(const std::string& path);

/// Writes `dump(indent)` atomically: to `path + ".tmp.<pid>"` first, then
/// renamed over `path`, so concurrent readers never observe a torn file.
/// Returns false on any I/O failure (cache writes are best-effort).
bool write_json_file(const std::string& path, const Json& value,
                     int indent = 1);

}  // namespace cacqr::support
