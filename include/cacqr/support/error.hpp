#pragma once
/// \file error.hpp
/// \brief Error types and checked-precondition helpers used across the
///        library.
///
/// The library reports contract violations and runtime failures through a
/// small exception hierarchy rooted at cacqr::Error.  Internal invariants
/// (conditions that can only fail due to a bug inside this library) use
/// plain assert(); user-facing preconditions use ensure()/ensure_dim().

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace cacqr {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// Thrown when matrix/grid dimensions violate a documented precondition.
class DimensionError : public Error {
 public:
  explicit DimensionError(const std::string& what_arg) : Error(what_arg) {}
};

/// Thrown when a Cholesky factorization encounters a non-positive pivot,
/// i.e. the input matrix is not (numerically) symmetric positive definite.
/// For CholeskyQR this signals kappa(A)^2 * eps >= 1; callers can fall back
/// to the shifted variant (see core/shifted.hpp).
class NotSpdError : public Error {
 public:
  NotSpdError(const std::string& what_arg, std::size_t pivot_index)
      : Error(what_arg), pivot(pivot_index) {}
  /// Index of the first failing pivot.
  std::size_t pivot;
};

/// Thrown for misuse of the message-passing runtime (size mismatches,
/// invalid ranks, operations on moved-from communicators).
class CommError : public Error {
 public:
  explicit CommError(const std::string& what_arg) : Error(what_arg) {}
};

/// Thrown inside every blocked runtime call on all surviving ranks once any
/// rank of the program has thrown: it unwinds the whole SPMD team cleanly.
class AbortError : public Error {
 public:
  explicit AbortError(const std::string& what_arg) : Error(what_arg) {}
};

namespace detail {

inline void concat_into(std::ostringstream&) {}

template <class T, class... Rest>
void concat_into(std::ostringstream& os, const T& head, const Rest&... rest) {
  os << head;
  concat_into(os, rest...);
}

/// Builds a message string from heterogeneous parts (mini substitute for
/// std::format, which libstdc++ 12 does not ship).
template <class... Parts>
std::string concat(const Parts&... parts) {
  std::ostringstream os;
  concat_into(os, parts...);
  return os.str();
}

}  // namespace detail

/// Checks a user-facing precondition; throws E with the concatenated
/// message parts when the condition does not hold.
template <class E = Error, class... Parts>
void ensure(bool condition, const Parts&... message_parts) {
  if (!condition) {
    throw E(detail::concat(message_parts...));
  }
}

/// Dimension-specific convenience wrapper around ensure<DimensionError>.
template <class... Parts>
void ensure_dim(bool condition, const Parts&... message_parts) {
  ensure<DimensionError>(condition, message_parts...);
}

}  // namespace cacqr
