#pragma once
/// \file precision.hpp
/// \brief The arithmetic-precision axis of a factorization.
///
/// CholeskyQR2's second pass reorthogonalizes whatever the first pass
/// produced, which makes the algorithm a natural host for mixed
/// precision: compute the expensive first-pass Gram (the only O(mn^2)
/// stage) in fp32 and let the fp64 correction sweep restore
/// orthogonality to working precision (the stability argument mirrors
/// the TSQR discussion in Demmel, Grigori, Hoemmen & Langou,
/// arXiv:0806.2159).  fp32 doubles the SIMD lane width of every
/// micro-kernel variant and halves the word count of the Gram
/// Allreduce, attacking the gamma and beta terms of the cost model at
/// once.
///
/// Lives in support/ (not core/) because every layer consumes it:
/// lin/ carries the fp32 kernel lane, rt/ the element-width-aware
/// collectives, tune/ the per-precision calibration and plan axis.

#include <optional>
#include <string_view>

namespace cacqr {

/// Which precision the Gram/update lane of a factorization runs in.
enum class Precision {
  fp64,   ///< everything in double (default; bit-identical legacy path)
  mixed,  ///< first-pass Gram in fp32, Cholesky/update/second pass in fp64
  fp32,   ///< every Gram pass in fp32 (fastest; fp32-level accuracy only
          ///< where the correction sweep cannot recover it)
};

[[nodiscard]] constexpr const char* precision_name(Precision p) noexcept {
  switch (p) {
    case Precision::mixed: return "mixed";
    case Precision::fp32: return "fp32";
    case Precision::fp64: break;
  }
  return "fp64";
}

/// Parses a precision name ("fp64" | "mixed" | "fp32"); nullopt on
/// anything else (callers decide whether that is an error or a default).
[[nodiscard]] constexpr std::optional<Precision> parse_precision(
    std::string_view s) noexcept {
  if (s == "fp64" || s == "double") return Precision::fp64;
  if (s == "mixed") return Precision::mixed;
  if (s == "fp32" || s == "single" || s == "float") return Precision::fp32;
  return std::nullopt;
}

}  // namespace cacqr
