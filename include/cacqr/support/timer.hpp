#pragma once
/// \file timer.hpp
/// \brief Wall-clock timing for benchmarks.

#include <chrono>

namespace cacqr {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace cacqr
