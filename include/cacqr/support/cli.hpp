#pragma once
/// \file cli.hpp
/// \brief Minimal --key=value command-line parsing for bench/example mains.

#include <string>
#include <string_view>
#include <vector>

namespace cacqr {

/// Parses flags of the form --key=value (plus bare --key as "true").
/// Unknown positional arguments are ignored.  Keys are looked up on demand;
/// lookups for absent keys return the provided default.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(std::string_view key) const;
  [[nodiscard]] std::string get(std::string_view key,
                                const std::string& fallback) const;
  [[nodiscard]] long long get_int(std::string_view key,
                                  long long fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

 private:
  // Stored as parallel key/value vectors: tiny argument counts make a map
  // unnecessary.
  std::vector<std::string> keys_;
  std::vector<std::string> values_;
};

}  // namespace cacqr
