#pragma once
/// \file table.hpp
/// \brief Aligned-table and CSV emission for the bench harnesses.
///
/// Every figure/table bench prints a human-readable aligned table to stdout
/// (the rows the paper reports) and can also append the same rows to a CSV
/// file for external plotting.

#include <fstream>
#include <string>
#include <vector>

namespace cacqr {

/// Accumulates rows of strings and renders them with aligned columns.
class TextTable {
 public:
  /// Sets the header row (also written as the CSV header).
  void header(std::vector<std::string> cells);

  /// Appends one data row; cell count should match the header.
  void row(std::vector<std::string> cells);

  /// Renders the aligned table (header, rule, rows).
  [[nodiscard]] std::string str() const;

  /// Writes header + rows as CSV to the given path (overwrites).
  void write_csv(const std::string& path) const;

  /// Formats a double with trailing-zero trimming, for table cells.
  static std::string num(double v, int precision = 4);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cacqr
