#pragma once
/// \file flops.hpp
/// \brief Per-thread floating-point-operation accounting.
///
/// Every kernel in cacqr::lin adds the number of flops it actually executes
/// to a thread-local counter.  Because the message-passing runtime maps one
/// SPMD rank to one thread, the counter doubles as the per-rank gamma
/// (compute) tally of the alpha-beta-gamma cost model: the runtime drains
/// it into the rank's CostCounters at every communication call.

#include "cacqr/support/math.hpp"

namespace cacqr::lin::flops {

namespace detail {
inline thread_local i64 counter = 0;
}

/// Adds f flops to the calling thread's tally.
inline void add(i64 f) noexcept { detail::counter += f; }

/// Current tally.
[[nodiscard]] inline i64 peek() noexcept { return detail::counter; }

/// Resets the tally to zero.
inline void reset() noexcept { detail::counter = 0; }

/// Returns the tally and resets it (used by the runtime to attribute
/// compute to the interval since the previous communication call).
[[nodiscard]] inline i64 take() noexcept {
  const i64 v = detail::counter;
  detail::counter = 0;
  return v;
}

}  // namespace cacqr::lin::flops
