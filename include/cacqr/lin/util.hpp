#pragma once
/// \file util.hpp
/// \brief Matrix utilities: copies, transposes, norms, comparisons.

#include "cacqr/lin/matrix.hpp"

namespace cacqr::lin {

/// Copies a into b (shapes must match).
void copy(ConstMatrixView a, MatrixView b);

/// Sets every off-diagonal element to `offdiag` and every diagonal element
/// to `diag` (LAPACK laset).
void set_all(MatrixView a, double offdiag, double diag);

/// Returns a^T as a new matrix.
[[nodiscard]] Matrix transposed(ConstMatrixView a);

/// Transposes square view a in place.
void transpose_inplace(MatrixView a);

/// Frobenius norm.
[[nodiscard]] double frob_norm(ConstMatrixView a);

/// Largest absolute entry.
[[nodiscard]] double max_abs(ConstMatrixView a);

/// max_ij |a_ij - b_ij| (shapes must match).
[[nodiscard]] double max_abs_diff(ConstMatrixView a, ConstMatrixView b);

/// || Q^T Q - I ||_F: deviation of Q's columns from orthonormality.  This
/// is the quantity the CholeskyQR2 stability analysis bounds.
[[nodiscard]] double orthogonality_error(ConstMatrixView q);

/// || A - Q R ||_F / || A ||_F: relative residual of a QR factorization.
[[nodiscard]] double residual_error(ConstMatrixView a, ConstMatrixView q,
                                    ConstMatrixView r);

/// True iff the strict lower triangle of a is exactly zero.
[[nodiscard]] bool is_upper_triangular(ConstMatrixView a);

/// Estimates the 2-norm condition number of a full-column-rank matrix via
/// power iteration on A^T A (for sigma_max) and inverse power iteration
/// through a QR factorization (for sigma_min).  Accurate to a few percent,
/// which is all the stability tests need.
[[nodiscard]] double cond2_estimate(ConstMatrixView a, int iterations = 40);

}  // namespace cacqr::lin
