#pragma once
/// \file factor.hpp
/// \brief Sequential Cholesky factorization and triangular inversion.
///
/// These are the base-case kernels of the distributed CFR3D algorithm
/// (Algorithm 3 of the paper) and of the 1D CholeskyQR variants.

#include "cacqr/lin/matrix.hpp"

namespace cacqr::lin {

/// In-place lower Cholesky factorization A = L L^T (blocked).
/// On return the lower triangle of `a` holds L; the strict upper triangle
/// is zeroed.  Throws NotSpdError when a pivot is not positive.
void potrf(MatrixView a);

/// In-place inversion of a lower-triangular matrix (blocked recursive).
/// The strict upper triangle is ignored and left untouched.
void trtri_lower(MatrixView l);

/// Result of cholinv(): the Cholesky factor and its inverse.
struct CholInvResult {
  Matrix l;      ///< lower-triangular factor, A = L L^T
  Matrix l_inv;  ///< Y = L^{-1}
};

/// [L, Y] <- CholInv(A): Cholesky factor plus its explicit inverse, the
/// sequential routine invoked redundantly by every processor at the CFR3D
/// base case (paper Algorithm 2 base case / Algorithm 3 line 3).
/// `a` is not modified.
[[nodiscard]] CholInvResult cholinv(ConstMatrixView a);

}  // namespace cacqr::lin
