#pragma once
/// \file kernel.hpp
/// \brief Packed, register-tiled GEMM micro-kernel core (BLIS-style).
///
/// Every level-3 kernel in cacqr::lin (gemm in all four transpose cases,
/// gram, syrk_nt, and the off-diagonal updates of the blocked trmm/trsm
/// recursions) funnels into the single accumulating driver declared here.
/// The driver packs operand panels into contiguous, zero-padded buffers and
/// updates a fixed MR x NR register block over the K dimension, with
/// three-level MC/NC/KC cache blocking around it.  See DESIGN.md section 2
/// for the architecture, section 3 for the thread-parallel decomposition,
/// and section 7 for how to re-tune the block sizes.
///
/// The driver is thread-parallel: when the calling thread's worker budget
/// (lin/parallel.hpp, CACQR_THREADS) exceeds one and the product is large
/// enough, each (jc, pc) step packs the shared op(B) panel cooperatively
/// and splits the ic/jr tile space across the team.  Every C micro-tile has
/// exactly one owner and the pc reduction loop is never split, so results
/// are bitwise identical across thread counts.
///
/// Packing buffers are persistent per-thread arenas (grow-only, reused
/// across calls): steady-state kernel invocations of a given shape perform
/// no allocation.  `arena_stats()` exposes process-wide counters so tests
/// and benches can assert that.
///
/// Functions in this header perform NO flop accounting: the public BLAS
/// wrappers in blas.hpp charge closed-form flop counts (DESIGN.md section 1)
/// so the machine model's gamma tally is independent of blocking strategy
/// and of the thread count.

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/matrix.hpp"

namespace cacqr::lin::kernel {

// ------------------------------------------------------------ block sizes
//
// Register micro-tile: MR x NR accumulators live in registers across the
// whole K loop.  8 x 6 doubles = 12 AVX2 ymm accumulators (or 6 AVX-512
// zmm), leaving registers for the A column load and B broadcasts.
inline constexpr i64 MR = 8;
inline constexpr i64 NR = 6;

// Cache blocking: a KC x NR sliver of packed B stays in L1 across the ir
// loop, the MC x KC packed A block stays in L2, and the KC x NC packed B
// panel stays in L3.  Defaults target ~32K L1 / ~1M L2 per core.
inline constexpr i64 MC = 144;  // multiple of MR
inline constexpr i64 KC = 256;
inline constexpr i64 NC = 3072;  // multiple of NR

/// Which MR x NR micro-tiles of C the driver computes.  `Lower` computes
/// every tile that intersects the lower triangle (i >= j), `Upper` every
/// tile that intersects the upper triangle (i <= j); tiles strictly on the
/// other side of the diagonal are skipped.  Entries of a diagonal-crossing
/// tile that lie outside the requested triangle receive well-defined but
/// meaningless accumulated values -- callers (gram/syrk_nt) overwrite them
/// by mirroring.  Used to compute only the touched triangle of a symmetric
/// product at micro-tile granularity.
enum class TileFilter { Full, Lower, Upper };

/// C += alpha * op(A) * op(B), all four transpose combinations, through the
/// packed micro-kernel.  C is NOT scaled by beta (callers pre-scale) and no
/// flops are charged.  Shapes must already be validated by the caller:
/// op(A) is c.rows x k, op(B) is k x c.cols.
void gemm_accumulate(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                     ConstMatrixView b, MatrixView c,
                     TileFilter filter = TileFilter::Full);

/// Process-wide statistics over every thread's packing arenas.  Arenas are
/// thread-local and grow-only, so `allocations` advancing between two
/// same-shape kernel calls means the arena reuse contract broke.
struct ArenaStats {
  i64 allocations = 0;  ///< arena grow events since process start
  i64 bytes_in_use = 0;  ///< bytes currently held across all live arenas
  i64 high_water_bytes = 0;  ///< maximum of bytes_in_use ever observed
};

[[nodiscard]] ArenaStats arena_stats() noexcept;

}  // namespace cacqr::lin::kernel
