#pragma once
/// \file kernel.hpp
/// \brief Packed, register-tiled GEMM micro-kernel core (BLIS-style) with
///        runtime-dispatched SIMD micro-kernel variants.
///
/// Every level-3 kernel in cacqr::lin (gemm in all four transpose cases,
/// gram, syrk_nt, and the off-diagonal updates of the blocked trmm/trsm
/// recursions) funnels into the single accumulating driver declared here.
/// The driver packs operand panels into contiguous, zero-padded buffers and
/// updates a fixed MR x NR register block over the K dimension, with
/// three-level MC/NC/KC cache blocking around it.  See DESIGN.md section 2
/// for the architecture, section 3 for the thread-parallel decomposition,
/// and section 7 for how to re-tune the block sizes.
///
/// The MR x NR register block itself is **multi-versioned**: one binary
/// carries a family of explicitly vectorized micro-kernels (AVX2 8x6 FMA,
/// AVX-512 16x14, NEON 8x6) next to the always-available generic kernel,
/// each compiled in its own translation unit with per-file ISA flags.  A
/// one-time CPU probe (cpuid / architecture baseline) selects the variant
/// at first use -- overridable with CACQR_KERNEL -- and the only dynamic
/// indirection is one function pointer per MR x NR tile: the MC/NC/KC
/// blocking, cooperative packing, arenas, and the one-owner threading rule
/// are shared verbatim across variants, parameterized by the variant's
/// block geometry.
///
/// The driver is thread-parallel: when the calling thread's worker budget
/// (lin/parallel.hpp, CACQR_THREADS) exceeds one and the product is large
/// enough, each (jc, pc) step packs the shared op(B) panel cooperatively
/// and splits the ic/jr tile space across the team.  Every C micro-tile has
/// exactly one owner and the pc reduction loop is never split, so results
/// are bitwise identical across thread counts -- per variant.  Different
/// variants may round differently (FMA contraction, block-size-dependent
/// accumulation splits); switching variants is a numerical event on the
/// order of the unit roundoff, never a correctness one.
///
/// Packing buffers are persistent per-thread arenas (grow-only, reused
/// across calls): steady-state kernel invocations of a given shape perform
/// no allocation.  `arena_stats()` exposes process-wide counters so tests
/// and benches can assert that.
///
/// Functions in this header perform NO flop accounting: the public BLAS
/// wrappers in blas.hpp charge closed-form flop counts (DESIGN.md section 1)
/// so the machine model's gamma tally is independent of blocking strategy,
/// of the thread count, and of the selected variant.

#include <vector>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/matrix.hpp"
#include "cacqr/lin/matrix_f.hpp"

namespace cacqr::lin::kernel {

// ------------------------------------------- generic-variant block sizes
//
// The geometry of the generic (and AVX2) variant; other variants carry
// their own MR/NR/MC/KC/NC in their translation units and the driver reads
// the active variant's geometry at run time.  Kept as named constants
// because they document the tuning contract (DESIGN.md section 7) and the
// lin/ tests sweep shapes straddling these boundaries.
//
// Register micro-tile: MR x NR accumulators live in registers across the
// whole K loop.  8 x 6 doubles = 12 AVX2 ymm accumulators, leaving
// registers for the A column load and B broadcasts.
inline constexpr i64 MR = 8;
inline constexpr i64 NR = 6;

// Cache blocking: a KC x NR sliver of packed B stays in L1 across the ir
// loop, the MC x KC packed A block stays in L2, and the KC x NC packed B
// panel stays in L3.  Defaults target ~32K L1 / ~1M L2 per core.
inline constexpr i64 MC = 144;  // multiple of MR
inline constexpr i64 KC = 256;
inline constexpr i64 NC = 3072;  // multiple of NR

// fp32 lane geometry of the generic (and AVX2/NEON) variant: twice the
// register-tile rows at the same register count (each SIMD lane carries
// eight floats instead of four doubles) and the same cache-block BYTE
// budgets as the fp64 geometry -- MC32 x KC32 floats occupies exactly the
// bytes MC x KC doubles does, so both lanes share the packing arenas and
// the DESIGN.md section 7 working-set math.  The AVX-512 fp32 variant
// carries its own 32 x 14 geometry in its translation unit.
inline constexpr i64 MR32 = 16;
inline constexpr i64 NR32 = 6;
inline constexpr i64 MC32 = 288;   // multiple of MR32
inline constexpr i64 KC32 = 256;
inline constexpr i64 NC32 = 6144;  // multiple of NR32

// ------------------------------------------------------- kernel variants

/// The micro-kernel family.  `generic` is the portable baseline (GCC/Clang
/// vector extensions with a scalar fallback) and is always executable;
/// the SIMD variants are compiled into every binary (per-file ISA flags)
/// but only executable where the CPU probe says so.
enum class Variant { generic = 0, avx2 = 1, avx512 = 2, neon = 3 };

/// What a CACQR_KERNEL value asks for: a specific variant, automatic
/// selection, or nonsense (which the dispatcher refuses loudly rather
/// than silently falling back -- a forced kernel must never be guessed).
enum class VariantChoice { automatic, generic, avx2, avx512, neon, invalid };

/// Parses a kernel spec: "generic" | "avx2" | "avx512" | "neon" |
/// "auto" -> the matching choice; nullptr and "" -> automatic; anything
/// else -> invalid.  Exposed for testing; the process-wide dispatch below
/// parses the CACQR_KERNEL environment variable once with exactly this
/// rule.
[[nodiscard]] VariantChoice parse_kernel_variant(const char* spec) noexcept;

/// Stable lowercase name of a variant ("generic", "avx2", ...), matching
/// the CACQR_KERNEL spelling and the tune:: profile/plan serialization.
[[nodiscard]] const char* variant_name(Variant v) noexcept;

/// Whether `v` is executable on this host: its translation unit carries a
/// real micro-kernel for this architecture AND the CPU probe (cpuid on
/// x86, baseline ASIMD on AArch64) reports the required features.
/// `generic` is always supported.
[[nodiscard]] bool variant_supported(Variant v) noexcept;

/// Every executable variant, in the fixed order generic, avx2, avx512,
/// neon.  Never empty.
[[nodiscard]] std::vector<Variant> supported_variants();

/// The variant the driver currently dispatches to.  The first call
/// resolves CACQR_KERNEL: a forced variant that is unsupported on this
/// host (or a malformed value) throws cacqr::Error with the supported
/// list; `auto` (the default) picks the widest supported SIMD variant
/// (avx512 > avx2 > neon > generic).
[[nodiscard]] Variant active_variant();

/// Overrides the active variant process-wide and returns the previous
/// one; throws cacqr::Error when `v` is not supported on this host.  For
/// tests and the tune:: calibrator's per-variant sweeps -- do not call
/// while kernels are in flight on other threads (the switch is atomic,
/// but a factorization that changes variant mid-run mixes roundings).
Variant set_kernel_variant(Variant v);

/// Which MR x NR micro-tiles of C the driver computes.  `Lower` computes
/// every tile that intersects the lower triangle (i >= j), `Upper` every
/// tile that intersects the upper triangle (i <= j); tiles strictly on the
/// other side of the diagonal are skipped.  Entries of a diagonal-crossing
/// tile that lie outside the requested triangle receive well-defined but
/// meaningless accumulated values -- callers (gram/syrk_nt) overwrite them
/// by mirroring.  Used to compute only the touched triangle of a symmetric
/// product at micro-tile granularity.
enum class TileFilter { Full, Lower, Upper };

/// C += alpha * op(A) * op(B), all four transpose combinations, through the
/// packed micro-kernel.  C is NOT scaled by beta (callers pre-scale) and no
/// flops are charged.  Shapes must already be validated by the caller:
/// op(A) is c.rows x k, op(B) is k x c.cols.
void gemm_accumulate(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                     ConstMatrixView b, MatrixView c,
                     TileFilter filter = TileFilter::Full);

/// The fp32 lane of the same driver: identical packing/blocking/threading
/// machinery instantiated at float width, dispatching to the active
/// variant's fp32 micro-kernel (every variant carries one; the fp32 twin
/// of a variant is executable exactly when the variant is).  Shares the
/// per-thread packing arenas with the fp64 lane (they are byte pools) and
/// obeys the same one-owner determinism rule: results are bitwise
/// identical across thread budgets, per variant.
void gemm_accumulate_f32(Trans ta, Trans tb, float alpha, ConstMatrixFView a,
                         ConstMatrixFView b, MatrixFView c,
                         TileFilter filter = TileFilter::Full);

/// Process-wide statistics over every thread's packing arenas.  Arenas are
/// thread-local and grow-only, so `allocations` advancing between two
/// same-shape kernel calls means the arena reuse contract broke.
struct ArenaStats {
  i64 allocations = 0;  ///< arena grow events since process start
  i64 bytes_in_use = 0;  ///< bytes currently held across all live arenas
  i64 high_water_bytes = 0;  ///< maximum of bytes_in_use ever observed
};

[[nodiscard]] ArenaStats arena_stats() noexcept;

/// Statistics attributed to one task group (parallel::set_task_group):
/// each arena's capacity is charged to the group that last grew it --
/// including growth on pool workers, which adopt their owner's group per
/// region -- so when many drivers share the process (the serve/
/// scheduler), a lane's growth and footprint are visible in isolation.
/// `bytes_in_use`/`high_water_bytes` are per-group charges (summing the
/// per-group values over all groups equals the process-wide
/// bytes_in_use); `allocations` advancing for a warm group's repeated
/// same-shape jobs means the reuse contract broke for that lane.  An
/// unknown group reads as all zeros.
[[nodiscard]] ArenaStats arena_stats(int group) noexcept;

}  // namespace cacqr::lin::kernel
