#pragma once
/// \file qr.hpp
/// \brief Sequential Householder QR (LAPACK geqrf/orgqr-style).
///
/// Used as (a) the accuracy reference for all CholeskyQR variants, (b) the
/// panel kernel of the ScaLAPACK-style PGEQRF baseline, and (c) the local
/// kernel of the TSQR baseline.

#include <vector>

#include "cacqr/lin/matrix.hpp"

namespace cacqr::lin {

/// In-place Householder QR: on return the upper triangle of `a` holds R
/// and the columns below the diagonal hold the Householder vectors
/// (LAPACK geqrf convention, unit diagonal implicit).  Returns tau.
std::vector<double> geqrf(MatrixView a);

/// Forms the reduced m x n Q factor from geqrf output (LAPACK orgqr).
[[nodiscard]] Matrix orgqr(ConstMatrixView qr_packed,
                           const std::vector<double>& tau);

/// Applies Q^T (from geqrf output) to an m x k matrix in place.
void apply_qt(ConstMatrixView qr_packed, const std::vector<double>& tau,
              MatrixView c);

/// Applies Q (from geqrf output) to an m x k matrix in place.
void apply_q(ConstMatrixView qr_packed, const std::vector<double>& tau,
             MatrixView c);

/// Reduced QR factorization result.
struct QrResult {
  Matrix q;  ///< m x n, orthonormal columns
  Matrix r;  ///< n x n, upper triangular with non-negative diagonal
};

/// Convenience reduced QR via Householder reflections.  The factorization
/// is sign-normalized so R's diagonal is non-negative, which makes the
/// factorization unique and directly comparable to CholeskyQR output.
[[nodiscard]] QrResult householder_qr(ConstMatrixView a);

/// Solves the least-squares problem min ||A x - b||_2 for full-column-rank
/// A (m >= n) via Householder QR.  `b` has one or more right-hand sides.
[[nodiscard]] Matrix lstsq(ConstMatrixView a, ConstMatrixView b);

}  // namespace cacqr::lin
