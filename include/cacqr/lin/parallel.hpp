#pragma once
/// \file parallel.hpp
/// \brief Persistent worker pool for intra-rank thread parallelism.
///
/// Every thread that opens a parallel region owns a private, lazily-created
/// pool of persistent workers (parked on a condition variable between
/// regions, joined when the owning thread exits).  This maps cleanly onto
/// the SPMD runtime -- one rank thread == one pool owner -- so P ranks with
/// a per-rank budget of T threads use exactly P pools of T-1 workers each
/// and never share region state across ranks.
///
/// How many threads a region actually uses is governed by the calling
/// thread's *budget*:
///
///   * every new thread starts with the budget given by the CACQR_THREADS
///     environment variable (default 1, so single-threaded behavior is
///     unchanged unless explicitly requested);
///   * `set_thread_budget` overrides it for the calling thread -- the rank
///     runtime uses this to divide a node budget across ranks
///     (`Runtime::run(P, body, threads_per_rank)`), benches use it to
///     implement `--threads N`.
///
/// Regions never nest: a `run`/`parallel_for` issued from inside a region
/// body (on a worker or on the region's caller) executes inline on the
/// calling thread.  This makes it safe to parallelize leaf kernels without
/// auditing every caller for accidental thread explosions.
///
/// Determinism contract: the primitives here only *partition* index spaces;
/// they never change the order of floating-point operations applied to a
/// given output element.  Callers keep bitwise-identical results across
/// thread counts by (a) giving each output element exactly one owner and
/// (b) never splitting reduction loops (see DESIGN.md section 3).

#include <functional>

#include "cacqr/support/math.hpp"

namespace cacqr::lin::parallel {

namespace detail {
struct Pool;
}

/// Hardware thread count reported by the OS (>= 1; 1 when unknown).
[[nodiscard]] int hardware_threads() noexcept;

/// The CACQR_THREADS environment value, parsed once per process: a positive
/// integer, clamped to [1, 256]; absent or malformed values yield 1.
[[nodiscard]] int env_threads() noexcept;

/// Opt-in NUMA/affinity policy for pool threads (CACQR_AFFINITY).
enum class Affinity {
  off,      ///< default: the OS scheduler places threads freely
  compact,  ///< owner + its workers pinned to consecutive CPUs (one
            ///< rank's team shares a cache/socket neighborhood)
  spread,   ///< team members pinned hw/team CPUs apart (maximum
            ///< aggregate bandwidth on multi-socket hosts)
};

/// Parses an affinity spec: "compact" | "spread" | anything else -> off.
/// Exposed for testing; the process-wide policy below parses the
/// CACQR_AFFINITY environment variable once with exactly this rule.
[[nodiscard]] Affinity parse_affinity(const char* spec) noexcept;

/// The process-wide policy (CACQR_AFFINITY, parsed once; default off).
[[nodiscard]] Affinity affinity_mode() noexcept;

/// The calling thread's worker budget: the maximum team size `parallel_for`
/// will use.  Initialized from `env_threads()` on first use in each thread.
[[nodiscard]] int thread_budget() noexcept;

/// Overrides the calling thread's budget (clamped to [1, 256], the same
/// ceiling env_threads() enforces).
void set_thread_budget(int n) noexcept;

/// Task-group attribution for per-owner resource accounting.  A group id
/// tags the calling thread; its pool workers inherit the owner's group
/// for the duration of each region, so thread-local resources grown on
/// behalf of the owner (the kernel packing arenas, kernel.hpp) can be
/// charged to the driver that caused them even though the bytes live in
/// worker-thread storage.  Group 0 is the default ("unattributed").  The
/// serving scheduler (serve/) assigns one group per rank lane so
/// `kernel::arena_stats(group)` isolates a lane's footprint while many
/// jobs share the process.
[[nodiscard]] int task_group() noexcept;

/// Sets the calling thread's group id and returns the previous one
/// (restore it when the attributed scope closes).  Takes effect for
/// regions opened after the call; a region already in flight keeps the
/// group it started with.
int set_task_group(int group) noexcept;

/// Forked-child recovery: pool worker threads do not survive fork(), so a
/// child process inheriting a live pool would park forever on its first
/// region (dead workers never check in) or crash joining them.  Call this
/// in the child before any parallel region: it abandons the calling
/// thread's inherited pool handle -- deliberately without running the
/// destructor, whose join would hang -- and the next region lazily builds
/// a fresh pool.  The rt shm/mpi process backends call it for every rank.
void reinit_after_fork() noexcept;

/// Contiguous half-open index range.
struct Range {
  i64 begin = 0;
  i64 end = 0;
};

/// Chunk `part` (of `nparts`) of [0, count), split contiguously at `grain`
/// boundaries: unit u covers [u*grain, min((u+1)*grain, count)) and whole
/// units are dealt out as evenly as possible, earlier parts first.  Parts
/// beyond the unit count receive an empty range.
[[nodiscard]] Range split_range(i64 count, i64 grain, int part,
                                int nparts) noexcept;

/// Cooperative progress callback, installed per thread.  When set, the
/// loop splitters below invoke it on the *calling* thread between chunks
/// of work, so an in-flight communication request (rt/ nonblocking
/// collectives) can advance while a memory-bound copy runs.  Workers never
/// inherit the hook (it is thread-local), so communication state is only
/// ever touched by the rank thread that owns it.
using ProgressFn = void (*)(void*);
struct ProgressHook {
  ProgressFn fn = nullptr;
  void* arg = nullptr;
};

/// The calling thread's current hook ({nullptr, nullptr} when unset).
[[nodiscard]] ProgressHook progress_hook() noexcept;

/// Installs `hook` for the calling thread and returns the previous one
/// (restore it when the overlap window closes -- rt::ProgressScope does).
ProgressHook set_progress_hook(ProgressHook hook) noexcept;

/// Handle passed to region bodies: the caller participates as tid 0,
/// workers as tids 1..size-1.
class Team {
 public:
  [[nodiscard]] int tid() const noexcept { return tid_; }
  [[nodiscard]] int size() const noexcept { return size_; }

  /// Blocks until every team member reaches the barrier.  All members of
  /// the region must execute the same sequence of barrier calls, and a
  /// body that uses barriers must not throw between them (a member that
  /// exits early would deadlock the rest).
  void barrier();

  /// This member's chunk of [0, count) per `split_range`.
  [[nodiscard]] Range chunk(i64 count, i64 grain) const noexcept {
    return split_range(count, grain, tid_, size_);
  }

 private:
  friend struct detail::Pool;
  friend void run(int, const std::function<void(Team&)>&);
  Team(int tid, int size, detail::Pool* pool) noexcept
      : tid_(tid), size_(size), pool_(pool) {}
  int tid_;
  int size_;
  detail::Pool* pool_;
};

/// Runs `body(team)` on exactly max(1, nthreads) team members, reusing (and
/// growing) the calling thread's persistent pool; returns after all members
/// finish.  The first exception thrown by any member is rethrown here.
/// Called from inside a region, the body runs inline with a team of one.
/// Note this does NOT consult `thread_budget` -- it is the raw primitive;
/// use `parallel_for` (or clamp manually) for budget-aware work splitting.
void run(int nthreads, const std::function<void(Team&)>& body);

/// True while the calling thread is executing a region body (as caller or
/// worker); further regions it opens run inline.
[[nodiscard]] bool in_region() noexcept;

namespace detail {

/// Runs body over [begin, end) in grain-aligned sub-chunks (at most ~8),
/// invoking the progress hook after each.  Sub-chunking is equivalent to
/// running with more team members, so the one-owner determinism contract
/// keeps results bitwise identical to the single-call path.
template <class Body>
void chunked_with_progress(i64 begin, i64 end, i64 grain,
                           const ProgressHook& hook, Body&& body) {
  const i64 units = ceil_div(end - begin, grain);
  const i64 step = ceil_div(units, i64{8}) * grain;
  for (i64 b = begin; b < end; b += step) {
    body(b, b + step < end ? b + step : end);
    hook.fn(hook.arg);
  }
}

}  // namespace detail

/// Budget-aware contiguous loop split: partitions [0, count) at `grain`
/// boundaries over min(thread_budget(), ceil(count/grain)) team members and
/// invokes body(begin, end) once per non-empty chunk.  A template so the
/// ubiquitous single-chunk / budget-1 case is a direct, inlinable call --
/// kernels wrapped in parallel_for keep their sequential code generation
/// (constant folding of enum arguments included) when threading is off.
///
/// With a progress hook installed (overlap windows), the calling thread's
/// share is further sub-chunked and the hook fires between sub-chunks --
/// body invocation boundaries change, which the one-owner contract makes
/// invisible to results.
template <class Body>
void parallel_for(i64 count, i64 grain, Body&& body) {
  if (count <= 0) return;
  const i64 g = grain < 1 ? 1 : grain;
  const i64 units = ceil_div(count, g);
  const i64 width = units < thread_budget() ? units : thread_budget();
  const ProgressHook hook = progress_hook();
  if (width <= 1 || in_region()) {
    if (hook.fn == nullptr || units <= 1) {
      body(i64{0}, count);
    } else {
      detail::chunked_with_progress(i64{0}, count, g, hook, body);
    }
    return;
  }
  run(static_cast<int>(width > 256 ? 256 : width), [&](Team& team) {
    const Range r = team.chunk(count, g);
    if (r.begin >= r.end) return;
    if (team.tid() == 0 && hook.fn != nullptr) {
      detail::chunked_with_progress(r.begin, r.end, g, hook, body);
    } else {
      body(r.begin, r.end);
    }
  });
  // One more poll after the join: the region may have outlived several
  // message arrivals.
  if (hook.fn != nullptr) hook.fn(hook.arg);
}

/// Minimum elements per chunk for memory-bound 2D sweeps (64 KB of
/// doubles): below this the fork/join handoff costs more than the copy.
inline constexpr i64 kMemoryBoundGrain = 8192;

/// Budget-aware split of a rows x cols column-major index space at whole
/// column granularity: invokes body(j_begin, j_end) with the column grain
/// chosen so every chunk covers at least `min_elems` elements.  This is the
/// splitter for the dist-layer local stages (gather unpack, transpose
/// permutes, block copies, add_scaled): columns of the output are dealt to
/// exactly one team member, so the one-owner determinism rule holds by
/// construction, and tiny local blocks stay on the calling thread.
template <class Body>
void parallel_for_cols(i64 rows, i64 cols, i64 min_elems, Body&& body) {
  const i64 r = rows < 1 ? 1 : rows;
  const i64 e = min_elems < 1 ? 1 : min_elems;
  parallel_for(cols, ceil_div(e, r), static_cast<Body&&>(body));
}

template <class Body>
void parallel_for_cols(i64 rows, i64 cols, Body&& body) {
  parallel_for_cols(rows, cols, kMemoryBoundGrain, static_cast<Body&&>(body));
}

}  // namespace cacqr::lin::parallel
