#pragma once
/// \file matrix_f.hpp
/// \brief Single-precision companions of Matrix/MatrixView for the fp32
///        kernel lane.
///
/// Deliberately a separate, smaller family than matrix.hpp: fp32
/// operands exist only on the mixed-precision Gram path (pack -> gram ->
/// allreduce -> widen), so the views carry just what the kernel driver
/// and the collectives need.
///
/// MatrixF stores its floats inside double-backed storage (capacity
/// rounded up to a whole number of doubles).  That buys two things for
/// free: the payload is always 8-byte aligned, and `wire()` can hand the
/// modeled runtime a `std::span<double>` covering the same bytes -- the
/// collectives keep moving 8-byte words, every word now carrying two
/// floats, so the halved beta charge of the fp32 Allreduce falls out of
/// the existing word counters without touching them.

#include <cstring>
#include <span>
#include <vector>

#include "cacqr/lin/matrix.hpp"

namespace cacqr::lin {

/// Non-owning read-only view of a column-major fp32 matrix block.
struct ConstMatrixFView {
  const float* data = nullptr;
  i64 rows = 0;
  i64 cols = 0;
  i64 ld = 0;  ///< leading dimension (>= rows)

  [[nodiscard]] const float& operator()(i64 i, i64 j) const noexcept {
    return data[i + j * ld];
  }

  [[nodiscard]] ConstMatrixFView sub(i64 i0, i64 j0, i64 h, i64 w) const {
    ensure_dim(i0 >= 0 && j0 >= 0 && i0 + h <= rows && j0 + w <= cols,
               "ConstMatrixFView::sub out of range");
    return {data + i0 + j0 * ld, h, w, ld};
  }
};

/// Non-owning mutable view of a column-major fp32 matrix block.
struct MatrixFView {
  float* data = nullptr;
  i64 rows = 0;
  i64 cols = 0;
  i64 ld = 0;

  [[nodiscard]] float& operator()(i64 i, i64 j) const noexcept {
    return data[i + j * ld];
  }

  [[nodiscard]] MatrixFView sub(i64 i0, i64 j0, i64 h, i64 w) const {
    ensure_dim(i0 >= 0 && j0 >= 0 && i0 + h <= rows && j0 + w <= cols,
               "MatrixFView::sub out of range");
    return {data + i0 + j0 * ld, h, w, ld};
  }

  operator ConstMatrixFView() const noexcept {  // NOLINT(google-explicit-*)
    return {data, rows, cols, ld};
  }
};

/// Owning dense column-major fp32 matrix (leading dimension == rows).
class MatrixF {
 public:
  MatrixF() = default;

  /// Allocates an m x n matrix of zeros (all-zero bits == 0.0f).
  MatrixF(i64 m, i64 n) : rows_(m), cols_(n) {
    ensure_dim(m >= 0 && n >= 0, "MatrixF: negative dimension");
    store_.assign(words_for(checked_mul(m, n)), 0.0);
  }

  /// Allocates an m x n matrix with UNINITIALIZED storage (same contract
  /// as Matrix::uninit: every element overwritten before it is read).
  [[nodiscard]] static MatrixF uninit(i64 m, i64 n) {
    ensure_dim(m >= 0 && n >= 0, "MatrixF::uninit: negative dimension");
    MatrixF out;
    out.rows_ = m;
    out.cols_ = n;
    out.store_.resize(words_for(checked_mul(m, n)));
    return out;
  }

  [[nodiscard]] i64 rows() const noexcept { return rows_; }
  [[nodiscard]] i64 cols() const noexcept { return cols_; }
  [[nodiscard]] i64 size() const { return checked_mul(rows_, cols_); }
  [[nodiscard]] float* data() noexcept {
    return reinterpret_cast<float*>(store_.data());
  }
  [[nodiscard]] const float* data() const noexcept {
    return reinterpret_cast<const float*>(store_.data());
  }

  [[nodiscard]] float& operator()(i64 i, i64 j) noexcept {
    return data()[i + j * rows_];
  }
  [[nodiscard]] const float& operator()(i64 i, i64 j) const noexcept {
    return data()[i + j * rows_];
  }

  [[nodiscard]] MatrixFView view() noexcept {
    return {data(), rows_, cols_, rows_};
  }
  [[nodiscard]] ConstMatrixFView view() const noexcept {
    return {data(), rows_, cols_, rows_};
  }

  operator MatrixFView() noexcept { return view(); }            // NOLINT
  operator ConstMatrixFView() const noexcept { return view(); }  // NOLINT

  /// The matrix's bytes as whole 8-byte words for the modeled runtime's
  /// collectives (two floats per word).  Zeroes the tail pad float first
  /// when the element count is odd, so reductions over the pad lane stay
  /// deterministic (0 + 0 == 0) and never read uninitialized bits.
  [[nodiscard]] std::span<double> wire() {
    const i64 n = size();
    if (n % 2 != 0) data()[n] = 0.0f;
    return {store_.data(), static_cast<std::size_t>(words_for(n))};
  }

 private:
  [[nodiscard]] static i64 words_for(i64 floats) { return (floats + 1) / 2; }

  i64 rows_ = 0;
  i64 cols_ = 0;
  std::vector<double, detail::DefaultInitAlloc<double>> store_;
};

}  // namespace cacqr::lin
