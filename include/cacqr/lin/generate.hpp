#pragma once
/// \file generate.hpp
/// \brief Deterministic test/bench matrix generators.
///
/// The paper's experiments use random matrices.  These generators add
/// controlled conditioning (via prescribed singular values) so stability
/// properties of the CholeskyQR family are testable, and they are
/// deterministic in the seed so every SPMD rank can regenerate the same
/// global matrix without communication.

#include <vector>

#include "cacqr/lin/matrix.hpp"
#include "cacqr/support/rng.hpp"

namespace cacqr::lin {

/// m x n matrix of iid standard normal entries.
[[nodiscard]] Matrix gaussian(Rng& rng, i64 m, i64 n);

/// Random n x n orthogonal matrix (Q factor of a Gaussian matrix,
/// sign-normalized; Haar-distributed).
[[nodiscard]] Matrix random_orthogonal(Rng& rng, i64 n);

/// m x n matrix (m >= n) with the prescribed singular values:
/// A = U diag(sigma) V^T with random orthonormal U (m x n) and V (n x n).
[[nodiscard]] Matrix with_singular_values(Rng& rng, i64 m, i64 n,
                                          const std::vector<double>& sigma);

/// m x n matrix with 2-norm condition number ~kappa (geometrically spaced
/// singular values from 1 down to 1/kappa).
[[nodiscard]] Matrix with_cond(Rng& rng, i64 m, i64 n, double kappa);

/// Random n x n SPD matrix with condition number ~kappa.
[[nodiscard]] Matrix spd_with_cond(Rng& rng, i64 n, double kappa);

/// Deterministic pseudo-random m x n matrix defined purely by (seed, i, j):
/// every rank of a distributed run can evaluate any entry independently.
/// Entries are in [-1, 1] with a well-conditioned tall-matrix distribution.
[[nodiscard]] double entry_hash(u64 seed, i64 i, i64 j) noexcept;

/// Materializes entry_hash over an m x n matrix.
[[nodiscard]] Matrix hashed_matrix(u64 seed, i64 m, i64 n);

}  // namespace cacqr::lin
