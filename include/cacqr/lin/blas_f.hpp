#pragma once
/// \file blas_f.hpp
/// \brief The fp32 lane of the level-3 subset, plus the precision
///        conversions that bracket it.
///
/// Only what the mixed-precision Gram path needs: narrow the fp64 panel
/// to fp32, run the Gram (or its c > 1 gemm form) through the fp32
/// micro-kernel lane, ship the half-width payload through the runtime,
/// widen the agreed result back to fp64.  Everything downstream
/// (Cholesky, triangular solves, the correction sweep) stays fp64.
///
/// Flop accounting: the fp32 kernels charge the SAME closed-form flop
/// counts as their fp64 twins.  The gamma tally counts operations, not
/// seconds; the fact that an fp32 flop is cheaper is a machine property,
/// carried by the per-precision gamma rates in tune::MachineProfile, so
/// modeled costs stay comparable across precisions.

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/matrix.hpp"
#include "cacqr/lin/matrix_f.hpp"

namespace cacqr::lin {

/// b = (float) a, elementwise (shapes must match).  Column-split across
/// the calling thread's worker budget under the one-owner rule: bitwise
/// deterministic at any budget (rounding is elementwise, order-free).
void narrow(ConstMatrixView a, MatrixFView b);

/// b = (double) a, elementwise (shapes must match; exact -- every float
/// is representable as a double).  Threaded like narrow().
void widen(ConstMatrixFView a, MatrixView b);

/// C = alpha * op(A) * op(B) + beta * C in fp32 through the packed
/// micro-kernel's fp32 lane.  Charges the fp64 gemm's 2mnk flops.
void gemm_f32(Trans ta, Trans tb, float alpha, ConstMatrixFView a,
              ConstMatrixFView b, float beta, MatrixFView c);

/// C = alpha * A^T A + beta * C in fp32, full symmetric result (lower
/// triangle computed through the fp32 kernel lane, then mirrored), the
/// fp32 twin of lin::gram.  Charges m*n*(n+1) flops like its fp64 twin.
void gram_f32(float alpha, ConstMatrixFView a, float beta, MatrixFView c);

}  // namespace cacqr::lin
