#pragma once
/// \file blas.hpp
/// \brief Sequential BLAS-subset kernels (levels 1-3).
///
/// These kernels substitute for a vendor BLAS (none is available in the
/// build environment): same mathematical contracts, same flop counts,
/// column-major layout.  All level-3 kernels route through the packed,
/// register-tiled micro-kernel core in kernel.hpp (gemm in all four
/// transpose cases; gram/syrk_nt as triangle-filtered tile sweeps;
/// trmm/trsm as blocked recursions whose off-diagonal updates are gemms).
/// Flop counts are charged as closed-form formulas independent of the
/// blocking strategy -- absolute kernel speed only rescales the machine
/// model's gamma parameter (see DESIGN.md section 1).

#include "cacqr/lin/matrix.hpp"

namespace cacqr::lin {

/// Transpose selector for gemm-like kernels.
enum class Trans { N, T };
/// Triangular-storage selector.
enum class Uplo { Lower, Upper };
/// Multiplication side for triangular kernels.
enum class Side { Left, Right };
/// Unit-diagonal selector for triangular kernels.
enum class Diag { NonUnit, Unit };

// ----------------------------------------------------------------- level 1

/// y += alpha * x (element count taken from x; shapes must match).
void axpy(double alpha, ConstMatrixView x, MatrixView y);

/// x *= alpha.
void scal(double alpha, MatrixView x);

/// Frobenius inner product <x, y> = sum_ij x_ij * y_ij.
[[nodiscard]] double dot(ConstMatrixView x, ConstMatrixView y);

/// Euclidean/Frobenius norm of the view.
[[nodiscard]] double nrm2(ConstMatrixView x);

// ----------------------------------------------------------------- level 2

/// y = alpha * op(A) * x + beta * y, with x and y column vectors.
void gemv(Trans trans, double alpha, ConstMatrixView a, ConstMatrixView x,
          double beta, MatrixView y);

// ----------------------------------------------------------------- level 3

/// C = alpha * op(A) * op(B) + beta * C.
void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c);

/// Convenience: C = A * B.
void matmul(ConstMatrixView a, ConstMatrixView b, MatrixView c);

/// C = alpha * A^T A + beta * C, full symmetric result (both triangles
/// written).  Performs m*n^2 flops -- half of the equivalent gemm -- by
/// computing the lower triangle and mirroring, exactly like the Syrk the
/// paper charges in Algorithms 4/6/8.
void gram(double alpha, ConstMatrixView a, double beta, MatrixView c);

/// C = alpha * A A^T + beta * C (lower triangle computed, mirrored).
/// Used by the blocked Cholesky trailing update.
void syrk_nt(double alpha, ConstMatrixView a, double beta, MatrixView c,
             Uplo uplo);

/// Triangular multiply: B = alpha * op(T) * B (Side::Left) or
/// B = alpha * B * op(T) (Side::Right), T triangular per uplo/diag.
void trmm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b);

/// Triangular solve: op(T) * X = alpha * B (Side::Left) or
/// X * op(T) = alpha * B (Side::Right); X overwrites B.
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b);

}  // namespace cacqr::lin
