#pragma once
/// \file matrix.hpp
/// \brief Dense column-major matrix container and non-owning strided views.
///
/// All linear-algebra kernels in the library operate on these types.
/// Storage is column-major (BLAS/LAPACK convention) with an explicit
/// leading dimension on views so that sub-blocks of a larger matrix can be
/// addressed without copying.

#include <cstddef>
#include <vector>

#include "cacqr/support/error.hpp"
#include "cacqr/support/math.hpp"

namespace cacqr::lin {

/// Non-owning read-only view of a column-major matrix block.
struct ConstMatrixView {
  const double* data = nullptr;
  i64 rows = 0;
  i64 cols = 0;
  i64 ld = 0;  ///< leading dimension (>= rows)

  [[nodiscard]] const double& operator()(i64 i, i64 j) const noexcept {
    return data[i + j * ld];
  }

  /// Read-only sub-block of size h x w starting at (i0, j0).
  [[nodiscard]] ConstMatrixView sub(i64 i0, i64 j0, i64 h, i64 w) const {
    ensure_dim(i0 >= 0 && j0 >= 0 && i0 + h <= rows && j0 + w <= cols,
               "ConstMatrixView::sub out of range");
    return {data + i0 + j0 * ld, h, w, ld};
  }
};

/// Non-owning mutable view of a column-major matrix block.
struct MatrixView {
  double* data = nullptr;
  i64 rows = 0;
  i64 cols = 0;
  i64 ld = 0;

  [[nodiscard]] double& operator()(i64 i, i64 j) const noexcept {
    return data[i + j * ld];
  }

  [[nodiscard]] MatrixView sub(i64 i0, i64 j0, i64 h, i64 w) const {
    ensure_dim(i0 >= 0 && j0 >= 0 && i0 + h <= rows && j0 + w <= cols,
               "MatrixView::sub out of range");
    return {data + i0 + j0 * ld, h, w, ld};
  }

  /// Implicit decay to a read-only view.
  operator ConstMatrixView() const noexcept {  // NOLINT(google-explicit-*)
    return {data, rows, cols, ld};
  }
};

/// Owning dense column-major matrix (leading dimension == rows).
class Matrix {
 public:
  Matrix() = default;

  /// Allocates an m x n matrix of zeros.
  Matrix(i64 m, i64 n)
      : rows_(m), cols_(n),
        store_(static_cast<std::size_t>(checked_mul(m, n)), 0.0) {
    ensure_dim(m >= 0 && n >= 0, "Matrix: negative dimension");
  }

  [[nodiscard]] i64 rows() const noexcept { return rows_; }
  [[nodiscard]] i64 cols() const noexcept { return cols_; }
  [[nodiscard]] i64 size() const { return checked_mul(rows_, cols_); }
  [[nodiscard]] double* data() noexcept { return store_.data(); }
  [[nodiscard]] const double* data() const noexcept { return store_.data(); }

  [[nodiscard]] double& operator()(i64 i, i64 j) noexcept {
    return store_[static_cast<std::size_t>(i + j * rows_)];
  }
  [[nodiscard]] const double& operator()(i64 i, i64 j) const noexcept {
    return store_[static_cast<std::size_t>(i + j * rows_)];
  }

  [[nodiscard]] MatrixView view() noexcept {
    return {store_.data(), rows_, cols_, rows_};
  }
  [[nodiscard]] ConstMatrixView view() const noexcept {
    return {store_.data(), rows_, cols_, rows_};
  }

  /// Implicit conversion to views so kernels can take Matrix directly.
  operator MatrixView() noexcept { return view(); }          // NOLINT
  operator ConstMatrixView() const noexcept { return view(); }  // NOLINT

  [[nodiscard]] MatrixView sub(i64 i0, i64 j0, i64 h, i64 w) {
    return view().sub(i0, j0, h, w);
  }
  [[nodiscard]] ConstMatrixView sub(i64 i0, i64 j0, i64 h, i64 w) const {
    return view().sub(i0, j0, h, w);
  }

  /// n x n identity.
  [[nodiscard]] static Matrix identity(i64 n) {
    Matrix I(n, n);
    for (i64 i = 0; i < n; ++i) I(i, i) = 1.0;
    return I;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.store_ == b.store_;
  }

 private:
  i64 rows_ = 0;
  i64 cols_ = 0;
  std::vector<double> store_;
};

/// Copies a view into a freshly-allocated owning matrix.  The column
/// copies are split over the calling thread's worker team (via lin::copy;
/// defined in util.cpp), so the collective staging buffers on the ca_gram
/// / mm3d / transpose3d hot paths inherit the dist-stage threading; at a
/// budget of 1 the copy runs inline, one std::copy per column.
[[nodiscard]] Matrix materialize(ConstMatrixView a);

}  // namespace cacqr::lin
