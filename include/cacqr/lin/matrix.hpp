#pragma once
/// \file matrix.hpp
/// \brief Dense column-major matrix container and non-owning strided views.
///
/// All linear-algebra kernels in the library operate on these types.
/// Storage is column-major (BLAS/LAPACK convention) with an explicit
/// leading dimension on views so that sub-blocks of a larger matrix can be
/// addressed without copying.

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "cacqr/support/error.hpp"
#include "cacqr/support/math.hpp"

namespace cacqr::lin {

namespace detail {

/// std::allocator with default-initializing construct: `resize(n)` leaves
/// doubles uninitialized instead of zero-filling, while value construction
/// (`assign(n, 0.0)`, copies) behaves exactly as before.  Matrix uses it so
/// `Matrix::uninit` can skip the sequential zero pass on staging buffers
/// that are fully overwritten anyway (and so first-touch page placement
/// happens in the threaded writer, not the allocating thread).
template <class T>
struct DefaultInitAlloc : std::allocator<T> {
  using std::allocator<T>::allocator;
  template <class U>
  struct rebind {
    using other = DefaultInitAlloc<U>;
  };
  template <class U>
  void construct(U* p) noexcept(noexcept(::new (static_cast<void*>(p)) U)) {
    ::new (static_cast<void*>(p)) U;
  }
  template <class U, class... Args>
  void construct(U* p, Args&&... args) {
    std::allocator_traits<std::allocator<T>>::construct(
        *static_cast<std::allocator<T>*>(this), p,
        std::forward<Args>(args)...);
  }
};

}  // namespace detail

/// Non-owning read-only view of a column-major matrix block.
struct ConstMatrixView {
  const double* data = nullptr;
  i64 rows = 0;
  i64 cols = 0;
  i64 ld = 0;  ///< leading dimension (>= rows)

  [[nodiscard]] const double& operator()(i64 i, i64 j) const noexcept {
    return data[i + j * ld];
  }

  /// Read-only sub-block of size h x w starting at (i0, j0).
  [[nodiscard]] ConstMatrixView sub(i64 i0, i64 j0, i64 h, i64 w) const {
    ensure_dim(i0 >= 0 && j0 >= 0 && i0 + h <= rows && j0 + w <= cols,
               "ConstMatrixView::sub out of range");
    return {data + i0 + j0 * ld, h, w, ld};
  }
};

/// Non-owning mutable view of a column-major matrix block.
struct MatrixView {
  double* data = nullptr;
  i64 rows = 0;
  i64 cols = 0;
  i64 ld = 0;

  [[nodiscard]] double& operator()(i64 i, i64 j) const noexcept {
    return data[i + j * ld];
  }

  [[nodiscard]] MatrixView sub(i64 i0, i64 j0, i64 h, i64 w) const {
    ensure_dim(i0 >= 0 && j0 >= 0 && i0 + h <= rows && j0 + w <= cols,
               "MatrixView::sub out of range");
    return {data + i0 + j0 * ld, h, w, ld};
  }

  /// Implicit decay to a read-only view.
  operator ConstMatrixView() const noexcept {  // NOLINT(google-explicit-*)
    return {data, rows, cols, ld};
  }
};

/// Owning dense column-major matrix (leading dimension == rows).
class Matrix {
 public:
  Matrix() = default;

  /// Allocates an m x n matrix of zeros.
  Matrix(i64 m, i64 n)
      : rows_(m), cols_(n),
        store_(static_cast<std::size_t>(checked_mul(m, n)), 0.0) {
    ensure_dim(m >= 0 && n >= 0, "Matrix: negative dimension");
  }

  /// Allocates an m x n matrix with UNINITIALIZED storage: no zero pass.
  /// Only for staging buffers whose every element is overwritten before
  /// being read (bcast destinations, materialize/copy targets, beta == 0
  /// kernel outputs); anything relying on zeros -- identity off-diagonals,
  /// DistMatrix construction, padding -- must use the zeroing constructor.
  [[nodiscard]] static Matrix uninit(i64 m, i64 n) {
    ensure_dim(m >= 0 && n >= 0, "Matrix::uninit: negative dimension");
    Matrix out;
    out.rows_ = m;
    out.cols_ = n;
    out.store_.resize(static_cast<std::size_t>(checked_mul(m, n)));
    return out;
  }

  [[nodiscard]] i64 rows() const noexcept { return rows_; }
  [[nodiscard]] i64 cols() const noexcept { return cols_; }
  [[nodiscard]] i64 size() const { return checked_mul(rows_, cols_); }
  [[nodiscard]] double* data() noexcept { return store_.data(); }
  [[nodiscard]] const double* data() const noexcept { return store_.data(); }

  [[nodiscard]] double& operator()(i64 i, i64 j) noexcept {
    return store_[static_cast<std::size_t>(i + j * rows_)];
  }
  [[nodiscard]] const double& operator()(i64 i, i64 j) const noexcept {
    return store_[static_cast<std::size_t>(i + j * rows_)];
  }

  [[nodiscard]] MatrixView view() noexcept {
    return {store_.data(), rows_, cols_, rows_};
  }
  [[nodiscard]] ConstMatrixView view() const noexcept {
    return {store_.data(), rows_, cols_, rows_};
  }

  /// Implicit conversion to views so kernels can take Matrix directly.
  operator MatrixView() noexcept { return view(); }          // NOLINT
  operator ConstMatrixView() const noexcept { return view(); }  // NOLINT

  [[nodiscard]] MatrixView sub(i64 i0, i64 j0, i64 h, i64 w) {
    return view().sub(i0, j0, h, w);
  }
  [[nodiscard]] ConstMatrixView sub(i64 i0, i64 j0, i64 h, i64 w) const {
    return view().sub(i0, j0, h, w);
  }

  /// n x n identity.
  [[nodiscard]] static Matrix identity(i64 n) {
    Matrix I(n, n);
    for (i64 i = 0; i < n; ++i) I(i, i) = 1.0;
    return I;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.store_ == b.store_;
  }

 private:
  i64 rows_ = 0;
  i64 cols_ = 0;
  std::vector<double, detail::DefaultInitAlloc<double>> store_;
};

/// Copies a view into a freshly-allocated owning matrix (uninitialized
/// storage: the copy overwrites every element).  The column copies are
/// split over the calling thread's worker team (via lin::copy; defined in
/// util.cpp), so the collective staging buffers on the ca_gram / mm3d /
/// transpose3d hot paths inherit the dist-stage threading; at a budget of
/// 1 the copy runs inline, one std::copy per column.
[[nodiscard]] Matrix materialize(ConstMatrixView a);

}  // namespace cacqr::lin
