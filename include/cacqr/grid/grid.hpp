#pragma once
/// \file grid.hpp
/// \brief 3D processor grids: the cubic grid used by MM3D/CFR3D and the
///        tunable c x d x c grid of CA-CQR2 (paper Section III-B).
///
/// Axis conventions follow the paper: a rank has coordinates (x, y, z);
/// "row" communicators vary x (Pi[:, y, z]), "column" communicators vary y
/// (Pi[x, :, z]), "depth" communicators vary z (Pi[x, y, :]).  Matrices
/// are distributed over the (x, y) dimensions of each z-slice -- matrix
/// rows cycle over y, matrix columns over x -- and replicated across z.

#include "cacqr/rt/comm.hpp"

namespace cacqr::grid {

/// 3D grid coordinates.
struct Coords {
  int x = 0;
  int y = 0;
  int z = 0;
};

/// Cubic g x g x g grid over a communicator of exactly g^3 ranks, with
/// rank linearization rank = x + g*(y + g*z).  Construction is collective.
class CubeGrid {
 public:
  CubeGrid(rt::Comm cube, int g);

  [[nodiscard]] int g() const noexcept { return g_; }
  [[nodiscard]] const Coords& coords() const noexcept { return coords_; }

  [[nodiscard]] const rt::Comm& cube() const noexcept { return cube_; }
  /// Pi[:, y, z]: varies x; size g; comm rank == x.
  [[nodiscard]] const rt::Comm& row() const noexcept { return row_; }
  /// Pi[x, :, z]: varies y; size g; comm rank == y.
  [[nodiscard]] const rt::Comm& col() const noexcept { return col_; }
  /// Pi[x, y, :]: varies z; size g; comm rank == z.
  [[nodiscard]] const rt::Comm& depth() const noexcept { return depth_; }
  /// Pi[:, :, z]: varies (x, y); size g^2; comm rank == x + g*y.
  [[nodiscard]] const rt::Comm& slice() const noexcept { return slice_; }

  /// Rank of coordinates (x, y) within the slice communicator.
  [[nodiscard]] int slice_rank(int x, int y) const noexcept {
    return x + g_ * y;
  }

 private:
  int g_;
  Coords coords_;
  rt::Comm cube_;
  rt::Comm row_;
  rt::Comm col_;
  rt::Comm depth_;
  rt::Comm slice_;
};

/// Tunable c x d x c grid of CA-CQR2: P = c^2 * d ranks with coordinates
/// x, z in [0, c) and y in [0, d); rank = x + c*(y + d*z).  Requires
/// c | d so the grid decomposes into d/c cubic subgrids (Algorithm 8
/// line 6).  c == 1 degenerates to the 1D-CQR2 layout; c == d == P^(1/3)
/// is the full 3D grid.  Construction is collective.
class TunableGrid {
 public:
  TunableGrid(rt::Comm world, int c, int d);

  [[nodiscard]] int c() const noexcept { return c_; }
  [[nodiscard]] int d() const noexcept { return d_; }
  [[nodiscard]] const Coords& coords() const noexcept { return coords_; }

  [[nodiscard]] const rt::Comm& world() const noexcept { return world_; }
  /// Pi[:, y, z]: varies x; size c; comm rank == x.
  [[nodiscard]] const rt::Comm& row() const noexcept { return row_; }
  /// Pi[x, :, z]: varies y; size d; comm rank == y.
  [[nodiscard]] const rt::Comm& col() const noexcept { return col_; }
  /// Pi[x, y, :]: varies z; size c; comm rank == z.
  [[nodiscard]] const rt::Comm& depth() const noexcept { return depth_; }
  /// Pi[:, :, z]: varies (x, y); size c*d; comm rank == x + c*y.
  [[nodiscard]] const rt::Comm& slice() const noexcept { return slice_; }
  /// Pi[x, c*floor(y/c) : c*ceil((y+1)/c), z]: the contiguous y-group of
  /// size c used by the Reduce of Algorithm 8 line 3; comm rank == y mod c.
  [[nodiscard]] const rt::Comm& ygroup_contig() const noexcept {
    return ygroup_contig_;
  }
  /// Pi[x, y mod c :: c, z]: the strided y-group of size d/c used by the
  /// Allreduce of Algorithm 8 line 4; comm rank == floor(y / c).
  [[nodiscard]] const rt::Comm& ygroup_strided() const noexcept {
    return ygroup_strided_;
  }

  /// Which of the d/c cubic subgrids this rank belongs to (floor(y/c)).
  [[nodiscard]] int subcube_index() const noexcept { return coords_.y / c_; }
  /// The c x c x c subgrid containing this rank, with subcube coordinates
  /// (x' = x, y' = y mod c, z' = z): the Pi_subcube of Algorithm 8.
  [[nodiscard]] const CubeGrid& subcube() const noexcept { return *subcube_; }

  /// True iff (c, d) is a valid shape for nranks processors.
  [[nodiscard]] static bool valid_shape(int nranks, int c, int d) noexcept {
    return c >= 1 && d >= 1 && d % c == 0 &&
           static_cast<long long>(c) * c * d == nranks;
  }

 private:
  int c_;
  int d_;
  Coords coords_;
  rt::Comm world_;
  rt::Comm row_;
  rt::Comm col_;
  rt::Comm depth_;
  rt::Comm slice_;
  rt::Comm ygroup_contig_;
  rt::Comm ygroup_strided_;
  std::unique_ptr<CubeGrid> subcube_;
};

}  // namespace cacqr::grid
