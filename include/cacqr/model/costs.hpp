#pragma once
/// \file costs.hpp
/// \brief Analytic alpha-beta-gamma cost functions for every algorithm in
///        the library, composed per-line from the paper's Tables II-VI.
///
/// Each function mirrors the corresponding implementation operation by
/// operation -- same collectives, same operand sizes, same kernel flop
/// conventions -- so that instrumented small-scale runs validate the
/// model (bench_model_validation), which is then evaluated at paper scale
/// (up to 131072 ranks) to regenerate the evaluation figures.
///
/// Conventions: alpha counts messages on a rank's critical path (for
/// collectives, the busiest member -- e.g. the broadcast root); beta
/// counts 8-byte words sent by that rank; gamma counts flops with the
/// kernel conventions of cacqr::lin (gram = mn(n+1), gemm = 2mnk, ...).

#include "cacqr/model/machine.hpp"

namespace cacqr::model {

/// One rank's critical-path cost tally.
struct Cost {
  double alpha = 0.0;  ///< messages
  double beta = 0.0;   ///< words
  double gamma = 0.0;  ///< flops
  double mem = 0.0;    ///< peak extra memory, words (max over phases)

  Cost& operator+=(const Cost& o) noexcept {
    alpha += o.alpha;
    beta += o.beta;
    gamma += o.gamma;
    mem = mem > o.mem ? mem : o.mem;  // phases reuse memory: take the max
    return *this;
  }
  friend Cost operator+(Cost a, const Cost& b) noexcept { return a += b; }
  [[nodiscard]] Cost times(double f) const noexcept {
    return {alpha * f, beta * f, gamma * f, mem};
  }
  /// Modeled execution time on the given machine.
  [[nodiscard]] double time(const Machine& m) const noexcept {
    return alpha * m.alpha_s + beta * m.beta_s + gamma * m.gamma_s;
  }
};

// -------------------------------------------------- collective primitives
// These mirror src/rt/collectives.cpp exactly (butterfly algorithms).

[[nodiscard]] Cost cost_bcast(double words, double p);
[[nodiscard]] Cost cost_allreduce(double words, double p);
[[nodiscard]] Cost cost_reduce(double words, double p);  // == allreduce
[[nodiscard]] Cost cost_allgather(double total_words, double p);
[[nodiscard]] Cost cost_transpose(double words, double p);

// ------------------------------------------------------- kernel gammas
// Mirror the flop accounting in cacqr::lin.

[[nodiscard]] double flops_gemm(double m, double k, double n);
[[nodiscard]] double flops_gram(double m, double n);
[[nodiscard]] double flops_trmm(double rows, double n);
[[nodiscard]] double flops_cholinv(double n);
[[nodiscard]] double flops_geqrf(double m, double n);

// ----------------------------------------------------------- algorithms

/// MM3D (Algorithm 1) of (m x k) * (k x n) on a g^3 cube.
[[nodiscard]] Cost cost_mm3d(double m, double k, double n, double g);

/// CFR3D (Algorithm 3) of an n x n SPD matrix on a g^3 cube with base
/// case n0 (0 = the implementation's default, max(g, n/g^2)) and the
/// InverseDepth knob (top levels skipping the Y21 multiplies, with L21
/// recovered by block back-substitution).
[[nodiscard]] Cost cost_cfr3d(double n, double g, double n0 = 0.0,
                              int inverse_depth = 0);

/// Lines 1-5 of one CA-CQR pass (Algorithm 8): the Gram assembly -- the
/// panel broadcast, the local Gram/gemm, and the reduce / allreduce /
/// broadcast of the n^2/c^2 block.  Exposed separately because this is
/// exactly the phase the mixed-precision driver can run in fp32: the
/// planner re-scores it with half the beta words and the fp32 gamma rate
/// (the alpha term, and everything outside this stage, is unchanged).
/// With c == 1 this is 1D-CQR's local Gram + Allreduce(n^2, d).
[[nodiscard]] Cost cost_gram_stage(double m, double n, double c, double d);

/// One CA-CQR pass (Algorithm 8) of m x n on a c x d x c grid.
[[nodiscard]] Cost cost_ca_cqr(double m, double n, double c, double d,
                               double n0 = 0.0, int inverse_depth = 0);

/// CA-CQR2 (Algorithm 9).  With c == 1 this is exactly 1D-CQR2's cost;
/// with c == d == P^(1/3) the 3D-CQR2 cost.
[[nodiscard]] Cost cost_ca_cqr2(double m, double n, double c, double d,
                                double n0 = 0.0, int inverse_depth = 0);

/// The block back-substitution solve X R = B (dist::block_backsolve) of
/// an m x n right-hand side with 2^depth inverted diagonal blocks.
[[nodiscard]] Cost cost_block_backsolve(double m, double n, double nblocks,
                                        double g);

/// 1D-CQR2 (Algorithm 7) on p ranks (== cost_ca_cqr2(m, n, 1, p)).
[[nodiscard]] Cost cost_cqr2_1d(double m, double n, double p);

/// ScaLAPACK-style PGEQRF on a pr x pc grid with block size b, including
/// explicit Q formation (what the strong/weak scaling benches model).
[[nodiscard]] Cost cost_pgeqrf_2d(double m, double n, double pr, double pc,
                                  double b, bool form_q = true);

/// TSQR with explicit Q on p ranks (binary tree).
[[nodiscard]] Cost cost_tsqr(double m, double n, double p);

}  // namespace cacqr::model
