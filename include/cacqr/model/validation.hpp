#pragma once
/// \file validation.hpp
/// \brief Model-validation rows: run an instrumented section on P ranks
///        over a selectable transport and collect, side by side, the
///        three timescales the validation report compares --
///
///          * the **measured counters** (msgs/words/flops actually
///            executed, max over ranks -- exact, backend-independent),
///          * the **modeled clock** (the LogP simulation those counters
///            drive -- a prediction, not a measurement),
///          * the **wall clock** of the run (a genuine measurement; only
///            meaningful relative to the model when ranks occupy real
///            parallel execution streams, i.e. the process transports).
///
/// Historically the bench printed the modeled clock in a column that
/// read as measured time.  The split here keeps the three honest: the
/// counters are facts, the modeled clock is the simulator's opinion of
/// those facts, and wall_seconds is the only number a stopwatch saw.
///
/// The section's counter delta travels through Comm::publish, so the
/// measurement works identically under the modeled (threads) and shm
/// (forked processes) backends -- captured-variable writes would be lost
/// in a child process (DESIGN.md section 10).

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cacqr/model/costs.hpp"
#include "cacqr/model/machine.hpp"
#include "cacqr/rt/comm.hpp"
#include "cacqr/support/json.hpp"

namespace cacqr::model {

/// One configuration's worth of evidence.
struct ValidationRow {
  std::string label;            ///< human-readable configuration
  int ranks = 0;                ///< team size of the run
  rt::CostCounters measured;    ///< max-over-ranks section counter deltas
                                ///< (`.time` is the section's modeled
                                ///< clock span, NOT wall time)
  double modeled_clock_s = 0.0; ///< LogP-simulated time of the whole run
  Cost analytic;                ///< closed-form model counters
  double analytic_s = 0.0;      ///< analytic cost under `machine`
  double wall_s = 0.0;          ///< genuine wall clock of the whole run
};

/// Runs `section` on `ranks` ranks (machine parameters drive the modeled
/// clock; `transport` defaults to CACQR_TRANSPORT) and returns the
/// filled row: the section's counter delta is published from inside the
/// run, the modeled clock is the max final rank clock, and wall_s wraps
/// the entire Runtime launch in a stopwatch.  `setup` runs before the
/// measured window (data distribution, grid construction).
[[nodiscard]] ValidationRow run_validation(
    const std::string& label, int ranks, const Machine& machine,
    const std::function<void(rt::Comm&)>& setup_and_section,
    const Cost& analytic,
    std::optional<rt::TransportKind> transport = std::nullopt);

/// Marks the boundary between setup and the measured section inside a
/// run_validation body: records `world.counters()` at the call and
/// publishes the delta (plus the final clock) when the body returns.
/// Exactly one per body, constructed after setup completes.
class MeasuredSection {
 public:
  explicit MeasuredSection(rt::Comm& world);
  ~MeasuredSection();
  MeasuredSection(const MeasuredSection&) = delete;
  MeasuredSection& operator=(const MeasuredSection&) = delete;

 private:
  rt::Comm& world_;
  rt::CostCounters before_;
};

/// Serializes rows into the versioned bench artifact
/// (schema "cacqr.model_validation.v1"): transport and machine identify
/// the run, each row carries measured counters, the analytic model's
/// counters and seconds, the modeled clock, and the wall clock.
[[nodiscard]] support::Json validation_to_json(
    const std::vector<ValidationRow>& rows, const Machine& machine,
    rt::TransportKind transport);

}  // namespace cacqr::model
