#pragma once
/// \file sweep.hpp
/// \brief Configuration sweeps for the figure benches: enumerate valid
///        grids, pick the best-performing variant per node count -- the
///        paper plots "the best performing choice of processor grid at
///        each node count" (Section I).

#include <utility>
#include <vector>

#include "cacqr/model/costs.hpp"

namespace cacqr::model {

/// All valid tunable-grid shapes (c, d) for a rank count: c^2 d == ranks,
/// c | d.
[[nodiscard]] std::vector<std::pair<i64, i64>> valid_grids(i64 ranks);

/// A CA-CQR2 configuration with its modeled time.
struct CaCqr2Choice {
  i64 c = 1;
  i64 d = 1;
  double seconds = 0.0;
  Cost cost;
};

/// Fastest CA-CQR2 grid for an m x n matrix on `ranks` ranks (requires
/// d | m and c | n to be meaningful; the sweep skips shapes whose local
/// blocks would be empty).
[[nodiscard]] CaCqr2Choice best_cacqr2(double m, double n, i64 ranks,
                                       const Machine& machine);

/// Evaluates a specific grid (used for the per-variant figure series).
[[nodiscard]] CaCqr2Choice eval_cacqr2(double m, double n, i64 c, i64 d,
                                       const Machine& machine);

/// A PGEQRF configuration with its modeled time.
struct PgeqrfChoice {
  i64 pr = 1;
  i64 pc = 1;
  i64 block = 32;
  double seconds = 0.0;
  Cost cost;
};

/// Fastest ScaLAPACK-style configuration: sweeps power-of-two pr and
/// block sizes {16, 32, 64} like the paper's tuning.
[[nodiscard]] PgeqrfChoice best_pgeqrf(double m, double n, i64 ranks,
                                       const Machine& machine,
                                       bool form_q = true);

/// Evaluates a specific PGEQRF configuration.
[[nodiscard]] PgeqrfChoice eval_pgeqrf(double m, double n, i64 pr, i64 pc,
                                       i64 block, const Machine& machine,
                                       bool form_q = true);

}  // namespace cacqr::model
