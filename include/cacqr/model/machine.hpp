#pragma once
/// \file machine.hpp
/// \brief Alpha-beta-gamma machine models for the performance study.
///
/// The paper evaluates on Stampede2 (Intel KNL + Omni-Path) and Blue
/// Waters (Cray XE + Gemini).  Parameters here are per-RANK: node peak is
/// divided by ranks-per-node and scaled by a sustained-fraction, node
/// injection bandwidth is shared across the ranks of a node.  Absolute
/// numbers are calibrations (documented in EXPERIMENTS.md); what the
/// reproduction relies on is the machines' flops-to-bandwidth ratio,
/// which the paper reports as ~8x higher on Stampede2 -- the property
/// that makes communication avoidance pay off there.

#include <string>

#include "cacqr/rt/comm.hpp"

namespace cacqr::model {

struct Machine {
  std::string name;
  double alpha_s = 0.0;  ///< seconds per message
  double beta_s = 0.0;   ///< seconds per 8-byte word
  double gamma_s = 0.0;  ///< seconds per flop
  int ranks_per_node = 1;
  double peak_gflops_node = 0.0;

  /// Parameters for instrumented runtime runs (modeled clocks).
  [[nodiscard]] rt::Machine rt_params() const noexcept {
    return {alpha_s, beta_s, gamma_s};
  }

  /// Machine balance: sustained flops per word of injection bandwidth.
  [[nodiscard]] double flops_per_word() const noexcept {
    return beta_s / gamma_s;
  }
};

/// Stampede2: 4200 KNL nodes, >3 TF/s/node, 12.5 GB/s injection,
/// 64 MPI ranks/node in the paper's runs.
[[nodiscard]] Machine stampede2();

/// Blue Waters: Cray XE, 313 GF/s/node, 9.6 GB/s injection, 16 ranks/node.
[[nodiscard]] Machine bluewaters();

/// The paper's performance metric: Householder flops (2mn^2 - 2n^3/3)
/// divided by time and node count, in GF/s/node -- CholeskyQR2's ~2x
/// extra arithmetic is deliberately NOT credited (Section IV-C).
[[nodiscard]] double gflops_per_node(double m, double n, double seconds,
                                     double nodes);

}  // namespace cacqr::model
