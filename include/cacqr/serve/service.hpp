#pragma once
/// \file service.hpp
/// \brief Factorization-as-a-service: a long-lived SPMD engine accepting
///        concurrent factorize jobs through a bounded admission queue.
///
/// One FactorizeService owns one rt::Runtime world (modeled transport:
/// rank threads inside this process) for its whole lifetime, so the
/// persistent worker pools, packing arenas, and the plan memo stay warm
/// across jobs -- the "heavy traffic" entry point of ROADMAP.md.  Client
/// threads submit() from anywhere; a scheduler round on rank 0 drains the
/// admission queue into dispatch windows, micro-batches compatible small
/// tall-skinny panels into one stacked CQR2 sweep (core/batched.hpp: one
/// Gram Allreduce per pass for the whole batch), and runs everything else
/// through the ordinary factorize driver, whose plan memo makes per-shape
/// repeats plan-free.
///
/// Contracts (DESIGN.md section 11):
///   * Admission: deterministic.  A job past `queue_depth` is REJECTED at
///     submit time (status JobStatus::rejected, backpressure error on the
///     handle) -- never blocked, never silently dropped.  Within a
///     priority class, dispatch order is exactly admission order (FIFO);
///     classes drain strictly high before normal before low.
///   * Determinism: a job's Q/R are bitwise identical to the same input
///     and options run standalone, whatever batch it lands in (the
///     batched driver's Allreduce-concatenation argument, batched.hpp).
///   * Isolation: a job that fails (NotSpdError with auto_shift off)
///     carries its own error; queued and in-flight neighbors, including
///     batch mates, complete normally.
///   * Shutdown drains: every admitted job reaches a terminal status
///     before the destructor returns; submit() after shutdown throws.

#include <array>
#include <cstddef>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "cacqr/rt/comm.hpp"
#include "cacqr/serve/job.hpp"

namespace cacqr::serve {

/// Engine shape + scheduler policy.  Zero-valued limits resolve from the
/// environment at construction: CACQR_SERVE_QUEUE_DEPTH (default 64) and
/// CACQR_SERVE_BATCH_WINDOW (default 8).
struct ServiceOptions {
  int ranks = 4;             ///< SPMD width of the engine world
  int threads_per_rank = 0;  ///< per-rank kernel budget (0: divide caller's)
  std::size_t queue_depth = 0;   ///< admission bound (0: env or 64)
  std::size_t batch_window = 0;  ///< max jobs per dispatch round (0: env or 8)
  bool batching = true;  ///< false: every round carries exactly one job
  i64 batch_max_n = 64;  ///< batched-lane eligibility: cols <= this
  i64 batch_min_aspect = 4;  ///< ... and rows >= aspect * cols
};

/// Monotone counters a service exposes (snapshot; taken under the
/// admission lock, so mutually consistent).
struct ServiceStats {
  u64 submitted = 0;  ///< admitted jobs (excludes rejections)
  u64 rejected = 0;   ///< backpressure rejections at submit
  u64 completed = 0;  ///< terminal done
  u64 failed = 0;     ///< terminal failed
  u64 rounds = 0;     ///< dispatch rounds executed
  u64 batches = 0;    ///< batched-lane sweeps with >= 2 jobs
  u64 batched_jobs = 0;  ///< jobs that rode such a sweep
  std::size_t max_queue_depth = 0;  ///< high-water admission backlog
  std::size_t queue_depth = 0;      ///< current admission backlog
  /// Per-admission-class admit/reject counts, indexed by Priority.
  std::array<u64, 3> admitted_by_class{};
  std::array<u64, 3> rejected_by_class{};
};

class FactorizeService {
 public:
  explicit FactorizeService(ServiceOptions opts = {});
  ~FactorizeService();  // shutdown(): drains, then stops the engine
  FactorizeService(const FactorizeService&) = delete;
  FactorizeService& operator=(const FactorizeService&) = delete;

  /// Admits one job (the panel is copied; m >= n >= 1 is validated here
  /// and throws DimensionError to the caller).  Returns immediately:
  /// either a queued handle, or -- when the backlog is at queue_depth --
  /// a handle already in JobStatus::rejected whose error says so.
  /// Throws Error after shutdown() has begun.
  JobHandle submit(lin::ConstMatrixView a, JobOptions opts = {});

  /// Stops admission, drains every queued job to a terminal status, and
  /// joins the engine.  Idempotent; called by the destructor.
  void shutdown();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return opts_;
  }

  /// The lin::parallel task group of engine rank `rank`: the service tags
  /// each rank lane at startup so kernel::arena_stats(group) attributes
  /// packing-arena growth per lane (no-alloc-after-warmup assertions).
  [[nodiscard]] int arena_group(int rank) const noexcept {
    return group_base_ + rank;
  }

 private:
  struct Shared;  // scheduler state shared with the engine ranks

  void engine_main();

  ServiceOptions opts_;
  int group_base_ = 0;
  std::unique_ptr<Shared> shared_;
  std::thread engine_;
};

}  // namespace cacqr::serve
