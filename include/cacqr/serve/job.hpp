#pragma once
/// \file job.hpp
/// \brief Job types of the factorization service: options, results, and
///        the future-like handle clients wait on.
///
/// A job is one factorize request owned by the service after admission.
/// Clients interact only through JobHandle, which is safe to wait on from
/// any thread; the scheduler (service.hpp) fills the result and signals
/// the handle exactly once, when the job reaches a terminal status.

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "cacqr/core/factorize.hpp"
#include "cacqr/lin/matrix.hpp"
#include "cacqr/support/precision.hpp"
#include "cacqr/support/timer.hpp"

namespace cacqr::serve {

/// Admission classes: the scheduler always drains the highest non-empty
/// class first, FIFO within a class (deterministic ordering contract).
enum class Priority { high = 0, normal = 1, low = 2 };

/// Job lifecycle.  `rejected` is terminal and assigned at submit time
/// (queue full); `failed` carries the job's own error (e.g. NotSpdError
/// with auto_shift off) and never poisons other jobs.
enum class JobStatus { queued, running, done, failed, rejected };

[[nodiscard]] constexpr const char* job_status_name(JobStatus s) noexcept {
  switch (s) {
    case JobStatus::queued: return "queued";
    case JobStatus::running: return "running";
    case JobStatus::done: return "done";
    case JobStatus::failed: return "failed";
    case JobStatus::rejected: return "rejected";
  }
  return "?";
}

/// Per-job factorization options: the FactorizeOptions subset a service
/// job can carry, plus its admission class.  Jobs agreeing on
/// (cols, precision, passes, auto_shift, base_case) and eligible for the
/// batched lane (see FactorizeService) may be micro-batched together;
/// the kernel variant needs no key because it is process-wide.
struct JobOptions {
  int passes = 2;
  bool auto_shift = true;
  i64 base_case = 0;
  Precision precision = Precision::fp64;
  core::PlanMode plan_mode = core::PlanMode::heuristic;
  int c = 0;  ///< explicit grid (with d): forces the ordinary driver
  int d = 0;
  Priority priority = Priority::normal;
};

/// What a finished job reports.  Q/R are bitwise identical to the same
/// input run standalone (batched.hpp states the argument).
struct JobResult {
  lin::Matrix q;
  lin::Matrix r;
  std::string algo;          ///< "cqr_1d" (batched lane) or the driver's pick
  bool used_shift = false;
  bool batched = false;      ///< executed inside a micro-batch of > 1 jobs
  std::size_t batch_size = 1;
  double queue_seconds = 0.0;  ///< admission -> dispatch
  double exec_seconds = 0.0;   ///< dispatch -> completion (its round's sweep)
};

namespace detail {

/// The service-owned job record.  `mu`/`cv` guard status + result; the
/// input panel is copied at submit so the caller's matrix can die
/// immediately.  Engine ranks read `a` concurrently without locking --
/// it is immutable after admission.
struct Job {
  lin::Matrix a;
  JobOptions opts;
  u64 seq = 0;  ///< admission order (global, monotone)
  WallTimer since_submit;
  double queue_seconds = 0.0;  ///< stamped by the scheduler at dispatch
  u64 trace_id = 0;  ///< obs async-span id (0 = tracing off at submit)
  /// Trace lifecycle: 0 none, 1 "queued" span open, 2 "run" span open,
  /// 3 ended.  Exchanged by the emitter so racing finishers (normal
  /// completion vs the engine-death drain) close each span exactly once.
  std::atomic<int> trace_state{0};

  std::mutex mu;
  std::condition_variable cv;
  JobStatus status = JobStatus::queued;
  JobResult result;
  std::exception_ptr error;

  /// Terminal transition + wakeup (scheduler side).  First terminal
  /// status wins: the engine-death drain may race a result already
  /// delivered, and must not overwrite it.  Returns whether THIS call
  /// performed the transition (so exactly one caller emits the job's
  /// terminal trace/metrics events).
  bool finish(JobStatus terminal, JobResult res, std::exception_ptr err) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (status == JobStatus::done || status == JobStatus::failed ||
          status == JobStatus::rejected) {
        return false;
      }
      status = terminal;
      result = std::move(res);
      error = std::move(err);
    }
    cv.notify_all();
    return true;
  }
};

}  // namespace detail

/// Future-like handle to a submitted job.  Copyable (shared ownership of
/// the record); any thread may wait.
class JobHandle {
 public:
  JobHandle() = default;

  /// Blocks until the job reaches a terminal status and returns it.
  JobStatus wait() const {
    std::unique_lock<std::mutex> lock(job_->mu);
    job_->cv.wait(lock, [&] {
      return job_->status == JobStatus::done ||
             job_->status == JobStatus::failed ||
             job_->status == JobStatus::rejected;
    });
    return job_->status;
  }

  /// Current status without blocking.
  [[nodiscard]] JobStatus status() const {
    const std::lock_guard<std::mutex> lock(job_->mu);
    return job_->status;
  }

  /// Waits, then returns the result; a failed or rejected job rethrows
  /// its stored error here (NotSpdError for a breakdown with auto_shift
  /// off, Error for backpressure rejection).
  [[nodiscard]] const JobResult& result() const {
    if (wait() != JobStatus::done) std::rethrow_exception(job_->error);
    return job_->result;
  }

  /// Waits, then returns the stored error (nullptr when done cleanly).
  [[nodiscard]] std::exception_ptr error() const {
    wait();
    const std::lock_guard<std::mutex> lock(job_->mu);
    return job_->error;
  }

 private:
  friend class FactorizeService;
  explicit JobHandle(std::shared_ptr<detail::Job> job)
      : job_(std::move(job)) {}
  std::shared_ptr<detail::Job> job_;
};

}  // namespace cacqr::serve
