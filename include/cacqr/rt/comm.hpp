#pragma once
/// \file comm.hpp
/// \brief SPMD message-passing runtime over pluggable transports.
///
/// Runtime::run(P, body) executes `body` on P ranks over a selectable
/// point-to-point backend (CACQR_TRANSPORT): rank threads with modeled
/// in-process delivery (the default), fork()ed processes over
/// shared-memory ring buffers, or MPI processes when the build found MPI
/// (DESIGN.md section 10).  Ranks interact only through explicit
/// point-to-point messages and the collectives below, which are
/// implemented as genuine butterfly / binomial schedules over
/// point-to-point sends -- so the per-rank message and word counters
/// measured on a run match the collective cost formulas the paper's
/// analysis charges (Section II-B), identically on every backend:
///
///   Bcast     = binomial scatter + Bruck allgather : 2 ceil(lg P) alpha + 2n beta
///   Allreduce = recursive-halving reduce-scatter +
///               Bruck allgather (Rabenseifner)     : 2 ceil(lg P) alpha + 2n beta
///   Reduce    = Allreduce, root keeps the result   : same cost (as charged
///                                                    by the paper's table)
///   Allgather = Bruck                              : ceil(lg P) alpha + n beta
///   Transpose = pairwise exchange                  : alpha + n beta
///
/// Every rank also carries a cost tally (alpha messages, beta words, gamma
/// flops) and a LogP-style modeled clock: sends advance the sender's clock
/// by alpha + n*beta and stamp the message; receives advance the receiver's
/// clock to at least the stamp.  Sequential kernel flops recorded by
/// cacqr::lin are drained into the clock at every communication call, so
/// max-over-ranks of the final clock is the modeled parallel execution time
/// for the configured machine parameters.
///
/// Collectives come in two flavors sharing ONE implementation: the
/// blocking calls below are wait(start_*(...)) over the request engine.
/// start_* captures the collective's exact point-to-point schedule as a
/// step list, performs the eager sends, and returns a Request; wait/test/
/// progress drive the remaining steps cooperatively, so local work can
/// overlap an in-flight collective (DESIGN.md section 5).

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cacqr/lin/parallel.hpp"
#include "cacqr/support/error.hpp"
#include "cacqr/support/math.hpp"

namespace cacqr::rt {

/// Alpha-beta-gamma machine parameters for the modeled clock.
/// Units: seconds per message / per 8-byte word / per flop.
struct Machine {
  double alpha = 0.0;
  double beta = 0.0;
  double gamma = 0.0;

  /// All-zero machine: runs count alpha/beta/gamma without modeling time.
  [[nodiscard]] static Machine counting() noexcept { return {}; }
};

/// Per-rank cost tally.  msgs/words/flops are raw counts (machine
/// independent); time is the modeled clock under the run's Machine.
struct CostCounters {
  i64 msgs = 0;   ///< messages sent by this rank (alpha count)
  i64 words = 0;  ///< 8-byte words sent by this rank (beta count)
  i64 flops = 0;  ///< floating-point operations executed (gamma count)
  double time = 0.0;  ///< modeled clock, seconds

  CostCounters& operator+=(const CostCounters& o) noexcept {
    msgs += o.msgs;
    words += o.words;
    flops += o.flops;
    time += o.time;
    return *this;
  }
  friend CostCounters operator-(CostCounters a,
                                const CostCounters& b) noexcept {
    a.msgs -= b.msgs;
    a.words -= b.words;
    a.flops -= b.flops;
    a.time -= b.time;
    return a;
  }
};

class Comm;

namespace detail {
struct World;
struct CommState;
struct RequestState;
/// Per-rank body wrapper shared by every transport launcher; needs to
/// mint the rank's world Comm (transport.hpp).
void rank_main(World& world, int rank, int rank_budget,
               const std::function<void(Comm&)>& body);
}  // namespace detail

/// Which point-to-point backend carries a run's messages (DESIGN.md
/// section 10).  The step schedules, counters, and modeled clock are
/// backend-independent; only delivery differs.
enum class TransportKind {
  modeled,  ///< ranks are threads, delivery is in-process mailboxes with a
            ///< LogP-modeled clock -- the default, bit-identical to the
            ///< historical runtime, and what tests run by default
  shm,      ///< ranks are fork()ed processes, delivery is shared-memory
            ///< ring buffers per rank pair: real wall-clock completion
  mpi,      ///< ranks are MPI processes (mpirun launches them); compiled
            ///< only when the build found MPI
};

/// Backend name ("modeled" / "shm" / "mpi").
[[nodiscard]] const char* transport_name(TransportKind kind) noexcept;

/// Whether this build/platform can actually run `kind`: modeled always;
/// shm on POSIX; mpi only when compiled against MPI.
[[nodiscard]] bool transport_available(TransportKind kind) noexcept;

/// The process-wide default backend Runtime::run uses when the caller
/// does not pass one: parsed once from the CACQR_TRANSPORT environment
/// variable ("modeled" | "shm" | "mpi"; unset or empty means modeled, a
/// malformed value fails loudly with the valid list).
[[nodiscard]] TransportKind default_transport();

/// Process-wide override of the CACQR_TRANSPORT default (benches and
/// tests flip backends between runs).  Call outside Runtime::run.
void set_default_transport(TransportKind kind) noexcept;

/// Per-rank outputs of one run (Runtime::run_collect): final cost
/// tallies plus whatever each rank published via Comm::publish.  Under
/// multi-process backends the published blobs are the ONLY way local
/// results reach the caller -- writes to captured variables inside the
/// body happen in a child process and are lost.
struct RunOutput {
  std::vector<CostCounters> counters;
  std::vector<std::vector<double>> published;
};

/// Hook consulted by process backends after a forked rank's body
/// returns: a count of test-harness assertion failures so far in this
/// process (the tests' custom gtest main installs one).  When the count
/// grew across the body, the rank is reported failed to the parent --
/// EXPECT failures inside a forked rank would otherwise pass silently.
/// nullptr (the default) disables the probe.
void set_child_failure_probe(int (*probe)()) noexcept;

/// Handle to one in-flight nonblocking operation (Comm::start_*).
/// Move-only.  All methods must run on the rank thread that started the
/// operation; the operation's buffers must stay alive and untouched until
/// completion.  Destroying (or move-assigning over) an incomplete request
/// completes it first, so a dropped handle never leaves the collective's
/// partners hanging (the destructor may rethrow a genuine drain failure
/// when no other exception is unwinding; AbortError is always absorbed).
class Request {
 public:
  Request() noexcept;
  Request(Request&& other) noexcept;
  Request& operator=(Request&& other) noexcept;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;
  ~Request() noexcept(false);

  /// True if this handle refers to an operation (completed or not).
  [[nodiscard]] bool valid() const noexcept;

  /// Blocks until the operation completes.  Drives ALL of the calling
  /// rank's in-flight requests meanwhile -- so concurrent requests may be
  /// waited in any (even rank-dependent) order without deadlock -- and
  /// sleeps on the mailbox between message arrivals.  No-op when already
  /// complete or invalid.
  void wait();

  /// Nonblocking completion check: advances the rank's in-flight requests
  /// as far as messages allow, then reports whether this one finished.
  /// Invalid handles report true.  Throws AbortError once the run aborts,
  /// so a test()-polling loop unwinds like a blocked wait would.
  [[nodiscard]] bool test();

 private:
  friend class Comm;
  explicit Request(std::unique_ptr<detail::RequestState> state) noexcept;
  std::unique_ptr<detail::RequestState> state_;
  /// Unwind depth at construction: the destructor rethrows drain failures
  /// only when no NEW exception is in flight relative to this baseline,
  /// so a Request living inside cleanup code that runs during unrelated
  /// unwinding still surfaces its own errors.
  int uncaught_ = 0;
};

/// True when the communication/computation overlap paths in dist/ and
/// core/ are enabled: parsed once from the CACQR_OVERLAP environment
/// variable (default off), overridable via set_overlap_enabled.  Overlap
/// never changes results (bitwise) or the raw msgs/words/flops tallies;
/// it reorders local work relative to in-flight collectives, which can
/// move kernel-flop drains across recv clock-stamps (see DESIGN.md
/// section 5 on charge timing).
[[nodiscard]] bool overlap_enabled() noexcept;

/// Process-wide override of the CACQR_OVERLAP default (benches and tests
/// flip it between measured modes).  Not thread-safe against ranks mid
/// collective: call it outside Runtime::run.
void set_overlap_enabled(bool on) noexcept;

/// Communicator handle (cheap to copy; copies share identity).  Every
/// method below that is documented "collective" must be called by all
/// members of the communicator, in the same order -- the usual MPI
/// discipline.
class Comm {
 public:
  /// Default state: detached from any run.  Only assignment is valid;
  /// every operation below requires a communicator obtained from
  /// Runtime::run or split().
  Comm() = default;

  /// Rank of the caller within this communicator.
  [[nodiscard]] int rank() const noexcept;
  /// Number of ranks in this communicator.
  [[nodiscard]] int size() const noexcept;
  /// Rank of the caller in the world communicator.
  [[nodiscard]] int world_rank() const noexcept;

  // ------------------------------------------------------------- p2p
  /// Buffered (eager) send: never blocks.
  void send(int dest, int tag, std::span<const double> data) const;
  /// Blocking receive; data.size() must equal the matching message size.
  void recv(int src, int tag, std::span<double> data) const;
  /// Pairwise exchange with `partner` (no-op when partner == rank()):
  /// the Transpose primitive of the paper, alpha + n*beta.
  void sendrecv_swap(int partner, int tag, std::span<double> data) const;

  // ------------------------------------------------------ collectives
  /// Collective: splits into sub-communicators by color; ranks ordered by
  /// (key, parent rank).  Every member must call.
  [[nodiscard]] Comm split(int color, int key) const;

  /// Collective: dissemination barrier.
  void barrier() const;
  /// Collective: root's data replicated to all (scatter + allgather).
  void bcast(std::span<double> data, int root) const;
  /// Collective: elementwise sum of `data` across ranks; result everywhere.
  void allreduce_sum(std::span<double> data) const;
  /// Collective: elementwise sum; result only meaningful on root (costed
  /// identically to allreduce, as in the paper's tables).
  void reduce_sum(std::span<double> data, int root) const;
  /// Collective: elementwise fp32 sum.  `words` is an fp32 payload viewed
  /// as whole 8-byte words, two floats per word (lin::MatrixF::wire();
  /// odd tails ride a zero pad lane).  Same Rabenseifner schedule as
  /// allreduce_sum with the combine applied float-wise, so the message
  /// count and the word (beta) charges are those of an fp64 allreduce of
  /// HALF the element count -- the halved-beta Gram term the planner
  /// scores.  Bcast/allgather/send need no fp32 flavor: they move bytes,
  /// so an fp32 payload just uses the word-level calls directly.
  void allreduce_sum_f32(std::span<double> words) const;
  /// Collective: fp32 sum costed as allreduce_sum_f32 (reduce == allreduce
  /// in the paper's tables), result meaningful everywhere.
  void reduce_sum_f32(std::span<double> words, int root) const;
  /// Collective: concatenation of equal-size contributions, rank order.
  void allgather(std::span<const double> mine, std::span<double> all) const;

  // ------------------------------------------- nonblocking (request) API
  // Every blocking collective above is exactly wait(start_*(...)): the
  // start call reserves the collective's tag, performs the eager sends of
  // the schedule, and registers the request; wait/test/progress drive the
  // remaining point-to-point steps cooperatively.  Per-rank msgs/words/
  // flops tallies and the modeled clock are charged per step exactly as
  // the blocking schedules charge them, so wait(start_*) is bit-for-bit
  // identical to the blocking call.  Discipline: all members of a
  // communicator must start collectives on it in the same order (the
  // usual MPI nonblocking-collective rule); a request must be waited (or
  // destroyed, which waits) before its run's body returns.

  /// Nonblocking bcast; same schedule and cost as bcast().
  [[nodiscard]] Request start_bcast(std::span<double> data, int root) const;
  /// Nonblocking allreduce; same schedule and cost as allreduce_sum().
  [[nodiscard]] Request start_allreduce_sum(std::span<double> data) const;
  /// Nonblocking fp32 allreduce; same schedule and cost as
  /// allreduce_sum_f32().
  [[nodiscard]] Request start_allreduce_sum_f32(
      std::span<double> words) const;
  /// Nonblocking reduce (costed as allreduce, like reduce_sum()).
  [[nodiscard]] Request start_reduce_sum(std::span<double> data,
                                         int root) const;
  /// Nonblocking allgather; `mine` is copied out at start.
  [[nodiscard]] Request start_allgather(std::span<const double> mine,
                                        std::span<double> all) const;
  /// Nonblocking pairwise exchange (no-op request when partner == rank()).
  [[nodiscard]] Request start_sendrecv_swap(int partner, int tag,
                                            std::span<double> data) const;

  /// Drives all of the calling rank's in-flight requests as far as
  /// pending messages allow; never blocks (throws AbortError once the
  /// run aborts).  Cheap when none are active.  Must be called from the
  /// rank thread (rt::ProgressScope arranges for lin::parallel loop
  /// splitters to do so between chunks of local work).
  void progress() const;

  // ------------------------------------------------------- accounting
  /// Appends `data` to this rank's published result blob, returned to the
  /// launching caller by Runtime::run_collect.  This is the
  /// transport-agnostic way to get per-rank results out of a run: under
  /// process backends the body executes in a forked child, so writes to
  /// captured variables never reach the caller.
  void publish(std::span<const double> data) const;

  /// This rank's world-wide running tally (shared across all comms of the
  /// run).  Drains pending kernel flops first so the snapshot is current.
  [[nodiscard]] CostCounters counters() const;
  /// Drains the thread-local lin flop counter into the tally and clock.
  void charge_local_flops() const;
  /// Adds modeled idle/imbalance sync: clock = max(clock over members).
  /// Collective.  Used by benches to close a measurement phase.
  void sync_clock() const;
  /// Machine parameters of the enclosing run.
  [[nodiscard]] const Machine& machine() const noexcept;

 private:
  friend class Runtime;
  friend void detail::rank_main(detail::World&, int, int,
                                const std::function<void(Comm&)>&);
  explicit Comm(std::shared_ptr<detail::CommState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::CommState> state_;
};

/// RAII overlap window: while alive, the calling (rank) thread's
/// lin::parallel loop splitters poll Comm::progress() between chunks, so
/// an in-flight collective advances underneath a threaded staging copy.
/// Restores the previous hook on destruction (windows nest).  The comm
/// argument only names the rank whose requests to drive -- any
/// communicator of the run works.
class ProgressScope {
 public:
  explicit ProgressScope(const Comm& comm) noexcept
      : comm_(comm),
        prev_(lin::parallel::set_progress_hook({&ProgressScope::poll, this})) {
  }
  ~ProgressScope() { lin::parallel::set_progress_hook(prev_); }
  ProgressScope(const ProgressScope&) = delete;
  ProgressScope& operator=(const ProgressScope&) = delete;

 private:
  static void poll(void* self) {
    static_cast<ProgressScope*>(self)->comm_.progress();
  }
  Comm comm_;
  lin::parallel::ProgressHook prev_;
};

/// SPMD launcher.
class Runtime {
 public:
  /// Runs `body` on `nranks` ranks over the selected transport backend
  /// and returns the per-rank final cost tallies (modeled clock
  /// included).  Exceptions thrown by any rank abort the whole team and
  /// are rethrown here (first thrower wins; under process backends the
  /// error's type and message are marshalled back to the caller).
  ///
  /// `threads_per_rank` is each rank's kernel worker budget
  /// (lin/parallel.hpp): every rank gets
  /// `set_thread_budget(threads_per_rank)` before `body` runs, so P ranks
  /// use at most P * threads_per_rank threads total.  0 (the default)
  /// divides the *caller's* budget evenly: max(1, thread_budget() /
  /// nranks) -- with the default CACQR_THREADS=1 every rank stays
  /// single-threaded, exactly the pre-threading behavior.  Threading never
  /// changes the per-rank flop/msg/word tallies or the modeled clock; it
  /// only changes wall-clock speed (DESIGN.md section 3).
  ///
  /// `transport` picks the backend for this run; `transport_env` (the
  /// default) defers to CACQR_TRANSPORT / set_default_transport.  Under
  /// `modeled` ranks are threads of this process; under `shm` each rank
  /// is a fork()ed child and under `mpi` this process must be one of
  /// exactly `nranks` ranks launched by mpirun.  Requesting a backend
  /// this build/platform cannot run fails loudly (CommError).
  static std::vector<CostCounters> run(
      int nranks, const std::function<void(Comm&)>& body,
      Machine machine = Machine::counting(), int threads_per_rank = 0,
      std::optional<TransportKind> transport = std::nullopt);

  /// As run(), additionally returning each rank's Comm::publish blob --
  /// the transport-agnostic result channel.
  static RunOutput run_collect(
      int nranks, const std::function<void(Comm&)>& body,
      Machine machine = Machine::counting(), int threads_per_rank = 0,
      std::optional<TransportKind> transport = std::nullopt);
};

/// Convenience: modeled parallel execution time = max of per-rank clocks.
[[nodiscard]] inline double modeled_time(
    const std::vector<CostCounters>& per_rank) noexcept {
  double t = 0.0;
  for (const auto& c : per_rank) t = t > c.time ? t : c.time;
  return t;
}

/// Convenience: critical-path-style maxima of the raw counters.
[[nodiscard]] inline CostCounters max_counters(
    const std::vector<CostCounters>& per_rank) noexcept {
  CostCounters m;
  for (const auto& c : per_rank) {
    m.msgs = std::max(m.msgs, c.msgs);
    m.words = std::max(m.words, c.words);
    m.flops = std::max(m.flops, c.flops);
    m.time = std::max(m.time, c.time);
  }
  return m;
}

}  // namespace cacqr::rt
