#pragma once
/// \file comm.hpp
/// \brief SPMD message-passing runtime: the MPI substitute.
///
/// The build environment has no MPI, so the library ships its own runtime:
/// Runtime::run(P, body) executes `body` on P ranks, each a dedicated
/// thread.  Ranks interact only through explicit point-to-point messages
/// and the collectives below, which are implemented as genuine butterfly /
/// binomial schedules over point-to-point sends -- so the per-rank message
/// and word counters measured on a run match the collective cost formulas
/// the paper's analysis charges (Section II-B):
///
///   Bcast     = binomial scatter + Bruck allgather : 2 ceil(lg P) alpha + 2n beta
///   Allreduce = recursive-halving reduce-scatter +
///               Bruck allgather (Rabenseifner)     : 2 ceil(lg P) alpha + 2n beta
///   Reduce    = Allreduce, root keeps the result   : same cost (as charged
///                                                    by the paper's table)
///   Allgather = Bruck                              : ceil(lg P) alpha + n beta
///   Transpose = pairwise exchange                  : alpha + n beta
///
/// Every rank also carries a cost tally (alpha messages, beta words, gamma
/// flops) and a LogP-style modeled clock: sends advance the sender's clock
/// by alpha + n*beta and stamp the message; receives advance the receiver's
/// clock to at least the stamp.  Sequential kernel flops recorded by
/// cacqr::lin are drained into the clock at every communication call, so
/// max-over-ranks of the final clock is the modeled parallel execution time
/// for the configured machine parameters.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "cacqr/support/error.hpp"
#include "cacqr/support/math.hpp"

namespace cacqr::rt {

/// Alpha-beta-gamma machine parameters for the modeled clock.
/// Units: seconds per message / per 8-byte word / per flop.
struct Machine {
  double alpha = 0.0;
  double beta = 0.0;
  double gamma = 0.0;

  /// All-zero machine: runs count alpha/beta/gamma without modeling time.
  [[nodiscard]] static Machine counting() noexcept { return {}; }
};

/// Per-rank cost tally.  msgs/words/flops are raw counts (machine
/// independent); time is the modeled clock under the run's Machine.
struct CostCounters {
  i64 msgs = 0;   ///< messages sent by this rank (alpha count)
  i64 words = 0;  ///< 8-byte words sent by this rank (beta count)
  i64 flops = 0;  ///< floating-point operations executed (gamma count)
  double time = 0.0;  ///< modeled clock, seconds

  CostCounters& operator+=(const CostCounters& o) noexcept {
    msgs += o.msgs;
    words += o.words;
    flops += o.flops;
    time += o.time;
    return *this;
  }
  friend CostCounters operator-(CostCounters a,
                                const CostCounters& b) noexcept {
    a.msgs -= b.msgs;
    a.words -= b.words;
    a.flops -= b.flops;
    a.time -= b.time;
    return a;
  }
};

namespace detail {
struct World;
struct CommState;
}  // namespace detail

/// Communicator handle (cheap to copy; copies share identity).  Every
/// method below that is documented "collective" must be called by all
/// members of the communicator, in the same order -- the usual MPI
/// discipline.
class Comm {
 public:
  /// Default state: detached from any run.  Only assignment is valid;
  /// every operation below requires a communicator obtained from
  /// Runtime::run or split().
  Comm() = default;

  /// Rank of the caller within this communicator.
  [[nodiscard]] int rank() const noexcept;
  /// Number of ranks in this communicator.
  [[nodiscard]] int size() const noexcept;
  /// Rank of the caller in the world communicator.
  [[nodiscard]] int world_rank() const noexcept;

  // ------------------------------------------------------------- p2p
  /// Buffered (eager) send: never blocks.
  void send(int dest, int tag, std::span<const double> data) const;
  /// Blocking receive; data.size() must equal the matching message size.
  void recv(int src, int tag, std::span<double> data) const;
  /// Pairwise exchange with `partner` (no-op when partner == rank()):
  /// the Transpose primitive of the paper, alpha + n*beta.
  void sendrecv_swap(int partner, int tag, std::span<double> data) const;

  // ------------------------------------------------------ collectives
  /// Collective: splits into sub-communicators by color; ranks ordered by
  /// (key, parent rank).  Every member must call.
  [[nodiscard]] Comm split(int color, int key) const;

  /// Collective: dissemination barrier.
  void barrier() const;
  /// Collective: root's data replicated to all (scatter + allgather).
  void bcast(std::span<double> data, int root) const;
  /// Collective: elementwise sum of `data` across ranks; result everywhere.
  void allreduce_sum(std::span<double> data) const;
  /// Collective: elementwise sum; result only meaningful on root (costed
  /// identically to allreduce, as in the paper's tables).
  void reduce_sum(std::span<double> data, int root) const;
  /// Collective: concatenation of equal-size contributions, rank order.
  void allgather(std::span<const double> mine, std::span<double> all) const;

  // ------------------------------------------------------- accounting
  /// This rank's world-wide running tally (shared across all comms of the
  /// run).  Drains pending kernel flops first so the snapshot is current.
  [[nodiscard]] CostCounters counters() const;
  /// Drains the thread-local lin flop counter into the tally and clock.
  void charge_local_flops() const;
  /// Adds modeled idle/imbalance sync: clock = max(clock over members).
  /// Collective.  Used by benches to close a measurement phase.
  void sync_clock() const;
  /// Machine parameters of the enclosing run.
  [[nodiscard]] const Machine& machine() const noexcept;

 private:
  friend class Runtime;
  explicit Comm(std::shared_ptr<detail::CommState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::CommState> state_;
};

/// SPMD launcher.
class Runtime {
 public:
  /// Runs `body` on `nranks` rank-threads and returns the per-rank final
  /// cost tallies (modeled clock included).  Exceptions thrown by any rank
  /// abort the whole team and are rethrown here (first thrower wins).
  ///
  /// `threads_per_rank` is each rank's kernel worker budget
  /// (lin/parallel.hpp): every rank thread gets
  /// `set_thread_budget(threads_per_rank)` before `body` runs, so P ranks
  /// use at most P * threads_per_rank threads total.  0 (the default)
  /// divides the *caller's* budget evenly: max(1, thread_budget() /
  /// nranks) -- with the default CACQR_THREADS=1 every rank stays
  /// single-threaded, exactly the pre-threading behavior.  Threading never
  /// changes the per-rank flop/msg/word tallies or the modeled clock; it
  /// only changes wall-clock speed (DESIGN.md section 3).
  static std::vector<CostCounters> run(
      int nranks, const std::function<void(Comm&)>& body,
      Machine machine = Machine::counting(), int threads_per_rank = 0);
};

/// Convenience: modeled parallel execution time = max of per-rank clocks.
[[nodiscard]] inline double modeled_time(
    const std::vector<CostCounters>& per_rank) noexcept {
  double t = 0.0;
  for (const auto& c : per_rank) t = t > c.time ? t : c.time;
  return t;
}

/// Convenience: critical-path-style maxima of the raw counters.
[[nodiscard]] inline CostCounters max_counters(
    const std::vector<CostCounters>& per_rank) noexcept {
  CostCounters m;
  for (const auto& c : per_rank) {
    m.msgs = std::max(m.msgs, c.msgs);
    m.words = std::max(m.words, c.words);
    m.flops = std::max(m.flops, c.flops);
    m.time = std::max(m.time, c.time);
  }
  return m;
}

}  // namespace cacqr::rt
