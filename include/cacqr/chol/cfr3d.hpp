#pragma once
/// \file cfr3d.hpp
/// \brief CFR3D: recursive 3D Cholesky factorization with triangular
///        inverse (paper Algorithm 3).
///
/// Given SPD A distributed cyclically over every z-slice of a cubic grid,
/// computes L (A = L L^T) and Y = L^{-1} in the same distribution.  The
/// recursion halves the matrix: factor A11, form L21 = A21 Y11^T via
/// Transpose + MM3D, update A22 - L21 L21^T, recurse, and combine the
/// inverse as Y21 = -Y22 L21 Y11.  Embedding the inverse into the same
/// recursion (rather than a second recursive pass) is what keeps the
/// synchronization cost at O((n/n0) log P) instead of an extra log factor
/// (paper Section II-D).
///
/// At the base case (dimension n0) the submatrix is allgathered over the
/// slice and every rank runs the sequential CholInv redundantly; the
/// paper's base-case cost (2/3) log2(P) alpha + n0^2 beta + O(n0^3) gamma
/// follows from the slice allgather over P^(2/3) ranks.
///
/// Choosing n0 trades synchronization against communication: the paper
/// picks n0 = n / P^(2/3) to minimize bandwidth, which is the default
/// here (clamped to keep every recursion level divisible by the grid).

#include "cacqr/dist/dist_matrix.hpp"

namespace cacqr::chol {

struct Cfr3dOptions {
  /// Base-case dimension n0; 0 selects the paper's bandwidth-minimizing
  /// default max(g, n / g^2).  The effective value is clamped so that
  /// every recursion level stays divisible by the grid dimension.
  i64 base_case = 0;
  /// The paper's InverseDepth knob (Section III-A): the top
  /// `inverse_depth` recursion levels skip the off-diagonal inverse
  /// blocks (Algorithm 3 lines 12-14), leaving Y block-diagonal with
  /// 2^inverse_depth fully inverted diagonal blocks.  Q = A R^{-1} is
  /// then computed by block back-substitution (see core/ca_cqr.hpp),
  /// saving up to ~2x of the multiply flops at the cost of up to ~2x
  /// more synchronization.  0 (the paper's default) computes the full
  /// inverse.  Clamped to the actual recursion depth.
  int inverse_depth = 0;
};

struct Cfr3dResult {
  dist::DistMatrix l;      ///< lower-triangular factor, A = L L^T
  dist::DistMatrix l_inv;  ///< Y = L^{-1}
};

/// Normalized base-case size actually used for (n, g, requested): halves n
/// while the result stays above the target and divisible by g.  Exposed
/// for the cost model, which must mirror the implementation's recursion
/// depth exactly.
[[nodiscard]] i64 effective_base_case(i64 n, int g, i64 requested);

/// [L, Y] <- CFR3D(A): see file comment.  Throws NotSpdError if A is not
/// numerically positive definite (all ranks throw consistently, since the
/// base-case factorization is computed redundantly from identical data).
[[nodiscard]] Cfr3dResult cfr3d(const dist::DistMatrix& a,
                                const grid::CubeGrid& g,
                                Cfr3dOptions opts = {});

}  // namespace cacqr::chol
