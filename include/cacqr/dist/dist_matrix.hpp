#pragma once
/// \file dist_matrix.hpp
/// \brief Cyclically distributed dense matrices and the distributed
///        primitives (Gather, Transpose, MM3D, block back-substitution)
///        the paper's algorithms are assembled from.
///
/// Convention (see grid.hpp): a matrix is distributed over the (x, y)
/// dimensions of each z-slice of a grid -- matrix rows cycle over the y
/// processors, matrix columns over the x processors -- and is replicated
/// across the depth dimension.  Global entry (i, j) lives on the rank with
/// y == i mod row_procs and x == j mod col_procs, at local index
/// (i / row_procs, j / col_procs).  The cyclic layout is what makes every
/// recursion quadrant of CFR3D again perfectly cyclic on the same grid.
///
/// The collectives charge exactly the costs the model in model/costs.hpp
/// attributes to them (the validation tests tie the two together):
///   transpose3d = one pairwise exchange of the local block;
///   mm3d        = Bcast(A row comm) + Bcast(B column comm) + local gemm
///                 + Allreduce(C depth comm);
///   gather      = one Allgather over the given communicator.
///
/// Threading: every *local* stage in this file (the from_global pack, the
/// gather unpack, the transpose3d staging copy and permute, the mm3d
/// staging copies, add_scaled, and the sub_block copies block_backsolve is
/// built from) is split over the calling rank's worker team
/// (lin/parallel.hpp) at whole-column granularity, so each output element
/// has exactly one owner and results are bitwise identical at every
/// per-rank thread budget (DESIGN.md section 4; asserted by tests/dist/).
/// Collective schedules are fixed and never threaded.  Cost-model charges
/// (alpha/beta from the collectives, gamma from lin/) are independent of
/// the thread budget.

#include <utility>

#include "cacqr/grid/grid.hpp"
#include "cacqr/lin/matrix.hpp"
#include "cacqr/lin/util.hpp"

namespace cacqr::dist {

/// Cyclic layout descriptor: global shape + processor shape + this rank's
/// coordinates within the distribution.
struct Layout {
  i64 rows = 0;
  i64 cols = 0;
  int row_procs = 1;  ///< processors over matrix rows (the grid's y extent)
  int col_procs = 1;  ///< processors over matrix columns (the x extent)
  int my_row = 0;     ///< this rank's y coordinate
  int my_col = 0;     ///< this rank's x coordinate

  [[nodiscard]] i64 local_rows() const noexcept {
    const i64 p = row_procs;
    return rows <= my_row ? 0 : (rows - my_row + p - 1) / p;
  }
  [[nodiscard]] i64 local_cols() const noexcept {
    const i64 p = col_procs;
    return cols <= my_col ? 0 : (cols - my_col + p - 1) / p;
  }
  /// Global row index of local row li (and the column analogue).
  [[nodiscard]] i64 global_row(i64 li) const noexcept {
    return my_row + li * row_procs;
  }
  [[nodiscard]] i64 global_col(i64 lj) const noexcept {
    return my_col + lj * col_procs;
  }
};

/// One rank's piece of a cyclically distributed matrix.  Pure data holder:
/// all communication happens in the free functions below, which take the
/// communicator or grid explicitly (SPMD style).
class DistMatrix {
 public:
  DistMatrix() = default;

  /// Zero matrix of the given global shape and layout.
  DistMatrix(i64 rows, i64 cols, int row_procs, int col_procs, int my_row,
             int my_col);

  /// Like the shape constructor but with UNINITIALIZED local storage (no
  /// zero pass): only for results whose every local element is written
  /// before being read — a permute/copy target, a gemm output with
  /// beta == 0.  Same audit rule as lin::Matrix::uninit.
  [[nodiscard]] static DistMatrix uninit(i64 rows, i64 cols, int row_procs,
                                         int col_procs, int my_row,
                                         int my_col);

  /// Local piece of a replicated global matrix (each rank extracts its
  /// cyclic entries; no communication).
  [[nodiscard]] static DistMatrix from_global(lin::ConstMatrixView a,
                                              int row_procs, int col_procs,
                                              int my_row, int my_col);
  /// from_global over a cube-grid slice: rows cycle over y, columns over x.
  [[nodiscard]] static DistMatrix from_global_on_cube(lin::ConstMatrixView a,
                                                      const grid::CubeGrid& g);
  /// from_global over a tunable-grid slice: rows over d, columns over c.
  [[nodiscard]] static DistMatrix from_global_on_tunable(
      lin::ConstMatrixView a, const grid::TunableGrid& g);
  /// Zero matrix distributed over a cube-grid slice.
  [[nodiscard]] static DistMatrix on_cube(i64 rows, i64 cols,
                                          const grid::CubeGrid& g);

  [[nodiscard]] const Layout& layout() const noexcept { return layout_; }
  [[nodiscard]] i64 rows() const noexcept { return layout_.rows; }
  [[nodiscard]] i64 cols() const noexcept { return layout_.cols; }
  [[nodiscard]] i64 global_row(i64 li) const noexcept {
    return layout_.global_row(li);
  }
  [[nodiscard]] i64 global_col(i64 lj) const noexcept {
    return layout_.global_col(lj);
  }

  [[nodiscard]] lin::Matrix& local() noexcept { return local_; }
  [[nodiscard]] const lin::Matrix& local() const noexcept { return local_; }

  /// The h x w sub-matrix at global offset (i0, j0) as a new DistMatrix
  /// (copied local data).  All of i0, j0, h, w must be divisible by the
  /// processor counts so the sub-matrix is again perfectly cyclic.
  [[nodiscard]] DistMatrix sub_block(i64 i0, i64 j0, i64 h, i64 w) const;
  /// Writes `src` (shaped like the matching sub_block) back at (i0, j0).
  void set_sub_block(i64 i0, i64 j0, const DistMatrix& src);

  /// Half-size quadrant (qi, qj) of a square matrix, as sub_block does.
  [[nodiscard]] DistMatrix quadrant(int qi, int qj) const;
  void set_quadrant(int qi, int qj, const DistMatrix& src);

  /// Reinterprets the same local data under a different global shape and
  /// layout (local dimensions must be preserved).  Used to re-index a
  /// slice-distributed panel in subcube coordinates and back -- a pure
  /// renaming, no data motion.
  [[nodiscard]] DistMatrix reinterpret_layout(i64 rows, i64 cols,
                                              int row_procs, int col_procs,
                                              int my_row, int my_col) const;

 private:
  Layout layout_;
  lin::Matrix local_;
};

/// Allgathers the distributed matrix over `comm` and returns the full
/// global matrix (replicated on every caller).  comm must contain exactly
/// the row_procs * col_procs ranks of the distribution, ordered
/// rank == x + col_procs * y (the slice convention of grid.hpp).
/// Collective; requires the global dimensions divisible by the processor
/// counts.  Charge: one Allgather of the local block over P ranks,
/// ceil(lg P) alpha + (m n / P)(P - 1) beta; the unpack is a threaded
/// local stage.
[[nodiscard]] lin::Matrix gather(const DistMatrix& a, const rt::Comm& comm);

/// The Transpose collective on a cube-grid slice: returns A^T in the same
/// cyclic distribution via one pairwise block exchange between ranks
/// (x, y) and (y, x).  A must be square with dimension divisible by g.
/// Collective over the slice.  Charge: alpha + (n^2 / g^2) beta (the
/// paper's Transpose primitive); the staging copy and the local permute
/// are threaded local stages.
[[nodiscard]] DistMatrix transpose3d(const DistMatrix& a,
                                     const grid::CubeGrid& g);

/// Two transposes with their exchanges pipelined: equivalent to
/// {transpose3d(a, g), transpose3d(b, g)} (bitwise, and in msgs/words),
/// but with rt::overlap_enabled() the second block's staging copy
/// proceeds under the first exchange and the first permute under the
/// second — the back-to-back R / R^{-1} transposes of CA-CQR and the
/// CFR3D recursion.  Both operands must be distributed like transpose3d
/// expects, with equal shapes.
[[nodiscard]] std::pair<DistMatrix, DistMatrix> transpose3d_pair(
    const DistMatrix& a, const DistMatrix& b, const grid::CubeGrid& g);

/// MM3D: C = alpha * A * B on the cube.  Each depth layer z multiplies the
/// k-classes congruent to z (Bcast of A along the row comm from x == z and
/// of B along the column comm from y == z), then an Allreduce along depth
/// sums the g partial products -- the paper's O(n^2 / g^2)-word multiply.
/// All of m, k, n must be divisible by g.  Collective over the cube.
/// Charge: Bcast(m k / g^2, g) + Bcast(k n / g^2, g) +
/// Allreduce(m n / g^2, g) plus the local gemm's 2 m n k / g^3 gamma
/// (model/costs.hpp `cost_mm3d`); staging copies and the gemm are
/// threaded.
[[nodiscard]] DistMatrix mm3d(const DistMatrix& a, const DistMatrix& b,
                              const grid::CubeGrid& g, double alpha = 1.0);

/// z += alpha * u, elementwise on identically distributed operands.
/// Purely local (no communication); charges 2 * local-elements gamma via
/// lin::axpy, whose column loop is threaded.
void add_scaled(DistMatrix& z, double alpha, const DistMatrix& u);

/// Block back-substitution solve X R = B for X = B R^{-1}, where R is
/// upper triangular and `r_inv` holds (at least) the `nblocks` inverted
/// diagonal blocks of R (the InverseDepth strategy, paper Section III-A):
///   X_j = (B_j - sum_{i<j} X_i R_ij) Rinv_jj,
/// every product an MM3D on the cube.  n must be divisible by nblocks and
/// the block size by g.  nblocks == 1 degenerates to one MM3D with the
/// full inverse.  Collective; charge: nblocks (nblocks + 1) / 2 MM3D
/// calls at block granularity -- roughly half the multiply gamma of the
/// full-inverse path at the cost of ~nblocks x more synchronization.
[[nodiscard]] DistMatrix block_backsolve(const DistMatrix& b,
                                         const DistMatrix& r,
                                         const DistMatrix& r_inv, i64 nblocks,
                                         const grid::CubeGrid& g);

}  // namespace cacqr::dist
