#pragma once
/// \file cache.hpp
/// \brief Persistent plan cache: measured/model plans and calibration
///        profiles remembered across processes, so repeated and batched
///        workloads skip planning (and re-calibration) entirely.
///
/// Layout under the cache directory (`CACQR_TUNE_DIR`):
///
///   plans-<fp>.json    one file per profile fingerprint: a versioned
///                      object mapping ProblemKey::text() -> Plan
///   profile-<host>.json  the calibrated MachineProfile for this host
///
/// where <fp> and <host> are FNV-1a digests of the profile fingerprint
/// and host fingerprint.  Guarantees:
///
///   * **Deterministic serialization** -- keys are written in sorted
///     order, numbers in shortest-round-trip form, so store(load(f))
///     reproduces f byte for byte (tested).
///   * **Corruption is ignored, never fatal** -- unparseable files, wrong
///     schema versions, and malformed entries all read as "absent".
///   * **Atomic writes** -- temp file + rename, so a concurrent reader
///     sees the old or the new file, never a torn one.
///
/// The cache is a per-process-call object (cheap: it holds only the
/// directory path); every load/store re-reads the file, which keeps
/// independent processes coherent without locking.  In-process repeat
/// lookups are served by core::factorize's plan memo before ever
/// reaching this class.

#include <optional>

#include "cacqr/tune/planner.hpp"

namespace cacqr::tune {

class PlanCache {
 public:
  /// Disabled cache: loads miss, stores are no-ops.
  PlanCache() = default;

  /// Cache rooted at `dir` (created on first store).  Empty = disabled.
  explicit PlanCache(std::string dir);

  /// Reads CACQR_TUNE_DIR at call time (not cached statically, so tests
  /// and long-lived processes can repoint it).  Unset/empty = disabled.
  [[nodiscard]] static PlanCache from_env();

  [[nodiscard]] bool enabled() const noexcept { return !dir_.empty(); }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Cached plan for (profile fingerprint, problem key), or nullopt.
  [[nodiscard]] std::optional<Plan> load(const std::string& fingerprint,
                                         const ProblemKey& key) const;

  /// Inserts/replaces the entry and rewrites the fingerprint's plan file
  /// (read-modify-write; best-effort -- I/O failures are swallowed, the
  /// cache is an optimization, never a correctness dependency).
  void store(const std::string& fingerprint, const ProblemKey& key,
             const Plan& plan) const;

  /// Calibrated profile persisted for this host fingerprint, or nullopt.
  [[nodiscard]] std::optional<MachineProfile> load_profile(
      const std::string& host) const;
  void store_profile(const MachineProfile& profile) const;

  /// The file a fingerprint's plans live in (test/debug introspection).
  [[nodiscard]] std::string plans_path(const std::string& fingerprint) const;
  [[nodiscard]] std::string profile_path(const std::string& host) const;

 private:
  std::string dir_;
};

}  // namespace cacqr::tune
