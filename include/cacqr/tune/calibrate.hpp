#pragma once
/// \file calibrate.hpp
/// \brief The machine calibrator: short microbenchmarks through the
///        existing instrumented kernels and runtime, fitted into a
///        tune::MachineProfile.
///
/// Three measurements (DESIGN.md section 6):
///
///   * **gamma** -- per-thread kernel sweeps: lin::gemm (square and the
///     tall-skinny panel shape CA-CQR2's local multiplies see) and
///     lin::gram at worker budget 1, best-of-reps wall time.  gamma_s is
///     1 / (best sustained flop rate): the planner's flop charges use the
///     same closed-form flop conventions as the kernels, so the pairing
///     is consistent by construction.
///   * **alpha/beta** -- timed rt::Comm collectives: Allreduce over
///     `ranks` rank-threads at several payload sizes, max-over-ranks
///     wall time, least-squares fit of t(w) = A + B*w.  The butterfly
///     Allreduce charges 2 ceil(lg P) alpha + 2 w beta, so
///     alpha = A / (2 ceil(lg P)) and beta = B / 2.  On this SPMD-over-
///     threads runtime the result is the *shared-memory* message cost --
///     exactly what planning for runs on this runtime needs.
///   * **thread scaling** -- the square-gemm sweep repeated at worker
///     budgets {2, 4, ...} up to the host's hardware threads; stored as
///     speedup-over-budget-1 and folded into gamma by
///     MachineProfile::machine_at.
///
/// Calibration is wall-clock measurement: results vary run to run within
/// noise.  The fitted parameters are clamped to positive floors so a
/// noisy fit can never produce a non-positive (or absurdly small) cost
/// coefficient.

#include "cacqr/rt/comm.hpp"
#include "cacqr/tune/profile.hpp"

namespace cacqr::tune {

struct CalibrateOptions {
  /// Smaller shapes, fewer reps, fewer payload sizes (CI smoke mode).
  bool quick = false;
  /// Timing repetitions per point (best-of).
  int reps = 3;
  /// Rank count for the collective timing runs.
  int ranks = 4;
  /// Cap for the thread-scaling sweep (0 = hardware_threads()).
  int max_threads = 0;
  /// Transport for the collective timing runs.  Pinned to `modeled`
  /// (ranks as threads of this process) rather than deferring to
  /// CACQR_TRANSPORT: the fitted alpha/beta must describe the backend the
  /// planner's plans will actually run on, and must not silently change
  /// because the test environment selected a different transport.  Set to
  /// `shm` to fit cross-process message costs instead.
  rt::TransportKind transport = rt::TransportKind::modeled;
};

/// Runs the microbenchmarks and returns the fitted profile
/// (`calibrated == "measured"`).  Wall-clock cost: well under a second in
/// quick mode, a few seconds otherwise.  Must be called OUTSIDE
/// rt::Runtime::run (it launches its own runtime for the collective
/// fits).
[[nodiscard]] MachineProfile calibrate(const CalibrateOptions& opts = {});

}  // namespace cacqr::tune
