#pragma once
/// \file planner.hpp
/// \brief The autotuning planner: enumerate every way this library can
///        factor an (m, n) matrix on P ranks, score each against a
///        calibrated MachineProfile, and return the winner as a
///        tune::Plan.
///
/// The paper's headline figures plot "the best performing choice of
/// processor grid at each node count" -- tuning IS the algorithm's win
/// condition.  The planner makes that tuning a first-class, cacheable
/// artifact:
///
///   candidates(key) -> every valid configuration across all three
///     variant families, sorted by modeled time ascending:
///       * cqr_1d      -- 1D-CholeskyQR2 on all P ranks (Algorithm 7);
///       * ca_cqr2     -- every valid (c, d) tunable grid (c^2 d = P,
///                       c | d), Algorithm 9;
///       * pgeqrf_2d   -- the ScaLAPACK-style baseline over power-of-two
///                       pr splits and block sizes {16, 32, 64}.
///   plan(key) -> candidates(key).front().
///
/// Scoring is pure arithmetic over model/costs.hpp with the profile's
/// fitted machine (gamma scaled by the measured thread efficiency at
/// key.threads), so every rank of an SPMD run computes the identical
/// plan with no communication.  Timed trial-run refinement of the top-k
/// -- plan_mode=measured -- lives in core::factorize, which owns the
/// data and the communicator the trials must run on.

#include <vector>

#include "cacqr/tune/profile.hpp"

namespace cacqr::tune {

/// What a plan is for: the problem shape, the parallel footprint, and
/// the driver options that change the executed algorithm (a plan or a
/// trial timing for 1-pass CQR must never be reused for 3-pass CQR3).
struct ProblemKey {
  i64 m = 0;
  i64 n = 0;
  int p = 1;        ///< total ranks
  int threads = 1;  ///< per-rank worker budget
  int passes = 2;   ///< FactorizeOptions::passes (CholeskyQR families)
  i64 base_case = 0;  ///< FactorizeOptions::base_case (CFR3D knob)
  /// FactorizeOptions::precision: which passes run the fp32 Gram lane.
  /// Part of the key because it changes both the executed arithmetic and
  /// the candidate scores (halved Gram beta, fp32 gamma) -- a plan scored
  /// for one precision must never be served for another.
  Precision precision = Precision::fp64;

  /// Canonical cache-key text, e.g. "m8192_n128_p8_t1_s2_bc0_fp64".
  [[nodiscard]] std::string text() const;
};

/// One executable configuration with its scores.  `algo` selects the
/// variant; the grid fields that don't apply to it stay 0.
struct Plan {
  /// v2: kernel_variant field (which micro-kernel the plan was scored
  /// for); v1 cache files are ignored by the loader.
  /// v3: precision field (which Gram-precision mode the plan was scored
  /// under); v2 cache files are ignored by the loader.
  static constexpr int kSchemaVersion = 3;

  std::string algo;     ///< "cqr_1d" | "ca_cqr2" | "pgeqrf_2d"
  int c = 0, d = 0;     ///< ca_cqr2 tunable grid
  int pr = 0, pc = 0;   ///< pgeqrf_2d process grid
  i64 block = 0;        ///< pgeqrf_2d panel width
  double predicted_seconds = 0.0;  ///< modeled time under the profile
  double measured_seconds = 0.0;   ///< trial-run time (0 = never trialed)
  std::string source;   ///< "model" | "measured" | "cache" | "heuristic"
  /// Micro-kernel variant active when this plan was scored/measured
  /// ("" on heuristic plans).  A cached plan whose variant differs from
  /// the dispatcher's current pick is treated as a miss and re-planned:
  /// its gamma -- and in measured mode its trial timings -- belong to a
  /// different compute engine.
  std::string kernel_variant;
  /// Gram-precision mode the plan was scored/measured under
  /// (FactorizeOptions::precision).  Like kernel_variant, a cached plan
  /// whose precision differs from the request is a miss: its scores
  /// describe different payload widths and a different compute rate.
  Precision precision = Precision::fp64;

  /// Human-readable grid tag matching bench_cacqr's convention
  /// ("p8", "c2d2", "4x2b16").
  [[nodiscard]] std::string grid() const;

  [[nodiscard]] support::Json to_json() const;
  [[nodiscard]] static std::optional<Plan> from_json(const support::Json& j);
};

struct PlannerOptions {
  /// How many top candidates plan_mode=measured trial-runs.
  int top_k = 3;
};

class Planner {
 public:
  explicit Planner(MachineProfile profile, PlannerOptions opts = {});

  /// All valid candidates for the key, sorted by predicted time
  /// ascending (deterministic tie-break: variant order then grid).
  /// Every returned plan's configuration is executable by
  /// core::factorize on key.p ranks.  Throws EnsureError only for
  /// nonsensical keys (m < n, p < 1).
  [[nodiscard]] std::vector<Plan> candidates(const ProblemKey& key) const;

  /// The model's pick: candidates(key).front(), source == "model".
  [[nodiscard]] Plan plan(const ProblemKey& key) const;

  [[nodiscard]] const MachineProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] const PlannerOptions& options() const noexcept {
    return opts_;
  }

 private:
  MachineProfile profile_;
  PlannerOptions opts_;
};

}  // namespace cacqr::tune
