#pragma once
/// \file profile.hpp
/// \brief tune::MachineProfile: what the calibrator measured about THIS
///        host, in the form the planner scores candidates with.
///
/// Where model/machine.hpp holds hand-set presets for the paper's
/// machines (Stampede2, Blue Waters), a MachineProfile is *measured*: the
/// calibrator fits alpha/beta from timed runtime collectives and gamma
/// from kernel sweeps on the machine actually running the job
/// (DESIGN.md section 6).  The profile carries
///
///   * a fitted model::Machine (the planner evaluates model/costs.hpp
///     formulas against it),
///   * the raw kernel-efficiency table the gamma fit came from (useful
///     for inspection and for bench_tune's JSON artifact),
///   * measured intra-rank thread-scaling efficiencies (budget ->
///     speedup), which the planner folds into gamma when the problem key
///     says ranks run with a worker budget > 1,
///   * a host fingerprint + a parameter digest, which together key the
///     persistent plan cache: plans never leak across hosts or across
///     differently-calibrated profiles.

#include <string>
#include <vector>

#include "cacqr/model/machine.hpp"
#include "cacqr/support/json.hpp"
#include "cacqr/support/precision.hpp"

namespace cacqr::tune {

/// One measured kernel rate (per-thread, i.e. worker budget 1).
struct KernelSample {
  std::string kernel;  ///< "gemm_nn" | "gemm_tn" | "gram" | ...
  i64 m = 0;
  i64 n = 0;
  i64 k = 0;
  double gflops = 0.0;
  /// Micro-kernel variant the sample was measured with (lin::kernel
  /// variant name); "" on pre-variant profiles.
  std::string variant;
};

/// Measured intra-rank thread scaling: at worker budget `threads` the
/// calibration kernel ran `speedup` times faster than at budget 1.
struct ThreadScaling {
  int threads = 1;
  double speedup = 1.0;
};

/// Everything the calibrator measured about ONE micro-kernel variant:
/// its fitted compute rate at worker budget 1 and its thread scaling,
/// both measured with that variant forced active.  The planner scores a
/// candidate with the gamma of the variant the driver will actually
/// dispatch to, not a variant-blind average.
struct VariantCalibration {
  std::string variant;   ///< lin::kernel variant name ("generic", ...)
  double gamma_s = 0.0;  ///< fitted seconds per flop at worker budget 1
  double peak_gflops = 0.0;  ///< best measured rate across the sweeps
  /// fp32-lane rate of the same variant: seconds per (closed-form) flop
  /// through the fp32 micro-kernel at worker budget 1.  The fp32 kernels
  /// charge the same flop counts as their fp64 twins, so this is directly
  /// comparable to gamma_s (roughly gamma_s / 2 on SIMD variants whose
  /// registers hold twice the lanes).  0 = never measured; machine_for
  /// then falls back to gamma_s, i.e. the planner models fp32 compute as
  /// no faster than fp64 and any mixed-precision win comes from the
  /// halved collective payloads alone.
  double gamma32_s = 0.0;
  double peak_gflops32 = 0.0;  ///< best measured fp32-lane rate
  std::vector<ThreadScaling> scaling;  ///< sorted, includes {1, 1}
};

struct MachineProfile {
  /// Schema version of the serialized form; bump on breaking changes.
  /// Loaders ignore files whose version differs (never fatal).
  /// v2: per-variant kernel table (variants / kernel_variant fields,
  /// variant-tagged kernel samples).
  /// v3: per-precision gamma (gamma32_s / peak_gflops32 per variant).
  static constexpr int kSchemaVersion = 3;

  model::Machine machine;  ///< fitted alpha_s / beta_s / gamma_s
  std::vector<KernelSample> kernels;
  std::vector<ThreadScaling> scaling;  ///< sorted by threads, includes {1, 1}
  /// Per-variant calibration table, one entry per host-executable variant
  /// swept by the calibrator (fixed variant order).  May be empty on a
  /// hand-built profile; machine_for falls back to the fitted machine.
  std::vector<VariantCalibration> variants;
  /// The calibrator's pick: the variant whose measured rates back the
  /// top-level gamma_s/scaling (its fastest).  "" on hand-built profiles.
  std::string kernel_variant;
  std::string host;        ///< host fingerprint (hostname, cpu, hw threads)
  std::string calibrated;  ///< "measured" or "generic" (the fallback)

  /// Measured speedup at the given per-rank worker budget: exact table hit,
  /// else the largest measured budget <= threads (conservative -- never
  /// extrapolates beyond what was measured).
  [[nodiscard]] double thread_speedup(int threads) const noexcept;

  /// Effective machine for ranks running `threads` workers each: gamma is
  /// divided by thread_speedup(threads); alpha/beta are per-rank already.
  [[nodiscard]] model::Machine machine_at(int threads) const;

  /// Effective machine for ranks dispatching to the named micro-kernel
  /// variant at the given worker budget: gamma and the thread speedup
  /// come from that variant's calibration entry.  Falls back to
  /// machine_at(threads) when the variant was never calibrated (empty
  /// name, hand-built profile, or a variant this profile predates).
  /// `precision` != fp64 substitutes the variant's fp32-lane gamma
  /// (gamma32_s) when it was measured; an unmeasured fp32 lane falls back
  /// to the fp64 gamma of the same variant, never to another variant.
  [[nodiscard]] model::Machine machine_for(
      std::string_view variant, int threads,
      Precision precision = Precision::fp64) const;

  /// Cache key component: host fingerprint plus an FNV-1a digest of the
  /// fitted parameters, so differently-calibrated profiles on one host
  /// never share cached plans.
  [[nodiscard]] std::string fingerprint() const;

  /// Deterministic serialization (includes kSchemaVersion).
  [[nodiscard]] support::Json to_json() const;
  /// Rejects missing/mismatched schema or non-finite/non-positive fitted
  /// parameters; never throws.
  [[nodiscard]] static std::optional<MachineProfile> from_json(
      const support::Json& j);
};

/// Stable description of this host: hostname, cpu model (when readable
/// from /proc/cpuinfo), and hardware thread count.  Identical across
/// processes on one machine; the plan cache is keyed by it.
[[nodiscard]] std::string host_fingerprint();

/// The no-calibration fallback profile: nominal laptop-class constants
/// (documented in DESIGN.md section 6) with `calibrated == "generic"`.
/// Deterministic, so plan_mode=model works out of the box -- but its
/// absolute predictions are only as good as the guess; calibrate for the
/// real machine.
[[nodiscard]] MachineProfile generic_profile();

/// FNV-1a 64-bit hash rendered as 16 hex chars (cache file names, profile
/// digests).  Deterministic across platforms.
[[nodiscard]] std::string fnv1a_hex(std::string_view text);

}  // namespace cacqr::tune
