#include <algorithm>
#include <cmath>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/factor.hpp"
#include "cacqr/lin/flops.hpp"
#include "cacqr/lin/parallel.hpp"

namespace cacqr::lin {

namespace {

/// Unblocked right-looking Cholesky on a small diagonal block.
/// `pivot_base` offsets the failure index reported for blocked callers.
///
/// Column-oriented: after column j is scaled, every trailing column takes a
/// contiguous axpy update, so the O(n^3/3) work vectorizes instead of
/// running strided row dot products.
void potf2(MatrixView a, i64 pivot_base) {
  const i64 n = a.rows;
  for (i64 j = 0; j < n; ++j) {
    double* __restrict cj = a.data + j * a.ld;
    const double d = cj[j];
    if (!(d > 0.0) || !std::isfinite(d)) {
      throw NotSpdError(
          cacqr::detail::concat("potrf: pivot ", pivot_base + j,
                         " is not positive (", d, "); matrix is not SPD"),
          static_cast<std::size_t>(pivot_base + j));
    }
    const double ljj = std::sqrt(d);
    const double inv_ljj = 1.0 / ljj;
    cj[j] = ljj;
    for (i64 i = j + 1; i < n; ++i) cj[i] *= inv_ljj;
    // Trailing update: A(k:n, k) -= L(k, j) * L(k:n, j) for k > j.
    for (i64 k = j + 1; k < n; ++k) {
      double* __restrict ck = a.data + k * a.ld;
      const double lkj = cj[k];
      if (lkj == 0.0) continue;
      for (i64 i = k; i < n; ++i) ck[i] -= lkj * cj[i];
    }
  }
  flops::add(n * n * n / 3 + 2 * n * n);  // ~n^3/3 multiply-add pairs
}

/// Unblocked lower-triangular inversion, in place.
///
/// Columns are processed left-to-right so that when computing Y(i,j) the
/// entries read as L(i,k) (k > j, columns not yet processed) still hold the
/// original factor while the entries read as Y(k,j) (current column, rows
/// above i) have already been inverted:
///   Y(j,j) = 1 / L(j,j)
///   Y(i,j) = -( L(i,j) Y(j,j) + sum_{j<k<i} L(i,k) Y(k,j) ) / L(i,i).
void trti2_lower(MatrixView l) {
  const i64 n = l.rows;
  for (i64 j = 0; j < n; ++j) {
    const double yjj = 1.0 / l(j, j);
    l(j, j) = yjj;
    for (i64 i = j + 1; i < n; ++i) {
      double acc = l(i, j) * yjj;
      for (i64 k = j + 1; k < i; ++k) acc += l(i, k) * l(k, j);
      l(i, j) = -acc / l(i, i);
    }
  }
  flops::add(n * n * n / 3 + 2 * n * n);
}

constexpr i64 kFactorBlock = 48;

}  // namespace

void potrf(MatrixView a) {
  ensure_dim(a.rows == a.cols, "potrf: matrix must be square");
  const i64 n = a.rows;

  for (i64 k = 0; k < n; k += kFactorBlock) {
    const i64 nb = std::min(kFactorBlock, n - k);
    auto akk = a.sub(k, k, nb, nb);
    potf2(akk, k);
    const i64 rest = n - k - nb;
    if (rest > 0) {
      auto a21 = a.sub(k + nb, k, rest, nb);
      // A21 <- A21 * L11^{-T}
      trsm(Side::Right, Uplo::Lower, Trans::T, Diag::NonUnit, 1.0, akk, a21);
      // A22 <- A22 - A21 A21^T: the O(n^3) trailing update, threaded
      // through the packed kernel inside syrk_nt (full update; syrk
      // mirrors for simplicity, the mirrored half is overwritten below
      // anyway).
      auto a22 = a.sub(k + nb, k + nb, rest, rest);
      syrk_nt(-1.0, a21, 1.0, a22, Uplo::Lower);
    }
  }
  // Zero the strict upper triangle so the result is exactly L (disjoint
  // columns, so the split is race-free and deterministic).
  parallel::parallel_for(n, 64, [&](i64 j0, i64 j1) {
    for (i64 j = std::max<i64>(j0, 1); j < j1; ++j) {
      for (i64 i = 0; i < j; ++i) a(i, j) = 0.0;
    }
  });
}

void trtri_lower(MatrixView l) {
  ensure_dim(l.rows == l.cols, "trtri_lower: matrix must be square");
  const i64 n = l.rows;
  if (n <= kFactorBlock) {
    trti2_lower(l);
    return;
  }
  // Recursive partition: inv([L11 0; L21 L22]) = [Y11 0; -Y22 L21 Y11, Y22].
  const i64 h = n / 2;
  auto l11 = l.sub(0, 0, h, h);
  auto l21 = l.sub(h, 0, n - h, h);
  auto l22 = l.sub(h, h, n - h, n - h);
  trtri_lower(l11);
  trtri_lower(l22);
  // L21 <- -Y22 * L21 * Y11, computed as two triangular multiplies.
  trmm(Side::Left, Uplo::Lower, Trans::N, Diag::NonUnit, -1.0, l22, l21);
  trmm(Side::Right, Uplo::Lower, Trans::N, Diag::NonUnit, 1.0, l11, l21);
}

CholInvResult cholinv(ConstMatrixView a) {
  ensure_dim(a.rows == a.cols, "cholinv: matrix must be square");
  CholInvResult out{materialize(a), Matrix()};
  potrf(out.l);
  out.l_inv = out.l;  // copy, then invert in place
  trtri_lower(out.l_inv);
  return out;
}

}  // namespace cacqr::lin
