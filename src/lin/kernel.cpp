#include "cacqr/lin/kernel.hpp"

#include <algorithm>
#include <vector>

#include "cacqr/support/math.hpp"

namespace cacqr::lin::kernel {

namespace {

/// Packing buffers are per-thread (one SPMD rank == one thread) and grow
/// monotonically, so steady-state kernel calls do no allocation.
thread_local std::vector<double> a_buffer;
thread_local std::vector<double> b_buffer;

/// Element of op(A) at (i, k) in the *operated* (post-transpose) index
/// space.
inline double op_at(ConstMatrixView a, Trans t, i64 i, i64 k) noexcept {
  return t == Trans::N ? a(i, k) : a(k, i);
}

/// Packs the mc x kc block of op(A) starting at (i0, k0) into MR-row
/// panels: panel p holds rows [p*MR, p*MR + MR) stored k-major, so the
/// micro-kernel reads MR contiguous doubles per k step.  Rows beyond mc are
/// zero-padded, which lets the micro-kernel always run full MR x NR tiles.
void pack_a(Trans ta, ConstMatrixView a, i64 i0, i64 k0, i64 mc, i64 kc,
            double* __restrict buf) {
  for (i64 p = 0; p < mc; p += MR) {
    const i64 mr = std::min(MR, mc - p);
    double* panel = buf + p * kc;
    if (ta == Trans::N && mr == MR) {
      // Columns of A are contiguous: gather 8 strided rows per k.
      const double* base = a.data + (i0 + p) + k0 * a.ld;
      for (i64 k = 0; k < kc; ++k) {
        const double* col = base + k * a.ld;
        for (i64 i = 0; i < MR; ++i) panel[k * MR + i] = col[i];
      }
    } else if (ta == Trans::T && mr == MR) {
      // op(A)(i, k) = A(k, i): each packed panel row i is a contiguous
      // column i0+p+i of A.
      for (i64 i = 0; i < MR; ++i) {
        const double* col = a.data + k0 + (i0 + p + i) * a.ld;
        for (i64 k = 0; k < kc; ++k) panel[k * MR + i] = col[k];
      }
    } else {
      for (i64 k = 0; k < kc; ++k) {
        for (i64 i = 0; i < MR; ++i) {
          panel[k * MR + i] =
              i < mr ? op_at(a, ta, i0 + p + i, k0 + k) : 0.0;
        }
      }
    }
  }
}

/// Packs the kc x nc block of op(B) starting at (k0, j0) into NR-column
/// panels: panel q holds columns [q*NR, q*NR + NR) stored k-major, so the
/// micro-kernel reads NR contiguous doubles (one per register broadcast)
/// per k step.  Columns beyond nc are zero-padded.
void pack_b(Trans tb, ConstMatrixView b, i64 k0, i64 j0, i64 kc, i64 nc,
            double* __restrict buf) {
  for (i64 q = 0; q < nc; q += NR) {
    const i64 nr = std::min(NR, nc - q);
    double* panel = buf + q * kc;
    if (tb == Trans::N && nr == NR) {
      // op(B)(k, j) = B(k, j): packed panel column j is a contiguous
      // column j0+q+j of B.
      for (i64 j = 0; j < NR; ++j) {
        const double* col = b.data + k0 + (j0 + q + j) * b.ld;
        for (i64 k = 0; k < kc; ++k) panel[k * NR + j] = col[k];
      }
    } else if (tb == Trans::T && nr == NR) {
      const double* base = b.data + (j0 + q) + k0 * b.ld;
      for (i64 k = 0; k < kc; ++k) {
        const double* col = base + k * b.ld;
        for (i64 j = 0; j < NR; ++j) panel[k * NR + j] = col[j];
      }
    } else {
      // op(B)(k, j) = B(k, j) or B(j, k); columns beyond nc zero-pad.
      for (i64 k = 0; k < kc; ++k) {
        for (i64 j = 0; j < NR; ++j) {
          panel[k * NR + j] =
              j < nr ? (tb == Trans::N ? b(k0 + k, j0 + q + j)
                                       : b(j0 + q + j, k0 + k))
                     : 0.0;
        }
      }
    }
  }
}

#if defined(__GNUC__) || defined(__clang__)

/// Four doubles in a SIMD lane (256-bit); aligned(8) keeps loads from the
/// packed panels unaligned-safe.
typedef double v4df __attribute__((vector_size(32), aligned(8)));

inline v4df load4(const double* p) {
  return *reinterpret_cast<const v4df*>(p);
}
inline void store4(double* p, v4df v) { *reinterpret_cast<v4df*>(p) = v; }

/// The register micro-kernel: acc(MR x NR) = Ap(MR x kc) * Bp(kc x NR)
/// over zero-padded packed panels.  The 8 x 6 block is held in 12 named
/// 256-bit accumulators so the compiler has no freedom to spill or
/// re-vectorize across the wrong axis; each k step is one two-vector
/// column load of A and six scalar broadcasts of B feeding 12 FMAs.
inline void micro_kernel(i64 kc, const double* __restrict ap,
                         const double* __restrict bp,
                         double* __restrict acc) {
  static_assert(MR == 8 && NR == 6, "micro_kernel is specialized for 8x6");
  v4df c0a{}, c0b{}, c1a{}, c1b{}, c2a{}, c2b{};
  v4df c3a{}, c3b{}, c4a{}, c4b{}, c5a{}, c5b{};
  for (i64 k = 0; k < kc; ++k) {
    const v4df a0 = load4(ap);
    const v4df a1 = load4(ap + 4);
    c0a += a0 * bp[0];
    c0b += a1 * bp[0];
    c1a += a0 * bp[1];
    c1b += a1 * bp[1];
    c2a += a0 * bp[2];
    c2b += a1 * bp[2];
    c3a += a0 * bp[3];
    c3b += a1 * bp[3];
    c4a += a0 * bp[4];
    c4b += a1 * bp[4];
    c5a += a0 * bp[5];
    c5b += a1 * bp[5];
    ap += MR;
    bp += NR;
  }
  store4(acc + 0 * MR, c0a);
  store4(acc + 0 * MR + 4, c0b);
  store4(acc + 1 * MR, c1a);
  store4(acc + 1 * MR + 4, c1b);
  store4(acc + 2 * MR, c2a);
  store4(acc + 2 * MR + 4, c2b);
  store4(acc + 3 * MR, c3a);
  store4(acc + 3 * MR + 4, c3b);
  store4(acc + 4 * MR, c4a);
  store4(acc + 4 * MR + 4, c4b);
  store4(acc + 5 * MR, c5a);
  store4(acc + 5 * MR + 4, c5b);
}

#else

/// Portable fallback: fixed trip counts over a local accumulator array.
inline void micro_kernel(i64 kc, const double* __restrict ap,
                         const double* __restrict bp,
                         double* __restrict acc) {
  for (i64 i = 0; i < MR * NR; ++i) acc[i] = 0.0;
  for (i64 k = 0; k < kc; ++k) {
    const double* __restrict av = ap + k * MR;
    const double* __restrict bv = bp + k * NR;
    for (i64 j = 0; j < NR; ++j) {
      const double bj = bv[j];
      double* __restrict accj = acc + j * MR;
      for (i64 i = 0; i < MR; ++i) accj[i] += av[i] * bj;
    }
  }
}

#endif

/// Whether the micro-tile with C-global origin (i, j) and extent mr x nr
/// participates under the filter.
inline bool tile_selected(TileFilter f, i64 i, i64 j, i64 mr, i64 nr) {
  switch (f) {
    case TileFilter::Full:
      return true;
    case TileFilter::Lower:
      // Intersects {(r, c) : r >= c} iff its bottom-left corner does.
      return i + mr - 1 >= j;
    case TileFilter::Upper:
      return i <= j + nr - 1;
  }
  return true;
}

}  // namespace

void gemm_accumulate(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                     ConstMatrixView b, MatrixView c, TileFilter filter) {
  const i64 m = c.rows;
  const i64 n = c.cols;
  const i64 k = ta == Trans::N ? a.cols : a.rows;
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;

  alignas(64) double acc[MR * NR];

  for (i64 jc = 0; jc < n; jc += NC) {
    const i64 nc = std::min(NC, n - jc);
    const i64 nc_pad = round_up(nc, NR);
    for (i64 pc = 0; pc < k; pc += KC) {
      const i64 kc = std::min(KC, k - pc);
      b_buffer.resize(static_cast<std::size_t>(nc_pad * kc));
      pack_b(tb, b, pc, jc, kc, nc, b_buffer.data());
      for (i64 ic = 0; ic < m; ic += MC) {
        const i64 mc = std::min(MC, m - ic);
        const i64 mc_pad = round_up(mc, MR);
        a_buffer.resize(static_cast<std::size_t>(mc_pad * kc));
        pack_a(ta, a, ic, pc, mc, kc, a_buffer.data());
        for (i64 jr = 0; jr < nc; jr += NR) {
          const i64 nr = std::min(NR, nc - jr);
          const double* bp = b_buffer.data() + jr * kc;
          for (i64 ir = 0; ir < mc; ir += MR) {
            const i64 mr = std::min(MR, mc - ir);
            if (!tile_selected(filter, ic + ir, jc + jr, mr, nr)) continue;
            micro_kernel(kc, a_buffer.data() + ir * kc, bp, acc);
            double* ct = c.data + (ic + ir) + (jc + jr) * c.ld;
            for (i64 j = 0; j < nr; ++j) {
              double* __restrict cc = ct + j * c.ld;
              const double* __restrict accj = acc + j * MR;
              for (i64 i = 0; i < mr; ++i) cc[i] += alpha * accj[i];
            }
          }
        }
      }
    }
  }
}

}  // namespace cacqr::lin::kernel
