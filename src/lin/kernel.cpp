#include "cacqr/lin/kernel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>

#include "cacqr/lin/parallel.hpp"
#include "cacqr/support/math.hpp"

namespace cacqr::lin::kernel {

namespace {

// ------------------------------------------------------- packing arenas

std::atomic<i64> g_arena_allocations{0};
std::atomic<i64> g_arena_bytes{0};
std::atomic<i64> g_arena_high_water{0};

/// Grow-only aligned buffer, one per thread per operand.  Growth is the
/// only allocation the kernel layer ever performs; steady-state calls of a
/// given shape reuse the high-water buffer.  Stats are process-wide
/// atomics so tests can assert the no-allocation contract and benches can
/// report the high-water footprint across worker threads.
class PackArena {
 public:
  PackArena() = default;
  PackArena(const PackArena&) = delete;
  PackArena& operator=(const PackArena&) = delete;

  ~PackArena() {
    if (buf_ != nullptr) {
      std::free(buf_);
      g_arena_bytes.fetch_sub(static_cast<i64>(cap_ * sizeof(double)),
                              std::memory_order_relaxed);
    }
  }

  double* get(std::size_t doubles) {
    if (doubles > cap_) grow(doubles);
    return buf_;
  }

 private:
  void grow(std::size_t doubles) {
    // Geometric growth bounds the number of grow events for ramping shapes;
    // 64-byte alignment keeps packed panels cache-line aligned.
    const std::size_t want = std::max(doubles, cap_ + cap_ / 2);
    const std::size_t bytes = static_cast<std::size_t>(
        round_up(static_cast<i64>(want * sizeof(double)), 64));
    double* fresh = static_cast<double*>(std::aligned_alloc(64, bytes));
    if (fresh == nullptr) throw std::bad_alloc();
    std::free(buf_);
    buf_ = fresh;
    const i64 delta =
        static_cast<i64>(bytes) - static_cast<i64>(cap_ * sizeof(double));
    cap_ = bytes / sizeof(double);
    g_arena_allocations.fetch_add(1, std::memory_order_relaxed);
    const i64 now =
        g_arena_bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
    i64 hw = g_arena_high_water.load(std::memory_order_relaxed);
    while (now > hw && !g_arena_high_water.compare_exchange_weak(
                           hw, now, std::memory_order_relaxed)) {
    }
  }

  double* buf_ = nullptr;
  std::size_t cap_ = 0;  // in doubles
};

PackArena& arena_a() {
  thread_local PackArena arena;
  return arena;
}

PackArena& arena_b() {
  thread_local PackArena arena;
  return arena;
}

// ------------------------------------------------------------- packing

/// Element of op(A) at (i, k) in the *operated* (post-transpose) index
/// space.
inline double op_at(ConstMatrixView a, Trans t, i64 i, i64 k) noexcept {
  return t == Trans::N ? a(i, k) : a(k, i);
}

/// Packs MR-row panels [p_begin, p_end) of the mc x kc block of op(A)
/// starting at (i0, k0): panel p holds rows [p*MR, p*MR + MR) stored
/// k-major, so the micro-kernel reads MR contiguous doubles per k step.
/// Rows beyond mc are zero-padded, which lets the micro-kernel always run
/// full MR x NR tiles.  The panel range lets a team pack one block
/// cooperatively (each panel has exactly one packer).
void pack_a(Trans ta, ConstMatrixView a, i64 i0, i64 k0, i64 mc, i64 kc,
            double* __restrict buf, i64 p_begin, i64 p_end) {
  for (i64 pi = p_begin; pi < p_end; ++pi) {
    const i64 p = pi * MR;
    const i64 mr = std::min(MR, mc - p);
    double* panel = buf + p * kc;
    if (ta == Trans::N && mr == MR) {
      // Columns of A are contiguous: gather 8 strided rows per k.
      const double* base = a.data + (i0 + p) + k0 * a.ld;
      for (i64 k = 0; k < kc; ++k) {
        const double* col = base + k * a.ld;
        for (i64 i = 0; i < MR; ++i) panel[k * MR + i] = col[i];
      }
    } else if (ta == Trans::T && mr == MR) {
      // op(A)(i, k) = A(k, i): each packed panel row i is a contiguous
      // column i0+p+i of A.
      for (i64 i = 0; i < MR; ++i) {
        const double* col = a.data + k0 + (i0 + p + i) * a.ld;
        for (i64 k = 0; k < kc; ++k) panel[k * MR + i] = col[k];
      }
    } else {
      for (i64 k = 0; k < kc; ++k) {
        for (i64 i = 0; i < MR; ++i) {
          panel[k * MR + i] =
              i < mr ? op_at(a, ta, i0 + p + i, k0 + k) : 0.0;
        }
      }
    }
  }
}

/// Packs NR-column panels [q_begin, q_end) of the kc x nc block of op(B)
/// starting at (k0, j0): panel q holds columns [q*NR, q*NR + NR) stored
/// k-major, so the micro-kernel reads NR contiguous doubles (one per
/// register broadcast) per k step.  Columns beyond nc are zero-padded.
void pack_b(Trans tb, ConstMatrixView b, i64 k0, i64 j0, i64 kc, i64 nc,
            double* __restrict buf, i64 q_begin, i64 q_end) {
  for (i64 qi = q_begin; qi < q_end; ++qi) {
    const i64 q = qi * NR;
    const i64 nr = std::min(NR, nc - q);
    double* panel = buf + q * kc;
    if (tb == Trans::N && nr == NR) {
      // op(B)(k, j) = B(k, j): packed panel column j is a contiguous
      // column j0+q+j of B.
      for (i64 j = 0; j < NR; ++j) {
        const double* col = b.data + k0 + (j0 + q + j) * b.ld;
        for (i64 k = 0; k < kc; ++k) panel[k * NR + j] = col[k];
      }
    } else if (tb == Trans::T && nr == NR) {
      const double* base = b.data + (j0 + q) + k0 * b.ld;
      for (i64 k = 0; k < kc; ++k) {
        const double* col = base + k * b.ld;
        for (i64 j = 0; j < NR; ++j) panel[k * NR + j] = col[j];
      }
    } else {
      // op(B)(k, j) = B(k, j) or B(j, k); columns beyond nc zero-pad.
      for (i64 k = 0; k < kc; ++k) {
        for (i64 j = 0; j < NR; ++j) {
          panel[k * NR + j] =
              j < nr ? (tb == Trans::N ? b(k0 + k, j0 + q + j)
                                       : b(j0 + q + j, k0 + k))
                     : 0.0;
        }
      }
    }
  }
}

#if defined(__GNUC__) || defined(__clang__)

/// Four doubles in a SIMD lane (256-bit); aligned(8) keeps loads from the
/// packed panels unaligned-safe.
typedef double v4df __attribute__((vector_size(32), aligned(8)));

inline v4df load4(const double* p) {
  return *reinterpret_cast<const v4df*>(p);
}
inline void store4(double* p, v4df v) { *reinterpret_cast<v4df*>(p) = v; }

/// The register micro-kernel: acc(MR x NR) = Ap(MR x kc) * Bp(kc x NR)
/// over zero-padded packed panels.  The 8 x 6 block is held in 12 named
/// 256-bit accumulators so the compiler has no freedom to spill or
/// re-vectorize across the wrong axis; each k step is one two-vector
/// column load of A and six scalar broadcasts of B feeding 12 FMAs.
inline void micro_kernel(i64 kc, const double* __restrict ap,
                         const double* __restrict bp,
                         double* __restrict acc) {
  static_assert(MR == 8 && NR == 6, "micro_kernel is specialized for 8x6");
  v4df c0a{}, c0b{}, c1a{}, c1b{}, c2a{}, c2b{};
  v4df c3a{}, c3b{}, c4a{}, c4b{}, c5a{}, c5b{};
  for (i64 k = 0; k < kc; ++k) {
    const v4df a0 = load4(ap);
    const v4df a1 = load4(ap + 4);
    c0a += a0 * bp[0];
    c0b += a1 * bp[0];
    c1a += a0 * bp[1];
    c1b += a1 * bp[1];
    c2a += a0 * bp[2];
    c2b += a1 * bp[2];
    c3a += a0 * bp[3];
    c3b += a1 * bp[3];
    c4a += a0 * bp[4];
    c4b += a1 * bp[4];
    c5a += a0 * bp[5];
    c5b += a1 * bp[5];
    ap += MR;
    bp += NR;
  }
  store4(acc + 0 * MR, c0a);
  store4(acc + 0 * MR + 4, c0b);
  store4(acc + 1 * MR, c1a);
  store4(acc + 1 * MR + 4, c1b);
  store4(acc + 2 * MR, c2a);
  store4(acc + 2 * MR + 4, c2b);
  store4(acc + 3 * MR, c3a);
  store4(acc + 3 * MR + 4, c3b);
  store4(acc + 4 * MR, c4a);
  store4(acc + 4 * MR + 4, c4b);
  store4(acc + 5 * MR, c5a);
  store4(acc + 5 * MR + 4, c5b);
}

#else

/// Portable fallback: fixed trip counts over a local accumulator array.
inline void micro_kernel(i64 kc, const double* __restrict ap,
                         const double* __restrict bp,
                         double* __restrict acc) {
  for (i64 i = 0; i < MR * NR; ++i) acc[i] = 0.0;
  for (i64 k = 0; k < kc; ++k) {
    const double* __restrict av = ap + k * MR;
    const double* __restrict bv = bp + k * NR;
    for (i64 j = 0; j < NR; ++j) {
      const double bj = bv[j];
      double* __restrict accj = acc + j * MR;
      for (i64 i = 0; i < MR; ++i) accj[i] += av[i] * bj;
    }
  }
}

#endif

/// Whether the micro-tile with C-global origin (i, j) and extent mr x nr
/// participates under the filter.
inline bool tile_selected(TileFilter f, i64 i, i64 j, i64 mr, i64 nr) {
  switch (f) {
    case TileFilter::Full:
      return true;
    case TileFilter::Lower:
      // Intersects {(r, c) : r >= c} iff its bottom-left corner does.
      return i + mr - 1 >= j;
    case TileFilter::Upper:
      return i <= j + nr - 1;
  }
  return true;
}

/// The jr/ir micro-tile sweep over one packed (A block, B panel) pair,
/// restricted to NR-panels [q_begin, q_end) of the jc step.  Each selected
/// micro-tile runs the micro-kernel and clip-writes `alpha * acc` into its
/// mr x nr rectangle of C.  Every tile is written by exactly one caller, so
/// parallel sweeps over disjoint panel (or ic block) ranges stay race-free
/// and bitwise deterministic.
void sweep_tiles(double alpha, const double* __restrict abuf,
                 const double* __restrict bbuf, MatrixView c,
                 TileFilter filter, i64 ic, i64 mc, i64 jc, i64 nc, i64 kc,
                 i64 q_begin, i64 q_end, double* __restrict acc) {
  for (i64 qi = q_begin; qi < q_end; ++qi) {
    const i64 jr = qi * NR;
    const i64 nr = std::min(NR, nc - jr);
    const double* bp = bbuf + jr * kc;
    for (i64 ir = 0; ir < mc; ir += MR) {
      const i64 mr = std::min(MR, mc - ir);
      if (!tile_selected(filter, ic + ir, jc + jr, mr, nr)) continue;
      micro_kernel(kc, abuf + ir * kc, bp, acc);
      double* ct = c.data + (ic + ir) + (jc + jr) * c.ld;
      for (i64 j = 0; j < nr; ++j) {
        double* __restrict cc = ct + j * c.ld;
        const double* __restrict accj = acc + j * MR;
        for (i64 i = 0; i < mr; ++i) cc[i] += alpha * accj[i];
      }
    }
  }
}

/// Minimum madd count before a product is worth a parallel region (~100us
/// of single-thread work); below it, dispatch overhead dominates.
constexpr double kParallelMaddThreshold = 1 << 20;

}  // namespace

void gemm_accumulate(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                     ConstMatrixView b, MatrixView c, TileFilter filter) {
  const i64 m = c.rows;
  const i64 n = c.cols;
  const i64 k = ta == Trans::N ? a.cols : a.rows;
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;

  const int budget = parallel::thread_budget();
  const bool threaded =
      budget > 1 && static_cast<double>(m) * static_cast<double>(n) *
                            static_cast<double>(k) >=
                        kParallelMaddThreshold;

  if (!threaded) {
    alignas(64) double acc[MR * NR];
    for (i64 jc = 0; jc < n; jc += NC) {
      const i64 nc = std::min(NC, n - jc);
      const i64 nc_pad = round_up(nc, NR);
      for (i64 pc = 0; pc < k; pc += KC) {
        const i64 kc = std::min(KC, k - pc);
        double* bbuf =
            arena_b().get(static_cast<std::size_t>(nc_pad * kc));
        pack_b(tb, b, pc, jc, kc, nc, bbuf, 0, ceil_div(nc, NR));
        for (i64 ic = 0; ic < m; ic += MC) {
          const i64 mc = std::min(MC, m - ic);
          const i64 mc_pad = round_up(mc, MR);
          double* abuf =
              arena_a().get(static_cast<std::size_t>(mc_pad * kc));
          pack_a(ta, a, ic, pc, mc, kc, abuf, 0, ceil_div(mc, MR));
          sweep_tiles(alpha, abuf, bbuf, c, filter, ic, mc, jc, nc, kc, 0,
                      ceil_div(nc, NR), acc);
        }
      }
    }
    return;
  }

  // Thread-parallel driver.  The jc/pc loops stay sequential (they define
  // each C tile's accumulation order); within a (jc, pc) step the team
  //   1. packs the shared op(B) panel cooperatively (one packer per
  //      NR-panel), barrier;
  //   2. splits the ic/jr tile space:
  //      - enough MC blocks: each thread owns whole ic blocks round-robin
  //        and packs its own op(A) into its thread-local arena;
  //      - few MC blocks (small m, e.g. Gram products): per block, the
  //        team packs a shared op(A) cooperatively, barriers, then splits
  //        the jr panels; a trailing barrier protects the shared pack
  //        buffer from the next block's repack.
  // Ownership of every C micro-tile is unique and the pc reduction is
  // never split, so the result is bitwise identical to the sequential
  // driver for every thread count.
  for (i64 jc = 0; jc < n; jc += NC) {
    const i64 nc = std::min(NC, n - jc);
    const i64 nc_pad = round_up(nc, NR);
    const i64 q_total = ceil_div(nc, NR);
    for (i64 pc = 0; pc < k; pc += KC) {
      const i64 kc = std::min(KC, k - pc);
      double* bbuf = arena_b().get(static_cast<std::size_t>(nc_pad * kc));
      const i64 ic_total = ceil_div(m, MC);
      const int nt = static_cast<int>(
          std::min<i64>(budget, std::max(ic_total, q_total)));
      const bool split_ic = ic_total >= nt;
      double* shared_abuf = nullptr;
      if (!split_ic) {
        const i64 mc_max = std::min(MC, m);
        shared_abuf = arena_a().get(
            static_cast<std::size_t>(round_up(mc_max, MR) * kc));
      }
      parallel::run(nt, [&](parallel::Team& team) {
        const parallel::Range bq = team.chunk(q_total, 1);
        pack_b(tb, b, pc, jc, kc, nc, bbuf, bq.begin, bq.end);
        team.barrier();
        alignas(64) double acc[MR * NR];
        if (split_ic) {
          for (i64 blk = team.tid(); blk < ic_total; blk += team.size()) {
            const i64 ic = blk * MC;
            const i64 mc = std::min(MC, m - ic);
            const i64 mc_pad = round_up(mc, MR);
            double* abuf =
                arena_a().get(static_cast<std::size_t>(mc_pad * kc));
            pack_a(ta, a, ic, pc, mc, kc, abuf, 0, ceil_div(mc, MR));
            sweep_tiles(alpha, abuf, bbuf, c, filter, ic, mc, jc, nc, kc,
                        0, q_total, acc);
          }
        } else {
          for (i64 blk = 0; blk < ic_total; ++blk) {
            const i64 ic = blk * MC;
            const i64 mc = std::min(MC, m - ic);
            const parallel::Range ap = team.chunk(ceil_div(mc, MR), 1);
            pack_a(ta, a, ic, pc, mc, kc, shared_abuf, ap.begin, ap.end);
            team.barrier();
            const parallel::Range qs = team.chunk(q_total, 1);
            sweep_tiles(alpha, shared_abuf, bbuf, c, filter, ic, mc, jc,
                        nc, kc, qs.begin, qs.end, acc);
            team.barrier();
          }
        }
      });
    }
  }
}

ArenaStats arena_stats() noexcept {
  return {g_arena_allocations.load(std::memory_order_relaxed),
          g_arena_bytes.load(std::memory_order_relaxed),
          g_arena_high_water.load(std::memory_order_relaxed)};
}

}  // namespace cacqr::lin::kernel
