/// \file kernel.cpp
/// \brief The packed GEMM driver and the micro-kernel variant dispatcher.
///
/// Everything above the MR x NR register tile lives here exactly once --
/// packing, MC/NC/KC cache blocking, the cooperative thread decomposition,
/// and the persistent arenas -- parameterized by the active variant's
/// MicroKernelImpl descriptor (kernel_impl.hpp).  The descriptor is read
/// once per gemm_accumulate call, so a concurrent set_kernel_variant can
/// never mix two geometries inside one product.
///
/// Dispatch resolves once per process (std::call_once): CACQR_KERNEL is
/// parsed with parse_kernel_variant; a forced variant that this host cannot
/// execute throws rather than silently falling back; `auto` picks the
/// widest supported SIMD variant (avx512 > avx2 > neon > generic).  After
/// resolution the only per-tile cost is one function-pointer call.

#include "cacqr/lin/kernel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <string>

#include "cacqr/lin/parallel.hpp"
#include "cacqr/obs/metrics.hpp"
#include "cacqr/obs/trace.hpp"
#include "cacqr/support/error.hpp"
#include "cacqr/support/math.hpp"
#include "kernel_impl.hpp"

namespace cacqr::lin::kernel {

using detail::kMaxMr;
using detail::kMaxNr;
using detail::MicroKernelImpl;
using detail::MicroKernelImplF;

namespace {

// ----------------------------------------------------- variant dispatch

/// Descriptor lookup: nullptr when the variant's TU carries no code for
/// this architecture.
const MicroKernelImpl* impl_for(Variant v) noexcept {
  switch (v) {
    case Variant::generic:
      return detail::generic_impl();
    case Variant::avx2:
      return detail::avx2_impl();
    case Variant::avx512:
      return detail::avx512_impl();
    case Variant::neon:
      return detail::neon_impl();
  }
  return nullptr;
}

/// The fp32 twin of impl_for: every variant TU pair shares one
/// architecture guard, so the f32 descriptor is present exactly when the
/// f64 one is.
const MicroKernelImplF* impl_for_f32(Variant v) noexcept {
  switch (v) {
    case Variant::generic:
      return detail::generic_impl_f32();
    case Variant::avx2:
      return detail::avx2_impl_f32();
    case Variant::avx512:
      return detail::avx512_impl_f32();
    case Variant::neon:
      return detail::neon_impl_f32();
  }
  return nullptr;
}

/// Whether this host's CPU can execute the variant's instructions.  The
/// descriptor being present only means the code exists in the binary; on
/// x86 the cpuid probe decides executability.  NEON/ASIMD is part of the
/// AArch64 baseline, so descriptor presence is sufficient there.
bool cpu_can_run(Variant v) noexcept {
  switch (v) {
    case Variant::generic:
      return true;
    case Variant::avx2:
#if defined(__x86_64__)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Variant::avx512:
#if defined(__x86_64__)
      return __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
    case Variant::neon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

std::string supported_list() {
  std::string out;
  for (Variant v : supported_variants()) {
    if (!out.empty()) out += ", ";
    out += variant_name(v);
  }
  return out;
}

/// Resolves CACQR_KERNEL once; throwing from here propagates out of the
/// first active_variant() call (std::call_once does not latch on throw, so
/// a misconfigured environment fails every call, loudly).
const MicroKernelImpl* resolve_from_env() {
  const VariantChoice choice =
      parse_kernel_variant(std::getenv("CACQR_KERNEL"));
  ensure(choice != VariantChoice::invalid,
         "CACQR_KERNEL: unrecognized kernel variant \"",
         std::getenv("CACQR_KERNEL") ? std::getenv("CACQR_KERNEL") : "",
         "\" (expected auto, generic, avx2, avx512, or neon)");
  if (choice == VariantChoice::automatic) {
    // Widest supported SIMD first; generic is the always-available floor.
    for (Variant v :
         {Variant::avx512, Variant::avx2, Variant::neon, Variant::generic}) {
      if (variant_supported(v)) return impl_for(v);
    }
    return detail::generic_impl();
  }
  const Variant forced = choice == VariantChoice::generic  ? Variant::generic
                         : choice == VariantChoice::avx2   ? Variant::avx2
                         : choice == VariantChoice::avx512 ? Variant::avx512
                                                           : Variant::neon;
  ensure(variant_supported(forced), "CACQR_KERNEL=", variant_name(forced),
         " is not executable on this host (supported: ", supported_list(),
         ")");
  return impl_for(forced);
}

std::atomic<const MicroKernelImpl*> g_active{nullptr};
std::once_flag g_active_once;

const MicroKernelImpl* active_impl() {
  const MicroKernelImpl* impl = g_active.load(std::memory_order_acquire);
  if (impl != nullptr) return impl;
  std::call_once(g_active_once, [] {
    g_active.store(resolve_from_env(), std::memory_order_release);
  });
  return g_active.load(std::memory_order_acquire);
}

// ------------------------------------------------------- packing arenas

std::atomic<i64> g_arena_allocations{0};
std::atomic<i64> g_arena_bytes{0};
std::atomic<i64> g_arena_high_water{0};

/// Per-task-group attribution (parallel::task_group()): each arena's
/// CAPACITY is charged to the group that last grew it, so when many
/// drivers share one process (the serving scheduler), arena_stats(group)
/// isolates one lane's growth and footprint.  Growth is rare (grow-only
/// arenas hit steady state after warmup), so a mutex-guarded map is
/// plenty; the hot path (get() without grow) never touches it.  Leaked:
/// thread_local arena destructors may run after static destructors.
struct GroupCounters {
  i64 allocations = 0;
  i64 bytes = 0;
  i64 high_water = 0;
};

std::mutex& group_mu() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::map<int, GroupCounters>& group_map() {
  static auto* m = new std::map<int, GroupCounters>();
  return *m;
}

/// Moves an arena's capacity charge from `old_group` (its previous
/// grower) to `new_group`, recording one grow event.
void group_charge(int old_group, i64 old_cap, int new_group, i64 new_cap) {
  i64 group_high_water = 0;
  {
    const std::lock_guard<std::mutex> lock(group_mu());
    auto& m = group_map();
    if (old_cap > 0) m[old_group].bytes -= old_cap;
    GroupCounters& g = m[new_group];
    g.allocations += 1;
    g.bytes += new_cap;
    if (g.bytes > g.high_water) g.high_water = g.bytes;
    group_high_water = g.high_water;
  }
  obs::Registry::global()
      .gauge("lin.arena.group." + std::to_string(new_group) + ".high_water")
      .record_max(static_cast<double>(group_high_water));
}

void group_discharge(int group, i64 cap) {
  if (cap <= 0) return;
  const std::lock_guard<std::mutex> lock(group_mu());
  group_map()[group].bytes -= cap;
}

/// Grow-only aligned buffer, one per thread per operand.  Growth is the
/// only allocation the kernel layer ever performs; steady-state calls of a
/// given shape reuse the high-water buffer.  Capacity is tracked in BYTES
/// so the fp64 and fp32 kernel lanes share one pool per thread (their
/// cache-block geometries are chosen to occupy the same byte budget).
/// Stats are process-wide atomics so tests can assert the no-allocation
/// contract and benches can report the high-water footprint across worker
/// threads.
class PackArena {
 public:
  PackArena() = default;
  PackArena(const PackArena&) = delete;
  PackArena& operator=(const PackArena&) = delete;

  ~PackArena() {
    if (buf_ != nullptr) {
      std::free(buf_);
      g_arena_bytes.fetch_sub(static_cast<i64>(cap_),
                              std::memory_order_relaxed);
      group_discharge(group_, static_cast<i64>(cap_));
    }
  }

  template <class T>
  T* get(std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    if (bytes > cap_) grow(bytes);
    return static_cast<T*>(buf_);
  }

 private:
  void grow(std::size_t want_bytes) {
    // Geometric growth bounds the number of grow events for ramping shapes;
    // 64-byte alignment keeps packed panels cache-line aligned.
    const std::size_t want = std::max(want_bytes, cap_ + cap_ / 2);
    const std::size_t bytes =
        static_cast<std::size_t>(round_up(static_cast<i64>(want), 64));
    void* fresh = std::aligned_alloc(64, bytes);
    if (fresh == nullptr) throw std::bad_alloc();
    std::free(buf_);
    buf_ = fresh;
    const i64 delta = static_cast<i64>(bytes) - static_cast<i64>(cap_);
    cap_ = bytes;
    g_arena_allocations.fetch_add(1, std::memory_order_relaxed);
    const i64 now =
        g_arena_bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
    i64 hw = g_arena_high_water.load(std::memory_order_relaxed);
    while (now > hw && !g_arena_high_water.compare_exchange_weak(
                           hw, now, std::memory_order_relaxed)) {
    }
    const int owner = parallel::task_group();
    group_charge(group_, static_cast<i64>(cap_) - delta, owner,
                 static_cast<i64>(cap_));
    group_ = owner;
    // Growth is rare by design (geometric, reused at steady state), so
    // one instant per grow plus registry updates costs nothing on the
    // per-tile hot path.
    if (obs::trace_on()) {
      obs::instant("lin", "arena_grow",
                   {{"bytes", static_cast<double>(delta)},
                    {"cap", static_cast<double>(cap_)},
                    {"group", static_cast<double>(owner)}});
    }
    auto& reg = obs::Registry::global();
    reg.counter("lin.arena.allocations").add(1);
    reg.gauge("lin.arena.bytes").set(static_cast<double>(now));
  }

  void* buf_ = nullptr;
  std::size_t cap_ = 0;  // in bytes
  int group_ = 0;  ///< task group charged with the current capacity
};

PackArena& arena_a() {
  thread_local PackArena arena;
  return arena;
}

PackArena& arena_b() {
  thread_local PackArena arena;
  return arena;
}

// ------------------------------------------------------------- packing
//
// Packing, the tile sweep, and the driver body below are templates over
// the element type: instantiated at double they are token-for-token the
// pre-fp32 driver (same statements, same operation order, so the fp64
// lane stays bitwise identical), and at float they carry the fp32 lane
// through identical machinery.

/// Element of op(A) at (i, k) in the *operated* (post-transpose) index
/// space.
template <class View>
inline auto op_at(const View& a, Trans t, i64 i, i64 k) noexcept {
  return t == Trans::N ? a(i, k) : a(k, i);
}

/// Packs tmr-row panels [p_begin, p_end) of the mc x kc block of op(A)
/// starting at (i0, k0): panel p holds rows [p*tmr, p*tmr + tmr) stored
/// k-major, so the micro-kernel reads tmr contiguous elements per k step.
/// Rows beyond mc are zero-padded, which lets the micro-kernel always run
/// full tmr x tnr tiles.  The panel range lets a team pack one block
/// cooperatively (each panel has exactly one packer).  tmr is the active
/// variant's register-tile height.
template <class T, class View>
void pack_a(Trans ta, const View& a, i64 i0, i64 k0, i64 mc, i64 kc,
            i64 tmr, T* __restrict buf, i64 p_begin, i64 p_end) {
  for (i64 pi = p_begin; pi < p_end; ++pi) {
    const i64 p = pi * tmr;
    const i64 mr = std::min(tmr, mc - p);
    T* panel = buf + p * kc;
    if (ta == Trans::N && mr == tmr) {
      // Columns of A are contiguous: gather tmr strided rows per k.
      const T* base = a.data + (i0 + p) + k0 * a.ld;
      for (i64 k = 0; k < kc; ++k) {
        const T* col = base + k * a.ld;
        for (i64 i = 0; i < tmr; ++i) panel[k * tmr + i] = col[i];
      }
    } else if (ta == Trans::T && mr == tmr) {
      // op(A)(i, k) = A(k, i): each packed panel row i is a contiguous
      // column i0+p+i of A.
      for (i64 i = 0; i < tmr; ++i) {
        const T* col = a.data + k0 + (i0 + p + i) * a.ld;
        for (i64 k = 0; k < kc; ++k) panel[k * tmr + i] = col[k];
      }
    } else {
      for (i64 k = 0; k < kc; ++k) {
        for (i64 i = 0; i < tmr; ++i) {
          panel[k * tmr + i] =
              i < mr ? op_at(a, ta, i0 + p + i, k0 + k) : T(0);
        }
      }
    }
  }
}

/// Packs tnr-column panels [q_begin, q_end) of the kc x nc block of op(B)
/// starting at (k0, j0): panel q holds columns [q*tnr, q*tnr + tnr) stored
/// k-major, so the micro-kernel reads tnr contiguous elements (one per
/// register broadcast) per k step.  Columns beyond nc are zero-padded.
/// tnr is the active variant's register-tile width.
template <class T, class View>
void pack_b(Trans tb, const View& b, i64 k0, i64 j0, i64 kc, i64 nc,
            i64 tnr, T* __restrict buf, i64 q_begin, i64 q_end) {
  for (i64 qi = q_begin; qi < q_end; ++qi) {
    const i64 q = qi * tnr;
    const i64 nr = std::min(tnr, nc - q);
    T* panel = buf + q * kc;
    if (tb == Trans::N && nr == tnr) {
      // op(B)(k, j) = B(k, j): packed panel column j is a contiguous
      // column j0+q+j of B.
      for (i64 j = 0; j < tnr; ++j) {
        const T* col = b.data + k0 + (j0 + q + j) * b.ld;
        for (i64 k = 0; k < kc; ++k) panel[k * tnr + j] = col[k];
      }
    } else if (tb == Trans::T && nr == tnr) {
      const T* base = b.data + (j0 + q) + k0 * b.ld;
      for (i64 k = 0; k < kc; ++k) {
        const T* col = base + k * b.ld;
        for (i64 j = 0; j < tnr; ++j) panel[k * tnr + j] = col[j];
      }
    } else {
      // op(B)(k, j) = B(k, j) or B(j, k); columns beyond nc zero-pad.
      for (i64 k = 0; k < kc; ++k) {
        for (i64 j = 0; j < tnr; ++j) {
          panel[k * tnr + j] =
              j < nr ? (tb == Trans::N ? b(k0 + k, j0 + q + j)
                                       : b(j0 + q + j, k0 + k))
                     : T(0);
        }
      }
    }
  }
}

/// Whether the micro-tile with C-global origin (i, j) and extent mr x nr
/// participates under the filter.
inline bool tile_selected(TileFilter f, i64 i, i64 j, i64 mr, i64 nr) {
  switch (f) {
    case TileFilter::Full:
      return true;
    case TileFilter::Lower:
      // Intersects {(r, c) : r >= c} iff its bottom-left corner does.
      return i + mr - 1 >= j;
    case TileFilter::Upper:
      return i <= j + nr - 1;
  }
  return true;
}

/// The jr/ir micro-tile sweep over one packed (A block, B panel) pair,
/// restricted to tnr-panels [q_begin, q_end) of the jc step.  Each selected
/// micro-tile runs the variant's tile function and clip-writes `alpha *
/// acc` into its mr x nr rectangle of C.  Every tile is written by exactly
/// one caller, so parallel sweeps over disjoint panel (or ic block) ranges
/// stay race-free and bitwise deterministic.
template <class T, class Impl, class CMView>
void sweep_tiles(const Impl& ki, T alpha, const T* __restrict abuf,
                 const T* __restrict bbuf, CMView c, TileFilter filter,
                 i64 ic, i64 mc, i64 jc, i64 nc, i64 kc, i64 q_begin,
                 i64 q_end, T* __restrict acc) {
  const i64 tmr = ki.mr;
  const i64 tnr = ki.nr;
  for (i64 qi = q_begin; qi < q_end; ++qi) {
    const i64 jr = qi * tnr;
    const i64 nr = std::min(tnr, nc - jr);
    const T* bp = bbuf + jr * kc;
    for (i64 ir = 0; ir < mc; ir += tmr) {
      const i64 mr = std::min(tmr, mc - ir);
      if (!tile_selected(filter, ic + ir, jc + jr, mr, nr)) continue;
      ki.tile(kc, abuf + ir * kc, bp, acc);
      T* ct = c.data + (ic + ir) + (jc + jr) * c.ld;
      for (i64 j = 0; j < nr; ++j) {
        T* __restrict cc = ct + j * c.ld;
        const T* __restrict accj = acc + j * tmr;
        for (i64 i = 0; i < mr; ++i) cc[i] += alpha * accj[i];
      }
    }
  }
}

/// Minimum madd count before a product is worth a parallel region (~100us
/// of single-thread work); below it, dispatch overhead dominates.
constexpr double kParallelMaddThreshold = 1 << 20;

/// Per-element-type accumulator-scratch ceiling for the driver body.
template <class T>
inline constexpr i64 kMaxAcc = 0;
template <>
inline constexpr i64 kMaxAcc<double> = kMaxMr * kMaxNr;
template <>
inline constexpr i64 kMaxAcc<float> = detail::kMaxMr32 * detail::kMaxNr32;

}  // namespace

VariantChoice parse_kernel_variant(const char* spec) noexcept {
  if (spec == nullptr) return VariantChoice::automatic;
  const std::string_view s(spec);
  if (s.empty() || s == "auto") return VariantChoice::automatic;
  if (s == "generic") return VariantChoice::generic;
  if (s == "avx2") return VariantChoice::avx2;
  if (s == "avx512") return VariantChoice::avx512;
  if (s == "neon") return VariantChoice::neon;
  return VariantChoice::invalid;
}

const char* variant_name(Variant v) noexcept {
  switch (v) {
    case Variant::generic:
      return "generic";
    case Variant::avx2:
      return "avx2";
    case Variant::avx512:
      return "avx512";
    case Variant::neon:
      return "neon";
  }
  return "generic";
}

bool variant_supported(Variant v) noexcept {
  return impl_for(v) != nullptr && cpu_can_run(v);
}

std::vector<Variant> supported_variants() {
  std::vector<Variant> out;
  for (Variant v :
       {Variant::generic, Variant::avx2, Variant::avx512, Variant::neon}) {
    if (variant_supported(v)) out.push_back(v);
  }
  return out;
}

Variant active_variant() { return active_impl()->variant; }

Variant set_kernel_variant(Variant v) {
  ensure(variant_supported(v), "set_kernel_variant: ", variant_name(v),
         " is not executable on this host (supported: ", supported_list(),
         ")");
  active_impl();  // resolve the env default first so `prev` is meaningful
  const MicroKernelImpl* prev =
      g_active.exchange(impl_for(v), std::memory_order_acq_rel);
  return prev->variant;
}

namespace {

/// The driver body, shared verbatim by the fp64 and fp32 lanes (the
/// double instantiation is token-for-token the pre-fp32 driver, so
/// fp64 results stay bitwise identical).
template <class T, class Impl, class CView, class MView>
void gemm_accumulate_body(const Impl& ki, Trans ta, Trans tb, T alpha,
                          CView a, CView b, MView c, TileFilter filter) {
  const i64 m = c.rows;
  const i64 n = c.cols;
  const i64 k = ta == Trans::N ? a.cols : a.rows;
  if (m == 0 || n == 0 || k == 0 || alpha == T(0)) return;

  const i64 TMR = ki.mr, TNR = ki.nr, TMC = ki.mc, TKC = ki.kc, TNC = ki.nc;

  const int budget = parallel::thread_budget();
  const bool threaded =
      budget > 1 && static_cast<double>(m) * static_cast<double>(n) *
                            static_cast<double>(k) >=
                        kParallelMaddThreshold;

  if (!threaded) {
    alignas(64) T acc[kMaxAcc<T>];
    for (i64 jc = 0; jc < n; jc += TNC) {
      const i64 nc = std::min(TNC, n - jc);
      const i64 nc_pad = round_up(nc, TNR);
      for (i64 pc = 0; pc < k; pc += TKC) {
        const i64 kc = std::min(TKC, k - pc);
        T* bbuf =
            arena_b().get<T>(static_cast<std::size_t>(nc_pad * kc));
        pack_b(tb, b, pc, jc, kc, nc, TNR, bbuf, 0, ceil_div(nc, TNR));
        for (i64 ic = 0; ic < m; ic += TMC) {
          const i64 mc = std::min(TMC, m - ic);
          const i64 mc_pad = round_up(mc, TMR);
          T* abuf =
              arena_a().get<T>(static_cast<std::size_t>(mc_pad * kc));
          pack_a(ta, a, ic, pc, mc, kc, TMR, abuf, 0, ceil_div(mc, TMR));
          sweep_tiles(ki, alpha, abuf, bbuf, c, filter, ic, mc, jc, nc, kc,
                      0, ceil_div(nc, TNR), acc);
        }
      }
    }
    return;
  }

  // Thread-parallel driver.  The jc/pc loops stay sequential (they define
  // each C tile's accumulation order); within a (jc, pc) step the team
  //   1. packs the shared op(B) panel cooperatively (one packer per
  //      NR-panel), barrier;
  //   2. splits the ic/jr tile space:
  //      - enough MC blocks: each thread owns whole ic blocks round-robin
  //        and packs its own op(A) into its thread-local arena;
  //      - few MC blocks (small m, e.g. Gram products): per block, the
  //        team packs a shared op(A) cooperatively, barriers, then splits
  //        the jr panels; a trailing barrier protects the shared pack
  //        buffer from the next block's repack.
  // Ownership of every C micro-tile is unique and the pc reduction is
  // never split, so the result is bitwise identical to the sequential
  // driver for every thread count -- per variant and per precision.
  for (i64 jc = 0; jc < n; jc += TNC) {
    const i64 nc = std::min(TNC, n - jc);
    const i64 nc_pad = round_up(nc, TNR);
    const i64 q_total = ceil_div(nc, TNR);
    for (i64 pc = 0; pc < k; pc += TKC) {
      const i64 kc = std::min(TKC, k - pc);
      T* bbuf = arena_b().get<T>(static_cast<std::size_t>(nc_pad * kc));
      const i64 ic_total = ceil_div(m, TMC);
      const int nt = static_cast<int>(
          std::min<i64>(budget, std::max(ic_total, q_total)));
      const bool split_ic = ic_total >= nt;
      T* shared_abuf = nullptr;
      if (!split_ic) {
        const i64 mc_max = std::min(TMC, m);
        shared_abuf = arena_a().get<T>(
            static_cast<std::size_t>(round_up(mc_max, TMR) * kc));
      }
      parallel::run(nt, [&](parallel::Team& team) {
        const parallel::Range bq = team.chunk(q_total, 1);
        pack_b(tb, b, pc, jc, kc, nc, TNR, bbuf, bq.begin, bq.end);
        team.barrier();
        alignas(64) T acc[kMaxAcc<T>];
        if (split_ic) {
          for (i64 blk = team.tid(); blk < ic_total; blk += team.size()) {
            const i64 ic = blk * TMC;
            const i64 mc = std::min(TMC, m - ic);
            const i64 mc_pad = round_up(mc, TMR);
            T* abuf =
                arena_a().get<T>(static_cast<std::size_t>(mc_pad * kc));
            pack_a(ta, a, ic, pc, mc, kc, TMR, abuf, 0, ceil_div(mc, TMR));
            sweep_tiles(ki, alpha, abuf, bbuf, c, filter, ic, mc, jc, nc,
                        kc, 0, q_total, acc);
          }
        } else {
          for (i64 blk = 0; blk < ic_total; ++blk) {
            const i64 ic = blk * TMC;
            const i64 mc = std::min(TMC, m - ic);
            const parallel::Range ap = team.chunk(ceil_div(mc, TMR), 1);
            pack_a(ta, a, ic, pc, mc, kc, TMR, shared_abuf, ap.begin,
                   ap.end);
            team.barrier();
            const parallel::Range qs = team.chunk(q_total, 1);
            sweep_tiles(ki, alpha, shared_abuf, bbuf, c, filter, ic, mc,
                        jc, nc, kc, qs.begin, qs.end, acc);
            team.barrier();
          }
        }
      });
    }
  }
}

}  // namespace

void gemm_accumulate(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                     ConstMatrixView b, MatrixView c, TileFilter filter) {
  // One descriptor read per product: geometry and tile function stay
  // coherent even if set_kernel_variant races with this call.
  const MicroKernelImpl ki = *active_impl();
  gemm_accumulate_body<double>(ki, ta, tb, alpha, a, b, c, filter);
}

void gemm_accumulate_f32(Trans ta, Trans tb, float alpha, ConstMatrixFView a,
                         ConstMatrixFView b, MatrixFView c,
                         TileFilter filter) {
  // The fp32 twin of the active variant's descriptor; present exactly
  // when the variant itself is (same TU, same architecture guard).
  const MicroKernelImplF* impl = impl_for_f32(active_impl()->variant);
  ensure(impl != nullptr, "gemm_accumulate_f32: active variant carries no "
                          "fp32 micro-kernel");
  const MicroKernelImplF ki = *impl;
  gemm_accumulate_body<float>(ki, ta, tb, alpha, a, b, c, filter);
}

ArenaStats arena_stats() noexcept {
  return {g_arena_allocations.load(std::memory_order_relaxed),
          g_arena_bytes.load(std::memory_order_relaxed),
          g_arena_high_water.load(std::memory_order_relaxed)};
}

ArenaStats arena_stats(int group) noexcept {
  const std::lock_guard<std::mutex> lock(group_mu());
  const auto& m = group_map();
  const auto it = m.find(group);
  if (it == m.end()) return {};
  return {it->second.allocations, it->second.bytes, it->second.high_water};
}

}  // namespace cacqr::lin::kernel
