/// \file kernel_avx2.cpp
/// \brief AVX2+FMA micro-kernel variant: the same 8 x 6 register tile as
///        the generic kernel, but with explicit intrinsics -- 12 ymm
///        accumulators, one two-vector column load of packed A and six
///        scalar broadcasts of packed B feeding 12 vfmadd231pd per k step.
///
/// This translation unit is compiled with -mavx2 -mfma regardless of the
/// global architecture flags (CMake sets per-file COMPILE_OPTIONS), so one
/// binary carries the variant even when built on/for a non-AVX2 baseline;
/// the dispatcher's cpuid probe decides whether it may run.  On non-x86
/// targets the accessor returns nullptr and the variant is absent.
///
/// Numerics: identical operation order to the generic 8 x 6 kernel.  When
/// the generic TU is itself compiled with FMA contraction available (e.g.
/// -march=native on an FMA host) the two variants produce bit-identical
/// tiles; on a non-FMA baseline build the generic kernel rounds each
/// multiply and add separately and the variants differ by O(eps) per
/// operation -- which is why cross-variant comparisons use a componentwise
/// relative tolerance (DESIGN.md section 2).

#include "kernel_impl.hpp"

#if defined(__x86_64__) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace cacqr::lin::kernel::detail {

namespace {

void micro_kernel_avx2(i64 kc, const double* __restrict ap,
                       const double* __restrict bp, double* __restrict acc) {
  __m256d c0a = _mm256_setzero_pd(), c0b = _mm256_setzero_pd();
  __m256d c1a = _mm256_setzero_pd(), c1b = _mm256_setzero_pd();
  __m256d c2a = _mm256_setzero_pd(), c2b = _mm256_setzero_pd();
  __m256d c3a = _mm256_setzero_pd(), c3b = _mm256_setzero_pd();
  __m256d c4a = _mm256_setzero_pd(), c4b = _mm256_setzero_pd();
  __m256d c5a = _mm256_setzero_pd(), c5b = _mm256_setzero_pd();
  for (i64 k = 0; k < kc; ++k) {
    const __m256d a0 = _mm256_loadu_pd(ap);
    const __m256d a1 = _mm256_loadu_pd(ap + 4);
    __m256d b = _mm256_broadcast_sd(bp + 0);
    c0a = _mm256_fmadd_pd(a0, b, c0a);
    c0b = _mm256_fmadd_pd(a1, b, c0b);
    b = _mm256_broadcast_sd(bp + 1);
    c1a = _mm256_fmadd_pd(a0, b, c1a);
    c1b = _mm256_fmadd_pd(a1, b, c1b);
    b = _mm256_broadcast_sd(bp + 2);
    c2a = _mm256_fmadd_pd(a0, b, c2a);
    c2b = _mm256_fmadd_pd(a1, b, c2b);
    b = _mm256_broadcast_sd(bp + 3);
    c3a = _mm256_fmadd_pd(a0, b, c3a);
    c3b = _mm256_fmadd_pd(a1, b, c3b);
    b = _mm256_broadcast_sd(bp + 4);
    c4a = _mm256_fmadd_pd(a0, b, c4a);
    c4b = _mm256_fmadd_pd(a1, b, c4b);
    b = _mm256_broadcast_sd(bp + 5);
    c5a = _mm256_fmadd_pd(a0, b, c5a);
    c5b = _mm256_fmadd_pd(a1, b, c5b);
    ap += 8;
    bp += 6;
  }
  _mm256_storeu_pd(acc + 0, c0a);
  _mm256_storeu_pd(acc + 4, c0b);
  _mm256_storeu_pd(acc + 8, c1a);
  _mm256_storeu_pd(acc + 12, c1b);
  _mm256_storeu_pd(acc + 16, c2a);
  _mm256_storeu_pd(acc + 20, c2b);
  _mm256_storeu_pd(acc + 24, c3a);
  _mm256_storeu_pd(acc + 28, c3b);
  _mm256_storeu_pd(acc + 32, c4a);
  _mm256_storeu_pd(acc + 36, c4b);
  _mm256_storeu_pd(acc + 40, c5a);
  _mm256_storeu_pd(acc + 44, c5b);
}

// Same tile shape and cache blocking as the generic kernel: 8 x 6 is
// register-optimal for 16 ymm (12 accumulators + 2 loads + 1 broadcast),
// and the working-set math of DESIGN.md section 7 is unchanged.
static_assert(MR == 8 && NR == 6,
              "avx2 kernel shares the generic 8x6 geometry");

constexpr MicroKernelImpl kImpl{Variant::avx2, MR, NR, MC, KC, NC,
                                &micro_kernel_avx2};

}  // namespace

const MicroKernelImpl* avx2_impl() noexcept { return &kImpl; }

}  // namespace cacqr::lin::kernel::detail

#else  // not an AVX2-capable compilation target

namespace cacqr::lin::kernel::detail {

const MicroKernelImpl* avx2_impl() noexcept { return nullptr; }

}  // namespace cacqr::lin::kernel::detail

#endif
