/// \file kernel_generic.cpp
/// \brief The always-available generic micro-kernel: GCC/Clang vector
///        extensions (8 x 6 in 12 named 256-bit accumulators) with a
///        portable scalar fallback.  This is the PR 1 kernel body,
///        unchanged -- CACQR_KERNEL=generic must stay bit-identical to
///        the pre-dispatch library -- now owned by its own translation
///        unit so it is compiled with the base flags only (no per-file
///        ISA additions).

#include "kernel_impl.hpp"

namespace cacqr::lin::kernel::detail {

namespace {

#if defined(__GNUC__) || defined(__clang__)

/// Four doubles in a SIMD lane (256-bit); aligned(8) keeps loads from the
/// packed panels unaligned-safe.
typedef double v4df __attribute__((vector_size(32), aligned(8)));

inline v4df load4(const double* p) {
  return *reinterpret_cast<const v4df*>(p);
}
inline void store4(double* p, v4df v) { *reinterpret_cast<v4df*>(p) = v; }

/// The register micro-kernel: acc(MR x NR) = Ap(MR x kc) * Bp(kc x NR)
/// over zero-padded packed panels.  The 8 x 6 block is held in 12 named
/// 256-bit accumulators so the compiler has no freedom to spill or
/// re-vectorize across the wrong axis; each k step is one two-vector
/// column load of A and six scalar broadcasts of B feeding 12 FMAs.
void micro_kernel(i64 kc, const double* __restrict ap,
                  const double* __restrict bp, double* __restrict acc) {
  static_assert(MR == 8 && NR == 6, "micro_kernel is specialized for 8x6");
  v4df c0a{}, c0b{}, c1a{}, c1b{}, c2a{}, c2b{};
  v4df c3a{}, c3b{}, c4a{}, c4b{}, c5a{}, c5b{};
  for (i64 k = 0; k < kc; ++k) {
    const v4df a0 = load4(ap);
    const v4df a1 = load4(ap + 4);
    c0a += a0 * bp[0];
    c0b += a1 * bp[0];
    c1a += a0 * bp[1];
    c1b += a1 * bp[1];
    c2a += a0 * bp[2];
    c2b += a1 * bp[2];
    c3a += a0 * bp[3];
    c3b += a1 * bp[3];
    c4a += a0 * bp[4];
    c4b += a1 * bp[4];
    c5a += a0 * bp[5];
    c5b += a1 * bp[5];
    ap += MR;
    bp += NR;
  }
  store4(acc + 0 * MR, c0a);
  store4(acc + 0 * MR + 4, c0b);
  store4(acc + 1 * MR, c1a);
  store4(acc + 1 * MR + 4, c1b);
  store4(acc + 2 * MR, c2a);
  store4(acc + 2 * MR + 4, c2b);
  store4(acc + 3 * MR, c3a);
  store4(acc + 3 * MR + 4, c3b);
  store4(acc + 4 * MR, c4a);
  store4(acc + 4 * MR + 4, c4b);
  store4(acc + 5 * MR, c5a);
  store4(acc + 5 * MR + 4, c5b);
}

#else

/// Portable fallback: fixed trip counts over a local accumulator array.
void micro_kernel(i64 kc, const double* __restrict ap,
                  const double* __restrict bp, double* __restrict acc) {
  for (i64 i = 0; i < MR * NR; ++i) acc[i] = 0.0;
  for (i64 k = 0; k < kc; ++k) {
    const double* __restrict av = ap + k * MR;
    const double* __restrict bv = bp + k * NR;
    for (i64 j = 0; j < NR; ++j) {
      const double bj = bv[j];
      double* __restrict accj = acc + j * MR;
      for (i64 i = 0; i < MR; ++i) accj[i] += av[i] * bj;
    }
  }
}

#endif

static_assert(MR <= kMaxMr && NR <= kMaxNr,
              "generic geometry exceeds the driver's accumulator scratch");

constexpr MicroKernelImpl kImpl{Variant::generic, MR, NR, MC, KC, NC,
                                &micro_kernel};

}  // namespace

const MicroKernelImpl* generic_impl() noexcept { return &kImpl; }

}  // namespace cacqr::lin::kernel::detail
