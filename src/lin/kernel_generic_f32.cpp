/// \file kernel_generic_f32.cpp
/// \brief The always-available generic fp32 micro-kernel: the fp32 twin of
///        kernel_generic.cpp -- 16 x 6 in 12 named 256-bit accumulators
///        (eight floats per lane where the fp64 kernel holds four doubles)
///        with a portable scalar fallback.  Compiled with the base flags
///        only, like its fp64 twin.

#include "kernel_impl.hpp"

namespace cacqr::lin::kernel::detail {

namespace {

#if defined(__GNUC__) || defined(__clang__)

/// Eight floats in a SIMD lane (256-bit); aligned(4) keeps loads from the
/// packed panels unaligned-safe.
typedef float v8sf __attribute__((vector_size(32), aligned(4)));

inline v8sf load8(const float* p) {
  return *reinterpret_cast<const v8sf*>(p);
}
inline void store8(float* p, v8sf v) { *reinterpret_cast<v8sf*>(p) = v; }

/// acc(MR32 x NR32) = Ap(MR32 x kc) * Bp(kc x NR32) over zero-padded
/// packed panels: each k step is one two-vector column load of A and six
/// scalar broadcasts of B feeding 12 FMAs, exactly the fp64 kernel's
/// schedule at twice the lane width.
void micro_kernel_f32(i64 kc, const float* __restrict ap,
                      const float* __restrict bp, float* __restrict acc) {
  static_assert(MR32 == 16 && NR32 == 6,
                "micro_kernel_f32 is specialized for 16x6");
  v8sf c0a{}, c0b{}, c1a{}, c1b{}, c2a{}, c2b{};
  v8sf c3a{}, c3b{}, c4a{}, c4b{}, c5a{}, c5b{};
  for (i64 k = 0; k < kc; ++k) {
    const v8sf a0 = load8(ap);
    const v8sf a1 = load8(ap + 8);
    c0a += a0 * bp[0];
    c0b += a1 * bp[0];
    c1a += a0 * bp[1];
    c1b += a1 * bp[1];
    c2a += a0 * bp[2];
    c2b += a1 * bp[2];
    c3a += a0 * bp[3];
    c3b += a1 * bp[3];
    c4a += a0 * bp[4];
    c4b += a1 * bp[4];
    c5a += a0 * bp[5];
    c5b += a1 * bp[5];
    ap += MR32;
    bp += NR32;
  }
  store8(acc + 0 * MR32, c0a);
  store8(acc + 0 * MR32 + 8, c0b);
  store8(acc + 1 * MR32, c1a);
  store8(acc + 1 * MR32 + 8, c1b);
  store8(acc + 2 * MR32, c2a);
  store8(acc + 2 * MR32 + 8, c2b);
  store8(acc + 3 * MR32, c3a);
  store8(acc + 3 * MR32 + 8, c3b);
  store8(acc + 4 * MR32, c4a);
  store8(acc + 4 * MR32 + 8, c4b);
  store8(acc + 5 * MR32, c5a);
  store8(acc + 5 * MR32 + 8, c5b);
}

#else

/// Portable fallback: fixed trip counts over a local accumulator array.
void micro_kernel_f32(i64 kc, const float* __restrict ap,
                      const float* __restrict bp, float* __restrict acc) {
  for (i64 i = 0; i < MR32 * NR32; ++i) acc[i] = 0.0f;
  for (i64 k = 0; k < kc; ++k) {
    const float* __restrict av = ap + k * MR32;
    const float* __restrict bv = bp + k * NR32;
    for (i64 j = 0; j < NR32; ++j) {
      const float bj = bv[j];
      float* __restrict accj = acc + j * MR32;
      for (i64 i = 0; i < MR32; ++i) accj[i] += av[i] * bj;
    }
  }
}

#endif

static_assert(MR32 <= kMaxMr32 && NR32 <= kMaxNr32,
              "generic f32 geometry exceeds the driver's accumulator scratch");

constexpr MicroKernelImplF kImpl{Variant::generic, MR32, NR32,
                                 MC32,             KC32, NC32,
                                 &micro_kernel_f32};

static_assert(kImpl.mc % kImpl.mr == 0 && kImpl.nc % kImpl.nr == 0,
              "block sizes must be multiples of the register tile");

}  // namespace

const MicroKernelImplF* generic_impl_f32() noexcept { return &kImpl; }

}  // namespace cacqr::lin::kernel::detail
