#include <cmath>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/qr.hpp"

namespace cacqr::lin {

Matrix gaussian(Rng& rng, i64 m, i64 n) {
  Matrix a(m, n);
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = 0; i < m; ++i) a(i, j) = rng.normal();
  }
  return a;
}

Matrix random_orthogonal(Rng& rng, i64 n) {
  return householder_qr(gaussian(rng, n, n)).q;
}

Matrix with_singular_values(Rng& rng, i64 m, i64 n,
                            const std::vector<double>& sigma) {
  ensure_dim(m >= n, "with_singular_values: need m >= n");
  ensure_dim(static_cast<i64>(sigma.size()) == n,
             "with_singular_values: need exactly n singular values");
  // U: m x n with orthonormal columns; V: n x n orthogonal.
  Matrix u = householder_qr(gaussian(rng, m, n)).q;
  Matrix v = random_orthogonal(rng, n);
  // A = U diag(sigma) V^T: scale U's columns, then multiply by V^T.
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = 0; i < m; ++i) u(i, j) *= sigma[static_cast<std::size_t>(j)];
  }
  Matrix a(m, n);
  gemm(Trans::N, Trans::T, 1.0, u, v, 0.0, a);
  return a;
}

Matrix with_cond(Rng& rng, i64 m, i64 n, double kappa) {
  ensure(kappa >= 1.0, "with_cond: kappa must be >= 1");
  std::vector<double> sigma(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    const double t = n == 1 ? 0.0 : static_cast<double>(i) / static_cast<double>(n - 1);
    sigma[static_cast<std::size_t>(i)] = std::pow(kappa, -t);
  }
  return with_singular_values(rng, m, n, sigma);
}

Matrix spd_with_cond(Rng& rng, i64 n, double kappa) {
  ensure(kappa >= 1.0, "spd_with_cond: kappa must be >= 1");
  Matrix v = random_orthogonal(rng, n);
  // A = V diag(lambda) V^T with geometrically spaced eigenvalues.
  Matrix scaled = v;
  for (i64 j = 0; j < n; ++j) {
    const double t = n == 1 ? 0.0 : static_cast<double>(j) / static_cast<double>(n - 1);
    const double lambda = std::pow(kappa, -t);
    for (i64 i = 0; i < n; ++i) scaled(i, j) *= lambda;
  }
  Matrix a(n, n);
  gemm(Trans::N, Trans::T, 1.0, scaled, v, 0.0, a);
  // Exact symmetrization (gemm rounding can leave ~eps asymmetry).
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = j + 1; i < n; ++i) {
      const double s = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = s;
      a(j, i) = s;
    }
  }
  return a;
}

double entry_hash(u64 seed, i64 i, i64 j) noexcept {
  // SplitMix64-style scramble of (seed, i, j) -> double in [-1, 1].
  u64 x = seed ^ (static_cast<u64>(i) * 0x9e3779b97f4a7c15ULL) ^
          (static_cast<u64>(j) * 0xbf58476d1ce4e5b9ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  const double unit = static_cast<double>(x >> 11) * 0x1.0p-53;  // [0,1)
  return 2.0 * unit - 1.0;
}

Matrix hashed_matrix(u64 seed, i64 m, i64 n) {
  Matrix a(m, n);
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = 0; i < m; ++i) a(i, j) = entry_hash(seed, i, j);
  }
  return a;
}

}  // namespace cacqr::lin
