/// \file kernel_avx512.cpp
/// \brief AVX-512F micro-kernel variant: a 16 x 14 register tile in 28 zmm
///        accumulators (two 8-wide column vectors x 14 broadcast columns),
///        leaving 4 of the 32 zmm registers for the A loads and the B
///        broadcast.  The wider tile more than doubles the flops per packed
///        byte versus 8 x 6, which is what the 512-bit FMA pipes need to
///        stay fed.
///
/// Compiled with -mavx512f via per-file COMPILE_OPTIONS (no global
/// -march dependency); the dispatcher's cpuid probe gates execution.  On
/// non-x86 targets the accessor returns nullptr.
///
/// Block geometry is re-derived for the wider tile (DESIGN.md section 7):
/// KC = 192 keeps the KC x 14 packed-B sliver (21 KB) L1-resident, MC =
/// 160 (multiple of 16) puts the MC x KC packed-A block at ~240 KB for
/// L2, NC = 3080 (multiple of 14) bounds the packed-B panel.

#include "kernel_impl.hpp"

#if defined(__x86_64__) && defined(__AVX512F__)

#include <immintrin.h>

namespace cacqr::lin::kernel::detail {

namespace {

inline constexpr i64 kMr = 16;
inline constexpr i64 kNr = 14;

void micro_kernel_avx512(i64 kc, const double* __restrict ap,
                         const double* __restrict bp,
                         double* __restrict acc) {
  __m512d c0a = _mm512_setzero_pd(), c0b = _mm512_setzero_pd();
  __m512d c1a = _mm512_setzero_pd(), c1b = _mm512_setzero_pd();
  __m512d c2a = _mm512_setzero_pd(), c2b = _mm512_setzero_pd();
  __m512d c3a = _mm512_setzero_pd(), c3b = _mm512_setzero_pd();
  __m512d c4a = _mm512_setzero_pd(), c4b = _mm512_setzero_pd();
  __m512d c5a = _mm512_setzero_pd(), c5b = _mm512_setzero_pd();
  __m512d c6a = _mm512_setzero_pd(), c6b = _mm512_setzero_pd();
  __m512d c7a = _mm512_setzero_pd(), c7b = _mm512_setzero_pd();
  __m512d c8a = _mm512_setzero_pd(), c8b = _mm512_setzero_pd();
  __m512d c9a = _mm512_setzero_pd(), c9b = _mm512_setzero_pd();
  __m512d caa = _mm512_setzero_pd(), cab = _mm512_setzero_pd();
  __m512d cba = _mm512_setzero_pd(), cbb = _mm512_setzero_pd();
  __m512d cca = _mm512_setzero_pd(), ccb = _mm512_setzero_pd();
  __m512d cda = _mm512_setzero_pd(), cdb = _mm512_setzero_pd();
  for (i64 k = 0; k < kc; ++k) {
    const __m512d a0 = _mm512_loadu_pd(ap);
    const __m512d a1 = _mm512_loadu_pd(ap + 8);
    __m512d b = _mm512_set1_pd(bp[0]);
    c0a = _mm512_fmadd_pd(a0, b, c0a);
    c0b = _mm512_fmadd_pd(a1, b, c0b);
    b = _mm512_set1_pd(bp[1]);
    c1a = _mm512_fmadd_pd(a0, b, c1a);
    c1b = _mm512_fmadd_pd(a1, b, c1b);
    b = _mm512_set1_pd(bp[2]);
    c2a = _mm512_fmadd_pd(a0, b, c2a);
    c2b = _mm512_fmadd_pd(a1, b, c2b);
    b = _mm512_set1_pd(bp[3]);
    c3a = _mm512_fmadd_pd(a0, b, c3a);
    c3b = _mm512_fmadd_pd(a1, b, c3b);
    b = _mm512_set1_pd(bp[4]);
    c4a = _mm512_fmadd_pd(a0, b, c4a);
    c4b = _mm512_fmadd_pd(a1, b, c4b);
    b = _mm512_set1_pd(bp[5]);
    c5a = _mm512_fmadd_pd(a0, b, c5a);
    c5b = _mm512_fmadd_pd(a1, b, c5b);
    b = _mm512_set1_pd(bp[6]);
    c6a = _mm512_fmadd_pd(a0, b, c6a);
    c6b = _mm512_fmadd_pd(a1, b, c6b);
    b = _mm512_set1_pd(bp[7]);
    c7a = _mm512_fmadd_pd(a0, b, c7a);
    c7b = _mm512_fmadd_pd(a1, b, c7b);
    b = _mm512_set1_pd(bp[8]);
    c8a = _mm512_fmadd_pd(a0, b, c8a);
    c8b = _mm512_fmadd_pd(a1, b, c8b);
    b = _mm512_set1_pd(bp[9]);
    c9a = _mm512_fmadd_pd(a0, b, c9a);
    c9b = _mm512_fmadd_pd(a1, b, c9b);
    b = _mm512_set1_pd(bp[10]);
    caa = _mm512_fmadd_pd(a0, b, caa);
    cab = _mm512_fmadd_pd(a1, b, cab);
    b = _mm512_set1_pd(bp[11]);
    cba = _mm512_fmadd_pd(a0, b, cba);
    cbb = _mm512_fmadd_pd(a1, b, cbb);
    b = _mm512_set1_pd(bp[12]);
    cca = _mm512_fmadd_pd(a0, b, cca);
    ccb = _mm512_fmadd_pd(a1, b, ccb);
    b = _mm512_set1_pd(bp[13]);
    cda = _mm512_fmadd_pd(a0, b, cda);
    cdb = _mm512_fmadd_pd(a1, b, cdb);
    ap += kMr;
    bp += kNr;
  }
  _mm512_storeu_pd(acc + 0 * kMr, c0a);
  _mm512_storeu_pd(acc + 0 * kMr + 8, c0b);
  _mm512_storeu_pd(acc + 1 * kMr, c1a);
  _mm512_storeu_pd(acc + 1 * kMr + 8, c1b);
  _mm512_storeu_pd(acc + 2 * kMr, c2a);
  _mm512_storeu_pd(acc + 2 * kMr + 8, c2b);
  _mm512_storeu_pd(acc + 3 * kMr, c3a);
  _mm512_storeu_pd(acc + 3 * kMr + 8, c3b);
  _mm512_storeu_pd(acc + 4 * kMr, c4a);
  _mm512_storeu_pd(acc + 4 * kMr + 8, c4b);
  _mm512_storeu_pd(acc + 5 * kMr, c5a);
  _mm512_storeu_pd(acc + 5 * kMr + 8, c5b);
  _mm512_storeu_pd(acc + 6 * kMr, c6a);
  _mm512_storeu_pd(acc + 6 * kMr + 8, c6b);
  _mm512_storeu_pd(acc + 7 * kMr, c7a);
  _mm512_storeu_pd(acc + 7 * kMr + 8, c7b);
  _mm512_storeu_pd(acc + 8 * kMr, c8a);
  _mm512_storeu_pd(acc + 8 * kMr + 8, c8b);
  _mm512_storeu_pd(acc + 9 * kMr, c9a);
  _mm512_storeu_pd(acc + 9 * kMr + 8, c9b);
  _mm512_storeu_pd(acc + 10 * kMr, caa);
  _mm512_storeu_pd(acc + 10 * kMr + 8, cab);
  _mm512_storeu_pd(acc + 11 * kMr, cba);
  _mm512_storeu_pd(acc + 11 * kMr + 8, cbb);
  _mm512_storeu_pd(acc + 12 * kMr, cca);
  _mm512_storeu_pd(acc + 12 * kMr + 8, ccb);
  _mm512_storeu_pd(acc + 13 * kMr, cda);
  _mm512_storeu_pd(acc + 13 * kMr + 8, cdb);
}

static_assert(kMr <= kMaxMr && kNr <= kMaxNr,
              "avx512 geometry exceeds the driver's accumulator scratch");

constexpr MicroKernelImpl kImpl{Variant::avx512, kMr,     kNr, 160, 192,
                                3080,            &micro_kernel_avx512};

static_assert(kImpl.mc % kImpl.mr == 0 && kImpl.nc % kImpl.nr == 0,
              "block sizes must be multiples of the register tile");

}  // namespace

const MicroKernelImpl* avx512_impl() noexcept { return &kImpl; }

}  // namespace cacqr::lin::kernel::detail

#else  // not an AVX-512-capable compilation target

namespace cacqr::lin::kernel::detail {

const MicroKernelImpl* avx512_impl() noexcept { return nullptr; }

}  // namespace cacqr::lin::kernel::detail

#endif
