/// \file kernel_neon_f32.cpp
/// \brief AArch64 NEON (ASIMD) fp32 micro-kernel variant: the fp32 twin of
///        kernel_neon.cpp.  The 16 x 6 tile held in 24 float32x4_t
///        accumulators, one four-vector column load of packed A and six
///        lane-broadcast FMAs of packed B per k step -- the fp64 kernel's
///        schedule with each q register carrying four floats instead of
///        two doubles.  Executable wherever it compiles, like the fp64
///        twin.

#include "kernel_impl.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace cacqr::lin::kernel::detail {

namespace {

void micro_kernel_neon_f32(i64 kc, const float* __restrict ap,
                           const float* __restrict bp,
                           float* __restrict acc) {
  static_assert(MR32 == 16 && NR32 == 6,
                "neon f32 kernel shares the 16x6 geometry");
  float32x4_t c0[4] = {vdupq_n_f32(0.0f), vdupq_n_f32(0.0f),
                       vdupq_n_f32(0.0f), vdupq_n_f32(0.0f)};
  float32x4_t c1[4] = {vdupq_n_f32(0.0f), vdupq_n_f32(0.0f),
                       vdupq_n_f32(0.0f), vdupq_n_f32(0.0f)};
  float32x4_t c2[4] = {vdupq_n_f32(0.0f), vdupq_n_f32(0.0f),
                       vdupq_n_f32(0.0f), vdupq_n_f32(0.0f)};
  float32x4_t c3[4] = {vdupq_n_f32(0.0f), vdupq_n_f32(0.0f),
                       vdupq_n_f32(0.0f), vdupq_n_f32(0.0f)};
  float32x4_t c4[4] = {vdupq_n_f32(0.0f), vdupq_n_f32(0.0f),
                       vdupq_n_f32(0.0f), vdupq_n_f32(0.0f)};
  float32x4_t c5[4] = {vdupq_n_f32(0.0f), vdupq_n_f32(0.0f),
                       vdupq_n_f32(0.0f), vdupq_n_f32(0.0f)};
  for (i64 k = 0; k < kc; ++k) {
    const float32x4_t a0 = vld1q_f32(ap);
    const float32x4_t a1 = vld1q_f32(ap + 4);
    const float32x4_t a2 = vld1q_f32(ap + 8);
    const float32x4_t a3 = vld1q_f32(ap + 12);
    float b = bp[0];
    c0[0] = vfmaq_n_f32(c0[0], a0, b);
    c0[1] = vfmaq_n_f32(c0[1], a1, b);
    c0[2] = vfmaq_n_f32(c0[2], a2, b);
    c0[3] = vfmaq_n_f32(c0[3], a3, b);
    b = bp[1];
    c1[0] = vfmaq_n_f32(c1[0], a0, b);
    c1[1] = vfmaq_n_f32(c1[1], a1, b);
    c1[2] = vfmaq_n_f32(c1[2], a2, b);
    c1[3] = vfmaq_n_f32(c1[3], a3, b);
    b = bp[2];
    c2[0] = vfmaq_n_f32(c2[0], a0, b);
    c2[1] = vfmaq_n_f32(c2[1], a1, b);
    c2[2] = vfmaq_n_f32(c2[2], a2, b);
    c2[3] = vfmaq_n_f32(c2[3], a3, b);
    b = bp[3];
    c3[0] = vfmaq_n_f32(c3[0], a0, b);
    c3[1] = vfmaq_n_f32(c3[1], a1, b);
    c3[2] = vfmaq_n_f32(c3[2], a2, b);
    c3[3] = vfmaq_n_f32(c3[3], a3, b);
    b = bp[4];
    c4[0] = vfmaq_n_f32(c4[0], a0, b);
    c4[1] = vfmaq_n_f32(c4[1], a1, b);
    c4[2] = vfmaq_n_f32(c4[2], a2, b);
    c4[3] = vfmaq_n_f32(c4[3], a3, b);
    b = bp[5];
    c5[0] = vfmaq_n_f32(c5[0], a0, b);
    c5[1] = vfmaq_n_f32(c5[1], a1, b);
    c5[2] = vfmaq_n_f32(c5[2], a2, b);
    c5[3] = vfmaq_n_f32(c5[3], a3, b);
    ap += MR32;
    bp += NR32;
  }
  for (i64 h = 0; h < 4; ++h) {
    vst1q_f32(acc + 0 * MR32 + 4 * h, c0[h]);
    vst1q_f32(acc + 1 * MR32 + 4 * h, c1[h]);
    vst1q_f32(acc + 2 * MR32 + 4 * h, c2[h]);
    vst1q_f32(acc + 3 * MR32 + 4 * h, c3[h]);
    vst1q_f32(acc + 4 * MR32 + 4 * h, c4[h]);
    vst1q_f32(acc + 5 * MR32 + 4 * h, c5[h]);
  }
}

constexpr MicroKernelImplF kImpl{Variant::neon, MR32, NR32, MC32, KC32,
                                 NC32,          &micro_kernel_neon_f32};

}  // namespace

const MicroKernelImplF* neon_impl_f32() noexcept { return &kImpl; }

}  // namespace cacqr::lin::kernel::detail

#else  // not an AArch64 compilation target

namespace cacqr::lin::kernel::detail {

const MicroKernelImplF* neon_impl_f32() noexcept { return nullptr; }

}  // namespace cacqr::lin::kernel::detail

#endif
