/// \file kernel_neon.cpp
/// \brief AArch64 NEON (ASIMD) micro-kernel variant: the 8 x 6 tile held in
///        24 float64x2_t accumulators, one four-vector column load of packed
///        A and six lane-broadcast FMAs of packed B per k step.  ASIMD is
///        part of the AArch64 baseline, so no per-file ISA flags and no
///        runtime feature probe are needed -- the variant is executable
///        wherever it compiles.
///
/// Cache geometry is shared with the generic kernel: the tile shape is the
/// same and the L1/L2 working-set math of DESIGN.md section 7 carries over.

#include "kernel_impl.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace cacqr::lin::kernel::detail {

namespace {

void micro_kernel_neon(i64 kc, const double* __restrict ap,
                       const double* __restrict bp, double* __restrict acc) {
  static_assert(MR == 8 && NR == 6, "neon kernel shares the 8x6 geometry");
  float64x2_t c0[4] = {vdupq_n_f64(0.0), vdupq_n_f64(0.0), vdupq_n_f64(0.0),
                       vdupq_n_f64(0.0)};
  float64x2_t c1[4] = {vdupq_n_f64(0.0), vdupq_n_f64(0.0), vdupq_n_f64(0.0),
                       vdupq_n_f64(0.0)};
  float64x2_t c2[4] = {vdupq_n_f64(0.0), vdupq_n_f64(0.0), vdupq_n_f64(0.0),
                       vdupq_n_f64(0.0)};
  float64x2_t c3[4] = {vdupq_n_f64(0.0), vdupq_n_f64(0.0), vdupq_n_f64(0.0),
                       vdupq_n_f64(0.0)};
  float64x2_t c4[4] = {vdupq_n_f64(0.0), vdupq_n_f64(0.0), vdupq_n_f64(0.0),
                       vdupq_n_f64(0.0)};
  float64x2_t c5[4] = {vdupq_n_f64(0.0), vdupq_n_f64(0.0), vdupq_n_f64(0.0),
                       vdupq_n_f64(0.0)};
  for (i64 k = 0; k < kc; ++k) {
    const float64x2_t a0 = vld1q_f64(ap);
    const float64x2_t a1 = vld1q_f64(ap + 2);
    const float64x2_t a2 = vld1q_f64(ap + 4);
    const float64x2_t a3 = vld1q_f64(ap + 6);
    double b = bp[0];
    c0[0] = vfmaq_n_f64(c0[0], a0, b);
    c0[1] = vfmaq_n_f64(c0[1], a1, b);
    c0[2] = vfmaq_n_f64(c0[2], a2, b);
    c0[3] = vfmaq_n_f64(c0[3], a3, b);
    b = bp[1];
    c1[0] = vfmaq_n_f64(c1[0], a0, b);
    c1[1] = vfmaq_n_f64(c1[1], a1, b);
    c1[2] = vfmaq_n_f64(c1[2], a2, b);
    c1[3] = vfmaq_n_f64(c1[3], a3, b);
    b = bp[2];
    c2[0] = vfmaq_n_f64(c2[0], a0, b);
    c2[1] = vfmaq_n_f64(c2[1], a1, b);
    c2[2] = vfmaq_n_f64(c2[2], a2, b);
    c2[3] = vfmaq_n_f64(c2[3], a3, b);
    b = bp[3];
    c3[0] = vfmaq_n_f64(c3[0], a0, b);
    c3[1] = vfmaq_n_f64(c3[1], a1, b);
    c3[2] = vfmaq_n_f64(c3[2], a2, b);
    c3[3] = vfmaq_n_f64(c3[3], a3, b);
    b = bp[4];
    c4[0] = vfmaq_n_f64(c4[0], a0, b);
    c4[1] = vfmaq_n_f64(c4[1], a1, b);
    c4[2] = vfmaq_n_f64(c4[2], a2, b);
    c4[3] = vfmaq_n_f64(c4[3], a3, b);
    b = bp[5];
    c5[0] = vfmaq_n_f64(c5[0], a0, b);
    c5[1] = vfmaq_n_f64(c5[1], a1, b);
    c5[2] = vfmaq_n_f64(c5[2], a2, b);
    c5[3] = vfmaq_n_f64(c5[3], a3, b);
    ap += MR;
    bp += NR;
  }
  for (i64 h = 0; h < 4; ++h) {
    vst1q_f64(acc + 0 * MR + 2 * h, c0[h]);
    vst1q_f64(acc + 1 * MR + 2 * h, c1[h]);
    vst1q_f64(acc + 2 * MR + 2 * h, c2[h]);
    vst1q_f64(acc + 3 * MR + 2 * h, c3[h]);
    vst1q_f64(acc + 4 * MR + 2 * h, c4[h]);
    vst1q_f64(acc + 5 * MR + 2 * h, c5[h]);
  }
}

constexpr MicroKernelImpl kImpl{Variant::neon, MR, NR, MC, KC, NC,
                                &micro_kernel_neon};

}  // namespace

const MicroKernelImpl* neon_impl() noexcept { return &kImpl; }

}  // namespace cacqr::lin::kernel::detail

#else  // not an AArch64 compilation target

namespace cacqr::lin::kernel::detail {

const MicroKernelImpl* neon_impl() noexcept { return nullptr; }

}  // namespace cacqr::lin::kernel::detail

#endif
