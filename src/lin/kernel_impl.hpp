#pragma once
/// \file kernel_impl.hpp
/// \brief Internal contract between the packed driver (kernel.cpp) and the
///        micro-kernel variant translation units.
///
/// Each variant TU (kernel_generic.cpp, kernel_avx2.cpp, kernel_avx512.cpp,
/// kernel_neon.cpp) is compiled with per-file ISA flags and exports one
/// MicroKernelImpl descriptor: its register-tile geometry, the cache block
/// sizes tuned for it, and the tile function itself.  On architectures
/// where a variant cannot be compiled, its accessor returns nullptr and the
/// dispatcher treats the variant as absent.  Only the tile call is an
/// indirect jump; everything above the MR x NR tile (packing, blocking,
/// threading, arenas) lives once in kernel.cpp and is parameterized by this
/// descriptor.

#include "cacqr/lin/kernel.hpp"

namespace cacqr::lin::kernel::detail {

/// acc(mr x nr, column-major with leading dimension mr) = Ap(mr x kc) *
/// Bp(kc x nr) over zero-padded packed panels.  The function OVERWRITES
/// acc (no accumulation across calls); the driver clip-writes alpha * acc
/// into C.
using TileFn = void (*)(i64 kc, const double* __restrict ap,
                        const double* __restrict bp, double* __restrict acc);

/// Ceilings for the per-call accumulator scratch in the driver; every
/// variant's geometry must fit (checked by static_asserts in the variant
/// TUs).
inline constexpr i64 kMaxMr = 16;
inline constexpr i64 kMaxNr = 14;

struct MicroKernelImpl {
  Variant variant = Variant::generic;
  i64 mr = 0;  ///< register-tile rows (packing panel height)
  i64 nr = 0;  ///< register-tile columns (packing panel width)
  i64 mc = 0;  ///< L2 block rows, multiple of mr
  i64 kc = 0;  ///< L1/L2 contraction block
  i64 nc = 0;  ///< L3 panel columns, multiple of nr
  TileFn tile = nullptr;
};

/// Variant descriptors; nullptr when the TU was compiled for an
/// architecture that cannot carry the variant.  generic_impl() is never
/// nullptr.  CPU *capability* is the dispatcher's problem, not these
/// accessors': a non-null descriptor only means the code exists in the
/// binary.
[[nodiscard]] const MicroKernelImpl* generic_impl() noexcept;
[[nodiscard]] const MicroKernelImpl* avx2_impl() noexcept;
[[nodiscard]] const MicroKernelImpl* avx512_impl() noexcept;
[[nodiscard]] const MicroKernelImpl* neon_impl() noexcept;

// ------------------------------------------------------------ fp32 lane
//
// Each variant TU has an fp32 twin (kernel_*_f32.cpp) compiled with the
// same per-file ISA flags and the same architecture guard, exporting the
// same descriptor shape at twice the SIMD lane width.  The f32 descriptor
// for a variant is present exactly when the f64 one is, so a single
// runtime probe/dispatch decision covers both precisions.

/// fp32 tile contract; identical semantics to TileFn at float width.
using TileFnF = void (*)(i64 kc, const float* __restrict ap,
                         const float* __restrict bp, float* __restrict acc);

/// Accumulator-scratch ceilings for the fp32 driver instantiation
/// (avx512 f32 runs a 32 x 14 tile).
inline constexpr i64 kMaxMr32 = 32;
inline constexpr i64 kMaxNr32 = 14;

struct MicroKernelImplF {
  Variant variant = Variant::generic;
  i64 mr = 0;
  i64 nr = 0;
  i64 mc = 0;
  i64 kc = 0;
  i64 nc = 0;
  TileFnF tile = nullptr;
};

[[nodiscard]] const MicroKernelImplF* generic_impl_f32() noexcept;
[[nodiscard]] const MicroKernelImplF* avx2_impl_f32() noexcept;
[[nodiscard]] const MicroKernelImplF* avx512_impl_f32() noexcept;
[[nodiscard]] const MicroKernelImplF* neon_impl_f32() noexcept;

}  // namespace cacqr::lin::kernel::detail
