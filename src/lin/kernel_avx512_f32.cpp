/// \file kernel_avx512_f32.cpp
/// \brief AVX-512F fp32 micro-kernel variant: the fp32 twin of
///        kernel_avx512.cpp.  A 32 x 14 register tile in 28 zmm
///        accumulators (two 16-wide column vectors x 14 broadcast
///        columns), the 16 x 14-doubles tile at fp32 lane width.
///
/// Compiled with -mavx512f via the same per-file COMPILE_OPTIONS as the
/// fp64 twin; the same cpuid probe gates execution.  Block geometry keeps
/// the fp64 variant's byte budgets: KC = 192 holds the KC x 14 packed-B
/// sliver (10.5 KB of floats) L1-resident, MC = 320 (multiple of 32) puts
/// the MC x KC packed-A block at ~240 KB for L2, NC = 6160 (multiple of
/// 14) bounds the packed-B panel at the fp64 variant's byte size.

#include "kernel_impl.hpp"

#if defined(__x86_64__) && defined(__AVX512F__)

#include <immintrin.h>

namespace cacqr::lin::kernel::detail {

namespace {

inline constexpr i64 kMr = 32;
inline constexpr i64 kNr = 14;

void micro_kernel_avx512_f32(i64 kc, const float* __restrict ap,
                             const float* __restrict bp,
                             float* __restrict acc) {
  __m512 c0a = _mm512_setzero_ps(), c0b = _mm512_setzero_ps();
  __m512 c1a = _mm512_setzero_ps(), c1b = _mm512_setzero_ps();
  __m512 c2a = _mm512_setzero_ps(), c2b = _mm512_setzero_ps();
  __m512 c3a = _mm512_setzero_ps(), c3b = _mm512_setzero_ps();
  __m512 c4a = _mm512_setzero_ps(), c4b = _mm512_setzero_ps();
  __m512 c5a = _mm512_setzero_ps(), c5b = _mm512_setzero_ps();
  __m512 c6a = _mm512_setzero_ps(), c6b = _mm512_setzero_ps();
  __m512 c7a = _mm512_setzero_ps(), c7b = _mm512_setzero_ps();
  __m512 c8a = _mm512_setzero_ps(), c8b = _mm512_setzero_ps();
  __m512 c9a = _mm512_setzero_ps(), c9b = _mm512_setzero_ps();
  __m512 caa = _mm512_setzero_ps(), cab = _mm512_setzero_ps();
  __m512 cba = _mm512_setzero_ps(), cbb = _mm512_setzero_ps();
  __m512 cca = _mm512_setzero_ps(), ccb = _mm512_setzero_ps();
  __m512 cda = _mm512_setzero_ps(), cdb = _mm512_setzero_ps();
  for (i64 k = 0; k < kc; ++k) {
    const __m512 a0 = _mm512_loadu_ps(ap);
    const __m512 a1 = _mm512_loadu_ps(ap + 16);
    __m512 b = _mm512_set1_ps(bp[0]);
    c0a = _mm512_fmadd_ps(a0, b, c0a);
    c0b = _mm512_fmadd_ps(a1, b, c0b);
    b = _mm512_set1_ps(bp[1]);
    c1a = _mm512_fmadd_ps(a0, b, c1a);
    c1b = _mm512_fmadd_ps(a1, b, c1b);
    b = _mm512_set1_ps(bp[2]);
    c2a = _mm512_fmadd_ps(a0, b, c2a);
    c2b = _mm512_fmadd_ps(a1, b, c2b);
    b = _mm512_set1_ps(bp[3]);
    c3a = _mm512_fmadd_ps(a0, b, c3a);
    c3b = _mm512_fmadd_ps(a1, b, c3b);
    b = _mm512_set1_ps(bp[4]);
    c4a = _mm512_fmadd_ps(a0, b, c4a);
    c4b = _mm512_fmadd_ps(a1, b, c4b);
    b = _mm512_set1_ps(bp[5]);
    c5a = _mm512_fmadd_ps(a0, b, c5a);
    c5b = _mm512_fmadd_ps(a1, b, c5b);
    b = _mm512_set1_ps(bp[6]);
    c6a = _mm512_fmadd_ps(a0, b, c6a);
    c6b = _mm512_fmadd_ps(a1, b, c6b);
    b = _mm512_set1_ps(bp[7]);
    c7a = _mm512_fmadd_ps(a0, b, c7a);
    c7b = _mm512_fmadd_ps(a1, b, c7b);
    b = _mm512_set1_ps(bp[8]);
    c8a = _mm512_fmadd_ps(a0, b, c8a);
    c8b = _mm512_fmadd_ps(a1, b, c8b);
    b = _mm512_set1_ps(bp[9]);
    c9a = _mm512_fmadd_ps(a0, b, c9a);
    c9b = _mm512_fmadd_ps(a1, b, c9b);
    b = _mm512_set1_ps(bp[10]);
    caa = _mm512_fmadd_ps(a0, b, caa);
    cab = _mm512_fmadd_ps(a1, b, cab);
    b = _mm512_set1_ps(bp[11]);
    cba = _mm512_fmadd_ps(a0, b, cba);
    cbb = _mm512_fmadd_ps(a1, b, cbb);
    b = _mm512_set1_ps(bp[12]);
    cca = _mm512_fmadd_ps(a0, b, cca);
    ccb = _mm512_fmadd_ps(a1, b, ccb);
    b = _mm512_set1_ps(bp[13]);
    cda = _mm512_fmadd_ps(a0, b, cda);
    cdb = _mm512_fmadd_ps(a1, b, cdb);
    ap += kMr;
    bp += kNr;
  }
  _mm512_storeu_ps(acc + 0 * kMr, c0a);
  _mm512_storeu_ps(acc + 0 * kMr + 16, c0b);
  _mm512_storeu_ps(acc + 1 * kMr, c1a);
  _mm512_storeu_ps(acc + 1 * kMr + 16, c1b);
  _mm512_storeu_ps(acc + 2 * kMr, c2a);
  _mm512_storeu_ps(acc + 2 * kMr + 16, c2b);
  _mm512_storeu_ps(acc + 3 * kMr, c3a);
  _mm512_storeu_ps(acc + 3 * kMr + 16, c3b);
  _mm512_storeu_ps(acc + 4 * kMr, c4a);
  _mm512_storeu_ps(acc + 4 * kMr + 16, c4b);
  _mm512_storeu_ps(acc + 5 * kMr, c5a);
  _mm512_storeu_ps(acc + 5 * kMr + 16, c5b);
  _mm512_storeu_ps(acc + 6 * kMr, c6a);
  _mm512_storeu_ps(acc + 6 * kMr + 16, c6b);
  _mm512_storeu_ps(acc + 7 * kMr, c7a);
  _mm512_storeu_ps(acc + 7 * kMr + 16, c7b);
  _mm512_storeu_ps(acc + 8 * kMr, c8a);
  _mm512_storeu_ps(acc + 8 * kMr + 16, c8b);
  _mm512_storeu_ps(acc + 9 * kMr, c9a);
  _mm512_storeu_ps(acc + 9 * kMr + 16, c9b);
  _mm512_storeu_ps(acc + 10 * kMr, caa);
  _mm512_storeu_ps(acc + 10 * kMr + 16, cab);
  _mm512_storeu_ps(acc + 11 * kMr, cba);
  _mm512_storeu_ps(acc + 11 * kMr + 16, cbb);
  _mm512_storeu_ps(acc + 12 * kMr, cca);
  _mm512_storeu_ps(acc + 12 * kMr + 16, ccb);
  _mm512_storeu_ps(acc + 13 * kMr, cda);
  _mm512_storeu_ps(acc + 13 * kMr + 16, cdb);
}

static_assert(kMr <= kMaxMr32 && kNr <= kMaxNr32,
              "avx512 f32 geometry exceeds the driver's accumulator scratch");

constexpr MicroKernelImplF kImpl{Variant::avx512, kMr,  kNr, 320, 192,
                                 6160,            &micro_kernel_avx512_f32};

static_assert(kImpl.mc % kImpl.mr == 0 && kImpl.nc % kImpl.nr == 0,
              "block sizes must be multiples of the register tile");

}  // namespace

const MicroKernelImplF* avx512_impl_f32() noexcept { return &kImpl; }

}  // namespace cacqr::lin::kernel::detail

#else  // not an AVX-512-capable compilation target

namespace cacqr::lin::kernel::detail {

const MicroKernelImplF* avx512_impl_f32() noexcept { return nullptr; }

}  // namespace cacqr::lin::kernel::detail

#endif
