#include "cacqr/lin/parallel.hpp"

#include "cacqr/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#ifdef __linux__
#include <sched.h>
#endif

namespace cacqr::lin::parallel {

namespace detail {

namespace {

/// Monotonic pool id for base-CPU assignment under CACQR_AFFINITY: each
/// rank's pool (owner + workers) gets a distinct, deterministic slot.
std::atomic<int> pool_seq{0};

/// Best-effort single-CPU pin of the calling thread.  Linux-only; a
/// silent no-op elsewhere and on sched_setaffinity failure (e.g. cgroup
/// masks) -- affinity is a performance hint, never a correctness
/// dependency.
void pin_to_cpu(int cpu) noexcept {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  (void)sched_setaffinity(0, sizeof set, &set);
#else
  (void)cpu;
#endif
}

}  // namespace

/// One calling thread's persistent worker pool.  Workers park on `cv_start`
/// between regions and are woken by an epoch bump; the caller participates
/// in every region as tid 0 and waits on `cv_done` for the join.  All
/// region hand-off state (`task`, `active`, `running`, `error`) is guarded
/// by `mu`, which also provides the happens-before edges TSAN needs
/// between region bodies and the caller's surrounding code.
struct Pool {
  std::mutex mu;
  std::condition_variable cv_start;
  std::condition_variable cv_done;
  u64 epoch = 0;
  int active = 0;  ///< team size of the in-flight region (0 between regions)
  const std::function<void(Team&)>* task = nullptr;
  int running = 0;  ///< workers still executing the in-flight region
  std::exception_ptr error;
  bool shutdown = false;
  int group = 0;  ///< owner's task group, adopted by workers per region
  int trace_rank = -1;  ///< owner's trace rank, adopted like `group`

  // Centralized sense-reversing barrier for the in-flight team.
  std::mutex barrier_mu;
  std::condition_variable barrier_cv;
  int barrier_waiting = 0;
  u64 barrier_gen = 0;

  std::vector<std::thread> workers;

  // CACQR_AFFINITY state: the pool's base slot, the CPU span reserved
  // for its team (the largest team seen so far -- regions can outgrow
  // the creation-time budget, e.g. a calibration sweep), and an epoch
  // that tells parked workers to re-pin after the span grew (a stale
  // span would collapse `spread` strides onto few CPUs).
  int pin_base = -1;  ///< -1: affinity off, never pin
  int pin_reserve = 1;
  u64 pin_epoch = 0;

  Pool() {
    if (affinity_mode() == Affinity::off) return;
    const int ncpu = hardware_threads();
    // The pool is created lazily on the owner's first region, after the
    // rank runtime has assigned its per-rank budget -- so the budget is
    // the initial team width to reserve CPUs for.
    pin_reserve = std::clamp(thread_budget(), 1, ncpu);
    pin_base = pool_seq.fetch_add(1, std::memory_order_relaxed);
    pin_thread(0);  // the owner (tid 0) runs every region's first chunk
  }

  /// Grows the reserved span to `nthreads` (call with `mu` held, before
  /// waking the team); bumps the epoch so every member re-pins.
  void update_reserve(int nthreads) noexcept {
    if (pin_base < 0) return;
    const int want = std::min(nthreads, hardware_threads());
    if (want <= pin_reserve) return;
    pin_reserve = want;
    ++pin_epoch;
    pin_thread(0);
  }

  /// Pins team member `tid` per the process-wide policy: compact packs
  /// the team onto consecutive CPUs (pools occupy disjoint blocks);
  /// spread strides members ncpu/team apart (distant cores/sockets),
  /// with pools offset by one CPU so they interleave.  `reserve` is
  /// passed explicitly so workers can use a value copied under `mu`
  /// (pin_base is immutable after construction, safe to read anywhere).
  void pin_with(int tid, int reserve) noexcept {
    if (pin_base < 0) return;
    const int ncpu = hardware_threads();
    const int cpu = affinity_mode() == Affinity::compact
                        ? (pin_base * reserve + tid) % ncpu
                        : (pin_base + tid * std::max(1, ncpu / reserve)) %
                              ncpu;
    pin_to_cpu(cpu);
  }
  /// Owner-thread form (the owner is the only pin_reserve mutator).
  void pin_thread(int tid) noexcept { pin_with(tid, pin_reserve); }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu);
      shutdown = true;
    }
    cv_start.notify_all();
    for (auto& w : workers) w.join();
  }

  void ensure_workers(int count) {
    while (static_cast<int>(workers.size()) < count) {
      const int tid = static_cast<int>(workers.size()) + 1;
      // Snapshot the affinity span on the owner (its own sequential
      // reads): the worker must not touch pin_reserve/pin_epoch
      // unlocked, the owner may already be mutating them for a later
      // region by the time the worker starts running.
      workers.emplace_back([this, tid, reserve = pin_reserve] {
        worker_main(tid, reserve);
      });
    }
  }

  void worker_main(int tid, int spawn_reserve);
  void run_region(int nthreads, const std::function<void(Team&)>& body);
};

namespace {

/// 0 = not yet initialized from the environment.
thread_local int tls_budget = 0;

/// Depth > 0 while the calling thread is inside a region body (as caller
/// or worker): nested region requests run inline instead of spawning.
thread_local int tls_region_depth = 0;

/// Per-thread cooperative progress callback (see parallel.hpp).  Workers
/// start with the default {nullptr, nullptr}, so only the installing
/// (rank) thread ever polls it.
thread_local ProgressHook tls_progress_hook = {};

/// Per-thread task group (see parallel.hpp).  Unlike the progress hook,
/// workers DO inherit the owner's group -- per region, under the pool
/// mutex -- so arena growth on a worker is charged to the owner driving
/// it.
thread_local int tls_task_group = 0;

struct DepthGuard {
  DepthGuard() noexcept { ++tls_region_depth; }
  ~DepthGuard() { --tls_region_depth; }
};

thread_local std::unique_ptr<Pool> tls_pool;

Pool& local_pool() {
  if (!tls_pool) tls_pool = std::make_unique<Pool>();
  return *tls_pool;
}

}  // namespace

void Pool::worker_main(int tid, int spawn_reserve) {
  pin_with(tid, spawn_reserve);  // owner-snapshotted span, race-free
  tls_region_depth = 1;  // regions never nest: worker-issued regions inline
  u64 seen = 0;
  u64 pin_seen = 0;  // re-pins on first wake if the span grew since spawn
  for (;;) {
    const std::function<void(Team&)>* my_task = nullptr;
    int team_size = 0;
    {
      std::unique_lock<std::mutex> lock(mu);
      cv_start.wait(lock, [&] { return shutdown || epoch != seen; });
      if (shutdown) return;
      seen = epoch;
      if (pin_seen != pin_epoch) {
        // The reserved span grew (a region outgrew the creation-time
        // budget): re-pin so `spread` strides cover the new width.
        pin_seen = pin_epoch;
        pin_with(tid, pin_reserve);
      }
      if (tid >= active) continue;  // pool larger than this region's team
      my_task = task;
      team_size = active;
      tls_task_group = group;  // adopt the owner's attribution group
      // Adopt the owner's trace rank too, so worker spans land on the
      // owning rank's process row instead of an anonymous driver row.
      obs::set_trace_rank(trace_rank);
    }
    Team team(tid, team_size, this);
    try {
      if (obs::trace_on()) {
        obs::SpanScope span("lin", "worker");
        span.arg("tid", tid);
        (*my_task)(team);
      } else {
        (*my_task)(team);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      if (!error) error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      if (--running == 0) cv_done.notify_one();
    }
  }
}

void Pool::run_region(int nthreads, const std::function<void(Team&)>& body) {
  {
    // Before spawning/waking anyone: grow the affinity span if this
    // region is wider than any before (no-op with affinity off).
    std::lock_guard<std::mutex> lock(mu);
    update_reserve(nthreads);
  }
  ensure_workers(nthreads - 1);
  obs::SpanScope region_span("lin", "region");
  region_span.arg("width", nthreads);
  {
    std::lock_guard<std::mutex> lock(mu);
    task = &body;
    active = nthreads;
    running = nthreads - 1;
    error = nullptr;
    group = tls_task_group;
    trace_rank = obs::trace_rank();
    ++epoch;
  }
  cv_start.notify_all();
  Team team(0, nthreads, this);
  try {
    body(team);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu);
    if (!error) error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mu);
  cv_done.wait(lock, [&] { return running == 0; });
  active = 0;
  task = nullptr;
  if (error) {
    std::exception_ptr e = error;
    error = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

}  // namespace detail

int hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

Affinity parse_affinity(const char* spec) noexcept {
  if (spec == nullptr) return Affinity::off;
  const std::string_view s(spec);
  if (s == "compact") return Affinity::compact;
  if (s == "spread") return Affinity::spread;
  return Affinity::off;  // unknown specs (and "") are the safe default
}

Affinity affinity_mode() noexcept {
  static const Affinity mode = parse_affinity(std::getenv("CACQR_AFFINITY"));
  return mode;
}

int env_threads() noexcept {
  static const int value = [] {
    const char* s = std::getenv("CACQR_THREADS");
    if (s == nullptr || *s == '\0') return 1;
    char* end = nullptr;
    const long n = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || n < 1) return 1;
    return static_cast<int>(std::min<long>(n, 256));
  }();
  return value;
}

int thread_budget() noexcept {
  if (detail::tls_budget == 0) detail::tls_budget = env_threads();
  return detail::tls_budget;
}

void reinit_after_fork() noexcept {
  // The inherited pool's workers died with fork(); running ~Pool would
  // join threads that no longer exist.  Abandon the handle instead (a
  // bounded, one-time leak per forked child) and let the next region
  // rebuild lazily.
  (void)detail::tls_pool.release();
}

void set_thread_budget(int n) noexcept {
  // Same [1, 256] ceiling env_threads() enforces: kernel drivers size
  // teams directly from the budget (bypassing parallel_for's clamp), so
  // an unbounded budget could ask one pool for thousands of OS threads.
  detail::tls_budget = std::clamp(n, 1, 256);
}

Range split_range(i64 count, i64 grain, int part, int nparts) noexcept {
  const i64 g = std::max<i64>(1, grain);
  const i64 units = ceil_div(std::max<i64>(0, count), g);
  const i64 per = units / nparts;
  const i64 rem = units % nparts;
  const i64 u0 = part * per + std::min<i64>(part, rem);
  const i64 u1 = u0 + per + (part < rem ? 1 : 0);
  return {std::min(u0 * g, count), std::min(u1 * g, count)};
}

void Team::barrier() {
  if (size_ <= 1 || pool_ == nullptr) return;
  detail::Pool& p = *pool_;
  std::unique_lock<std::mutex> lock(p.barrier_mu);
  const u64 gen = p.barrier_gen;
  if (++p.barrier_waiting == size_) {
    p.barrier_waiting = 0;
    ++p.barrier_gen;
    p.barrier_cv.notify_all();
  } else {
    p.barrier_cv.wait(lock, [&] { return p.barrier_gen != gen; });
  }
}

bool in_region() noexcept { return detail::tls_region_depth > 0; }

int task_group() noexcept { return detail::tls_task_group; }

int set_task_group(int group) noexcept {
  const int prev = detail::tls_task_group;
  detail::tls_task_group = group;
  return prev;
}

ProgressHook progress_hook() noexcept { return detail::tls_progress_hook; }

ProgressHook set_progress_hook(ProgressHook hook) noexcept {
  const ProgressHook prev = detail::tls_progress_hook;
  detail::tls_progress_hook = hook;
  return prev;
}

void run(int nthreads, const std::function<void(Team&)>& body) {
  const int n = std::max(1, nthreads);
  if (n == 1 || detail::tls_region_depth > 0) {
    detail::DepthGuard guard;
    Team team(0, 1, nullptr);
    body(team);
    return;
  }
  detail::DepthGuard guard;
  detail::local_pool().run_region(n, body);
}

}  // namespace cacqr::lin::parallel
