#include <algorithm>
#include <cmath>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/parallel.hpp"
#include "cacqr/lin/qr.hpp"
#include "cacqr/lin/util.hpp"
#include "cacqr/support/rng.hpp"

namespace cacqr::lin {

Matrix materialize(ConstMatrixView a) {
  Matrix out = Matrix::uninit(a.rows, a.cols);
  copy(a, out);
  return out;
}

void copy(ConstMatrixView a, MatrixView b) {
  ensure_dim(a.rows == b.rows && a.cols == b.cols, "copy: shape mismatch");
  parallel::parallel_for_cols(a.rows, a.cols, [&](i64 j0, i64 j1) {
    for (i64 j = j0; j < j1; ++j) {
      const double* src = a.data + j * a.ld;
      double* dst = b.data + j * b.ld;
      std::copy(src, src + a.rows, dst);
    }
  });
}

void set_all(MatrixView a, double offdiag, double diag) {
  for (i64 j = 0; j < a.cols; ++j) {
    for (i64 i = 0; i < a.rows; ++i) a(i, j) = i == j ? diag : offdiag;
  }
}

Matrix transposed(ConstMatrixView a) {
  Matrix t(a.cols, a.rows);
  for (i64 j = 0; j < a.cols; ++j) {
    for (i64 i = 0; i < a.rows; ++i) t(j, i) = a(i, j);
  }
  return t;
}

void transpose_inplace(MatrixView a) {
  ensure_dim(a.rows == a.cols, "transpose_inplace: matrix must be square");
  for (i64 j = 0; j < a.cols; ++j) {
    for (i64 i = j + 1; i < a.rows; ++i) std::swap(a(i, j), a(j, i));
  }
}

double frob_norm(ConstMatrixView a) {
  double acc = 0.0;
  for (i64 j = 0; j < a.cols; ++j) {
    const double* col = a.data + j * a.ld;
    for (i64 i = 0; i < a.rows; ++i) acc += col[i] * col[i];
  }
  return std::sqrt(acc);
}

double max_abs(ConstMatrixView a) {
  double m = 0.0;
  for (i64 j = 0; j < a.cols; ++j) {
    for (i64 i = 0; i < a.rows; ++i) m = std::max(m, std::fabs(a(i, j)));
  }
  return m;
}

double max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  ensure_dim(a.rows == b.rows && a.cols == b.cols,
             "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (i64 j = 0; j < a.cols; ++j) {
    for (i64 i = 0; i < a.rows; ++i) {
      m = std::max(m, std::fabs(a(i, j) - b(i, j)));
    }
  }
  return m;
}

double orthogonality_error(ConstMatrixView q) {
  Matrix g(q.cols, q.cols);
  gram(1.0, q, 0.0, g);
  for (i64 i = 0; i < q.cols; ++i) g(i, i) -= 1.0;
  return frob_norm(g);
}

double residual_error(ConstMatrixView a, ConstMatrixView q,
                      ConstMatrixView r) {
  Matrix qr(a.rows, a.cols);
  gemm(Trans::N, Trans::N, 1.0, q, r, 0.0, qr);
  for (i64 j = 0; j < a.cols; ++j) {
    for (i64 i = 0; i < a.rows; ++i) qr(i, j) -= a(i, j);
  }
  const double denom = frob_norm(a);
  return denom == 0.0 ? frob_norm(qr) : frob_norm(qr) / denom;
}

bool is_upper_triangular(ConstMatrixView a) {
  for (i64 j = 0; j < a.cols; ++j) {
    for (i64 i = j + 1; i < a.rows; ++i) {
      if (a(i, j) != 0.0) return false;
    }
  }
  return true;
}

double cond2_estimate(ConstMatrixView a, int iterations) {
  const i64 n = a.cols;
  ensure_dim(a.rows >= n && n > 0, "cond2_estimate: need tall full-rank A");
  Rng rng(0x5eedULL);

  // sigma_max via power iteration on A^T A.
  Matrix x(n, 1);
  for (i64 i = 0; i < n; ++i) x(i, 0) = rng.normal();
  {
    const double norm0 = nrm2(x);
    for (i64 i = 0; i < n; ++i) x(i, 0) /= norm0;
  }
  Matrix ax(a.rows, 1), y(n, 1);
  double sigma_max = 0.0;
  for (int it = 0; it < iterations; ++it) {
    gemv(Trans::N, 1.0, a, x, 0.0, ax);
    gemv(Trans::T, 1.0, a, ax, 0.0, y);
    // With ||x|| = 1 the iterate norm converges to sigma_max^2.
    const double norm = nrm2(y);
    if (norm == 0.0) break;
    sigma_max = std::sqrt(norm);
    for (i64 i = 0; i < n; ++i) x(i, 0) = y(i, 0) / norm;
  }

  // sigma_min via inverse power iteration: solve (A^T A) y = x through the
  // R factor of a QR factorization (R^T R = A^T A).
  Matrix packed = materialize(a);
  auto tau = geqrf(packed);
  auto r_view = packed.sub(0, 0, n, n);
  for (i64 i = 0; i < n; ++i) x(i, 0) = rng.normal();
  double inv_sigma_min_sq = 1.0;
  for (int it = 0; it < iterations; ++it) {
    Matrix z = materialize(x.view());
    trsm(Side::Left, Uplo::Upper, Trans::T, Diag::NonUnit, 1.0, r_view, z);
    trsm(Side::Left, Uplo::Upper, Trans::N, Diag::NonUnit, 1.0, r_view, z);
    const double norm = nrm2(z);
    if (norm == 0.0 || !std::isfinite(norm)) break;
    inv_sigma_min_sq = norm;
    for (i64 i = 0; i < n; ++i) x(i, 0) = z(i, 0) / norm;
  }
  const double sigma_min = 1.0 / std::sqrt(inv_sigma_min_sq);
  return sigma_max / sigma_min;
}

}  // namespace cacqr::lin
