#include <algorithm>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/flops.hpp"
#include "cacqr/lin/kernel.hpp"
#include "cacqr/lin/parallel.hpp"

namespace cacqr::lin {

namespace {

/// The scale/mirror passes below split at column granularity with ~32K
/// element touches per chunk (parallel_for_cols); columns are the unit so
/// every column has exactly one owner (writes stay disjoint and
/// column-contiguous -- no false sharing and bitwise-deterministic results
/// at any thread count).
constexpr i64 kScaleChunkElems = i64{1} << 15;

/// Scales C by beta with BLAS semantics: beta == 0 overwrites (even NaN),
/// beta == 1 leaves C untouched.
void scale_full(double beta, MatrixView c) {
  if (beta == 1.0) return;
  parallel::parallel_for_cols(c.rows, c.cols, kScaleChunkElems,
                              [&](i64 j0, i64 j1) {
    for (i64 j = j0; j < j1; ++j) {
      double* cc = c.data + j * c.ld;
      if (beta == 0.0) {
        for (i64 i = 0; i < c.rows; ++i) cc[i] = 0.0;
      } else {
        for (i64 i = 0; i < c.rows; ++i) cc[i] *= beta;
      }
    }
  });
}

/// Scales one triangle (diagonal included) of C by beta, same semantics.
void scale_triangle(double beta, MatrixView c, Uplo uplo) {
  if (beta == 1.0) return;
  parallel::parallel_for_cols(c.rows, c.cols, kScaleChunkElems,
                              [&](i64 j0, i64 j1) {
    for (i64 j = j0; j < j1; ++j) {
      const i64 ibegin = uplo == Uplo::Lower ? j : 0;
      const i64 iend = uplo == Uplo::Lower ? c.rows : j + 1;
      double* cc = c.data + j * c.ld;
      if (beta == 0.0) {
        for (i64 i = ibegin; i < iend; ++i) cc[i] = 0.0;
      } else {
        for (i64 i = ibegin; i < iend; ++i) cc[i] *= beta;
      }
    }
  });
}

/// Copies the uplo triangle of C onto the opposite one, making C exactly
/// symmetric.  The distributed algorithms reduce and broadcast the full
/// n^2 block, as the paper's word counts assume.  Iterates destination
/// columns (contiguous writes, strided reads) so the column split above
/// applies here too.
void mirror_triangle(MatrixView c, Uplo from) {
  parallel::parallel_for_cols(c.rows, c.cols, kScaleChunkElems,
                              [&](i64 j0, i64 j1) {
    for (i64 j = j0; j < j1; ++j) {
      double* cj = c.data + j * c.ld;
      if (from == Uplo::Lower) {
        // Destination column j above the diagonal: c(i, j) = c(j, i), i < j.
        for (i64 i = 0; i < j; ++i) cj[i] = c(j, i);
      } else {
        for (i64 i = j + 1; i < c.rows; ++i) cj[i] = c(j, i);
      }
    }
  });
}

}  // namespace

void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c) {
  const i64 m = ta == Trans::N ? a.rows : a.cols;
  const i64 ka = ta == Trans::N ? a.cols : a.rows;
  const i64 kb_dim = tb == Trans::N ? b.rows : b.cols;
  const i64 n = tb == Trans::N ? b.cols : b.rows;
  ensure_dim(ka == kb_dim, "gemm: inner dimensions differ (", ka, " vs ",
             kb_dim, ")");
  ensure_dim(c.rows == m && c.cols == n, "gemm: output shape mismatch");
  const i64 k = ka;

  scale_full(beta, c);
  // Fast path does no multiplies, so it charges no flops (the beta scaling
  // is not charged on the full path either).
  if (k == 0 || m == 0 || n == 0 || alpha == 0.0) return;

  kernel::gemm_accumulate(ta, tb, alpha, a, b, c);
  flops::add(2 * m * n * k);
}

void matmul(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  gemm(Trans::N, Trans::N, 1.0, a, b, 0.0, c);
}

void gram(double alpha, ConstMatrixView a, double beta, MatrixView c) {
  const i64 n = a.cols;
  const i64 m = a.rows;
  ensure_dim(c.rows == n && c.cols == n, "gram: C must be n x n");
  // Lower triangle through the micro-kernel (diagonal-crossing tiles plus
  // full below-diagonal tiles), then mirror -- the upper triangle of C is
  // always overwritten by the mirrored lower result.
  scale_triangle(beta, c, Uplo::Lower);
  if (alpha != 0.0) {
    kernel::gemm_accumulate(Trans::T, Trans::N, alpha, a, a, c,
                            kernel::TileFilter::Lower);
  }
  mirror_triangle(c, Uplo::Lower);
  flops::add(m * n * (n + 1));  // m * n^2 multiply-adds (half of gemm)
}

void syrk_nt(double alpha, ConstMatrixView a, double beta, MatrixView c,
             Uplo uplo) {
  const i64 n = a.rows;
  const i64 k = a.cols;
  ensure_dim(c.rows == n && c.cols == n, "syrk_nt: C must be n x n");
  scale_triangle(beta, c, uplo);
  if (alpha != 0.0) {
    kernel::gemm_accumulate(Trans::N, Trans::T, alpha, a, a, c,
                            uplo == Uplo::Lower ? kernel::TileFilter::Lower
                                                : kernel::TileFilter::Upper);
  }
  // Mirror so callers can treat the result as a full symmetric matrix.
  mirror_triangle(c, uplo);
  flops::add(n * (n + 1) * k);
}

}  // namespace cacqr::lin
