#include <algorithm>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/flops.hpp"

namespace cacqr::lin {

namespace {

/// Register-blocked inner kernel for the no-transpose case:
/// C(i0:i0+mb, j0:j0+nb) += A(i0:i0+mb, k0:k0+kb) * B(k0:k0+kb, j0:j0+nb).
/// Column-major friendly loop order j-k-i with the i loop innermost so the
/// compiler vectorizes the axpy over contiguous columns of A and C.
void gemm_nn_block(double alpha, ConstMatrixView a, ConstMatrixView b,
                   MatrixView c, i64 i0, i64 j0, i64 k0, i64 mb, i64 nb,
                   i64 kb) {
  for (i64 j = j0; j < j0 + nb; ++j) {
    double* cc = c.data + j * c.ld;
    for (i64 k = k0; k < k0 + kb; ++k) {
      const double bkj = alpha * b(k, j);
      if (bkj == 0.0) continue;
      const double* ac = a.data + k * a.ld;
      for (i64 i = i0; i < i0 + mb; ++i) cc[i] += bkj * ac[i];
    }
  }
}

}  // namespace

void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c) {
  const i64 m = ta == Trans::N ? a.rows : a.cols;
  const i64 ka = ta == Trans::N ? a.cols : a.rows;
  const i64 kb_dim = tb == Trans::N ? b.rows : b.cols;
  const i64 n = tb == Trans::N ? b.cols : b.rows;
  ensure_dim(ka == kb_dim, "gemm: inner dimensions differ (", ka, " vs ",
             kb_dim, ")");
  ensure_dim(c.rows == m && c.cols == n, "gemm: output shape mismatch");
  const i64 k = ka;

  for (i64 j = 0; j < n; ++j) {
    double* cc = c.data + j * c.ld;
    if (beta == 0.0) {
      for (i64 i = 0; i < m; ++i) cc[i] = 0.0;
    } else if (beta != 1.0) {
      for (i64 i = 0; i < m; ++i) cc[i] *= beta;
    }
  }
  if (k == 0 || m == 0 || n == 0 || alpha == 0.0) {
    flops::add(2 * m * n * k);
    return;
  }

  if (ta == Trans::N && tb == Trans::N) {
    // Cache-blocked hot path.
    constexpr i64 MB = 256, NB = 128, KB = 128;
    for (i64 jj = 0; jj < n; jj += NB) {
      const i64 nb = std::min(NB, n - jj);
      for (i64 kk = 0; kk < k; kk += KB) {
        const i64 kbb = std::min(KB, k - kk);
        for (i64 ii = 0; ii < m; ii += MB) {
          const i64 mb = std::min(MB, m - ii);
          gemm_nn_block(alpha, a, b, c, ii, jj, kk, mb, nb, kbb);
        }
      }
    }
  } else if (ta == Trans::T && tb == Trans::N) {
    // C(i,j) += alpha * sum_k A(k,i) B(k,j): dot products over contiguous
    // columns of both operands.
    for (i64 j = 0; j < n; ++j) {
      const double* bc = b.data + j * b.ld;
      double* cc = c.data + j * c.ld;
      for (i64 i = 0; i < m; ++i) {
        const double* ac = a.data + i * a.ld;
        double acc = 0.0;
        for (i64 kk = 0; kk < k; ++kk) acc += ac[kk] * bc[kk];
        cc[i] += alpha * acc;
      }
    }
  } else if (ta == Trans::N && tb == Trans::T) {
    for (i64 kk = 0; kk < k; ++kk) {
      const double* ac = a.data + kk * a.ld;
      for (i64 j = 0; j < n; ++j) {
        const double bkj = alpha * b(j, kk);
        if (bkj == 0.0) continue;
        double* cc = c.data + j * c.ld;
        for (i64 i = 0; i < m; ++i) cc[i] += bkj * ac[i];
      }
    }
  } else {  // T, T
    for (i64 j = 0; j < n; ++j) {
      double* cc = c.data + j * c.ld;
      for (i64 i = 0; i < m; ++i) {
        const double* ac = a.data + i * a.ld;
        double acc = 0.0;
        for (i64 kk = 0; kk < k; ++kk) acc += ac[kk] * b(j, kk);
        cc[i] += alpha * acc;
      }
    }
  }
  flops::add(2 * m * n * k);
}

void matmul(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  gemm(Trans::N, Trans::N, 1.0, a, b, 0.0, c);
}

void gram(double alpha, ConstMatrixView a, double beta, MatrixView c) {
  const i64 n = a.cols;
  ensure_dim(c.rows == n && c.cols == n, "gram: C must be n x n");
  // Lower triangle: C(i,j) = alpha * <a_i, a_j> for i >= j.
  for (i64 j = 0; j < n; ++j) {
    const double* aj = a.data + j * a.ld;
    for (i64 i = j; i < n; ++i) {
      const double* ai = a.data + i * a.ld;
      double acc = 0.0;
      for (i64 kk = 0; kk < a.rows; ++kk) acc += ai[kk] * aj[kk];
      c(i, j) = alpha * acc + beta * c(i, j);
    }
  }
  // Mirror to the upper triangle (the distributed algorithms reduce and
  // broadcast the full n^2 block, as the paper's word counts assume).
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = j + 1; i < n; ++i) c(j, i) = c(i, j);
  }
  flops::add(a.rows * n * (n + 1));  // m * n^2 multiply-adds (half of gemm)
}

void syrk_nt(double alpha, ConstMatrixView a, double beta, MatrixView c,
             Uplo uplo) {
  const i64 n = a.rows;
  const i64 k = a.cols;
  ensure_dim(c.rows == n && c.cols == n, "syrk_nt: C must be n x n");
  for (i64 j = 0; j < n; ++j) {
    const i64 ibegin = uplo == Uplo::Lower ? j : 0;
    const i64 iend = uplo == Uplo::Lower ? n : j + 1;
    for (i64 i = ibegin; i < iend; ++i) {
      double acc = 0.0;
      for (i64 kk = 0; kk < k; ++kk) acc += a(i, kk) * a(j, kk);
      c(i, j) = alpha * acc + beta * c(i, j);
    }
  }
  // Mirror so callers can treat the result as a full symmetric matrix.
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = j + 1; i < n; ++i) {
      if (uplo == Uplo::Lower) {
        c(j, i) = c(i, j);
      } else {
        c(i, j) = c(j, i);
      }
    }
  }
  flops::add(n * (n + 1) * k);
}

}  // namespace cacqr::lin
