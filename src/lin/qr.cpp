#include <algorithm>
#include <cmath>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/flops.hpp"
#include "cacqr/lin/parallel.hpp"
#include "cacqr/lin/qr.hpp"

namespace cacqr::lin {

namespace {

/// Column-range worker for apply_reflector: every column of C is updated
/// independently (two dot/axpy streams per pass), so the caller can split
/// columns across threads without changing any element's operation order.
/// Columns are processed in pairs so each load of v serves two streams.
void apply_reflector_cols(const double* __restrict v, i64 len, double tau,
                          MatrixView c) {
  i64 j = 0;
  for (; j + 1 < c.cols; j += 2) {
    double* __restrict c0 = c.data + j * c.ld;
    double* __restrict c1 = c.data + (j + 1) * c.ld;
    double w0 = c0[0];
    double w1 = c1[0];
    for (i64 i = 1; i < len; ++i) {
      w0 += v[i] * c0[i];
      w1 += v[i] * c1[i];
    }
    w0 *= tau;
    w1 *= tau;
    c0[0] -= w0;
    c1[0] -= w1;
    for (i64 i = 1; i < len; ++i) {
      c0[i] -= w0 * v[i];
      c1[i] -= w1 * v[i];
    }
  }
  for (; j < c.cols; ++j) {
    double* __restrict col = c.data + j * c.ld;
    double w = col[0];
    for (i64 i = 1; i < len; ++i) w += v[i] * col[i];
    w *= tau;
    col[0] -= w;
    for (i64 i = 1; i < len; ++i) col[i] -= w * v[i];
  }
}

/// Applies the elementary reflector H = I - tau v v^T (v(0)=1 implicit,
/// stored in `v` from index 1) to C(0:len, :) in place, splitting the
/// independent columns across the calling thread's worker team.  Flops are
/// charged once, on the calling thread, as always.
void apply_reflector(const double* __restrict v, i64 len, double tau,
                     MatrixView c) {
  if (tau == 0.0) return;
  // ~32K madds per chunk; each column costs 4*len.
  const i64 grain =
      std::max<i64>(2, (i64{1} << 15) / std::max<i64>(1, 4 * len));
  parallel::parallel_for(c.cols, grain, [&](i64 j0, i64 j1) {
    apply_reflector_cols(v, len, tau, c.sub(0, j0, c.rows, j1 - j0));
  });
  flops::add(4 * len * c.cols);
}

}  // namespace

std::vector<double> geqrf(MatrixView a) {
  const i64 m = a.rows;
  const i64 n = a.cols;
  ensure_dim(m >= n, "geqrf: requires m >= n (reduced QR of tall matrix)");
  std::vector<double> tau(static_cast<std::size_t>(n), 0.0);

  for (i64 j = 0; j < n; ++j) {
    const i64 len = m - j;
    double* col = a.data + j + j * a.ld;
    // Householder vector for column j (LAPACK dlarfg).
    double alpha = col[0];
    double xnorm = 0.0;
    for (i64 i = 1; i < len; ++i) xnorm += col[i] * col[i];
    xnorm = std::sqrt(xnorm);
    if (xnorm == 0.0) {
      tau[j] = 0.0;
      continue;
    }
    const double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
    tau[j] = (beta - alpha) / beta;
    const double inv = 1.0 / (alpha - beta);
    for (i64 i = 1; i < len; ++i) col[i] *= inv;
    col[0] = beta;
    flops::add(3 * len);
    // Apply to the trailing columns with v implicit in col (v0 = 1).
    if (j + 1 < n) {
      // Temporarily set the diagonal to 1 for a uniform reflector apply.
      const double saved = col[0];
      col[0] = 1.0;
      apply_reflector(col, len, tau[j], a.sub(j, j + 1, len, n - j - 1));
      col[0] = saved;
    }
  }
  return tau;
}

Matrix orgqr(ConstMatrixView qr_packed, const std::vector<double>& tau) {
  const i64 m = qr_packed.rows;
  const i64 n = qr_packed.cols;
  Matrix q(m, n);
  for (i64 j = 0; j < n; ++j) q(j, j) = 1.0;
  // Apply H_1 H_2 ... H_n to I, last reflector first.
  std::vector<double> v(static_cast<std::size_t>(m));
  for (i64 j = n - 1; j >= 0; --j) {
    const i64 len = m - j;
    v[0] = 1.0;
    for (i64 i = 1; i < len; ++i) v[i] = qr_packed(j + i, j);
    apply_reflector(v.data(), len, tau[j], q.sub(j, j, len, n - j));
  }
  return q;
}

void apply_qt(ConstMatrixView qr_packed, const std::vector<double>& tau,
              MatrixView c) {
  const i64 m = qr_packed.rows;
  const i64 n = qr_packed.cols;
  ensure_dim(c.rows == m, "apply_qt: row mismatch");
  std::vector<double> v(static_cast<std::size_t>(m));
  // Q^T = H_n ... H_1, so apply in forward order.
  for (i64 j = 0; j < n; ++j) {
    const i64 len = m - j;
    v[0] = 1.0;
    for (i64 i = 1; i < len; ++i) v[i] = qr_packed(j + i, j);
    apply_reflector(v.data(), len, tau[j], c.sub(j, 0, len, c.cols));
  }
}

void apply_q(ConstMatrixView qr_packed, const std::vector<double>& tau,
             MatrixView c) {
  const i64 m = qr_packed.rows;
  const i64 n = qr_packed.cols;
  ensure_dim(c.rows == m, "apply_q: row mismatch");
  std::vector<double> v(static_cast<std::size_t>(m));
  // Q = H_1 ... H_n, so apply in reverse order.
  for (i64 j = n - 1; j >= 0; --j) {
    const i64 len = m - j;
    v[0] = 1.0;
    for (i64 i = 1; i < len; ++i) v[i] = qr_packed(j + i, j);
    apply_reflector(v.data(), len, tau[j], c.sub(j, 0, len, c.cols));
  }
}

QrResult householder_qr(ConstMatrixView a) {
  Matrix packed = materialize(a);
  auto tau = geqrf(packed);
  QrResult out{orgqr(packed, tau), Matrix(a.cols, a.cols)};
  for (i64 j = 0; j < a.cols; ++j) {
    for (i64 i = 0; i <= j; ++i) out.r(i, j) = packed(i, j);
  }
  // Sign-normalize: make diag(R) >= 0 by flipping matching Q columns.
  for (i64 i = 0; i < a.cols; ++i) {
    if (out.r(i, i) < 0.0) {
      for (i64 j = i; j < a.cols; ++j) out.r(i, j) = -out.r(i, j);
      for (i64 k = 0; k < a.rows; ++k) out.q(k, i) = -out.q(k, i);
    }
  }
  return out;
}

Matrix lstsq(ConstMatrixView a, ConstMatrixView b) {
  ensure_dim(a.rows == b.rows, "lstsq: A and b row counts differ");
  Matrix packed = materialize(a);
  auto tau = geqrf(packed);
  Matrix rhs = materialize(b);
  apply_qt(packed, tau, rhs);
  // Solve R x = (Q^T b)(0:n, :).
  Matrix x = materialize(rhs.sub(0, 0, a.cols, b.cols));
  auto r_view = packed.sub(0, 0, a.cols, a.cols);
  trsm(Side::Left, Uplo::Upper, Trans::N, Diag::NonUnit, 1.0, r_view, x);
  return x;
}

}  // namespace cacqr::lin
