/// \file kernel_avx2_f32.cpp
/// \brief AVX2+FMA fp32 micro-kernel variant: the fp32 twin of
///        kernel_avx2.cpp.  A 16 x 6 register tile in 12 ymm accumulators
///        -- each ymm now carries eight floats -- one two-vector column
///        load of packed A and six scalar broadcasts of packed B feeding
///        12 vfmadd231ps per k step.
///
/// Compiled with -mavx2 -mfma via the same per-file COMPILE_OPTIONS as the
/// fp64 twin, behind the same architecture guard: the fp32 descriptor for
/// the variant exists exactly when the fp64 one does, and the same cpuid
/// probe gates execution of both.

#include "kernel_impl.hpp"

#if defined(__x86_64__) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace cacqr::lin::kernel::detail {

namespace {

void micro_kernel_avx2_f32(i64 kc, const float* __restrict ap,
                           const float* __restrict bp,
                           float* __restrict acc) {
  __m256 c0a = _mm256_setzero_ps(), c0b = _mm256_setzero_ps();
  __m256 c1a = _mm256_setzero_ps(), c1b = _mm256_setzero_ps();
  __m256 c2a = _mm256_setzero_ps(), c2b = _mm256_setzero_ps();
  __m256 c3a = _mm256_setzero_ps(), c3b = _mm256_setzero_ps();
  __m256 c4a = _mm256_setzero_ps(), c4b = _mm256_setzero_ps();
  __m256 c5a = _mm256_setzero_ps(), c5b = _mm256_setzero_ps();
  for (i64 k = 0; k < kc; ++k) {
    const __m256 a0 = _mm256_loadu_ps(ap);
    const __m256 a1 = _mm256_loadu_ps(ap + 8);
    __m256 b = _mm256_broadcast_ss(bp + 0);
    c0a = _mm256_fmadd_ps(a0, b, c0a);
    c0b = _mm256_fmadd_ps(a1, b, c0b);
    b = _mm256_broadcast_ss(bp + 1);
    c1a = _mm256_fmadd_ps(a0, b, c1a);
    c1b = _mm256_fmadd_ps(a1, b, c1b);
    b = _mm256_broadcast_ss(bp + 2);
    c2a = _mm256_fmadd_ps(a0, b, c2a);
    c2b = _mm256_fmadd_ps(a1, b, c2b);
    b = _mm256_broadcast_ss(bp + 3);
    c3a = _mm256_fmadd_ps(a0, b, c3a);
    c3b = _mm256_fmadd_ps(a1, b, c3b);
    b = _mm256_broadcast_ss(bp + 4);
    c4a = _mm256_fmadd_ps(a0, b, c4a);
    c4b = _mm256_fmadd_ps(a1, b, c4b);
    b = _mm256_broadcast_ss(bp + 5);
    c5a = _mm256_fmadd_ps(a0, b, c5a);
    c5b = _mm256_fmadd_ps(a1, b, c5b);
    ap += 16;
    bp += 6;
  }
  _mm256_storeu_ps(acc + 0, c0a);
  _mm256_storeu_ps(acc + 8, c0b);
  _mm256_storeu_ps(acc + 16, c1a);
  _mm256_storeu_ps(acc + 24, c1b);
  _mm256_storeu_ps(acc + 32, c2a);
  _mm256_storeu_ps(acc + 40, c2b);
  _mm256_storeu_ps(acc + 48, c3a);
  _mm256_storeu_ps(acc + 56, c3b);
  _mm256_storeu_ps(acc + 64, c4a);
  _mm256_storeu_ps(acc + 72, c4b);
  _mm256_storeu_ps(acc + 80, c5a);
  _mm256_storeu_ps(acc + 88, c5b);
}

// Same tile register count and cache-block byte budgets as the fp64 avx2
// kernel: 16 x 6 floats is the 8 x 6-doubles tile at fp32 lane width.
static_assert(MR32 == 16 && NR32 == 6,
              "avx2 f32 kernel shares the generic 16x6 geometry");

constexpr MicroKernelImplF kImpl{Variant::avx2, MR32, NR32, MC32, KC32,
                                 NC32,          &micro_kernel_avx2_f32};

}  // namespace

const MicroKernelImplF* avx2_impl_f32() noexcept { return &kImpl; }

}  // namespace cacqr::lin::kernel::detail

#else  // not an AVX2-capable compilation target

namespace cacqr::lin::kernel::detail {

const MicroKernelImplF* avx2_impl_f32() noexcept { return nullptr; }

}  // namespace cacqr::lin::kernel::detail

#endif
