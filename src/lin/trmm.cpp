#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/flops.hpp"
#include "cacqr/lin/kernel.hpp"
#include "cacqr/lin/parallel.hpp"

namespace cacqr::lin {

namespace {

/// Base-case size for the blocked triangular recursions.  Diagonal blocks
/// up to this order run the O(n^2)-per-column scalar substitution loops;
/// everything off-diagonal is a packed-kernel gemm (which threads itself).
constexpr i64 kTriBlock = 32;

inline double tri_at(ConstMatrixView t, Trans trans, i64 i, i64 k) noexcept {
  return trans == Trans::N ? t(i, k) : t(k, i);
}

/// Chunk size giving each base-case parallel_for chunk ~32K scalar madds;
/// rounded to a multiple of 8 (one cache line of doubles) for row splits so
/// adjacent chunks never share a line.
inline i64 tri_grain(i64 n_tri) noexcept {
  const i64 work = std::max<i64>(1, n_tri * n_tri / 2);
  return round_up(std::max<i64>(8, (i64{1} << 15) / work), 8);
}

/// Unblocked B := op(T) * B / B := B * op(T) (alpha folded in by the
/// blocked driver), no flop accounting.
///
/// Left side: each B column is independent, so the base case splits
/// columns across the team.  Right side: columns mix, but every B *row*
/// runs the identical update sequence independently, so rows split
/// instead.  Either way each output element keeps one owner and its exact
/// operation order, preserving bitwise identity across thread counts.
void trmm_base_seq(Side side, Uplo uplo, Trans trans, Diag diag,
                   ConstMatrixView t, MatrixView b) {
  const i64 n_tri = t.rows;
  const bool lower_op = (uplo == Uplo::Lower) == (trans == Trans::N);
  if (side == Side::Left) {
    for (i64 j = 0; j < b.cols; ++j) {
      double* col = b.data + j * b.ld;
      if (lower_op) {
        // Row i depends on rows <= i: traverse bottom-up to update in place.
        for (i64 i = n_tri - 1; i >= 0; --i) {
          double acc =
              diag == Diag::Unit ? col[i] : tri_at(t, trans, i, i) * col[i];
          for (i64 k = 0; k < i; ++k) acc += tri_at(t, trans, i, k) * col[k];
          col[i] = acc;
        }
      } else {
        for (i64 i = 0; i < n_tri; ++i) {
          double acc =
              diag == Diag::Unit ? col[i] : tri_at(t, trans, i, i) * col[i];
          for (i64 k = i + 1; k < n_tri; ++k) {
            acc += tri_at(t, trans, i, k) * col[k];
          }
          col[i] = acc;
        }
      }
    }
  } else if (lower_op) {
    // Result column j mixes B columns k >= j: traverse left-to-right.
    for (i64 j = 0; j < n_tri; ++j) {
      double* cj = b.data + j * b.ld;
      const double djj = diag == Diag::Unit ? 1.0 : tri_at(t, trans, j, j);
      for (i64 i = 0; i < b.rows; ++i) cj[i] *= djj;
      for (i64 k = j + 1; k < n_tri; ++k) {
        const double tkj = tri_at(t, trans, k, j);
        if (tkj == 0.0) continue;
        const double* ck = b.data + k * b.ld;
        for (i64 i = 0; i < b.rows; ++i) cj[i] += tkj * ck[i];
      }
    }
  } else {
    // Result column j mixes B columns k <= j: traverse right-to-left.
    for (i64 j = n_tri - 1; j >= 0; --j) {
      double* cj = b.data + j * b.ld;
      const double djj = diag == Diag::Unit ? 1.0 : tri_at(t, trans, j, j);
      for (i64 i = 0; i < b.rows; ++i) cj[i] *= djj;
      for (i64 k = 0; k < j; ++k) {
        const double tkj = tri_at(t, trans, k, j);
        if (tkj == 0.0) continue;
        const double* ck = b.data + k * b.ld;
        for (i64 i = 0; i < b.rows; ++i) cj[i] += tkj * ck[i];
      }
    }
  }
}

/// Thread-parallel base-case dispatch: splits the independent dimension
/// (columns on the left, rows on the right) and runs the sequential loops
/// on each sub-view.
void trmm_base(Side side, Uplo uplo, Trans trans, Diag diag,
               ConstMatrixView t, MatrixView b) {
  const i64 grain = tri_grain(t.rows);
  if (side == Side::Left) {
    parallel::parallel_for(b.cols, grain, [&](i64 j0, i64 j1) {
      trmm_base_seq(side, uplo, trans, diag, t,
                    b.sub(0, j0, b.rows, j1 - j0));
    });
  } else {
    parallel::parallel_for(b.rows, grain, [&](i64 r0, i64 r1) {
      trmm_base_seq(side, uplo, trans, diag, t,
                    b.sub(r0, 0, r1 - r0, b.cols));
    });
  }
}

/// Unblocked forward/backward substitution, alpha pre-applied, no flop
/// accounting.  Same independence structure as trmm_base_seq: left side is
/// per-column, right side per-row.
void trsm_base_seq(Side side, Uplo uplo, Trans trans, Diag diag,
                   ConstMatrixView t, MatrixView b) {
  const i64 n_tri = t.rows;
  const bool lower_op = (uplo == Uplo::Lower) == (trans == Trans::N);
  if (side == Side::Left) {
    for (i64 j = 0; j < b.cols; ++j) {
      double* col = b.data + j * b.ld;
      if (lower_op) {
        for (i64 i = 0; i < n_tri; ++i) {
          double acc = col[i];
          for (i64 k = 0; k < i; ++k) acc -= tri_at(t, trans, i, k) * col[k];
          col[i] = diag == Diag::Unit ? acc : acc / tri_at(t, trans, i, i);
        }
      } else {
        for (i64 i = n_tri - 1; i >= 0; --i) {
          double acc = col[i];
          for (i64 k = i + 1; k < n_tri; ++k) {
            acc -= tri_at(t, trans, i, k) * col[k];
          }
          col[i] = diag == Diag::Unit ? acc : acc / tri_at(t, trans, i, i);
        }
      }
    }
  } else if (lower_op) {
    // X(:,j) = (B(:,j) - sum_{k>j} X(:,k) T(k,j)) / T(j,j): right-to-left.
    for (i64 j = n_tri - 1; j >= 0; --j) {
      double* cj = b.data + j * b.ld;
      for (i64 k = j + 1; k < n_tri; ++k) {
        const double tkj = tri_at(t, trans, k, j);
        if (tkj == 0.0) continue;
        const double* ck = b.data + k * b.ld;
        for (i64 i = 0; i < b.rows; ++i) cj[i] -= tkj * ck[i];
      }
      if (diag == Diag::NonUnit) {
        const double djj = tri_at(t, trans, j, j);
        for (i64 i = 0; i < b.rows; ++i) cj[i] /= djj;
      }
    }
  } else {
    for (i64 j = 0; j < n_tri; ++j) {
      double* cj = b.data + j * b.ld;
      for (i64 k = 0; k < j; ++k) {
        const double tkj = tri_at(t, trans, k, j);
        if (tkj == 0.0) continue;
        const double* ck = b.data + k * b.ld;
        for (i64 i = 0; i < b.rows; ++i) cj[i] -= tkj * ck[i];
      }
      if (diag == Diag::NonUnit) {
        const double djj = tri_at(t, trans, j, j);
        for (i64 i = 0; i < b.rows; ++i) cj[i] /= djj;
      }
    }
  }
}

/// Thread-parallel base-case dispatch, mirroring trmm_base.
void trsm_base(Side side, Uplo uplo, Trans trans, Diag diag,
               ConstMatrixView t, MatrixView b) {
  const i64 grain = tri_grain(t.rows);
  if (side == Side::Left) {
    parallel::parallel_for(b.cols, grain, [&](i64 j0, i64 j1) {
      trsm_base_seq(side, uplo, trans, diag, t,
                    b.sub(0, j0, b.rows, j1 - j0));
    });
  } else {
    parallel::parallel_for(b.rows, grain, [&](i64 r0, i64 r1) {
      trsm_base_seq(side, uplo, trans, diag, t,
                    b.sub(r0, 0, r1 - r0, b.cols));
    });
  }
}

/// The off-diagonal block of op(T) below the diagonal (lower_op) or above
/// it (upper op), expressed as (stored block, transpose flag) so it can be
/// fed straight to the packing layer.  With T split at h:
///   lower storage:  T21 = t(h:, :h);   upper storage: T12 = t(:h, h:).
struct OffDiag {
  ConstMatrixView block;
  Trans trans;
};

inline OffDiag off_diag_low(ConstMatrixView t, Trans trans, i64 h) {
  // op(T)(2,1), an (n-h) x h block.
  return trans == Trans::N
             ? OffDiag{t.sub(h, 0, t.rows - h, h), Trans::N}
             : OffDiag{t.sub(0, h, h, t.rows - h), Trans::T};
}

inline OffDiag off_diag_up(ConstMatrixView t, Trans trans, i64 h) {
  // op(T)(1,2), an h x (n-h) block.
  return trans == Trans::N
             ? OffDiag{t.sub(0, h, h, t.rows - h), Trans::N}
             : OffDiag{t.sub(h, 0, t.rows - h, h), Trans::T};
}

/// Blocked B := op(T) * B / B * op(T) (no alpha, no accounting): diagonal
/// blocks recurse, off-diagonal updates are packed-kernel gemms.
void trmm_rec(Side side, Uplo uplo, Trans trans, Diag diag, ConstMatrixView t,
              MatrixView b) {
  const i64 n_tri = t.rows;
  if (n_tri <= kTriBlock) {
    trmm_base(side, uplo, trans, diag, t, b);
    return;
  }
  const i64 h = n_tri / 2;
  auto t11 = t.sub(0, 0, h, h);
  auto t22 = t.sub(h, h, n_tri - h, n_tri - h);
  const bool lower_op = (uplo == Uplo::Lower) == (trans == Trans::N);
  if (side == Side::Left) {
    auto b1 = b.sub(0, 0, h, b.cols);
    auto b2 = b.sub(h, 0, b.rows - h, b.cols);
    if (lower_op) {
      // [B1; B2] <- [op11 B1; op21 B1 + op22 B2], B1 updated last so the
      // op21 product reads the original B1.
      trmm_rec(side, uplo, trans, diag, t22, b2);
      const OffDiag od = off_diag_low(t, trans, h);
      kernel::gemm_accumulate(od.trans, Trans::N, 1.0, od.block, b1, b2);
      trmm_rec(side, uplo, trans, diag, t11, b1);
    } else {
      trmm_rec(side, uplo, trans, diag, t11, b1);
      const OffDiag od = off_diag_up(t, trans, h);
      kernel::gemm_accumulate(od.trans, Trans::N, 1.0, od.block, b2, b1);
      trmm_rec(side, uplo, trans, diag, t22, b2);
    }
  } else {
    auto b1 = b.sub(0, 0, b.rows, h);
    auto b2 = b.sub(0, h, b.rows, b.cols - h);
    if (lower_op) {
      // [B1 B2] <- [B1 op11 + B2 op21; B2 op22].
      trmm_rec(side, uplo, trans, diag, t11, b1);
      const OffDiag od = off_diag_low(t, trans, h);
      kernel::gemm_accumulate(Trans::N, od.trans, 1.0, b2, od.block, b1);
      trmm_rec(side, uplo, trans, diag, t22, b2);
    } else {
      trmm_rec(side, uplo, trans, diag, t22, b2);
      const OffDiag od = off_diag_up(t, trans, h);
      kernel::gemm_accumulate(Trans::N, od.trans, 1.0, b1, od.block, b2);
      trmm_rec(side, uplo, trans, diag, t11, b1);
    }
  }
}

/// Blocked solve (alpha pre-applied, no accounting), same split as trmm_rec
/// with the update directions reversed.
void trsm_rec(Side side, Uplo uplo, Trans trans, Diag diag, ConstMatrixView t,
              MatrixView b) {
  const i64 n_tri = t.rows;
  if (n_tri <= kTriBlock) {
    trsm_base(side, uplo, trans, diag, t, b);
    return;
  }
  const i64 h = n_tri / 2;
  auto t11 = t.sub(0, 0, h, h);
  auto t22 = t.sub(h, h, n_tri - h, n_tri - h);
  const bool lower_op = (uplo == Uplo::Lower) == (trans == Trans::N);
  if (side == Side::Left) {
    auto b1 = b.sub(0, 0, h, b.cols);
    auto b2 = b.sub(h, 0, b.rows - h, b.cols);
    if (lower_op) {
      // Forward: X1 = op11^{-1} B1; B2 -= op21 X1; X2 = op22^{-1} B2.
      trsm_rec(side, uplo, trans, diag, t11, b1);
      const OffDiag od = off_diag_low(t, trans, h);
      kernel::gemm_accumulate(od.trans, Trans::N, -1.0, od.block, b1, b2);
      trsm_rec(side, uplo, trans, diag, t22, b2);
    } else {
      trsm_rec(side, uplo, trans, diag, t22, b2);
      const OffDiag od = off_diag_up(t, trans, h);
      kernel::gemm_accumulate(od.trans, Trans::N, -1.0, od.block, b2, b1);
      trsm_rec(side, uplo, trans, diag, t11, b1);
    }
  } else {
    auto b1 = b.sub(0, 0, b.rows, h);
    auto b2 = b.sub(0, h, b.rows, b.cols - h);
    if (lower_op) {
      // X2 op22 = B2; B1 -= X2 op21; X1 op11 = B1.
      trsm_rec(side, uplo, trans, diag, t22, b2);
      const OffDiag od = off_diag_low(t, trans, h);
      kernel::gemm_accumulate(Trans::N, od.trans, -1.0, b2, od.block, b1);
      trsm_rec(side, uplo, trans, diag, t11, b1);
    } else {
      trsm_rec(side, uplo, trans, diag, t11, b1);
      const OffDiag od = off_diag_up(t, trans, h);
      kernel::gemm_accumulate(Trans::N, od.trans, -1.0, b1, od.block, b2);
      trsm_rec(side, uplo, trans, diag, t22, b2);
    }
  }
}

}  // namespace

void trmm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b) {
  ensure_dim(t.rows == t.cols, "trmm: T must be square");
  const i64 n_tri = t.rows;
  ensure_dim(side == Side::Left ? b.rows == n_tri : b.cols == n_tri,
             "trmm: ", side == Side::Left ? "left" : "right",
             " operand size mismatch");

  // Scaling passes split like gemm.cpp's: ~32K element touches per chunk,
  // and never adjacent columns of a tiny B to separate threads.
  constexpr i64 kScaleChunkElems = i64{1} << 15;
  if (alpha == 0.0) {
    parallel::parallel_for_cols(b.rows, b.cols, kScaleChunkElems,
                                [&](i64 j0, i64 j1) {
      for (i64 j = j0; j < j1; ++j) {
        double* cj = b.data + j * b.ld;
        for (i64 i = 0; i < b.rows; ++i) cj[i] = 0.0;
      }
    });
  } else {
    trmm_rec(side, uplo, trans, diag, t, b);
    if (alpha != 1.0) {
      parallel::parallel_for_cols(b.rows, b.cols, kScaleChunkElems,
                                  [&](i64 j0, i64 j1) {
        for (i64 j = j0; j < j1; ++j) {
          double* cj = b.data + j * b.ld;
          for (i64 i = 0; i < b.rows; ++i) cj[i] *= alpha;
        }
      });
    }
  }
  // Dense triangular-multiply count: n(n-1)/2 off-diagonal madds plus n
  // diagonal multiplies per vector, for cols (left) / rows (right) vectors.
  const i64 vecs = side == Side::Left ? b.cols : b.rows;
  const i64 madds = vecs * (n_tri * (n_tri - 1) / 2 + n_tri);
  flops::add(2 * madds);
}

void trsm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b) {
  ensure_dim(t.rows == t.cols, "trsm: T must be square");
  const i64 n_tri = t.rows;
  ensure_dim(side == Side::Left ? b.rows == n_tri : b.cols == n_tri,
             "trsm: ", side == Side::Left ? "left" : "right",
             " operand size mismatch");

  if (alpha != 1.0) scal(alpha, b);
  trsm_rec(side, uplo, trans, diag, t, b);

  // Substitution count: n(n-1)/2 off-diagonal madds per vector, plus the
  // diagonal term -- charged unconditionally on the left (the accumulator
  // write), only for NonUnit divisions on the right.
  i64 madds;
  if (side == Side::Left) {
    madds = b.cols * (n_tri * (n_tri - 1) / 2 + n_tri);
  } else {
    madds = b.rows * (n_tri * (n_tri - 1) / 2) +
            (diag == Diag::NonUnit ? b.rows * n_tri : 0);
  }
  flops::add(2 * madds);
}

}  // namespace cacqr::lin
