#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/flops.hpp"

namespace cacqr::lin {

namespace {

/// Whether T(i,k) participates for the given uplo/trans combination, i.e.
/// whether entry (i,k) of op(T) is inside the stored triangle.
inline bool in_tri(Uplo uplo, Trans trans, i64 i, i64 k) noexcept {
  const bool lower_op =
      (uplo == Uplo::Lower) == (trans == Trans::N);  // op(T) lower?
  return lower_op ? i >= k : i <= k;
}

inline double tri_at(ConstMatrixView t, Trans trans, i64 i, i64 k) noexcept {
  return trans == Trans::N ? t(i, k) : t(k, i);
}

}  // namespace

void trmm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b) {
  ensure_dim(t.rows == t.cols, "trmm: T must be square");
  const i64 n_tri = t.rows;
  i64 madds = 0;

  if (side == Side::Left) {
    // B := alpha * op(T) * B.  Each output column independently.
    ensure_dim(b.rows == n_tri, "trmm: left operand size mismatch");
    const bool lower_op = (uplo == Uplo::Lower) == (trans == Trans::N);
    for (i64 j = 0; j < b.cols; ++j) {
      double* col = b.data + j * b.ld;
      if (lower_op) {
        // Row i depends on rows <= i: traverse bottom-up to update in place.
        for (i64 i = n_tri - 1; i >= 0; --i) {
          double acc = diag == Diag::Unit ? col[i] : tri_at(t, trans, i, i) * col[i];
          for (i64 k = 0; k < i; ++k) {
            acc += tri_at(t, trans, i, k) * col[k];
            ++madds;
          }
          col[i] = alpha * acc;
        }
      } else {
        for (i64 i = 0; i < n_tri; ++i) {
          double acc = diag == Diag::Unit ? col[i] : tri_at(t, trans, i, i) * col[i];
          for (i64 k = i + 1; k < n_tri; ++k) {
            acc += tri_at(t, trans, i, k) * col[k];
            ++madds;
          }
          col[i] = alpha * acc;
        }
      }
      madds += n_tri;  // diagonal multiplies
    }
  } else {
    // B := alpha * B * op(T).  Column j of the result mixes columns k of B
    // where op(T)(k,j) is non-zero.
    ensure_dim(b.cols == n_tri, "trmm: right operand size mismatch");
    const bool lower_op = (uplo == Uplo::Lower) == (trans == Trans::N);
    if (lower_op) {
      // Result column j depends on B columns k >= j: traverse left-to-right.
      for (i64 j = 0; j < n_tri; ++j) {
        double* cj = b.data + j * b.ld;
        const double djj =
            diag == Diag::Unit ? 1.0 : tri_at(t, trans, j, j);
        for (i64 i = 0; i < b.rows; ++i) cj[i] *= djj;
        for (i64 k = j + 1; k < n_tri; ++k) {
          const double tkj = tri_at(t, trans, k, j);
          if (tkj == 0.0) continue;
          const double* ck = b.data + k * b.ld;
          for (i64 i = 0; i < b.rows; ++i) cj[i] += tkj * ck[i];
          madds += b.rows;
        }
        if (alpha != 1.0) {
          for (i64 i = 0; i < b.rows; ++i) cj[i] *= alpha;
        }
        madds += b.rows;
      }
    } else {
      // Result column j depends on B columns k <= j: traverse right-to-left.
      for (i64 j = n_tri - 1; j >= 0; --j) {
        double* cj = b.data + j * b.ld;
        const double djj =
            diag == Diag::Unit ? 1.0 : tri_at(t, trans, j, j);
        for (i64 i = 0; i < b.rows; ++i) cj[i] *= djj;
        for (i64 k = 0; k < j; ++k) {
          const double tkj = tri_at(t, trans, k, j);
          if (tkj == 0.0) continue;
          const double* ck = b.data + k * b.ld;
          for (i64 i = 0; i < b.rows; ++i) cj[i] += tkj * ck[i];
          madds += b.rows;
        }
        if (alpha != 1.0) {
          for (i64 i = 0; i < b.rows; ++i) cj[i] *= alpha;
        }
        madds += b.rows;
      }
    }
  }
  flops::add(2 * madds);
}

void trsm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b) {
  ensure_dim(t.rows == t.cols, "trsm: T must be square");
  const i64 n_tri = t.rows;
  i64 madds = 0;

  if (alpha != 1.0) scal(alpha, b);

  if (side == Side::Left) {
    // Solve op(T) X = B column by column (forward or backward substitution).
    ensure_dim(b.rows == n_tri, "trsm: left operand size mismatch");
    const bool lower_op = (uplo == Uplo::Lower) == (trans == Trans::N);
    for (i64 j = 0; j < b.cols; ++j) {
      double* col = b.data + j * b.ld;
      if (lower_op) {
        for (i64 i = 0; i < n_tri; ++i) {
          double acc = col[i];
          for (i64 k = 0; k < i; ++k) {
            acc -= tri_at(t, trans, i, k) * col[k];
            ++madds;
          }
          col[i] = diag == Diag::Unit ? acc : acc / tri_at(t, trans, i, i);
        }
      } else {
        for (i64 i = n_tri - 1; i >= 0; --i) {
          double acc = col[i];
          for (i64 k = i + 1; k < n_tri; ++k) {
            acc -= tri_at(t, trans, i, k) * col[k];
            ++madds;
          }
          col[i] = diag == Diag::Unit ? acc : acc / tri_at(t, trans, i, i);
        }
      }
      madds += n_tri;
    }
  } else {
    // Solve X op(T) = B: process result columns in dependency order.
    ensure_dim(b.cols == n_tri, "trsm: right operand size mismatch");
    const bool lower_op = (uplo == Uplo::Lower) == (trans == Trans::N);
    if (lower_op) {
      // X(:,j) = (B(:,j) - sum_{k>j} X(:,k) T(k,j)) / T(j,j): go right-to-left.
      for (i64 j = n_tri - 1; j >= 0; --j) {
        double* cj = b.data + j * b.ld;
        for (i64 k = j + 1; k < n_tri; ++k) {
          const double tkj = tri_at(t, trans, k, j);
          if (tkj == 0.0) continue;
          const double* ck = b.data + k * b.ld;
          for (i64 i = 0; i < b.rows; ++i) cj[i] -= tkj * ck[i];
          madds += b.rows;
        }
        if (diag == Diag::NonUnit) {
          const double djj = tri_at(t, trans, j, j);
          for (i64 i = 0; i < b.rows; ++i) cj[i] /= djj;
          madds += b.rows;
        }
      }
    } else {
      for (i64 j = 0; j < n_tri; ++j) {
        double* cj = b.data + j * b.ld;
        for (i64 k = 0; k < j; ++k) {
          const double tkj = tri_at(t, trans, k, j);
          if (tkj == 0.0) continue;
          const double* ck = b.data + k * b.ld;
          for (i64 i = 0; i < b.rows; ++i) cj[i] -= tkj * ck[i];
          madds += b.rows;
        }
        if (diag == Diag::NonUnit) {
          const double djj = tri_at(t, trans, j, j);
          for (i64 i = 0; i < b.rows; ++i) cj[i] /= djj;
          madds += b.rows;
        }
      }
    }
  }
  flops::add(2 * madds);
}

}  // namespace cacqr::lin
