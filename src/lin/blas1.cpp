#include <cmath>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/flops.hpp"
#include "cacqr/lin/parallel.hpp"

namespace cacqr::lin {

void axpy(double alpha, ConstMatrixView x, MatrixView y) {
  ensure_dim(x.rows == y.rows && x.cols == y.cols, "axpy: shape mismatch");
  // Each y column has one owner and the i loop order within a column is
  // unchanged, so results are bitwise identical across thread budgets.
  parallel::parallel_for_cols(x.rows, x.cols, [&](i64 j0, i64 j1) {
    for (i64 j = j0; j < j1; ++j) {
      const double* xc = x.data + j * x.ld;
      double* yc = y.data + j * y.ld;
      for (i64 i = 0; i < x.rows; ++i) yc[i] += alpha * xc[i];
    }
  });
  flops::add(2 * x.rows * x.cols);
}

void scal(double alpha, MatrixView x) {
  parallel::parallel_for_cols(x.rows, x.cols, [&](i64 j0, i64 j1) {
    for (i64 j = j0; j < j1; ++j) {
      double* xc = x.data + j * x.ld;
      for (i64 i = 0; i < x.rows; ++i) xc[i] *= alpha;
    }
  });
  flops::add(x.rows * x.cols);
}

double dot(ConstMatrixView x, ConstMatrixView y) {
  ensure_dim(x.rows == y.rows && x.cols == y.cols, "dot: shape mismatch");
  double acc = 0.0;
  for (i64 j = 0; j < x.cols; ++j) {
    const double* xc = x.data + j * x.ld;
    const double* yc = y.data + j * y.ld;
    for (i64 i = 0; i < x.rows; ++i) acc += xc[i] * yc[i];
  }
  flops::add(2 * x.rows * x.cols);
  return acc;
}

double nrm2(ConstMatrixView x) {
  // Scaled accumulation to avoid overflow/underflow, as in LAPACK dlassq.
  double scale = 0.0;
  double ssq = 1.0;
  for (i64 j = 0; j < x.cols; ++j) {
    const double* xc = x.data + j * x.ld;
    for (i64 i = 0; i < x.rows; ++i) {
      const double v = std::fabs(xc[i]);
      if (v == 0.0) continue;
      if (scale < v) {
        ssq = 1.0 + ssq * (scale / v) * (scale / v);
        scale = v;
      } else {
        ssq += (v / scale) * (v / scale);
      }
    }
  }
  flops::add(2 * x.rows * x.cols);
  return scale * std::sqrt(ssq);
}

void gemv(Trans trans, double alpha, ConstMatrixView a, ConstMatrixView x,
          double beta, MatrixView y) {
  const i64 out_len = trans == Trans::N ? a.rows : a.cols;
  const i64 in_len = trans == Trans::N ? a.cols : a.rows;
  ensure_dim(x.cols == 1 && y.cols == 1, "gemv: x, y must be column vectors");
  ensure_dim(x.rows == in_len && y.rows == out_len, "gemv: shape mismatch");

  for (i64 i = 0; i < out_len; ++i) y.data[i] *= beta;
  if (trans == Trans::N) {
    // y += alpha * A x, traversing A by columns.
    for (i64 j = 0; j < a.cols; ++j) {
      const double ax = alpha * x.data[j];
      const double* col = a.data + j * a.ld;
      for (i64 i = 0; i < a.rows; ++i) y.data[i] += ax * col[i];
    }
  } else {
    for (i64 j = 0; j < a.cols; ++j) {
      const double* col = a.data + j * a.ld;
      double acc = 0.0;
      for (i64 i = 0; i < a.rows; ++i) acc += col[i] * x.data[i];
      y.data[j] += alpha * acc;
    }
  }
  flops::add(2 * a.rows * a.cols);
}

}  // namespace cacqr::lin
