/// \file gemm_f32.cpp
/// \brief The fp32 lane of gemm/gram and the narrow/widen conversions --
///        float twins of the corresponding pieces of gemm.cpp, with the
///        same column-granularity one-owner threading.

#include <algorithm>

#include "cacqr/lin/blas_f.hpp"
#include "cacqr/lin/flops.hpp"
#include "cacqr/lin/kernel.hpp"
#include "cacqr/lin/parallel.hpp"

namespace cacqr::lin {

namespace {

/// Same chunking contract as gemm.cpp's scale/mirror passes: column
/// granularity, ~32K element touches per chunk, one owner per column.
constexpr i64 kScaleChunkElems = i64{1} << 15;

void scale_full_f32(float beta, MatrixFView c) {
  if (beta == 1.0f) return;
  parallel::parallel_for_cols(c.rows, c.cols, kScaleChunkElems,
                              [&](i64 j0, i64 j1) {
    for (i64 j = j0; j < j1; ++j) {
      float* cc = c.data + j * c.ld;
      if (beta == 0.0f) {
        for (i64 i = 0; i < c.rows; ++i) cc[i] = 0.0f;
      } else {
        for (i64 i = 0; i < c.rows; ++i) cc[i] *= beta;
      }
    }
  });
}

void scale_lower_f32(float beta, MatrixFView c) {
  if (beta == 1.0f) return;
  parallel::parallel_for_cols(c.rows, c.cols, kScaleChunkElems,
                              [&](i64 j0, i64 j1) {
    for (i64 j = j0; j < j1; ++j) {
      float* cc = c.data + j * c.ld;
      if (beta == 0.0f) {
        for (i64 i = j; i < c.rows; ++i) cc[i] = 0.0f;
      } else {
        for (i64 i = j; i < c.rows; ++i) cc[i] *= beta;
      }
    }
  });
}

void mirror_lower_f32(MatrixFView c) {
  parallel::parallel_for_cols(c.rows, c.cols, kScaleChunkElems,
                              [&](i64 j0, i64 j1) {
    for (i64 j = j0; j < j1; ++j) {
      float* cj = c.data + j * c.ld;
      for (i64 i = 0; i < j; ++i) cj[i] = c(j, i);
    }
  });
}

}  // namespace

void narrow(ConstMatrixView a, MatrixFView b) {
  ensure_dim(a.rows == b.rows && a.cols == b.cols,
             "narrow: shape mismatch");
  parallel::parallel_for_cols(a.rows, a.cols, parallel::kMemoryBoundGrain,
                              [&](i64 j0, i64 j1) {
    for (i64 j = j0; j < j1; ++j) {
      const double* src = a.data + j * a.ld;
      float* dst = b.data + j * b.ld;
      for (i64 i = 0; i < a.rows; ++i) dst[i] = static_cast<float>(src[i]);
    }
  });
}

void widen(ConstMatrixFView a, MatrixView b) {
  ensure_dim(a.rows == b.rows && a.cols == b.cols, "widen: shape mismatch");
  parallel::parallel_for_cols(a.rows, a.cols, parallel::kMemoryBoundGrain,
                              [&](i64 j0, i64 j1) {
    for (i64 j = j0; j < j1; ++j) {
      const float* src = a.data + j * a.ld;
      double* dst = b.data + j * b.ld;
      for (i64 i = 0; i < a.rows; ++i) dst[i] = static_cast<double>(src[i]);
    }
  });
}

void gemm_f32(Trans ta, Trans tb, float alpha, ConstMatrixFView a,
              ConstMatrixFView b, float beta, MatrixFView c) {
  const i64 m = ta == Trans::N ? a.rows : a.cols;
  const i64 ka = ta == Trans::N ? a.cols : a.rows;
  const i64 kb_dim = tb == Trans::N ? b.rows : b.cols;
  const i64 n = tb == Trans::N ? b.cols : b.rows;
  ensure_dim(ka == kb_dim, "gemm_f32: inner dimensions differ (", ka,
             " vs ", kb_dim, ")");
  ensure_dim(c.rows == m && c.cols == n, "gemm_f32: output shape mismatch");
  const i64 k = ka;

  scale_full_f32(beta, c);
  if (k == 0 || m == 0 || n == 0 || alpha == 0.0f) return;

  kernel::gemm_accumulate_f32(ta, tb, alpha, a, b, c);
  flops::add(2 * m * n * k);
}

void gram_f32(float alpha, ConstMatrixFView a, float beta, MatrixFView c) {
  const i64 n = a.cols;
  const i64 m = a.rows;
  ensure_dim(c.rows == n && c.cols == n, "gram_f32: C must be n x n");
  scale_lower_f32(beta, c);
  if (alpha != 0.0f) {
    kernel::gemm_accumulate_f32(Trans::T, Trans::N, alpha, a, a, c,
                                kernel::TileFilter::Lower);
  }
  mirror_lower_f32(c);
  flops::add(m * n * (n + 1));  // same closed-form charge as lin::gram
}

}  // namespace cacqr::lin
