#include "cacqr/tune/planner.hpp"

#include <algorithm>

#include "cacqr/lin/kernel.hpp"
#include "cacqr/model/costs.hpp"
#include "cacqr/model/sweep.hpp"
#include "cacqr/support/error.hpp"

namespace cacqr::tune {

std::string ProblemKey::text() const {
  return "m" + std::to_string(m) + "_n" + std::to_string(n) + "_p" +
         std::to_string(p) + "_t" + std::to_string(threads) + "_s" +
         std::to_string(passes) + "_bc" + std::to_string(base_case) + "_" +
         precision_name(precision);
}

std::string Plan::grid() const {
  if (algo == "cqr_1d") return "p" + std::to_string(d);
  if (algo == "ca_cqr2") {
    return "c" + std::to_string(c) + "d" + std::to_string(d);
  }
  return std::to_string(pr) + "x" + std::to_string(pc) + "b" +
         std::to_string(block);
}

support::Json Plan::to_json() const {
  support::Json j = support::Json::object();
  j.set("schema", kSchemaVersion);
  j.set("algo", algo);
  j.set("c", c);
  j.set("d", d);
  j.set("pr", pr);
  j.set("pc", pc);
  j.set("block", block);
  j.set("predicted_seconds", predicted_seconds);
  j.set("measured_seconds", measured_seconds);
  j.set("source", source);
  j.set("kernel_variant", kernel_variant);
  j.set("precision", precision_name(precision));
  return j;
}

std::optional<Plan> Plan::from_json(const support::Json& j) {
  if (!j.is_object() || j["schema"].as_int(-1) != kSchemaVersion) {
    return std::nullopt;
  }
  Plan p;
  p.algo = j["algo"].as_string();
  p.c = static_cast<int>(j["c"].as_int());
  p.d = static_cast<int>(j["d"].as_int());
  p.pr = static_cast<int>(j["pr"].as_int());
  p.pc = static_cast<int>(j["pc"].as_int());
  p.block = j["block"].as_int();
  p.predicted_seconds = j["predicted_seconds"].as_number();
  p.measured_seconds = j["measured_seconds"].as_number();
  p.source = j["source"].as_string();
  p.kernel_variant = j["kernel_variant"].as_string();
  const auto prec = parse_precision(j["precision"].as_string());
  if (!prec) return std::nullopt;
  p.precision = *prec;
  // A cached plan must name a variant and a sane configuration; anything
  // else is treated as corruption (ignored by the loader).
  if (p.algo == "cqr_1d") {
    if (p.d < 1) return std::nullopt;
  } else if (p.algo == "ca_cqr2") {
    if (p.c < 1 || p.d < 1 || p.d % p.c != 0) return std::nullopt;
  } else if (p.algo == "pgeqrf_2d") {
    if (p.pr < 1 || p.pc < 1 || p.block < 1) return std::nullopt;
  } else {
    return std::nullopt;
  }
  return p;
}

Planner::Planner(MachineProfile profile, PlannerOptions opts)
    : profile_(std::move(profile)), opts_(opts) {
  ensure(opts_.top_k >= 1, "Planner: top_k must be >= 1");
}

std::vector<Plan> Planner::candidates(const ProblemKey& key) const {
  ensure(key.m >= key.n && key.n >= 1, "Planner: requires m >= n >= 1");
  ensure(key.p >= 1 && key.threads >= 1,
         "Planner: ranks and threads must be positive");
  // Score with the gamma of the micro-kernel the driver will actually
  // dispatch to: the planner's flop rate must describe the engine that
  // runs the plan, not whichever variant calibrated fastest.
  const std::string kv =
      lin::kernel::variant_name(lin::kernel::active_variant());
  const model::Machine mach = profile_.machine_for(kv, key.threads);
  const double m = static_cast<double>(key.m);
  const double n = static_cast<double>(key.n);
  // The model costs are for the 2-pass (CQR2) forms; a 1-pass or
  // shifted-3-pass driver scales the CholeskyQR families roughly
  // linearly in passes (pgeqrf ignores the knob).
  const double pass_factor =
      std::max(1, key.passes) / 2.0;
  // The precision axis: how many CholeskyQR passes run their Gram stage
  // in fp32 under this key, mirroring the driver exactly -- `mixed`
  // confines it to the first pass, `fp32` keeps it for every pass, and
  // the 3-pass shifted fallback ignores the knob (always fp64).  For
  // each affected pass the re-scored Gram stage keeps its alpha, ships
  // half the beta words (fp32 pairs riding whole 8-byte wire words), and
  // charges its flops at the variant's measured fp32-lane gamma.
  const double f32_passes =
      key.precision == Precision::fp64 || key.passes == 3 ? 0.0
      : key.precision == Precision::mixed
          ? 1.0
          : static_cast<double>(std::min(key.passes, 2));
  const model::Machine mach32 =
      profile_.machine_for(kv, key.threads, Precision::fp32);
  const auto precision_adjust = [&](double c, double d) {
    if (f32_passes == 0.0) return 0.0;
    const model::Cost gram = model::cost_gram_stage(m, n, c, d);
    const model::Cost gram32{gram.alpha, gram.beta * 0.5, gram.gamma,
                             gram.mem};
    return f32_passes * (gram32.time(mach32) - gram.time(mach));
  };
  std::vector<Plan> out;

  // Variant 1: 1D-CQR2 on all P ranks (always valid; the driver pads m
  // up to a multiple of P).
  {
    Plan p;
    p.algo = "cqr_1d";
    p.d = key.p;
    p.predicted_seconds =
        model::cost_cqr2_1d(m, n, static_cast<double>(key.p)).time(mach) *
            pass_factor +
        precision_adjust(1.0, static_cast<double>(key.p));
    p.source = "model";
    out.push_back(std::move(p));
  }

  // Variant 2: CA-CQR2 on every valid (c, d) tunable grid.  c == 1
  // duplicates 1D's communication pattern but runs CFR3D instead of the
  // local CholInv -- still a distinct executable config, so keep it.
  // Grids needing more column classes than there are columns (or whose
  // CFR3D base case n >= c^2 fails even after padding) are skipped;
  // the driver pads, but a grid with c > n can never be sensible.
  for (const auto& [c, d] : model::valid_grids(key.p)) {
    if (static_cast<i64>(c) * c > key.n || static_cast<i64>(d) > key.m) {
      continue;
    }
    Plan p;
    p.algo = "ca_cqr2";
    p.c = static_cast<int>(c);
    p.d = static_cast<int>(d);
    p.predicted_seconds =
        model::eval_cacqr2(m, n, c, d, mach).seconds * pass_factor +
        precision_adjust(static_cast<double>(c), static_cast<double>(d));
    p.source = "model";
    out.push_back(std::move(p));
  }

  // Variant 3: the ScaLAPACK-style baseline, the paper's tuning sweep:
  // power-of-two pr and blocks {16, 32, 64}.  The driver pads up to
  // block-cycle multiples, so only require one block per process.
  for (i64 pr = 1; pr <= key.p; pr *= 2) {
    if (key.p % pr != 0) continue;
    const i64 pc = key.p / pr;
    for (const i64 b : {i64{16}, i64{32}, i64{64}}) {
      if (pr * b > key.m || pc * b > key.n) continue;
      Plan p;
      p.algo = "pgeqrf_2d";
      p.pr = static_cast<int>(pr);
      p.pc = static_cast<int>(pc);
      p.block = b;
      p.predicted_seconds =
          model::eval_pgeqrf(m, n, pr, pc, b, mach).seconds;
      p.source = "model";
      out.push_back(std::move(p));
    }
  }

  // Every plan records the precision it was scored under (pgeqrf_2d has
  // no fp32 lane and its score is precision-independent, but the tag
  // still gates cache reuse uniformly).
  for (Plan& p : out) {
    p.kernel_variant = kv;
    p.precision = key.precision;
  }

  // Deterministic order: predicted time ascending; ties broken by the
  // enumeration order above (stable sort), which is itself fixed.
  std::stable_sort(out.begin(), out.end(), [](const Plan& a, const Plan& b) {
    return a.predicted_seconds < b.predicted_seconds;
  });
  return out;
}

Plan Planner::plan(const ProblemKey& key) const {
  std::vector<Plan> all = candidates(key);
  ensure(!all.empty(), "Planner: no valid candidate for ", key.text());
  return all.front();
}

}  // namespace cacqr::tune
