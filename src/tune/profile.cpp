#include "cacqr/tune/profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "cacqr/lin/parallel.hpp"

#ifdef __linux__
#include <unistd.h>
#endif

namespace cacqr::tune {

namespace {

/// A fitted coefficient must be a positive finite number to be usable as
/// a cost-model parameter.
bool usable(double v) noexcept { return std::isfinite(v) && v > 0.0; }

std::string cpu_model() {
#ifdef __linux__
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") == 0) {
      std::string v = line.substr(colon + 1);
      const auto b = v.find_first_not_of(" \t");
      return b == std::string::npos ? std::string("unknown") : v.substr(b);
    }
  }
#endif
  return "unknown";
}

std::string hostname() {
#ifdef __linux__
  char buf[256] = {};
  if (gethostname(buf, sizeof buf - 1) == 0 && buf[0] != '\0') {
    return buf;
  }
#endif
  return "unknown-host";
}

}  // namespace

std::string fnv1a_hex(std::string_view text) {
  u64 h = 14695981039346656037ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string host_fingerprint() {
  return "host:" + hostname() + "|cpu:" + cpu_model() +
         "|hw:" + std::to_string(lin::parallel::hardware_threads());
}

double MachineProfile::thread_speedup(int threads) const noexcept {
  double best = 1.0;
  for (const ThreadScaling& s : scaling) {
    if (s.threads <= threads && usable(s.speedup)) best = s.speedup;
    if (s.threads > threads) break;  // sorted by threads
  }
  return best;
}

model::Machine MachineProfile::machine_at(int threads) const {
  model::Machine m = machine;
  m.gamma_s /= thread_speedup(std::max(1, threads));
  return m;
}

model::Machine MachineProfile::machine_for(std::string_view variant,
                                           int threads,
                                           Precision precision) const {
  const bool f32 = precision != Precision::fp64;
  for (const VariantCalibration& v : variants) {
    if (v.variant != variant || !usable(v.gamma_s)) continue;
    model::Machine m = machine;
    // An unmeasured fp32 lane (gamma32_s == 0, e.g. a hand-built or
    // pre-v3 in-memory profile) conservatively reuses the fp64 rate.
    m.gamma_s = f32 && usable(v.gamma32_s) ? v.gamma32_s : v.gamma_s;
    if (f32 && usable(v.peak_gflops32)) {
      m.peak_gflops_node = v.peak_gflops32;
    } else if (usable(v.peak_gflops)) {
      m.peak_gflops_node = v.peak_gflops;
    }
    double speedup = 1.0;
    for (const ThreadScaling& s : v.scaling) {
      if (s.threads <= threads && usable(s.speedup)) speedup = s.speedup;
      if (s.threads > threads) break;  // sorted by threads
    }
    m.gamma_s /= speedup;
    return m;
  }
  return machine_at(threads);
}

std::string MachineProfile::fingerprint() const {
  // Digest every parameter that influences planning, so two profiles
  // that would ever score a candidate differently get distinct keys.
  std::string params;
  char buf[128];
  std::snprintf(buf, sizeof buf, "a=%.17g|b=%.17g|g=%.17g", machine.alpha_s,
                machine.beta_s, machine.gamma_s);
  params += buf;
  for (const ThreadScaling& s : scaling) {
    std::snprintf(buf, sizeof buf, "|t%d=%.17g", s.threads, s.speedup);
    params += buf;
  }
  for (const VariantCalibration& v : variants) {
    params += "|kv:" + v.variant;
    std::snprintf(buf, sizeof buf, "=%.17g,g32=%.17g", v.gamma_s,
                  v.gamma32_s);
    params += buf;
    for (const ThreadScaling& s : v.scaling) {
      std::snprintf(buf, sizeof buf, ",t%d=%.17g", s.threads, s.speedup);
      params += buf;
    }
  }
  if (!kernel_variant.empty()) params += "|sel:" + kernel_variant;
  return host + "|prof:" + fnv1a_hex(params);
}

support::Json MachineProfile::to_json() const {
  support::Json j = support::Json::object();
  j.set("schema", kSchemaVersion);
  j.set("kind", "cacqr-machine-profile");
  j.set("host", host);
  j.set("calibrated", calibrated);
  j.set("name", machine.name);
  j.set("alpha_s", machine.alpha_s);
  j.set("beta_s", machine.beta_s);
  j.set("gamma_s", machine.gamma_s);
  j.set("kernel_variant", kernel_variant);
  support::Json ks = support::Json::array();
  for (const KernelSample& s : kernels) {
    support::Json e = support::Json::object();
    e.set("kernel", s.kernel);
    e.set("variant", s.variant);
    e.set("m", s.m);
    e.set("n", s.n);
    e.set("k", s.k);
    e.set("gflops", s.gflops);
    ks.push_back(std::move(e));
  }
  j.set("kernels", std::move(ks));
  support::Json sc = support::Json::array();
  for (const ThreadScaling& s : scaling) {
    support::Json e = support::Json::object();
    e.set("threads", s.threads);
    e.set("speedup", s.speedup);
    sc.push_back(std::move(e));
  }
  j.set("scaling", std::move(sc));
  support::Json vs = support::Json::array();
  for (const VariantCalibration& v : variants) {
    support::Json e = support::Json::object();
    e.set("variant", v.variant);
    e.set("gamma_s", v.gamma_s);
    e.set("peak_gflops", v.peak_gflops);
    e.set("gamma32_s", v.gamma32_s);
    e.set("peak_gflops32", v.peak_gflops32);
    support::Json vsc = support::Json::array();
    for (const ThreadScaling& s : v.scaling) {
      support::Json t = support::Json::object();
      t.set("threads", s.threads);
      t.set("speedup", s.speedup);
      vsc.push_back(std::move(t));
    }
    e.set("scaling", std::move(vsc));
    vs.push_back(std::move(e));
  }
  j.set("variants", std::move(vs));
  return j;
}

std::optional<MachineProfile> MachineProfile::from_json(
    const support::Json& j) {
  if (!j.is_object() || j["schema"].as_int(-1) != kSchemaVersion) {
    return std::nullopt;
  }
  MachineProfile p;
  p.host = j["host"].as_string();
  p.calibrated = j["calibrated"].as_string();
  p.machine.name = j["name"].as_string();
  p.machine.alpha_s = j["alpha_s"].as_number();
  p.machine.beta_s = j["beta_s"].as_number();
  p.machine.gamma_s = j["gamma_s"].as_number();
  if (!usable(p.machine.alpha_s) || !usable(p.machine.beta_s) ||
      !usable(p.machine.gamma_s) || p.host.empty()) {
    return std::nullopt;
  }
  p.kernel_variant = j["kernel_variant"].as_string();
  const support::Json& ks = j["kernels"];
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const support::Json& e = ks.at(i);
    p.kernels.push_back({e["kernel"].as_string(), e["m"].as_int(),
                         e["n"].as_int(), e["k"].as_int(),
                         e["gflops"].as_number(),
                         e["variant"].as_string()});
  }
  const support::Json& sc = j["scaling"];
  for (std::size_t i = 0; i < sc.size(); ++i) {
    const support::Json& e = sc.at(i);
    const int t = static_cast<int>(e["threads"].as_int());
    const double s = e["speedup"].as_number();
    if (t < 1 || !usable(s)) return std::nullopt;
    p.scaling.push_back({t, s});
  }
  std::sort(p.scaling.begin(), p.scaling.end(),
            [](const ThreadScaling& a, const ThreadScaling& b) {
              return a.threads < b.threads;
            });
  const support::Json& vs = j["variants"];
  for (std::size_t i = 0; i < vs.size(); ++i) {
    const support::Json& e = vs.at(i);
    VariantCalibration v;
    v.variant = e["variant"].as_string();
    v.gamma_s = e["gamma_s"].as_number();
    v.peak_gflops = e["peak_gflops"].as_number();
    // 0 is a legal "never measured" marker for the fp32 lane; only the
    // fp64 gamma is mandatory.
    v.gamma32_s = e["gamma32_s"].as_number();
    v.peak_gflops32 = e["peak_gflops32"].as_number();
    if (v.variant.empty() || !usable(v.gamma_s)) return std::nullopt;
    const support::Json& vsc = e["scaling"];
    for (std::size_t q = 0; q < vsc.size(); ++q) {
      const support::Json& t = vsc.at(q);
      const int th = static_cast<int>(t["threads"].as_int());
      const double sp = t["speedup"].as_number();
      if (th < 1 || !usable(sp)) return std::nullopt;
      v.scaling.push_back({th, sp});
    }
    std::sort(v.scaling.begin(), v.scaling.end(),
              [](const ThreadScaling& a, const ThreadScaling& b) {
                return a.threads < b.threads;
              });
    p.variants.push_back(std::move(v));
  }
  return p;
}

MachineProfile generic_profile() {
  MachineProfile p;
  p.host = host_fingerprint();
  p.calibrated = "generic";
  p.machine.name = "generic (uncalibrated)";
  // Nominal laptop/CI-container-class constants: ~5 sustained GF/s per
  // rank, ~5 GB/s effective shared-memory bandwidth, ~2 us per message.
  // Only the RATIOS steer planning; calibrate() replaces all three with
  // measurements.
  p.machine.ranks_per_node = 1;
  p.machine.peak_gflops_node = 5.0;
  p.machine.gamma_s = 1.0 / 5e9;
  p.machine.beta_s = 8.0 / 5e9;
  p.machine.alpha_s = 2.0e-6;
  p.scaling = {{1, 1.0}};
  // Nominal single-variant table: the fallback has measured nothing, so
  // every variant the planner might ask about resolves to the same
  // machine via the machine_for fallback; only "generic" is listed.  The
  // nominal fp32 lane assumes the textbook 2x rate (twice the SIMD lanes
  // per register) -- calibrate() replaces it with a measurement.
  p.kernel_variant = "generic";
  p.variants = {{"generic", p.machine.gamma_s, p.machine.peak_gflops_node,
                 p.machine.gamma_s / 2.0, 2.0 * p.machine.peak_gflops_node,
                 {{1, 1.0}}}};
  return p;
}

}  // namespace cacqr::tune
