#include "cacqr/tune/calibrate.hpp"

#include <algorithm>
#include <cmath>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/blas_f.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/kernel.hpp"
#include "cacqr/lin/parallel.hpp"
#include "cacqr/model/costs.hpp"
#include "cacqr/rt/comm.hpp"
#include "cacqr/support/timer.hpp"

namespace cacqr::tune {

namespace {

namespace parallel = lin::parallel;

/// Best-of-reps wall time of `body` (one untimed warmup first).
template <class Body>
double best_seconds(int reps, const Body& body) {
  body();  // warmup: arenas grow, caches fill
  double best = 1e300;
  for (int r = 0; r < std::max(1, reps); ++r) {
    WallTimer t;
    body();
    best = std::min(best, t.seconds());
  }
  return best;
}

/// RAII budget override so calibration kernels run at a chosen worker
/// budget regardless of CACQR_THREADS.
struct BudgetGuard {
  explicit BudgetGuard(int budget) : prev(parallel::thread_budget()) {
    parallel::set_thread_budget(budget);
  }
  ~BudgetGuard() { parallel::set_thread_budget(prev); }
  int prev;
};

/// RAII micro-kernel variant override so each sweep measures one specific
/// variant regardless of CACQR_KERNEL; restores the prior dispatch on
/// exit.  Only supported variants are ever swept, so this cannot throw in
/// the loop below.
struct VariantGuard {
  explicit VariantGuard(lin::kernel::Variant v)
      : prev(lin::kernel::set_kernel_variant(v)) {}
  ~VariantGuard() { lin::kernel::set_kernel_variant(prev); }
  lin::kernel::Variant prev;
};

/// One timed gemm C = A * B at worker budget `threads`; returns GFLOP/s.
double time_gemm(i64 m, i64 k, i64 n, int threads, int reps) {
  BudgetGuard guard(threads);
  const lin::Matrix a = lin::hashed_matrix(11, m, k);
  const lin::Matrix b = lin::hashed_matrix(12, k, n);
  lin::Matrix c(m, n);
  const double secs = best_seconds(reps, [&] {
    lin::gemm(lin::Trans::N, lin::Trans::N, 1.0, a, b, 0.0, c);
  });
  return model::flops_gemm(static_cast<double>(m), static_cast<double>(k),
                           static_cast<double>(n)) /
         secs * 1e-9;
}

/// One timed gram C = A^T A (the Gram kernel on CQR's critical path).
double time_gram(i64 m, i64 n, int reps) {
  BudgetGuard guard(1);
  const lin::Matrix a = lin::hashed_matrix(13, m, n);
  lin::Matrix c(n, n);
  const double secs =
      best_seconds(reps, [&] { lin::gram(1.0, a, 0.0, c); });
  return model::flops_gram(static_cast<double>(m), static_cast<double>(n)) /
         secs * 1e-9;
}

/// fp32-lane twin of time_gemm: same shapes, same closed-form flop count
/// (the fp32 kernels charge fp64 flop counts -- gamma counts operations),
/// so the returned GFLOP/s is directly comparable to the fp64 rate.
double time_gemm_f32(i64 m, i64 k, i64 n, int threads, int reps) {
  BudgetGuard guard(threads);
  lin::MatrixF a = lin::MatrixF::uninit(m, k);
  lin::MatrixF b = lin::MatrixF::uninit(k, n);
  lin::narrow(lin::hashed_matrix(11, m, k), a);
  lin::narrow(lin::hashed_matrix(12, k, n), b);
  lin::MatrixF c(m, n);
  const double secs = best_seconds(reps, [&] {
    lin::gemm_f32(lin::Trans::N, lin::Trans::N, 1.0f, a, b, 0.0f, c);
  });
  return model::flops_gemm(static_cast<double>(m), static_cast<double>(k),
                           static_cast<double>(n)) /
         secs * 1e-9;
}

/// fp32-lane twin of time_gram.
double time_gram_f32(i64 m, i64 n, int reps) {
  BudgetGuard guard(1);
  lin::MatrixF a = lin::MatrixF::uninit(m, n);
  lin::narrow(lin::hashed_matrix(13, m, n), a);
  lin::MatrixF c(n, n);
  const double secs =
      best_seconds(reps, [&] { lin::gram_f32(1.0f, a, 0.0f, c); });
  return model::flops_gram(static_cast<double>(m), static_cast<double>(n)) /
         secs * 1e-9;
}

/// Max-over-ranks wall time of one Allreduce of `words` doubles over a
/// team of `ranks` ranks on `transport`, best of `reps` (barrier-fenced,
/// pools warm inside one Runtime::run).  Each rank reports its best time
/// through the publish channel -- captured-variable writes would be lost
/// under the process transports.
double time_allreduce(int ranks, i64 words, int reps,
                      rt::TransportKind transport) {
  const rt::RunOutput out = rt::Runtime::run_collect(
      ranks,
      [&](rt::Comm& comm) {
        std::vector<double> buf(static_cast<std::size_t>(words), 1.0);
        double best = 1e300;
        for (int r = 0; r <= reps; ++r) {
          comm.barrier();
          WallTimer t;
          comm.allreduce_sum(buf);
          comm.barrier();
          const double dt = t.seconds();
          if (r > 0) best = std::min(best, dt);  // rep 0 is the warmup
        }
        comm.publish({&best, 1});
      },
      rt::Machine::counting(), 1, transport);
  double worst = 0.0;
  for (const std::vector<double>& blob : out.published) {
    worst = std::max(worst, blob.empty() ? 0.0 : blob.front());
  }
  return worst;
}

/// Least-squares fit of t = A + B * w over (w, t) pairs.
void fit_affine(const std::vector<std::pair<double, double>>& pts, double* a,
                double* b) {
  const double n = static_cast<double>(pts.size());
  double sw = 0, st = 0, sww = 0, swt = 0;
  for (const auto& [w, t] : pts) {
    sw += w;
    st += t;
    sww += w * w;
    swt += w * t;
  }
  const double det = n * sww - sw * sw;
  if (det <= 0.0) {
    *a = 0.0;
    *b = 0.0;
    return;
  }
  *b = (n * swt - sw * st) / det;
  *a = (st - *b * sw) / n;
}

}  // namespace

MachineProfile calibrate(const CalibrateOptions& opts) {
  ensure(opts.ranks >= 2, "calibrate: collective fit needs >= 2 ranks");
  MachineProfile p = generic_profile();  // start from the fallback shape
  p.calibrated = "measured";
  p.machine.name = "calibrated: " + p.host;
  p.kernels.clear();
  const int reps = std::max(1, opts.quick ? opts.reps - 1 : opts.reps);

  // ---- gamma: per-thread kernel rates, swept once per host-executable
  // micro-kernel variant (VariantGuard forces each in turn).  Square
  // gemm bounds the peak; the tall-skinny gemm and gram match CA-CQR2's
  // local shapes.  Each variant gets its own fitted gamma and thread
  // scaling; the fastest variant backs the profile's top-level machine.
  const i64 sq = opts.quick ? 192 : 384;
  const i64 tall_m = opts.quick ? 2048 : 8192;
  const i64 tall_n = opts.quick ? 48 : 96;
  const int hw = parallel::hardware_threads();
  const int max_t =
      std::min(opts.max_threads > 0 ? opts.max_threads : hw, hw);
  p.variants.clear();
  for (const lin::kernel::Variant v : lin::kernel::supported_variants()) {
    const VariantGuard vguard(v);
    const std::string vname = lin::kernel::variant_name(v);
    VariantCalibration cal;
    cal.variant = vname;
    double best_rate = 0.0;
    double base_gf = 0.0;
    {
      const double gf = time_gemm(sq, sq, sq, 1, reps);
      p.kernels.push_back({"gemm_nn", sq, sq, sq, gf, vname});
      best_rate = std::max(best_rate, gf);
      base_gf = gf;
    }
    {
      const double gf = time_gemm(tall_m, tall_n, tall_n, 1, reps);
      p.kernels.push_back({"gemm_nn", tall_m, tall_n, tall_n, gf, vname});
      best_rate = std::max(best_rate, gf);
    }
    {
      const double gf = time_gram(tall_m, tall_n, reps);
      p.kernels.push_back({"gram", tall_m, tall_n, 0, gf, vname});
      best_rate = std::max(best_rate, gf);
    }
    // The model charges flops at the sustained rate of the level-3 core;
    // floor at 0.1 GF/s so a pathological measurement can't explode the
    // fitted gamma.
    cal.gamma_s = 1.0 / (std::max(best_rate, 0.1) * 1e9);
    cal.peak_gflops = best_rate;

    // The fp32 lane of the same variant: identical shapes, closed-form
    // flop counts, and forced dispatch, so gamma32 is the per-precision
    // rate the planner's mixed-precision scoring needs.
    double best32 = 0.0;
    {
      const double gf = time_gemm_f32(sq, sq, sq, 1, reps);
      p.kernels.push_back({"gemm_nn_f32", sq, sq, sq, gf, vname});
      best32 = std::max(best32, gf);
    }
    {
      const double gf = time_gemm_f32(tall_m, tall_n, tall_n, 1, reps);
      p.kernels.push_back({"gemm_nn_f32", tall_m, tall_n, tall_n, gf, vname});
      best32 = std::max(best32, gf);
    }
    {
      const double gf = time_gram_f32(tall_m, tall_n, reps);
      p.kernels.push_back({"gram_f32", tall_m, tall_n, 0, gf, vname});
      best32 = std::max(best32, gf);
    }
    cal.gamma32_s = 1.0 / (std::max(best32, 0.1) * 1e9);
    cal.peak_gflops32 = best32;

    // Per-variant thread scaling: the square gemm at growing budgets.
    cal.scaling = {{1, 1.0}};
    for (int t = 2; t <= max_t; t *= 2) {
      const double gf = time_gemm(sq, sq, sq, t, reps);
      // Clamp to >= 1: a budget can't be modeled slower than sequential
      // (the planner would otherwise prefer lying about thread counts).
      cal.scaling.push_back({t, std::max(1.0, gf / base_gf)});
    }
    p.variants.push_back(std::move(cal));
  }

  // The profile's top-level machine is backed by the fastest variant --
  // the one auto dispatch would want and the planner's default score.
  const VariantCalibration* best = &p.variants.front();
  for (const VariantCalibration& cal : p.variants) {
    if (cal.peak_gflops > best->peak_gflops) best = &cal;
  }
  p.kernel_variant = best->variant;
  p.machine.gamma_s = best->gamma_s;
  p.machine.peak_gflops_node = best->peak_gflops;
  p.scaling = best->scaling;

  // ---- alpha/beta: Allreduce timings vs payload size, affine fit.
  const std::vector<i64> sizes =
      opts.quick ? std::vector<i64>{256, 8192}
                 : std::vector<i64>{256, 4096, 32768};
  std::vector<std::pair<double, double>> pts;
  for (const i64 w : sizes) {
    pts.emplace_back(static_cast<double>(w),
                     time_allreduce(opts.ranks, w, reps, opts.transport));
  }
  double fit_a = 0.0;
  double fit_b = 0.0;
  fit_affine(pts, &fit_a, &fit_b);
  const double lg_p = std::ceil(std::log2(static_cast<double>(opts.ranks)));
  // Allreduce = 2 ceil(lg P) alpha + 2 w beta (comm.hpp).  Floors keep a
  // noisy fit physical: >= 10 ns per message, >= 8 bytes / 100 GB/s.
  p.machine.alpha_s = std::max(fit_a / (2.0 * std::max(lg_p, 1.0)), 1e-8);
  p.machine.beta_s = std::max(fit_b / 2.0, 8.0 / 100e9);
  return p;
}

}  // namespace cacqr::tune
