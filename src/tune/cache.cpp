#include "cacqr/tune/cache.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <mutex>

namespace cacqr::tune {

namespace {

constexpr int kCacheSchema = 1;

/// Process-wide lock over the cache files: concurrent factorize drivers
/// (the serving scheduler runs many per process) must not interleave the
/// read-merge-write in store() or read a file mid-rename from a sibling
/// thread.  Cross-process writers are still handled by the verify-retry
/// below; this mutex removes the in-process races TSAN would flag.
/// Leaked: rank threads may outlive static destructors.
std::mutex& file_mutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

/// The versioned envelope of a plans file; returns a fresh empty one
/// when the existing file is absent, corrupt, or from another schema.
support::Json load_or_new_plans_file(const std::string& path,
                                     const std::string& fingerprint) {
  if (auto j = support::read_json_file(path)) {
    if (j->is_object() && (*j)["schema"].as_int(-1) == kCacheSchema &&
        (*j)["fingerprint"].as_string() == fingerprint &&
        (*j)["plans"].is_object()) {
      return std::move(*j);
    }
  }
  support::Json fresh = support::Json::object();
  fresh.set("schema", kCacheSchema);
  fresh.set("kind", "cacqr-plan-cache");
  fresh.set("fingerprint", fingerprint);
  fresh.set("plans", support::Json::object());
  return fresh;
}

}  // namespace

PlanCache::PlanCache(std::string dir) : dir_(std::move(dir)) {}

PlanCache PlanCache::from_env() {
  const char* dir = std::getenv("CACQR_TUNE_DIR");
  return dir != nullptr && *dir != '\0' ? PlanCache(dir) : PlanCache();
}

std::string PlanCache::plans_path(const std::string& fingerprint) const {
  return dir_ + "/plans-" + fnv1a_hex(fingerprint) + ".json";
}

std::string PlanCache::profile_path(const std::string& host) const {
  return dir_ + "/profile-" + fnv1a_hex(host) + ".json";
}

std::optional<Plan> PlanCache::load(const std::string& fingerprint,
                                    const ProblemKey& key) const {
  if (!enabled()) return std::nullopt;
  const std::lock_guard<std::mutex> lock(file_mutex());
  auto j = support::read_json_file(plans_path(fingerprint));
  if (!j || !j->is_object() || (*j)["schema"].as_int(-1) != kCacheSchema ||
      (*j)["fingerprint"].as_string() != fingerprint) {
    return std::nullopt;
  }
  auto plan = Plan::from_json((*j)["plans"][key.text()]);
  if (plan) plan->source = "cache";
  return plan;
}

void PlanCache::store(const std::string& fingerprint, const ProblemKey& key,
                      const Plan& plan) const {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(file_mutex());
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best-effort
  const std::string path = plans_path(fingerprint);

  // Read-merge-write with a bounded verify-retry: two processes storing
  // different keys near-simultaneously both rename complete files, so
  // one rename can shadow the other's entry; re-reading and re-merging
  // once recovers it.  Still best-effort -- a lost entry only costs a
  // re-plan, never correctness.
  for (int attempt = 0; attempt < 3; ++attempt) {
    support::Json file = load_or_new_plans_file(path, fingerprint);

    // Rebuild the plans object with sorted keys: serialization stays
    // deterministic regardless of insertion history.
    std::vector<std::pair<std::string, support::Json>> entries;
    for (const auto& [k, v] : file["plans"].members()) {
      if (k != key.text()) entries.emplace_back(k, v);
    }
    entries.emplace_back(key.text(), plan.to_json());
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    support::Json plans = support::Json::object();
    for (auto& [k, v] : entries) plans.set(k, std::move(v));
    file.set("plans", std::move(plans));
    if (!support::write_json_file(path, file)) return;

    // Verify our entry survived any concurrent rename; retry otherwise.
    if (auto check = support::read_json_file(path);
        check && (*check)["plans"].has(key.text())) {
      return;
    }
  }
}

std::optional<MachineProfile> PlanCache::load_profile(
    const std::string& host) const {
  if (!enabled()) return std::nullopt;
  const std::lock_guard<std::mutex> lock(file_mutex());
  auto j = support::read_json_file(profile_path(host));
  if (!j) return std::nullopt;
  auto p = MachineProfile::from_json(*j);
  if (p && p->host != host) return std::nullopt;  // stale cross-host file
  return p;
}

void PlanCache::store_profile(const MachineProfile& profile) const {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(file_mutex());
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  (void)support::write_json_file(profile_path(profile.host),
                                 profile.to_json());
}

}  // namespace cacqr::tune
