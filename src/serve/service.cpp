#include "cacqr/serve/service.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <span>
#include <string>

#include "cacqr/core/batched.hpp"
#include "cacqr/lin/parallel.hpp"
#include "cacqr/lin/util.hpp"
#include "cacqr/obs/metrics.hpp"
#include "cacqr/obs/trace.hpp"
#include "cacqr/support/error.hpp"
#include "cacqr/support/timer.hpp"

namespace cacqr::serve {

namespace {

using JobPtr = std::shared_ptr<detail::Job>;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const long n = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || n < 1) return fallback;
  return static_cast<std::size_t>(n);
}

/// Process-wide allocator of arena-attribution groups: each service
/// claims one lin::parallel task group per rank lane.  Starts at 1 --
/// group 0 is the unattributed default everything else runs under.
std::atomic<int> g_group_seq{1};

/// The batched-lane routing rule.  Eligible jobs execute via the stacked
/// 1D driver (core/batched.hpp) whether or not they share a round with
/// batch mates, so batching can only change WHICH sweep a job rides,
/// never its bits.  Everything else -- explicit grids, non-heuristic
/// plan modes (the plan-cache hot path), shifted-only passes, panels too
/// square or too wide to win from alpha amortization -- runs the
/// ordinary factorize driver.
bool batch_eligible(const JobOptions& o, i64 rows, i64 cols,
                    const ServiceOptions& so) {
  return o.c == 0 && o.d == 0 &&
         o.plan_mode == core::PlanMode::heuristic && o.passes <= 2 &&
         cols <= so.batch_max_n && rows >= so.batch_min_aspect * cols;
}

/// Jobs fuse into one sweep only when their panels share a column count
/// and their options are indistinguishable to the batched driver (the
/// kernel variant is process-wide, so it needs no key).
bool same_batch_key(const detail::Job& a, const detail::Job& b) {
  return a.a.cols() == b.a.cols() && a.opts.passes == b.opts.passes &&
         a.opts.auto_shift == b.opts.auto_shift &&
         a.opts.base_case == b.opts.base_case &&
         a.opts.precision == b.opts.precision;
}

/// One dispatch group of a round: a batched-lane sweep (>= 1 compatible
/// jobs, one stacked call) or a single ordinary-driver job.
struct Group {
  std::vector<JobPtr> jobs;
  bool batched_lane = false;
};

/// Cached registry handles for the service's instruments (lookup is
/// mutex-guarded; the submit/dispatch paths must not pay it per job).
/// Leaked with the registry itself.
struct ServeMetrics {
  obs::Counter* admitted[3];
  obs::Counter* rejected[3];
  obs::Gauge* queue_depth;
  obs::Gauge* queue_depth_high_water;
  obs::Histogram* wait_seconds;
  obs::Histogram* exec_seconds;
  obs::Histogram* batch_size;
};

ServeMetrics& serve_metrics() {
  static ServeMetrics* m = [] {
    auto* s = new ServeMetrics();
    auto& r = obs::Registry::global();
    const char* cls[3] = {"high", "normal", "low"};
    for (int i = 0; i < 3; ++i) {
      s->admitted[i] = &r.counter(std::string("serve.admitted.") + cls[i]);
      s->rejected[i] = &r.counter(std::string("serve.rejected.") + cls[i]);
    }
    s->queue_depth = &r.gauge("serve.queue_depth");
    s->queue_depth_high_water = &r.gauge("serve.queue_depth_high_water");
    const double lat[] = {1e-4, 3e-4, 1e-3, 3e-3, 1e-2,
                          3e-2, 0.1,  0.3,  1.0,  3.0, 10.0};
    s->wait_seconds = &r.histogram("serve.wait_seconds", lat);
    s->exec_seconds = &r.histogram("serve.exec_seconds", lat);
    const double sizes[] = {1, 2, 4, 8, 16, 32};
    s->batch_size = &r.histogram("serve.batch_size", sizes);
    return s;
  }();
  return *m;
}

/// Closes a job's open async trace spans and ends its "job" envelope.
/// Exactly-once via trace_state; safe to call from any finisher (normal
/// completion and the engine-death drain race here).
void trace_job_end(detail::Job& j, JobStatus terminal) {
  if (j.trace_id == 0) return;
  const int st = j.trace_state.exchange(3, std::memory_order_acq_rel);
  if (st == 0 || st == 3) return;
  if (st == 1) obs::async_end("serve", "queued", j.trace_id);
  if (st == 2) obs::async_end("serve", "run", j.trace_id);
  obs::async_end("serve", "job", j.trace_id,
                 {{"status", static_cast<double>(static_cast<int>(terminal))}});
}

core::FactorizeOptions to_factorize_options(const JobOptions& o) {
  core::FactorizeOptions fo;
  fo.c = o.c;
  fo.d = o.d;
  fo.base_case = o.base_case;
  fo.passes = o.passes;
  fo.auto_shift = o.auto_shift;
  fo.precision = o.precision;
  fo.plan_mode = o.plan_mode;
  return fo;
}

}  // namespace

/// Scheduler state shared between client threads and the engine ranks
/// (modeled transport: the ranks are threads of this process, so plain
/// mutex/cv handoff is the whole protocol).
struct FactorizeService::Shared {
  // Admission (clients and rank 0), guarded by `mu`.
  std::mutex mu;
  std::condition_variable cv_submit;  ///< wakes rank 0: work or shutdown
  std::array<std::deque<JobPtr>, 3> queues;  ///< by Priority, FIFO each
  std::size_t queued = 0;
  bool stopping = false;
  u64 next_seq = 0;
  ServiceStats stats;

  // Round handoff (rank 0 publishes, ranks 1.. follow), guarded by
  // `round_mu`.  `round` is stable from the seq bump until every rank
  // passes the end-of-round barrier.
  std::mutex round_mu;
  std::condition_variable cv_round;
  u64 round_seq = 0;
  bool stop_round = false;
  std::vector<Group> round;
};

FactorizeService::FactorizeService(ServiceOptions opts) : opts_(opts) {
  ensure(opts_.ranks >= 1, "serve: ranks must be >= 1");
  if (opts_.queue_depth == 0) {
    opts_.queue_depth = env_size("CACQR_SERVE_QUEUE_DEPTH", 64);
  }
  if (opts_.batch_window == 0) {
    opts_.batch_window = env_size("CACQR_SERVE_BATCH_WINDOW", 8);
  }
  if (!opts_.batching) opts_.batch_window = 1;
  group_base_ = g_group_seq.fetch_add(opts_.ranks, std::memory_order_relaxed);
  shared_ = std::make_unique<Shared>();
  engine_ = std::thread([this] { engine_main(); });
}

FactorizeService::~FactorizeService() { shutdown(); }

JobHandle FactorizeService::submit(lin::ConstMatrixView a, JobOptions opts) {
  ensure_dim(a.rows >= a.cols && a.cols >= 1,
             "serve: submit requires m >= n >= 1");
  ensure(opts.passes >= 1 && opts.passes <= 3,
         "serve: passes must be 1, 2 or 3");
  auto job = std::make_shared<detail::Job>();
  job->a = lin::materialize(a);
  job->opts = opts;

  Shared& sh = *shared_;
  const int cls = static_cast<int>(opts.priority);
  std::size_t depth_now = 0;
  {
    const std::lock_guard<std::mutex> lock(sh.mu);
    ensure(!sh.stopping, "serve: submit after shutdown");
    if (sh.queued >= opts_.queue_depth) {
      // Deterministic backpressure: the handle is terminal before
      // submit() returns, never blocked and never silently dropped.
      ++sh.stats.rejected;
      ++sh.stats.rejected_by_class[cls];
      serve_metrics().rejected[cls]->add(1);
      if (obs::trace_on()) {
        obs::instant("serve", "reject",
                     {{"priority", static_cast<double>(cls)},
                      {"n", static_cast<double>(job->a.cols())}});
      }
      job->finish(JobStatus::rejected, {},
                  std::make_exception_ptr(Error(
                      "serve: queue full (depth " +
                      std::to_string(opts_.queue_depth) + "), job rejected")));
      return JobHandle(job);
    }
    job->seq = sh.next_seq++;
    sh.queues[cls].push_back(job);
    ++sh.queued;
    ++sh.stats.submitted;
    ++sh.stats.admitted_by_class[cls];
    sh.stats.max_queue_depth = std::max(sh.stats.max_queue_depth, sh.queued);
    depth_now = sh.queued;
  }
  serve_metrics().admitted[cls]->add(1);
  serve_metrics().queue_depth->set(static_cast<double>(depth_now));
  serve_metrics().queue_depth_high_water->record_max(
      static_cast<double>(depth_now));
  if (obs::trace_on()) {
    // One "job" envelope per admission, with a nested "queued" phase the
    // dispatcher closes; the counter series charts backlog over time.
    job->trace_id = obs::new_async_id();
    job->trace_state.store(1, std::memory_order_release);
    obs::async_begin("serve", "job", job->trace_id,
                     {{"seq", static_cast<double>(job->seq)},
                      {"priority", static_cast<double>(cls)},
                      {"m", static_cast<double>(job->a.rows())},
                      {"n", static_cast<double>(job->a.cols())}});
    obs::async_begin("serve", "queued", job->trace_id);
    obs::counter("serve", "queue_depth", static_cast<double>(depth_now));
  }
  sh.cv_submit.notify_one();
  return JobHandle(job);
}

void FactorizeService::shutdown() {
  Shared& sh = *shared_;
  {
    const std::lock_guard<std::mutex> lock(sh.mu);
    sh.stopping = true;
  }
  sh.cv_submit.notify_all();
  if (engine_.joinable()) engine_.join();
}

ServiceStats FactorizeService::stats() const {
  const std::lock_guard<std::mutex> lock(shared_->mu);
  ServiceStats out = shared_->stats;
  out.queue_depth = shared_->queued;
  return out;
}

void FactorizeService::engine_main() {
  Shared& sh = *shared_;
  try {
    const auto rank_body = [this, &sh](rt::Comm& world) {
      // Tag this rank lane for packing-arena attribution: growth on this
      // thread (and on its pool workers, which adopt the group per
      // region) is charged to arena_group(rank).
      const int prev_group =
          lin::parallel::set_task_group(group_base_ + world.rank());
      u64 seen = 0;
      for (;;) {
        if (world.rank() == 0) {
          std::vector<Group> round;
          bool stop = false;
          {
            std::unique_lock<std::mutex> lock(sh.mu);
            sh.cv_submit.wait(
                lock, [&] { return sh.queued > 0 || sh.stopping; });
            if (sh.queued == 0) {
              stop = true;  // stopping and drained
            } else {
              // Dispatch window: FIFO head of the highest non-empty
              // class (strict priority, one class per round).
              for (auto& q : sh.queues) {
                std::size_t taken = 0;
                while (!q.empty() && taken < opts_.batch_window) {
                  JobPtr j = std::move(q.front());
                  q.pop_front();
                  --sh.queued;
                  ++taken;
                  // Merge into an open compatible sweep, else new group.
                  Group* home = nullptr;
                  if (opts_.batching &&
                      batch_eligible(j->opts, j->a.rows(), j->a.cols(),
                                     opts_)) {
                    for (Group& g : round) {
                      if (g.batched_lane &&
                          same_batch_key(*g.jobs.front(), *j)) {
                        home = &g;
                        break;
                      }
                    }
                    if (home == nullptr) {
                      round.push_back(Group{{}, true});
                      home = &round.back();
                    }
                  } else {
                    round.push_back(Group{{}, false});
                    home = &round.back();
                  }
                  j->queue_seconds = j->since_submit.seconds();
                  {
                    const std::lock_guard<std::mutex> jlock(j->mu);
                    j->status = JobStatus::running;
                  }
                  serve_metrics().wait_seconds->observe(j->queue_seconds);
                  if (j->trace_id != 0) {
                    // queued -> run handoff on the job's async track.
                    int expected = 1;
                    if (j->trace_state.compare_exchange_strong(
                            expected, 2, std::memory_order_acq_rel)) {
                      obs::async_end("serve", "queued", j->trace_id);
                      obs::async_begin("serve", "run", j->trace_id);
                    }
                  }
                  home->jobs.push_back(std::move(j));
                }
                if (!round.empty()) break;
              }
              ++sh.stats.rounds;
              serve_metrics().queue_depth->set(
                  static_cast<double>(sh.queued));
              if (obs::trace_on()) {
                std::size_t jobs = 0;
                std::size_t batched = 0;
                for (const Group& g : round) {
                  jobs += g.jobs.size();
                  if (g.batched_lane) batched += g.jobs.size();
                }
                obs::instant("serve", "round",
                             {{"groups", static_cast<double>(round.size())},
                              {"jobs", static_cast<double>(jobs)},
                              {"batched", static_cast<double>(batched)}});
                obs::counter("serve", "queue_depth",
                             static_cast<double>(sh.queued));
              }
            }
          }
          {
            const std::lock_guard<std::mutex> lock(sh.round_mu);
            sh.round = std::move(round);
            sh.stop_round = stop;
            ++sh.round_seq;
          }
          sh.cv_round.notify_all();
        }

        const std::vector<Group>* round = nullptr;
        bool stop = false;
        {
          std::unique_lock<std::mutex> lock(sh.round_mu);
          sh.cv_round.wait(lock, [&] { return sh.round_seq > seen; });
          seen = sh.round_seq;
          round = &sh.round;
          stop = sh.stop_round;
        }
        if (stop) break;

        for (const Group& g : *round) {
          WallTimer timer;
          obs::SpanScope group_span("serve", "exec_group");
          group_span.arg("jobs", static_cast<double>(g.jobs.size()));
          group_span.arg("batched", g.batched_lane ? 1.0 : 0.0);
          if (g.batched_lane) {
            std::vector<lin::ConstMatrixView> panels;
            panels.reserve(g.jobs.size());
            for (const JobPtr& j : g.jobs) panels.emplace_back(j->a);
            const JobOptions& o = g.jobs.front()->opts;
            std::vector<core::BatchedItem> items = core::factorize_batched(
                panels, world,
                {.passes = o.passes, .auto_shift = o.auto_shift,
                 .base_case = o.base_case, .precision = o.precision});
            if (world.rank() == 0) {
              const double secs = timer.seconds();
              serve_metrics().batch_size->observe(
                  static_cast<double>(g.jobs.size()));
              // Stats first, wakeups second: a client that observes its
              // job terminal must observe the counters covering it.
              {
                u64 done = 0;
                u64 failed = 0;
                for (const core::BatchedItem& item : items) {
                  item.ok ? ++done : ++failed;
                }
                const std::lock_guard<std::mutex> lock(sh.mu);
                sh.stats.completed += done;
                sh.stats.failed += failed;
                if (g.jobs.size() > 1) {
                  ++sh.stats.batches;
                  sh.stats.batched_jobs += g.jobs.size();
                }
              }
              for (std::size_t i = 0; i < g.jobs.size(); ++i) {
                const JobPtr& j = g.jobs[i];
                if (items[i].ok) {
                  JobResult res;
                  res.q = std::move(items[i].q);
                  res.r = std::move(items[i].r);
                  res.algo = "cqr_1d";
                  res.used_shift = items[i].used_shift;
                  res.batched = g.jobs.size() > 1;
                  res.batch_size = g.jobs.size();
                  res.queue_seconds = j->queue_seconds;
                  res.exec_seconds = secs;
                  serve_metrics().exec_seconds->observe(secs);
                  if (j->finish(JobStatus::done, std::move(res), nullptr)) {
                    trace_job_end(*j, JobStatus::done);
                  }
                } else {
                  // Failure isolation: this panel's breakdown rides its
                  // own handle; batch mates completed above.
                  if (j->finish(JobStatus::failed, {},
                                std::move(items[i].error))) {
                    trace_job_end(*j, JobStatus::failed);
                  }
                }
              }
            }
          } else {
            const JobPtr& j = g.jobs.front();
            try {
              core::FactorizeResult fr = core::factorize(
                  j->a, world, to_factorize_options(j->opts));
              if (world.rank() == 0) {
                JobResult res;
                res.q = std::move(fr.q);
                res.r = std::move(fr.r);
                res.algo = fr.algo;
                res.used_shift = fr.used_shift;
                res.queue_seconds = j->queue_seconds;
                res.exec_seconds = timer.seconds();
                serve_metrics().exec_seconds->observe(res.exec_seconds);
                {
                  const std::lock_guard<std::mutex> lock(sh.mu);
                  ++sh.stats.completed;
                }
                if (j->finish(JobStatus::done, std::move(res), nullptr)) {
                  trace_job_end(*j, JobStatus::done);
                }
              }
            } catch (const AbortError&) {
              throw;  // the run is tearing down; do not swallow
            } catch (const Error&) {
              // Thrown consistently on every rank (the library's error
              // contract), so every rank lands here and the round
              // continues in step.  Rank 0 records it on the job alone.
              if (world.rank() == 0) {
                {
                  const std::lock_guard<std::mutex> lock(sh.mu);
                  ++sh.stats.failed;
                }
                if (j->finish(JobStatus::failed, {},
                              std::current_exception())) {
                  trace_job_end(*j, JobStatus::failed);
                }
              }
            }
          }
        }
        // Rank 0 must not publish the next round while a rank still
        // executes (or reads) this one.
        world.barrier();
      }
      lin::parallel::set_task_group(prev_group);
    };
    rt::Runtime::run(opts_.ranks, rank_body, rt::Machine::counting(),
                     opts_.threads_per_rank, rt::TransportKind::modeled);
  } catch (...) {
    // Engine death (a non-isolatable error escaped a rank): every
    // admitted job still pending is failed with that error so no client
    // blocks forever, and further submits are refused.
    const std::exception_ptr err = std::current_exception();
    std::vector<JobPtr> orphans;
    {
      const std::lock_guard<std::mutex> lock(sh.mu);
      sh.stopping = true;
      for (auto& q : sh.queues) {
        for (JobPtr& j : q) orphans.push_back(std::move(j));
        q.clear();
      }
      sh.queued = 0;
    }
    {
      const std::lock_guard<std::mutex> lock(sh.round_mu);
      for (Group& g : sh.round) {
        for (JobPtr& j : g.jobs) orphans.push_back(std::move(j));
      }
      sh.round.clear();
    }
    for (const JobPtr& j : orphans) {
      if (j && j->finish(JobStatus::failed, {}, err)) {
        trace_job_end(*j, JobStatus::failed);
      }
    }
  }
}

}  // namespace cacqr::serve
