#include "cacqr/dist/dist_matrix.hpp"

#include <optional>
#include <utility>
#include <vector>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/parallel.hpp"
#include "cacqr/lin/util.hpp"

namespace cacqr::dist {

namespace parallel = lin::parallel;

namespace {

/// Message tags for the transpose pairwise exchange (the only p2p traffic
/// in this translation unit).  transpose3d_pair keeps two exchanges in
/// flight between the same partners, so each leg gets its own tag.
constexpr int kTransposeTag = 0x7452;  // 'tr'
constexpr int kTransposeTag2 = 0x7453;

void check_layout_positive(const Layout& lay) {
  ensure_dim(lay.rows >= 0 && lay.cols >= 0, "DistMatrix: negative shape");
  ensure_dim(lay.row_procs >= 1 && lay.col_procs >= 1,
             "DistMatrix: processor counts must be positive");
  ensure_dim(lay.my_row >= 0 && lay.my_row < lay.row_procs &&
                 lay.my_col >= 0 && lay.my_col < lay.col_procs,
             "DistMatrix: rank coordinates outside the processor grid");
}

void check_same_distribution(const Layout& a, const Layout& b,
                             const char* who) {
  ensure_dim(a.rows == b.rows && a.cols == b.cols &&
                 a.row_procs == b.row_procs && a.col_procs == b.col_procs &&
                 a.my_row == b.my_row && a.my_col == b.my_col,
             who, ": operands are not identically distributed");
}

void check_on_cube(const DistMatrix& a, const grid::CubeGrid& g,
                   const char* who) {
  const auto& lay = a.layout();
  ensure_dim(lay.row_procs == g.g() && lay.col_procs == g.g() &&
                 lay.my_row == g.coords().y && lay.my_col == g.coords().x,
             who, ": operand not distributed over this cube grid");
}

std::span<double> span_of(lin::Matrix& m) {
  return {m.data(), static_cast<std::size_t>(m.size())};
}

}  // namespace

DistMatrix::DistMatrix(i64 rows, i64 cols, int row_procs, int col_procs,
                       int my_row, int my_col) {
  layout_ = {rows, cols, row_procs, col_procs, my_row, my_col};
  check_layout_positive(layout_);
  local_ = lin::Matrix(layout_.local_rows(), layout_.local_cols());
}

DistMatrix DistMatrix::uninit(i64 rows, i64 cols, int row_procs,
                              int col_procs, int my_row, int my_col) {
  DistMatrix out;
  out.layout_ = {rows, cols, row_procs, col_procs, my_row, my_col};
  check_layout_positive(out.layout_);
  out.local_ = lin::Matrix::uninit(out.layout_.local_rows(),
                                   out.layout_.local_cols());
  return out;
}

DistMatrix DistMatrix::from_global(lin::ConstMatrixView a, int row_procs,
                                   int col_procs, int my_row, int my_col) {
  // Uninitialized: the pack below writes every local element.
  DistMatrix out = uninit(a.rows, a.cols, row_procs, col_procs, my_row,
                          my_col);
  const Layout& lay = out.layout_;
  // Local pack stage: each local column is written by exactly one team
  // member, so extraction is bitwise identical at any thread budget.
  parallel::parallel_for_cols(
      out.local_.rows(), out.local_.cols(), [&](i64 j0, i64 j1) {
        for (i64 lj = j0; lj < j1; ++lj) {
          const i64 gj = lay.global_col(lj);
          for (i64 li = 0; li < out.local_.rows(); ++li) {
            out.local_(li, lj) = a(lay.global_row(li), gj);
          }
        }
      });
  return out;
}

DistMatrix DistMatrix::from_global_on_cube(lin::ConstMatrixView a,
                                           const grid::CubeGrid& g) {
  return from_global(a, g.g(), g.g(), g.coords().y, g.coords().x);
}

DistMatrix DistMatrix::from_global_on_tunable(lin::ConstMatrixView a,
                                              const grid::TunableGrid& g) {
  return from_global(a, g.d(), g.c(), g.coords().y, g.coords().x);
}

DistMatrix DistMatrix::on_cube(i64 rows, i64 cols, const grid::CubeGrid& g) {
  return DistMatrix(rows, cols, g.g(), g.g(), g.coords().y, g.coords().x);
}

DistMatrix DistMatrix::sub_block(i64 i0, i64 j0, i64 h, i64 w) const {
  const int rp = layout_.row_procs;
  const int cp = layout_.col_procs;
  ensure_dim(i0 >= 0 && j0 >= 0 && h >= 0 && w >= 0 && i0 + h <= rows() &&
                 j0 + w <= cols(),
             "DistMatrix::sub_block out of range");
  ensure_dim(i0 % rp == 0 && h % rp == 0 && j0 % cp == 0 && w % cp == 0,
             "DistMatrix::sub_block: offsets/extents must be divisible by "
             "the processor counts to stay cyclic");
  DistMatrix out(h, w, rp, cp, layout_.my_row, layout_.my_col);
  lin::copy(local_.sub(i0 / rp, j0 / cp, h / rp, w / cp), out.local_);
  return out;
}

void DistMatrix::set_sub_block(i64 i0, i64 j0, const DistMatrix& src) {
  const int rp = layout_.row_procs;
  const int cp = layout_.col_procs;
  const i64 h = src.rows();
  const i64 w = src.cols();
  ensure_dim(i0 >= 0 && j0 >= 0 && i0 + h <= rows() && j0 + w <= cols(),
             "DistMatrix::set_sub_block out of range");
  ensure_dim(i0 % rp == 0 && h % rp == 0 && j0 % cp == 0 && w % cp == 0,
             "DistMatrix::set_sub_block: offsets/extents must be divisible "
             "by the processor counts");
  ensure_dim(src.layout_.row_procs == rp && src.layout_.col_procs == cp &&
                 src.layout_.my_row == layout_.my_row &&
                 src.layout_.my_col == layout_.my_col,
             "DistMatrix::set_sub_block: source layout mismatch");
  lin::copy(src.local_, local_.sub(i0 / rp, j0 / cp, h / rp, w / cp));
}

DistMatrix DistMatrix::quadrant(int qi, int qj) const {
  ensure_dim(rows() % 2 == 0 && cols() % 2 == 0,
             "DistMatrix::quadrant: odd dimensions");
  const i64 h = rows() / 2;
  const i64 w = cols() / 2;
  return sub_block(qi * h, qj * w, h, w);
}

void DistMatrix::set_quadrant(int qi, int qj, const DistMatrix& src) {
  ensure_dim(rows() % 2 == 0 && cols() % 2 == 0,
             "DistMatrix::set_quadrant: odd dimensions");
  set_sub_block(qi * (rows() / 2), qj * (cols() / 2), src);
}

DistMatrix DistMatrix::reinterpret_layout(i64 rows, i64 cols, int row_procs,
                                          int col_procs, int my_row,
                                          int my_col) const {
  DistMatrix out;
  out.layout_ = {rows, cols, row_procs, col_procs, my_row, my_col};
  check_layout_positive(out.layout_);
  ensure_dim(out.layout_.local_rows() == local_.rows() &&
                 out.layout_.local_cols() == local_.cols(),
             "DistMatrix::reinterpret_layout: local block shape changes");
  out.local_ = local_;
  return out;
}

lin::Matrix gather(const DistMatrix& a, const rt::Comm& comm) {
  const Layout& lay = a.layout();
  const int p = lay.row_procs * lay.col_procs;
  ensure_dim(comm.size() == p,
             "gather: communicator size differs from the processor grid");
  ensure_dim(lay.rows % lay.row_procs == 0 && lay.cols % lay.col_procs == 0,
             "gather: dimensions must be divisible by the processor counts");
  const i64 lr = lay.local_rows();
  const i64 lc = lay.local_cols();
  const std::size_t blk = static_cast<std::size_t>(lr * lc);
  std::vector<double> all(blk * static_cast<std::size_t>(p));
  comm.allgather({a.local().data(), blk}, all);

  // Unpack stage: split over local column index lj.  One lj covers the
  // col_procs global columns {x + lj*col_procs : x in ranks}, disjoint
  // across lj, so every element of `full` has exactly one owner and the
  // scatter is bitwise identical at any thread budget.  Uninitialized
  // staging: the owners collectively write every element.
  lin::Matrix full = lin::Matrix::uninit(lay.rows, lay.cols);
  parallel::parallel_for_cols(
      lay.rows * lay.col_procs, lc, [&](i64 j0, i64 j1) {
        for (int r = 0; r < p; ++r) {
          // Slice convention: comm rank == x + col_procs * y.
          const int x = r % lay.col_procs;
          const int y = r / lay.col_procs;
          const double* data = all.data() + static_cast<std::size_t>(r) * blk;
          for (i64 lj = j0; lj < j1; ++lj) {
            const i64 gj = x + lj * lay.col_procs;
            for (i64 li = 0; li < lr; ++li) {
              full(y + li * lay.row_procs, gj) = data[li + lj * lr];
            }
          }
        }
      });
  return full;
}

namespace {

void check_transpose_operand(const DistMatrix& a, const grid::CubeGrid& g) {
  check_on_cube(a, g, "transpose3d");
  ensure_dim(a.rows() == a.cols(), "transpose3d: matrix must be square");
  ensure_dim(a.rows() % g.g() == 0,
             "transpose3d: dimension must be divisible by the grid");
}

/// The local permute stage of transpose3d: uninitialized result (every
/// element written below), each output column owned by exactly one team
/// member (rows of `buf` are read shared, which is safe).
DistMatrix transpose_permute(const lin::Matrix& buf, const DistMatrix& a,
                             int y, int x) {
  DistMatrix out = DistMatrix::uninit(a.rows(), a.cols(),
                                      a.layout().row_procs,
                                      a.layout().col_procs, y, x);
  parallel::parallel_for_cols(
      out.local().rows(), out.local().cols(), [&](i64 j0, i64 j1) {
        for (i64 lj = j0; lj < j1; ++lj) {
          for (i64 li = 0; li < out.local().rows(); ++li) {
            out.local()(li, lj) = buf(lj, li);
          }
        }
      });
  return out;
}

}  // namespace

DistMatrix transpose3d(const DistMatrix& a, const grid::CubeGrid& g) {
  check_transpose_operand(a, g);
  const auto [x, y, z] = g.coords();
  (void)z;

  // Entry (i, j) of A^T is A(j, i): my block of the result is exactly the
  // local block of the mirrored rank (x' = y, y' = x), locally transposed.
  // A single transpose is one irreducible dependency chain (stage, swap,
  // permute) with nothing local to hide the exchange behind; see
  // transpose3d_pair for the pipelined back-to-back form.
  lin::Matrix buf = materialize(a.local().view());
  g.slice().sendrecv_swap(g.slice_rank(y, x), kTransposeTag, span_of(buf));
  return transpose_permute(buf, a, y, x);
}

std::pair<DistMatrix, DistMatrix> transpose3d_pair(const DistMatrix& a,
                                                   const DistMatrix& b,
                                                   const grid::CubeGrid& g) {
  check_transpose_operand(a, g);
  check_transpose_operand(b, g);
  ensure_dim(a.rows() == b.rows(), "transpose3d_pair: shapes differ");
  if (!rt::overlap_enabled()) {
    return {transpose3d(a, g), transpose3d(b, g)};
  }
  const auto [x, y, z] = g.coords();
  (void)z;
  const int partner = g.slice_rank(y, x);

  // Pipeline the two exchanges: B's staging copy runs under A's exchange
  // and A's permute under B's exchange (ProgressScope polls the in-flight
  // request between the threaded loop chunks).  Same two sendrecv_swap
  // charges, same per-element writes as the sequential form.
  lin::Matrix abuf = materialize(a.local().view());
  rt::Request aswap =
      g.slice().start_sendrecv_swap(partner, kTransposeTag, span_of(abuf));
  lin::Matrix bbuf;
  {
    rt::ProgressScope scope(g.slice());
    bbuf = materialize(b.local().view());
  }
  rt::Request bswap =
      g.slice().start_sendrecv_swap(partner, kTransposeTag2, span_of(bbuf));
  aswap.wait();
  DistMatrix at;
  {
    rt::ProgressScope scope(g.slice());
    at = transpose_permute(abuf, a, y, x);
  }
  bswap.wait();
  return {std::move(at), transpose_permute(bbuf, b, y, x)};
}

namespace {

/// An mm3d whose broadcasts are in flight: the staging buffers, the two
/// started Bcast requests, and the shape needed to finish.  Splitting
/// start from finish lets block_backsolve start product k+1's broadcasts
/// while product k's gemm/allreduce/accumulate still runs -- the same
/// schedule per communicator on every rank, so the collective-order
/// discipline holds.
struct Mm3dPending {
  lin::Matrix abuf;
  lin::Matrix bbuf;
  rt::Request bcast_a;
  rt::Request bcast_b;
  i64 m = 0;
  i64 n = 0;
  double alpha = 1.0;
};

/// Stages both operands and starts both broadcasts (the first half of
/// mm3d; see the charge comment on dist_matrix.hpp).  With overlap off,
/// each broadcast is waited exactly where the historical blocking calls
/// waited, so mm3d == mm3d_finish(mm3d_start(...)) is bit-for-bit the
/// old schedule in both modes.
Mm3dPending mm3d_start(const DistMatrix& a, const DistMatrix& b,
                       const grid::CubeGrid& g, double alpha) {
  check_on_cube(a, g, "mm3d");
  check_on_cube(b, g, "mm3d");
  ensure_dim(a.cols() == b.rows(), "mm3d: inner dimensions differ");
  const int gg = g.g();
  const i64 m = a.rows();
  const i64 k = a.cols();
  const i64 n = b.cols();
  ensure_dim(m % gg == 0 && k % gg == 0 && n % gg == 0,
             "mm3d: dimensions must be divisible by the grid");
  const auto [x, y, z] = g.coords();

  // Depth layer z owns the k-classes congruent to z: the A block for
  // (row class y, k class z) lives at x == z in my slice row, the B block
  // for (k class z, column class x) at y == z in my slice column.
  // Staging buffers are uninitialized on non-roots (the Bcast overwrites
  // every word).  With overlap on, the A broadcast flies while the B
  // panel is staged (ProgressScope polls it between copy chunks);
  // overlap off waits each broadcast where the blocking calls used to.
  Mm3dPending p;
  p.m = m;
  p.n = n;
  p.alpha = alpha;
  p.abuf = x == z ? materialize(a.local().view())
                  : lin::Matrix::uninit(m / gg, k / gg);
  p.bcast_a = g.row().start_bcast(span_of(p.abuf), z);
  auto stage_b = [&] {
    return y == z ? materialize(b.local().view())
                  : lin::Matrix::uninit(k / gg, n / gg);
  };
  if (rt::overlap_enabled()) {
    rt::ProgressScope scope(g.row());
    p.bbuf = stage_b();
  } else {
    p.bcast_a.wait();
    p.bbuf = stage_b();
  }
  p.bcast_b = g.col().start_bcast(span_of(p.bbuf), z);
  if (!rt::overlap_enabled()) p.bcast_b.wait();
  return p;
}

/// Waits the broadcasts, multiplies, and reduces along depth (the second
/// half of mm3d).
DistMatrix mm3d_finish(Mm3dPending&& p, const grid::CubeGrid& g) {
  const int gg = g.g();
  const auto [x, y, z] = g.coords();
  (void)z;

  // Partial product over my depth layer's k-classes, then sum the g
  // layers along depth.  Consistent k mapping: local index lk on both
  // sides is global k = z + lk * g.  The output is uninitialized: gemm's
  // beta == 0 scale pass overwrites every element before accumulating.
  DistMatrix out = DistMatrix::uninit(p.m, p.n, gg, gg, y, x);
  p.bcast_a.wait();
  p.bcast_b.wait();
  lin::gemm(lin::Trans::N, lin::Trans::N, p.alpha, p.abuf, p.bbuf, 0.0,
            out.local());
  g.depth().allreduce_sum(span_of(out.local()));
  return out;
}

}  // namespace

DistMatrix mm3d(const DistMatrix& a, const DistMatrix& b,
                const grid::CubeGrid& g, double alpha) {
  return mm3d_finish(mm3d_start(a, b, g, alpha), g);
}

void add_scaled(DistMatrix& z, double alpha, const DistMatrix& u) {
  check_same_distribution(z.layout(), u.layout(), "add_scaled");
  lin::axpy(alpha, u.local(), z.local());
}

DistMatrix block_backsolve(const DistMatrix& b, const DistMatrix& r,
                           const DistMatrix& r_inv, i64 nblocks,
                           const grid::CubeGrid& g) {
  const i64 n = r.rows();
  ensure_dim(r.cols() == n && r_inv.rows() == n && r_inv.cols() == n,
             "block_backsolve: R and R^{-1} must be square and same size");
  ensure_dim(b.cols() == n, "block_backsolve: B column count differs");
  ensure_dim(nblocks >= 1 && n % nblocks == 0,
             "block_backsolve: nblocks must divide n");
  if (nblocks == 1) return mm3d(b, r_inv, g);

  const i64 bs = n / nblocks;
  const i64 mp = b.rows();
  DistMatrix x(mp, n, b.layout().row_procs, b.layout().col_procs,
               b.layout().my_row, b.layout().my_col);

  if (!rt::overlap_enabled()) {
    for (i64 j = 0; j < nblocks; ++j) {
      // T_j = B_j - sum_{i<j} X_i R_ij, then X_j = T_j Rinv_jj.
      DistMatrix t = b.sub_block(0, j * bs, mp, bs);
      for (i64 i = 0; i < j; ++i) {
        DistMatrix xi = x.sub_block(0, i * bs, mp, bs);
        DistMatrix rij = r.sub_block(i * bs, j * bs, bs, bs);
        DistMatrix u = mm3d(xi, rij, g);
        add_scaled(t, -1.0, u);
      }
      DistMatrix rinv_jj = r_inv.sub_block(j * bs, j * bs, bs, bs);
      x.set_sub_block(0, j * bs, mm3d(t, rinv_jj, g));
    }
    return x;
  }

  // Overlap mode: pipeline the mm3d sequence across loop iterations with
  // a lookahead of one product.  A product's broadcasts may start as
  // soon as its inputs are final:
  //   * inner product (j, i+1) -- inputs X_{i+1} (set in iteration
  //     i+1 <= j-1) and R -- can start while (j, i) is still being
  //     finished and accumulated;
  //   * iteration j+1's first inner product (j+1, 0) -- inputs X_0 and
  //     R -- can start while iteration j's final multiply (whose output
  //     X_j it does not read) is in flight;
  //   * the final product (j, Rinv_jj) reads the fully-accumulated T_j,
  //     so it can never be hoisted -- it starts right after the last
  //     accumulate.
  // The schedule of starts is a pure function of (j, i), identical on
  // every rank, so the per-communicator collective order is preserved;
  // mm3d_start/finish charge exactly what back-to-back mm3d calls
  // charge, and the accumulation order onto T_j is untouched -- results
  // and counters are bitwise identical to the sequential loop.
  // ProgressScope drives the lookahead's broadcasts underneath each
  // add_scaled and staging copy.
  auto start_inner = [&](i64 j, i64 i) {
    DistMatrix xi = x.sub_block(0, i * bs, mp, bs);
    DistMatrix rij = r.sub_block(i * bs, j * bs, bs, bs);
    return mm3d_start(xi, rij, g, 1.0);
  };
  std::optional<Mm3dPending> next;  // the lookahead product's broadcasts
  for (i64 j = 0; j < nblocks; ++j) {
    DistMatrix t = b.sub_block(0, j * bs, mp, bs);
    for (i64 i = 0; i < j; ++i) {
      Mm3dPending cur = next ? std::move(*next) : start_inner(j, i);
      next.reset();
      if (i + 1 < j) next = start_inner(j, i + 1);
      DistMatrix u = mm3d_finish(std::move(cur), g);
      rt::ProgressScope scope(g.slice());
      add_scaled(t, -1.0, u);
    }
    DistMatrix rinv_jj = r_inv.sub_block(j * bs, j * bs, bs, bs);
    Mm3dPending fin = mm3d_start(t, rinv_jj, g, 1.0);
    // Iteration j+1's first inner product reads X_0, which exists once
    // iteration 0 completed -- so from j >= 1 on it overlaps the final
    // multiply's wait/reduce and the set_sub_block copy below.
    if (j >= 1 && j + 1 < nblocks) next = start_inner(j + 1, 0);
    DistMatrix xj = mm3d_finish(std::move(fin), g);
    rt::ProgressScope scope(g.slice());
    x.set_sub_block(0, j * bs, xj);
  }
  return x;
}

}  // namespace cacqr::dist
