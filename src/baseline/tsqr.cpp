#include <vector>

#include "cacqr/baseline/tsqr.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/qr.hpp"
#include "cacqr/lin/util.hpp"

namespace cacqr::baseline {

using dist::DistMatrix;

namespace {

/// Packs the upper triangle (n(n+1)/2 words -- what the TSQR analysis
/// charges per tree message).
std::vector<double> pack_upper(const lin::Matrix& r) {
  const i64 n = r.cols();
  std::vector<double> buf;
  buf.reserve(static_cast<std::size_t>(n * (n + 1) / 2));
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = 0; i <= j; ++i) buf.push_back(r(i, j));
  }
  return buf;
}

lin::Matrix unpack_upper(const std::vector<double>& buf, i64 n) {
  lin::Matrix r(n, n);
  std::size_t idx = 0;
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = 0; i <= j; ++i) r(i, j) = buf[idx++];
  }
  return r;
}

/// Extracts the upper n x n triangle of a packed geqrf result.
lin::Matrix upper_of(const lin::Matrix& packed) {
  const i64 n = packed.cols();
  lin::Matrix r(n, n);
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = 0; i <= j; ++i) r(i, j) = packed(i, j);
  }
  return r;
}

/// One internal tree node: the packed Householder factorization of the
/// stacked [R_mine; R_partner].
struct TreeNode {
  lin::Matrix packed;        // 2n x n
  std::vector<double> taus;
};

}  // namespace

TsqrResult tsqr(const DistMatrix& a, const rt::Comm& comm) {
  const int p = comm.size();
  const int me = comm.rank();
  const i64 n = a.cols();
  ensure_dim(a.layout().col_procs == 1 && a.layout().row_procs == p &&
                 a.layout().my_row == me,
             "tsqr: matrix must be row-distributed over the communicator");
  ensure_dim(is_pow2(p), "tsqr: rank count must be a power of two");
  ensure_dim(a.layout().local_rows() >= n,
             "tsqr: local blocks need at least n rows (m/P >= n)");
  const int levels = ilog2(p);
  const int tag = 0;

  // Leaf factorization.
  lin::Matrix packed0 = materialize(a.local().view());
  std::vector<double> taus0 = lin::geqrf(packed0);
  lin::Matrix r = upper_of(packed0);

  // Up-sweep: pairwise-stack R factors up the binary tree.  Rank `me`
  // creates internal nodes at levels 0 .. tz-1 (tz = trailing zeros of
  // me; all levels for rank 0), then ships its R to the parent.
  std::vector<TreeNode> nodes;
  int my_top = levels;  // level at which I hand off (rank 0 never does)
  for (int s = 0; s < levels; ++s) {
    const int step = 1 << s;
    if (me % (2 * step) == 0) {
      std::vector<double> buf(static_cast<std::size_t>(n * (n + 1) / 2));
      comm.recv(me + step, tag, buf);
      lin::Matrix r_partner = unpack_upper(buf, n);
      TreeNode node;
      node.packed = lin::Matrix(2 * n, n);
      lin::copy(r, node.packed.sub(0, 0, n, n));
      lin::copy(r_partner, node.packed.sub(n, 0, n, n));
      node.taus = lin::geqrf(node.packed);
      r = upper_of(node.packed);
      nodes.push_back(std::move(node));
    } else {
      comm.send(me - step, tag, pack_upper(r));
      my_top = s;
      break;
    }
  }

  // Down-sweep: propagate n x n contribution blocks back down.  The
  // subtree identity is Q_subtree * C = diag(Q_left, Q_right) *
  // (Q_node * [C; 0])'s halves.
  lin::Matrix c;
  if (me == 0) {
    c = lin::Matrix::identity(n);
  } else {
    std::vector<double> buf(static_cast<std::size_t>(n * n));
    comm.recv(me - (1 << my_top), tag, buf);
    c = lin::Matrix(n, n);
    std::copy(buf.begin(), buf.end(), c.data());
  }
  for (int s = static_cast<int>(nodes.size()) - 1; s >= 0; --s) {
    const TreeNode& node = nodes[static_cast<std::size_t>(s)];
    lin::Matrix stacked(2 * n, n);
    lin::copy(c, stacked.sub(0, 0, n, n));
    lin::apply_q(node.packed, node.taus, stacked);
    c = materialize(stacked.sub(0, 0, n, n));
    // Bottom half goes to the partner subtree.
    std::vector<double> buf(static_cast<std::size_t>(n * n));
    auto bottom = stacked.sub(n, 0, n, n);
    for (i64 j = 0; j < n; ++j) {
      for (i64 i = 0; i < n; ++i) {
        buf[static_cast<std::size_t>(i + j * n)] = bottom(i, j);
      }
    }
    comm.send(me + (1 << s), tag, buf);
  }

  // Leaf: my rows of Q are Q_local * C.
  TsqrResult out{a, lin::Matrix(n, n)};
  lin::Matrix qfull(packed0.rows(), n);
  lin::copy(c, qfull.sub(0, 0, n, n));
  lin::apply_q(packed0, taus0, qfull);
  out.q.local() = std::move(qfull);

  // Replicate R from the root and sign-normalize (diag >= 0) so the
  // factorization is unique; Q columns flip to match (no communication,
  // every rank sees the same R).
  std::vector<double> rbuf(static_cast<std::size_t>(n * n));
  if (me == 0) std::copy_n(r.data(), n * n, rbuf.data());
  comm.bcast(rbuf, 0);
  std::copy_n(rbuf.data(), n * n, out.r.data());
  for (i64 i = 0; i < n; ++i) {
    if (out.r(i, i) < 0.0) {
      for (i64 j = i; j < n; ++j) out.r(i, j) = -out.r(i, j);
      for (i64 li = 0; li < out.q.local().rows(); ++li) {
        out.q.local()(li, i) = -out.q.local()(li, i);
      }
    }
  }
  return out;
}

}  // namespace cacqr::baseline
