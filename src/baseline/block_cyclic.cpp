#include "cacqr/baseline/block_cyclic.hpp"

namespace cacqr::baseline {

ProcGrid2d::ProcGrid2d(rt::Comm world, int pr, int pc)
    : pr_(pr), pc_(pc), world_(std::move(world)) {
  ensure_dim(pr >= 1 && pc >= 1 && world_.size() == pr * pc,
             "ProcGrid2d: communicator has ", world_.size(),
             " ranks, need pr*pc = ", pr * pc);
  myrow_ = world_.rank() / pc;
  mycol_ = world_.rank() % pc;
  row_ = world_.split(myrow_, mycol_);
  col_ = world_.split(mycol_, myrow_);
}

BlockCyclicMatrix::BlockCyclicMatrix(i64 rows, i64 cols, i64 block,
                                     const ProcGrid2d& g)
    : rows_(rows),
      cols_(cols),
      block_(block),
      pr_(g.pr()),
      pc_(g.pc()),
      myrow_(g.myrow()),
      mycol_(g.mycol()) {
  ensure_dim(block >= 1, "BlockCyclicMatrix: block must be positive");
  ensure_dim(rows % (block * pr_) == 0 && cols % (block * pc_) == 0,
             "BlockCyclicMatrix: need block*pr | rows and block*pc | cols "
             "(got ", rows, "x", cols, ", block ", block, ", grid ", pr_,
             "x", pc_, ")");
  local_ = lin::Matrix(rows / pr_, cols / pc_);
}

i64 BlockCyclicMatrix::global_row(i64 li) const noexcept {
  const i64 lb = li / block_;
  return (myrow_ + lb * pr_) * block_ + li % block_;
}

i64 BlockCyclicMatrix::global_col(i64 lj) const noexcept {
  const i64 lb = lj / block_;
  return (mycol_ + lb * pc_) * block_ + lj % block_;
}

i64 BlockCyclicMatrix::local_row_cut(i64 block_k, i64 j) const noexcept {
  // Local blocks with global index strictly below block_k come first ...
  const i64 before = block_k > myrow_ ? ceil_div(block_k - myrow_, pr_) : 0;
  i64 cut = before * block_;
  // ... and when I own block_k itself, offset j cuts into it.
  if (block_k % pr_ == myrow_) cut += j;
  return cut;
}

i64 BlockCyclicMatrix::local_col_cut(i64 block_k) const noexcept {
  const i64 before = block_k > mycol_ ? ceil_div(block_k - mycol_, pc_) : 0;
  return before * block_;
}

BlockCyclicMatrix BlockCyclicMatrix::from_global(lin::ConstMatrixView a,
                                                 i64 block,
                                                 const ProcGrid2d& g) {
  BlockCyclicMatrix out(a.rows, a.cols, block, g);
  for (i64 lj = 0; lj < out.local_.cols(); ++lj) {
    const i64 gj = out.global_col(lj);
    for (i64 li = 0; li < out.local_.rows(); ++li) {
      out.local_(li, lj) = a(out.global_row(li), gj);
    }
  }
  return out;
}

BlockCyclicMatrix BlockCyclicMatrix::identity(i64 rows, i64 cols, i64 block,
                                              const ProcGrid2d& g) {
  BlockCyclicMatrix out(rows, cols, block, g);
  for (i64 lj = 0; lj < out.local_.cols(); ++lj) {
    const i64 gj = out.global_col(lj);
    for (i64 li = 0; li < out.local_.rows(); ++li) {
      if (out.global_row(li) == gj) out.local_(li, lj) = 1.0;
    }
  }
  return out;
}

lin::Matrix BlockCyclicMatrix::gather(const ProcGrid2d& g) const {
  const int p = pr_ * pc_;
  const i64 blk_words = local_.rows() * local_.cols();
  std::vector<double> all(static_cast<std::size_t>(blk_words) * p);
  g.world().allgather(
      {local_.data(), static_cast<std::size_t>(blk_words)}, all);
  lin::Matrix full(rows_, cols_);
  for (int r = 0; r < p; ++r) {
    BlockCyclicMatrix peer;
    peer.rows_ = rows_;
    peer.cols_ = cols_;
    peer.block_ = block_;
    peer.pr_ = pr_;
    peer.pc_ = pc_;
    peer.myrow_ = r / pc_;
    peer.mycol_ = r % pc_;
    const double* data = all.data() + static_cast<std::size_t>(blk_words) * r;
    const i64 lr = rows_ / pr_;
    const i64 lc = cols_ / pc_;
    for (i64 lj = 0; lj < lc; ++lj) {
      const i64 gj = peer.global_col(lj);
      for (i64 li = 0; li < lr; ++li) {
        full(peer.global_row(li), gj) = data[li + lj * lr];
      }
    }
  }
  return full;
}

}  // namespace cacqr::baseline
