#include <cmath>
#include <vector>

#include "cacqr/baseline/pgeqrf_2d.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/flops.hpp"
#include "cacqr/lin/util.hpp"

namespace cacqr::baseline {

namespace {

std::span<double> span_of(lin::Matrix& m) {
  return {m.data(), static_cast<std::size_t>(m.size())};
}

/// One factored panel, as every rank stores it after the row broadcast:
/// my local suffix of V (unit diagonal materialized, upper zeroed) plus
/// the compact-WY T factor.
struct Panel {
  i64 row_cut = 0;   ///< local row where the panel's suffix begins
  lin::Matrix v;     ///< (local_rows - row_cut) x b
  lin::Matrix t;     ///< b x b upper triangular
};

/// Builds the forward columnwise compact-WY factor from G = V^T V and
/// taus (LAPACK dlarft with the inner products precomputed).
lin::Matrix build_t(const lin::Matrix& gram_v, const std::vector<double>& taus) {
  const i64 b = gram_v.rows();
  lin::Matrix t(b, b);
  for (i64 i = 0; i < b; ++i) {
    const double tau = taus[static_cast<std::size_t>(i)];
    t(i, i) = tau;
    // T(0:i, i) = -tau * T(0:i, 0:i) * G(0:i, i).
    for (i64 l = 0; l < i; ++l) {
      double acc = 0.0;
      for (i64 kk = l; kk < i; ++kk) acc += t(l, kk) * gram_v(kk, i);
      t(l, i) = -tau * acc;
    }
    lin::flops::add(i * i);
  }
  return t;
}

/// Applies (I - V op(T) V^T) to C in place (both V and C are local row
/// suffixes; the missing rows live on other ranks of the process column,
/// whose partial products the allreduce combines).
void apply_panel(const Panel& p, lin::MatrixView c, lin::Trans trans_t,
                 const rt::Comm& col_comm) {
  const i64 b = p.t.rows();
  lin::Matrix w(b, c.cols);
  lin::gemm(lin::Trans::T, lin::Trans::N, 1.0, p.v, c, 0.0, w);
  col_comm.allreduce_sum(span_of(w));
  lin::Matrix w2(b, c.cols);
  lin::gemm(trans_t, lin::Trans::N, 1.0, p.t, w, 0.0, w2);
  lin::gemm(lin::Trans::N, lin::Trans::N, -1.0, p.v, w2, 1.0, c);
}

}  // namespace

Pgeqrf2dResult pgeqrf_2d(const BlockCyclicMatrix& a, const ProcGrid2d& g,
                         Pgeqrf2dOptions opts) {
  const i64 m = a.rows();
  const i64 n = a.cols();
  const i64 b = a.block();
  ensure_dim(m >= n, "pgeqrf_2d: requires m >= n");
  // The n x n R factor reuses the same grid/block layout, so n must close
  // a full block cycle in both grid dimensions.
  ensure_dim(n % (b * g.pr()) == 0,
             "pgeqrf_2d: need block*pr | n for the R layout (n=", n,
             ", block=", b, ", pr=", g.pr(), ")");
  const i64 npanels = n / b;
  const int pr = g.pr();
  const int pc = g.pc();

  BlockCyclicMatrix work = a;
  lin::Matrix& loc = work.local();
  const i64 mloc = loc.rows();
  const i64 nloc = loc.cols();

  std::vector<Panel> panels;
  panels.reserve(static_cast<std::size_t>(npanels));

  for (i64 k = 0; k < npanels; ++k) {
    const int owner_pcol = static_cast<int>(k % pc);
    const bool my_panel = g.mycol() == owner_pcol;
    const bool own_diag_rows = k % pr == g.myrow();
    const i64 rs0 = work.local_row_cut(k, 0);
    std::vector<double> taus(static_cast<std::size_t>(b), 0.0);

    if (my_panel) {
      const i64 cloc0 = b * ((k - g.mycol()) / pc);
      const int diag_prow = static_cast<int>(k % pr);
      for (i64 j = 0; j < b; ++j) {
        const i64 rs = work.local_row_cut(k, j);
        auto col = loc.sub(rs, cloc0 + j, mloc - rs, 1);
        // ScaLAPACK's pdlarfg structure: a pdnrm2-style combine for the
        // column norm, then a broadcast of the diagonal element from its
        // owner (pdelget) -- two separate collectives per column, which
        // is where PGEQRF's O(n log P) latency comes from.
        const i64 start = own_diag_rows ? 1 : 0;
        double ss = 0.0;
        for (i64 i = start; i < col.rows; ++i) ss += col(i, 0) * col(i, 0);
        lin::flops::add(2 * (col.rows - start));
        std::vector<double> nrm = {ss};
        g.col_comm().allreduce_sum(nrm);
        ss = nrm[0];
        std::vector<double> diag = {own_diag_rows ? col(0, 0) : 0.0};
        g.col_comm().bcast(diag, diag_prow);
        const double alpha = diag[0];
        if (ss == 0.0) {
          taus[static_cast<std::size_t>(j)] = 0.0;
          continue;  // column already zero below the diagonal
        }
        const double beta =
            -std::copysign(std::sqrt(alpha * alpha + ss), alpha);
        const double tau = (beta - alpha) / beta;
        taus[static_cast<std::size_t>(j)] = tau;
        const double inv = 1.0 / (alpha - beta);
        for (i64 i = start; i < col.rows; ++i) col(i, 0) *= inv;
        if (own_diag_rows) col(0, 0) = beta;
        lin::flops::add(col.rows);

        // Apply the reflector to the remaining panel columns: pdlarf's
        // reduce + broadcast pair over the process column.
        const i64 width = b - j - 1;
        if (width == 0) continue;
        auto rest = loc.sub(rs, cloc0 + j + 1, mloc - rs, width);
        std::vector<double> w(static_cast<std::size_t>(width), 0.0);
        for (i64 jj = 0; jj < width; ++jj) {
          double acc = own_diag_rows ? rest(0, jj) : 0.0;
          for (i64 i = start; i < rest.rows; ++i) {
            acc += col(i, 0) * rest(i, jj);
          }
          w[static_cast<std::size_t>(jj)] = acc;
        }
        lin::flops::add(2 * (rest.rows - start) * width);
        g.col_comm().reduce_sum(w, diag_prow);
        g.col_comm().bcast(w, diag_prow);
        for (i64 jj = 0; jj < width; ++jj) {
          const double tw = tau * w[static_cast<std::size_t>(jj)];
          if (own_diag_rows) rest(0, jj) -= tw;
          for (i64 i = start; i < rest.rows; ++i) {
            rest(i, jj) -= tw * col(i, 0);
          }
        }
        lin::flops::add(2 * (rest.rows - start) * width);
      }
    }

    // Materialize my suffix of V with explicit unit diagonal / zero upper
    // (only the owner column has the data; receivers get it broadcast).
    Panel p;
    p.row_cut = rs0;
    p.v = lin::Matrix(mloc - rs0, b);
    if (my_panel) {
      const i64 cloc0 = b * ((k - g.mycol()) / pc);
      lin::copy(loc.sub(rs0, cloc0, mloc - rs0, b), p.v);
      if (own_diag_rows) {
        // The first b suffix rows are the diagonal block: R lives in its
        // upper triangle, so overwrite with the implicit V structure.
        for (i64 j = 0; j < b; ++j) {
          for (i64 i = 0; i <= j && i < p.v.rows(); ++i) {
            p.v(i, j) = i == j ? 1.0 : 0.0;
          }
        }
      }
      // Compact-WY T from G = V^T V (one b^2 allreduce, pdlarft-style).
      lin::Matrix gram_v(b, b);
      lin::gemm(lin::Trans::T, lin::Trans::N, 1.0, p.v, p.v, 0.0, gram_v);
      g.col_comm().allreduce_sum(span_of(gram_v));
      p.t = build_t(gram_v, taus);
    } else {
      p.t = lin::Matrix(b, b);
    }

    // Broadcast (V, T) along the process row.
    {
      std::vector<double> buf(static_cast<std::size_t>(p.v.size() + b * b));
      std::copy_n(p.v.data(), p.v.size(), buf.data());
      std::copy_n(p.t.data(), b * b, buf.data() + p.v.size());
      g.row_comm().bcast(buf, owner_pcol);
      std::copy_n(buf.data(), p.v.size(), p.v.data());
      std::copy_n(buf.data() + p.v.size(), b * b, p.t.data());
    }

    // Blocked trailing update C -= V T^T (V^T C) on columns >= (k+1) b.
    // Ranks whose V suffix is empty still participate: the allreduce
    // inside apply_panel is collective over the process column, and column
    // width is uniform within a process column, so the skip below is
    // taken (or not) by whole columns at a time.
    const i64 cs = work.local_col_cut(k + 1);
    if (nloc - cs > 0) {
      apply_panel(p, loc.sub(rs0, cs, mloc - rs0, nloc - cs), lin::Trans::T,
                  g.col_comm());
    }
    panels.push_back(std::move(p));
  }

  // R: leading n x n upper triangle of the factored matrix.  Block-cyclic
  // local storage is ordered by global block index, so the global leading
  // rows are a local prefix.
  Pgeqrf2dResult out{BlockCyclicMatrix(m, n, b, g),
                     BlockCyclicMatrix(n, n, b, g)};
  {
    lin::Matrix& rloc = out.r.local();
    lin::copy(loc.sub(0, 0, rloc.rows(), rloc.cols()), rloc);
    for (i64 lj = 0; lj < rloc.cols(); ++lj) {
      const i64 gj = out.r.global_col(lj);
      for (i64 li = 0; li < rloc.rows(); ++li) {
        if (out.r.global_row(li) > gj) rloc(li, lj) = 0.0;
      }
    }
  }

  // Explicit Q (PDORGQR): apply the panels to a distributed identity in
  // reverse order with T (not T^T).
  out.q = BlockCyclicMatrix::identity(m, n, b, g);
  for (i64 k = npanels - 1; k >= 0; --k) {
    // Every rank applies every panel -- even with an empty local V suffix
    // the process-column allreduce inside is collective.
    const Panel& p = panels[static_cast<std::size_t>(k)];
    apply_panel(p, out.q.local().sub(p.row_cut, 0, mloc - p.row_cut,
                                     out.q.local().cols()),
                lin::Trans::N, g.col_comm());
  }

  if (opts.normalize_signs) {
    // Make diag(R) >= 0: flip R rows / Q columns where the diagonal is
    // negative.  Owners publish signs via one n-word allreduce.
    std::vector<double> signs(static_cast<std::size_t>(n), 0.0);
    {
      const lin::Matrix& rloc = out.r.local();
      for (i64 lj = 0; lj < rloc.cols(); ++lj) {
        const i64 gj = out.r.global_col(lj);
        for (i64 li = 0; li < rloc.rows(); ++li) {
          if (out.r.global_row(li) == gj) {
            signs[static_cast<std::size_t>(gj)] =
                rloc(li, lj) < 0.0 ? -1.0 : 1.0;
          }
        }
      }
    }
    g.world().allreduce_sum(signs);
    lin::Matrix& rloc = out.r.local();
    for (i64 li = 0; li < rloc.rows(); ++li) {
      if (signs[static_cast<std::size_t>(out.r.global_row(li))] < 0.0) {
        for (i64 lj = 0; lj < rloc.cols(); ++lj) rloc(li, lj) = -rloc(li, lj);
      }
    }
    lin::Matrix& qloc = out.q.local();
    for (i64 lj = 0; lj < qloc.cols(); ++lj) {
      if (signs[static_cast<std::size_t>(out.q.global_col(lj))] < 0.0) {
        for (i64 li = 0; li < qloc.rows(); ++li) qloc(li, lj) = -qloc(li, lj);
      }
    }
  }
  return out;
}

}  // namespace cacqr::baseline
