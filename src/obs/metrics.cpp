#include "cacqr/obs/metrics.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <string>

namespace cacqr::obs {

namespace {

template <class Vec>
auto* find_named(Vec& v, std::string_view name) {
  for (auto& [n, p] : v) {
    if (n == name) return p.get();
  }
  return static_cast<typename Vec::value_type::second_type::pointer>(nullptr);
}

/// CACQR_METRICS=<path>: the global registry snapshots itself at exit.
/// Guarded by pid so a fork()ed child that somehow reaches atexit never
/// overwrites the parent's snapshot (transport children use _Exit and
/// skip atexit entirely).
int g_snapshot_pid = 0;
std::string* g_snapshot_path = nullptr;

void snapshot_at_exit() {
  if (getpid() != g_snapshot_pid || g_snapshot_path == nullptr) return;
  // The snapshot may target a directory nobody has created yet (e.g. the
  // trace dir, when this hook runs before the trace flush).
  const std::size_t slash = g_snapshot_path->find_last_of('/');
  if (slash != std::string::npos && slash > 0) {
    (void)::mkdir(g_snapshot_path->substr(0, slash).c_str(), 0777);
  }
  Registry::global().write_snapshot(*g_snapshot_path);
}

void register_env_snapshot() {
  static const bool once = [] {
    const char* s = std::getenv("CACQR_METRICS");
    if (s == nullptr || *s == '\0') return false;
    g_snapshot_path = new std::string(s);
    g_snapshot_pid = static_cast<int>(getpid());
    std::atexit(snapshot_at_exit);
    return true;
  }();
  (void)once;
}

}  // namespace

Registry& Registry::global() {
  static Registry* r = [] {
    auto* reg = new Registry();
    register_env_snapshot();
    return reg;
  }();
  return *r;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (auto* c = find_named(counters_, name)) return *c;
  counters_.emplace_back(std::string(name), std::make_unique<Counter>());
  return *counters_.back().second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (auto* g = find_named(gauges_, name)) return *g;
  gauges_.emplace_back(std::string(name), std::make_unique<Gauge>());
  return *gauges_.back().second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (auto* h = find_named(hists_, name)) return *h;
  hists_.emplace_back(std::string(name), std::make_unique<Histogram>(bounds));
  return *hists_.back().second;
}

support::Json Registry::snapshot() const {
  // Sorted-name maps make the key sequence deterministic for a given
  // instrument set (support::Json keeps insertion order).
  std::vector<std::pair<std::string, const Counter*>> cs;
  std::vector<std::pair<std::string, const Gauge*>> gs;
  std::vector<std::pair<std::string, const Histogram*>> hs;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [n, p] : counters_) cs.emplace_back(n, p.get());
    for (const auto& [n, p] : gauges_) gs.emplace_back(n, p.get());
    for (const auto& [n, p] : hists_) hs.emplace_back(n, p.get());
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(cs.begin(), cs.end(), by_name);
  std::sort(gs.begin(), gs.end(), by_name);
  std::sort(hs.begin(), hs.end(), by_name);

  support::Json doc = support::Json::object();
  doc.set("schema_version", 1);
  support::Json counters = support::Json::object();
  for (const auto& [n, c] : cs) {
    counters.set(n, static_cast<i64>(c->value()));
  }
  doc.set("counters", std::move(counters));
  support::Json gauges = support::Json::object();
  for (const auto& [n, g] : gs) gauges.set(n, g->value());
  doc.set("gauges", std::move(gauges));
  support::Json hists = support::Json::object();
  for (const auto& [n, h] : hs) {
    support::Json hj = support::Json::object();
    hj.set("count", static_cast<i64>(h->count()));
    hj.set("sum", h->sum());
    support::Json buckets = support::Json::array();
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i <= bounds.size(); ++i) {
      support::Json b = support::Json::object();
      if (i < bounds.size()) {
        b.set("le", bounds[i]);
      } else {
        b.set("le", "inf");
      }
      b.set("count", static_cast<i64>(h->bucket_count(i)));
      buckets.push_back(std::move(b));
    }
    hj.set("buckets", std::move(buckets));
    hists.set(n, std::move(hj));
  }
  doc.set("histograms", std::move(hists));
  return doc;
}

bool Registry::write_snapshot(const std::string& path) const {
  return support::write_json_file(path, snapshot(), 1);
}

}  // namespace cacqr::obs
