#include "cacqr/obs/trace.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "cacqr/support/error.hpp"
#include "cacqr/support/json.hpp"

namespace cacqr::obs {

namespace detail {
std::atomic<int> g_trace_mode{-1};
}  // namespace detail

namespace {

constexpr int kSchemaVersion = 1;
constexpr std::size_t kDefaultRingEvents = 16384;
constexpr std::size_t kMaxArgs = 6;

enum class Ph : unsigned char { complete, instant, counter, abegin, aend };

/// One recorded event.  `cat`/`name`/arg keys are static-storage strings
/// (the API contract), so storing pointers is safe across threads and
/// until process exit.
struct Event {
  Ph ph;
  unsigned char nargs;
  int pid;  ///< trace rank; -1 = driver row
  u64 tid;
  const char* cat;
  const char* name;
  u64 ts_ns;
  u64 dur_ns;  ///< complete only
  u64 id;      ///< async pairing / counter value bits
  Arg args[kMaxArgs];
};

/// Single-writer event ring: the owning thread appends and publishes
/// with a release store on `count`; readers take an acquire snapshot and
/// read only that prefix.  Entries are never overwritten (drop-newest),
/// so the published prefix is immutable.
struct ThreadLog {
  explicit ThreadLog(std::size_t capacity, u64 tid_)
      : buf(new Event[capacity]), cap(capacity), tid(tid_) {}
  std::unique_ptr<Event[]> buf;
  std::size_t cap;
  u64 tid;
  std::atomic<std::size_t> count{0};
};

// Leaked globals: the exit-time flush must outlive every static
// destructor that could otherwise tear these down first.
std::mutex& logs_mu() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}
std::vector<std::shared_ptr<ThreadLog>>& logs() {
  static auto* v = new std::vector<std::shared_ptr<ThreadLog>>();
  return *v;
}
std::mutex& dir_mu() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}
std::string& dir_storage() {
  static auto* s = new std::string();
  return *s;
}
std::vector<int>& child_pids() {
  static auto* v = new std::vector<int>();
  return *v;
}

std::atomic<u64> g_dropped{0};
std::atomic<u64> g_next_tid{1};
std::atomic<u64> g_next_async_id{1};
std::atomic<std::size_t> g_ring_override{0};
std::atomic<int> g_flush_registered{0};
int g_flush_pid = 0;

thread_local int tls_trace_rank = -1;
thread_local ThreadLog* tls_log = nullptr;

std::size_t ring_capacity() {
  const std::size_t forced = g_ring_override.load(std::memory_order_relaxed);
  if (forced != 0) return forced;
  static const std::size_t from_env = [] {
    const char* s = std::getenv("CACQR_TRACE_BUF");
    if (s == nullptr || *s == '\0') return kDefaultRingEvents;
    char* end = nullptr;
    const long n = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || n < 16) return kDefaultRingEvents;
    return static_cast<std::size_t>(n);
  }();
  return from_env;
}

ThreadLog& local_log() {
  if (tls_log == nullptr) {
    auto log = std::make_shared<ThreadLog>(
        ring_capacity(), g_next_tid.fetch_add(1, std::memory_order_relaxed));
    tls_log = log.get();
    const std::lock_guard<std::mutex> lock(logs_mu());
    logs().push_back(std::move(log));
  }
  return *tls_log;
}

void flush_at_exit() {
  // Only the process that registered the hook writes + merges: a fork()ed
  // child that reaches atexit (it should not -- transports use _Exit)
  // must not re-merge the parent's files.
  if (getpid() != g_flush_pid) return;
  if (!trace_on()) return;
  write_process_trace();
  std::vector<std::string> parts;
  const std::string dir = trace_dir();
  parts.push_back(dir + "/trace-" + std::to_string(getpid()) + ".json");
  {
    const std::lock_guard<std::mutex> lock(logs_mu());
    for (const int pid : child_pids()) {
      parts.push_back(dir + "/trace-" + std::to_string(pid) + ".json");
    }
  }
  merge_trace_files(parts, dir + "/trace.json");
}

void register_flush() {
  if (g_flush_registered.exchange(1, std::memory_order_acq_rel) != 0) return;
  g_flush_pid = getpid();
  std::atexit(flush_at_exit);
}

/// True when this thread should record under the current mode.
bool should_record() {
  int m = detail::g_trace_mode.load(std::memory_order_relaxed);
  if (m < 0) m = detail::init_trace_mode_from_env();
  if (m == 0) return false;
  if (m == 2) return true;
  return tls_trace_rank <= 0;  // rank0: rank-0 and driver threads only
}

void record(Ph ph, const char* cat, const char* name, u64 ts_ns, u64 dur_ns,
            u64 id, const Arg* args, std::size_t nargs) {
  if (!should_record()) return;
  ThreadLog& log = local_log();
  const std::size_t n = log.count.load(std::memory_order_relaxed);
  if (n >= log.cap) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event& e = log.buf[n];
  e.ph = ph;
  e.nargs = static_cast<unsigned char>(std::min(nargs, kMaxArgs));
  e.pid = tls_trace_rank;
  e.tid = log.tid;
  e.cat = cat;
  e.name = name;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.id = id;
  for (std::size_t i = 0; i < e.nargs; ++i) e.args[i] = args[i];
  log.count.store(n + 1, std::memory_order_release);
}

const char* ph_string(Ph ph) {
  switch (ph) {
    case Ph::complete: return "X";
    case Ph::instant: return "i";
    case Ph::counter: return "C";
    case Ph::abegin: return "b";
    case Ph::aend: return "e";
  }
  return "?";
}

bool ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0) return true;
  return errno == EEXIST;
}

}  // namespace

namespace detail {

int init_trace_mode_from_env() {
  // Racing initializers parse the same env and store the same value.
  const char* s = std::getenv("CACQR_TRACE");
  int mode = 0;
  if (s != nullptr && *s != '\0') {
    if (std::strcmp(s, "off") == 0) {
      mode = 0;
    } else if (std::strcmp(s, "rank0") == 0) {
      mode = 1;
    } else if (std::strcmp(s, "all") == 0) {
      mode = 2;
    } else {
      throw Error(std::string("CACQR_TRACE: unknown mode \"") + s +
                  "\" (valid: off, rank0, all)");
    }
  }
  g_trace_mode.store(mode, std::memory_order_relaxed);
  if (mode > 0) register_flush();
  return mode;
}

void reset_after_fork() noexcept {
  // The child inherits the parent's published ring contents; wipe them so
  // the child's own flush exports only its post-fork events.  Single
  // threaded here (fork), so the non-owner stores are safe.
  const std::lock_guard<std::mutex> lock(logs_mu());
  for (const auto& log : logs()) log->count.store(0, std::memory_order_relaxed);
  child_pids().clear();
  g_dropped.store(0, std::memory_order_relaxed);
  g_flush_pid = 0;  // the child never runs the parent's merge
}

void note_forked_child(int pid) {
  const std::lock_guard<std::mutex> lock(logs_mu());
  child_pids().push_back(pid);
}

}  // namespace detail

TraceMode trace_mode() {
  int v = detail::g_trace_mode.load(std::memory_order_relaxed);
  if (v < 0) v = detail::init_trace_mode_from_env();
  return static_cast<TraceMode>(v);
}

void set_trace_mode(TraceMode mode) {
  detail::g_trace_mode.store(static_cast<int>(mode),
                             std::memory_order_relaxed);
  if (mode != TraceMode::off) register_flush();
}

std::string trace_dir() {
  const std::lock_guard<std::mutex> lock(dir_mu());
  std::string& dir = dir_storage();
  if (dir.empty()) {
    const char* s = std::getenv("CACQR_TRACE_DIR");
    dir = (s != nullptr && *s != '\0') ? s : "cacqr_trace";
  }
  return dir;
}

void set_trace_dir(const std::string& dir) {
  const std::lock_guard<std::mutex> lock(dir_mu());
  dir_storage() = dir;
}

int set_trace_rank(int rank) noexcept {
  const int prev = tls_trace_rank;
  tls_trace_rank = rank;
  return prev;
}

int trace_rank() noexcept { return tls_trace_rank; }

void set_trace_buffer_capacity(std::size_t events) noexcept {
  g_ring_override.store(events, std::memory_order_relaxed);
}

u64 dropped_events() noexcept {
  return g_dropped.load(std::memory_order_relaxed);
}

u64 now_ns() noexcept {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

u64 new_async_id() noexcept {
  return g_next_async_id.fetch_add(1, std::memory_order_relaxed);
}

void complete(const char* cat, const char* name, u64 t0_ns, u64 t1_ns,
              std::initializer_list<Arg> args) {
  record(Ph::complete, cat, name, t0_ns, t1_ns >= t0_ns ? t1_ns - t0_ns : 0,
         0, args.begin(), args.size());
}

void instant(const char* cat, const char* name,
             std::initializer_list<Arg> args) {
  record(Ph::instant, cat, name, now_ns(), 0, 0, args.begin(), args.size());
}

void counter(const char* cat, const char* name, double value) {
  const Arg arg{"value", value};
  record(Ph::counter, cat, name, now_ns(), 0, 0, &arg, 1);
}

void async_begin(const char* cat, const char* name, u64 id,
                 std::initializer_list<Arg> args) {
  record(Ph::abegin, cat, name, now_ns(), 0, id, args.begin(), args.size());
}

void async_end(const char* cat, const char* name, u64 id,
               std::initializer_list<Arg> args) {
  record(Ph::aend, cat, name, now_ns(), 0, id, args.begin(), args.size());
}

void SpanScope::close() noexcept {
  if (!on_) return;
  on_ = false;
  record(Ph::complete, cat_, name_, t0_, now_ns() - t0_, 0, args_,
         static_cast<std::size_t>(nargs_));
}

namespace {

/// Chrome trace-event JSON for one event.  pid: rank rows keep the rank
/// number; driver threads share pid 1000000 + (os pid % 1000) so two
/// merged processes' driver rows do not collide.  tid carries an os-pid
/// salt for the same reason (rank rows are single-process, but the
/// modeled transport runs every rank in one process where tids are
/// already unique).
support::Json event_json(const Event& e, int os_pid) {
  support::Json j = support::Json::object();
  j.set("name", e.name);
  j.set("cat", e.cat);
  j.set("ph", ph_string(e.ph));
  const int pid = e.pid >= 0 ? e.pid : 1000000 + os_pid % 1000;
  j.set("pid", pid);
  j.set("tid", static_cast<i64>(e.tid + static_cast<u64>(os_pid % 1000) *
                                             100000));
  j.set("ts", static_cast<double>(e.ts_ns) / 1000.0);
  if (e.ph == Ph::complete) {
    j.set("dur", static_cast<double>(e.dur_ns) / 1000.0);
  }
  if (e.ph == Ph::abegin || e.ph == Ph::aend) {
    j.set("id", static_cast<i64>(e.id));
  }
  if (e.nargs > 0) {
    support::Json args = support::Json::object();
    for (unsigned char i = 0; i < e.nargs; ++i) {
      args.set(e.args[i].key, e.args[i].value);
    }
    j.set("args", std::move(args));
  }
  return j;
}

support::Json process_name_meta(int pid, const std::string& label) {
  support::Json j = support::Json::object();
  j.set("name", "process_name");
  j.set("ph", "M");
  j.set("pid", pid);
  support::Json args = support::Json::object();
  args.set("name", label);
  j.set("args", std::move(args));
  return j;
}

}  // namespace

bool write_process_trace() {
  const int os_pid = static_cast<int>(getpid());
  support::Json events = support::Json::array();

  // Per-rank process rows + one driver row, named for Perfetto.
  std::vector<int> ranks_seen;
  bool driver_seen = false;

  std::vector<std::shared_ptr<ThreadLog>> snapshot;
  {
    const std::lock_guard<std::mutex> lock(logs_mu());
    snapshot = logs();
  }
  std::size_t total = 0;
  for (const auto& log : snapshot) {
    const std::size_t n = log->count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      const Event& e = log->buf[i];
      if (e.pid >= 0) {
        if (std::find(ranks_seen.begin(), ranks_seen.end(), e.pid) ==
            ranks_seen.end()) {
          ranks_seen.push_back(e.pid);
        }
      } else {
        driver_seen = true;
      }
      events.push_back(event_json(e, os_pid));
      ++total;
    }
  }
  if (total == 0) return false;

  std::sort(ranks_seen.begin(), ranks_seen.end());
  support::Json doc = support::Json::object();
  doc.set("schema_version", kSchemaVersion);
  support::Json meta = support::Json::array();
  for (const int r : ranks_seen) {
    meta.push_back(process_name_meta(r, "rank " + std::to_string(r)));
  }
  if (driver_seen) {
    meta.push_back(process_name_meta(
        1000000 + os_pid % 1000, "driver (pid " + std::to_string(os_pid) +
                                     ")"));
  }
  // Metadata first so viewers label rows before the first real event.
  support::Json all = support::Json::array();
  for (std::size_t i = 0; i < meta.size(); ++i) {
    all.push_back(meta.at(i));
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    all.push_back(events.at(i));
  }
  doc.set("traceEvents", std::move(all));
  doc.set("dropped_events", static_cast<i64>(dropped_events()));

  const std::string dir = trace_dir();
  if (!ensure_dir(dir)) return false;
  return support::write_json_file(
      dir + "/trace-" + std::to_string(os_pid) + ".json", doc, -1);
}

bool merge_trace_files(const std::vector<std::string>& paths,
                       const std::string& out_path) {
  support::Json all = support::Json::array();
  int schema = kSchemaVersion;
  for (const std::string& p : paths) {
    const auto doc = support::read_json_file(p);
    if (!doc.has_value()) continue;  // missing/torn inputs: skip, not fatal
    const support::Json& ev = (*doc)["traceEvents"];
    if (!ev.is_array()) continue;
    schema = std::max(schema, static_cast<int>((*doc)["schema_version"]
                                                   .as_int(kSchemaVersion)));
    for (std::size_t i = 0; i < ev.size(); ++i) all.push_back(ev.at(i));
  }
  if (all.size() == 0) return false;
  support::Json doc = support::Json::object();
  doc.set("schema_version", schema);
  doc.set("traceEvents", std::move(all));
  return support::write_json_file(out_path, doc, -1);
}

bool merge_trace_dir(const std::string& dir, const std::string& out_path) {
  std::vector<std::string> paths;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return false;
  while (dirent* e = ::readdir(d)) {
    const std::string name(e->d_name);
    if (name.rfind("trace-", 0) == 0 &&
        name.size() > 11 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      paths.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  std::sort(paths.begin(), paths.end());
  return merge_trace_files(paths, out_path);
}

}  // namespace cacqr::obs
