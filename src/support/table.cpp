#include "cacqr/support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "cacqr/support/error.hpp"

namespace cacqr {

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  // Column widths over header + all rows.
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    if (cells.size() > width.size()) width.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      width[i] = std::max(width[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(width[i]) + 2) << cells[i];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void TextTable::write_csv(const std::string& path) const {
  std::ofstream out(path);
  ensure(out.good(), "TextTable::write_csv: cannot open ", path);
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out << ',';
      out << cells[i];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace cacqr
