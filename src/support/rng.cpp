#include "cacqr/support/rng.hpp"

#include <cmath>

namespace cacqr {

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller: two uniforms -> two independent standard normals.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();  // avoid log(0)
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  constexpr double two_pi = 6.283185307179586476925286766559;
  cached_normal_ = r * std::sin(two_pi * u2);
  has_cached_normal_ = true;
  return r * std::cos(two_pi * u2);
}

}  // namespace cacqr
