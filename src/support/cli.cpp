#include "cacqr/support/cli.hpp"

#include <cstdlib>
#include <vector>

namespace cacqr {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      keys_.emplace_back(arg);
      values_.emplace_back("true");
    } else {
      keys_.emplace_back(arg.substr(0, eq));
      values_.emplace_back(arg.substr(eq + 1));
    }
  }
}

bool CliArgs::has(std::string_view key) const {
  for (const auto& k : keys_) {
    if (k == key) return true;
  }
  return false;
}

std::string CliArgs::get(std::string_view key, const std::string& fallback) const {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) return values_[i];
  }
  return fallback;
}

long long CliArgs::get_int(std::string_view key, long long fallback) const {
  const std::string v = get(key, "");
  return v.empty() ? fallback : std::atoll(v.c_str());
}

double CliArgs::get_double(std::string_view key, double fallback) const {
  const std::string v = get(key, "");
  return v.empty() ? fallback : std::atof(v.c_str());
}

bool CliArgs::get_bool(std::string_view key, bool fallback) const {
  const std::string v = get(key, "");
  if (v.empty()) return fallback;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace cacqr
