#include "cacqr/support/json.hpp"

#include <atomic>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#ifdef __linux__
#include <unistd.h>
#endif

namespace cacqr::support {

namespace {

const Json kNull;

/// Shortest text that round-trips the double exactly (std::to_chars
/// guarantees both), so equal values always serialize identically.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; the library never stores them, but a defensive
    // writer must emit *something* parseable.
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_value(std::string& out, const Json& v, int indent, int depth);

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

void append_value(std::string& out, const Json& v, int indent, int depth) {
  switch (v.type()) {
    case Json::Type::Null: out += "null"; break;
    case Json::Type::Bool: out += v.as_bool() ? "true" : "false"; break;
    case Json::Type::Number: append_number(out, v.as_number()); break;
    case Json::Type::String: append_escaped(out, v.as_string()); break;
    case Json::Type::Array: {
      if (v.size() == 0) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (i) out += ',';
        append_newline_indent(out, indent, depth + 1);
        append_value(out, v.at(i), indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Json::Type::Object: {
      const auto& members = v.members();
      if (members.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, val] : members) {
        if (!first) out += ',';
        first = false;
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, key);
        out += indent < 0 ? ":" : ": ";
        append_value(out, val, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

// ------------------------------------------------------------------ parser

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;  ///< nesting guard against adversarially deep input

  static constexpr int kMaxDepth = 64;

  [[nodiscard]] bool eof() const noexcept { return pos >= text.size(); }
  [[nodiscard]] char peek() const noexcept { return text[pos]; }

  void skip_ws() noexcept {
    while (!eof() && (text[pos] == ' ' || text[pos] == '\t' ||
                      text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) noexcept {
    if (eof() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool consume_word(std::string_view w) noexcept {
    if (text.substr(pos, w.size()) != w) return false;
    pos += w.size();
    return true;
  }

  std::optional<Json> value() {
    if (++depth > kMaxDepth) return std::nullopt;
    skip_ws();
    if (eof()) return std::nullopt;
    std::optional<Json> out;
    switch (peek()) {
      case '{': out = object(); break;
      case '[': out = array(); break;
      case '"': {
        auto s = string();
        if (s) out = Json(std::move(*s));
        break;
      }
      case 't': out = consume_word("true") ? std::optional<Json>(Json(true))
                                           : std::nullopt;
        break;
      case 'f': out = consume_word("false") ? std::optional<Json>(Json(false))
                                            : std::nullopt;
        break;
      case 'n': out = consume_word("null") ? std::optional<Json>(Json())
                                           : std::nullopt;
        break;
      default: out = number(); break;
    }
    --depth;
    return out;
  }

  std::optional<Json> number() {
    const std::size_t start = pos;
    if (!eof() && (peek() == '-' || peek() == '+')) ++pos;
    bool digits = false;
    auto eat_digits = [&] {
      while (!eof() && peek() >= '0' && peek() <= '9') {
        ++pos;
        digits = true;
      }
    };
    eat_digits();
    if (!eof() && peek() == '.') {
      ++pos;
      eat_digits();
    }
    if (digits && !eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '-' || peek() == '+')) ++pos;
      const bool before = digits;
      digits = false;
      eat_digits();
      digits = digits && before;
    }
    if (!digits) return std::nullopt;
    // from_chars, not strtod: locale-independent, mirroring the
    // to_chars writer (a host app's setlocale must not break parsing).
    const char* tok_begin = text.data() + start;
    const char* tok_end = text.data() + pos;
    if (*tok_begin == '+') ++tok_begin;  // from_chars rejects leading '+'
    double v = 0.0;
    const auto res = std::from_chars(tok_begin, tok_end, v);
    if (res.ec != std::errc{} || res.ptr != tok_end || !std::isfinite(v)) {
      return std::nullopt;
    }
    return Json(v);
  }

  std::optional<std::string> string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (!eof()) {
      const char c = text[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return std::nullopt;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // Encode as UTF-8 (surrogate pairs are not recombined -- the
          // library never writes them; lone surrogates round-trip as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> array() {
    if (!consume('[')) return std::nullopt;
    Json out = Json::array();
    skip_ws();
    if (consume(']')) return out;
    for (;;) {
      auto v = value();
      if (!v) return std::nullopt;
      out.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return out;
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<Json> object() {
    if (!consume('{')) return std::nullopt;
    Json out = Json::object();
    skip_ws();
    if (consume('}')) return out;
    for (;;) {
      skip_ws();
      auto key = string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      auto v = value();
      if (!v) return std::nullopt;
      out.set(*key, std::move(*v));
      skip_ws();
      if (consume('}')) return out;
      if (!consume(',')) return std::nullopt;
    }
  }
};

}  // namespace

const Json& Json::at(std::size_t i) const noexcept {
  if (!is_array() || i >= arr_.size()) return kNull;
  return arr_[i];
}

const Json& Json::operator[](std::string_view key) const noexcept {
  if (is_object()) {
    for (const auto& [k, v] : obj_) {
      if (k == key) return v;
    }
  }
  return kNull;
}

bool Json::has(std::string_view key) const noexcept {
  if (!is_object()) return false;
  for (const auto& [k, v] : obj_) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

void Json::set(std::string_view key, Json v) {
  type_ = Type::Object;
  for (auto& [k, val] : obj_) {
    if (k == key) {
      val = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::string(key), std::move(v));
}

std::string Json::dump(int indent) const {
  std::string out;
  append_value(out, *this, indent, 0);
  return out;
}

std::optional<Json> Json::parse(std::string_view text) {
  Parser p{text};
  auto v = p.value();
  if (!v) return std::nullopt;
  p.skip_ws();
  if (!p.eof()) return std::nullopt;  // trailing garbage
  return v;
}

std::optional<Json> read_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return Json::parse(ss.str());
}

bool write_json_file(const std::string& path, const Json& value, int indent) {
  // Unique temp name per writer: a process token separates processes
  // (pid on Linux; elsewhere the ASLR-randomized address of the static
  // below, distinct per process in practice), the atomic counter
  // separates threads of one process (the SPMD runtime maps ranks onto
  // threads) -- so every writer renames its own complete file and
  // readers see old-or-new, never torn.
  static std::atomic<unsigned long> write_seq{0};
  const unsigned long seq = write_seq.fetch_add(1, std::memory_order_relaxed);
#ifdef __linux__
  const unsigned long proc_token = static_cast<unsigned long>(getpid());
#else
  const unsigned long proc_token = static_cast<unsigned long>(
      reinterpret_cast<std::uintptr_t>(&write_seq) >> 4);
#endif
  const std::string tmp = path + ".tmp." + std::to_string(proc_token) + "." +
                          std::to_string(seq);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << value.dump(indent) << '\n';
    out.close();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace cacqr::support
