#include "cacqr/model/validation.hpp"

#include <algorithm>

#include "cacqr/support/error.hpp"
#include "cacqr/support/timer.hpp"

namespace cacqr::model {

MeasuredSection::MeasuredSection(rt::Comm& world)
    : world_(world), before_(world.counters()) {}

MeasuredSection::~MeasuredSection() {
  const rt::CostCounters d = world_.counters() - before_;
  // msgs/words/flops fit a double's 53-bit mantissa at any size this
  // library reaches; the publish channel is the only path that survives
  // the process transports.
  const double blob[] = {static_cast<double>(d.msgs),
                         static_cast<double>(d.words),
                         static_cast<double>(d.flops), d.time};
  world_.publish(blob);
}

ValidationRow run_validation(
    const std::string& label, int ranks, const Machine& machine,
    const std::function<void(rt::Comm&)>& setup_and_section,
    const Cost& analytic, std::optional<rt::TransportKind> transport) {
  ValidationRow row;
  row.label = label;
  row.ranks = ranks;
  row.analytic = analytic;
  row.analytic_s = analytic.time(machine);

  WallTimer timer;
  const rt::RunOutput out = rt::Runtime::run_collect(
      ranks, setup_and_section, machine.rt_params(), 0, transport);
  row.wall_s = timer.seconds();
  row.modeled_clock_s = rt::modeled_time(out.counters);

  ensure(out.published.size() == static_cast<std::size_t>(ranks),
         "run_validation: missing published deltas");
  for (const std::vector<double>& blob : out.published) {
    ensure(blob.size() == 4,
           "run_validation: body must publish exactly one MeasuredSection");
    row.measured.msgs =
        std::max(row.measured.msgs, static_cast<i64>(blob[0]));
    row.measured.words =
        std::max(row.measured.words, static_cast<i64>(blob[1]));
    row.measured.flops =
        std::max(row.measured.flops, static_cast<i64>(blob[2]));
    row.measured.time = std::max(row.measured.time, blob[3]);
  }
  return row;
}

support::Json validation_to_json(const std::vector<ValidationRow>& rows,
                                 const Machine& machine,
                                 rt::TransportKind transport) {
  support::Json doc = support::Json::object();
  doc.set("schema", "cacqr.model_validation.v1");
  doc.set("bench", "bench_model_validation");
  doc.set("transport", rt::transport_name(transport));
  doc.set("machine", machine.name);
  doc.set("alpha_s", machine.alpha_s);
  doc.set("beta_s", machine.beta_s);
  doc.set("gamma_s", machine.gamma_s);
  support::Json arr = support::Json::array();
  for (const ValidationRow& r : rows) {
    support::Json jr = support::Json::object();
    jr.set("configuration", r.label);
    jr.set("ranks", r.ranks);
    support::Json measured = support::Json::object();
    measured.set("msgs", r.measured.msgs);
    measured.set("words", r.measured.words);
    measured.set("flops", r.measured.flops);
    jr.set("measured", std::move(measured));
    support::Json analytic = support::Json::object();
    analytic.set("msgs", r.analytic.alpha);
    analytic.set("words", r.analytic.beta);
    analytic.set("flops", r.analytic.gamma);
    analytic.set("seconds", r.analytic_s);
    jr.set("analytic", std::move(analytic));
    jr.set("modeled_clock_seconds", r.modeled_clock_s);
    jr.set("wall_seconds", r.wall_s);
    arr.push_back(std::move(jr));
  }
  doc.set("rows", std::move(arr));
  return doc;
}

}  // namespace cacqr::model
