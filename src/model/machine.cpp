#include "cacqr/model/machine.hpp"

namespace cacqr::model {

// Calibration notes (see EXPERIMENTS.md):
//  - gamma: node peak / ranks-per-node * sustained fraction.  KNL with one
//    MPI rank per core sustains roughly half of peak on DGEMM-heavy code;
//    XE Bulldozer modules ~70%.
//  - beta: *effective* per-rank collective bandwidth.  The raw NIC share
//    (injection bandwidth / ranks-per-node) would be 0.195 GB/s on
//    Stampede2, but most butterfly stages of the small communicators these
//    algorithms use are intra-node shared-memory transfers; measured MPI
//    effective bandwidths with 64 ranks/node sit around 1-1.5 GB/s/rank
//    for mixed traffic.  The machines' *relative* balance (Stampede2
//    ~7-8x more flops per word, the paper's Section IV observation) is
//    preserved -- it is what drives who-wins.
//  - alpha: end-to-end MPI latency (network + software), higher on the
//    Gemini torus than on Omni-Path's fat tree at these scales.

Machine stampede2() {
  Machine m;
  m.name = "Stampede2 (KNL, Omni-Path)";
  m.ranks_per_node = 64;
  m.peak_gflops_node = 3000.0;
  const double sustained_gflops_rank = 3000.0 / 64 * 0.55;  // ~25.8 GF/s
  m.gamma_s = 1.0 / (sustained_gflops_rank * 1e9);
  const double eff_bw_bytes_rank = 1.33e9;  // blended intra/inter-node
  m.beta_s = 8.0 / eff_bw_bytes_rank;
  m.alpha_s = 2.0e-6;
  return m;
}

Machine bluewaters() {
  Machine m;
  m.name = "Blue Waters (Cray XE, Gemini)";
  m.ranks_per_node = 16;
  m.peak_gflops_node = 313.0;
  const double sustained_gflops_rank = 313.0 / 16 * 0.70;  // ~13.7 GF/s
  m.gamma_s = 1.0 / (sustained_gflops_rank * 1e9);
  const double eff_bw_bytes_rank = 1.8e9;  // 16 ranks/node share less
  m.beta_s = 8.0 / eff_bw_bytes_rank;
  m.alpha_s = 3.0e-6;
  return m;
}

double gflops_per_node(double m, double n, double seconds, double nodes) {
  const double hh_flops = 2.0 * m * n * n - 2.0 / 3.0 * n * n * n;
  return hh_flops / seconds / 1e9 / nodes;
}

}  // namespace cacqr::model
