#include <limits>

#include "cacqr/model/sweep.hpp"

namespace cacqr::model {

std::vector<std::pair<i64, i64>> valid_grids(i64 ranks) {
  std::vector<std::pair<i64, i64>> out;
  for (i64 c = 1; c * c * c <= ranks; ++c) {
    if (ranks % (c * c) != 0) continue;
    const i64 d = ranks / (c * c);
    if (d % c != 0) continue;
    out.emplace_back(c, d);
  }
  return out;
}

CaCqr2Choice eval_cacqr2(double m, double n, i64 c, i64 d,
                         const Machine& machine) {
  CaCqr2Choice ch;
  ch.c = c;
  ch.d = d;
  ch.cost = cost_ca_cqr2(m, n, static_cast<double>(c),
                         static_cast<double>(d));
  ch.seconds = ch.cost.time(machine);
  return ch;
}

CaCqr2Choice best_cacqr2(double m, double n, i64 ranks,
                         const Machine& machine) {
  CaCqr2Choice best;
  best.seconds = std::numeric_limits<double>::infinity();
  for (const auto& [c, d] : valid_grids(ranks)) {
    // Local blocks must be non-empty: at least one matrix row per rank
    // row class and one column per rank column class.
    if (static_cast<double>(d) > m || static_cast<double>(c) > n) continue;
    const CaCqr2Choice ch = eval_cacqr2(m, n, c, d, machine);
    if (ch.seconds < best.seconds) best = ch;
  }
  ensure(best.seconds < std::numeric_limits<double>::infinity(),
         "best_cacqr2: no valid grid for ", ranks, " ranks");
  return best;
}

PgeqrfChoice eval_pgeqrf(double m, double n, i64 pr, i64 pc, i64 block,
                         const Machine& machine, bool form_q) {
  PgeqrfChoice ch;
  ch.pr = pr;
  ch.pc = pc;
  ch.block = block;
  ch.cost = cost_pgeqrf_2d(m, n, static_cast<double>(pr),
                           static_cast<double>(pc),
                           static_cast<double>(block), form_q);
  ch.seconds = ch.cost.time(machine);
  return ch;
}

PgeqrfChoice best_pgeqrf(double m, double n, i64 ranks,
                         const Machine& machine, bool form_q) {
  PgeqrfChoice best;
  best.seconds = std::numeric_limits<double>::infinity();
  for (i64 pr = 1; pr <= ranks; pr *= 2) {
    if (ranks % pr != 0) continue;
    const i64 pc = ranks / pr;
    for (const i64 b : {i64{16}, i64{32}, i64{64}}) {
      // The layout needs at least one block row/column per process.
      if (static_cast<double>(pr) * static_cast<double>(b) > m ||
          static_cast<double>(pc) * static_cast<double>(b) > n) {
        continue;
      }
      const PgeqrfChoice ch = eval_pgeqrf(m, n, pr, pc, b, machine, form_q);
      if (ch.seconds < best.seconds) best = ch;
    }
  }
  ensure(best.seconds < std::numeric_limits<double>::infinity(),
         "best_pgeqrf: no valid configuration for ", ranks, " ranks");
  return best;
}

}  // namespace cacqr::model
