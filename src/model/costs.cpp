#include <algorithm>
#include <cmath>

#include "cacqr/model/costs.hpp"

namespace cacqr::model {

namespace {

double clog2(double p) { return p <= 1.0 ? 0.0 : std::ceil(std::log2(p)); }

/// (p-1)/p: butterfly collectives move that fraction of the payload.
double frac(double p) { return p <= 1.0 ? 0.0 : (p - 1.0) / p; }

/// Mirrors chol::effective_base_case (kept textually in sync; the model
/// must reproduce the implementation's recursion depth exactly).
double model_base_case(double n, double g, double requested) {
  double target = requested > 0 ? requested : std::max(g, n / (g * g));
  target = std::max(target, g);
  double n0 = n;
  while (n0 > target && std::fmod(n0, 2.0) == 0.0 &&
         std::fmod(n0 / 2.0, g) == 0.0) {
    n0 /= 2.0;
  }
  return n0;
}

}  // namespace

Cost cost_bcast(double words, double p) {
  if (p <= 1.0) return {};
  // Binomial scatter (root sends words*(p-1)/p over ceil(lg p) messages)
  // + Bruck allgather (every rank sends words*(p-1)/p).
  return {2.0 * clog2(p), 2.0 * words * frac(p), 0.0, words};
}

Cost cost_allreduce(double words, double p) {
  if (p <= 1.0) return {};
  // Recursive-halving reduce-scatter + Bruck allgather (Rabenseifner).
  return {2.0 * clog2(p), 2.0 * words * frac(p), 0.0, words};
}

Cost cost_reduce(double words, double p) { return cost_allreduce(words, p); }

Cost cost_allgather(double total_words, double p) {
  if (p <= 1.0) return {};
  return {clog2(p), total_words * frac(p), 0.0, total_words};
}

Cost cost_transpose(double words, double p) {
  if (p <= 1.0) return {};
  return {1.0, words, 0.0, words};
}

double flops_gemm(double m, double k, double n) { return 2.0 * m * k * n; }
double flops_gram(double m, double n) { return m * n * (n + 1.0); }
double flops_trmm(double rows, double n) { return rows * n * (n + 1.0); }
double flops_cholinv(double n) {
  // potrf ~ n^3/3 + trtri ~ n^3/3 with the implementation's low-order
  // terms folded into a 2n^2 slack per factor.
  return 2.0 * n * n * n / 3.0 + 4.0 * n * n;
}
double flops_geqrf(double m, double n) {
  return 2.0 * m * n * n - 2.0 / 3.0 * n * n * n;
}

Cost cost_mm3d(double m, double k, double n, double g) {
  const double g2 = g * g;
  Cost c;
  c += cost_bcast(m * k / g2, g);      // line 1: A along the row comm
  c += cost_bcast(k * n / g2, g);      // line 2: B along the column comm
  c.gamma += flops_gemm(m / g, k / g, n / g);  // line 3
  c += cost_allreduce(m * n / g2, g);  // line 4: C along depth
  c.mem = (m * k + k * n + 2.0 * m * n) / g2;
  return c;
}

Cost cost_block_backsolve(double m, double n, double nblocks, double g) {
  if (nblocks <= 1.0) return cost_mm3d(m, n, n, g);
  const double bs = n / nblocks;
  Cost c;
  // sum_j (j corrections + 1 diagonal multiply), each an m x bs x bs MM3D.
  const double mms = nblocks * (nblocks - 1.0) / 2.0 + nblocks;
  c += cost_mm3d(m, bs, bs, g).times(mms);
  return c;
}

Cost cost_cfr3d(double n, double g, double n0, int inverse_depth) {
  if (g <= 1.0) {
    Cost c;
    c.gamma = flops_cholinv(n);
    c.mem = 2.0 * n * n;
    return c;
  }
  const double base = model_base_case(n, g, n0);
  Cost c;
  double level_n = n;
  double calls = 1.0;
  int depth_left = inverse_depth;
  while (level_n > base) {
    const double h = level_n / 2.0;
    Cost level;
    // Lines 6/8: two Transpose collectives on h x h operands.
    level += cost_transpose(h * h / (g * g), g * g).times(2.0);
    if (depth_left > 0) {
      // Partial-inverse level: L21 recovered by block back-substitution
      // (plus the R11/Y11 transposes), the L21 L21^T update stays, and
      // the two Y21 multiplies (lines 12/14) are skipped.
      const int child = depth_left - 1;
      if (child > 0) {
        level += cost_transpose(h * h / (g * g), g * g).times(2.0);
        level += cost_block_backsolve(h, h, double(1 << child), g);
      } else {
        level += cost_mm3d(h, h, h, g);
      }
      level += cost_mm3d(h, h, h, g);  // line 9: L21 L21^T
    } else {
      // Lines 7/9/12/14: four MM3Ds of h x h x h.
      level += cost_mm3d(h, h, h, g).times(4.0);
    }
    // Line 10: the Schur-complement axpy.
    level.gamma += 2.0 * h * h / (g * g);
    c += level.times(calls);
    calls *= 2.0;
    level_n = h;
    if (depth_left > 0) --depth_left;
  }
  // Base cases: allgather over the slice + redundant sequential CholInv.
  Cost bc;
  bc += cost_allgather(base * base, g * g);
  bc.gamma += flops_cholinv(base);
  c += bc.times(calls);
  c.mem = std::max(c.mem, 2.0 * n * n / (g * g) + base * base);
  return c;
}

Cost cost_gram_stage(double m, double n, double c, double d) {
  Cost t;
  const double local_a = m * n / (d * c);      // words of the local block
  const double gram_blk = n * n / (c * c);     // Gram block on the subcube
  // Lines 1-5 (Table V rows 1-5; line 5's operand is the n^2/c^2 Gram
  // block -- see DESIGN.md on the Table V typo).
  t += cost_bcast(local_a, c);
  t.gamma += c <= 1.0 ? flops_gram(m / d, n)
                      : flops_gemm(n / c, m / d, n / c);
  t += cost_reduce(gram_blk, c);
  t += cost_allreduce(gram_blk, d / c);
  t += cost_bcast(gram_blk, c);
  return t;
}

Cost cost_ca_cqr(double m, double n, double c, double d, double n0,
                 int inverse_depth) {
  const double local_a = m * n / (d * c);      // words of the local block
  const double gram_blk = n * n / (c * c);     // Gram block on the subcube
  // Lines 1-5: the Gram assembly.
  Cost t = cost_gram_stage(m, n, c, d);
  const int depth = c <= 1.0 ? 0 : inverse_depth;
  // Lines 6-7: CFR3D on the subcube.
  t += cost_cfr3d(n, c, n0, depth);
  // R and R^{-1} materialization (two Transpose collectives).
  t += cost_transpose(gram_blk, c * c).times(2.0);
  // Line 8: Q = A R^{-1}.
  if (c <= 1.0) {
    t.gamma += flops_trmm(m / d, n);
  } else {
    // One MM3D of the (m c/d) x n panel (depth 0), or the block
    // back-substitution sweep (InverseDepth strategy).
    const double base = model_base_case(n, c, n0);
    int max_depth = 0;
    for (double lv = n; lv > base; lv /= 2.0) ++max_depth;
    const double nblocks = double(1 << std::min(depth, max_depth));
    t += cost_block_backsolve(m * c / d, n, nblocks, c);
  }
  t.mem = std::max(t.mem, 3.0 * local_a + 2.0 * gram_blk);
  return t;
}

Cost cost_ca_cqr2(double m, double n, double c, double d, double n0,
                  int inverse_depth) {
  Cost t = cost_ca_cqr(m, n, c, d, n0, inverse_depth).times(2.0);
  // Algorithm 9 line 4: R = R2 * R1.
  if (c <= 1.0) {
    t.gamma += flops_trmm(n, n);
  } else {
    t += cost_mm3d(n, n, n, c);
  }
  return t;
}

Cost cost_cqr2_1d(double m, double n, double p) {
  return cost_ca_cqr2(m, n, 1.0, p);
}

Cost cost_pgeqrf_2d(double m, double n, double pr, double pc, double b,
                    bool form_q) {
  Cost t;
  const double npanels = n / b;
  for (double k = 0; k < npanels; k += 1.0) {
    const double rows_k = m - k * b;        // global suffix height
    const double mloc = rows_k / pr;        // local suffix rows
    const double trail = n - (k + 1.0) * b; // trailing columns
    const double trailloc = trail / pc;

    // Panel factorization, ScaLAPACK-faithful: per column a pdnrm2-style
    // combine, the diagonal-element broadcast (pdlarfg), and pdlarf's
    // reduce + broadcast of the <= b-word projection -- four collectives
    // over the process column per column, the source of PGEQRF's
    // O(n log P) synchronization cost.
    t += cost_allreduce(1.0, pr).times(b);
    t += cost_bcast(1.0, pr).times(b);
    t += cost_reduce(b / 2.0, pr).times(b);
    t += cost_bcast(b / 2.0, pr).times(b);
    t.gamma += 2.0 * mloc * b * b + 3.0 * mloc * b;  // panel updates

    // Compact-WY T: local Gram + b^2 allreduce + triangular assembly.
    t.gamma += flops_gemm(b, mloc, b) + b * b * b / 3.0;
    t += cost_allreduce(b * b, pr);

    // (V, T) broadcast along the process row.
    t += cost_bcast(mloc * b + b * b, pc);

    // Blocked trailing update: V^T C allreduce + three local gemms.
    if (trail > 0) {
      t.gamma += flops_gemm(b, mloc, trailloc);
      t += cost_allreduce(b * trailloc, pr);
      t.gamma += flops_gemm(b, b, trailloc) + flops_gemm(mloc, b, trailloc);
    }

    // Explicit Q formation applies the same panel to n/pc columns.
    if (form_q) {
      const double qcols = n / pc;
      t.gamma += flops_gemm(b, mloc, qcols);
      t += cost_allreduce(b * qcols, pr);
      t.gamma += flops_gemm(b, b, qcols) + flops_gemm(mloc, b, qcols);
    }
  }
  t.mem = m * n / (pr * pc) * (form_q ? 3.0 : 2.0);
  return t;
}

Cost cost_tsqr(double m, double n, double p) {
  Cost t;
  // Leaf factorization.
  t.gamma += flops_geqrf(m / p, n);
  const double lg = clog2(p);
  // Up-sweep: one n(n+1)/2-word hop per level + stacked 2n x n QR.
  t.alpha += lg;
  t.beta += lg * n * (n + 1.0) / 2.0;
  t.gamma += lg * flops_geqrf(2.0 * n, n);
  // Down-sweep: one n^2-word hop per level + Q application to [C; 0].
  t.alpha += lg;
  t.beta += lg * n * n;
  t.gamma += lg * 4.0 * 2.0 * n * n * n / 2.0;  // apply_q on 2n x n
  // Leaf Q: apply the local reflectors to [C; 0].
  t.gamma += 4.0 * (m / p) * n * n / 2.0 * 2.0;
  // R replication.
  t += cost_bcast(n * n, p);
  t.mem = m * n / p + 2.0 * n * n * (lg + 1.0);
  return t;
}

}  // namespace cacqr::model
