#pragma once
/// \file internal.hpp
/// \brief Padding helpers shared by the factorize driver TUs.
///
/// The padding contract is part of the bitwise-determinism story: the
/// standalone driver (factorize.cpp) and the batched driver (batched.cpp)
/// must produce byte-identical padded inputs for the same panel, so the
/// helpers live here instead of being duplicated per TU.

#include <algorithm>
#include <cmath>
#include <utility>

#include "cacqr/lin/matrix.hpp"
#include "cacqr/lin/util.hpp"
#include "cacqr/support/math.hpp"

namespace cacqr::core::detail {

/// Padded dimensions and the padded matrix itself (see factorize.hpp).
struct Padded {
  lin::Matrix a;
  i64 m = 0;  ///< original rows
  i64 n = 0;  ///< original cols
};

/// Pads columns to a multiple of `col_mult` (delta-scaled identity) and
/// rows to a multiple of `row_mult` (zero rows), keeping m_pad >= n_pad.
inline Padded pad_to_multiples(lin::ConstMatrixView a, i64 row_mult,
                               i64 col_mult) {
  const i64 m = a.rows;
  const i64 n = a.cols;
  const i64 n_pad = round_up(n, col_mult);
  const i64 m_pad = round_up(std::max(m + (n_pad - n), n_pad), row_mult);
  if (m_pad == m && n_pad == n) {
    return {lin::materialize(a), m, n};
  }
  const double fro = lin::frob_norm(a);
  const double delta =
      fro > 0.0 ? fro / std::sqrt(static_cast<double>(n)) : 1.0;
  lin::Matrix padded(m_pad, n_pad);
  lin::copy(a, padded.sub(0, 0, m, n));
  for (i64 j = n; j < n_pad; ++j) {
    padded(m + (j - n), j) = delta;
  }
  return {std::move(padded), m, n};
}

inline Padded pad_for_grid(lin::ConstMatrixView a, int c, int d) {
  return pad_to_multiples(a, d, c);
}

}  // namespace cacqr::core::detail
