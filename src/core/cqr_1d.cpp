#include "cacqr/core/cqr_1d.hpp"

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/blas_f.hpp"
#include "cacqr/lin/factor.hpp"
#include "cacqr/obs/trace.hpp"

namespace cacqr::core {

using dist::DistMatrix;

namespace {

void check_1d_layout(const DistMatrix& a, const rt::Comm& comm) {
  ensure_dim(a.layout().col_procs == 1 &&
                 a.layout().row_procs == comm.size() &&
                 a.layout().my_row == comm.rank(),
             "cqr_1d: matrix must be row-distributed over the communicator");
  ensure_dim(a.rows() >= a.cols(), "cqr_1d: requires m >= n");
}

}  // namespace

Cqr1dResult cqr_1d(const DistMatrix& a, const rt::Comm& comm,
                   Precision gram_precision) {
  check_1d_layout(a, comm);
  const i64 n = a.cols();
  const bool f32_gram = gram_precision != Precision::fp64;

  // Line 1: local symmetric rank-(m/P) update X = A_p^T A_p (beta == 0
  // overwrites the whole buffer, so the Gram staging is uninitialized).
  // The fp32 lane narrows the local panel first and forms the Gram
  // contribution through the fp32 micro-kernel; `z` then stays untouched
  // until the widen after the Allreduce.
  lin::Matrix z = lin::Matrix::uninit(n, n);
  lin::MatrixF zf;
  {
    obs::SpanScope span("core", "gram");
    span.arg("n", n);
    span.arg("rows", a.local().rows());
    if (f32_gram) {
      lin::MatrixF af = lin::MatrixF::uninit(a.local().rows(), n);
      lin::narrow(a.local(), af);
      zf = lin::MatrixF::uninit(n, n);
      lin::gram_f32(1.0f, af, 0.0f, zf);
    } else {
      lin::gram(1.0, a.local(), 0.0, z);
    }
  }

  // Line 2: Allreduce the n x n Gram contributions (half-width payload on
  // the fp32 lane).  With overlap on, it is started here and the Q
  // staging panel (the copy of A_p that line 4 multiplies in place) is
  // materialized while it flies, the copy chunks polling progress;
  // overlap off completes it immediately, the blocking order.
  rt::Request gram_sum =
      f32_gram
          ? comm.start_allreduce_sum_f32(zf.wire())
          : comm.start_allreduce_sum(
                {z.data(), static_cast<std::size_t>(z.size())});
  Cqr1dResult out;
  if (rt::overlap_enabled()) {
    out = {DistMatrix::uninit(a.rows(), n, comm.size(), 1, comm.rank(), 0),
           lin::Matrix(n, n)};
    rt::ProgressScope scope(comm);
    lin::copy(a.local(), out.q.local());
  } else {
    gram_sum.wait();
    out = {a, lin::Matrix(n, n)};
  }
  gram_sum.wait();
  if (f32_gram) lin::widen(zf, z);

  // Line 3: redundant CholInv: R^T = chol(Z), R^{-T} = L^{-1}.
  obs::SpanScope chol_span("core", "chol");
  chol_span.arg("n", n);
  auto li = lin::cholinv(z);
  chol_span.close();

  // Line 4: Q_p = A_p R^{-1}, purely local triangular multiply.
  obs::SpanScope trsm_span("core", "trsm");
  trsm_span.arg("n", n);
  lin::trmm(lin::Side::Right, lin::Uplo::Lower, lin::Trans::T,
            lin::Diag::NonUnit, 1.0, li.l_inv, out.q.local());
  trsm_span.close();

  // Transpose L into the returned upper-triangular R.  Deliberately
  // sequential: the n^2/2-element extraction is noise next to the n^3/3
  // cholinv above, and its triangular columns defeat the elements-per-
  // chunk grain math of parallel_for_cols.
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = 0; i <= j; ++i) out.r(i, j) = li.l(j, i);
  }
  return out;
}

Cqr1dResult cqr2_1d(const DistMatrix& a, const rt::Comm& comm,
                    Precision precision) {
  // Algorithm 7: two passes, then R = R2 * R1 sequentially on every rank.
  // mixed runs only the first Gram in fp32 (the fp64 second pass is the
  // correction sweep); fp32 keeps both Grams in fp32.
  obs::SpanScope pass1("core", "cqr_pass");
  pass1.arg("pass", 1);
  Cqr1dResult first = cqr_1d(a, comm, precision);
  pass1.close();
  obs::SpanScope pass2("core", "cqr_pass");
  pass2.arg("pass", 2);
  Cqr1dResult second =
      cqr_1d(first.q, comm,
             precision == Precision::fp32 ? Precision::fp32 : Precision::fp64);
  pass2.close();
  lin::trmm(lin::Side::Left, lin::Uplo::Upper, lin::Trans::N,
            lin::Diag::NonUnit, 1.0, second.r, first.r);
  return {std::move(second.q), std::move(first.r)};
}

}  // namespace cacqr::core
