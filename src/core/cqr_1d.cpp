#include "cacqr/core/cqr_1d.hpp"

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/factor.hpp"

namespace cacqr::core {

using dist::DistMatrix;

namespace {

void check_1d_layout(const DistMatrix& a, const rt::Comm& comm) {
  ensure_dim(a.layout().col_procs == 1 &&
                 a.layout().row_procs == comm.size() &&
                 a.layout().my_row == comm.rank(),
             "cqr_1d: matrix must be row-distributed over the communicator");
  ensure_dim(a.rows() >= a.cols(), "cqr_1d: requires m >= n");
}

}  // namespace

Cqr1dResult cqr_1d(const DistMatrix& a, const rt::Comm& comm) {
  check_1d_layout(a, comm);
  const i64 n = a.cols();

  // Line 1: local symmetric rank-(m/P) update X = A_p^T A_p (beta == 0
  // overwrites the whole buffer, so the Gram staging is uninitialized).
  lin::Matrix z = lin::Matrix::uninit(n, n);
  lin::gram(1.0, a.local(), 0.0, z);

  // Line 2: Allreduce the n x n Gram contributions.  With overlap on, it
  // is started here and the Q staging panel (the copy of A_p that line 4
  // multiplies in place) is materialized while it flies, the copy chunks
  // polling progress; overlap off completes it immediately, the blocking
  // order.
  rt::Request gram_sum =
      comm.start_allreduce_sum({z.data(), static_cast<std::size_t>(z.size())});
  Cqr1dResult out;
  if (rt::overlap_enabled()) {
    out = {DistMatrix::uninit(a.rows(), n, comm.size(), 1, comm.rank(), 0),
           lin::Matrix(n, n)};
    rt::ProgressScope scope(comm);
    lin::copy(a.local(), out.q.local());
  } else {
    gram_sum.wait();
    out = {a, lin::Matrix(n, n)};
  }
  gram_sum.wait();

  // Line 3: redundant CholInv: R^T = chol(Z), R^{-T} = L^{-1}.
  auto li = lin::cholinv(z);

  // Line 4: Q_p = A_p R^{-1}, purely local triangular multiply.
  lin::trmm(lin::Side::Right, lin::Uplo::Lower, lin::Trans::T,
            lin::Diag::NonUnit, 1.0, li.l_inv, out.q.local());

  // Transpose L into the returned upper-triangular R.  Deliberately
  // sequential: the n^2/2-element extraction is noise next to the n^3/3
  // cholinv above, and its triangular columns defeat the elements-per-
  // chunk grain math of parallel_for_cols.
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = 0; i <= j; ++i) out.r(i, j) = li.l(j, i);
  }
  return out;
}

Cqr1dResult cqr2_1d(const DistMatrix& a, const rt::Comm& comm) {
  // Algorithm 7: two passes, then R = R2 * R1 sequentially on every rank.
  Cqr1dResult first = cqr_1d(a, comm);
  Cqr1dResult second = cqr_1d(first.q, comm);
  lin::trmm(lin::Side::Left, lin::Uplo::Upper, lin::Trans::N,
            lin::Diag::NonUnit, 1.0, second.r, first.r);
  return {std::move(second.q), std::move(first.r)};
}

}  // namespace cacqr::core
