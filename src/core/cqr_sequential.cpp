#include "cacqr/core/cqr.hpp"

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/factor.hpp"

namespace cacqr::core {

QrFactors cqr(lin::ConstMatrixView a) {
  const i64 n = a.cols;
  ensure_dim(a.rows >= n, "cqr: requires m >= n");

  // Line 1: W = Syrk(A) = A^T A.
  lin::Matrix w(n, n);
  lin::gram(1.0, a, 0.0, w);

  // Line 2: R^T = chol(W) and R^{-T} = L^{-1} in one embedded recursion.
  auto li = lin::cholinv(w);  // li.l == R^T, li.l_inv == R^{-T}

  // Line 3: Q = A R^{-1} = A (L^{-1})^T, a triangular multiply (m n^2).
  QrFactors out{lin::materialize(a), lin::Matrix(n, n)};
  lin::trmm(lin::Side::Right, lin::Uplo::Lower, lin::Trans::T,
            lin::Diag::NonUnit, 1.0, li.l_inv, out.q);

  // R = L^T.
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = 0; i <= j; ++i) out.r(i, j) = li.l(j, i);
  }
  return out;
}

QrFactors cqr2(lin::ConstMatrixView a) {
  // Line 1-2: two CholeskyQR passes.
  QrFactors first = cqr(a);
  QrFactors second = cqr(first.q);
  // Line 3: R = R2 * R1 (triangular-triangular multiply, n^3/3).
  lin::trmm(lin::Side::Left, lin::Uplo::Upper, lin::Trans::N,
            lin::Diag::NonUnit, 1.0, second.r, first.r);
  return {std::move(second.q), std::move(first.r)};
}

}  // namespace cacqr::core
