#include "cacqr/core/ca_cqr.hpp"

#include <algorithm>

#include "cacqr/chol/cfr3d.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/blas_f.hpp"

namespace cacqr::core {

using dist::DistMatrix;

namespace {

std::span<double> span_of(lin::Matrix& m) {
  return {m.data(), static_cast<std::size_t>(m.size())};
}

void check_tunable_layout(const DistMatrix& a, const grid::TunableGrid& g) {
  ensure_dim(a.layout().row_procs == g.d() && a.layout().col_procs == g.c() &&
                 a.layout().my_row == g.coords().y &&
                 a.layout().my_col == g.coords().x,
             "ca_cqr: matrix must be distributed over the tunable grid "
             "(rows over d, columns over c)");
  ensure_dim(a.rows() >= a.cols(), "ca_cqr: requires m >= n");
}

/// The fp32 lane of ca_gram: same five lines, same peers, half the words
/// on every wire (fp32 pairs riding whole 8-byte words via
/// lin::MatrixF::wire()).  The fp64 panel is narrowed once per rank; the
/// returned Z is the widened image of the fp32 sum, so everything
/// downstream runs fp64 on fp32-rounded data -- the CholeskyQR2 second
/// pass absorbs that rounding.
DistMatrix ca_gram_f32(const DistMatrix& a, const grid::TunableGrid& g) {
  const int c = g.c();
  const auto [x, y, z] = g.coords();
  const i64 n = a.cols();

  // Line 1: Bcast(narrow(A) -> W, root x == z, Pi[:, y, z]).  The root
  // narrows its panel (threaded, elementwise); everyone else receives
  // into uninitialized storage the Bcast fully overwrites.
  lin::MatrixF w = lin::MatrixF::uninit(a.local().rows(), a.local().cols());
  if (x == z) lin::narrow(a.local(), w);
  g.row().bcast(w.wire(), z);

  // Line 2: X = W^T * narrow(A_local) through the fp32 kernel lane; with
  // c == 1 W already is the narrowed local panel (the bcast above was the
  // size-1 no-op), so the symmetric rank-k form needs no second narrow.
  lin::MatrixF xbuf = lin::MatrixF::uninit(n / c, n / c);
  if (c == 1) {
    lin::gram_f32(1.0f, w, 0.0f, xbuf);
  } else {
    lin::MatrixF al = lin::MatrixF::uninit(a.local().rows(),
                                           a.local().cols());
    lin::narrow(a.local(), al);
    lin::gemm_f32(lin::Trans::T, lin::Trans::N, 1.0f, w, al, 0.0f, xbuf);
  }

  // Line 3: Reduce within the contiguous y-group (half-width payload).
  g.ygroup_contig().reduce_sum_f32(xbuf.wire(),
                                   z % g.ygroup_contig().size());

  // Line 4: Allreduce across the strided y-group, overlapped with the
  // line-5 staging allocation exactly like the fp64 path.
  rt::Request gram_sum =
      g.ygroup_strided().start_allreduce_sum_f32(xbuf.wire());
  const auto& sub = g.subcube();
  DistMatrix zmat = DistMatrix::uninit(n, n, sub.g(), sub.g(),
                                       sub.coords().y, sub.coords().x);
  gram_sum.wait();

  // Line 5: Bcast along depth from root z == y mod c.
  g.depth().bcast(xbuf.wire(), y % c);

  lin::widen(xbuf, zmat.local());
  return zmat;
}

}  // namespace

DistMatrix ca_gram(const DistMatrix& a, const grid::TunableGrid& g,
                   Precision gram_precision) {
  check_tunable_layout(a, g);
  if (gram_precision != Precision::fp64) return ca_gram_f32(a, g);
  const int c = g.c();
  const auto [x, y, z] = g.coords();
  const i64 n = a.cols();

  // Line 1: Bcast(A -> W, root x == z, Pi[:, y, z]).  Only the root
  // stages its panel (threaded materialize); everyone else receives into
  // uninitialized storage the Bcast fully overwrites.
  lin::Matrix w = x == z ? materialize(a.local().view())
                         : lin::Matrix::uninit(a.local().rows(),
                                               a.local().cols());
  g.row().bcast(span_of(w), z);

  // Line 2: X = W^T * A_local, the (l = z mod c, j = x mod c) block of the
  // Gram matrix partially summed over this rank's row class.  With c == 1
  // W coincides with A_local and the product is a symmetric rank-k update
  // (Algorithm 6 line 1), at half the flops.  beta == 0 either way, so
  // the block is uninitialized staging too.
  lin::Matrix xbuf = lin::Matrix::uninit(n / c, n / c);
  if (c == 1) {
    lin::gram(1.0, a.local(), 0.0, xbuf);
  } else {
    lin::gemm(lin::Trans::T, lin::Trans::N, 1.0, w, a.local(), 0.0, xbuf);
  }

  // Line 3: Reduce within the contiguous y-group onto the member with
  // y mod c == z (group-comm rank z).
  g.ygroup_contig().reduce_sum(span_of(xbuf), z % g.ygroup_contig().size());

  // Line 4: Allreduce across the strided y-group completes the sum over
  // all d row classes (meaningful on the group roots; the next broadcast
  // overwrites everyone else).  Started before allocating line 5's
  // staging target (uninitialized -- the copy below overwrites it) so
  // the schedule's eager sends drain during the allocation; the real
  // Gram-Allreduce overlap window is cqr_1d's staging copy.
  rt::Request gram_sum = g.ygroup_strided().start_allreduce_sum(span_of(xbuf));
  const auto& sub = g.subcube();
  DistMatrix zmat = DistMatrix::uninit(n, n, sub.g(), sub.g(),
                                       sub.coords().y, sub.coords().x);
  gram_sum.wait();

  // Line 5: Bcast along depth from root z == y mod c, after which every
  // rank holds the Gram block for (row class y mod c, column class x):
  // Z distributed over the subcube slice, replicated over depth.
  g.depth().bcast(span_of(xbuf), y % c);

  lin::copy(xbuf, zmat.local());
  return zmat;
}

CaCqrResult ca_cqr(const DistMatrix& a, const grid::TunableGrid& g,
                   CaCqrOptions opts) {
  check_tunable_layout(a, g);
  const int c = g.c();
  const int d = g.d();
  const auto [x, y, z] = g.coords();
  (void)z;
  const i64 m = a.rows();
  const i64 n = a.cols();

  // Lines 1-5: Gram matrix on the subcube slice (fp32 lane when this
  // pass's options ask for it; Cholesky and the Q update below are
  // always fp64).
  DistMatrix zmat = ca_gram(a, g, opts.precision);

  // Optional diagonal shift (shifted CholeskyQR): global entry (i, i)
  // lives on the subcube rank with row class == column class.
  if (opts.shift != 0.0) {
    const auto& lay = zmat.layout();
    if (lay.my_row == lay.my_col) {
      for (i64 li = 0; li < lay.local_rows(); ++li) {
        zmat.local()(li, li) += opts.shift;
      }
    }
  }

  // Lines 6-7: CFR3D on the subcube gives R^T and R^{-T} (block diagonal
  // when inverse_depth > 0).
  const int depth = c == 1 ? 0 : opts.inverse_depth;
  auto [rt_factor, rinv_t] = chol::cfr3d(
      zmat, g.subcube(),
      {.base_case = opts.base_case, .inverse_depth = depth});

  // Materialize R and R^{-1} via the Transpose collective; the pair form
  // pipelines the two exchanges when overlap is on.
  auto [r, rinv] = dist::transpose3d_pair(rt_factor, rinv_t, g.subcube());

  // Line 8: Q = A R^{-1}.
  CaCqrResult out;
  if (c == 1) {
    // Each rank owns the whole upper-triangular R^{-1}: local triangular
    // multiply, exactly Algorithm 6 line 4.
    out.q = a;
    lin::trmm(lin::Side::Right, lin::Uplo::Upper, lin::Trans::N,
              lin::Diag::NonUnit, 1.0, rinv.local(), out.q.local());
  } else {
    // Present this subcube's (m c/d) x n row-panel of A in subcube
    // coordinates; with a full inverse this is one MM3D, with a partial
    // inverse the block back-substitution sweep (the InverseDepth
    // strategy) -- either way no communication crosses subcubes.
    DistMatrix a_panel =
        a.reinterpret_layout(m * c / d, n, c, c, y % c, x);
    // Match the depth CFR3D actually used after clamping.
    int max_depth = 0;
    const i64 n0 = chol::effective_base_case(n, c, opts.base_case);
    for (i64 lv = n; lv > n0; lv /= 2) ++max_depth;
    const i64 nblocks = i64(1) << std::min(depth, max_depth);
    DistMatrix q_panel =
        dist::block_backsolve(a_panel, r, rinv, nblocks, g.subcube());
    out.q = q_panel.reinterpret_layout(m, n, d, c, y, x);
  }
  out.r = std::move(r);
  return out;
}

DistMatrix compose_r(const DistMatrix& r2, const DistMatrix& r1,
                     const grid::TunableGrid& g) {
  if (g.c() == 1) {
    DistMatrix r = r1;
    lin::trmm(lin::Side::Left, lin::Uplo::Upper, lin::Trans::N,
              lin::Diag::NonUnit, 1.0, r2.local(), r.local());
    return r;
  }
  return dist::mm3d(r2, r1, g.subcube());
}

CaCqrResult ca_cqr2(const DistMatrix& a, const grid::TunableGrid& g,
                    CaCqrOptions opts) {
  // Lines 1-2: two CA-CQR passes (the shift, if any, applies to the first
  // pass only; the second factors an already well-conditioned Q1).  An
  // fp32 Gram follows the same pattern: `mixed` confines it to the first
  // pass -- the fp64 second pass is the correction sweep that restores
  // fp64-level orthogonality -- while `fp32` keeps it for both.
  CaCqrResult first = ca_cqr(a, g, opts);
  CaCqrResult second =
      ca_cqr(first.q, g,
             {.base_case = opts.base_case, .shift = 0.0,
              .inverse_depth = opts.inverse_depth,
              .precision = opts.precision == Precision::fp32
                               ? Precision::fp32
                               : Precision::fp64});
  // Line 4: R = R2 * R1.
  CaCqrResult out;
  out.q = std::move(second.q);
  out.r = compose_r(second.r, first.r, g);
  return out;
}

}  // namespace cacqr::core
