#include <cmath>
#include <cstdlib>
#include <map>
#include <mutex>
#include <numeric>
#include <optional>
#include <utility>

#include "cacqr/baseline/pgeqrf_2d.hpp"
#include "cacqr/core/batched.hpp"
#include "cacqr/core/factorize.hpp"
#include "cacqr/core/shifted.hpp"
#include "internal.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/kernel.hpp"
#include "cacqr/lin/parallel.hpp"
#include "cacqr/lin/util.hpp"
#include "cacqr/obs/trace.hpp"
#include "cacqr/support/timer.hpp"
#include "cacqr/tune/cache.hpp"

namespace cacqr::core {

using dist::DistMatrix;

Precision default_precision() {
  // Not latched through call_once: parse_precision is cheap, and
  // re-resolving keeps a misconfigured environment failing on every
  // call (the CACQR_KERNEL contract) instead of only the first.
  const char* s = std::getenv("CACQR_PRECISION");
  if (s == nullptr || *s == '\0') return Precision::fp64;
  const std::optional<Precision> p = parse_precision(s);
  ensure(p.has_value(), "CACQR_PRECISION: unrecognized precision \"", s,
         "\" (expected fp64, mixed, or fp32)");
  return *p;
}

std::pair<int, int> choose_grid(int nranks, i64 m, i64 n) {
  ensure_dim(nranks >= 1 && m >= n && n >= 1, "choose_grid: bad arguments");
  const double c_ideal = std::cbrt(static_cast<double>(nranks) *
                                   static_cast<double>(n) /
                                   static_cast<double>(m));
  int best_c = 1;
  int best_d = nranks;
  double best_score = std::abs(std::log(1.0 / std::max(c_ideal, 1e-300)));
  for (int c = 2; static_cast<long long>(c) * c * c <= nranks; ++c) {
    if (nranks % (c * c) != 0) continue;
    const int d = nranks / (c * c);
    if (d % c != 0) continue;
    const double score = std::abs(std::log(static_cast<double>(c) / c_ideal));
    if (score < best_score) {
      best_score = score;
      best_c = c;
      best_d = d;
    }
  }
  return {best_c, best_d};
}

namespace {

// Padding helpers live in internal.hpp so the batched driver pads
// byte-identically.
using detail::Padded;
using detail::pad_for_grid;
using detail::pad_to_multiples;

// ------------------------------------------------------ variant execution

/// The historical CA-CQR path on an explicit (c, d) grid.
FactorizeResult run_ca_cqr(lin::ConstMatrixView a, const rt::Comm& world,
                           const FactorizeOptions& opts, int c, int d) {
  ensure_dim(grid::TunableGrid::valid_shape(world.size(), c, d),
             "factorize: grid ", c, "x", d, "x", c, " invalid for ",
             world.size(), " ranks");

  Padded padded = pad_for_grid(a, c, d);
  grid::TunableGrid g(world, c, d);
  DistMatrix da = DistMatrix::from_global_on_tunable(padded.a, g);

  FactorizeResult out;
  out.algo = "ca_cqr";
  out.c = c;
  out.d = d;
  // The shifted fallback below always runs full fp64 (ca_cqr3 rebuilds
  // its per-pass options), so opts.precision only reaches the plain
  // CQR/CQR2 passes.
  const CaCqrOptions run_opts{.base_case = opts.base_case, .shift = 0.0,
                              .precision = opts.precision};

  CaCqrResult fact;
  if (opts.passes == 3) {
    fact = ca_cqr3(da, g, run_opts);
    out.used_shift = true;
  } else {
    try {
      fact = opts.passes == 1 ? ca_cqr(da, g, run_opts)
                              : ca_cqr2(da, g, run_opts);
    } catch (const NotSpdError&) {
      if (!opts.auto_shift) throw;
      // Every rank fails identically (replicated factorization inputs),
      // so every rank lands here and retries collectively.
      fact = ca_cqr3(da, g, run_opts);
      out.used_shift = true;
    }
  }

  // Gather and strip the padding.
  lin::Matrix q_full = dist::gather(fact.q, g.slice());
  lin::Matrix r_full = dist::gather(fact.r, g.subcube().slice());
  out.q = lin::materialize(q_full.sub(0, 0, padded.m, padded.n));
  out.r = lin::materialize(r_full.sub(0, 0, padded.n, padded.n));
  return out;
}

/// 1D-CholeskyQR2 (Algorithms 6-7) on all P ranks: rows padded to a
/// multiple of P (zero rows only -- the Gram matrix is untouched), no
/// column padding.  The shifted fallback reuses the c=1 grid path.
/// Delegates to the batched driver with a batch of one, so a standalone
/// job and a micro-batched job execute literally the same code (the
/// serve/ bitwise-identity contract; see batched.hpp).
FactorizeResult run_cqr_1d(lin::ConstMatrixView a, const rt::Comm& world,
                           const FactorizeOptions& opts) {
  const lin::ConstMatrixView panels[1] = {a};
  std::vector<BatchedItem> items = factorize_batched(
      panels, world,
      {.passes = opts.passes, .auto_shift = opts.auto_shift,
       .base_case = opts.base_case, .precision = opts.precision});
  BatchedItem& item = items.front();
  if (!item.ok) std::rethrow_exception(item.error);

  FactorizeResult out;
  out.algo = "cqr_1d";
  out.c = 1;
  out.d = world.size();
  out.used_shift = item.used_shift;
  out.q = std::move(item.q);
  out.r = std::move(item.r);
  return out;
}

/// The ScaLAPACK-style 2D Householder baseline.  Block-cyclic layout
/// needs block*pr | m and block*lcm(pr, pc) | n (the n x n R lives on
/// the same grid); the delta augmentation keeps the padded matrix full
/// rank, and sign normalization makes the factors unique, so stripping
/// recovers the Householder factors of A.
FactorizeResult run_pgeqrf(lin::ConstMatrixView a, const rt::Comm& world,
                           int pr, int pc, i64 block) {
  ensure_dim(pr >= 1 && pc >= 1 && block >= 1 &&
                 pr * pc == world.size(),
             "factorize: pgeqrf grid ", pr, "x", pc, " invalid for ",
             world.size(), " ranks");
  const i64 col_mult = block * std::lcm<i64>(pr, pc);
  Padded padded = pad_to_multiples(a, block * pr, col_mult);

  baseline::ProcGrid2d g(world, pr, pc);
  auto da = baseline::BlockCyclicMatrix::from_global(padded.a, block, g);
  baseline::Pgeqrf2dResult fact = baseline::pgeqrf_2d(da, g);

  FactorizeResult out;
  out.algo = "pgeqrf_2d";
  out.c = 0;
  out.d = 0;
  out.pr = pr;
  out.pc = pc;
  out.block = block;
  lin::Matrix q_full = fact.q.gather(g);
  lin::Matrix r_full = fact.r.gather(g);
  out.q = lin::materialize(q_full.sub(0, 0, padded.m, padded.n));
  out.r = lin::materialize(r_full.sub(0, 0, padded.n, padded.n));
  return out;
}

/// Executes `plan` (which must fit `world`).
FactorizeResult run_plan(lin::ConstMatrixView a, const rt::Comm& world,
                         const FactorizeOptions& opts,
                         const tune::Plan& plan) {
  if (plan.algo == "cqr_1d") return run_cqr_1d(a, world, opts);
  if (plan.algo == "pgeqrf_2d") {
    return run_pgeqrf(a, world, plan.pr, plan.pc, plan.block);
  }
  return run_ca_cqr(a, world, opts, plan.c, plan.d);
}

// ------------------------------------------------------- plan resolution

/// A plan is executable for this key iff its configuration matches the
/// rank count and basic shape preconditions.  Cached plans that fail
/// this (stale or corrupted files) are treated as cache misses.
bool plan_fits(const tune::Plan& plan, const tune::ProblemKey& key) {
  if (plan.algo == "cqr_1d") return plan.d == key.p;
  if (plan.algo == "ca_cqr2") {
    return grid::TunableGrid::valid_shape(key.p, plan.c, plan.d) &&
           static_cast<i64>(plan.c) * plan.c <= key.n && plan.d <= key.m;
  }
  if (plan.algo == "pgeqrf_2d") {
    return plan.pr >= 1 && plan.pc >= 1 && plan.block >= 1 &&
           static_cast<long long>(plan.pr) * plan.pc == key.p;
  }
  return false;
}

/// A remembered plan may satisfy this request only if it fits AND, in
/// measured mode, actually went through trials -- otherwise a
/// model-sourced memo/cache entry would silently relabel the model pick
/// as "measured".  (The reverse is fine: model mode happily reuses a
/// measured winner -- that is the cache remembering what won.)  A plan
/// scored or trialed under a different micro-kernel variant than the one
/// the dispatcher currently runs is also rejected: its gamma and timings
/// describe a different compute engine (variant-less legacy plans pass).
bool plan_acceptable(const tune::Plan& plan, const tune::ProblemKey& key,
                    PlanMode mode) {
  if (!plan.kernel_variant.empty() &&
      plan.kernel_variant !=
          lin::kernel::variant_name(lin::kernel::active_variant())) {
    return false;
  }
  // Same gate for precision: a plan scored (or trialed) under another
  // Gram-precision mode describes different payload widths and compute
  // rates -- and in measured mode, different executed arithmetic.
  if (plan.precision != key.precision) return false;
  return plan_fits(plan, key) &&
         (mode != PlanMode::measured || plan.measured_seconds > 0.0);
}

/// Fixed-width wire form of one Plan (11 doubles): rank 0 resolves
/// memo/cache/planner and broadcasts, so ranks can never diverge on
/// what a file or the process memo said.
constexpr std::size_t kPlanWords = 11;

double encode_variant(const std::string& name) {
  if (name == "generic") return 1.0;
  if (name == "avx2") return 2.0;
  if (name == "avx512") return 3.0;
  if (name == "neon") return 4.0;
  return 0.0;  // unset / unknown
}

std::string decode_variant(double w) {
  switch (static_cast<int>(w)) {
    case 1: return "generic";
    case 2: return "avx2";
    case 3: return "avx512";
    case 4: return "neon";
    default: return "";
  }
}

void encode_plan(const tune::Plan& plan, double* w) {
  w[0] = plan.algo == "cqr_1d" ? 0.0 : plan.algo == "ca_cqr2" ? 1.0 : 2.0;
  w[1] = plan.c;
  w[2] = plan.d;
  w[3] = plan.pr;
  w[4] = plan.pc;
  w[5] = static_cast<double>(plan.block);
  w[6] = plan.predicted_seconds;
  w[7] = plan.measured_seconds;
  w[8] = plan.source == "cache" ? 1.0 : plan.source == "measured" ? 2.0
                                                                  : 0.0;
  w[9] = encode_variant(plan.kernel_variant);
  w[10] = plan.precision == Precision::fp64    ? 0.0
          : plan.precision == Precision::mixed ? 1.0
                                               : 2.0;
}

tune::Plan decode_plan(const double* w) {
  tune::Plan plan;
  plan.algo = w[0] == 0.0 ? "cqr_1d" : w[0] == 1.0 ? "ca_cqr2" : "pgeqrf_2d";
  plan.c = static_cast<int>(w[1]);
  plan.d = static_cast<int>(w[2]);
  plan.pr = static_cast<int>(w[3]);
  plan.pc = static_cast<int>(w[4]);
  plan.block = static_cast<i64>(w[5]);
  plan.predicted_seconds = w[6];
  plan.measured_seconds = w[7];
  plan.source = w[8] == 1.0 ? "cache" : w[8] == 2.0 ? "measured" : "model";
  plan.kernel_variant = decode_variant(w[9]);
  plan.precision = w[10] == 1.0   ? Precision::mixed
                   : w[10] == 2.0 ? Precision::fp32
                                  : Precision::fp64;
  return plan;
}

/// Process-wide plan memo: repeated factorize calls in one process skip
/// planning, the cache file, and (in measured mode) the trials.  Keyed
/// by profile fingerprint + problem key, so it can never alias across
/// profiles.  Only rank 0 of a world ever touches it (non-roots follow
/// the broadcast), so concurrent worlds resolving the same key cannot
/// diverge mid-collective.  Leaked intentionally: rank threads may
/// outlive static destructors.
struct PlanMemo {
  std::mutex mu;
  std::map<std::string, tune::Plan> map;
  static PlanMemo& instance() {
    static PlanMemo* memo = new PlanMemo();
    return *memo;
  }
  std::optional<tune::Plan> lookup(const std::string& memo_key) {
    std::lock_guard<std::mutex> lock(mu);
    const auto it = map.find(memo_key);
    return it == map.end() ? std::nullopt
                           : std::optional<tune::Plan>(it->second);
  }
  void insert(const std::string& memo_key, const tune::Plan& plan) {
    std::lock_guard<std::mutex> lock(mu);
    map.insert_or_assign(memo_key, plan);
  }
};

/// Serializes rank-0 plan resolution across concurrently running worlds
/// (the serving scheduler drives many factorize calls from one process):
/// the first caller through a cold key plans and publishes to the memo;
/// callers arriving behind it then take the memo hit instead of racing
/// the cache file or re-planning the same key.  Never held across a
/// collective -- a blocked rank-0 only ever waits on another rank-0 that
/// is doing pure local work -- so worlds cannot deadlock through it.
/// Leaked for the same lifetime reason as PlanMemo.
std::mutex& resolve_mutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

/// Resolves the plan for a non-heuristic mode and, in measured mode, may
/// already produce the winning factorization result (the winner's trial
/// is reused instead of re-run).  Collective: rank 0 resolves profile,
/// memo, and cache, then one broadcast distributes either the final
/// plan or the candidate list to trial.
tune::Plan resolve_plan(lin::ConstMatrixView a, const rt::Comm& world,
                        const FactorizeOptions& opts,
                        std::optional<FactorizeResult>* trial_result) {
  const tune::ProblemKey key{a.rows,  a.cols,     world.size(),
                             lin::parallel::thread_budget(),
                             opts.passes, opts.base_case, opts.precision};
  const std::size_t top_k =
      static_cast<std::size_t>(std::max(1, opts.plan_top_k));
  // Wire: w[0] = -1 followed by one final plan, or the candidate count
  // followed by that many plans to trial.  Model mode never trials, so
  // its buffer holds exactly one plan.
  const std::size_t max_plans =
      opts.plan_mode == PlanMode::measured ? top_k : std::size_t{1};
  std::vector<double> wire(1 + max_plans * kPlanWords, 0.0);

  const tune::PlanCache cache = tune::PlanCache::from_env();
  std::string fingerprint;  // rank 0 only (non-roots follow the bcast)
  bool store_needed = false;  // rank 0 only: freshly planned, not remembered
  if (world.rank() == 0) {
    const std::lock_guard<std::mutex> resolve_lock(resolve_mutex());
    // Profile precedence: the caller's, else a calibration persisted by
    // bench_tune --save for this host, else the generic fallback.
    tune::MachineProfile loaded;
    const tune::MachineProfile* profile = opts.profile;
    if (profile == nullptr) {
      auto saved = cache.load_profile(tune::host_fingerprint());
      loaded = saved ? std::move(*saved) : tune::generic_profile();
      profile = &loaded;
    }
    fingerprint = profile->fingerprint();
    const std::string memo_key = fingerprint + "|" + key.text();

    std::optional<tune::Plan> final = PlanMemo::instance().lookup(memo_key);
    if (final && !plan_acceptable(*final, key, opts.plan_mode)) {
      final.reset();
    }
    if (!final) {
      if (auto hit = cache.load(fingerprint, key);
          hit && plan_acceptable(*hit, key, opts.plan_mode)) {
        final = std::move(*hit);
      }
    }
    if (final) {
      wire[0] = -1.0;
      encode_plan(*final, wire.data() + 1);
    } else {
      store_needed = true;
      const tune::Planner planner(*profile,
                                  {.top_k = static_cast<int>(top_k)});
      std::vector<tune::Plan> cands = planner.candidates(key);
      ensure(!cands.empty(), "factorize: no valid plan for ", key.text());
      if (opts.plan_mode == PlanMode::model) {
        wire[0] = -1.0;
        encode_plan(cands.front(), wire.data() + 1);
      } else {
        const std::size_t k = std::min(cands.size(), top_k);
        wire[0] = static_cast<double>(k);
        for (std::size_t i = 0; i < k; ++i) {
          encode_plan(cands[i], wire.data() + 1 + i * kPlanWords);
        }
      }
    }
  }
  world.bcast(wire, 0);

  tune::Plan winner;
  if (wire[0] < 0.0) {
    winner = decode_plan(wire.data() + 1);
  } else {
    // Trial-run the candidates on the real input.  One Allreduce per
    // trial makes every rank score each candidate by the summed wall
    // time, so the argmin (ties to the lower, better-modeled index) is
    // agreed without any rank-dependent branching.
    const auto k = static_cast<std::size_t>(wire[0]);
    double best_score = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const tune::Plan cand = decode_plan(wire.data() + 1 + i * kPlanWords);
      world.barrier();
      WallTimer timer;
      FactorizeResult res = run_plan(a, world, opts, cand);
      world.barrier();
      double score[1] = {timer.seconds()};
      world.allreduce_sum(score);
      if (i == 0 || score[0] < best_score) {
        best_score = score[0];
        winner = cand;
        *trial_result = std::move(res);
      }
    }
    winner.measured_seconds = best_score / world.size();  // mean over ranks
    winner.source = "measured";
  }

  if (world.rank() == 0) {
    const std::lock_guard<std::mutex> resolve_lock(resolve_mutex());
    // Remembered plans (memo or cache file hits) are already persisted:
    // only fresh planning/trial outcomes touch the file, so memo-served
    // repeat calls do zero I/O.
    if (store_needed) cache.store(fingerprint, key, winner);
    PlanMemo::instance().insert(fingerprint + "|" + key.text(), winner);
  }
  return winner;
}

}  // namespace

FactorizeResult factorize(lin::ConstMatrixView a, const rt::Comm& world,
                          FactorizeOptions opts) {
  ensure_dim(a.rows >= a.cols && a.cols >= 1,
             "factorize: requires m >= n >= 1");
  ensure(opts.passes >= 1 && opts.passes <= 3,
         "factorize: passes must be 1, 2 or 3");

  obs::SpanScope span("core", "factorize");
  span.arg("m", static_cast<double>(a.rows));
  span.arg("n", static_cast<double>(a.cols));
  span.arg("passes", opts.passes);

  // Explicit grid or the historical heuristic: the CA-CQR family with
  // the closed-form grid rule, bit-identical to the pre-planner driver.
  if ((opts.c != 0 && opts.d != 0) || opts.plan_mode == PlanMode::heuristic) {
    int c = opts.c;
    int d = opts.d;
    if (c == 0 || d == 0) {
      std::tie(c, d) = choose_grid(world.size(), a.rows, a.cols);
    }
    FactorizeResult out = run_ca_cqr(a, world, opts, c, d);
    out.plan.algo = "ca_cqr2";
    out.plan.c = c;
    out.plan.d = d;
    out.plan.source = "heuristic";
    out.plan.precision = opts.precision;
    out.kernel_variant =
        lin::kernel::variant_name(lin::kernel::active_variant());
    return out;
  }

  std::optional<FactorizeResult> trial_result;
  const tune::Plan plan = resolve_plan(a, world, opts, &trial_result);
  FactorizeResult out = trial_result.has_value()
                            ? std::move(*trial_result)
                            : run_plan(a, world, opts, plan);
  out.plan = plan;
  if (out.plan.source.empty()) out.plan.source = "model";
  out.kernel_variant =
      lin::kernel::variant_name(lin::kernel::active_variant());
  return out;
}

}  // namespace cacqr::core
