#include <cmath>
#include <utility>

#include "cacqr/core/factorize.hpp"
#include "cacqr/core/shifted.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/util.hpp"

namespace cacqr::core {

using dist::DistMatrix;

std::pair<int, int> choose_grid(int nranks, i64 m, i64 n) {
  ensure_dim(nranks >= 1 && m >= n && n >= 1, "choose_grid: bad arguments");
  const double c_ideal = std::cbrt(static_cast<double>(nranks) *
                                   static_cast<double>(n) /
                                   static_cast<double>(m));
  int best_c = 1;
  int best_d = nranks;
  double best_score = std::abs(std::log(1.0 / std::max(c_ideal, 1e-300)));
  for (int c = 2; static_cast<long long>(c) * c * c <= nranks; ++c) {
    if (nranks % (c * c) != 0) continue;
    const int d = nranks / (c * c);
    if (d % c != 0) continue;
    const double score = std::abs(std::log(static_cast<double>(c) / c_ideal));
    if (score < best_score) {
      best_score = score;
      best_c = c;
      best_d = d;
    }
  }
  return {best_c, best_d};
}

namespace {

/// Padded dimensions and the padded matrix itself (see factorize.hpp).
struct Padded {
  lin::Matrix a;
  i64 m = 0;  ///< original rows
  i64 n = 0;  ///< original cols
};

Padded pad_for_grid(lin::ConstMatrixView a, int c, int d) {
  const i64 m = a.rows;
  const i64 n = a.cols;
  const i64 n_pad = round_up(n, c);
  const i64 m_pad = round_up(std::max(m + (n_pad - n), n_pad), d);
  if (m_pad == m && n_pad == n) {
    return {lin::materialize(a), m, n};
  }
  const double fro = lin::frob_norm(a);
  const double delta =
      fro > 0.0 ? fro / std::sqrt(static_cast<double>(n)) : 1.0;
  lin::Matrix padded(m_pad, n_pad);
  lin::copy(a, padded.sub(0, 0, m, n));
  for (i64 j = n; j < n_pad; ++j) {
    padded(m + (j - n), j) = delta;
  }
  return {std::move(padded), m, n};
}

}  // namespace

FactorizeResult factorize(lin::ConstMatrixView a, const rt::Comm& world,
                          FactorizeOptions opts) {
  ensure_dim(a.rows >= a.cols && a.cols >= 1,
             "factorize: requires m >= n >= 1");
  ensure(opts.passes >= 1 && opts.passes <= 3,
         "factorize: passes must be 1, 2 or 3");

  int c = opts.c;
  int d = opts.d;
  if (c == 0 || d == 0) {
    std::tie(c, d) = choose_grid(world.size(), a.rows, a.cols);
  }
  ensure_dim(grid::TunableGrid::valid_shape(world.size(), c, d),
             "factorize: grid ", c, "x", d, "x", c, " invalid for ",
             world.size(), " ranks");

  Padded padded = pad_for_grid(a, c, d);
  grid::TunableGrid g(world, c, d);
  DistMatrix da = DistMatrix::from_global_on_tunable(padded.a, g);

  FactorizeResult out;
  out.c = c;
  out.d = d;
  const CaCqrOptions run_opts{.base_case = opts.base_case, .shift = 0.0};

  CaCqrResult fact;
  if (opts.passes == 3) {
    fact = ca_cqr3(da, g, run_opts);
    out.used_shift = true;
  } else {
    try {
      fact = opts.passes == 1 ? ca_cqr(da, g, run_opts)
                              : ca_cqr2(da, g, run_opts);
    } catch (const NotSpdError&) {
      if (!opts.auto_shift) throw;
      // Every rank fails identically (replicated factorization inputs),
      // so every rank lands here and retries collectively.
      fact = ca_cqr3(da, g, run_opts);
      out.used_shift = true;
    }
  }

  // Gather and strip the padding.
  lin::Matrix q_full = dist::gather(fact.q, g.slice());
  lin::Matrix r_full = dist::gather(fact.r, g.subcube().slice());
  out.q = lin::materialize(q_full.sub(0, 0, padded.m, padded.n));
  out.r = lin::materialize(r_full.sub(0, 0, padded.n, padded.n));
  return out;
}

}  // namespace cacqr::core
