#include "cacqr/core/batched.hpp"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "cacqr/core/shifted.hpp"
#include "cacqr/dist/dist_matrix.hpp"
#include "cacqr/grid/grid.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/blas_f.hpp"
#include "cacqr/lin/factor.hpp"
#include "cacqr/lin/matrix_f.hpp"
#include "cacqr/obs/trace.hpp"
#include "internal.hpp"

namespace cacqr::core {

using dist::DistMatrix;

namespace {

/// Per-panel outcome of one batched pass: Q distributed like the input,
/// R replicated, or the panel's NotSpdError.
struct PassOut {
  DistMatrix q;
  lin::Matrix r;
  bool ok = true;
  std::exception_ptr error;
};

/// One batched 1D-CholeskyQR pass (paper Algorithm 6) over `panels`:
/// cqr_1d() line for line, except the per-panel Gram Allreduces are fused
/// into a single collective over the concatenated slab.  Per-element sums
/// are unchanged by the concatenation (the schedule pairs ranks, never
/// elements -- see batched.hpp), and everything else is per-panel local
/// work by the same thread at the same budget, so each panel's output is
/// bitwise identical to a standalone cqr_1d call.  NotSpdError is caught
/// per panel (it is replicated by the Allreduce, so every rank records
/// the same failure set); other errors propagate.
std::vector<PassOut> batched_pass_1d(const std::vector<const DistMatrix*>& panels,
                                     const rt::Comm& comm, bool f32_gram) {
  const std::size_t k = panels.size();
  std::vector<PassOut> out(k);
  if (k == 0) return out;  // consistent on every rank: no collective to run

  obs::SpanScope pass_span("core", "batched_pass");
  pass_span.arg("batch", static_cast<double>(k));

  // Slab offsets: panel i's Gram occupies [off[i], off[i + 1]) doubles
  // (fp64 lane: n_i^2 elements; fp32 lane: its wire word count).
  std::vector<std::size_t> off(k + 1, 0);
  for (std::size_t i = 0; i < k; ++i) {
    const i64 n = panels[i]->cols();
    // fp32 wire width: two floats per 8-byte word, odd tail padded
    // (MatrixF::wire's layout).
    off[i + 1] = off[i] + static_cast<std::size_t>(
                              f32_gram ? (n * n + 1) / 2 : n * n);
  }

  // Line 1 per panel: local Gram contribution into the slab (fp64 writes
  // the n x n block in place; the fp32 lane forms it in a MatrixF and
  // copies the wire words -- same float values a standalone call would
  // put on the wire, including the zeroed odd-tail pad lane).
  lin::Matrix slab = lin::Matrix::uninit(static_cast<i64>(off[k]), 1);
  std::vector<lin::MatrixF> zf(f32_gram ? k : 0);
  for (std::size_t i = 0; i < k; ++i) {
    const DistMatrix& a = *panels[i];
    const i64 n = a.cols();
    if (f32_gram) {
      lin::MatrixF af = lin::MatrixF::uninit(a.local().rows(), n);
      lin::narrow(a.local(), af);
      zf[i] = lin::MatrixF::uninit(n, n);
      lin::gram_f32(1.0f, af, 0.0f, zf[i]);
      const std::span<double> w = zf[i].wire();
      std::copy(w.begin(), w.end(), slab.data() + off[i]);
    } else {
      lin::gram(1.0, a.local(), 0.0,
                lin::MatrixView{slab.data() + off[i], n, n, n});
    }
  }

  // Line 2: ONE Allreduce for the whole batch -- 2 ceil(lg P) alpha total
  // instead of per panel.  The staging copies of every panel overlap the
  // flight exactly as in the standalone pass.
  rt::Request gram_sum = f32_gram
      ? comm.start_allreduce_sum_f32(
            {slab.data(), static_cast<std::size_t>(slab.size())})
      : comm.start_allreduce_sum(
            {slab.data(), static_cast<std::size_t>(slab.size())});
  if (rt::overlap_enabled()) {
    rt::ProgressScope scope(comm);
    for (std::size_t i = 0; i < k; ++i) {
      const DistMatrix& a = *panels[i];
      out[i].q = DistMatrix::uninit(a.rows(), a.cols(), comm.size(), 1,
                                    comm.rank(), 0);
      out[i].r = lin::Matrix(a.cols(), a.cols());
      lin::copy(a.local(), out[i].q.local());
    }
  } else {
    gram_sum.wait();
    for (std::size_t i = 0; i < k; ++i) {
      out[i].q = *panels[i];
      out[i].r = lin::Matrix(panels[i]->cols(), panels[i]->cols());
    }
  }
  gram_sum.wait();

  // Lines 3-4 per panel: redundant CholInv and the local triangular
  // multiply, with the per-panel NotSpd isolation.
  for (std::size_t i = 0; i < k; ++i) {
    obs::SpanScope item_span("core", "batched_item");
    item_span.arg("item", static_cast<double>(i));
    const i64 n = panels[i]->cols();
    lin::Matrix z;
    lin::ConstMatrixView zv{slab.data() + off[i], n, n, n};
    if (f32_gram) {
      const std::span<double> w = zf[i].wire();
      std::copy(slab.data() + off[i], slab.data() + off[i] + w.size(),
                w.data());
      z = lin::Matrix::uninit(n, n);
      lin::widen(zf[i], z);
      zv = z;
    }
    try {
      auto li = lin::cholinv(zv);
      lin::trmm(lin::Side::Right, lin::Uplo::Lower, lin::Trans::T,
                lin::Diag::NonUnit, 1.0, li.l_inv, out[i].q.local());
      for (i64 j = 0; j < n; ++j) {
        for (i64 r = 0; r <= j; ++r) out[i].r(r, j) = li.l(j, r);
      }
    } catch (const NotSpdError&) {
      out[i].ok = false;
      out[i].error = std::current_exception();
    }
  }
  return out;
}

/// The shifted CholeskyQR3 rerun for one padded panel -- byte-for-byte
/// the fallback tail of the standalone driver's run_cqr_1d.
void run_shifted(const detail::Padded& padded, const rt::Comm& world,
                 const BatchedOptions& opts, BatchedItem& item) {
  obs::SpanScope span("core", "shifted_rerun");
  span.arg("n", static_cast<double>(padded.n));
  grid::TunableGrid g(world, 1, world.size());
  DistMatrix da = DistMatrix::from_global_on_tunable(padded.a, g);
  CaCqrResult fact =
      ca_cqr3(da, g, {.base_case = opts.base_case, .shift = 0.0});
  item.used_shift = true;
  lin::Matrix q_full = dist::gather(fact.q, g.slice());
  lin::Matrix r_full = dist::gather(fact.r, g.subcube().slice());
  item.q = lin::materialize(q_full.sub(0, 0, padded.m, padded.n));
  item.r = lin::materialize(r_full.sub(0, 0, padded.n, padded.n));
  item.ok = true;
  item.error = nullptr;
}

}  // namespace

std::vector<BatchedItem> factorize_batched(
    std::span<const lin::ConstMatrixView> panels, const rt::Comm& world,
    const BatchedOptions& opts) {
  ensure(opts.passes >= 1 && opts.passes <= 3,
         "factorize_batched: passes must be 1, 2 or 3");
  const int p = world.size();
  const std::size_t b = panels.size();
  std::vector<BatchedItem> out(b);
  if (b == 0) return out;

  obs::SpanScope batch_span("core", "factorize_batched");
  batch_span.arg("b", static_cast<double>(b));
  batch_span.arg("passes", opts.passes);

  // Pad + scatter every panel exactly as the standalone driver does.
  std::vector<detail::Padded> padded;
  std::vector<DistMatrix> da;
  padded.reserve(b);
  da.reserve(b);
  for (const lin::ConstMatrixView& a : panels) {
    ensure_dim(a.rows >= a.cols && a.cols >= 1,
               "factorize_batched: requires m >= n >= 1");
    padded.push_back(detail::pad_for_grid(a, 1, p));
    da.push_back(
        DistMatrix::from_global(padded.back().a, p, 1, world.rank(), 0));
  }

  // Panels that need the shifted rerun after the sweep (index order).
  std::vector<std::size_t> pending_shift;

  if (opts.passes == 3) {
    for (std::size_t i = 0; i < b; ++i) pending_shift.push_back(i);
  } else {
    std::vector<const DistMatrix*> live;
    std::vector<std::size_t> live_idx;
    for (std::size_t i = 0; i < b; ++i) {
      live.push_back(&da[i]);
      live_idx.push_back(i);
    }
    // Pass 1: `mixed` degenerates to the fp32 Gram when it is the only
    // pass, exactly as cqr_1d treats any non-fp64 mode as the fp32 lane.
    std::vector<PassOut> first =
        batched_pass_1d(live, world, opts.precision != Precision::fp64);

    auto fail = [&](std::size_t idx, std::exception_ptr err) {
      if (opts.auto_shift) {
        pending_shift.push_back(idx);
      } else {
        out[idx].ok = false;
        out[idx].error = std::move(err);
      }
    };

    std::vector<PassOut*> final_pass(b, nullptr);
    if (opts.passes == 1) {
      for (std::size_t j = 0; j < live_idx.size(); ++j) {
        if (first[j].ok) {
          final_pass[live_idx[j]] = &first[j];
        } else {
          fail(live_idx[j], first[j].error);
        }
      }
    } else {
      // Pass 2 over the survivors of pass 1 (every rank agrees on the
      // set: the failure came out of the replicated Allreduce sum).
      std::vector<const DistMatrix*> live2;
      std::vector<std::size_t> live2_idx;
      for (std::size_t j = 0; j < live_idx.size(); ++j) {
        if (first[j].ok) {
          live2.push_back(&first[j].q);
          live2_idx.push_back(j);
        } else {
          fail(live_idx[j], first[j].error);
        }
      }
      std::vector<PassOut> second =
          batched_pass_1d(live2, world, opts.precision == Precision::fp32);
      for (std::size_t j2 = 0; j2 < live2_idx.size(); ++j2) {
        const std::size_t j = live2_idx[j2];
        if (!second[j2].ok) {
          fail(live_idx[j], second[j2].error);
          continue;
        }
        // Compose R = R2 * R1 sequentially on every rank (Algorithm 7),
        // then hand pass 2's Q forward through pass 1's slot.
        lin::trmm(lin::Side::Left, lin::Uplo::Upper, lin::Trans::N,
                  lin::Diag::NonUnit, 1.0, second[j2].r, first[j].r);
        first[j].q = std::move(second[j2].q);
        final_pass[live_idx[j]] = &first[j];
      }
    }

    // Gather the sweep's survivors and strip the padding, in panel order.
    for (std::size_t i = 0; i < b; ++i) {
      if (final_pass[i] == nullptr) continue;
      lin::Matrix q_full = dist::gather(final_pass[i]->q, world);
      out[i].q = lin::materialize(q_full.sub(0, 0, padded[i].m, padded[i].n));
      out[i].r = std::move(final_pass[i]->r);
    }
  }

  // Shifted reruns, one panel at a time (collective, consistent order on
  // every rank): the broken panels pay their own full-fp64 CQR3 without
  // touching the batch's fast path.
  for (const std::size_t idx : pending_shift) {
    run_shifted(padded[idx], world, opts, out[idx]);
  }
  return out;
}

}  // namespace cacqr::core
