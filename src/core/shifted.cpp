#include <cfloat>
#include <cmath>

#include "cacqr/core/shifted.hpp"

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/factor.hpp"
#include "cacqr/lin/util.hpp"

namespace cacqr::core {

using dist::DistMatrix;

double recommended_shift(i64 m, i64 n, double norm2_sq) {
  return 11.0 * static_cast<double>(m * n + n * (n + 1)) * DBL_EPSILON *
         norm2_sq;
}

QrFactors shifted_cqr3(lin::ConstMatrixView a) {
  const i64 n = a.cols;
  ensure_dim(a.rows >= n, "shifted_cqr3: requires m >= n");

  // Pass 1, shifted: G = A^T A + s I, R1^T = chol(G), Q1 = A R1^{-1}.
  lin::Matrix g(n, n);
  lin::gram(1.0, a, 0.0, g);
  const double fro = lin::frob_norm(a);
  const double s = recommended_shift(a.rows, n, fro * fro);
  for (i64 i = 0; i < n; ++i) g(i, i) += s;
  auto li = lin::cholinv(g);
  lin::Matrix q1 = lin::materialize(a);
  lin::trmm(lin::Side::Right, lin::Uplo::Lower, lin::Trans::T,
            lin::Diag::NonUnit, 1.0, li.l_inv, q1);

  // Passes 2-3: plain CholeskyQR2 on the now well-conditioned Q1.
  QrFactors second = cqr2(q1);

  // R = R_{23} * R1 with R1 = L^T.
  lin::Matrix r1(n, n);
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = 0; i <= j; ++i) r1(i, j) = li.l(j, i);
  }
  lin::trmm(lin::Side::Left, lin::Uplo::Upper, lin::Trans::N,
            lin::Diag::NonUnit, 1.0, second.r, r1);
  return {std::move(second.q), std::move(r1)};
}

CaCqrResult ca_cqr3(const DistMatrix& a, const grid::TunableGrid& g,
                    CaCqrOptions opts) {
  // ||A||_F^2 as the norm bound: local contribution summed over the slice
  // (each slice holds one full copy of A).
  const double local = lin::frob_norm(a.local());
  std::vector<double> acc = {local * local};
  g.slice().allreduce_sum(acc);
  const double shift = recommended_shift(a.rows(), a.cols(), acc[0]);

  // Pass 1, shifted.
  CaCqrResult first =
      ca_cqr(a, g,
             {.base_case = opts.base_case, .shift = shift,
              .inverse_depth = opts.inverse_depth});
  // Passes 2-3 on Q1.
  CaCqrResult rest =
      ca_cqr2(first.q, g,
              {.base_case = opts.base_case, .shift = 0.0,
               .inverse_depth = opts.inverse_depth});

  CaCqrResult out;
  out.q = std::move(rest.q);
  out.r = compose_r(rest.r, first.r, g);
  return out;
}

}  // namespace cacqr::core
