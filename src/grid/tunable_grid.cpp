#include "cacqr/grid/grid.hpp"

namespace cacqr::grid {

CubeGrid::CubeGrid(rt::Comm cube, int g) : g_(g), cube_(std::move(cube)) {
  ensure_dim(g >= 1, "CubeGrid: g must be positive");
  ensure_dim(cube_.size() == g * g * g, "CubeGrid: communicator has ",
             cube_.size(), " ranks, need g^3 = ", g * g * g);
  const int r = cube_.rank();
  coords_ = Coords{r % g, (r / g) % g, r / (g * g)};
  const auto [x, y, z] = coords_;
  // Split order is part of the collective contract: every member must
  // construct the CubeGrid at the same point in its program.
  row_ = cube_.split(y + g * z, x);
  col_ = cube_.split(x + g * z, y);
  depth_ = cube_.split(x + g * y, z);
  slice_ = cube_.split(z, x + g * y);
}

TunableGrid::TunableGrid(rt::Comm world, int c, int d)
    : c_(c), d_(d), world_(std::move(world)) {
  ensure_dim(valid_shape(world_.size(), c, d),
             "TunableGrid: invalid shape c=", c, " d=", d, " for P=",
             world_.size(), " (need P == c^2*d and c | d)");
  const int r = world_.rank();
  coords_ = Coords{r % c, (r / c) % d, r / (c * d)};
  const auto [x, y, z] = coords_;

  row_ = world_.split(y + d * z, x);
  col_ = world_.split(x + c * z, y);
  depth_ = world_.split(x + c * y, z);
  slice_ = world_.split(z, x + c * y);
  ygroup_contig_ = world_.split(x + c * (z + c * (y / c)), y % c);
  ygroup_strided_ = world_.split(x + c * (z + c * (y % c)), y / c);

  // Subcube of Algorithm 8 line 6: contiguous y-groups of height c, with
  // internal coordinates (x, y mod c, z) linearized the CubeGrid way.
  rt::Comm subcube_comm = world_.split(y / c, x + c * ((y % c) + c * z));
  subcube_ = std::make_unique<CubeGrid>(std::move(subcube_comm), c);
}

}  // namespace cacqr::grid
