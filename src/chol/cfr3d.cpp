#include <algorithm>

#include "cacqr/chol/cfr3d.hpp"
#include "cacqr/lin/factor.hpp"

namespace cacqr::chol {

using dist::DistMatrix;

i64 effective_base_case(i64 n, int g, i64 requested) {
  const i64 gg = static_cast<i64>(g);
  i64 target = requested > 0 ? requested : std::max<i64>(gg, n / (gg * gg));
  target = std::max(target, gg);
  i64 n0 = n;
  while (n0 > target && n0 % 2 == 0 && (n0 / 2) % gg == 0) n0 /= 2;
  return n0;
}

namespace {

Cfr3dResult cfr3d_rec(const DistMatrix& a, const grid::CubeGrid& grid,
                      i64 n0, int inverse_depth) {
  const i64 n = a.rows();

  if (n <= n0) {
    // Base case (Algorithm 3 lines 2-3): allgather the submatrix over the
    // slice, factor redundantly, keep the local cyclic pieces.
    lin::Matrix t = dist::gather(a, grid.slice());
    auto seq = lin::cholinv(t);
    return {DistMatrix::from_global_on_cube(seq.l, grid),
            DistMatrix::from_global_on_cube(seq.l_inv, grid)};
  }

  // Lines 5-14, with the transposes materialized by the Transpose
  // collective exactly as the paper's cost table charges them.
  DistMatrix a11 = a.quadrant(0, 0);
  DistMatrix a21 = a.quadrant(1, 0);

  const int child_depth = inverse_depth > 0 ? inverse_depth - 1 : 0;
  Cfr3dResult top = cfr3d_rec(a11, grid, n0, child_depth);

  // Line 6-7: W = Y11^T;  L21 = A21 * W.  With a partial inverse Y11 is
  // block diagonal, so L21 = A21 L11^{-T} is recovered by the generic
  // block back-substitution against R11 = L11^T instead.
  DistMatrix l21;
  if (child_depth > 0) {
    auto [r11, y11t] = dist::transpose3d_pair(top.l, top.l_inv, grid);
    l21 = dist::block_backsolve(a21, r11, y11t, i64(1) << child_depth, grid);
  } else {
    DistMatrix w = dist::transpose3d(top.l_inv, grid);
    l21 = dist::mm3d(a21, w, grid);
  }

  // Line 8-10: X = L21^T;  Z = A22 - L21 * X.
  DistMatrix x = dist::transpose3d(l21, grid);
  DistMatrix z = a.quadrant(1, 1);
  {
    DistMatrix u = dist::mm3d(l21, x, grid);
    dist::add_scaled(z, -1.0, u);
  }

  // Line 11: recurse on the Schur complement.
  Cfr3dResult bottom = cfr3d_rec(z, grid, n0, child_depth);

  // Assemble [L11 0; L21 L22]; Y gets its off-diagonal block (lines
  // 12-14) only below the requested inverse depth.
  const auto& lay = a.layout();
  Cfr3dResult out{
      DistMatrix(n, n, lay.row_procs, lay.col_procs, lay.my_row, lay.my_col),
      DistMatrix(n, n, lay.row_procs, lay.col_procs, lay.my_row, lay.my_col)};
  out.l.set_quadrant(0, 0, top.l);
  out.l.set_quadrant(1, 0, l21);
  out.l.set_quadrant(1, 1, bottom.l);
  out.l_inv.set_quadrant(0, 0, top.l_inv);
  out.l_inv.set_quadrant(1, 1, bottom.l_inv);
  if (inverse_depth == 0) {
    // Lines 12-14: Y21 = -Y22 * (L21 * Y11).
    DistMatrix u2 = dist::mm3d(l21, top.l_inv, grid);
    DistMatrix y21 = dist::mm3d(bottom.l_inv, u2, grid, -1.0);
    out.l_inv.set_quadrant(1, 0, y21);
  }
  return out;
}

}  // namespace

Cfr3dResult cfr3d(const DistMatrix& a, const grid::CubeGrid& g,
                  Cfr3dOptions opts) {
  ensure_dim(a.rows() == a.cols(), "cfr3d: matrix must be square");
  ensure_dim(a.layout().row_procs == g.g() && a.layout().col_procs == g.g(),
             "cfr3d: operand not distributed over this grid");
  ensure_dim(opts.inverse_depth >= 0, "cfr3d: negative inverse_depth");
  const i64 n0 = effective_base_case(a.rows(), g.g(), opts.base_case);
  // Clamp the inverse depth to the recursion depth actually available.
  int max_depth = 0;
  for (i64 lv = a.rows(); lv > n0; lv /= 2) ++max_depth;
  const int depth = std::min(opts.inverse_depth, max_depth);
  return cfr3d_rec(a, g, n0, depth);
}

}  // namespace cacqr::chol
