/// \file transport_mpi.cpp
/// \brief The MPI backend: each rank is one MPI process (the user runs
///        `mpirun -np P <program>` and every process calls Runtime::run
///        with the same nranks).  Compiled only when the build found MPI
///        (CACQR_HAVE_MPI); the default build never sees this TU.
///
/// Wire mapping: one MPI message per runtime Message, sent with a single
/// fixed MPI tag -- the runtime's (ctx, tag, arrival) header rides at the
/// front of the payload, exactly like the shm backend's frame, so the
/// (ctx, src, tag) matching and FIFO-per-channel guarantees reduce to
/// MPI's non-overtaking rule for same (source, comm, tag) traffic.
/// Sends are MPI_Isend with the buffer parked until completion (the
/// runtime's sends are eager and may not block); arrivals are drained
/// with MPI_Iprobe + MPI_Recv into the local pending queue.
///
/// Abort semantics diverge deliberately: MPI has no portable way to
/// interrupt a peer's blocking receive, so abort() calls MPI_Abort and
/// tears the whole job down (the launcher reports a non-zero exit)
/// instead of unwinding survivors with AbortError.  The conformance and
/// failure-path suites therefore pin those scenarios to modeled/shm.
///
/// RunOutput is collective: counters travel via MPI_Allgather, published
/// blobs via MPI_Allgatherv, so every process returns the same result
/// the in-process backends produce.

#ifdef CACQR_HAVE_MPI

#include <mpi.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <thread>

#include "cacqr/lin/parallel.hpp"
#include "transport.hpp"

namespace cacqr::rt::detail {

namespace {

/// The single MPI tag all runtime traffic uses; (ctx, tag) matching is
/// done by the runtime against the frame header.
constexpr int kWireTag = 0x7ac;

/// On-wire frame header in doubles-compatible units: sent as MPI_BYTE
/// ahead of the payload doubles (same layout as the shm backend frame).
struct FrameHeader {
  u64 ctx;
  std::int64_t src_world;
  std::int64_t tag;
  double arrival;
  std::uint64_t words;
};
static_assert(std::is_trivially_copyable_v<FrameHeader>);

void ensure_mpi(int err, const char* what) {
  ensure<CommError>(err == MPI_SUCCESS, "mpi transport: ", what,
                    " failed with code ", err);
}

/// Lazily initializes MPI once per process (tests and benches call
/// Runtime::run repeatedly); finalization is registered with atexit so
/// plain `mpirun ./tests_rt` works without the program knowing about MPI.
void init_mpi_once() {
  static const bool done = [] {
    int inited = 0;
    ensure_mpi(MPI_Initialized(&inited), "MPI_Initialized");
    if (!inited) {
      int provided = 0;
      ensure_mpi(MPI_Init_thread(nullptr, nullptr, MPI_THREAD_FUNNELED,
                                 &provided),
                 "MPI_Init_thread");
      std::atexit([] {
        int finalized = 0;
        if (MPI_Finalized(&finalized) == MPI_SUCCESS && !finalized) {
          MPI_Finalize();
        }
      });
    }
    return true;
  }();
  (void)done;
}

class MpiTransport final : public Transport {
 public:
  MpiTransport(MPI_Comm comm, int me) : comm_(comm), me_(me) {}

  ~MpiTransport() override {
    // Outstanding isends at teardown only happen on error paths; the
    // job is being torn down anyway, so just release the requests.
    for (auto& s : outbox_) {
      if (s.req != MPI_REQUEST_NULL) MPI_Request_free(&s.req);
    }
  }

  [[nodiscard]] const char* name() const noexcept override { return "mpi"; }

  void post(int src_world, int dst_world, Message&& msg) override {
    if (dst_world == me_) {
      pending_.queue.push_back(std::move(msg));
      ++pending_.arrivals;
      return;
    }
    outbox_.emplace_back();
    InFlightSend& s = outbox_.back();
    const std::size_t payload_bytes = msg.payload.size() * sizeof(double);
    s.bytes.resize(sizeof(FrameHeader) + payload_bytes);
    FrameHeader hdr{};
    hdr.ctx = msg.ctx;
    hdr.src_world = src_world;
    hdr.tag = msg.tag;
    hdr.arrival = msg.arrival;
    hdr.words = msg.payload.size();
    std::memcpy(s.bytes.data(), &hdr, sizeof hdr);
    if (payload_bytes != 0) {
      std::memcpy(s.bytes.data() + sizeof hdr, msg.payload.data(),
                  payload_bytes);
    }
    ensure_mpi(MPI_Isend(s.bytes.data(), static_cast<int>(s.bytes.size()),
                         MPI_BYTE, dst_world, kWireTag, comm_, &s.req),
               "MPI_Isend");
    reap_sends();
  }

  bool match(int me_world, u64 ctx, int src_world, int tag,
             Message& out) override {
    (void)me_world;
    drain_incoming();
    return pending_.match(ctx, src_world, tag, out);
  }

  u64 arrivals(int me_world) override {
    (void)me_world;
    drain_incoming();
    return pending_.arrivals;
  }

  void wait_arrivals(int me_world, u64 seen) override {
    (void)me_world;
    int rounds = 0;
    for (;;) {
      drain_incoming();
      if (pending_.arrivals != seen || aborted()) return;
      if (++rounds < 64) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }

  void abort() noexcept override {
    // No portable cross-process wakeup: tear the job down.  MPI_Abort
    // does not return.
    aborted_.store(true, std::memory_order_release);
    MPI_Abort(comm_, 1);
  }

  [[nodiscard]] bool aborted() const noexcept override {
    return aborted_.load(std::memory_order_acquire);
  }

 private:
  struct InFlightSend {
    std::vector<unsigned char> bytes;
    MPI_Request req = MPI_REQUEST_NULL;
  };

  /// Frees completed isends from the front (FIFO completion is typical;
  /// stop at the first incomplete one to keep this O(completed)).
  void reap_sends() {
    while (!outbox_.empty()) {
      int done = 0;
      ensure_mpi(MPI_Test(&outbox_.front().req, &done, MPI_STATUS_IGNORE),
                 "MPI_Test");
      if (!done) break;
      outbox_.pop_front();
    }
  }

  /// Receives every probe-visible message into the pending queue.
  void drain_incoming() {
    reap_sends();
    for (;;) {
      int flag = 0;
      MPI_Status status;
      ensure_mpi(MPI_Iprobe(MPI_ANY_SOURCE, kWireTag, comm_, &flag, &status),
                 "MPI_Iprobe");
      if (!flag) return;
      int nbytes = 0;
      ensure_mpi(MPI_Get_count(&status, MPI_BYTE, &nbytes), "MPI_Get_count");
      scratch_.resize(static_cast<std::size_t>(nbytes));
      ensure_mpi(MPI_Recv(scratch_.data(), nbytes, MPI_BYTE,
                          status.MPI_SOURCE, kWireTag, comm_,
                          MPI_STATUS_IGNORE),
                 "MPI_Recv");
      ensure<CommError>(
          scratch_.size() >= sizeof(FrameHeader),
          "mpi transport: short frame of ", scratch_.size(), " bytes");
      FrameHeader hdr;
      std::memcpy(&hdr, scratch_.data(), sizeof hdr);
      Message msg;
      msg.ctx = hdr.ctx;
      msg.src_world = static_cast<int>(hdr.src_world);
      msg.tag = static_cast<int>(hdr.tag);
      msg.arrival = hdr.arrival;
      msg.payload.resize(static_cast<std::size_t>(hdr.words));
      if (hdr.words != 0) {
        std::memcpy(msg.payload.data(), scratch_.data() + sizeof hdr,
                    static_cast<std::size_t>(hdr.words) * sizeof(double));
      }
      pending_.queue.push_back(std::move(msg));
      ++pending_.arrivals;
    }
  }

  MPI_Comm comm_;
  int me_;
  PendingQueue pending_;
  std::deque<InFlightSend> outbox_;
  std::vector<unsigned char> scratch_;
  std::atomic<bool> aborted_{false};
};

}  // namespace

RunOutput run_mpi(int nranks, const std::function<void(Comm&)>& body,
                  Machine machine, int threads_per_rank) {
  init_mpi_once();
  int world_size = 0;
  int me = 0;
  ensure_mpi(MPI_Comm_size(MPI_COMM_WORLD, &world_size), "MPI_Comm_size");
  ensure_mpi(MPI_Comm_rank(MPI_COMM_WORLD, &me), "MPI_Comm_rank");
  ensure<CommError>(world_size == nranks,
                    "Runtime::run(mpi): launched with ", world_size,
                    " MPI processes but nranks=", nranks,
                    " (run `mpirun -np ", nranks, " ...`)");

  // A private duplicate per run: repeated Runtime::run calls (tests,
  // calibration sweeps) must not see each other's stragglers.
  MPI_Comm comm = MPI_COMM_NULL;
  ensure_mpi(MPI_Comm_dup(MPI_COMM_WORLD, &comm), "MPI_Comm_dup");

  World world;
  world.nranks = nranks;
  world.machine = machine;
  world.ranks.resize(static_cast<std::size_t>(nranks));
  world.transport = std::make_unique<MpiTransport>(comm, me);

  try {
    rank_main(world, me, threads_per_rank, body);
  } catch (const AbortError&) {
    throw;  // MPI_Abort already fired on the originating rank
  } catch (const std::exception& e) {
    std::fprintf(stderr, "Runtime::run(mpi): rank %d failed: %s\n", me,
                 e.what());
    std::fflush(stderr);
    world.abort_all();  // MPI_Abort: does not return
    throw;
  } catch (...) {
    world.abort_all();
    throw;
  }

  // Fence before collecting: every rank's sends are complete once all
  // bodies returned (the runtime has no trailing wire traffic).
  ensure_mpi(MPI_Barrier(comm), "MPI_Barrier");

  const RankState& mine = world.ranks[static_cast<std::size_t>(me)];
  RunOutput out;
  out.counters.resize(static_cast<std::size_t>(nranks));
  static_assert(std::is_trivially_copyable_v<CostCounters>);
  ensure_mpi(MPI_Allgather(&mine.tally, sizeof(CostCounters), MPI_BYTE,
                           out.counters.data(), sizeof(CostCounters),
                           MPI_BYTE, comm),
             "MPI_Allgather");

  const int my_len = static_cast<int>(mine.published.size());
  std::vector<int> lens(static_cast<std::size_t>(nranks), 0);
  ensure_mpi(MPI_Allgather(&my_len, 1, MPI_INT, lens.data(), 1, MPI_INT,
                           comm),
             "MPI_Allgather");
  std::vector<int> displs(static_cast<std::size_t>(nranks), 0);
  int total = 0;
  for (int r = 0; r < nranks; ++r) {
    displs[static_cast<std::size_t>(r)] = total;
    total += lens[static_cast<std::size_t>(r)];
  }
  std::vector<double> flat(static_cast<std::size_t>(total));
  ensure_mpi(MPI_Allgatherv(mine.published.data(), my_len, MPI_DOUBLE,
                            flat.data(), lens.data(), displs.data(),
                            MPI_DOUBLE, comm),
             "MPI_Allgatherv");
  out.published.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    const auto off = static_cast<std::size_t>(
        displs[static_cast<std::size_t>(r)]);
    out.published.emplace_back(
        flat.begin() + static_cast<std::ptrdiff_t>(off),
        flat.begin() + static_cast<std::ptrdiff_t>(
                           off + static_cast<std::size_t>(
                                     lens[static_cast<std::size_t>(r)])));
  }

  world.transport.reset();  // complete/free isends before freeing the comm
  MPI_Comm_free(&comm);
  return out;
}

}  // namespace cacqr::rt::detail

#endif  // CACQR_HAVE_MPI
