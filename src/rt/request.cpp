/// \file request.cpp
/// \brief The request engine driving nonblocking collectives.
///
/// A request is a precomputed step list (internal.hpp) executed strictly
/// in order: Send and Local steps never block, a Recv step parks the
/// request until its message shows up.  Everything here runs on the
/// owning rank thread -- progress is cooperative, there is no progress
/// thread -- so the per-rank tallies and the modeled clock are charged
/// from exactly one thread, in step order, just like the blocking
/// schedules they replace.
///
/// Deadlock discipline: wait_request and the blocking recv loop drive ALL
/// of the rank's in-flight requests, not just their target.  A rank
/// blocked waiting on collective B therefore still executes its
/// point-to-point share of collective A, which is what makes
/// rank-dependent wait orders (and overlap windows that complete requests
/// late) safe.

#include <algorithm>
#include <exception>
#include <string>

#include "cacqr/obs/trace.hpp"
#include "transport.hpp"

namespace cacqr::rt {

namespace detail {

void trace_stamp_request(RequestState& r, const char* name) {
  if (!obs::trace_on() || r.done()) return;
  const auto& tally = r.comm->world->ranks[static_cast<std::size_t>(
                          world_rank_of(*r.comm))].tally;
  r.trace_name = name;
  r.trace_t0 = obs::now_ns();
  r.trace_msgs0 = tally.msgs;
  r.trace_words0 = tally.words;
  r.trace_clock0 = tally.time;
}

namespace {

/// One completion span per collective, blocking or not: [start_*,
/// last-step-retired] wall time, with the request's charged msgs/words
/// and its modeled-clock window as args (microseconds, to match ts/dur).
void trace_emit_request(const RequestState& r) {
  if (r.trace_name == nullptr || !obs::trace_on()) return;
  const auto& tally = r.comm->world->ranks[static_cast<std::size_t>(
                          world_rank_of(*r.comm))].tally;
  obs::complete(
      "rt", r.trace_name, r.trace_t0, obs::now_ns(),
      {{"msgs", static_cast<double>(tally.msgs - r.trace_msgs0)},
       {"words", static_cast<double>(tally.words - r.trace_words0)},
       {"mclk0_us", r.trace_clock0 * 1e6},
       {"mclk1_us", tally.time * 1e6}});
}

}  // namespace

void unregister_request(RequestState& r) {
  if (!r.registered) return;
  auto& active = r.comm->world->ranks[static_cast<std::size_t>(
                     world_rank_of(*r.comm))].active;
  auto it = std::find(active.begin(), active.end(), &r);
  if (it != active.end()) active.erase(it);
  r.registered = false;
}

bool advance_request(RequestState& r) {
  try {
    while (r.next < r.steps.size()) {
      Step& s = r.steps[r.next];
      switch (s.kind) {
        case Step::Kind::Send:
          send_now(*r.comm, s.peer, r.tag,
                   {s.ptr, static_cast<std::size_t>(s.len)});
          break;
        case Step::Kind::Local:
          if (s.local) s.local();
          break;
        case Step::Kind::Recv:
          if (!try_recv_now(*r.comm, s.peer, r.tag,
                            {s.ptr, static_cast<std::size_t>(s.len)})) {
            return false;
          }
          if (s.local) s.local();
          break;
      }
      ++r.next;
    }
  } catch (...) {
    // A failed step poisons the request: a throwing Recv has already
    // consumed (and discarded) its message, so retrying the step would
    // match unrelated later traffic on the same channel; and the thrower
    // may be mid-start_*, where an entry left in the active list would
    // dangle once the enclosing unique_ptr unwinds.
    r.next = r.steps.size();
    unregister_request(r);
    throw;
  }
  trace_emit_request(r);
  unregister_request(r);
  return true;
}

void progress_all(World& w, int world_rank) {
  // A nonblocking poll must still observe aborts: a rank spinning on
  // test()/progress() whose partner died would otherwise spin forever
  // (its pending Recv steps can never be satisfied).
  if (w.aborted()) {
    throw AbortError("progress: run aborted by another rank");
  }
  auto& active = w.ranks[static_cast<std::size_t>(world_rank)].active;
  // advance_request erases exactly its own (current) entry on completion,
  // shifting the next request into slot i.
  std::size_t i = 0;
  while (i < active.size()) {
    if (!advance_request(*active[i])) ++i;
  }
}

void start_request(RequestState& r) {
  if (r.done()) return;  // trivial collective (p == 1 / empty payload)
  auto& active = r.comm->world->ranks[static_cast<std::size_t>(
                     world_rank_of(*r.comm))].active;
  active.push_back(&r);
  r.registered = true;
  advance_request(r);
}

void wait_until(World& w, int world_rank, const std::function<bool()>& ready,
                const char* who) {
  Transport& tr = *w.transport;
  const auto abort_message = [who] {
    return std::string(who) + ": run aborted by another rank";
  };
  for (;;) {
    const u64 seen = tr.arrivals(world_rank);
    if (tr.aborted()) throw AbortError(abort_message());
    if (ready()) return;
    progress_all(w, world_rank);
    if (ready()) return;
    if (obs::trace_on()) {
      // One span per park on the transport: where blocked time is spent.
      const u64 t0 = obs::now_ns();
      tr.wait_arrivals(world_rank, seen);
      obs::complete(tr.name(), "wait", t0, obs::now_ns());
    } else {
      tr.wait_arrivals(world_rank, seen);
    }
    if (tr.aborted()) throw AbortError(abort_message());
  }
}

void wait_request(RequestState& r) {
  wait_until(*r.comm->world, world_rank_of(*r.comm),
             [&r] { return r.done(); }, "wait");
}

}  // namespace detail

Request::Request() noexcept : uncaught_(std::uncaught_exceptions()) {}

Request::Request(std::unique_ptr<detail::RequestState> state) noexcept
    : state_(std::move(state)), uncaught_(std::uncaught_exceptions()) {}

Request::Request(Request&& other) noexcept = default;

namespace {

/// Completes an in-flight request so its schedule never dangles in the
/// rank's active list.  AbortError is always swallowed (an aborting run
/// tears down mid-collective by design).  Any other failure while
/// draining (e.g. mismatched payload sizes) is a real bug: it is
/// rethrown when `may_throw`, and either way the world is aborted so
/// partner ranks cannot hang on our unexecuted steps.
void drain(detail::RequestState* r, bool may_throw) {
  if (r == nullptr) return;
  if (!r->done()) {
    try {
      detail::wait_request(*r);
    } catch (const AbortError&) {
      // Partners are being torn down too; just deregister below.
    } catch (...) {
      detail::unregister_request(*r);
      r->comm->world->abort_all();
      if (may_throw) throw;
    }
  }
  detail::unregister_request(*r);
}

}  // namespace

Request& Request::operator=(Request&& other) noexcept {
  if (this != &other) {
    drain(state_.get(), /*may_throw=*/false);
    state_ = std::move(other.state_);
    uncaught_ = other.uncaught_;
  }
  return *this;
}

Request::~Request() noexcept(false) {
  // Propagate real drain errors out of a normal scope exit; stay silent
  // only when an exception NEWER than this handle is unwinding the stack
  // (comparison against the construction-time count, so cleanup code
  // running under unrelated unwinding still reports its own failures).
  drain(state_.get(), /*may_throw=*/std::uncaught_exceptions() <= uncaught_);
}

bool Request::valid() const noexcept { return state_ != nullptr; }

void Request::wait() {
  if (state_ == nullptr || state_->done()) return;
  detail::wait_request(*state_);
}

bool Request::test() {
  if (state_ == nullptr || state_->done()) return true;
  detail::progress_all(*state_->comm->world,
                       detail::world_rank_of(*state_->comm));
  return state_->done();
}

}  // namespace cacqr::rt
