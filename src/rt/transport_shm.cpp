/// \file transport_shm.cpp
/// \brief The shared-memory multi-process backend: ranks are fork()ed
///        children of the launching process, delivery is a lock-free
///        SPSC byte ring in anonymous shared memory per (src, dst) pair,
///        and completion is real -- a Recv finishes when the bytes have
///        actually crossed the ring.
///
/// Region layout (one MAP_SHARED | MAP_ANONYMOUS mapping created before
/// fork, so every rank inherits the same physical pages):
///
///   [ Header            ]  sticky abort flag
///   [ ChildSlot x P     ]  per-rank exit state, marshalled error, tally
///   [ published x P     ]  per-rank Comm::publish blobs (doubles)
///   [ Ring x P*P        ]  SPSC byte stream from src to dst
///
/// Each ring has exactly one producer (the src process) and one consumer
/// (the dst process), so two release/acquire cursors suffice -- no locks,
/// and no futexes shared across processes.  Messages are framed
/// (FrameHeader + payload doubles) and may span ring wraps or even be
/// larger than the ring: the consumer reassembles partial frames in
/// private memory, and a producer blocked on a full ring drains its OWN
/// incoming rings meanwhile (two mutually-blocked senders always
/// unblock, preserving the eager-send/never-deadlock contract of the
/// modeled backend) and aborts out if the run dies.
///
/// Error discipline: a child that fails marshals {type, what, pivot}
/// into its ChildSlot, raises the run-wide abort flag, and exits 0 --
/// exit codes only signal catastrophic death (signal, _exit by a
/// library).  The parent reaps children in completion order; on an
/// abnormal death it raises the abort flag itself so survivors unwind
/// with AbortError promptly instead of hanging on messages that will
/// never arrive.  Tunables: CACQR_SHM_RING_KB (per-pair ring capacity,
/// default 256) and CACQR_SHM_RESULT_KB (per-rank publish capacity,
/// default 2048; the result slots live in lazily-paged anonymous shared
/// memory, so unused capacity costs no physical pages).

#if !defined(_WIN32)

#include <sys/mman.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "cacqr/lin/parallel.hpp"
#include "cacqr/obs/trace.hpp"
#include "transport.hpp"

namespace cacqr::rt::detail {

namespace {

// ------------------------------------------------------------- tunables

std::size_t env_kb(const char* name, std::size_t fallback_kb,
                   std::size_t min_kb, std::size_t max_kb) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback_kb;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 1) return fallback_kb;
  const auto kb = static_cast<std::size_t>(v);
  return kb < min_kb ? min_kb : (kb > max_kb ? max_kb : kb);
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Per-pair ring capacity in bytes (power of two, cursor masking).
std::size_t ring_capacity_bytes() {
  return round_up_pow2(env_kb("CACQR_SHM_RING_KB", 256, 16, 65536) * 1024);
}

/// Per-rank publish capacity in doubles.
std::size_t result_capacity_words() {
  return env_kb("CACQR_SHM_RESULT_KB", 2048, 8, 1048576) * 1024 / sizeof(double);
}

constexpr std::size_t align_up(std::size_t n, std::size_t a) {
  return (n + a - 1) / a * a;
}

// --------------------------------------------------------- shared state

struct alignas(64) Header {
  std::atomic<std::uint32_t> abort_flag;
};

/// What a failed child marshals for the parent to rethrow.
enum class ErrKind : std::int32_t {
  none = 0,
  comm,
  dimension,
  not_spd,
  generic,   // cacqr::Error
  standard,  // std::exception outside the hierarchy
  unknown,   // catch (...)
  test_failure,
};

enum : std::uint32_t {
  kStateRunning = 0,  // still set at reap time => died without unwinding
  kStateOk = 1,
  kStateFailed = 2,
  kStateAborted = 3,  // unwound on another rank's abort: not an error
};

struct alignas(64) ChildSlot {
  std::atomic<std::uint32_t> state;
  ErrKind err_kind;
  std::uint64_t err_pivot;
  std::uint64_t published_len;  // doubles actually published
  CostCounters tally;
  char what[4096];
};

/// SPSC cursor pair; the byte buffer follows it in the region.  `tail` is
/// bytes ever produced (src process writes, release), `head` bytes ever
/// consumed (dst process writes, release); both index the buffer modulo
/// its power-of-two capacity.
struct alignas(64) RingCtl {
  std::atomic<std::uint64_t> head;
  char pad_[64 - sizeof(std::atomic<std::uint64_t>)];
  std::atomic<std::uint64_t> tail;
};

/// On-wire frame header; payload doubles follow immediately.
struct FrameHeader {
  u64 ctx;
  std::int64_t src_world;
  std::int64_t tag;
  double arrival;
  std::uint64_t words;
};
static_assert(std::is_trivially_copyable_v<FrameHeader>);
static_assert(std::is_trivially_copyable_v<CostCounters>);

/// The pre-fork mapping and its layout.  Constructed by the parent;
/// children inherit both the mapping and this object's plain members.
class Region {
 public:
  explicit Region(int nranks)
      : nranks_(nranks),
        ring_cap_(ring_capacity_bytes()),
        result_cap_(result_capacity_words()) {
    slots_off_ = align_up(sizeof(Header), 64);
    results_off_ =
        align_up(slots_off_ + sizeof(ChildSlot) * static_cast<std::size_t>(
                                                      nranks), 64);
    rings_off_ = align_up(
        results_off_ +
            sizeof(double) * result_cap_ * static_cast<std::size_t>(nranks),
        64);
    ring_stride_ = align_up(sizeof(RingCtl) + ring_cap_, 64);
    bytes_ = rings_off_ + ring_stride_ * static_cast<std::size_t>(nranks) *
                              static_cast<std::size_t>(nranks);
    void* p = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    ensure<CommError>(p != MAP_FAILED,
                      "shm transport: mmap of ", bytes_, " bytes failed");
    base_ = static_cast<unsigned char*>(p);
    std::memset(base_, 0, bytes_);
    new (base_) Header{};
    for (int r = 0; r < nranks; ++r) new (&slot(r)) ChildSlot{};
    for (int s = 0; s < nranks; ++s) {
      for (int d = 0; d < nranks; ++d) new (&ring(s, d)) RingCtl{};
    }
  }

  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;
  ~Region() {
    if (base_ != nullptr) ::munmap(base_, bytes_);
  }

  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] std::size_t ring_cap() const noexcept { return ring_cap_; }
  [[nodiscard]] std::size_t result_cap() const noexcept { return result_cap_; }

  [[nodiscard]] Header& header() const noexcept {
    return *reinterpret_cast<Header*>(base_);
  }
  [[nodiscard]] ChildSlot& slot(int r) const noexcept {
    return *reinterpret_cast<ChildSlot*>(
        base_ + slots_off_ + sizeof(ChildSlot) * static_cast<std::size_t>(r));
  }
  [[nodiscard]] double* results(int r) const noexcept {
    return reinterpret_cast<double*>(base_ + results_off_) +
           result_cap_ * static_cast<std::size_t>(r);
  }
  [[nodiscard]] RingCtl& ring(int src, int dst) const noexcept {
    return *reinterpret_cast<RingCtl*>(base_ + ring_off(src, dst));
  }
  [[nodiscard]] unsigned char* ring_data(int src, int dst) const noexcept {
    return base_ + ring_off(src, dst) + sizeof(RingCtl);
  }

  void set_abort() const noexcept {
    header().abort_flag.store(1, std::memory_order_release);
  }
  [[nodiscard]] bool aborted() const noexcept {
    return header().abort_flag.load(std::memory_order_acquire) != 0;
  }

 private:
  [[nodiscard]] std::size_t ring_off(int src, int dst) const noexcept {
    const auto idx = static_cast<std::size_t>(src) *
                         static_cast<std::size_t>(nranks_) +
                     static_cast<std::size_t>(dst);
    return rings_off_ + ring_stride_ * idx;
  }

  int nranks_;
  std::size_t ring_cap_;
  std::size_t result_cap_;
  std::size_t slots_off_ = 0;
  std::size_t results_off_ = 0;
  std::size_t rings_off_ = 0;
  std::size_t ring_stride_ = 0;
  std::size_t bytes_ = 0;
  unsigned char* base_ = nullptr;
};

/// Brief polite pause between poll rounds: spin a little for latency,
/// then sleep so P > core-count runs (and survivors of a dead peer)
/// don't burn CPU.
struct Backoff {
  int rounds = 0;
  void pause() {
    if (++rounds < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  void reset() noexcept { rounds = 0; }
};

// ------------------------------------------------------------ transport

/// One rank process's view of the shared region.  Only `me_`'s incoming
/// rings and pending queue are ever touched locally; everything crossing
/// ranks goes through the SPSC cursors.
class ShmTransport final : public Transport {
 public:
  ShmTransport(const Region& region, int me)
      : region_(region), me_(me),
        partial_(static_cast<std::size_t>(region.nranks())) {}

  [[nodiscard]] const char* name() const noexcept override { return "shm"; }

  void post(int src_world, int dst_world, Message&& msg) override {
    if (dst_world == me_) {
      // Self-send: deliver straight into the local pending queue (the
      // modeled backend's mailbox push, minus the lock).
      pending_.queue.push_back(std::move(msg));
      ++pending_.arrivals;
      return;
    }
    // Serialize the frame, then stream it through the ring in as many
    // pieces as backpressure dictates.
    const std::size_t payload_bytes = msg.payload.size() * sizeof(double);
    frame_.resize(sizeof(FrameHeader) + payload_bytes);
    FrameHeader hdr{};
    hdr.ctx = msg.ctx;
    hdr.src_world = msg.src_world;
    hdr.tag = msg.tag;
    hdr.arrival = msg.arrival;
    hdr.words = msg.payload.size();
    std::memcpy(frame_.data(), &hdr, sizeof hdr);
    if (payload_bytes != 0) {
      std::memcpy(frame_.data() + sizeof hdr, msg.payload.data(),
                  payload_bytes);
    }

    RingCtl& ctl = region_.ring(src_world, dst_world);
    unsigned char* data = region_.ring_data(src_world, dst_world);
    const std::size_t cap = region_.ring_cap();
    std::size_t sent = 0;
    Backoff backoff;
    while (sent < frame_.size()) {
      const std::uint64_t tail = ctl.tail.load(std::memory_order_relaxed);
      const std::uint64_t head = ctl.head.load(std::memory_order_acquire);
      const std::size_t free_bytes = cap - static_cast<std::size_t>(tail - head);
      if (free_bytes == 0) {
        if (region_.aborted()) {
          throw AbortError("send: run aborted by another rank");
        }
        // The receiver may itself be blocked sending to us: drain our
        // own incoming traffic so the pair always makes progress.
        drain_incoming();
        backoff.pause();
        continue;
      }
      backoff.reset();
      const std::size_t n = std::min(free_bytes, frame_.size() - sent);
      const std::size_t idx = static_cast<std::size_t>(tail) & (cap - 1);
      const std::size_t first = std::min(n, cap - idx);
      std::memcpy(data + idx, frame_.data() + sent, first);
      std::memcpy(data, frame_.data() + sent + first, n - first);
      ctl.tail.store(tail + n, std::memory_order_release);
      sent += n;
    }
  }

  bool match(int me_world, u64 ctx, int src_world, int tag,
             Message& out) override {
    (void)me_world;
    drain_incoming();
    return pending_.match(ctx, src_world, tag, out);
  }

  u64 arrivals(int me_world) override {
    (void)me_world;
    drain_incoming();
    return pending_.arrivals;
  }

  void wait_arrivals(int me_world, u64 seen) override {
    (void)me_world;
    Backoff backoff;
    for (;;) {
      drain_incoming();
      if (pending_.arrivals != seen || region_.aborted()) return;
      backoff.pause();
    }
  }

  void abort() noexcept override { region_.set_abort(); }
  [[nodiscard]] bool aborted() const noexcept override {
    return region_.aborted();
  }

 private:
  /// Moves every byte available on my incoming rings into the per-source
  /// reassembly buffers, then promotes complete frames to the pending
  /// queue.  Never blocks.
  void drain_incoming() {
    for (int src = 0; src < region_.nranks(); ++src) {
      if (src == me_) continue;
      RingCtl& ctl = region_.ring(src, me_);
      const std::uint64_t head = ctl.head.load(std::memory_order_relaxed);
      const std::uint64_t tail = ctl.tail.load(std::memory_order_acquire);
      const auto avail = static_cast<std::size_t>(tail - head);
      if (avail != 0) {
        const unsigned char* data = region_.ring_data(src, me_);
        const std::size_t cap = region_.ring_cap();
        auto& buf = partial_[static_cast<std::size_t>(src)];
        const std::size_t old = buf.size();
        buf.resize(old + avail);
        const std::size_t idx = static_cast<std::size_t>(head) & (cap - 1);
        const std::size_t first = std::min(avail, cap - idx);
        std::memcpy(buf.data() + old, data + idx, first);
        std::memcpy(buf.data() + old + first, data, avail - first);
        ctl.head.store(head + avail, std::memory_order_release);
      }
      extract_frames(src);
    }
  }

  /// Promotes every complete frame in src's reassembly buffer.
  void extract_frames(int src) {
    auto& buf = partial_[static_cast<std::size_t>(src)];
    std::size_t consumed = 0;
    while (buf.size() - consumed >= sizeof(FrameHeader)) {
      FrameHeader hdr;
      std::memcpy(&hdr, buf.data() + consumed, sizeof hdr);
      const std::size_t need =
          sizeof(FrameHeader) + static_cast<std::size_t>(hdr.words) *
                                    sizeof(double);
      if (buf.size() - consumed < need) break;
      Message msg;
      msg.ctx = hdr.ctx;
      msg.src_world = static_cast<int>(hdr.src_world);
      msg.tag = static_cast<int>(hdr.tag);
      msg.arrival = hdr.arrival;
      msg.payload.resize(static_cast<std::size_t>(hdr.words));
      if (hdr.words != 0) {
        std::memcpy(msg.payload.data(),
                    buf.data() + consumed + sizeof(FrameHeader),
                    static_cast<std::size_t>(hdr.words) * sizeof(double));
      }
      pending_.queue.push_back(std::move(msg));
      ++pending_.arrivals;
      consumed += need;
    }
    if (consumed != 0) {
      buf.erase(buf.begin(),
                buf.begin() + static_cast<std::ptrdiff_t>(consumed));
    }
  }

  const Region& region_;
  int me_;
  PendingQueue pending_;
  std::vector<std::vector<unsigned char>> partial_;  // per-src reassembly
  std::vector<unsigned char> frame_;                 // send scratch
};

// ------------------------------------------------------------- children

void marshal_error(ChildSlot& slot, ErrKind kind, const char* what,
                   std::uint64_t pivot) noexcept {
  slot.err_kind = kind;
  slot.err_pivot = pivot;
  std::snprintf(slot.what, sizeof slot.what, "%s", what);
}

/// Runs rank `r`'s body in the forked child and never returns.  Exit code
/// 0 always; outcome travels through the ChildSlot.
[[noreturn]] void child_main(const Region& region, int rank, Machine machine,
                             int rank_budget,
                             const std::function<void(Comm&)>& body) {
  // The pool workers (and every other thread) died with fork(); drop the
  // inherited handle before the body opens a parallel region.
  lin::parallel::reinit_after_fork();
  // Inherited trace rings hold the parent's events; wipe them or this
  // child's trace file would duplicate everything recorded before fork.
  obs::detail::reset_after_fork();

  ChildSlot& slot = region.slot(rank);
  const FailureProbe probe = child_failure_probe();
  const int failures_before = probe != nullptr ? probe() : 0;

  World world;
  world.nranks = region.nranks();
  world.machine = machine;
  world.ranks.resize(static_cast<std::size_t>(region.nranks()));
  world.transport = std::make_unique<ShmTransport>(region, rank);

  std::uint32_t state = kStateOk;
  try {
    rank_main(world, rank, rank_budget, body);
  } catch (const AbortError&) {
    state = kStateAborted;  // secondary: another rank already failed
  } catch (const NotSpdError& e) {
    marshal_error(slot, ErrKind::not_spd, e.what(), e.pivot);
    state = kStateFailed;
  } catch (const CommError& e) {
    marshal_error(slot, ErrKind::comm, e.what(), 0);
    state = kStateFailed;
  } catch (const DimensionError& e) {
    marshal_error(slot, ErrKind::dimension, e.what(), 0);
    state = kStateFailed;
  } catch (const Error& e) {
    marshal_error(slot, ErrKind::generic, e.what(), 0);
    state = kStateFailed;
  } catch (const std::exception& e) {
    marshal_error(slot, ErrKind::standard, e.what(), 0);
    state = kStateFailed;
  } catch (...) {
    marshal_error(slot, ErrKind::unknown, "unknown exception in rank body", 0);
    state = kStateFailed;
  }
  if (state == kStateFailed) region.set_abort();

  if (state == kStateOk && probe != nullptr) {
    const int grew = probe() - failures_before;
    if (grew > 0) {
      // Test-harness EXPECT/ASSERT failures happened in this child's
      // copy of the framework; the parent can't see them, so report a
      // failure (the child's own output already carries the details).
      // Deliberately no abort: siblings finished normally.
      const std::string msg = cacqr::detail::concat(
          grew, " test assertion failure(s) in rank ", rank,
          " child process (see child output above)");
      marshal_error(slot, ErrKind::test_failure, msg.c_str(), 0);
      state = kStateFailed;
    }
  }

  // Export results even on failure -- tallies are useful diagnostics.
  RankState& mine = world.ranks[static_cast<std::size_t>(rank)];
  slot.tally = mine.tally;
  if (mine.published.size() > region.result_cap()) {
    if (state == kStateOk) {
      const std::string msg = cacqr::detail::concat(
          "Comm::publish: rank ", rank, " published ", mine.published.size(),
          " doubles, over the shm result capacity of ", region.result_cap(),
          " (raise CACQR_SHM_RESULT_KB)");
      marshal_error(slot, ErrKind::comm, msg.c_str(), 0);
      state = kStateFailed;
      region.set_abort();
    }
    slot.published_len = 0;
  } else {
    if (!mine.published.empty()) {
      std::memcpy(region.results(rank), mine.published.data(),
                  mine.published.size() * sizeof(double));
    }
    slot.published_len = mine.published.size();
  }
  slot.state.store(state, std::memory_order_release);

  // _Exit below skips atexit, so the child must flush its own per-pid
  // trace file here; the parent merges it in by pid at its own exit.
  if (obs::trace_on()) obs::write_process_trace();

  std::fflush(stdout);
  std::fflush(stderr);
  // _Exit: no atexit/static destructors -- they belong to the parent's
  // lifetime (gtest teardown, cache writers); running them P extra times
  // from children would corrupt shared files and double-report.
  std::_Exit(0);
}

[[noreturn]] void rethrow_child_error(int rank, const ChildSlot& slot) {
  const std::string what(slot.what);
  switch (slot.err_kind) {
    case ErrKind::not_spd:
      throw NotSpdError(what, static_cast<std::size_t>(slot.err_pivot));
    case ErrKind::dimension:
      throw DimensionError(what);
    case ErrKind::comm:
    case ErrKind::test_failure:
      throw CommError(what);
    case ErrKind::generic:
      throw Error(what);
    case ErrKind::standard:
    case ErrKind::unknown:
    case ErrKind::none:
      break;
  }
  throw CommError(cacqr::detail::concat("rank ", rank, " failed: ", what));
}

}  // namespace

RunOutput run_shm(int nranks, const std::function<void(Comm&)>& body,
                  Machine machine, int threads_per_rank) {
  Region region(nranks);

  // Unflushed stdio would be duplicated into every child image.
  std::fflush(stdout);
  std::fflush(stderr);

  std::vector<pid_t> pids(static_cast<std::size_t>(nranks), -1);
  for (int r = 0; r < nranks; ++r) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      child_main(region, r, machine, threads_per_rank, body);  // noreturn
    }
    if (pid < 0) {
      // Could not launch the full team: abort the ranks already running
      // and reap them before reporting.
      region.set_abort();
      for (int k = 0; k < r; ++k) {
        int status = 0;
        (void)::waitpid(pids[static_cast<std::size_t>(k)], &status, 0);
      }
      throw CommError(cacqr::detail::concat("shm transport: fork failed at rank ", r));
    }
    pids[static_cast<std::size_t>(r)] = pid;
    // Fold this child's trace file into the parent's merged trace.json
    // at exit (children cannot: they _Exit without atexit).
    if (obs::trace_on()) obs::detail::note_forked_child(static_cast<int>(pid));
  }

  // Reap in completion order: a rank dying abnormally must raise the
  // abort flag NOW, or survivors blocked on its messages never exit and
  // this loop never finishes.
  int dead_rank = -1;
  std::string dead_desc;
  for (int reaped = 0; reaped < nranks; ++reaped) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    if (pid < 0) break;  // EINTR storm / no children: slots decide below
    int rank = -1;
    for (int r = 0; r < nranks; ++r) {
      if (pids[static_cast<std::size_t>(r)] == pid) rank = r;
    }
    if (rank < 0) {
      --reaped;  // unrelated child of the embedding process
      continue;
    }
    const std::uint32_t state =
        region.slot(rank).state.load(std::memory_order_acquire);
    const bool abnormal = WIFSIGNALED(status) ||
                          (WIFEXITED(status) && WEXITSTATUS(status) != 0) ||
                          state == kStateRunning;
    if (abnormal && dead_rank < 0) {
      dead_rank = rank;
      dead_desc = WIFSIGNALED(status)
                      ? cacqr::detail::concat("killed by signal ", WTERMSIG(status))
                      : cacqr::detail::concat("exited with status ",
                                       WIFEXITED(status) ? WEXITSTATUS(status)
                                                         : -1,
                                       " without reporting a result");
      region.set_abort();
    }
  }

  if (dead_rank >= 0) {
    throw AbortError(cacqr::detail::concat("Runtime::run(shm): rank ", dead_rank,
                                    " ", dead_desc, "; run aborted"));
  }
  for (int r = 0; r < nranks; ++r) {
    if (region.slot(r).state.load(std::memory_order_acquire) == kStateFailed) {
      rethrow_child_error(r, region.slot(r));
    }
  }
  if (region.aborted()) {
    // Abort raised but nobody marshalled an error (e.g. a body threw
    // AbortError directly on every rank).
    throw AbortError("Runtime::run(shm): run aborted");
  }

  RunOutput out;
  out.counters.reserve(static_cast<std::size_t>(nranks));
  out.published.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    const ChildSlot& slot = region.slot(r);
    out.counters.push_back(slot.tally);
    const double* pub = region.results(r);
    out.published.emplace_back(pub, pub + slot.published_len);
  }
  return out;
}

}  // namespace cacqr::rt::detail

#else  // _WIN32

#include "transport.hpp"

namespace cacqr::rt::detail {

RunOutput run_shm(int, const std::function<void(Comm&)>&, Machine, int) {
  throw CommError("shm transport: not supported on this platform (no fork)");
}

}  // namespace cacqr::rt::detail

#endif
