/// \file transport_modeled.cpp
/// \brief The modeled in-process backend: ranks are threads of this
///        process, delivery is a locked mailbox per rank, and blocked
///        receivers sleep on a condition variable.  This is the
///        historical runtime verbatim -- the default backend, and the
///        one whose LogP clock the model-validation benches simulate
///        against.

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "cacqr/lin/parallel.hpp"
#include "transport.hpp"

namespace cacqr::rt::detail {

namespace {

/// In-process delivery: one locked PendingQueue per rank; the lock also
/// provides the happens-before edge between a sender's payload writes
/// and the receiver's reads.
class ModeledTransport final : public Transport {
 public:
  explicit ModeledTransport(int nranks)
      : boxes_(static_cast<std::size_t>(nranks)) {}

  [[nodiscard]] const char* name() const noexcept override {
    return "modeled";
  }

  void post(int /*src_world*/, int dst_world, Message&& msg) override {
    Box& box = boxes_[static_cast<std::size_t>(dst_world)];
    {
      std::lock_guard<std::mutex> lock(box.mu);
      box.pending.queue.push_back(std::move(msg));
      ++box.pending.arrivals;
    }
    box.cv.notify_all();
  }

  bool match(int me_world, u64 ctx, int src_world, int tag,
             Message& out) override {
    Box& box = boxes_[static_cast<std::size_t>(me_world)];
    std::lock_guard<std::mutex> lock(box.mu);
    return box.pending.match(ctx, src_world, tag, out);
  }

  u64 arrivals(int me_world) override {
    Box& box = boxes_[static_cast<std::size_t>(me_world)];
    std::lock_guard<std::mutex> lock(box.mu);
    return box.pending.arrivals;
  }

  void wait_arrivals(int me_world, u64 seen) override {
    Box& box = boxes_[static_cast<std::size_t>(me_world)];
    std::unique_lock<std::mutex> lock(box.mu);
    box.cv.wait(lock, [&] {
      return aborted_.load(std::memory_order_acquire) ||
             box.pending.arrivals != seen;
    });
  }

  void abort() noexcept override {
    aborted_.store(true, std::memory_order_release);
    for (Box& box : boxes_) {
      std::lock_guard<std::mutex> lock(box.mu);
      box.cv.notify_all();
    }
  }

  [[nodiscard]] bool aborted() const noexcept override {
    return aborted_.load(std::memory_order_acquire);
  }

 private:
  struct Box {
    std::mutex mu;
    std::condition_variable cv;
    PendingQueue pending;
  };
  std::vector<Box> boxes_;
  std::atomic<bool> aborted_{false};
};

}  // namespace

RunOutput run_modeled(int nranks, const std::function<void(Comm&)>& body,
                      Machine machine, int threads_per_rank) {
  World world;
  world.nranks = nranks;
  world.machine = machine;
  world.ranks.resize(static_cast<std::size_t>(nranks));
  world.transport = std::make_unique<ModeledTransport>(nranks);

  std::mutex error_mu;
  std::exception_ptr first_error;

  auto rank_thread = [&](int r) {
    try {
      rank_main(world, r, threads_per_rank, body);
    } catch (const AbortError&) {
      // Secondary failure caused by another rank's abort: ignore.
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      world.abort_all();
    }
  };

  if (nranks == 1) {
    // Run inline: keeps single-rank uses debuggable.  The budget override
    // lands on the caller's thread, so restore it afterwards.
    const int caller_budget = lin::parallel::thread_budget();
    rank_thread(0);
    lin::parallel::set_thread_budget(caller_budget);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) threads.emplace_back(rank_thread, r);
    for (auto& t : threads) t.join();
  }

  if (first_error) std::rethrow_exception(first_error);
  RunOutput out;
  out.counters.reserve(static_cast<std::size_t>(nranks));
  out.published.reserve(static_cast<std::size_t>(nranks));
  for (auto& rs : world.ranks) {
    out.counters.push_back(rs.tally);
    out.published.push_back(std::move(rs.published));
  }
  return out;
}

}  // namespace cacqr::rt::detail
