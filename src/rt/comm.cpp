#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>

#include "cacqr/lin/flops.hpp"
#include "cacqr/lin/parallel.hpp"
#include "internal.hpp"

namespace cacqr::rt {

using detail::CommState;
using detail::Message;
using detail::World;

namespace detail {

u64 mix64(u64 x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

void World::abort_all() {
  aborted.store(true, std::memory_order_release);
  for (auto& mb : mailboxes) {
    std::lock_guard<std::mutex> lock(mb->mu);
    mb->cv.notify_all();
  }
}

namespace {

/// Drains the calling thread's pending kernel flops into the rank tally.
/// Idempotent between kernel calls (the thread-local counter is taken),
/// so retry loops may call it repeatedly without double charging.
void charge_flops_now(CommState& s) {
  const i64 f = lin::flops::take();
  if (f == 0) return;
  auto& rank_state =
      s.world->ranks[static_cast<std::size_t>(world_rank_of(s))];
  rank_state.tally.flops += f;
  rank_state.tally.time += static_cast<double>(f) * s.world->machine.gamma;
}

}  // namespace

void send_now(CommState& s, int dest, int tag, std::span<const double> data) {
  charge_flops_now(s);
  World& w = *s.world;
  auto& me = w.ranks[static_cast<std::size_t>(world_rank_of(s))].tally;
  me.msgs += 1;
  me.words += static_cast<i64>(data.size());
  me.time += w.machine.alpha +
             static_cast<double>(data.size()) * w.machine.beta;

  Message msg;
  msg.ctx = s.ctx;
  msg.src_world = world_rank_of(s);
  msg.tag = tag;
  msg.arrival = me.time;
  msg.payload.assign(data.begin(), data.end());

  const int dest_world = s.members[static_cast<std::size_t>(dest)];
  auto& mb = *w.mailboxes[static_cast<std::size_t>(dest_world)];
  {
    std::lock_guard<std::mutex> lock(mb.mu);
    mb.queue.push_back(std::move(msg));
    ++mb.arrivals;
  }
  mb.cv.notify_all();
}

bool try_recv_now(CommState& s, int src, int tag, std::span<double> data) {
  charge_flops_now(s);
  World& w = *s.world;
  const int src_world = s.members[static_cast<std::size_t>(src)];
  auto& mb = *w.mailboxes[static_cast<std::size_t>(world_rank_of(s))];

  Message msg;
  {
    std::lock_guard<std::mutex> lock(mb.mu);
    // First queued message matching (ctx, src, tag): FIFO per channel.
    auto it = mb.queue.begin();
    for (; it != mb.queue.end(); ++it) {
      if (it->ctx == s.ctx && it->src_world == src_world && it->tag == tag) {
        break;
      }
    }
    if (it == mb.queue.end()) return false;
    msg = std::move(*it);
    mb.queue.erase(it);
  }
  ensure<CommError>(msg.payload.size() == data.size(),
                    "recv: size mismatch: expected ", data.size(), " got ",
                    msg.payload.size());
  std::copy(msg.payload.begin(), msg.payload.end(), data.begin());
  auto& me = w.ranks[static_cast<std::size_t>(world_rank_of(s))].tally;
  me.time = std::max(me.time, msg.arrival);
  return true;
}

}  // namespace detail

int Comm::rank() const noexcept { return state_->myrank; }

int Comm::size() const noexcept {
  return static_cast<int>(state_->members.size());
}

int Comm::world_rank() const noexcept {
  return state_->members[static_cast<std::size_t>(state_->myrank)];
}

const Machine& Comm::machine() const noexcept { return state_->world->machine; }

void Comm::charge_local_flops() const {
  detail::charge_flops_now(*state_);
}

CostCounters Comm::counters() const {
  charge_local_flops();
  return state_->world->ranks[static_cast<std::size_t>(world_rank())].tally;
}

void Comm::send(int dest, int tag, std::span<const double> data) const {
  ensure<CommError>(dest >= 0 && dest < size(), "send: bad dest rank ", dest);
  detail::send_now(*state_, dest, tag, data);
}

void Comm::recv(int src, int tag, std::span<double> data) const {
  ensure<CommError>(src >= 0 && src < size(), "recv: bad src rank ", src);
  // The shared wait loop drives this rank's in-flight requests while
  // blocked: the message we need may be gated on our part of another
  // collective's schedule.
  detail::wait_until(
      *state_->world, world_rank(),
      [&] { return detail::try_recv_now(*state_, src, tag, data); }, "recv");
}

void Comm::sendrecv_swap(int partner, int tag, std::span<double> data) const {
  Request r = start_sendrecv_swap(partner, tag, data);
  r.wait();
}

void Comm::progress() const {
  detail::progress_all(*state_->world, world_rank());
}

namespace {

std::atomic<bool>& overlap_flag() {
  static std::atomic<bool> flag = [] {
    const char* s = std::getenv("CACQR_OVERLAP");
    if (s == nullptr || *s == '\0') return false;
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    return end != s && *end == '\0' && v != 0;
  }();
  return flag;
}

}  // namespace

bool overlap_enabled() noexcept {
  return overlap_flag().load(std::memory_order_relaxed);
}

void set_overlap_enabled(bool on) noexcept {
  overlap_flag().store(on, std::memory_order_relaxed);
}

Comm Comm::split(int color, int key) const {
  // Gather (color, key) from every member, then form groups locally.
  // Encoding ints as doubles is exact (|values| << 2^53).
  const int p = size();
  std::vector<double> mine = {static_cast<double>(color),
                              static_cast<double>(key)};
  std::vector<double> all(static_cast<std::size_t>(2 * p));
  allgather(mine, all);

  // Members of my color, ordered by (key, parent rank).
  struct Entry {
    int key;
    int parent_rank;
  };
  std::vector<Entry> group;
  for (int r = 0; r < p; ++r) {
    const int c = static_cast<int>(all[static_cast<std::size_t>(2 * r)]);
    const int k = static_cast<int>(all[static_cast<std::size_t>(2 * r + 1)]);
    if (c == color) group.push_back({k, r});
  }
  std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.parent_rank < b.parent_rank;
  });

  auto child = std::make_shared<CommState>();
  child->world = state_->world;
  child->ctx = detail::mix64(state_->ctx ^ detail::mix64(state_->split_seq) ^
                             detail::mix64(static_cast<u64>(color) + 0x51ed));
  ++state_->split_seq;
  child->members.reserve(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    const int parent_rank = group[i].parent_rank;
    child->members.push_back(
        state_->members[static_cast<std::size_t>(parent_rank)]);
    if (parent_rank == rank()) child->myrank = static_cast<int>(i);
  }
  ensure<CommError>(child->myrank >= 0, "split: caller missing from group");
  return Comm(std::move(child));
}

std::vector<CostCounters> Runtime::run(
    int nranks, const std::function<void(Comm&)>& body, Machine machine,
    int threads_per_rank) {
  ensure<CommError>(nranks >= 1, "Runtime::run: need at least one rank");
  // Per-rank kernel worker budget: explicit, or the caller's budget spread
  // evenly so P ranks x T workers never oversubscribe what the caller had.
  const int rank_budget =
      threads_per_rank > 0
          ? threads_per_rank
          : std::max(1, lin::parallel::thread_budget() / nranks);
  World world;
  world.nranks = nranks;
  world.machine = machine;
  world.ranks.resize(static_cast<std::size_t>(nranks));
  world.mailboxes.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    world.mailboxes.push_back(std::make_unique<detail::Mailbox>());
  }

  std::mutex error_mu;
  std::exception_ptr first_error;

  auto rank_main = [&](int r) {
    lin::flops::reset();
    lin::parallel::set_thread_budget(rank_budget);
    auto state = std::make_shared<CommState>();
    state->world = &world;
    state->ctx = 1;
    state->members.resize(static_cast<std::size_t>(nranks));
    for (int i = 0; i < nranks; ++i) state->members[static_cast<std::size_t>(i)] = i;
    state->myrank = r;
    Comm comm(std::move(state));
    try {
      body(comm);
      comm.charge_local_flops();
    } catch (const AbortError&) {
      // Secondary failure caused by another rank's abort: ignore.
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      world.abort_all();
    }
  };

  if (nranks == 1) {
    // Run inline: keeps single-rank uses debuggable.  The budget override
    // lands on the caller's thread, so restore it afterwards.
    const int caller_budget = lin::parallel::thread_budget();
    rank_main(0);
    lin::parallel::set_thread_budget(caller_budget);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) threads.emplace_back(rank_main, r);
    for (auto& t : threads) t.join();
  }

  if (first_error) std::rethrow_exception(first_error);
  std::vector<CostCounters> out;
  out.reserve(static_cast<std::size_t>(nranks));
  for (const auto& rs : world.ranks) out.push_back(rs.tally);
  return out;
}

}  // namespace cacqr::rt
