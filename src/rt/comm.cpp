#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "cacqr/lin/flops.hpp"
#include "cacqr/lin/parallel.hpp"
#include "cacqr/obs/metrics.hpp"
#include "cacqr/obs/trace.hpp"
#include "transport.hpp"

namespace cacqr::rt {

using detail::CommState;
using detail::Message;
using detail::World;

namespace detail {

u64 mix64(u64 x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

World::World() = default;
World::~World() = default;

void World::abort_all() noexcept {
  if (transport) transport->abort();
}

bool World::aborted() const noexcept {
  return transport && transport->aborted();
}

namespace {

/// Drains the calling thread's pending kernel flops into the rank tally.
/// Idempotent between kernel calls (the thread-local counter is taken),
/// so retry loops may call it repeatedly without double charging.
void charge_flops_now(CommState& s) {
  const i64 f = lin::flops::take();
  if (f == 0) return;
  auto& rank_state =
      s.world->ranks[static_cast<std::size_t>(world_rank_of(s))];
  rank_state.tally.flops += f;
  rank_state.tally.time += static_cast<double>(f) * s.world->machine.gamma;
}

std::atomic<FailureProbe>& failure_probe_slot() noexcept {
  static std::atomic<FailureProbe> slot{nullptr};
  return slot;
}

}  // namespace

FailureProbe child_failure_probe() noexcept {
  return failure_probe_slot().load(std::memory_order_relaxed);
}

void send_now(CommState& s, int dest, int tag, std::span<const double> data) {
  charge_flops_now(s);
  World& w = *s.world;
  const int me_world = world_rank_of(s);
  auto& me = w.ranks[static_cast<std::size_t>(me_world)].tally;
  me.msgs += 1;
  me.words += static_cast<i64>(data.size());
  me.time += w.machine.alpha +
             static_cast<double>(data.size()) * w.machine.beta;

  Message msg;
  msg.ctx = s.ctx;
  msg.src_world = me_world;
  msg.tag = tag;
  msg.arrival = me.time;
  msg.payload.assign(data.begin(), data.end());

  const int dest_world = s.members[static_cast<std::size_t>(dest)];
  if (obs::trace_on()) {
    obs::instant(w.transport->name(), "post",
                 {{"dst", static_cast<double>(dest_world)},
                  {"words", static_cast<double>(data.size())}});
  }
  w.transport->post(me_world, dest_world, std::move(msg));
}

bool try_recv_now(CommState& s, int src, int tag, std::span<double> data) {
  charge_flops_now(s);
  World& w = *s.world;
  const int src_world = s.members[static_cast<std::size_t>(src)];
  const int me_world = world_rank_of(s);

  Message msg;
  if (!w.transport->match(me_world, s.ctx, src_world, tag, msg)) return false;
  ensure<CommError>(msg.payload.size() == data.size(),
                    "recv: size mismatch: expected ", data.size(), " got ",
                    msg.payload.size());
  std::copy(msg.payload.begin(), msg.payload.end(), data.begin());
  if (obs::trace_on()) {
    obs::instant(w.transport->name(), "match",
                 {{"src", static_cast<double>(src_world)},
                  {"words", static_cast<double>(data.size())}});
  }
  auto& me = w.ranks[static_cast<std::size_t>(me_world)].tally;
  me.time = std::max(me.time, msg.arrival);
  return true;
}

void rank_main(World& world, int rank, int rank_budget,
               const std::function<void(Comm&)>& body) {
  lin::flops::reset();
  lin::parallel::set_thread_budget(rank_budget);
  // Tag this thread (and, per region, its pool workers) with the rank it
  // executes, so trace events land on the rank's process row.  Restored
  // on exit (after the rank span emits): under the modeled backend the
  // thread may later run a different rank.
  struct TraceRankGuard {
    int prev;
    ~TraceRankGuard() { obs::set_trace_rank(prev); }
  } trace_rank_guard{obs::set_trace_rank(rank)};
  obs::SpanScope span("rt", "rank");
  span.arg("rank", rank);
  auto state = std::make_shared<CommState>();
  state->world = &world;
  state->ctx = 1;
  state->members.resize(static_cast<std::size_t>(world.nranks));
  for (int i = 0; i < world.nranks; ++i) {
    state->members[static_cast<std::size_t>(i)] = i;
  }
  state->myrank = rank;
  Comm comm(std::move(state));
  body(comm);
  comm.charge_local_flops();
  // Per-backend traffic totals for the metrics registry: one update per
  // rank per run (never per message -- the hot path stays untouched).
  const auto& tally =
      world.ranks[static_cast<std::size_t>(rank)].tally;
  const std::string backend = world.transport->name();
  auto& reg = obs::Registry::global();
  reg.counter("rt." + backend + ".msgs")
      .add(static_cast<u64>(tally.msgs));
  reg.counter("rt." + backend + ".words")
      .add(static_cast<u64>(tally.words));
}

}  // namespace detail

int Comm::rank() const noexcept { return state_->myrank; }

int Comm::size() const noexcept {
  return static_cast<int>(state_->members.size());
}

int Comm::world_rank() const noexcept {
  return state_->members[static_cast<std::size_t>(state_->myrank)];
}

const Machine& Comm::machine() const noexcept { return state_->world->machine; }

void Comm::charge_local_flops() const {
  detail::charge_flops_now(*state_);
}

CostCounters Comm::counters() const {
  charge_local_flops();
  return state_->world->ranks[static_cast<std::size_t>(world_rank())].tally;
}

void Comm::publish(std::span<const double> data) const {
  auto& published =
      state_->world->ranks[static_cast<std::size_t>(world_rank())].published;
  published.insert(published.end(), data.begin(), data.end());
}

void Comm::send(int dest, int tag, std::span<const double> data) const {
  ensure<CommError>(dest >= 0 && dest < size(), "send: bad dest rank ", dest);
  detail::send_now(*state_, dest, tag, data);
}

void Comm::recv(int src, int tag, std::span<double> data) const {
  ensure<CommError>(src >= 0 && src < size(), "recv: bad src rank ", src);
  // The shared wait loop drives this rank's in-flight requests while
  // blocked: the message we need may be gated on our part of another
  // collective's schedule.
  detail::wait_until(
      *state_->world, world_rank(),
      [&] { return detail::try_recv_now(*state_, src, tag, data); }, "recv");
}

void Comm::sendrecv_swap(int partner, int tag, std::span<double> data) const {
  Request r = start_sendrecv_swap(partner, tag, data);
  r.wait();
}

void Comm::progress() const {
  detail::progress_all(*state_->world, world_rank());
}

namespace {

std::atomic<bool>& overlap_flag() {
  static std::atomic<bool> flag = [] {
    const char* s = std::getenv("CACQR_OVERLAP");
    if (s == nullptr || *s == '\0') return false;
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    return end != s && *end == '\0' && v != 0;
  }();
  return flag;
}

std::atomic<TransportKind>& transport_flag() {
  static std::atomic<TransportKind> flag = [] {
    const char* s = std::getenv("CACQR_TRANSPORT");
    if (s == nullptr || *s == '\0') return TransportKind::modeled;
    if (std::strcmp(s, "modeled") == 0) return TransportKind::modeled;
    if (std::strcmp(s, "shm") == 0) return TransportKind::shm;
    if (std::strcmp(s, "mpi") == 0) return TransportKind::mpi;
    throw CommError(std::string("CACQR_TRANSPORT: unknown backend \"") + s +
                    "\" (valid: modeled, shm, mpi)");
  }();
  return flag;
}

}  // namespace

bool overlap_enabled() noexcept {
  return overlap_flag().load(std::memory_order_relaxed);
}

void set_overlap_enabled(bool on) noexcept {
  overlap_flag().store(on, std::memory_order_relaxed);
}

const char* transport_name(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::modeled: return "modeled";
    case TransportKind::shm: return "shm";
    case TransportKind::mpi: return "mpi";
  }
  return "?";
}

bool transport_available(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::modeled: return true;
    case TransportKind::shm: return true;  // fork + anonymous shared mmap
    case TransportKind::mpi:
#ifdef CACQR_HAVE_MPI
      return true;
#else
      return false;
#endif
  }
  return false;
}

TransportKind default_transport() {
  return transport_flag().load(std::memory_order_relaxed);
}

void set_default_transport(TransportKind kind) noexcept {
  transport_flag().store(kind, std::memory_order_relaxed);
}

void set_child_failure_probe(int (*probe)()) noexcept {
  detail::failure_probe_slot().store(probe, std::memory_order_relaxed);
}

Comm Comm::split(int color, int key) const {
  // Gather (color, key) from every member, then form groups locally.
  // Encoding ints as doubles is exact (|values| << 2^53).
  const int p = size();
  std::vector<double> mine = {static_cast<double>(color),
                              static_cast<double>(key)};
  std::vector<double> all(static_cast<std::size_t>(2 * p));
  allgather(mine, all);

  // Members of my color, ordered by (key, parent rank).
  struct Entry {
    int key;
    int parent_rank;
  };
  std::vector<Entry> group;
  for (int r = 0; r < p; ++r) {
    const int c = static_cast<int>(all[static_cast<std::size_t>(2 * r)]);
    const int k = static_cast<int>(all[static_cast<std::size_t>(2 * r + 1)]);
    if (c == color) group.push_back({k, r});
  }
  std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.parent_rank < b.parent_rank;
  });

  auto child = std::make_shared<CommState>();
  child->world = state_->world;
  child->ctx = detail::mix64(state_->ctx ^ detail::mix64(state_->split_seq) ^
                             detail::mix64(static_cast<u64>(color) + 0x51ed));
  ++state_->split_seq;
  child->members.reserve(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    const int parent_rank = group[i].parent_rank;
    child->members.push_back(
        state_->members[static_cast<std::size_t>(parent_rank)]);
    if (parent_rank == rank()) child->myrank = static_cast<int>(i);
  }
  ensure<CommError>(child->myrank >= 0, "split: caller missing from group");
  return Comm(std::move(child));
}

RunOutput Runtime::run_collect(int nranks,
                               const std::function<void(Comm&)>& body,
                               Machine machine, int threads_per_rank,
                               std::optional<TransportKind> transport) {
  ensure<CommError>(nranks >= 1, "Runtime::run: need at least one rank");
  // Per-rank kernel worker budget: explicit, or the caller's budget spread
  // evenly so P ranks x T workers never oversubscribe what the caller had.
  const int rank_budget =
      threads_per_rank > 0
          ? threads_per_rank
          : std::max(1, lin::parallel::thread_budget() / nranks);
  const TransportKind kind = transport.value_or(default_transport());
  switch (kind) {
    case TransportKind::modeled:
      return detail::run_modeled(nranks, body, machine, rank_budget);
    case TransportKind::shm:
      return detail::run_shm(nranks, body, machine, rank_budget);
    case TransportKind::mpi:
#ifdef CACQR_HAVE_MPI
      return detail::run_mpi(nranks, body, machine, rank_budget);
#else
      throw CommError(
          "Runtime::run: transport \"mpi\" not compiled in (build with "
          "-DCACQR_WITH_MPI=ON and an MPI installation)");
#endif
  }
  throw CommError("Runtime::run: unknown transport kind");
}

std::vector<CostCounters> Runtime::run(
    int nranks, const std::function<void(Comm&)>& body, Machine machine,
    int threads_per_rank, std::optional<TransportKind> transport) {
  return run_collect(nranks, body, machine, threads_per_rank, transport)
      .counters;
}

}  // namespace cacqr::rt
