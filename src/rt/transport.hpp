#pragma once
/// \file transport.hpp
/// \brief The pluggable point-to-point transport behind the rt runtime.
///
/// Everything above this interface -- the collective schedules, the
/// request engine, the per-rank cost tallies and the modeled clock -- is
/// transport-agnostic: a collective is a step list whose Send/Recv steps
/// call post()/match(), and the blocking loops park on wait_arrivals().
/// A backend only decides HOW a stamped Message travels between ranks:
///
///   * modeled  -- ranks are threads of one process; delivery is a locked
///                 in-process mailbox per rank (transport_modeled.cpp).
///                 The historical behavior, bit-identical, and the
///                 default.
///   * shm      -- ranks are fork()ed processes; delivery is a lock-free
///                 SPSC ring buffer in shared memory per (src, dst) pair
///                 (transport_shm.cpp).  Completion is real: a Recv step
///                 finishes when the bytes actually crossed the ring.
///   * mpi      -- ranks are MPI processes under mpirun; delivery is
///                 MPI_Isend/Iprobe with the (ctx, tag) header riding in
///                 the payload (transport_mpi.cpp, compiled only when
///                 find_package(MPI) succeeds).
///
/// Delivery contract every backend must meet (DESIGN.md section 10):
/// messages between one (src, dst) pair are FIFO per (ctx, tag) channel;
/// match() returns the first pending message for exactly (ctx, src, tag);
/// arrivals() is monotonic per rank and changes whenever a new message
/// becomes matchable; wait_arrivals() returns (possibly spuriously) once
/// arrivals differ from the caller's snapshot or the run aborts; abort()
/// is sticky, visible to every rank, and wakes all parked waiters.
/// Because the sender charges its tally and stamps `arrival` BEFORE
/// posting, the per-rank msgs/words/flops counters and the modeled clock
/// are byte-identical across backends for any deterministic schedule --
/// the cross-backend conformance suite asserts exactly that.

#include <span>

#include "internal.hpp"

namespace cacqr::rt::detail {

/// Abstract point-to-point backend.  All methods are called by rank
/// threads/processes of the run; `me_world` is always the caller's own
/// world rank (a rank only ever matches or waits on its own mailbox).
struct Transport {
  virtual ~Transport() = default;

  /// Backend name for error messages ("modeled", "shm", "mpi").
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Posts a stamped message from `src_world` (the caller) to
  /// `dst_world`.  May block for backpressure (a full ring), but must
  /// keep draining the caller's own incoming traffic meanwhile and must
  /// throw AbortError once the run aborts -- never deadlock.
  virtual void post(int src_world, int dst_world, Message&& msg) = 0;

  /// Pops the first pending message for `me_world` matching exactly
  /// (ctx, src_world, tag); FIFO per channel.  Never blocks.
  virtual bool match(int me_world, u64 ctx, int src_world, int tag,
                     Message& out) = 0;

  /// Monotonic count of messages that have become matchable for
  /// `me_world` (backends that poll drain their wire here).
  virtual u64 arrivals(int me_world) = 0;

  /// Blocks until arrivals(me_world) != seen or the run aborts; may also
  /// return spuriously.  The caller re-checks its predicate in a loop.
  virtual void wait_arrivals(int me_world, u64 seen) = 0;

  /// Sticky run-wide abort flag: set by any rank, visible to all, wakes
  /// every parked wait_arrivals().
  virtual void abort() noexcept = 0;
  [[nodiscard]] virtual bool aborted() const noexcept = 0;
};

// ------------------------------------------------------------ launchers
// One per backend: each runs `body` on nranks ranks over its transport
// and returns the per-rank tallies plus per-rank published result blobs
// (Comm::publish).  Declared here, dispatched by Runtime::run.

RunOutput run_modeled(int nranks, const std::function<void(Comm&)>& body,
                      Machine machine, int threads_per_rank);

RunOutput run_shm(int nranks, const std::function<void(Comm&)>& body,
                  Machine machine, int threads_per_rank);

#ifdef CACQR_HAVE_MPI
RunOutput run_mpi(int nranks, const std::function<void(Comm&)>& body,
                  Machine machine, int threads_per_rank);
#endif

/// Shared per-rank body wrapper used by every launcher: resets the
/// thread-local flop counter, applies the worker budget, builds the
/// world communicator for `rank`, runs the body, and drains trailing
/// kernel flops.  Exceptions propagate to the launcher-specific handler.
void rank_main(World& world, int rank, int rank_budget,
               const std::function<void(Comm&)>& body);

}  // namespace cacqr::rt::detail
