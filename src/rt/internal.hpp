#pragma once
/// \file internal.hpp
/// \brief Shared internals of the rt module (world state, mailboxes).

#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "cacqr/rt/comm.hpp"

namespace cacqr::rt::detail {

/// One in-flight message.  `arrival` is the sender's modeled clock after
/// charging alpha + n*beta: the earliest time the receiver can have it.
struct Message {
  u64 ctx = 0;
  int src_world = -1;
  int tag = 0;
  double arrival = 0.0;
  std::vector<double> payload;
};

/// Per-destination-rank mailbox.
struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> queue;
};

/// Per-rank mutable state, touched only by the owning rank thread.
struct RankState {
  CostCounters tally;
};

/// Whole-run shared state.
struct World {
  int nranks = 0;
  Machine machine;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::vector<RankState> ranks;
  std::atomic<bool> aborted{false};

  /// Wakes every blocked receiver so it can observe `aborted`.
  void abort_all();
};

/// Per-rank view of one communicator.  Copies of a Comm share this state,
/// so the collective-operation sequence number stays consistent.
struct CommState {
  World* world = nullptr;
  u64 ctx = 0;            ///< communicator identity, equal on all members
  std::vector<int> members;  ///< world ranks, ordered by comm rank
  int myrank = -1;           ///< my rank within `members`
  u64 op_seq = 0;  ///< per-comm collective sequence (tag disambiguation)
  u64 split_seq = 0;  ///< per-comm split counter (child identity derivation)
};

/// 64-bit mix for communicator identity derivation.
[[nodiscard]] u64 mix64(u64 x) noexcept;

}  // namespace cacqr::rt::detail
