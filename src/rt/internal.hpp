#pragma once
/// \file internal.hpp
/// \brief Shared internals of the rt module (world state, the transport
///        seam, and the request engine behind the nonblocking
///        collectives).

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "cacqr/rt/comm.hpp"

namespace cacqr::rt::detail {

/// One in-flight message.  `arrival` is the sender's modeled clock after
/// charging alpha + n*beta: the earliest time the receiver can have it
/// (real backends carry the stamp on the wire, so the modeled clock stays
/// backend-independent).
struct Message {
  u64 ctx = 0;
  int src_world = -1;
  int tag = 0;
  double arrival = 0.0;
  std::vector<double> payload;
};

/// A rank's pending-message queue: messages that crossed the transport
/// but have not been matched by a Recv yet.  Only the owning rank touches
/// it (the modeled backend wraps it in a lock; process backends need
/// none).
struct PendingQueue {
  std::deque<Message> queue;
  u64 arrivals = 0;  ///< messages ever enqueued; wait loops sleep on changes

  /// Pops the first entry matching (ctx, src_world, tag): FIFO per
  /// channel.
  bool match(u64 ctx, int src_world, int tag, Message& out) {
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (it->ctx == ctx && it->src_world == src_world && it->tag == tag) {
        out = std::move(*it);
        queue.erase(it);
        return true;
      }
    }
    return false;
  }
};

struct RequestState;
struct Transport;

/// Per-rank mutable state, touched only by the owning rank thread.
struct RankState {
  CostCounters tally;
  /// In-flight requests of this rank, in start order.  Progress and the
  /// blocking wait loops drive every entry, so a rank blocked on one
  /// collective still completes its part of the others (no deadlock from
  /// rank-dependent wait order).
  std::vector<RequestState*> active;
  /// Result blob accumulated by Comm::publish (returned to the launcher's
  /// caller by Runtime::run_collect, crossing the process boundary under
  /// multi-process backends).
  std::vector<double> published;
};

/// Whole-run shared state.  Under the modeled backend one World is shared
/// by all rank threads; under process backends each rank process holds
/// its own copy and only ranks[world_rank] is populated.
struct World {
  World();
  ~World();
  int nranks = 0;
  Machine machine;
  std::unique_ptr<Transport> transport;
  std::vector<RankState> ranks;

  /// Sticky run-wide abort: wakes every blocked receiver so it can
  /// unwind with AbortError.
  void abort_all() noexcept;
  [[nodiscard]] bool aborted() const noexcept;
};

/// Per-rank view of one communicator.  Copies of a Comm share this state,
/// so the collective-operation sequence number stays consistent.
struct CommState {
  World* world = nullptr;
  u64 ctx = 0;            ///< communicator identity, equal on all members
  std::vector<int> members;  ///< world ranks, ordered by comm rank
  int myrank = -1;           ///< my rank within `members`
  u64 op_seq = 0;  ///< per-comm collective sequence (tag disambiguation)
  u64 split_seq = 0;  ///< per-comm split counter (child identity derivation)
};

/// 64-bit mix for communicator identity derivation.
[[nodiscard]] u64 mix64(u64 x) noexcept;

/// Test-harness hook installed via rt::set_child_failure_probe; process
/// backends sample it around the rank body so in-child assertion failures
/// propagate to the parent.  Null when unset.
using FailureProbe = int (*)();
[[nodiscard]] FailureProbe child_failure_probe() noexcept;

/// World rank of the caller of a CommState.
[[nodiscard]] inline int world_rank_of(const CommState& s) noexcept {
  return s.members[static_cast<std::size_t>(s.myrank)];
}

/// Reserves a fresh internal tag for one collective invocation.
int next_internal_tag(CommState& s);

// ------------------------------------------------------- p2p primitives
// (comm.cpp)  Both charge exactly like the blocking calls: send adds
// alpha/beta/clock at execution, a successful try-receive jumps the clock
// to the arrival stamp.  Both drain pending kernel flops first.

/// Eager buffered send: never blocks.
void send_now(CommState& s, int dest, int tag, std::span<const double> data);

/// Nonblocking receive: delivers and charges the first queued message
/// matching (ctx, src, tag) and returns true, or returns false untouched.
bool try_recv_now(CommState& s, int src, int tag, std::span<double> data);

// ------------------------------------------------------- request engine

/// One step of a collective schedule.  Steps execute strictly in order;
/// Send and Local steps never block, a Recv step parks the request until
/// its message arrives.
struct Step {
  enum class Kind { Send, Recv, Local };
  Kind kind = Kind::Local;
  int peer = -1;          ///< comm rank: Send destination / Recv source
  double* ptr = nullptr;  ///< payload: send source / receive destination
  i64 len = 0;
  /// Local step body; on a Recv step, runs right after delivery (the
  /// reduction accumulate of allreduce).  Local work charges nothing,
  /// exactly as in the blocking schedules.
  std::function<void()> local;
};

/// An in-flight collective: its schedule plus owned scratch.  The steps
/// hold raw pointers into `tmp`/`rot` and the caller's buffer, so neither
/// may be resized after the schedule is built, and the caller's buffer
/// must stay alive until completion.
struct RequestState {
  std::shared_ptr<CommState> comm;
  int tag = 0;
  std::vector<double> tmp;  ///< reduction / fold scratch (allreduce)
  std::vector<double> rot;  ///< Bruck rotated staging
  std::vector<Step> steps;
  std::size_t next = 0;  ///< first unexecuted step
  bool registered = false;

  // Span-tracing stamps (obs/trace.hpp), set by trace_stamp_request at
  // start_* when tracing is on.  The wall start plus the msgs/words/clock
  // snapshot let the completion event carry the collective's charged
  // traffic and modeled-clock window next to its wall time.  Null name =
  // untraced (tracing off, or a trivial P==1/empty collective).
  const char* trace_name = nullptr;
  u64 trace_t0 = 0;
  i64 trace_msgs0 = 0;
  i64 trace_words0 = 0;
  double trace_clock0 = 0.0;

  [[nodiscard]] bool done() const noexcept { return next >= steps.size(); }
};

/// Stamps `r` for span tracing (no-op when tracing is off).  Call after
/// the schedule is built and before start_request.
void trace_stamp_request(RequestState& r, const char* name);

// (request.cpp)  All of these run on the owning rank thread only.

/// Registers `r` with its rank and drives it as far as possible without
/// blocking (eager sends start the collective immediately).
void start_request(RequestState& r);

/// Drives `r` as far as possible without blocking; unregisters and
/// returns true when it completes.
bool advance_request(RequestState& r);

/// Drives every in-flight request of `world_rank` without blocking.
void progress_all(World& w, int world_rank);

/// Blocks until `r` completes, driving all of the rank's in-flight
/// requests meanwhile and parking on the transport between arrivals.
void wait_request(RequestState& r);

/// The shared blocking loop under wait_request and Comm::recv: repeats
/// {snapshot transport arrivals; drive every in-flight request; re-check
/// `ready`; park on the transport until a new arrival} until `ready()`
/// returns true.  `ready` may have side effects (Comm::recv's consumes
/// its message); it is called at most twice per iteration, before and
/// after the progress sweep.  Throws AbortError("<who>: run aborted by
/// another rank") once the world aborts.
void wait_until(World& w, int world_rank, const std::function<bool()>& ready,
                const char* who);

/// Removes `r` from its rank's active list (no-op if not registered).
void unregister_request(RequestState& r);

// ------------------------------------------- collective schedule builders
// (collectives.cpp)  Each appends the caller's exact blocking schedule --
// same peers, same payload sizes, same order -- as steps on `r`.

void build_bcast(RequestState& r, std::span<double> data, int root);
void build_allreduce(RequestState& r, std::span<double> data);
/// Allreduce of an fp32 payload riding in whole 8-byte words (two floats
/// per word, lin::MatrixF::wire()).  Same schedule, peers, and word
/// counts as build_allreduce on `words`; only the combine differs (it
/// adds float-wise).  chunk partitioning is word-granular, so float
/// pairs never split across chunks.
void build_allreduce_f32(RequestState& r, std::span<double> words);
void build_allgather(RequestState& r, std::span<const double> mine,
                     std::span<double> all);
void build_sendrecv_swap(RequestState& r, int partner,
                         std::span<double> data);

}  // namespace cacqr::rt::detail
