/// \file collectives.cpp
/// \brief Butterfly/binomial collective algorithms over point-to-point.
///
/// Algorithm choices are driven by the paper's collective cost table
/// (Section II-B): Bcast/Reduce/Allreduce must cost 2 ceil(lg P) alpha +
/// 2n beta and Allgather ceil(lg P) alpha + n beta *as actually measured
/// by the per-rank counters*, because the model-validation benches compare
/// measured counters against those formulas.  Hence:
///   - bcast      = binomial scatter + Bruck allgather (van de Geijn)
///   - allreduce  = recursive-halving reduce-scatter + Bruck allgather
///                  (Rabenseifner), with pre/post folding for non-pow2 P
///   - reduce     = allreduce (the paper charges Reduce == Allreduce)
///   - allgather  = Bruck (works for any P, ragged chunks)
///   - barrier    = dissemination

#include <algorithm>
#include <functional>
#include <numeric>

#include "internal.hpp"

namespace cacqr::rt {

namespace {

/// Balanced partition of n words into p chunks (first n%p chunks 1 larger).
std::vector<i64> chunk_offsets(i64 n, int p) {
  std::vector<i64> off(static_cast<std::size_t>(p) + 1, 0);
  const i64 base = n / p;
  const i64 rem = n % p;
  for (int i = 0; i < p; ++i) {
    off[static_cast<std::size_t>(i) + 1] =
        off[static_cast<std::size_t>(i)] + base + (i < rem ? 1 : 0);
  }
  return off;
}

i64 chunk_size(const std::vector<i64>& off, int i) {
  return off[static_cast<std::size_t>(i) + 1] - off[static_cast<std::size_t>(i)];
}

}  // namespace

namespace detail {

/// Reserves a fresh internal tag for one collective invocation.  Distinct
/// invocations on the same communicator get distinct tags; within one
/// invocation, FIFO ordering per (src, tag) channel keeps stages paired.
int next_internal_tag(CommState& s) {
  return -1 - static_cast<int>(s.op_seq++ & 0x3fffffffULL);
}

/// Bruck allgather over `nparts` participants that are a subset of the
/// communicator.  Participant i is comm rank part_rank(i); the caller is
/// participant `my_part`.  On entry data[off[my_part]..off[my_part+1]) is
/// the caller's contribution; on return data holds all chunks.
void bruck_allgather(const Comm& comm, std::span<double> data,
                     const std::vector<i64>& off, int nparts, int my_part,
                     const std::function<int(int)>& part_rank, int tag) {
  if (nparts <= 1) return;
  // Rotated staging buffer: position q holds chunk (my_part + q) % nparts.
  std::vector<i64> pos(static_cast<std::size_t>(nparts) + 1, 0);
  for (int q = 0; q < nparts; ++q) {
    pos[static_cast<std::size_t>(q) + 1] =
        pos[static_cast<std::size_t>(q)] +
        chunk_size(off, (my_part + q) % nparts);
  }
  std::vector<double> temp(static_cast<std::size_t>(pos.back()));
  std::copy_n(data.data() + off[static_cast<std::size_t>(my_part)],
              chunk_size(off, my_part), temp.data());

  for (i64 s = 1; s < nparts; s <<= 1) {
    const int blocks = static_cast<int>(std::min<i64>(s, nparts - s));
    const int dst_part = static_cast<int>((my_part - s % nparts + nparts) % nparts);
    const int src_part = static_cast<int>((my_part + s) % nparts);
    const i64 send_words = pos[static_cast<std::size_t>(blocks)];
    const i64 recv_at = pos[static_cast<std::size_t>(s)];
    const i64 recv_words =
        pos[static_cast<std::size_t>(s) + blocks] - recv_at;
    comm.send(part_rank(dst_part), tag, {temp.data(), static_cast<std::size_t>(send_words)});
    comm.recv(part_rank(src_part), tag,
              {temp.data() + recv_at, static_cast<std::size_t>(recv_words)});
  }

  // Un-rotate back into chunk order.
  for (int q = 0; q < nparts; ++q) {
    const int g = (my_part + q) % nparts;
    std::copy_n(temp.data() + pos[static_cast<std::size_t>(q)], chunk_size(off, g),
                data.data() + off[static_cast<std::size_t>(g)]);
  }
}

}  // namespace detail

void Comm::barrier() const {
  const int p = size();
  if (p == 1) return;
  const int me = rank();
  const int tag = detail::next_internal_tag(*state_);
  for (int s = 1; s < p; s <<= 1) {
    send((me + s) % p, tag, {});
    recv((me - s % p + p) % p, tag, {});
  }
}

void Comm::bcast(std::span<double> data, int root) const {
  const int p = size();
  ensure<CommError>(root >= 0 && root < p, "bcast: bad root ", root);
  if (p == 1 || data.empty()) return;
  const int me = rank();
  const int tag = detail::next_internal_tag(*state_);
  const auto off = chunk_offsets(static_cast<i64>(data.size()), p);
  // Work in "virtual rank" space where the root is vrank 0.
  const int v = (me - root + p) % p;
  auto vrank_to_rank = [&](int vr) { return (vr + root) % p; };

  // Binomial scatter: the vrank-range root forwards the far half's words.
  int lo = 0, hi = p;
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo + 1) / 2;
    const i64 o0 = off[static_cast<std::size_t>(mid)];
    const i64 o1 = off[static_cast<std::size_t>(hi)];
    if (v == lo) {
      send(vrank_to_rank(mid), tag,
           {data.data() + o0, static_cast<std::size_t>(o1 - o0)});
      hi = mid;
    } else if (v == mid) {
      recv(vrank_to_rank(lo), tag,
           {data.data() + o0, static_cast<std::size_t>(o1 - o0)});
      lo = mid;
    } else if (v < mid) {
      hi = mid;
    } else {
      lo = mid;
    }
  }

  // Allgather the scattered chunks (chunk index == vrank).
  detail::bruck_allgather(*this, data, off, p, v, vrank_to_rank, tag);
}

void Comm::allreduce_sum(std::span<double> data) const {
  const int p = size();
  if (p == 1 || data.empty()) return;
  const int me = rank();
  const int tag = detail::next_internal_tag(*state_);
  const int p2 = 1 << ilog2(p);  // largest power of two <= p
  const int extras = p - p2;

  std::vector<double> temp(data.size());

  // Fold: ranks [p2, p) ship their vectors to partners [0, extras) and wait
  // for the final result.
  if (me >= p2) {
    send(me - p2, tag, data);
    recv(me - p2, tag, data);
    return;
  }
  if (me < extras) {
    recv(me + p2, tag, temp);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] += temp[i];
  }

  // Recursive-halving reduce-scatter among the pow2 set [0, p2).
  const auto off = chunk_offsets(static_cast<i64>(data.size()), p2);
  int lo = 0, hi = p2;
  while (hi - lo > 1) {
    const int half = (hi - lo) / 2;
    const int mid = lo + half;
    const bool lower = me < mid;
    const int partner = lower ? me + half : me - half;
    // Send the half I am not keeping; receive my half and accumulate.
    const int s0 = lower ? mid : lo;
    const int s1 = lower ? hi : mid;
    const int k0 = lower ? lo : mid;
    const int k1 = lower ? mid : hi;
    const i64 so = off[static_cast<std::size_t>(s0)];
    const i64 sn = off[static_cast<std::size_t>(s1)] - so;
    const i64 ko = off[static_cast<std::size_t>(k0)];
    const i64 kn = off[static_cast<std::size_t>(k1)] - ko;
    send(partner, tag, {data.data() + so, static_cast<std::size_t>(sn)});
    recv(partner, tag, {temp.data(), static_cast<std::size_t>(kn)});
    for (i64 i = 0; i < kn; ++i) data[ko + i] += temp[static_cast<std::size_t>(i)];
    if (lower) {
      hi = mid;
    } else {
      lo = mid;
    }
  }

  // Allgather the reduced chunks (chunk index == rank within [0, p2)).
  detail::bruck_allgather(*this, data, off, p2, me,
                          [](int r) { return r; }, tag);

  // Unfold: return the finished vector to the folded partner.
  if (me < extras) send(me + p2, tag, data);
}

void Comm::reduce_sum(std::span<double> data, int root) const {
  ensure<CommError>(root >= 0 && root < size(), "reduce_sum: bad root ", root);
  // The paper's cost table charges Reduce identically to Allreduce
  // (reduce-scatter + gather); delivering the result everywhere costs the
  // same in this model and keeps one code path.
  allreduce_sum(data);
}

void Comm::allgather(std::span<const double> mine, std::span<double> all) const {
  const int p = size();
  ensure<CommError>(all.size() == mine.size() * static_cast<std::size_t>(p),
                    "allgather: output must be size * input");
  const int me = rank();
  std::copy(mine.begin(), mine.end(),
            all.begin() + static_cast<std::ptrdiff_t>(mine.size()) * me);
  if (p == 1 || mine.empty()) return;
  const int tag = detail::next_internal_tag(*state_);
  const auto off = chunk_offsets(static_cast<i64>(all.size()), p);
  detail::bruck_allgather(*this, all, off, p, me,
                          [](int r) { return r; }, tag);
}

void Comm::sync_clock() const {
  // Jumps every member's clock to the member maximum without perturbing the
  // alpha/beta tallies: snapshot my tally, allgather the pre-exchange clock
  // values (each rank reads only its own tally, so there is no race), then
  // restore my tally and apply the max.
  charge_local_flops();
  detail::World& w = *state_->world;
  auto& my_tally = w.ranks[static_cast<std::size_t>(world_rank())].tally;
  const CostCounters saved = my_tally;

  std::vector<double> mine = {saved.time};
  std::vector<double> all(state_->members.size());
  allgather(mine, all);

  my_tally = saved;
  const double t = *std::max_element(all.begin(), all.end());
  my_tally.time = std::max(saved.time, t);
}

}  // namespace cacqr::rt
