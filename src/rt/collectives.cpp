/// \file collectives.cpp
/// \brief Butterfly/binomial collective schedules over point-to-point.
///
/// Algorithm choices are driven by the paper's collective cost table
/// (Section II-B): Bcast/Reduce/Allreduce must cost 2 ceil(lg P) alpha +
/// 2n beta and Allgather ceil(lg P) alpha + n beta *as actually measured
/// by the per-rank counters*, because the model-validation benches compare
/// measured counters against those formulas.  Hence:
///   - bcast      = binomial scatter + Bruck allgather (van de Geijn)
///   - allreduce  = recursive-halving reduce-scatter + Bruck allgather
///                  (Rabenseifner), with pre/post folding for non-pow2 P
///   - reduce     = allreduce (the paper charges Reduce == Allreduce)
///   - allgather  = Bruck (works for any P, ragged chunks)
///   - barrier    = dissemination
///
/// Every collective is built as a step list on a RequestState (the
/// builders below append the caller's exact point-to-point sequence);
/// the blocking methods are wait(start_*(...)), so blocking and
/// nonblocking flavors charge identical per-rank msgs/words/flops and
/// modeled clock, step for step.

#include <algorithm>
#include <functional>
#include <numeric>

#include "cacqr/obs/trace.hpp"
#include "internal.hpp"

namespace cacqr::rt {

namespace {

/// Balanced partition of n words into p chunks (first n%p chunks 1 larger).
std::vector<i64> chunk_offsets(i64 n, int p) {
  std::vector<i64> off(static_cast<std::size_t>(p) + 1, 0);
  const i64 base = n / p;
  const i64 rem = n % p;
  for (int i = 0; i < p; ++i) {
    off[static_cast<std::size_t>(i) + 1] =
        off[static_cast<std::size_t>(i)] + base + (i < rem ? 1 : 0);
  }
  return off;
}

i64 chunk_size(const std::vector<i64>& off, int i) {
  return off[static_cast<std::size_t>(i) + 1] - off[static_cast<std::size_t>(i)];
}

}  // namespace

namespace detail {

/// Reserves a fresh internal tag for one collective invocation.  Distinct
/// invocations on the same communicator get distinct tags; within one
/// invocation, FIFO ordering per (src, tag) channel keeps stages paired.
int next_internal_tag(CommState& s) {
  return -1 - static_cast<int>(s.op_seq++ & 0x3fffffffULL);
}

namespace {

/// Appends the Bruck allgather schedule over `nparts` participants that
/// are a subset of the communicator.  Participant i is comm rank
/// part_rank(i); the caller is participant `my_part`.  When the first
/// scheduled step runs, data[off[my_part]..off[my_part+1]) must hold the
/// caller's contribution (for bcast it is produced by the preceding
/// scatter steps, hence the staging copy is a scheduled Local step, not a
/// build-time one); after the last step data holds all chunks.
/// `part_rank` is only evaluated at build time.
void build_bruck_allgather(RequestState& r, double* data,
                           const std::vector<i64>& off, int nparts,
                           int my_part,
                           const std::function<int(int)>& part_rank) {
  if (nparts <= 1) return;
  // Rotated staging buffer: position q holds chunk (my_part + q) % nparts.
  std::vector<i64> pos(static_cast<std::size_t>(nparts) + 1, 0);
  for (int q = 0; q < nparts; ++q) {
    pos[static_cast<std::size_t>(q) + 1] =
        pos[static_cast<std::size_t>(q)] +
        chunk_size(off, (my_part + q) % nparts);
  }
  r.rot.resize(static_cast<std::size_t>(pos.back()));
  double* rot = r.rot.data();

  {
    const i64 my_off = off[static_cast<std::size_t>(my_part)];
    const i64 my_words = chunk_size(off, my_part);
    r.steps.push_back({Step::Kind::Local, -1, nullptr, 0,
                       [data, rot, my_off, my_words] {
                         std::copy_n(data + my_off, my_words, rot);
                       }});
  }

  for (i64 s = 1; s < nparts; s <<= 1) {
    const int blocks = static_cast<int>(std::min<i64>(s, nparts - s));
    const int dst_part =
        static_cast<int>((my_part - s % nparts + nparts) % nparts);
    const int src_part = static_cast<int>((my_part + s) % nparts);
    const i64 send_words = pos[static_cast<std::size_t>(blocks)];
    const i64 recv_at = pos[static_cast<std::size_t>(s)];
    const i64 recv_words = pos[static_cast<std::size_t>(s) + blocks] - recv_at;
    r.steps.push_back(
        {Step::Kind::Send, part_rank(dst_part), rot, send_words, {}});
    r.steps.push_back(
        {Step::Kind::Recv, part_rank(src_part), rot + recv_at, recv_words,
         {}});
  }

  // Un-rotate back into chunk order.
  r.steps.push_back(
      {Step::Kind::Local, -1, nullptr, 0,
       [data, rot, off, pos, my_part, nparts] {
         for (int q = 0; q < nparts; ++q) {
           const int g = (my_part + q) % nparts;
           std::copy_n(rot + pos[static_cast<std::size_t>(q)],
                       off[static_cast<std::size_t>(g) + 1] -
                           off[static_cast<std::size_t>(g)],
                       data + off[static_cast<std::size_t>(g)]);
         }
       }});
}

}  // namespace

void build_bcast(RequestState& r, std::span<double> data, int root) {
  const int p = static_cast<int>(r.comm->members.size());
  ensure<CommError>(root >= 0 && root < p, "bcast: bad root ", root);
  if (p == 1 || data.empty()) return;
  const int me = r.comm->myrank;
  r.tag = next_internal_tag(*r.comm);
  const auto off = chunk_offsets(static_cast<i64>(data.size()), p);
  // Work in "virtual rank" space where the root is vrank 0.
  const int v = (me - root + p) % p;
  auto vrank_to_rank = [&](int vr) { return (vr + root) % p; };

  // Binomial scatter: the vrank-range root forwards the far half's words.
  int lo = 0, hi = p;
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo + 1) / 2;
    const i64 o0 = off[static_cast<std::size_t>(mid)];
    const i64 o1 = off[static_cast<std::size_t>(hi)];
    if (v == lo) {
      r.steps.push_back(
          {Step::Kind::Send, vrank_to_rank(mid), data.data() + o0, o1 - o0,
           {}});
      hi = mid;
    } else if (v == mid) {
      r.steps.push_back(
          {Step::Kind::Recv, vrank_to_rank(lo), data.data() + o0, o1 - o0,
           {}});
      lo = mid;
    } else if (v < mid) {
      hi = mid;
    } else {
      lo = mid;
    }
  }

  // Allgather the scattered chunks (chunk index == vrank).
  build_bruck_allgather(r, data.data(), off, p, v, vrank_to_rank);
}

namespace {

/// dst[0..words) += src[0..words), double-wise: the combine of the fp64
/// allreduce, verbatim (both accumulate sites below reduce to this loop,
/// so the fp64 instantiation of build_allreduce_impl is bit-identical to
/// the historical hand-written schedule).
struct AddWordsF64 {
  void operator()(double* dst, const double* src, i64 words) const {
    for (i64 i = 0; i < words; ++i) dst[i] += src[i];
  }
};

/// Float-wise combine over the same word extent: each 8-byte word carries
/// two fp32 lanes (lin::MatrixF::wire() layout; an odd tail rides a
/// zeroed pad lane, and 0.0f + 0.0f keeps the pad zero through every
/// stage).  Charged words are unchanged -- that is the point.
struct AddWordsF32 {
  void operator()(double* dst, const double* src, i64 words) const {
    float* d = reinterpret_cast<float*>(dst);
    const float* s = reinterpret_cast<const float*>(src);
    const i64 n = 2 * words;
    for (i64 i = 0; i < n; ++i) d[i] += s[i];
  }
};

/// Rabenseifner allreduce schedule, parameterized only on the combine:
/// the peers, payload extents, and step order are precision-independent
/// (words in, words out).
template <class Combine>
void build_allreduce_impl(RequestState& r, std::span<double> data,
                          Combine combine) {
  const int p = static_cast<int>(r.comm->members.size());
  if (p == 1 || data.empty()) return;
  const int me = r.comm->myrank;
  r.tag = next_internal_tag(*r.comm);
  const int p2 = 1 << ilog2(p);  // largest power of two <= p
  const int extras = p - p2;
  const i64 n = static_cast<i64>(data.size());
  double* d = data.data();

  // Fold: ranks [p2, p) ship their vectors to partners [0, extras) and wait
  // for the final result (no reduction scratch needed on their side).
  if (me >= p2) {
    r.steps.push_back({Step::Kind::Send, me - p2, d, n, {}});
    r.steps.push_back({Step::Kind::Recv, me - p2, d, n, {}});
    return;
  }
  r.tmp.resize(data.size());
  double* tmp = r.tmp.data();
  if (me < extras) {
    r.steps.push_back({Step::Kind::Recv, me + p2, tmp, n,
                       [combine, d, tmp, n] { combine(d, tmp, n); }});
  }

  // Recursive-halving reduce-scatter among the pow2 set [0, p2).
  const auto off = chunk_offsets(n, p2);
  int lo = 0, hi = p2;
  while (hi - lo > 1) {
    const int half = (hi - lo) / 2;
    const int mid = lo + half;
    const bool lower = me < mid;
    const int partner = lower ? me + half : me - half;
    // Send the half I am not keeping; receive my half and accumulate.
    const int s0 = lower ? mid : lo;
    const int s1 = lower ? hi : mid;
    const int k0 = lower ? lo : mid;
    const int k1 = lower ? mid : hi;
    const i64 so = off[static_cast<std::size_t>(s0)];
    const i64 sn = off[static_cast<std::size_t>(s1)] - so;
    const i64 ko = off[static_cast<std::size_t>(k0)];
    const i64 kn = off[static_cast<std::size_t>(k1)] - ko;
    r.steps.push_back({Step::Kind::Send, partner, d + so, sn, {}});
    r.steps.push_back(
        {Step::Kind::Recv, partner, tmp, kn,
         [combine, d, tmp, ko, kn] { combine(d + ko, tmp, kn); }});
    if (lower) {
      hi = mid;
    } else {
      lo = mid;
    }
  }

  // Allgather the reduced chunks (chunk index == rank within [0, p2)).
  build_bruck_allgather(r, d, off, p2, me, [](int rr) { return rr; });

  // Unfold: return the finished vector to the folded partner.
  if (me < extras) {
    r.steps.push_back({Step::Kind::Send, me + p2, d, n, {}});
  }
}

}  // namespace

void build_allreduce(RequestState& r, std::span<double> data) {
  build_allreduce_impl(r, data, AddWordsF64{});
}

void build_allreduce_f32(RequestState& r, std::span<double> words) {
  build_allreduce_impl(r, words, AddWordsF32{});
}

void build_allgather(RequestState& r, std::span<const double> mine,
                     std::span<double> all) {
  const int p = static_cast<int>(r.comm->members.size());
  ensure<CommError>(all.size() == mine.size() * static_cast<std::size_t>(p),
                    "allgather: output must be size * input");
  const int me = r.comm->myrank;
  // The caller's contribution lands at start (MPI-style: `mine` may be
  // reused immediately); the scheduled steps only touch `all`.
  std::copy(mine.begin(), mine.end(),
            all.begin() + static_cast<std::ptrdiff_t>(mine.size()) * me);
  if (p == 1 || mine.empty()) return;
  r.tag = next_internal_tag(*r.comm);
  const auto off = chunk_offsets(static_cast<i64>(all.size()), p);
  build_bruck_allgather(r, all.data(), off, p, me, [](int rr) { return rr; });
}

void build_sendrecv_swap(RequestState& r, int partner,
                         std::span<double> data) {
  const int p = static_cast<int>(r.comm->members.size());
  ensure<CommError>(partner >= 0 && partner < p,
                    "sendrecv_swap: bad partner rank ", partner);
  if (partner == r.comm->myrank) return;
  const i64 n = static_cast<i64>(data.size());
  r.steps.push_back({Step::Kind::Send, partner, data.data(), n, {}});
  r.steps.push_back({Step::Kind::Recv, partner, data.data(), n, {}});
}

}  // namespace detail

// --------------------------------------------------------- start_* API

Request Comm::start_bcast(std::span<double> data, int root) const {
  auto st = std::make_unique<detail::RequestState>();
  st->comm = state_;
  detail::build_bcast(*st, data, root);
  detail::trace_stamp_request(*st, "bcast");
  detail::start_request(*st);
  return Request(std::move(st));
}

Request Comm::start_allreduce_sum(std::span<double> data) const {
  auto st = std::make_unique<detail::RequestState>();
  st->comm = state_;
  detail::build_allreduce(*st, data);
  detail::trace_stamp_request(*st, "allreduce");
  detail::start_request(*st);
  return Request(std::move(st));
}

Request Comm::start_allreduce_sum_f32(std::span<double> words) const {
  auto st = std::make_unique<detail::RequestState>();
  st->comm = state_;
  detail::build_allreduce_f32(*st, words);
  detail::trace_stamp_request(*st, "allreduce_f32");
  detail::start_request(*st);
  return Request(std::move(st));
}

Request Comm::start_reduce_sum(std::span<double> data, int root) const {
  ensure<CommError>(root >= 0 && root < size(),
                    "reduce_sum: bad root ", root);
  // The paper's cost table charges Reduce identically to Allreduce
  // (reduce-scatter + gather); delivering the result everywhere costs the
  // same in this model and keeps one code path.
  return start_allreduce_sum(data);
}

Request Comm::start_allgather(std::span<const double> mine,
                              std::span<double> all) const {
  auto st = std::make_unique<detail::RequestState>();
  st->comm = state_;
  detail::build_allgather(*st, mine, all);
  detail::trace_stamp_request(*st, "allgather");
  detail::start_request(*st);
  return Request(std::move(st));
}

Request Comm::start_sendrecv_swap(int partner, int tag,
                                  std::span<double> data) const {
  auto st = std::make_unique<detail::RequestState>();
  st->comm = state_;
  st->tag = tag;  // pairwise exchange uses the caller's tag
  detail::build_sendrecv_swap(*st, partner, data);
  detail::trace_stamp_request(*st, "sendrecv_swap");
  detail::start_request(*st);
  return Request(std::move(st));
}

// ----------------------------------------------------- blocking flavors

void Comm::barrier() const {
  const int p = size();
  if (p == 1) return;
  // The dissemination loop is direct blocking p2p, not a request
  // schedule, so it carries its own span (same args as the request
  // engine's collective spans).
  obs::SpanScope span("rt", "barrier");
  const CostCounters* tally = nullptr;
  i64 msgs0 = 0;
  double clock0 = 0.0;
  if (obs::trace_on()) {
    tally = &state_->world->ranks[static_cast<std::size_t>(world_rank())]
                 .tally;
    msgs0 = tally->msgs;
    clock0 = tally->time;
  }
  const int me = rank();
  const int tag = detail::next_internal_tag(*state_);
  for (int s = 1; s < p; s <<= 1) {
    send((me + s) % p, tag, {});
    recv((me - s % p + p) % p, tag, {});
  }
  if (tally != nullptr) {
    span.arg("msgs", static_cast<double>(tally->msgs - msgs0));
    span.arg("mclk0_us", clock0 * 1e6);
    span.arg("mclk1_us", tally->time * 1e6);
  }
}

void Comm::bcast(std::span<double> data, int root) const {
  Request r = start_bcast(data, root);
  r.wait();
}

void Comm::allreduce_sum(std::span<double> data) const {
  Request r = start_allreduce_sum(data);
  r.wait();
}

void Comm::reduce_sum(std::span<double> data, int root) const {
  Request r = start_reduce_sum(data, root);
  r.wait();
}

void Comm::allreduce_sum_f32(std::span<double> words) const {
  Request r = start_allreduce_sum_f32(words);
  r.wait();
}

void Comm::reduce_sum_f32(std::span<double> words, int root) const {
  ensure<CommError>(root >= 0 && root < size(),
                    "reduce_sum_f32: bad root ", root);
  // Reduce == Allreduce in the paper's cost table; see start_reduce_sum.
  Request r = start_allreduce_sum_f32(words);
  r.wait();
}

void Comm::allgather(std::span<const double> mine,
                     std::span<double> all) const {
  Request r = start_allgather(mine, all);
  r.wait();
}

void Comm::sync_clock() const {
  // Jumps every member's clock to the member maximum without perturbing the
  // alpha/beta tallies: snapshot my tally, allgather the pre-exchange clock
  // values (each rank reads only its own tally, so there is no race), then
  // restore my tally and apply the max.
  charge_local_flops();
  detail::World& w = *state_->world;
  auto& rank_state = w.ranks[static_cast<std::size_t>(world_rank())];
  // Restoring the snapshot would silently erase charges any other
  // in-flight request makes while the allgather below progresses.
  ensure<CommError>(rank_state.active.empty(),
                    "sync_clock: requests still in flight");
  auto& my_tally = rank_state.tally;
  const CostCounters saved = my_tally;

  std::vector<double> mine = {saved.time};
  std::vector<double> all(state_->members.size());
  allgather(mine, all);

  my_tally = saved;
  const double t = *std::max_element(all.begin(), all.end());
  my_tally.time = std::max(saved.time, t);
}

}  // namespace cacqr::rt
