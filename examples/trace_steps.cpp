/// \file trace_steps.cpp
/// \brief Figures 2 and 3 as executable documentation: run 1D-CQR and
///        CA-CQR step by step on small real grids, narrating what moves
///        where (the pictures in the paper, but with live counters).
///
/// Run:  ./trace_steps

#include <iostream>

#include "cacqr/chol/cfr3d.hpp"
#include "cacqr/core/ca_cqr.hpp"
#include "cacqr/core/cqr_1d.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/factor.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/util.hpp"

namespace {

using namespace cacqr;
using dist::DistMatrix;

void trace_1d() {
  const int p = 4;
  const i64 m = 32, n = 8;
  std::cout << "--- Figure 2: 1D-CQR on P = " << p << " ranks, " << m << " x "
            << n << " ---\n";
  rt::Runtime::run(p, [&](rt::Comm& world) {
    lin::Matrix a = lin::hashed_matrix(1, m, n);
    auto da = DistMatrix::from_global(a, p, 1, world.rank(), 0);
    auto say = [&](const std::string& s) {
      world.barrier();
      if (world.rank() == 0) std::cout << s << "\n";
      world.barrier();
    };
    say("  each rank owns " + std::to_string(m / p) + " rows of A");
    lin::Matrix x(n, n);
    lin::gram(1.0, da.local(), 0.0, x);
    say("  [local]     X_p = A_p^T A_p             (syrk, no messages)");
    world.allreduce_sum({x.data(), static_cast<std::size_t>(x.size())});
    say("  [allreduce] Z = sum_p X_p               (" + std::to_string(n * n) +
        " words per rank)");
    auto li = lin::cholinv(x);
    say("  [local]     R^T = chol(Z), R^{-T}       (redundant on all ranks)");
    lin::trmm(lin::Side::Right, lin::Uplo::Lower, lin::Trans::T,
              lin::Diag::NonUnit, 1.0, li.l_inv, da.local());
    say("  [local]     Q_p = A_p R^{-1}            (trmm, no messages)");
    lin::Matrix q = gather(da, world);
    if (world.rank() == 0) {
      std::cout << "  result: ||Q^T Q - I||_F = "
                << lin::orthogonality_error(q) << "\n\n";
    }
  });
}

void trace_ca() {
  const int c = 2, d = 4;
  const i64 m = 32, n = 8;
  std::cout << "--- Figure 3: CA-CQR on the " << c << " x " << d << " x " << c
            << " grid (P = " << c * c * d << "), " << m << " x " << n
            << " ---\n";
  rt::Runtime::run(c * c * d, [&](rt::Comm& world) {
    grid::TunableGrid g(world, c, d);
    lin::Matrix a = lin::hashed_matrix(2, m, n);
    auto da = DistMatrix::from_global_on_tunable(a, g);
    auto say = [&](const std::string& s) {
      world.barrier();
      if (world.rank() == 0) std::cout << s << "\n";
      world.barrier();
    };
    say("  A is split into " + std::to_string(m / d) + " x " +
        std::to_string(n / c) + " blocks on each depth slice");
    say("  [bcast row]      W <- A-local of the x == z root");
    say("  [local gemm]     X = W^T A  (one Gram block, partial sum)");
    say("  [reduce group]   contiguous y-groups combine partials");
    say("  [allreduce]      strided y-groups finish the sum");
    say("  [bcast depth]    every subcube slice now owns Z = A^T A");
    auto z = core::ca_gram(da, g);
    say("  [CFR3D]          each of the " + std::to_string(d / c) +
        " subcubes factors Z redundantly");
    auto f = chol::cfr3d(z, g.subcube());
    auto rinv = dist::transpose3d(f.l_inv, g.subcube());
    say("  [MM3D]           Q = (row panel of A) * R^{-1} per subcube");
    auto panel = da.reinterpret_layout(m * c / d, n, c, c, g.coords().y % c,
                                       g.coords().x);
    auto qp = dist::mm3d(panel, rinv, g.subcube());
    auto q = qp.reinterpret_layout(m, n, d, c, g.coords().y, g.coords().x);
    lin::Matrix qg = gather(q, g.slice());
    if (world.rank() == 0) {
      std::cout << "  result (one pass): ||Q^T Q - I||_F = "
                << lin::orthogonality_error(qg)
                << "  (a second pass would polish this to ~1e-15)\n\n";
    }
  });
}

}  // namespace

int main() {
  trace_1d();
  trace_ca();
  std::cout << "See bench_fig2_trace_1d / bench_fig3_trace_cacqr for the "
               "same traces with full per-step cost counters.\n";
  return 0;
}
