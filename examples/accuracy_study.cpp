/// \file accuracy_study.cpp
/// \brief Numerical-stability study across the CholeskyQR family: how the
///        orthogonality error ||Q^T Q - I|| grows with kappa(A) for
///        CholeskyQR (one pass), CholeskyQR2, shifted CholeskyQR3, and
///        Householder QR -- the theory the paper's introduction leans on
///        (CQR degrades as kappa^2 eps; CQR2 is eps-accurate up to
///        kappa ~ eps^{-1/2} and breaks down beyond; shifted CQR3 holds
///        to kappa ~ eps^{-1}).

#include <iostream>

#include "cacqr/core/cqr.hpp"
#include "cacqr/core/shifted.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/qr.hpp"
#include "cacqr/lin/util.hpp"
#include "cacqr/support/table.hpp"

int main() {
  using namespace cacqr;
  const i64 m = 400, n = 24;
  Rng rng(99);

  TextTable t;
  t.header({"kappa(A)", "CQR", "CQR2", "shifted CQR3", "Householder"});

  for (const double kappa : {1e0, 1e2, 1e4, 1e6, 1e7, 1e9, 1e11, 1e13}) {
    lin::Matrix a = lin::with_cond(rng, m, n, kappa);
    std::vector<std::string> row = {TextTable::num(kappa, 2)};

    auto err_or_fail = [&](auto&& factorizer) -> std::string {
      try {
        auto f = factorizer(a);
        return TextTable::num(lin::orthogonality_error(f.q), 3);
      } catch (const NotSpdError&) {
        return "breakdown";
      }
    };
    row.push_back(err_or_fail([](lin::ConstMatrixView x) { return core::cqr(x); }));
    row.push_back(err_or_fail([](lin::ConstMatrixView x) { return core::cqr2(x); }));
    row.push_back(
        err_or_fail([](lin::ConstMatrixView x) { return core::shifted_cqr3(x); }));
    auto hh = lin::householder_qr(a);
    row.push_back(TextTable::num(lin::orthogonality_error(hh.q), 3));
    t.row(std::move(row));
  }

  std::cout << "Orthogonality error ||Q^T Q - I||_F vs conditioning (m=" << m
            << ", n=" << n << ", eps^-1/2 ~ 6.7e7, eps^-1 ~ 4.5e15):\n\n"
            << t.str() << "\n"
            << "Reading guide:\n"
            << "  - CQR degrades like kappa^2 * eps and breaks down once\n"
            << "    kappa^2 eps ~ 1 (the Gram matrix stops being SPD);\n"
            << "  - CQR2 restores machine-epsilon orthogonality while the\n"
            << "    first pass still succeeds (kappa <~ eps^{-1/2});\n"
            << "  - shifted CQR3 (paper ref [3]) survives far beyond, at\n"
            << "    the cost of a third pass;\n"
            << "  - Householder is unconditionally stable (the baseline).\n";
  return 0;
}
