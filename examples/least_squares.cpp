/// \file least_squares.cpp
/// \brief The paper's motivating workload: a very overdetermined least
///        squares problem min ||A x - b||, solved with the distributed
///        CA-CholeskyQR2 factorization (x = R^{-1} Q^T b).
///
/// Run:  ./least_squares [--ranks=8] [--rows=4096] [--features=32]
///
/// The example builds a synthetic regression problem with known ground
/// truth plus noise, factors A on the tunable grid, and reports recovery
/// and residual-orthogonality diagnostics.

#include <iostream>

#include "cacqr/core/factorize.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/util.hpp"
#include "cacqr/support/cli.hpp"

int main(int argc, char** argv) {
  using namespace cacqr;
  const CliArgs args(argc, argv);
  const int ranks = static_cast<int>(args.get_int("ranks", 8));
  const i64 m = args.get_int("rows", 4096);
  const i64 n = args.get_int("features", 32);

  // Regression design matrix with mild conditioning, true coefficients,
  // and a noisy observation vector.
  Rng rng(7);
  lin::Matrix a = lin::with_cond(rng, m, n, 50.0);
  lin::Matrix x_true = lin::gaussian(rng, n, 1);
  lin::Matrix b(m, 1);
  lin::gemv(lin::Trans::N, 1.0, a, x_true, 0.0, b);
  const double noise = 1e-3;
  for (i64 i = 0; i < m; ++i) b(i, 0) += noise * rng.normal();

  std::cout << "Least squares via CA-CholeskyQR2: " << m << " samples, "
            << n << " features, " << ranks << " ranks, noise " << noise
            << "\n";

  rt::Runtime::run(ranks, [&](rt::Comm& world) {
    auto fact = core::factorize(a, world);
    if (world.rank() != 0) return;

    // x = R^{-1} (Q^T b).
    lin::Matrix qtb(n, 1);
    lin::gemv(lin::Trans::T, 1.0, fact.q, b, 0.0, qtb);
    lin::trsm(lin::Side::Left, lin::Uplo::Upper, lin::Trans::N,
              lin::Diag::NonUnit, 1.0, fact.r, qtb);

    // Diagnostics: coefficient recovery and the normal-equations check
    // A^T (A x - b) ~ 0 that any least-squares solution must satisfy.
    lin::Matrix resid = materialize(b.view());
    lin::gemv(lin::Trans::N, 1.0, a, qtb, -1.0, resid);
    lin::Matrix atr(n, 1);
    lin::gemv(lin::Trans::T, 1.0, a, resid, 0.0, atr);

    std::cout << "  grid used                 : " << fact.c << " x " << fact.d
              << " x " << fact.c << "\n";
    std::cout << "  ||x - x_true||_inf        : "
              << lin::max_abs_diff(qtb, x_true) << "  (noise floor ~"
              << noise << ")\n";
    std::cout << "  ||A^T (A x - b)||_inf     : " << lin::max_abs(atr)
              << "  (normal equations)\n";
    std::cout << "  ||A x - b||_2             : " << lin::nrm2(resid) << "\n";
  });
  return 0;
}
