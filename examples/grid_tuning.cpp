/// \file grid_tuning.cpp
/// \brief The tunable grid in action: for several matrix shapes, sweep
///        every valid c x d x c grid on a fixed rank budget, print the
///        modeled cost breakdown (alpha/beta/gamma/memory) and the chosen
///        grid, and verify the tuner's choice by actually running the
///        factorization on the best and worst grids.
///
/// This is Table I turned into a decision procedure: skinny matrices want
/// c = 1 (1D algorithm), square matrices want c = P^(1/3) (3D algorithm),
/// and the sweet spot moves with m/n exactly as m/d == n/c predicts.

#include <cmath>
#include <iostream>

#include "cacqr/core/ca_cqr.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/util.hpp"
#include "cacqr/model/sweep.hpp"
#include "cacqr/support/table.hpp"

int main() {
  using namespace cacqr;
  const model::Machine s2 = model::stampede2();
  const i64 ranks = 4096;

  std::cout << "Grid tuning on " << ranks << " ranks of " << s2.name
            << "\n\n";

  struct Shape {
    double m, n;
    const char* note;
  };
  for (const Shape& s : {Shape{1 << 26, 1 << 7, "extremely tall-skinny"},
                         Shape{1 << 22, 1 << 11, "tall"},
                         Shape{1 << 18, 1 << 15, "moderately rectangular"},
                         Shape{1 << 16, 1 << 16, "square"}}) {
    TextTable t;
    t.header({"c", "d", "alpha (msgs)", "beta (words)", "gamma (flops)",
              "mem (words)", "modeled ms"});
    for (const auto& [c, d] : model::valid_grids(ranks)) {
      if (double(d) > s.m || double(c) > s.n) continue;
      const auto ch = model::eval_cacqr2(s.m, s.n, c, d, s2);
      t.row({std::to_string(c), std::to_string(d),
             TextTable::num(ch.cost.alpha, 4), TextTable::num(ch.cost.beta, 4),
             TextTable::num(ch.cost.gamma, 4), TextTable::num(ch.cost.mem, 4),
             TextTable::num(ch.seconds * 1e3, 4)});
    }
    const auto best = model::best_cacqr2(s.m, s.n, ranks, s2);
    std::cout << "shape " << i64(s.m) << " x " << i64(s.n) << " (" << s.note
              << "), paper optimum c ~ (Pn/m)^(1/3) = "
              << TextTable::num(std::cbrt(double(ranks) * s.n / s.m), 3)
              << ":\n"
              << t.str() << "  tuner picks c=" << best.c << ", d=" << best.d
              << "\n\n";
  }

  // Put the tuner's preference to the test at a scale we can actually
  // run: 64 thread-ranks, a square-ish matrix, best grid vs the 1D grid.
  std::cout << "Verification run on 64 real ranks, 64 x 64 matrix:\n";
  for (const auto& [c, d] : {std::pair<int, int>{4, 4}, {1, 64}}) {
    auto per_rank = rt::Runtime::run(64, [&, c = c, d = d](rt::Comm& world) {
      grid::TunableGrid g(world, c, d);
      auto da = dist::DistMatrix::from_global_on_tunable(
          lin::hashed_matrix(5, 64, 64), g);
      (void)core::ca_cqr2(da, g);
    });
    const auto mc = rt::max_counters(per_rank);
    std::cout << "  c=" << c << " d=" << d << ": msgs=" << mc.msgs
              << " words=" << mc.words << " flops=" << mc.flops << "\n";
  }
  std::cout << "(the 3D grid moves far fewer words on the square matrix, "
               "at the price of more messages -- Table I's tradeoff)\n";
  return 0;
}
