/// \file quickstart.cpp
/// \brief Smallest useful program: factor a tall-skinny matrix with the
///        high-level driver and verify the factors.
///
/// Run:  ./quickstart [--ranks=8] [--m=600] [--n=40]
///
/// The driver picks a near-optimal c x d x c grid for the rank count and
/// matrix shape, pads to grid-divisible dimensions internally, runs
/// CA-CholeskyQR2, and hands back gathered Q and R.

#include <iostream>

#include "cacqr/core/factorize.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/util.hpp"
#include "cacqr/rt/comm.hpp"
#include "cacqr/support/cli.hpp"

int main(int argc, char** argv) {
  using namespace cacqr;
  const CliArgs args(argc, argv);
  const int ranks = static_cast<int>(args.get_int("ranks", 8));
  const i64 m = args.get_int("m", 600);
  const i64 n = args.get_int("n", 40);

  std::cout << "CA-CholeskyQR2 quickstart: " << m << " x " << n << " on "
            << ranks << " ranks\n";

  // Every rank regenerates the same input from the seed; in a real
  // application each rank would own only its local block (see the
  // ca_cqr2 API in core/ca_cqr.hpp for the fully distributed path).
  lin::Matrix a = lin::hashed_matrix(/*seed=*/2024, m, n);

  rt::Runtime::run(ranks, [&](rt::Comm& world) {
    auto result = core::factorize(a, world);
    if (world.rank() != 0) return;

    std::cout << "  grid: " << result.c << " x " << result.d << " x "
              << result.c << (result.used_shift ? " (shifted fallback)" : "")
              << "\n";
    std::cout << "  ||Q^T Q - I||_F       = "
              << lin::orthogonality_error(result.q) << "\n";
    std::cout << "  ||A - Q R|| / ||A||   = "
              << lin::residual_error(a, result.q, result.r) << "\n";
    std::cout << "  R upper triangular    = "
              << (lin::is_upper_triangular(result.r) ? "yes" : "NO") << "\n";
    double min_diag = result.r(0, 0);
    for (i64 i = 0; i < n; ++i) min_diag = std::min(min_diag, result.r(i, i));
    std::cout << "  min diag(R)           = " << min_diag << "\n";
  });
  return 0;
}
