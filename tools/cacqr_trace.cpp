/// \file cacqr_trace.cpp
/// \brief Post-processor for the Perfetto/Chrome trace files the obs/
///        layer writes.
///
///   cacqr-trace merge <dir> [-o <out.json>]
///       Combines every trace-<pid>.json under <dir> into one
///       Perfetto-loadable file (default <dir>/trace.json).  The shm
///       launcher merges its own children automatically; this command
///       covers mpi runs (no common parent of ours) and re-merges.
///
///   cacqr-trace summarize <trace.json> [--top=N]
///       Groups complete ("X") spans by cat/name and prints the top N
///       (default 20) by total wall time, with the modeled-clock window
///       (mclk0_us/mclk1_us span args, emitted by the rt collectives)
///       next to the wall time where present.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "cacqr/obs/trace.hpp"
#include "cacqr/support/json.hpp"

namespace {

using cacqr::support::Json;

int usage() {
  std::fprintf(stderr,
               "usage: cacqr-trace merge <dir> [-o <out.json>]\n"
               "       cacqr-trace summarize <trace.json> [--top=N]\n");
  return 2;
}

int run_merge(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string dir = argv[0];
  std::string out = dir + "/trace.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      return usage();
    }
  }
  if (!cacqr::obs::merge_trace_dir(dir, out)) {
    std::fprintf(stderr, "cacqr-trace: no trace-*.json under %s\n",
                 dir.c_str());
    return 1;
  }
  std::printf("%s\n", out.c_str());
  return 0;
}

struct SpanStats {
  std::size_t count = 0;
  double wall_us = 0.0;
  /// Modeled-clock advance summed over spans carrying mclk args.
  double modeled_us = 0.0;
  std::size_t modeled_count = 0;
};

int run_summarize(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string path = argv[0];
  long top = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--top=", 6) == 0) {
      char* end = nullptr;
      top = std::strtol(argv[i] + 6, &end, 10);
      if (end == argv[i] + 6 || *end != '\0' || top < 1) return usage();
    } else {
      return usage();
    }
  }

  const auto doc = cacqr::support::read_json_file(path);
  if (!doc.has_value()) {
    std::fprintf(stderr, "cacqr-trace: cannot read %s\n", path.c_str());
    return 1;
  }
  const Json& events = (*doc)["traceEvents"];
  if (!events.is_array()) {
    std::fprintf(stderr, "cacqr-trace: %s has no traceEvents array\n",
                 path.c_str());
    return 1;
  }

  std::map<std::string, SpanStats> by_span;
  std::size_t total_events = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    ++total_events;
    if (e["ph"].as_string() != "X") continue;
    const std::string key =
        e["cat"].as_string() + "/" + e["name"].as_string();
    SpanStats& s = by_span[key];
    ++s.count;
    s.wall_us += e["dur"].as_number();
    const Json& args = e["args"];
    if (args.has("mclk0_us") && args.has("mclk1_us")) {
      s.modeled_us +=
          args["mclk1_us"].as_number() - args["mclk0_us"].as_number();
      ++s.modeled_count;
    }
  }

  std::vector<std::pair<std::string, SpanStats>> rows(by_span.begin(),
                                                      by_span.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.wall_us > b.second.wall_us;
  });
  if (rows.size() > static_cast<std::size_t>(top)) {
    rows.resize(static_cast<std::size_t>(top));
  }

  std::printf("%zu events, %zu span kinds (top %zu by wall time)\n",
              total_events, by_span.size(), rows.size());
  std::printf("%-28s %10s %14s %14s %14s\n", "span", "count", "wall_ms",
              "modeled_ms", "wall-modeled");
  for (const auto& [key, s] : rows) {
    if (s.modeled_count > 0) {
      std::printf("%-28s %10zu %14.3f %14.3f %14.3f\n", key.c_str(), s.count,
                  s.wall_us / 1e3, s.modeled_us / 1e3,
                  (s.wall_us - s.modeled_us) / 1e3);
    } else {
      std::printf("%-28s %10zu %14.3f %14s %14s\n", key.c_str(), s.count,
                  s.wall_us / 1e3, "-", "-");
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "merge") return run_merge(argc - 2, argv + 2);
  if (cmd == "summarize") return run_summarize(argc - 2, argv + 2);
  return usage();
}
