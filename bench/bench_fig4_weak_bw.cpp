/// \file bench_fig4_weak_bw.cpp
/// \brief Figure 4 (a-c): weak scaling on Blue Waters, nodes = 16 a b^2,
///        matrices 65536a x 2048b, 262144a x 1024b, 1048576a x 512b.
///        Expected shape: ScaLAPACK stays competitive or ahead (the
///        machine's low flops:bandwidth ratio makes CQR2's 2x flop
///        overhead expensive), with CA-CQR2 closing the gap as the
///        row:column ratio grows across the plots.

#include "common.hpp"

namespace {

void weak_figure(const std::string& name, double m0, double n0) {
  using namespace cacqr;
  const model::Machine bw = model::bluewaters();
  TextTable t;
  std::vector<std::string> head = {"(a,b)", "nodes", "ScaLAPACK(best)"};
  for (const i64 c : bench::c_values()) {
    head.push_back("CACQR2(c=" + std::to_string(c) + ")");
  }
  head.push_back("CACQR2(best)");
  head.push_back("ratio");
  t.header(head);

  for (const auto& [a, b] : bench::weak_steps()) {
    const i64 nodes = 16 * a * b * b;
    const i64 ranks = nodes * bw.ranks_per_node;
    const double m = m0 * double(a);
    const double n = n0 * double(b);
    std::vector<std::string> row = {
        "(" + std::to_string(a) + "," + std::to_string(b) + ")",
        std::to_string(nodes)};
    const auto sl = model::best_pgeqrf(m, n, ranks, bw);
    const double sl_gf = model::gflops_per_node(m, n, sl.seconds,
                                                double(nodes));
    row.push_back(TextTable::num(sl_gf));
    double best = 0.0;
    for (const i64 c : bench::c_values()) {
      if (!bench::grid_ok(ranks, c, m, n)) {
        row.push_back("-");
        continue;
      }
      const auto ch = model::eval_cacqr2(m, n, c, ranks / (c * c), bw);
      const double gf = model::gflops_per_node(m, n, ch.seconds,
                                               double(nodes));
      best = std::max(best, gf);
      row.push_back(TextTable::num(gf));
    }
    row.push_back(TextTable::num(best));
    row.push_back(TextTable::num(best / sl_gf, 3));
    t.row(std::move(row));
  }
  cacqr::bench::emit(name, t);
}

}  // namespace

int main() {
  weak_figure("fig4a_weak_bw_65536a_x_2048b", 65536.0, 2048.0);
  weak_figure("fig4b_weak_bw_262144a_x_1024b", 262144.0, 1024.0);
  weak_figure("fig4c_weak_bw_1048576a_x_512b", 1048576.0, 512.0);
  return 0;
}
