/// \file bench_fig3_trace_cacqr.cpp
/// \brief Figure 3: the paper's illustration of CA-CQR over the tunable
///        grid, reproduced as an annotated execution trace on a real
///        2 x 4 x 2 thread-grid: broadcast, local Gram product, grouped
///        reduction, strided allreduce, depth broadcast, subcube CFR3D,
///        and the panel MM3D.

#include <iostream>

#include "common.hpp"
#include "cacqr/chol/cfr3d.hpp"
#include "cacqr/core/ca_cqr.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/util.hpp"

int main() {
  using namespace cacqr;
  using dist::DistMatrix;
  const int c = 2, d = 4;
  const i64 m = 32, n = 8;

  std::cout << "==== fig3_trace_cacqr ====\n";
  std::cout << "CA-CQR of a " << m << " x " << n << " matrix on the "
            << c << " x " << d << " x " << c << " grid (P = " << c * c * d
            << "; Figure 3's steps):\n\n";

  rt::Runtime::run(c * c * d, [&](rt::Comm& world) {
    grid::TunableGrid g(world, c, d);
    lin::Matrix a = lin::hashed_matrix(29, m, n);
    auto da = DistMatrix::from_global_on_tunable(a, g);
    auto report = [&](const std::string& step, const rt::CostCounters& t) {
      if (world.rank() == 0) {
        std::cout << "  " << step << "\n      msgs=" << t.msgs
                  << " words=" << t.words << " flops=" << t.flops << "\n";
      }
      world.barrier();
    };

    auto t0 = world.counters();
    auto z = core::ca_gram(da, g);
    report(
        "steps 1-5: Z = A^T A assembled on every subcube slice\n"
        "      (row Bcast of A; local W^T A; Reduce within contiguous\n"
        "      y-groups; Allreduce across strided y-groups; depth Bcast)",
        world.counters() - t0);

    t0 = world.counters();
    auto fact = chol::cfr3d(z, g.subcube());
    report("steps 6-7: each of the d/c = " + std::to_string(d / c) +
               " subcubes runs CFR3D redundantly: R^T and R^{-T}",
           world.counters() - t0);

    t0 = world.counters();
    auto rinv = dist::transpose3d(fact.l_inv, g.subcube());
    auto panel = da.reinterpret_layout(m * c / d, n, c, c,
                                       g.coords().y % c, g.coords().x);
    auto qp = dist::mm3d(panel, rinv, g.subcube());
    report("step 8: Q = A R^{-1} -- each subcube multiplies its (m c/d) x n\n"
           "      row-panel with MM3D; no communication between subcubes",
           world.counters() - t0);

    auto q = qp.reinterpret_layout(m, n, d, c, g.coords().y, g.coords().x);
    lin::Matrix qg = gather(q, g.slice());
    if (world.rank() == 0) {
      std::cout << "\n  check (one CQR pass): ||Q^T Q - I||_F = "
                << lin::orthogonality_error(qg) << "\n\n";
    }
  });
  return 0;
}
