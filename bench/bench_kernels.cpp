/// \file bench_kernels.cpp
/// \brief GFLOP/s of the packed micro-kernel level-3 paths against the
///        seed's scalar loops, over the tall-skinny shapes CholeskyQR2
///        actually feeds (Gram products and triangular updates of m x n
///        panels with m >> n) -- measured once per host-executable
///        micro-kernel variant (generic, avx2, avx512, neon).
///
/// The "seed" reference implementations below are verbatim copies of the
/// scalar kernels this library shipped with before the packed micro-kernel
/// rebuild (see DESIGN.md section 2), kept here so every future PR can
/// re-measure the speedup against the same baseline.  Seed loops are
/// variant-independent and timed once per shape; the packed kernels are
/// re-timed with each supported variant forced active.
///
/// Benchmark operands are carved out of one 64-byte-aligned slab with
/// fixed inter-operand padding, so the relative alignment of A, B, C and
/// the triangular factor is identical in every process.  (Heap-luck
/// alignment previously made the m=1024 trmm_r/trsm_r absolute rates
/// bimodal across runs at the +/-35% level; see docs/benchmarks.md.)
///
/// Usage: bench_kernels [--json[=PATH]] [--quick] [--threads N]
///   --json     additionally write machine-readable results (default PATH:
///              bench_out/bench_kernels.json) -- the perf-trajectory
///              artifact CI uploads and PRs commit.  Includes a
///              thread-scaling sweep (1/2/4/8 workers) of the gemm paths.
///   --quick    smaller shapes / shorter repetitions (CI smoke mode).
///   --threads  worker budget for the "new" kernel measurements (default:
///              CACQR_THREADS, i.e. 1); the seed reference loops are
///              always single-threaded -- they predate the pool.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/blas_f.hpp"
#include "cacqr/lin/factor.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/kernel.hpp"
#include "cacqr/lin/parallel.hpp"
#include "cacqr/lin/util.hpp"
#include "cacqr/support/rng.hpp"

namespace {

using namespace cacqr;
using lin::ConstMatrixView;
using lin::Matrix;
using lin::MatrixView;

// ------------------------------------------------- seed reference kernels

/// Seed T/N gemm: strided dot products, C += alpha * A^T B.
void seed_gemm_tn(double alpha, ConstMatrixView a, ConstMatrixView b,
                  MatrixView c) {
  const i64 m = a.cols;
  const i64 n = b.cols;
  const i64 k = a.rows;
  for (i64 j = 0; j < n; ++j) {
    const double* bc = b.data + j * b.ld;
    double* cc = c.data + j * c.ld;
    for (i64 i = 0; i < m; ++i) {
      const double* ac = a.data + i * a.ld;
      double acc = 0.0;
      for (i64 kk = 0; kk < k; ++kk) acc += ac[kk] * bc[kk];
      cc[i] += alpha * acc;
    }
  }
}

/// Seed N/N gemm: the MB/NB/KB cache-blocked axpy loops (this was the only
/// blocked path in the seed).
void seed_gemm_nn(double alpha, ConstMatrixView a, ConstMatrixView b,
                  MatrixView c) {
  const i64 m = a.rows;
  const i64 n = b.cols;
  const i64 k = a.cols;
  constexpr i64 MB = 256, NB = 128, KB = 128;
  for (i64 jj = 0; jj < n; jj += NB) {
    const i64 nb = std::min(NB, n - jj);
    for (i64 kk = 0; kk < k; kk += KB) {
      const i64 kbb = std::min(KB, k - kk);
      for (i64 ii = 0; ii < m; ii += MB) {
        const i64 mb = std::min(MB, m - ii);
        for (i64 j = jj; j < jj + nb; ++j) {
          double* cc = c.data + j * c.ld;
          for (i64 kx = kk; kx < kk + kbb; ++kx) {
            const double bkj = alpha * b(kx, j);
            if (bkj == 0.0) continue;
            const double* ac = a.data + kx * a.ld;
            for (i64 i = ii; i < ii + mb; ++i) cc[i] += bkj * ac[i];
          }
        }
      }
    }
  }
}

/// Seed gram: per-entry dot products over the lower triangle, mirrored.
void seed_gram(ConstMatrixView a, MatrixView c) {
  const i64 n = a.cols;
  for (i64 j = 0; j < n; ++j) {
    const double* aj = a.data + j * a.ld;
    for (i64 i = j; i < n; ++i) {
      const double* ai = a.data + i * a.ld;
      double acc = 0.0;
      for (i64 kk = 0; kk < a.rows; ++kk) acc += ai[kk] * aj[kk];
      c(i, j) = acc;
    }
  }
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = j + 1; i < n; ++i) c(j, i) = c(i, j);
  }
}

/// Seed right-side trmm, B := B * T^T with T lower (the CholeskyQR
/// Q = A R^{-1} call shape): column-mixing scalar loops.
void seed_trmm_rlt(ConstMatrixView t, MatrixView b) {
  const i64 n = t.rows;
  for (i64 j = 0; j < n; ++j) {
    double* cj = b.data + j * b.ld;
    const double djj = t(j, j);
    for (i64 i = 0; i < b.rows; ++i) cj[i] *= djj;
    for (i64 k = j + 1; k < n; ++k) {
      const double tkj = t(k, j);  // op(T)(k, j) = T(k, j) with T lower
      if (tkj == 0.0) continue;
      const double* ck = b.data + k * b.ld;
      for (i64 i = 0; i < b.rows; ++i) cj[i] += tkj * ck[i];
    }
  }
}

/// Seed right-side trsm, solve X * T^T = B with T lower.
void seed_trsm_rlt(ConstMatrixView t, MatrixView b) {
  const i64 n = t.rows;
  for (i64 j = n - 1; j >= 0; --j) {
    double* cj = b.data + j * b.ld;
    for (i64 k = j + 1; k < n; ++k) {
      const double tkj = t(k, j);
      if (tkj == 0.0) continue;
      const double* ck = b.data + k * b.ld;
      for (i64 i = 0; i < b.rows; ++i) cj[i] -= tkj * ck[i];
    }
    const double djj = t(j, j);
    for (i64 i = 0; i < b.rows; ++i) cj[i] /= djj;
  }
}

// ----------------------------------------------------------- operand slab

/// One 64-byte-aligned allocation all benchmark operands are carved from,
/// each at a 64B boundary with a fixed 3-cache-line gap to its neighbor.
/// The operands' relative alignment is therefore a program constant: the
/// absolute rates of alignment-sensitive shapes (m=1024 trmm_r/trsm_r)
/// stop depending on heap luck.
class OperandSlab {
 public:
  explicit OperandSlab(std::size_t doubles) : cap_(doubles) {
    base_ = static_cast<double*>(
        std::aligned_alloc(64, ((cap_ * sizeof(double) + 63) / 64) * 64));
    if (base_ == nullptr) throw std::bad_alloc();
    std::memset(base_, 0, cap_ * sizeof(double));
  }
  OperandSlab(const OperandSlab&) = delete;
  OperandSlab& operator=(const OperandSlab&) = delete;
  ~OperandSlab() { std::free(base_); }

  MatrixView take(i64 m, i64 n) {
    double* p = base_ + used_;
    used_ += static_cast<std::size_t>(m) * static_cast<std::size_t>(n);
    used_ = (used_ + 7u) & ~std::size_t{7};  // next 64B boundary
    used_ += 24;                             // fixed 192B inter-operand gap
    if (used_ > cap_) {
      std::fprintf(stderr, "operand slab overflow\n");
      std::abort();
    }
    return {p, m, n, m};
  }

 private:
  double* base_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t used_ = 0;
};

// ------------------------------------------------------- timing machinery

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Runs `body` repeatedly until ~`target` seconds elapse (at least once)
/// and returns the best per-iteration time.
template <class F>
double time_best(F&& body, double target) {
  double best = 1e300;
  double total = 0.0;
  do {
    const double t0 = now_seconds();
    body();
    const double dt = now_seconds() - t0;
    best = std::min(best, dt);
    total += dt;
  } while (total < target);
  return best;
}

struct Result {
  std::string kernel;
  std::string variant;  ///< micro-kernel variant of the "new" column
  i64 m = 0;
  i64 n = 0;
  double seed_gflops = 0.0;
  double new_gflops = 0.0;
  [[nodiscard]] double speedup() const {
    return seed_gflops > 0.0 ? new_gflops / seed_gflops : 0.0;
  }
};

/// One point of the thread-scaling sweep: the packed kernel's GFLOP/s for
/// `kernel` at the given worker budget.
struct ScalePoint {
  std::string kernel;
  i64 m = 0;
  i64 n = 0;
  int threads = 0;
  double gflops = 0.0;
};

/// One fp32-lane row: the packed fp32 kernel against its packed fp64 twin
/// under the SAME variant and shape (both charge the fp64 closed-form
/// flop count, so the GF/s ratio is the per-operation rate gain the
/// mixed-precision Gram stage buys).
struct F32Result {
  std::string kernel;
  std::string variant;
  i64 m = 0;
  i64 n = 0;
  double fp64_gflops = 0.0;
  double fp32_gflops = 0.0;
  [[nodiscard]] double speedup() const {
    return fp64_gflops > 0.0 ? fp32_gflops / fp64_gflops : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  std::string json_path = "bench_out/bench_kernels.json";
  int threads = lin::parallel::thread_budget();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(7);
      if (json_path.empty()) {
        std::fprintf(stderr, "error: --json= requires a path\n");
        return 2;
      }
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 1) {
        std::fprintf(stderr, "error: --threads requires a positive count\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--json[=PATH]] [--quick] [--threads N]\n",
                   argv[0]);
      return 2;
    }
  }
  lin::parallel::set_thread_budget(threads);

  const std::vector<i64> ms =
      quick ? std::vector<i64>{1024, 16384}
            : std::vector<i64>{1024, 16384, 65536};
  const std::vector<i64> ns = {16, 64, 256};
  const double target = quick ? 0.05 : 0.25;

  // Every variant this host can execute, measured in the fixed dispatch
  // order; the CACQR_KERNEL-resolved variant is restored afterwards.
  const std::vector<lin::kernel::Variant> variants =
      lin::kernel::supported_variants();
  const lin::kernel::Variant entry_variant = lin::kernel::active_variant();

  std::vector<Result> results;
  std::vector<F32Result> f32_results;
  std::printf("threads=%d (host hardware threads: %d)\n", threads,
              lin::parallel::hardware_threads());
  std::printf("variants:");
  for (const auto v : variants) {
    std::printf(" %s", lin::kernel::variant_name(v));
  }
  std::printf(" (active: %s)\n",
              lin::kernel::variant_name(entry_variant));
  std::printf("%-10s %-8s %8s %5s %12s %12s %9s\n", "kernel", "variant",
              "m", "n", "seed GF/s", "new GF/s", "speedup");
  std::printf("(*_f32 rows compare lanes, not the seed: columns are packed "
              "fp64 GF/s, packed fp32 GF/s, fp32/fp64)\n");

  for (const i64 m : ms) {
    for (const i64 n : ns) {
      Rng rng(static_cast<u64>(m * 1000 + n));
      // Slab layout (fixed order = fixed relative alignment): A, B, the
      // big m x n work/output panels, then the small n x n operands.
      OperandSlab slab(4 * static_cast<std::size_t>(m) *
                           static_cast<std::size_t>(n) +
                       4 * static_cast<std::size_t>(n) *
                           static_cast<std::size_t>(n) +
                       8 * 32);
      MatrixView a = slab.take(m, n);
      MatrixView b = slab.take(m, n);
      MatrixView big = slab.take(m, n);   // gemm_nn output
      MatrixView work = slab.take(m, n);  // trmm/trsm in-place panel
      MatrixView t = slab.take(n, n);
      MatrixView xs = slab.take(n, n);
      MatrixView c = slab.take(n, n);
      MatrixView g = slab.take(n, n);
      lin::copy(lin::gaussian(rng, m, n), a);
      lin::copy(lin::gaussian(rng, m, n), b);
      {
        Matrix t0 = lin::spd_with_cond(rng, n, 10.0);
        lin::potrf(t0);
        lin::copy(t0, t);
      }
      lin::copy(lin::gaussian(rng, n, n), xs);

      // fp32-lane operands: narrowed images of the same A and B.  MatrixF
      // carries its own double-backed (8-byte-aligned) storage; the
      // fp32 kernels pack operands before touching them, so the slab's
      // alignment discipline is not needed here.
      lin::MatrixF af = lin::MatrixF::uninit(m, n);
      lin::MatrixF bf = lin::MatrixF::uninit(m, n);
      lin::narrow(a, af);
      lin::narrow(b, bf);
      lin::MatrixF cf(n, n);
      lin::MatrixF gf(n, n);

      // Seed loops are variant-independent: time them once per shape.
      const double flops_gemm = 2.0 * static_cast<double>(m) *
                                static_cast<double>(n) *
                                static_cast<double>(n);
      const double flops_tri = static_cast<double>(m) *
                               static_cast<double>(n) *
                               static_cast<double>(n + 1);
      const double ts_tn = time_best(
          [&] { seed_gemm_tn(1.0, a, b, c); }, target);
      const double ts_gram = time_best([&] { seed_gram(a, g); }, target);
      const double ts_nn = time_best(
          [&] { seed_gemm_nn(1.0, a, xs, big); }, target);
      const double ts_trmm = time_best(
          [&] {
            lin::copy(b, work);
            seed_trmm_rlt(t, work);
          },
          target);
      const double ts_trsm = time_best(
          [&] {
            lin::copy(b, work);
            seed_trsm_rlt(t, work);
          },
          target);

      for (const lin::kernel::Variant v : variants) {
        lin::kernel::set_kernel_variant(v);
        const char* vname = lin::kernel::variant_name(v);

        auto record = [&](const char* kernel, double flops, double t_seed,
                          double t_new) {
          Result r;
          r.kernel = kernel;
          r.variant = vname;
          r.m = m;
          r.n = n;
          r.seed_gflops = flops / t_seed * 1e-9;
          r.new_gflops = flops / t_new * 1e-9;
          results.push_back(r);
          std::printf("%-10s %-8s %8lld %5lld %12.2f %12.2f %8.2fx\n",
                      kernel, vname, static_cast<long long>(m),
                      static_cast<long long>(n), r.seed_gflops,
                      r.new_gflops, r.speedup());
          std::fflush(stdout);
        };

        double t_tn_f64 = 0.0;   // fp64 twins of the fp32-lane rows below
        double t_gram_f64 = 0.0;
        {  // C = A^T B: the c > 1 Gram path of CA-CQR (Algorithm 8 line 2).
          const double tn = time_best(
              [&] {
                lin::gemm(lin::Trans::T, lin::Trans::N, 1.0, a, b, 0.0, c);
              },
              target);
          t_tn_f64 = tn;
          record("gemm_tn", flops_gemm, ts_tn, tn);
        }
        {  // G = A^T A: the c == 1 Gram path (Algorithms 4/6).
          const double tn =
              time_best([&] { lin::gram(1.0, a, 0.0, g); }, target);
          t_gram_f64 = tn;
          record("gram", flops_tri, ts_gram, tn);
        }
        {  // C = A X: panel times a square n x n factor.
          const double tn =
              time_best([&] { lin::matmul(a, xs, big); }, target);
          record("gemm_nn", flops_gemm, ts_nn, tn);
        }
        {  // B = B L^T (right trmm): Q = A R^{-1} with R^{-1} = L^{-T}.
          const double tn = time_best(
              [&] {
                lin::copy(b, work);
                lin::trmm(lin::Side::Right, lin::Uplo::Lower, lin::Trans::T,
                          lin::Diag::NonUnit, 1.0, t, work);
              },
              target);
          record("trmm_r", flops_tri, ts_trmm, tn);
        }
        {  // Solve X L^T = B (right trsm): the least-squares backsolve.
          const double tn = time_best(
              [&] {
                lin::copy(b, work);
                lin::trsm(lin::Side::Right, lin::Uplo::Lower, lin::Trans::T,
                          lin::Diag::NonUnit, 1.0, t, work);
              },
              target);
          record("trsm_r", flops_tri, ts_trsm, tn);
        }

        // ---- the fp32 lane of the same variant: the two Gram-path
        // kernels the mixed-precision driver dispatches, measured against
        // the packed fp64 twins just timed (same shapes, same closed-form
        // flop counts, so the ratio is a pure per-operation rate gain).
        auto record_f32 = [&](const char* kernel, double flops,
                              double t_f64, double t_f32) {
          F32Result r;
          r.kernel = kernel;
          r.variant = vname;
          r.m = m;
          r.n = n;
          r.fp64_gflops = flops / t_f64 * 1e-9;
          r.fp32_gflops = flops / t_f32 * 1e-9;
          f32_results.push_back(r);
          std::printf("%-10s %-8s %8lld %5lld %12.2f %12.2f %8.2fx\n",
                      kernel, vname, static_cast<long long>(m),
                      static_cast<long long>(n), r.fp64_gflops,
                      r.fp32_gflops, r.speedup());
          std::fflush(stdout);
        };
        {
          const double tf = time_best(
              [&] {
                lin::gemm_f32(lin::Trans::T, lin::Trans::N, 1.0f, af, bf,
                              0.0f, cf);
              },
              target);
          record_f32("gemm_tn_f32", flops_gemm, t_tn_f64, tf);
        }
        {
          const double tf =
              time_best([&] { lin::gram_f32(1.0f, af, 0.0f, gf); }, target);
          record_f32("gram_f32", flops_tri, t_gram_f64, tf);
        }
      }
      lin::kernel::set_kernel_variant(entry_variant);
    }
  }

  // Thread-scaling sweep of the packed gemm paths at the tall-skinny
  // trajectory shape (m=16384, n=256), under the entry (CACQR_KERNEL)
  // variant: same kernels the acceptance gate tracks.  Run for the JSON
  // artifact so the perf trajectory records how the kernel scales on the
  // measuring host; budgets beyond the host's core count are still
  // measured (they show the oversubscription cliff).
  std::vector<ScalePoint> scaling;
  if (json) {
    const i64 sm = 16384;
    const i64 sn = 256;
    Rng rng(static_cast<u64>(sm * 1000 + sn));
    Matrix a = lin::gaussian(rng, sm, sn);
    Matrix b = lin::gaussian(rng, sm, sn);
    Matrix xs = lin::gaussian(rng, sn, sn);
    Matrix small(sn, sn);
    Matrix big(sm, sn);
    const double flops = 2.0 * static_cast<double>(sm) *
                         static_cast<double>(sn) * static_cast<double>(sn);
    std::printf("\nthread scaling (m=%lld, n=%lld, variant=%s)\n%-10s %8s %12s\n",
                static_cast<long long>(sm), static_cast<long long>(sn),
                lin::kernel::variant_name(entry_variant), "kernel",
                "threads", "GF/s");
    for (const int t : {1, 2, 4, 8}) {
      lin::parallel::set_thread_budget(t);
      const double t_nn = time_best([&] { lin::matmul(a, xs, big); }, target);
      const double t_tn = time_best(
          [&] {
            lin::gemm(lin::Trans::T, lin::Trans::N, 1.0, a, b, 0.0, small);
          },
          target);
      scaling.push_back({"gemm_nn", sm, sn, t, flops / t_nn * 1e-9});
      scaling.push_back({"gemm_tn", sm, sn, t, flops / t_tn * 1e-9});
      std::printf("%-10s %8d %12.2f\n%-10s %8d %12.2f\n", "gemm_nn", t,
                  flops / t_nn * 1e-9, "gemm_tn", t, flops / t_tn * 1e-9);
      std::fflush(stdout);
    }
    lin::parallel::set_thread_budget(threads);
  }

  if (json) {
    std::filesystem::path p(json_path);
    std::error_code ec;
    if (p.has_parent_path()) {
      std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream out(p);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   p.string().c_str());
      return 1;
    }
    const auto arena = lin::kernel::arena_stats();
    out << "{\n  \"bench\": \"bench_kernels\",\n  \"unit\": \"gflops\",\n"
        << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"hw_threads\": " << lin::parallel::hardware_threads() << ",\n"
        << "  \"kernel_variants\": [";
    for (std::size_t i = 0; i < variants.size(); ++i) {
      out << (i ? ", " : "") << "\""
          << lin::kernel::variant_name(variants[i]) << "\"";
    }
    out << "],\n"
        << "  \"active_variant\": \""
        << lin::kernel::variant_name(entry_variant) << "\",\n"
        << "  \"arena_high_water_bytes\": " << arena.high_water_bytes
        << ",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      out << "    {\"kernel\": \"" << r.kernel << "\", \"kernel_variant\": \""
          << r.variant << "\", \"m\": " << r.m << ", \"n\": " << r.n
          << ", \"seed_gflops\": " << r.seed_gflops
          << ", \"new_gflops\": " << r.new_gflops
          << ", \"speedup\": " << r.speedup() << "}"
          << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"f32_results\": [\n";
    for (std::size_t i = 0; i < f32_results.size(); ++i) {
      const F32Result& r = f32_results[i];
      out << "    {\"kernel\": \"" << r.kernel << "\", \"kernel_variant\": \""
          << r.variant << "\", \"m\": " << r.m << ", \"n\": " << r.n
          << ", \"fp64_gflops\": " << r.fp64_gflops
          << ", \"fp32_gflops\": " << r.fp32_gflops
          << ", \"speedup\": " << r.speedup() << "}"
          << (i + 1 < f32_results.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"thread_scaling\": [\n";
    for (std::size_t i = 0; i < scaling.size(); ++i) {
      const ScalePoint& s = scaling[i];
      out << "    {\"kernel\": \"" << s.kernel << "\", \"kernel_variant\": \""
          << lin::kernel::variant_name(entry_variant) << "\", \"m\": " << s.m
          << ", \"n\": " << s.n << ", \"threads\": " << s.threads
          << ", \"gflops\": " << s.gflops << "}"
          << (i + 1 < scaling.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    out.close();
    if (!out) {
      std::fprintf(stderr, "error: write to %s failed\n", p.string().c_str());
      return 1;
    }
    std::printf("json written to %s\n", p.string().c_str());
  }
  return 0;
}
