/// \file bench_kernels.cpp
/// \brief google-benchmark microbenches for the sequential kernel
///        substrate (the BLAS/LAPACK substitute): wall-clock throughput
///        of gemm/gram/trmm/trsm/potrf/trtri/geqrf and the sequential
///        CholeskyQR variants.

#include <benchmark/benchmark.h>

#include "cacqr/core/cqr.hpp"
#include "cacqr/core/shifted.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/factor.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/qr.hpp"

namespace {

using namespace cacqr;

void BM_Gemm(benchmark::State& state) {
  const i64 n = state.range(0);
  Rng rng(1);
  lin::Matrix a = lin::gaussian(rng, n, n);
  lin::Matrix b = lin::gaussian(rng, n, n);
  lin::Matrix c(n, n);
  for (auto _ : state) {
    lin::matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Gram(benchmark::State& state) {
  const i64 n = state.range(0);
  Rng rng(2);
  lin::Matrix a = lin::gaussian(rng, 8 * n, n);
  lin::Matrix g(n, n);
  for (auto _ : state) {
    lin::gram(1.0, a, 0.0, g);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(state.iterations() * 8 * n * n * n);
}
BENCHMARK(BM_Gram)->Arg(32)->Arg(64)->Arg(128);

void BM_Trmm(benchmark::State& state) {
  const i64 n = state.range(0);
  Rng rng(3);
  lin::Matrix t = lin::spd_with_cond(rng, n, 10.0);
  lin::potrf(t);
  lin::Matrix b = lin::gaussian(rng, 4 * n, n);
  for (auto _ : state) {
    lin::Matrix work = materialize(b.view());
    lin::trmm(lin::Side::Right, lin::Uplo::Lower, lin::Trans::T,
              lin::Diag::NonUnit, 1.0, t, work);
    benchmark::DoNotOptimize(work.data());
  }
}
BENCHMARK(BM_Trmm)->Arg(64)->Arg(128);

void BM_Trsm(benchmark::State& state) {
  const i64 n = state.range(0);
  Rng rng(4);
  lin::Matrix t = lin::spd_with_cond(rng, n, 10.0);
  lin::potrf(t);
  lin::Matrix b = lin::gaussian(rng, n, n);
  for (auto _ : state) {
    lin::Matrix work = materialize(b.view());
    lin::trsm(lin::Side::Left, lin::Uplo::Lower, lin::Trans::N,
              lin::Diag::NonUnit, 1.0, t, work);
    benchmark::DoNotOptimize(work.data());
  }
}
BENCHMARK(BM_Trsm)->Arg(64)->Arg(128);

void BM_Potrf(benchmark::State& state) {
  const i64 n = state.range(0);
  Rng rng(5);
  lin::Matrix a = lin::spd_with_cond(rng, n, 100.0);
  for (auto _ : state) {
    lin::Matrix work = materialize(a.view());
    lin::potrf(work);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n / 3);
}
BENCHMARK(BM_Potrf)->Arg(64)->Arg(128)->Arg(256);

void BM_TrtriLower(benchmark::State& state) {
  const i64 n = state.range(0);
  Rng rng(6);
  lin::Matrix a = lin::spd_with_cond(rng, n, 100.0);
  lin::potrf(a);
  for (auto _ : state) {
    lin::Matrix work = materialize(a.view());
    lin::trtri_lower(work);
    benchmark::DoNotOptimize(work.data());
  }
}
BENCHMARK(BM_TrtriLower)->Arg(64)->Arg(128)->Arg(256);

void BM_Geqrf(benchmark::State& state) {
  const i64 n = state.range(0);
  Rng rng(7);
  lin::Matrix a = lin::gaussian(rng, 8 * n, n);
  for (auto _ : state) {
    lin::Matrix work = materialize(a.view());
    auto tau = lin::geqrf(work);
    benchmark::DoNotOptimize(tau.data());
  }
}
BENCHMARK(BM_Geqrf)->Arg(32)->Arg(64)->Arg(128);

void BM_SequentialCqr2(benchmark::State& state) {
  const i64 n = state.range(0);
  Rng rng(8);
  lin::Matrix a = lin::with_cond(rng, 8 * n, n, 100.0);
  for (auto _ : state) {
    auto f = core::cqr2(a);
    benchmark::DoNotOptimize(f.q.data());
  }
}
BENCHMARK(BM_SequentialCqr2)->Arg(32)->Arg(64)->Arg(128);

void BM_ShiftedCqr3(benchmark::State& state) {
  const i64 n = state.range(0);
  Rng rng(9);
  lin::Matrix a = lin::with_cond(rng, 8 * n, n, 1e9);
  for (auto _ : state) {
    auto f = core::shifted_cqr3(a);
    benchmark::DoNotOptimize(f.q.data());
  }
}
BENCHMARK(BM_ShiftedCqr3)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
