/// \file bench_collectives.cpp
/// \brief google-benchmark microbenches for the message-passing runtime's
///        collectives on small thread-grids (wall-clock; the modeled
///        costs are covered by the table/figure benches).

#include <benchmark/benchmark.h>

#include "cacqr/rt/comm.hpp"

namespace {

using namespace cacqr;

void BM_Allreduce(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    rt::Runtime::run(p, [&](rt::Comm& c) {
      std::vector<double> v(n, 1.0);
      c.allreduce_sum(v);
      benchmark::DoNotOptimize(v.data());
    });
  }
}
BENCHMARK(BM_Allreduce)->Args({4, 1024})->Args({8, 1024})->Args({8, 16384});

void BM_Bcast(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    rt::Runtime::run(p, [&](rt::Comm& c) {
      std::vector<double> v(n, 1.0);
      c.bcast(v, 0);
      benchmark::DoNotOptimize(v.data());
    });
  }
}
BENCHMARK(BM_Bcast)->Args({4, 1024})->Args({8, 16384});

void BM_Allgather(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    rt::Runtime::run(p, [&](rt::Comm& c) {
      std::vector<double> mine(n, 1.0);
      std::vector<double> all(n * static_cast<std::size_t>(p));
      c.allgather(mine, all);
      benchmark::DoNotOptimize(all.data());
    });
  }
}
BENCHMARK(BM_Allgather)->Args({4, 1024})->Args({8, 4096});

void BM_RuntimeSpawn(benchmark::State& state) {
  // Thread-team launch overhead (the fixed cost of every SPMD section).
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    rt::Runtime::run(p, [](rt::Comm& c) { c.barrier(); });
  }
}
BENCHMARK(BM_RuntimeSpawn)->Arg(2)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
