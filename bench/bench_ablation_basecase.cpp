/// \file bench_ablation_basecase.cpp
/// \brief Ablation of the CFR3D base-case size n0 (paper Section II-D):
///        the recursion depth n/n0 trades synchronization (alpha, more
///        levels) against bandwidth (beta, bigger redundant base cases);
///        the paper picks n0 = n/P^(2/3) to minimize bandwidth.  Measured
///        at small scale, modeled at paper scale.

#include "common.hpp"
#include "cacqr/chol/cfr3d.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/model/costs.hpp"

int main() {
  using namespace cacqr;
  using dist::DistMatrix;

  // Real execution on a 2^3 cube.
  {
    const int g = 2;
    const i64 n = 64;
    lin::Matrix tall = lin::hashed_matrix(52, 4 * n, n);
    lin::Matrix spd(n, n);
    lin::gram(1.0, tall, 0.0, spd);
    for (i64 i = 0; i < n; ++i) spd(i, i) += double(n);

    TextTable t;
    t.header({"n0", "levels", "msgs", "words", "flops"});
    for (const i64 n0 : {i64{2}, i64{4}, i64{8}, i64{16}, i64{32}, i64{64}}) {
      auto per_rank = rt::Runtime::run(g * g * g, [&](rt::Comm& world) {
        grid::CubeGrid cube(world, g);
        auto da = DistMatrix::from_global_on_cube(spd, cube);
        (void)chol::cfr3d(da, cube, {.base_case = n0});
      });
      const auto mc = rt::max_counters(per_rank);
      const i64 eff = chol::effective_base_case(n, g, n0);
      t.row({std::to_string(eff), std::to_string(ilog2(n / eff)),
             std::to_string(mc.msgs), std::to_string(mc.words),
             std::to_string(mc.flops)});
    }
    std::cout << "Measured CFR3D(n=" << n << ") on a " << g << "^3 cube:\n";
    bench::emit("ablation_basecase_measured", t);
  }

  // Paper scale: n = 8192 on an 8^3 cube (P = 512), modeled.
  {
    const model::Machine s2 = model::stampede2();
    const double n = 8192, g = 8;
    TextTable t;
    t.header({"n0", "alpha", "beta", "gamma", "modeled ms"});
    for (double n0 = 16; n0 <= n; n0 *= 4) {
      const auto c = model::cost_cfr3d(n, g, n0);
      t.row({TextTable::num(n0, 6), TextTable::num(c.alpha, 5),
             TextTable::num(c.beta, 5), TextTable::num(c.gamma, 5),
             TextTable::num(c.time(s2) * 1e3, 4)});
    }
    std::cout << "Modeled CFR3D(n=8192) on an 8^3 cube (" << s2.name
              << "); the paper default n0 = n/P^(2/3) = "
              << TextTable::num(n / (g * g), 4) << ":\n";
    bench::emit("ablation_basecase_modeled", t);
  }
  return 0;
}
