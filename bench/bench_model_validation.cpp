/// \file bench_model_validation.cpp
/// \brief The model-to-implementation tie-in, run as a report: for a set
///        of real thread-grid executions, print measured alpha/beta/gamma
///        counters, the LogP-simulated time under each machine's
///        parameters, and the analytic model's prediction, with ratios.
///        This is the evidence that licenses the paper-scale figures.

#include "common.hpp"
#include "cacqr/baseline/pgeqrf_2d.hpp"
#include "cacqr/baseline/tsqr.hpp"
#include "cacqr/core/ca_cqr.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/model/costs.hpp"

namespace {

using namespace cacqr;
using dist::DistMatrix;

struct Row {
  std::string label;
  rt::CostCounters measured;
  double sim_time = 0.0;
  model::Cost modeled;
  double model_time = 0.0;
};

void print(TextTable& t, const Row& r) {
  t.row({r.label, std::to_string(r.measured.msgs),
         TextTable::num(r.modeled.alpha, 4),
         std::to_string(r.measured.words), TextTable::num(r.modeled.beta, 5),
         std::to_string(r.measured.flops),
         TextTable::num(r.modeled.gamma, 6),
         TextTable::num(r.sim_time * 1e3, 4),
         TextTable::num(r.model_time * 1e3, 4),
         TextTable::num(r.sim_time / r.model_time, 3)});
}

}  // namespace

int main() {
  const model::Machine s2 = model::stampede2();

  TextTable t;
  t.header({"configuration", "msgs", "model a", "words", "model b", "flops",
            "model g", "sim ms", "model ms", "time ratio"});

  // CA-CQR2 across grids.
  struct GridCase {
    int c, d;
    i64 m, n;
  };
  for (const auto& gc : {GridCase{1, 8, 512, 32}, GridCase{2, 2, 256, 32},
                         GridCase{2, 4, 512, 32}, GridCase{4, 4, 256, 16}}) {
    std::vector<rt::CostCounters> deltas(
        static_cast<std::size_t>(gc.c * gc.c * gc.d));
    auto per_rank = rt::Runtime::run(
        gc.c * gc.c * gc.d,
        [&](rt::Comm& world) {
          grid::TunableGrid g(world, gc.c, gc.d);
          auto da = DistMatrix::from_global_on_tunable(
              lin::hashed_matrix(31, gc.m, gc.n), g);
          const auto before = world.counters();
          (void)core::ca_cqr2(da, g);
          deltas[static_cast<std::size_t>(world.rank())] =
              world.counters() - before;
        },
        s2.rt_params());
    Row r;
    r.label = "CA-CQR2 " + std::to_string(gc.m) + "x" + std::to_string(gc.n) +
              " c=" + std::to_string(gc.c) + " d=" + std::to_string(gc.d);
    r.measured = rt::max_counters(deltas);
    r.sim_time = rt::modeled_time(per_rank);
    r.modeled = model::cost_ca_cqr2(double(gc.m), double(gc.n), gc.c, gc.d);
    r.model_time = r.modeled.time(s2);
    print(t, r);
  }

  // ScaLAPACK-style baseline.
  {
    const int pr = 4, pc = 2;
    const i64 b = 4, m = 256, n = 32;
    std::vector<rt::CostCounters> deltas(static_cast<std::size_t>(pr * pc));
    auto per_rank = rt::Runtime::run(
        pr * pc,
        [&](rt::Comm& world) {
          baseline::ProcGrid2d g(world, pr, pc);
          auto da = baseline::BlockCyclicMatrix::from_global(
              lin::hashed_matrix(37, m, n), b, g);
          const auto before = world.counters();
          (void)baseline::pgeqrf_2d(da, g, {.normalize_signs = false});
          deltas[static_cast<std::size_t>(world.rank())] =
              world.counters() - before;
        },
        s2.rt_params());
    Row r;
    r.label = "PGEQRF 256x32 pr=4 pc=2 b=4";
    r.measured = rt::max_counters(deltas);
    r.sim_time = rt::modeled_time(per_rank);
    r.modeled = model::cost_pgeqrf_2d(double(m), double(n), pr, pc, double(b));
    r.model_time = r.modeled.time(s2);
    print(t, r);
  }

  // TSQR baseline.
  {
    const int p = 8;
    const i64 m = 64 * p, n = 16;
    std::vector<rt::CostCounters> deltas(static_cast<std::size_t>(p));
    auto per_rank = rt::Runtime::run(
        p,
        [&](rt::Comm& world) {
          auto da = DistMatrix::from_global(lin::hashed_matrix(41, m, n), p,
                                            1, world.rank(), 0);
          const auto before = world.counters();
          (void)baseline::tsqr(da, world);
          deltas[static_cast<std::size_t>(world.rank())] =
              world.counters() - before;
        },
        s2.rt_params());
    Row r;
    r.label = "TSQR 512x16 P=8";
    r.measured = rt::max_counters(deltas);
    r.sim_time = rt::modeled_time(per_rank);
    r.modeled = model::cost_tsqr(double(m), double(n), p);
    r.model_time = r.modeled.time(s2);
    print(t, r);
  }

  cacqr::bench::emit("model_validation", t);
  return 0;
}
