/// \file bench_model_validation.cpp
/// \brief The model-to-implementation tie-in, run as a report: for a set
///        of real executions, print the measured alpha/beta/gamma
///        counters next to the analytic model's, the LogP-simulated
///        clock under the target machine's parameters, and the genuine
///        wall clock of the run.  This is the evidence that licenses the
///        paper-scale figures.
///
/// Usage: bench_model_validation [--transport=modeled|shm|mpi]
///                               [--json[=PATH]]
///   --transport  backend for the instrumented runs (default: the
///                CACQR_TRANSPORT selection).  The counters and the
///                modeled clock are backend-independent; "wall ms" is
///                only a model-vs-reality comparison under the process
///                backends, where ranks occupy real execution streams.
///   --json       write the versioned artifact (schema
///                cacqr.model_validation.v1; default PATH:
///                bench_out/model_validation.json).  Always written --
///                the flag only overrides the path.
///
/// Column honesty: "clock ms" is the LogP *simulation* of the measured
/// counters under the target machine (it used to print as "sim ms",
/// which read as a measurement); "model ms" is the closed-form analytic
/// prediction; "wall ms" is the only stopwatch number.

#include <cstdio>
#include <string>

#include "common.hpp"
#include "cacqr/baseline/pgeqrf_2d.hpp"
#include "cacqr/baseline/tsqr.hpp"
#include "cacqr/core/ca_cqr.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/model/costs.hpp"
#include "cacqr/model/validation.hpp"
#include "cacqr/obs/trace.hpp"
#include "cacqr/support/cli.hpp"

namespace {

using namespace cacqr;
using dist::DistMatrix;

void print(TextTable& t, const model::ValidationRow& r) {
  t.row({r.label, std::to_string(r.measured.msgs),
         TextTable::num(r.analytic.alpha, 4),
         std::to_string(r.measured.words),
         TextTable::num(r.analytic.beta, 5),
         std::to_string(r.measured.flops),
         TextTable::num(r.analytic.gamma, 6),
         TextTable::num(r.modeled_clock_s * 1e3, 4),
         TextTable::num(r.analytic_s * 1e3, 4),
         TextTable::num(r.modeled_clock_s / r.analytic_s, 3),
         TextTable::num(r.wall_s * 1e3, 4)});
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  std::optional<rt::TransportKind> transport;
  if (args.has("transport")) {
    const std::string name = args.get("transport", "");
    if (name == "modeled") {
      transport = rt::TransportKind::modeled;
    } else if (name == "shm") {
      transport = rt::TransportKind::shm;
    } else if (name == "mpi") {
      transport = rt::TransportKind::mpi;
    } else {
      std::fprintf(stderr,
                   "error: --transport=%s (valid: modeled | shm | mpi)\n",
                   name.c_str());
      return 2;
    }
    if (!rt::transport_available(*transport)) {
      std::fprintf(stderr,
                   "error: transport '%s' is not available in this "
                   "build/platform\n",
                   name.c_str());
      return 2;
    }
  }
  const rt::TransportKind active =
      transport ? *transport : rt::default_transport();

  const model::Machine s2 = model::stampede2();
  std::vector<model::ValidationRow> rows;

  TextTable t;
  t.header({"configuration", "msgs", "model a", "words", "model b", "flops",
            "model g", "clock ms", "model ms", "clock ratio", "wall ms"});

  // CA-CQR2 across grids.
  struct GridCase {
    int c, d;
    i64 m, n;
  };
  for (const auto& gc : {GridCase{1, 8, 512, 32}, GridCase{2, 2, 256, 32},
                         GridCase{2, 4, 512, 32}, GridCase{4, 4, 256, 16}}) {
    rows.push_back(model::run_validation(
        "CA-CQR2 " + std::to_string(gc.m) + "x" + std::to_string(gc.n) +
            " c=" + std::to_string(gc.c) + " d=" + std::to_string(gc.d),
        gc.c * gc.c * gc.d, s2,
        [&](rt::Comm& world) {
          grid::TunableGrid g(world, gc.c, gc.d);
          auto da = DistMatrix::from_global_on_tunable(
              lin::hashed_matrix(31, gc.m, gc.n), g);
          model::MeasuredSection section(world);
          (void)core::ca_cqr2(da, g);
        },
        model::cost_ca_cqr2(double(gc.m), double(gc.n), gc.c, gc.d),
        transport));
    print(t, rows.back());
  }

  // ScaLAPACK-style baseline.
  {
    const int pr = 4, pc = 2;
    const i64 b = 4, m = 256, n = 32;
    rows.push_back(model::run_validation(
        "PGEQRF 256x32 pr=4 pc=2 b=4", pr * pc, s2,
        [&](rt::Comm& world) {
          baseline::ProcGrid2d g(world, pr, pc);
          auto da = baseline::BlockCyclicMatrix::from_global(
              lin::hashed_matrix(37, m, n), b, g);
          model::MeasuredSection section(world);
          (void)baseline::pgeqrf_2d(da, g, {.normalize_signs = false});
        },
        model::cost_pgeqrf_2d(double(m), double(n), pr, pc, double(b)),
        transport));
    print(t, rows.back());
  }

  // TSQR baseline.
  {
    const int p = 8;
    const i64 m = 64 * p, n = 16;
    rows.push_back(model::run_validation(
        "TSQR 512x16 P=8", p, s2,
        [&](rt::Comm& world) {
          auto da = DistMatrix::from_global(lin::hashed_matrix(41, m, n), p,
                                            1, world.rank(), 0);
          model::MeasuredSection section(world);
          (void)baseline::tsqr(da, world);
        },
        model::cost_tsqr(double(m), double(n), p), transport));
    print(t, rows.back());
  }

  cacqr::bench::emit("model_validation", t);
  std::printf("transport: %s (counters and clock are backend-independent; "
              "wall ms is a real measurement)\n",
              rt::transport_name(active));
  if (obs::trace_on()) {
    std::printf("tracing: per-rank spans -> %s (merge/inspect with "
                "cacqr-trace; docs/observability.md)\n",
                obs::trace_dir().c_str());
  }

  std::string json_path = cacqr::bench::out_dir() + "/model_validation.json";
  if (args.has("json")) {
    const std::string v = args.get("json", "");
    if (!v.empty() && v != "true") json_path = v;  // bare --json keeps default
  }
  const support::Json doc = model::validation_to_json(rows, s2, active);
  if (support::write_json_file(json_path, doc)) {
    std::printf("json written to %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
