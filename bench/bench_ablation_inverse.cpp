/// \file bench_ablation_inverse.cpp
/// \brief Ablation of the paper's InverseDepth knob (Section III-A): at
///        small scale, measured counters of real runs per depth; at paper
///        scale, the modeled flop/synchronization tradeoff ("...can lower
///        the computational cost by nearly a factor of 2 ... incurring
///        close to a 2x increase in synchronization cost").

#include "common.hpp"
#include "cacqr/core/ca_cqr.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/model/costs.hpp"

int main() {
  using namespace cacqr;
  using dist::DistMatrix;

  // Real execution: c=2, d=4 grid, depth 0..2.
  {
    const int c = 2, d = 4;
    const i64 m = 128, n = 32;
    TextTable t;
    t.header({"inverse_depth", "msgs", "words", "flops",
              "flops vs depth0", "msgs vs depth0"});
    i64 f0 = 0, m0 = 0;
    for (int depth = 0; depth <= 2; ++depth) {
      auto per_rank = rt::Runtime::run(c * c * d, [&](rt::Comm& world) {
        grid::TunableGrid g(world, c, d);
        auto da = DistMatrix::from_global_on_tunable(
            lin::hashed_matrix(51, m, n), g);
        (void)core::ca_cqr2(da, g, {.base_case = 4, .inverse_depth = depth});
      });
      const auto mc = rt::max_counters(per_rank);
      if (depth == 0) {
        f0 = mc.flops;
        m0 = mc.msgs;
      }
      t.row({std::to_string(depth), std::to_string(mc.msgs),
             std::to_string(mc.words), std::to_string(mc.flops),
             TextTable::num(double(mc.flops) / double(f0), 3),
             TextTable::num(double(mc.msgs) / double(m0), 3)});
    }
    std::cout << "Measured (real run, " << m << "x" << n << ", c=" << c
              << " d=" << d << "):\n";
    bench::emit("ablation_inverse_measured", t);
  }

  // Paper scale: Stampede2 strong-scaling point, model.
  {
    const model::Machine s2 = model::stampede2();
    const double m = 8388608, n = 2048;
    const i64 ranks = 1024 * s2.ranks_per_node;
    const i64 c = 4, d = ranks / 16;
    TextTable t;
    t.header({"inverse_depth", "alpha", "beta", "gamma", "modeled s",
              "GF/s/node"});
    for (int depth = 0; depth <= 3; ++depth) {
      const auto cost = model::cost_ca_cqr2(m, n, double(c), double(d), 0.0,
                                            depth);
      const double secs = cost.time(s2);
      t.row({std::to_string(depth), TextTable::num(cost.alpha, 5),
             TextTable::num(cost.beta, 5), TextTable::num(cost.gamma, 5),
             TextTable::num(secs, 4),
             TextTable::num(model::gflops_per_node(m, n, secs, 1024.0))});
    }
    std::cout << "Modeled at 1024 Stampede2 nodes, " << i64(m) << "x"
              << i64(n) << ", c=" << c << ":\n";
    bench::emit("ablation_inverse_modeled", t);
  }
  return 0;
}
