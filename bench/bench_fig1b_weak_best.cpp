/// \file bench_fig1b_weak_best.cpp
/// \brief Figure 1(b): the headline weak-scaling summary on Stampede2.
///        Matrices (131072 a c) x (1024 b d) for the four legend shape
///        families (c,d) in {(8,1),(4,2),(2,4),(1,8)}; nodes = 8 a b^2 so
///        mn^2 scales linearly with node count.  Paper result: CA-CQR2
///        1.1x-1.9x faster at the largest step.

#include "common.hpp"

int main() {
  using namespace cacqr;
  const model::Machine s2 = model::stampede2();
  const std::vector<std::pair<i64, i64>> families = {
      {8, 1}, {4, 2}, {2, 4}, {1, 8}};

  for (const auto& [fc, fd] : families) {
    TextTable t;
    t.header({"(a,b)", "nodes", "m", "n", "ScaLAPACK(best)", "CACQR2(best)",
              "best c", "ratio"});
    for (const auto& [a, b] : bench::weak_steps()) {
      const i64 nodes = 8 * a * b * b;
      const i64 ranks = nodes * s2.ranks_per_node;
      const double m = 131072.0 * double(a) * double(fc);
      const double n = 1024.0 * double(b) * double(fd);
      if (m < n) continue;
      const auto sl = model::best_pgeqrf(m, n, ranks, s2);
      const auto ca = model::best_cacqr2(m, n, ranks, s2);
      const double sl_gf =
          model::gflops_per_node(m, n, sl.seconds, double(nodes));
      const double ca_gf =
          model::gflops_per_node(m, n, ca.seconds, double(nodes));
      t.row({"(" + std::to_string(a) + "," + std::to_string(b) + ")",
             std::to_string(nodes), std::to_string(i64(m)),
             std::to_string(i64(n)), TextTable::num(sl_gf),
             TextTable::num(ca_gf), std::to_string(ca.c),
             TextTable::num(ca_gf / sl_gf, 3)});
    }
    bench::emit("fig1b_weak_best_s2_c" + std::to_string(fc) + "_d" +
                    std::to_string(fd),
                t);
  }
  return 0;
}
