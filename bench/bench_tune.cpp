/// \file bench_tune.cpp
/// \brief Machine calibration harness for the tune/ autotuning planner:
///        runs the calibrator, prints the fitted profile, and reports
///        what the planner picks across a (m, n, P) grid of problem
///        shapes -- the artifact CI uploads next to the perf JSONs.
///
/// The fitted alpha/beta/gamma are wall-clock measurements of THIS host
/// (kernel sweeps + timed runtime collectives, see tune/calibrate.hpp),
/// so the same-host comparison rule of docs/benchmarks.md applies to
/// them like to every other committed number.
///
/// Usage: bench_tune [--json[=PATH]] [--quick] [--save]
///   --json   write the calibration profile + plan table as JSON
///            (default PATH: bench_out/bench_tune.json).
///   --quick  smaller microbenchmarks, fewer repetitions (CI smoke).
///   --save   additionally persist the profile into the CACQR_TUNE_DIR
///            plan cache (no-op when the env var is unset), so later
///            factorize(plan_mode=...) runs and other processes can
///            reuse this calibration via tune::PlanCache::load_profile.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "cacqr/lin/kernel.hpp"
#include "cacqr/support/timer.hpp"
#include "cacqr/tune/cache.hpp"
#include "cacqr/tune/calibrate.hpp"

namespace {

using namespace cacqr;

struct PlanRow {
  tune::ProblemKey key;
  tune::Plan plan;
  tune::Plan runner_up;
  bool has_runner_up = false;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  bool save = false;
  std::string json_path = "bench_out/bench_tune.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(7);
      if (json_path.empty()) {
        std::fprintf(stderr, "error: --json= requires a path\n");
        return 2;
      }
    } else if (arg == "--save") {
      save = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json[=PATH]] [--quick] [--save]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("bench_tune: calibrating this host%s...\n",
              quick ? " (quick)" : "");
  WallTimer timer;
  const tune::MachineProfile profile =
      tune::calibrate({.quick = quick, .reps = quick ? 2 : 3, .ranks = 4});
  const double calibrate_seconds = timer.seconds();

  std::printf("\nhost fingerprint : %s\n", profile.host.c_str());
  std::printf("plan fingerprint : %s\n", profile.fingerprint().c_str());
  std::printf("calibration time : %.2f s\n", calibrate_seconds);
  std::printf("fitted alpha     : %.3e s/message\n", profile.machine.alpha_s);
  std::printf("fitted beta      : %.3e s/word (%.2f GB/s effective)\n",
              profile.machine.beta_s, 8.0 / profile.machine.beta_s / 1e9);
  std::printf("fitted gamma     : %.3e s/flop (%.2f GF/s sustained)\n",
              profile.machine.gamma_s, 1.0 / profile.machine.gamma_s / 1e9);
  std::printf("flops-per-word   : %.1f\n", profile.machine.flops_per_word());
  std::printf("kernel variant   : %s (fastest calibrated; dispatch decides "
              "at run time)\n",
              profile.kernel_variant.c_str());

  std::printf("\nvariant table (per-thread):\n");
  std::printf("  %-8s %14s %12s %s\n", "variant", "gamma (s/flop)",
              "peak GF/s", "scaling");
  for (const tune::VariantCalibration& v : profile.variants) {
    std::printf("  %-8s %14.3e %12.2f ", v.variant.c_str(), v.gamma_s,
                v.peak_gflops);
    for (const tune::ThreadScaling& s : v.scaling) {
      std::printf(" %dT=%.2fx", s.threads, s.speedup);
    }
    std::printf("\n");
  }

  std::printf("\nkernel table (per-thread):\n");
  std::printf("  %-10s %-8s %8s %6s %6s %10s\n", "kernel", "variant", "m",
              "n", "k", "GF/s");
  for (const tune::KernelSample& s : profile.kernels) {
    std::printf("  %-10s %-8s %8lld %6lld %6lld %10.2f\n", s.kernel.c_str(),
                s.variant.c_str(), static_cast<long long>(s.m),
                static_cast<long long>(s.n), static_cast<long long>(s.k),
                s.gflops);
  }
  std::printf("thread scaling:");
  for (const tune::ThreadScaling& s : profile.scaling) {
    std::printf("  %dT=%.2fx", s.threads, s.speedup);
  }
  std::printf("\n");

  // What the planner would pick: the shapes bench_cacqr sweeps plus a
  // few paper-like extremes, at the rank counts the runtime can host.
  const std::vector<tune::ProblemKey> keys =
      quick ? std::vector<tune::ProblemKey>{{2048, 64, 4, 1},
                                            {2048, 64, 8, 1}}
            : std::vector<tune::ProblemKey>{
                  {8192, 128, 4, 1},  {8192, 128, 8, 1},
                  {16384, 256, 8, 1}, {i64{1} << 20, 64, 8, 1},
                  {4096, 1024, 8, 1}, {16384, 256, 16, 1}};
  const tune::Planner planner(profile);
  std::vector<PlanRow> rows;
  std::printf(
      "\nplanned configurations (model scores on this profile, variant=%s):\n",
      lin::kernel::variant_name(lin::kernel::active_variant()));
  std::printf("  %-22s %-10s %-8s %14s %16s\n", "problem", "algo", "grid",
              "predicted_s", "runner_up");
  for (const tune::ProblemKey& key : keys) {
    const std::vector<tune::Plan> cands = planner.candidates(key);
    if (cands.empty()) continue;
    PlanRow row;
    row.key = key;
    row.plan = cands[0];
    if (cands.size() > 1) {
      row.runner_up = cands[1];
      row.has_runner_up = true;
    }
    rows.push_back(row);
    const std::string runner_up_tag =
        row.has_runner_up ? row.runner_up.algo + ":" + row.runner_up.grid()
                          : std::string("-");
    std::printf("  %-22s %-10s %-8s %14.6f %16s\n", key.text().c_str(),
                row.plan.algo.c_str(), row.plan.grid().c_str(),
                row.plan.predicted_seconds, runner_up_tag.c_str());
  }

  if (save) {
    const tune::PlanCache cache = tune::PlanCache::from_env();
    if (cache.enabled()) {
      cache.store_profile(profile);
      std::printf("\nprofile saved to %s\n",
                  cache.profile_path(profile.host).c_str());
    } else {
      std::printf("\n--save: CACQR_TUNE_DIR is unset; nothing persisted\n");
    }
  }

  if (json) {
    support::Json doc = support::Json::object();
    doc.set("bench", "bench_tune");
    doc.set("quick", quick);
    doc.set("calibrate_seconds", calibrate_seconds);
    doc.set("fingerprint", profile.fingerprint());
    doc.set("profile", profile.to_json());
    support::Json plans = support::Json::array();
    for (const PlanRow& row : rows) {
      support::Json e = support::Json::object();
      e.set("problem", row.key.text());
      e.set("m", row.key.m);
      e.set("n", row.key.n);
      e.set("p", row.key.p);
      e.set("threads", row.key.threads);
      e.set("plan", row.plan.to_json());
      if (row.has_runner_up) e.set("runner_up", row.runner_up.to_json());
      plans.push_back(std::move(e));
    }
    doc.set("plans", std::move(plans));

    std::filesystem::path p(json_path);
    std::error_code ec;
    if (p.has_parent_path()) {
      std::filesystem::create_directories(p.parent_path(), ec);
    }
    if (!support::write_json_file(p.string(), doc)) {
      std::fprintf(stderr, "error: cannot write %s\n", p.string().c_str());
      return 1;
    }
    std::printf("json written to %s\n", p.string().c_str());
  }
  return 0;
}
