/// \file bench_cacqr.cpp
/// \brief End-to-end wall-clock trajectory of the distributed algorithms:
///        1D-CholeskyQR, CA-CholeskyQR2, and the PGEQRF baseline over a
///        (m, n, grid, threads_per_rank) sweep.
///
/// Where bench_kernels measures isolated level-3 kernels, this harness
/// times whole factorizations through the SPMD runtime -- local packed
/// kernels, the threaded dist/ local stages, and the collectives between
/// them -- so the perf trajectory records whether kernel- and dist-level
/// threading pays off at the algorithm level (the CAQR-style interleaving
/// of local work and communication the paper's schedules rely on).
///
/// Comparison rule (see docs/benchmarks.md): wall-clock numbers are only
/// comparable within one host.  To validate a speedup, rebuild the
/// previous commit on the same machine and run this harness from both
/// builds; do NOT diff against a committed JSON from another host.
///
/// Usage: bench_cacqr [--json[=PATH]] [--quick] [--threads-list=T1,T2,...]
///                    [--plan-mode=M1,M2,...]
///   --json          additionally write machine-readable results (default
///                   PATH: bench_out/bench_cacqr.json) -- the artifact CI
///                   uploads and PRs commit at perf/bench_cacqr.json.
///   --quick         one small shape / fewer repetitions (CI smoke mode).
///   --threads-list  per-rank worker budgets to sweep.  The default is
///                   hw_threads-aware: {1, 2, 4} ({1, 4} in quick mode)
///                   filtered to budgets the host can actually run in
///                   parallel, so a 1-hardware-thread container measures
///                   only threads=1 instead of silently recording
///                   oversubscription.  An explicit list is taken as-is.
///   --plan-mode     which core::factorize planning policies the driver
///                   sweep measures (subset of heuristic,model,measured;
///                   default heuristic,model).  These rows time the WHOLE
///                   factorize driver -- padding, distribution, the
///                   factorization, and the final gathers -- under each
///                   policy, so the trajectory records heuristic-vs-
///                   planned wins.  model/measured calibrate this host
///                   once (quick) at startup; measured additionally pays
///                   its trial runs in the warmup rep only (the plan memo
///                   serves the timed reps).
///
/// Reported per point (each point is measured twice, overlap off then on,
/// via rt::set_overlap_enabled -- the CACQR_OVERLAP runtime toggle):
///   seconds      best-of-reps wall time with overlap OFF, factorization
///                call alone -- grid construction and data distribution
///                happen outside the timed window -- max over ranks
///                (barrier-fenced inside one Runtime::run, so thread pools
///                and rank threads are warm);
///   seconds_ovl  the same with communication/computation overlap ON;
///   gflops[_ovl] 2 m n^2 - 2 n^3 / 3 (the Householder QR flop count)
///                divided by the matching seconds -- a useful-work rate,
///                comparable across algorithms that do different amounts
///                of raw arithmetic;
///   msgs/words/flops  max-over-ranks modeled cost counters for ONE
///                factorization (deterministic: independent of threading
///                AND of overlap -- the harness errors out if the two
///                modes ever disagree).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cacqr/baseline/pgeqrf_2d.hpp"
#include "cacqr/core/ca_cqr.hpp"
#include "cacqr/core/cqr_1d.hpp"
#include "cacqr/core/factorize.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/kernel.hpp"
#include "cacqr/lin/parallel.hpp"
#include "cacqr/tune/calibrate.hpp"

namespace {

using namespace cacqr;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// One sweep point: which algorithm on which process grid.
struct Config {
  std::string algo;  ///< "cqr_1d" | "ca_cqr" | "pgeqrf_2d"
  int p = 0;         ///< total ranks
  int c = 0, d = 0;  ///< ca_cqr tunable grid
  int pr = 0, pc = 0;
  i64 block = 0;     ///< pgeqrf_2d grid / panel width

  [[nodiscard]] std::string grid() const {
    if (algo == "cqr_1d") return "p" + std::to_string(p);
    if (algo == "ca_cqr") {
      return "c" + std::to_string(c) + "d" + std::to_string(d);
    }
    return std::to_string(pr) + "x" + std::to_string(pc) + "b" +
           std::to_string(block);
  }

  [[nodiscard]] bool fits(i64 m, i64 n) const {
    if (algo == "cqr_1d") return m % p == 0;
    if (algo == "ca_cqr") {
      return m % d == 0 && n % c == 0 && n >= i64{c} * c;
    }
    // pgeqrf_2d also distributes the n x n R over the same grid, so n
    // must contain full block cycles of BOTH grid extents.
    return m % (block * pr) == 0 && n % (block * pr) == 0 &&
           n % (block * pc) == 0;
  }
};

struct Point {
  std::string algo;
  std::string grid;
  std::string precision;       ///< Gram-stage precision of this row
  std::string kernel_variant;  ///< micro-kernel variant dispatched
  i64 m = 0;
  i64 n = 0;
  int p = 0;
  int threads = 0;
  double seconds = 0.0;          ///< overlap off
  double gflops = 0.0;           ///< overlap off
  double seconds_overlap = 0.0;  ///< overlap on
  double gflops_overlap = 0.0;   ///< overlap on
  i64 msgs = 0;
  i64 words = 0;
  i64 flops = 0;
};

/// One measured mode: best wall time + max-over-ranks cost delta.
struct ModeResult {
  double seconds = 0.0;
  rt::CostCounters cost;
};

/// Times `reps` factorizations inside ONE Runtime::run (rank threads and
/// per-rank worker pools stay warm across repetitions, matching how a
/// long-lived job behaves).  `setup(world, a)` builds the grid and
/// distributes the input OUTSIDE the timed region and returns the
/// factorization closure; only that closure is inside the barrier fences,
/// so `seconds` and the counter deltas cover the factorization alone.
/// Returns the best barrier-to-barrier wall time and the max-over-ranks
/// cost delta of a single factorization, with overlap set as requested
/// for the whole run.
template <class Setup>
ModeResult measure_mode(const Config& cfg, i64 m, i64 n, int threads,
                        int reps, bool overlap, const Setup& setup) {
  const bool prev_overlap = rt::overlap_enabled();
  rt::set_overlap_enabled(overlap);
  std::vector<double> per_rank_best(static_cast<std::size_t>(cfg.p), 1e300);
  std::vector<rt::CostCounters> per_rank_cost(
      static_cast<std::size_t>(cfg.p));
  rt::Runtime::run(
      cfg.p,
      [&](rt::Comm& world) {
        const lin::Matrix a = lin::hashed_matrix(1789, m, n);
        const std::function<void()> factor = setup(world, a);
        for (int rep = 0; rep <= reps; ++rep) {
          world.barrier();
          const rt::CostCounters before = world.counters();
          const double t0 = now_seconds();
          factor();
          // Snapshot the cost delta BEFORE the fencing barrier: barrier()
          // itself charges ceil(lg P) messages that are measurement
          // scaffolding, not part of the factorization.
          const rt::CostCounters after = world.counters();
          world.barrier();
          const double dt = now_seconds() - t0;
          auto& best = per_rank_best[static_cast<std::size_t>(world.rank())];
          // rep 0 is the warmup: pools spawn, arenas grow.
          if (rep > 0) best = std::min(best, dt);
          per_rank_cost[static_cast<std::size_t>(world.rank())] =
              after - before;
        }
      },
      rt::Machine::counting(), threads);
  rt::set_overlap_enabled(prev_overlap);

  ModeResult out;
  out.seconds = *std::max_element(per_rank_best.begin(), per_rank_best.end());
  out.cost = rt::max_counters(per_rank_cost);
  return out;
}

/// Measures one sweep point in both overlap modes and cross-checks that
/// the raw cost counters agree (they must: overlap only reorders local
/// work).  Exits nonzero on disagreement -- that would mean the request
/// engine charges differently from the blocking schedules.
template <class Setup>
Point measure(const Config& cfg, i64 m, i64 n, int threads, int reps,
              const Setup& setup) {
  const ModeResult off = measure_mode(cfg, m, n, threads, reps, false, setup);
  const ModeResult on = measure_mode(cfg, m, n, threads, reps, true, setup);
  if (off.cost.msgs != on.cost.msgs || off.cost.words != on.cost.words ||
      off.cost.flops != on.cost.flops) {
    std::fprintf(stderr,
                 "error: overlap changed the cost counters (%s %lldx%lld): "
                 "msgs %lld vs %lld, words %lld vs %lld, flops %lld vs %lld\n",
                 cfg.algo.c_str(), static_cast<long long>(m),
                 static_cast<long long>(n),
                 static_cast<long long>(off.cost.msgs),
                 static_cast<long long>(on.cost.msgs),
                 static_cast<long long>(off.cost.words),
                 static_cast<long long>(on.cost.words),
                 static_cast<long long>(off.cost.flops),
                 static_cast<long long>(on.cost.flops));
    std::exit(1);
  }

  Point out;
  out.algo = cfg.algo;
  out.grid = cfg.grid();
  out.kernel_variant =
      lin::kernel::variant_name(lin::kernel::active_variant());
  out.m = m;
  out.n = n;
  out.p = cfg.p;
  out.threads = threads;
  out.seconds = off.seconds;
  out.seconds_overlap = on.seconds;
  const double dn = static_cast<double>(n);
  const double qr_flops =
      2.0 * static_cast<double>(m) * dn * dn - 2.0 * dn * dn * dn / 3.0;
  out.gflops = qr_flops / out.seconds * 1e-9;
  out.gflops_overlap = qr_flops / out.seconds_overlap * 1e-9;
  out.msgs = off.cost.msgs;
  out.words = off.cost.words;
  out.flops = off.cost.flops;
  return out;
}

/// One row of the factorize-driver plan sweep.
struct PlanPoint {
  std::string plan_mode;  ///< "heuristic" | "model" | "measured"
  std::string algo;       ///< variant the policy picked
  std::string grid;
  std::string source;     ///< plan provenance ("heuristic"/"model"/...)
  std::string precision;       ///< requested Gram-stage precision
  std::string kernel_variant;  ///< variant the factorization dispatched to
  i64 m = 0;
  i64 n = 0;
  int p = 0;
  int threads = 0;
  double seconds = 0.0;    ///< whole factorize() call, best-of-reps
  double gflops = 0.0;
  double predicted = 0.0;  ///< the planner's modeled seconds (0: heuristic)
};

/// Times the whole factorize driver under one planning policy.  Unlike
/// measure_mode, pad/distribute/gather are INSIDE the window -- the
/// driver is the product surface the planner optimizes.  Overlap stays
/// off: plan policies are compared under one fixed schedule.
PlanPoint measure_factorize(i64 m, i64 n, int p, int threads, int reps,
                            core::PlanMode mode, const char* mode_name,
                            Precision precision,
                            const tune::MachineProfile* profile) {
  const bool prev_overlap = rt::overlap_enabled();
  rt::set_overlap_enabled(false);
  std::vector<double> per_rank_best(static_cast<std::size_t>(p), 1e300);
  PlanPoint out;
  rt::Runtime::run(
      p,
      [&](rt::Comm& world) {
        const lin::Matrix a = lin::hashed_matrix(1789, m, n);
        core::FactorizeOptions opts;
        opts.plan_mode = mode;
        opts.precision = precision;
        opts.profile = profile;
        for (int rep = 0; rep <= reps; ++rep) {
          world.barrier();
          const double t0 = now_seconds();
          const core::FactorizeResult res = core::factorize(a, world, opts);
          world.barrier();
          const double dt = now_seconds() - t0;
          auto& best = per_rank_best[static_cast<std::size_t>(world.rank())];
          // rep 0 is the warmup: pools spawn, and in measured mode the
          // trial runs + cache fill happen here, not in the timed reps.
          if (rep > 0) best = std::min(best, dt);
          if (world.rank() == 0 && rep == reps) {
            out.algo = res.algo;
            out.grid = res.plan.grid();
            out.source = res.plan.source;
            out.kernel_variant = res.kernel_variant;
            out.predicted = res.plan.predicted_seconds;
          }
        }
      },
      rt::Machine::counting(), threads);
  rt::set_overlap_enabled(prev_overlap);

  out.plan_mode = mode_name;
  out.precision = precision_name(precision);
  out.m = m;
  out.n = n;
  out.p = p;
  out.threads = threads;
  out.seconds = *std::max_element(per_rank_best.begin(), per_rank_best.end());
  const double dn = static_cast<double>(n);
  const double qr_flops =
      2.0 * static_cast<double>(m) * dn * dn - 2.0 * dn * dn * dn / 3.0;
  out.gflops = qr_flops / out.seconds * 1e-9;
  return out;
}

/// Parses "1,2,4" into per-rank budgets; returns empty on malformed input.
std::vector<int> parse_threads_list(const std::string& s) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = std::min(s.find(',', pos), s.size());
    const std::string tok = s.substr(pos, comma - pos);
    if (tok.empty()) return {};
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (end != tok.c_str() + tok.size() || v < 1 || v > 256) return {};
    out.push_back(static_cast<int>(v));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  std::string json_path = "bench_out/bench_cacqr.json";
  std::vector<int> explicit_threads;
  std::vector<std::string> plan_modes = {"heuristic", "model"};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(7);
      if (json_path.empty()) {
        std::fprintf(stderr, "error: --json= requires a path\n");
        return 2;
      }
    } else if (arg.rfind("--threads-list=", 0) == 0) {
      explicit_threads = parse_threads_list(arg.substr(15));
      if (explicit_threads.empty()) {
        std::fprintf(stderr,
                     "error: --threads-list= wants comma-separated budgets "
                     "in [1, 256], e.g. --threads-list=1,2,4\n");
        return 2;
      }
    } else if (arg.rfind("--plan-mode=", 0) == 0) {
      plan_modes.clear();
      std::string list = arg.substr(12);
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = std::min(list.find(',', pos), list.size());
        const std::string tok = list.substr(pos, comma - pos);
        if (tok == "heuristic" || tok == "model" || tok == "measured") {
          plan_modes.push_back(tok);
        } else {
          std::fprintf(stderr,
                       "error: --plan-mode= wants a comma-separated subset "
                       "of heuristic,model,measured\n");
          return 2;
        }
        pos = comma + 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json[=PATH]] [--quick] "
                   "[--threads-list=T1,T2,...] [--plan-mode=M1,M2,...]\n",
                   argv[0]);
      return 2;
    }
  }

  // Shapes: tall-skinny panels, m >> n (the regime the paper targets).
  const std::vector<std::pair<i64, i64>> shapes =
      quick ? std::vector<std::pair<i64, i64>>{{2048, 64}}
            : std::vector<std::pair<i64, i64>>{{8192, 128}, {16384, 256}};
  const int hw_threads = lin::parallel::hardware_threads();
  // hw_threads-aware default: drop budgets the host cannot actually run
  // in parallel, so the committed trajectory never silently records
  // oversubscription (threads=1 always stays).  --threads-list overrides
  // verbatim for deliberate oversubscription studies.
  std::vector<int> thread_counts = explicit_threads;
  if (thread_counts.empty()) {
    for (const int t : quick ? std::vector<int>{1, 4}
                             : std::vector<int>{1, 2, 4}) {
      if (t == 1 || t <= hw_threads) thread_counts.push_back(t);
    }
  }
  const int reps = quick ? 2 : 3;

  // Grids: 4- and 8-rank instances of each algorithm family.  cqr_1d is
  // Algorithm 6 (1D grid), ca_cqr Algorithm 8 on the tunable c x d x c
  // grid (c=1 degenerates to 1D with the CFR3D factorization; c=2 is a
  // genuine cube with MM3D/transpose3d on the critical path), pgeqrf_2d
  // the ScaLAPACK-style 2D Householder baseline.
  const std::vector<Config> configs = {
      {.algo = "cqr_1d", .p = 4},
      {.algo = "cqr_1d", .p = 8},
      {.algo = "ca_cqr", .p = 4, .c = 1, .d = 4},
      {.algo = "ca_cqr", .p = 8, .c = 2, .d = 2},
      {.algo = "pgeqrf_2d", .p = 4, .pr = 4, .pc = 1, .block = 16},
      {.algo = "pgeqrf_2d", .p = 8, .pr = 4, .pc = 2, .block = 16},
  };

  std::printf("bench_cacqr: end-to-end factorization sweep (host hardware "
              "threads: %d; per-rank budgets:",
              hw_threads);
  for (const int t : thread_counts) std::printf(" %d", t);
  std::printf(")\n");
  std::printf(
      "%-10s %-8s %-5s %8s %5s %3s %3s %10s %10s %10s %10s %10s %12s "
      "%12s\n",
      "algo", "grid", "prec", "m", "n", "P", "t", "seconds", "sec_ovl",
      "GF/s", "GF/s_ovl", "msgs", "words", "flops");

  std::vector<Point> points;
  for (const auto& [m, n] : shapes) {
    for (const Config& cfg : configs) {
      if (!cfg.fits(m, n)) continue;
      // The precision sweep: the single-pass CholeskyQR kernels time
      // their Gram stage in both lanes (a one-pass driver maps `mixed`
      // onto the same fp32 Gram, so only the endpoints are distinct
      // rows here; the factorize-driver sweep below covers `mixed` on
      // the two-pass product surface).  pgeqrf_2d has no fp32 lane.
      const std::vector<Precision> precisions =
          cfg.algo == "pgeqrf_2d"
              ? std::vector<Precision>{Precision::fp64}
              : std::vector<Precision>{Precision::fp64, Precision::fp32};
      for (const int t : thread_counts) {
        for (const Precision prec : precisions) {
          Point pt;
          if (cfg.algo == "cqr_1d") {
            pt = measure(
                cfg, m, n, t, reps,
                [&](rt::Comm& world, const lin::Matrix& a)
                    -> std::function<void()> {
                  auto da = std::make_shared<dist::DistMatrix>(
                      dist::DistMatrix::from_global(a, world.size(), 1,
                                                    world.rank(), 0));
                  return [da, &world, prec] {
                    (void)core::cqr_1d(*da, world, prec);
                  };
                });
          } else if (cfg.algo == "ca_cqr") {
            pt = measure(
                cfg, m, n, t, reps,
                [&, c = cfg.c,
                 d = cfg.d](rt::Comm& world, const lin::Matrix& a)
                    -> std::function<void()> {
                  auto g = std::make_shared<grid::TunableGrid>(world, c, d);
                  auto da = std::make_shared<dist::DistMatrix>(
                      dist::DistMatrix::from_global_on_tunable(a, *g));
                  return [g, da, prec] {
                    (void)core::ca_cqr(*da, *g, {.precision = prec});
                  };
                });
          } else {
            pt = measure(
                cfg, m, n, t, reps,
                [&, pr = cfg.pr, pc = cfg.pc, b = cfg.block](
                    rt::Comm& world, const lin::Matrix& a)
                    -> std::function<void()> {
                  auto g =
                      std::make_shared<baseline::ProcGrid2d>(world, pr, pc);
                  auto da = std::make_shared<baseline::BlockCyclicMatrix>(
                      baseline::BlockCyclicMatrix::from_global(a, b, *g));
                  return [g, da] {
                    (void)baseline::pgeqrf_2d(*da, *g,
                                              {.normalize_signs = false});
                  };
                });
          }
          pt.precision = precision_name(prec);
          points.push_back(pt);
          std::printf(
              "%-10s %-8s %-5s %8lld %5lld %3d %3d %10.4f %10.4f %10.2f "
              "%10.2f %10lld %12lld %12lld\n",
              pt.algo.c_str(), pt.grid.c_str(), pt.precision.c_str(),
              static_cast<long long>(pt.m), static_cast<long long>(pt.n),
              pt.p, pt.threads, pt.seconds, pt.seconds_overlap, pt.gflops,
              pt.gflops_overlap, static_cast<long long>(pt.msgs),
              static_cast<long long>(pt.words),
              static_cast<long long>(pt.flops));
          std::fflush(stdout);
        }
      }
    }
  }

  // ---- The factorize-driver plan sweep: heuristic vs planned configs.
  // model/measured need a calibrated profile of THIS host; calibrate
  // once, quick (a fraction of a second), before any timed window.
  std::vector<PlanPoint> plan_points;
  if (!plan_modes.empty()) {
    tune::MachineProfile profile;
    bool have_profile = false;
    for (const std::string& mode : plan_modes) {
      if (mode != "heuristic" && !have_profile) {
        std::printf("\ncalibrating for planned modes (quick)...\n");
        profile = tune::calibrate({.quick = true, .reps = 2, .ranks = 4});
        have_profile = true;
      }
    }
    std::printf("\nfactorize driver sweep (whole driver timed; overlap "
                "off):\n");
    std::printf("%-10s %-5s %8s %5s %3s %3s  %-10s %-8s %10s %10s %12s\n",
                "plan_mode", "prec", "m", "n", "P", "t", "algo", "grid",
                "seconds", "GF/s", "predicted_s");
    for (const auto& [m, n] : shapes) {
      for (const int p : {4, 8}) {
        for (const int t : thread_counts) {
          for (const std::string& mode : plan_modes) {
            const core::PlanMode pm = mode == "heuristic"
                                          ? core::PlanMode::heuristic
                                      : mode == "model"
                                          ? core::PlanMode::model
                                          : core::PlanMode::measured;
            // The driver runs CholeskyQR2 (two passes), so `mixed` is
            // the interesting mixed-precision point: fp32 first-pass
            // Gram, fp64 correction pass.
            for (const Precision prec :
                 {Precision::fp64, Precision::mixed}) {
              const PlanPoint pt = measure_factorize(
                  m, n, p, t, reps, pm, mode.c_str(), prec,
                  have_profile ? &profile : nullptr);
              plan_points.push_back(pt);
              std::printf(
                  "%-10s %-5s %8lld %5lld %3d %3d  %-10s %-8s %10.4f "
                  "%10.2f %12.6f\n",
                  pt.plan_mode.c_str(), pt.precision.c_str(),
                  static_cast<long long>(pt.m),
                  static_cast<long long>(pt.n), pt.p, pt.threads,
                  pt.algo.c_str(), pt.grid.c_str(), pt.seconds, pt.gflops,
                  pt.predicted);
              std::fflush(stdout);
            }
          }
        }
      }
    }
  }

  if (json) {
    std::filesystem::path p(json_path);
    std::error_code ec;
    if (p.has_parent_path()) {
      std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream out(p);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   p.string().c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"bench_cacqr\",\n  \"unit\": \"seconds\",\n"
        << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
        << "  \"hw_threads\": " << hw_threads << ",\n"
        << "  \"kernel_variant\": \""
        << lin::kernel::variant_name(lin::kernel::active_variant())
        << "\",\n"
        << "  \"threads_list\": [";
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      out << (i ? ", " : "") << thread_counts[i];
    }
    out << "],\n"
        << "  \"gflops_normalization\": \"2*m*n^2 - 2*n^3/3\",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& pt = points[i];
      out << "    {\"algo\": \"" << pt.algo << "\", \"grid\": \"" << pt.grid
          << "\", \"precision\": \"" << pt.precision
          << "\", \"kernel_variant\": \"" << pt.kernel_variant
          << "\", \"m\": " << pt.m << ", \"n\": " << pt.n
          << ", \"p\": " << pt.p << ", \"threads\": " << pt.threads
          << ", \"seconds\": " << pt.seconds
          << ", \"seconds_overlap\": " << pt.seconds_overlap
          << ", \"gflops\": " << pt.gflops
          << ", \"gflops_overlap\": " << pt.gflops_overlap
          << ", \"msgs\": " << pt.msgs << ", \"words\": " << pt.words
          << ", \"flops\": " << pt.flops << "}"
          << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"plan_sweep\": [\n";
    for (std::size_t i = 0; i < plan_points.size(); ++i) {
      const PlanPoint& pt = plan_points[i];
      out << "    {\"plan_mode\": \"" << pt.plan_mode << "\", \"algo\": \""
          << pt.algo << "\", \"grid\": \"" << pt.grid << "\", \"source\": \""
          << pt.source << "\", \"precision\": \"" << pt.precision
          << "\", \"kernel_variant\": \"" << pt.kernel_variant
          << "\", \"m\": " << pt.m << ", \"n\": " << pt.n
          << ", \"p\": " << pt.p << ", \"threads\": " << pt.threads
          << ", \"seconds\": " << pt.seconds << ", \"gflops\": " << pt.gflops
          << ", \"predicted_seconds\": " << pt.predicted << "}"
          << (i + 1 < plan_points.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    out.close();
    if (!out) {
      std::fprintf(stderr, "error: write to %s failed\n", p.string().c_str());
      return 1;
    }
    std::printf("json written to %s\n", p.string().c_str());
  }
  return 0;
}
