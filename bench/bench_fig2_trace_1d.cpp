/// \file bench_fig2_trace_1d.cpp
/// \brief Figure 2: the paper's illustration of the 1D-CQR steps,
///        reproduced as an annotated execution trace: each algorithm step
///        is run on a real 4-rank grid and its measured communication
///        reported, which is exactly what the figure depicts pictorially.

#include <iostream>

#include "common.hpp"
#include "cacqr/core/cqr_1d.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/factor.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/util.hpp"

int main() {
  using namespace cacqr;
  using dist::DistMatrix;
  const int p = 4;
  const i64 m = 32, n = 8;

  std::cout << "==== fig2_trace_1d ====\n";
  std::cout << "1D-CQR of a " << m << " x " << n << " matrix on P = " << p
            << " ranks (Figure 2's steps):\n\n";

  rt::Runtime::run(p, [&](rt::Comm& world) {
    lin::Matrix a = lin::hashed_matrix(23, m, n);
    auto da = DistMatrix::from_global(a, p, 1, world.rank(), 0);
    auto report = [&](const std::string& step, const rt::CostCounters& d) {
      if (world.rank() == 0) {
        std::cout << "  " << step << "\n      msgs=" << d.msgs
                  << " words=" << d.words << " flops=" << d.flops << "\n";
      }
      world.barrier();
    };

    auto t0 = world.counters();
    lin::Matrix x(n, n);
    lin::gram(1.0, da.local(), 0.0, x);
    world.charge_local_flops();
    report("step 1: each rank forms X_p = A_p^T A_p from its m/P x n rows "
           "(no communication)",
           world.counters() - t0);

    t0 = world.counters();
    world.allreduce_sum({x.data(), static_cast<std::size_t>(x.size())});
    report("step 2: Allreduce sums the partial Gram matrices; every rank "
           "now owns Z = A^T A",
           world.counters() - t0);

    t0 = world.counters();
    auto li = lin::cholinv(x);
    world.charge_local_flops();
    report("step 3: every rank redundantly factors Z = R^T R and inverts "
           "(CholInv)",
           world.counters() - t0);

    t0 = world.counters();
    lin::trmm(lin::Side::Right, lin::Uplo::Lower, lin::Trans::T,
              lin::Diag::NonUnit, 1.0, li.l_inv, da.local());
    world.charge_local_flops();
    report("step 4: each rank computes its Q rows locally, Q_p = A_p R^{-1} "
           "(no communication)",
           world.counters() - t0);

    // Verify the trace produced a real factorization.
    lin::Matrix q = gather(da, world);
    if (world.rank() == 0) {
      std::cout << "\n  check: ||Q^T Q - I||_F = "
                << lin::orthogonality_error(q) << "\n\n";
    }
  });
  return 0;
}
