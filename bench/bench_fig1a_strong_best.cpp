/// \file bench_fig1a_strong_best.cpp
/// \brief Figure 1(a): the headline strong-scaling summary on Stampede2 --
///        best-performing grid per node count for both algorithms, four
///        matrix shapes 2^25 x 2^10 ... 2^19 x 2^13 (constant mn).
///        Paper result: CA-CQR2 is 2.6x-3.3x faster at 1024 nodes.

#include "common.hpp"

int main() {
  using namespace cacqr;
  const model::Machine s2 = model::stampede2();
  const std::vector<i64> nodes = {64, 128, 256, 512, 1024};
  const std::vector<std::pair<double, double>> shapes = {
      {double(1 << 25), double(1 << 10)},
      {double(1 << 23), double(1 << 11)},
      {double(1 << 21), double(1 << 12)},
      {double(1 << 19), double(1 << 13)},
  };

  TextTable t;
  std::vector<std::string> head = {"nodes"};
  for (const auto& [m, n] : shapes) {
    const std::string tag =
        std::to_string(i64(m)) + "x" + std::to_string(i64(n));
    head.push_back("SL " + tag);
    head.push_back("CA " + tag);
  }
  t.header(head);

  for (const i64 nd : nodes) {
    const i64 ranks = nd * s2.ranks_per_node;
    std::vector<std::string> row = {std::to_string(nd)};
    for (const auto& [m, n] : shapes) {
      const auto sl = model::best_pgeqrf(m, n, ranks, s2);
      const auto ca = model::best_cacqr2(m, n, ranks, s2);
      row.push_back(TextTable::num(
          model::gflops_per_node(m, n, sl.seconds, double(nd))));
      row.push_back(TextTable::num(
          model::gflops_per_node(m, n, ca.seconds, double(nd))));
    }
    t.row(std::move(row));
  }
  bench::emit("fig1a_strong_best_s2", t);

  // Summary speedups at 1024 nodes (the abstract's 2.6x-3.3x claim).
  std::cout << "Speedups (CA-CQR2 best / ScaLAPACK best) at 1024 nodes:\n";
  for (const auto& [m, n] : shapes) {
    const i64 ranks = 1024 * s2.ranks_per_node;
    const auto sl = model::best_pgeqrf(m, n, ranks, s2);
    const auto ca = model::best_cacqr2(m, n, ranks, s2);
    std::cout << "  " << i64(m) << " x " << i64(n) << ": "
              << TextTable::num(sl.seconds / ca.seconds, 3) << "x  (chosen c="
              << ca.c << ", d=" << ca.d << ")\n";
  }
  return 0;
}
