/// \file bench_fig6_strong_bw.cpp
/// \brief Figure 6 (a, b): strong scaling on Blue Waters (16 ranks/node),
///        matrices 1048576x4096 and 4194304x2048, nodes 32..2048.
///        Expected shape: ScaLAPACK leads at small node counts (low
///        flops:bandwidth machine balance punishes CQR2's 2x flops);
///        larger-c grids take over as the node count grows, with the
///        c = 1 -> 2 and 2 -> 4 crossovers the paper describes.

#include "common.hpp"

int main() {
  using namespace cacqr;
  const model::Machine bw = model::bluewaters();
  const std::vector<i64> nodes = {32, 64, 128, 256, 512, 1024, 2048};
  bench::strong_scaling_figure("fig6a_strong_bw_1048576x4096", bw,
                               1048576.0, 4096.0, nodes);
  bench::strong_scaling_figure("fig6b_strong_bw_4194304x2048", bw,
                               4194304.0, 2048.0, nodes);

  // Report the c-crossover node counts for plot (b), the paper's example
  // (c=1 -> c=2 near 256 nodes, c=2 -> c=4 near 512).
  const double m = 4194304.0, n = 2048.0;
  TextTable t;
  t.header({"nodes", "best_c"});
  for (const i64 nd : nodes) {
    const i64 ranks = nd * bw.ranks_per_node;
    double best_s = 1e300;
    i64 best_c = 0;
    for (const i64 c : bench::c_values()) {
      if (!bench::grid_ok(ranks, c, m, n)) continue;
      const auto ch = model::eval_cacqr2(m, n, c, ranks / (c * c), bw);
      if (ch.seconds < best_s) {
        best_s = ch.seconds;
        best_c = c;
      }
    }
    t.row({std::to_string(nd), std::to_string(best_c)});
  }
  bench::emit("fig6b_crossovers", t);
  return 0;
}
