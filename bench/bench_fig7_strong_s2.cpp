/// \file bench_fig7_strong_s2.cpp
/// \brief Figure 7 (a-d): strong scaling on Stampede2 (64 ranks/node),
///        matrices 524288x8192, 2097152x4096, 8388608x2048, 33554432x1024,
///        nodes 64..1024.  Paper-reported best-vs-best speedups at 1024
///        nodes: 2.6x (a), 3.3x (b), 3.1x (c), 2.7x (d).

#include "common.hpp"

int main() {
  using namespace cacqr;
  const model::Machine s2 = model::stampede2();
  const std::vector<i64> nodes = {64, 128, 256, 512, 1024};
  bench::strong_scaling_figure("fig7a_strong_s2_524288x8192", s2,
                               524288.0, 8192.0, nodes);
  bench::strong_scaling_figure("fig7b_strong_s2_2097152x4096", s2,
                               2097152.0, 4096.0, nodes);
  bench::strong_scaling_figure("fig7c_strong_s2_8388608x2048", s2,
                               8388608.0, 2048.0, nodes);
  bench::strong_scaling_figure("fig7d_strong_s2_33554432x1024", s2,
                               33554432.0, 1024.0, nodes);
  return 0;
}
