/// \file bench_table56_cacqr_lines.cpp
/// \brief Tables V and VI: per-line costs of CA-CQR and CA-CQR2
///        (Algorithms 8-9) on a real c x d x c thread-grid, measured
///        against the analytic rows.  Includes the Gram-assembly phase
///        (lines 1-5) as a unit, matching how ca_gram executes it.

#include "common.hpp"
#include "cacqr/chol/cfr3d.hpp"
#include "cacqr/core/ca_cqr.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/model/costs.hpp"

namespace {

using namespace cacqr;
using dist::DistMatrix;

std::string fmt(const rt::CostCounters& c) {
  return "a=" + std::to_string(c.msgs) + " b=" + std::to_string(c.words) +
         " g=" + std::to_string(c.flops);
}

std::string fmt(const model::Cost& c) {
  return "a=" + TextTable::num(c.alpha, 4) + " b=" + TextTable::num(c.beta, 5) +
         " g=" + TextTable::num(c.gamma, 6);
}

template <class Body>
rt::CostCounters measure_on_grid(int c, int d, Body body) {
  const int ranks = c * c * d;
  std::vector<rt::CostCounters> deltas(static_cast<std::size_t>(ranks));
  rt::Runtime::run(ranks, [&](rt::Comm& world) {
    grid::TunableGrid g(world, c, d);
    const auto before = world.counters();
    body(world, g);
    deltas[static_cast<std::size_t>(world.rank())] = world.counters() - before;
  });
  return rt::max_counters(deltas);
}

}  // namespace

int main() {
  const int c = 2, d = 4;
  const i64 m = 64, n = 16;
  lin::Matrix a = lin::hashed_matrix(13, m, n);

  TextTable t;
  t.header({"table", "lines", "operation", "measured (max rank)", "model"});

  // Table V lines 1-5: Gram assembly Z = A^T A onto every subcube.
  {
    auto meas = measure_on_grid(c, d, [&](rt::Comm&, grid::TunableGrid& g) {
      auto da = DistMatrix::from_global_on_tunable(a, g);
      (void)core::ca_gram(da, g);
    });
    model::Cost mc;
    mc += model::cost_bcast(double(m * n) / (d * c), c);
    mc.gamma += model::flops_gemm(double(n) / c, double(m) / d, double(n) / c);
    mc += model::cost_reduce(double(n * n) / (c * c), c);
    mc += model::cost_allreduce(double(n * n) / (c * c), double(d) / c);
    mc += model::cost_bcast(double(n * n) / (c * c), c);
    t.row({"V", "1-5", "Gram assembly (Bcast,MM,Reduce,Allreduce,Bcast)",
           fmt(meas), fmt(mc)});
  }

  // Table V line 7: CFR3D(n) on the c^3 subcube, measured standalone on
  // an SPD matrix of the same size the Gram phase produces.
  {
    auto cfr = measure_on_grid(c, d, [&](rt::Comm&, grid::TunableGrid& g) {
      lin::Matrix tall = lin::hashed_matrix(17, 4 * n, n);
      lin::Matrix spd(n, n);
      lin::gram(1.0, tall, 0.0, spd);
      for (i64 i = 0; i < n; ++i) spd(i, i) += double(n);
      auto dz = DistMatrix::from_global_on_cube(spd, g.subcube());
      (void)chol::cfr3d(dz, g.subcube());
    });
    t.row({"V", "7", "CFR3D(n, c^3)", fmt(cfr),
           fmt(model::cost_cfr3d(double(n), c))});
  }

  // Table V line 8: MM3D of the (m c/d) x n panel by R^{-1}.
  {
    auto meas = measure_on_grid(c, d, [&](rt::Comm&, grid::TunableGrid& g) {
      auto da = DistMatrix::from_global_on_tunable(a, g);
      auto panel = da.reinterpret_layout(m * c / d, n, c, c,
                                         g.coords().y % c, g.coords().x);
      lin::Matrix rn = lin::hashed_matrix(19, n, n);
      auto dr = DistMatrix::from_global_on_cube(rn, g.subcube());
      (void)dist::mm3d(panel, dr, g.subcube());
    });
    t.row({"V", "8", "MM3D(m c/d, n, n, c^3)", fmt(meas),
           fmt(model::cost_mm3d(double(m * c) / d, double(n), double(n), c))});
  }

  // Table VI: CA-CQR2 total (lines 1-2 are CA-CQR; line 4 the R compose).
  {
    auto meas = measure_on_grid(c, d, [&](rt::Comm&, grid::TunableGrid& g) {
      auto da = DistMatrix::from_global_on_tunable(a, g);
      (void)core::ca_cqr2(da, g);
    });
    t.row({"VI", "1-4", "CA-CQR2 total", fmt(meas),
           fmt(model::cost_ca_cqr2(double(m), double(n), c, d))});
  }

  bench::emit("table56_cacqr_lines", t);
  return 0;
}
