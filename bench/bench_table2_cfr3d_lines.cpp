/// \file bench_table2_cfr3d_lines.cpp
/// \brief Table II: per-line costs of CFR3D (Algorithm 3).  Each line's
///        operation is executed standalone on a real cubic thread-grid at
///        the operand sizes of the first recursion level, its counters
///        measured, and printed next to the analytic per-line cost.

#include <cmath>

#include "common.hpp"
#include "cacqr/chol/cfr3d.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/factor.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/model/costs.hpp"

namespace {

using namespace cacqr;
using dist::DistMatrix;

rt::CostCounters run_and_measure(
    int ranks, const std::function<void(rt::Comm&, grid::CubeGrid&)>& body) {
  std::vector<rt::CostCounters> deltas(static_cast<std::size_t>(ranks));
  rt::Runtime::run(ranks, [&](rt::Comm& world) {
    grid::CubeGrid cube(world, static_cast<int>(std::cbrt(double(ranks)) + 0.5));
    const auto before = world.counters();
    body(world, cube);
    deltas[static_cast<std::size_t>(world.rank())] = world.counters() - before;
  });
  return rt::max_counters(deltas);
}

std::string fmt(const rt::CostCounters& c) {
  return "a=" + std::to_string(c.msgs) + " b=" + std::to_string(c.words) +
         " g=" + std::to_string(c.flops);
}

std::string fmt(const model::Cost& c) {
  return "a=" + TextTable::num(c.alpha, 4) + " b=" + TextTable::num(c.beta, 5) +
         " g=" + TextTable::num(c.gamma, 6);
}

}  // namespace

int main() {
  const int g = 2;
  const int ranks = g * g * g;
  const i64 n = 32;      // matrix dimension at the top level
  const i64 h = n / 2;   // operand size for the per-line ops

  lin::Matrix tall = lin::hashed_matrix(7, 4 * n, n);
  lin::Matrix spd(n, n);
  lin::gram(1.0, tall, 0.0, spd);
  for (i64 i = 0; i < n; ++i) spd(i, i) += double(n);

  TextTable t;
  t.header({"line", "operation", "measured (max rank)", "model"});

  // Line 2-3 (base case): slice allgather + redundant CholInv at n0.
  {
    const i64 n0 = chol::effective_base_case(n, g, 0);
    auto c = run_and_measure(ranks, [&](rt::Comm&, grid::CubeGrid& cube) {
      auto da = DistMatrix::from_global_on_cube(
          materialize(spd.sub(0, 0, n0, n0)), cube);
      lin::Matrix full = dist::gather(da, cube.slice());
      (void)lin::cholinv(full);
    });
    model::Cost mc = model::cost_allgather(double(n0 * n0), double(g * g));
    mc.gamma += model::flops_cholinv(double(n0));
    t.row({"2-3", "base case (allgather + CholInv, n0=" + std::to_string(n0) + ")",
           fmt(c), fmt(mc)});
  }

  // Line 6: Transpose of the h x h inverse factor.
  {
    auto c = run_and_measure(ranks, [&](rt::Comm&, grid::CubeGrid& cube) {
      auto da = DistMatrix::from_global_on_cube(
          materialize(spd.sub(0, 0, h, h)), cube);
      (void)dist::transpose3d(da, cube);
    });
    t.row({"6", "Transpose(Y11), h=" + std::to_string(h), fmt(c),
           fmt(model::cost_transpose(double(h * h) / (g * g), g * g))});
  }

  // Line 7: MM3D(A21, W) at h x h x h.
  {
    auto c = run_and_measure(ranks, [&](rt::Comm&, grid::CubeGrid& cube) {
      auto da = DistMatrix::from_global_on_cube(
          materialize(spd.sub(0, 0, h, h)), cube);
      (void)dist::mm3d(da, da, cube);
    });
    t.row({"7 (also 9,12,14)", "MM3D(h,h,h)", fmt(c),
           fmt(model::cost_mm3d(double(h), double(h), double(h), g))});
  }

  // Line 10: the Schur-complement axpy (pure local flops).
  {
    auto c = run_and_measure(ranks, [&](rt::Comm& world, grid::CubeGrid& cube) {
      auto da = DistMatrix::from_global_on_cube(
          materialize(spd.sub(0, 0, h, h)), cube);
      auto db = da;
      dist::add_scaled(db, -1.0, da);
      world.charge_local_flops();
    });
    model::Cost mc;
    mc.gamma = 2.0 * double(h * h) / (g * g);
    t.row({"10", "A22 - U (axpy)", fmt(c), fmt(mc)});
  }

  // Whole algorithm vs composed model.
  {
    auto c = run_and_measure(ranks, [&](rt::Comm&, grid::CubeGrid& cube) {
      auto da = DistMatrix::from_global_on_cube(spd, cube);
      (void)chol::cfr3d(da, cube);
    });
    t.row({"total", "CFR3D(n=" + std::to_string(n) + ")", fmt(c),
           fmt(model::cost_cfr3d(double(n), g))});
  }

  bench::emit("table2_cfr3d_lines", t);
  return 0;
}
