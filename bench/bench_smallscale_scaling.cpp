/// \file bench_smallscale_scaling.cpp
/// \brief Strong and weak scaling of REAL executions: the full CA-CQR2
///        and PGEQRF implementations run on 4..64 thread-ranks with the
///        LogP clock under Stampede2 parameters.  This is the
///        honest-execution counterpart of the paper-scale model figures:
///        every data point is an actual distributed run.

#include "common.hpp"
#include "cacqr/baseline/pgeqrf_2d.hpp"
#include "cacqr/core/ca_cqr.hpp"
#include "cacqr/core/factorize.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/model/machine.hpp"

namespace {

using namespace cacqr;
using dist::DistMatrix;

double run_cacqr2(int ranks, i64 m, i64 n, const model::Machine& mach) {
  const auto [c, d] = core::choose_grid(ranks, m, n);
  auto per_rank = rt::Runtime::run(
      ranks,
      [&, c = c, d = d](rt::Comm& world) {
        grid::TunableGrid g(world, c, d);
        auto da = DistMatrix::from_global_on_tunable(
            lin::hashed_matrix(71, m, n), g);
        (void)core::ca_cqr2(da, g);
      },
      mach.rt_params());
  return rt::modeled_time(per_rank);
}

double run_pgeqrf(int ranks, i64 m, i64 n, const model::Machine& mach) {
  // Tallest process grid satisfying the block-cyclic layout constraints
  // (b*pr | m, b*pr | n, b*pc | n with block size 4), like the paper's
  // tall tuned configs.
  const i64 b = 4;
  int pr = ranks, pc = 1;
  while (pr > 1 && (n % (b * pr) != 0 || m % (b * pr) != 0 ||
                    n % (b * pc) != 0)) {
    pr /= 2;
    pc *= 2;
  }
  auto per_rank = rt::Runtime::run(
      ranks,
      [&, pr = pr, pc = pc, b = b](rt::Comm& world) {
        baseline::ProcGrid2d g(world, pr, pc);
        auto da = baseline::BlockCyclicMatrix::from_global(
            lin::hashed_matrix(72, m, n), b, g);
        (void)baseline::pgeqrf_2d(da, g, {.normalize_signs = false});
      },
      mach.rt_params());
  return rt::modeled_time(per_rank);
}

}  // namespace

int main() {
  const model::Machine s2 = model::stampede2();

  // Strong scaling: fixed 512 x 64.
  {
    const i64 m = 512, n = 64;
    TextTable t;
    t.header({"ranks", "CACQR2 sim ms", "PGEQRF sim ms", "speedup"});
    for (const int p : {4, 8, 16, 32, 64}) {
      const double ca = run_cacqr2(p, m, n, s2);
      const double sl = run_pgeqrf(p, m, n, s2);
      t.row({std::to_string(p), TextTable::num(ca * 1e3, 4),
             TextTable::num(sl * 1e3, 4), TextTable::num(sl / ca, 3)});
    }
    std::cout << "Real-execution strong scaling (LogP clock, " << s2.name
              << "), " << m << " x " << n << ":\n";
    cacqr::bench::emit("smallscale_strong", t);
  }

  // Weak scaling: m grows with ranks, n fixed.
  {
    const i64 n = 32;
    TextTable t;
    t.header({"ranks", "m", "CACQR2 sim ms", "PGEQRF sim ms", "speedup"});
    for (const int p : {4, 8, 16, 32, 64}) {
      const i64 m = 64 * p;
      const double ca = run_cacqr2(p, m, n, s2);
      const double sl = run_pgeqrf(p, m, n, s2);
      t.row({std::to_string(p), std::to_string(m),
             TextTable::num(ca * 1e3, 4), TextTable::num(sl * 1e3, 4),
             TextTable::num(sl / ca, 3)});
    }
    std::cout << "Real-execution weak scaling (LogP clock), m = 64*P x "
              << n << ":\n";
    cacqr::bench::emit("smallscale_weak", t);
  }
  return 0;
}
