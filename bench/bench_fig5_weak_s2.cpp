/// \file bench_fig5_weak_s2.cpp
/// \brief Figure 5 (a-d): weak scaling on Stampede2, nodes = 8 a b^2,
///        matrices 131072a x 8192b, 262144a x 4096b, 524288a x 2048b,
///        1048576a x 1024b.  The paper reports CA-CQR2 advantages at the
///        final step (8,4) = 1024 nodes of 1.1x / 1.3x / 1.7x / 1.9x, the
///        advantage appearing at smaller node counts as the row:column
///        ratio grows.

#include "common.hpp"

namespace {

void weak_figure(const std::string& name, double m0, double n0) {
  using namespace cacqr;
  const model::Machine s2 = model::stampede2();
  TextTable t;
  std::vector<std::string> head = {"(a,b)", "nodes", "ScaLAPACK(best)"};
  for (const i64 c : bench::c_values()) {
    head.push_back("CACQR2(c=" + std::to_string(c) + ")");
  }
  head.push_back("CACQR2(best)");
  head.push_back("ratio");
  t.header(head);

  double final_ratio = 0.0;
  for (const auto& [a, b] : bench::weak_steps()) {
    const i64 nodes = 8 * a * b * b;
    const i64 ranks = nodes * s2.ranks_per_node;
    const double m = m0 * double(a);
    const double n = n0 * double(b);
    std::vector<std::string> row = {
        "(" + std::to_string(a) + "," + std::to_string(b) + ")",
        std::to_string(nodes)};
    const auto sl = model::best_pgeqrf(m, n, ranks, s2);
    const double sl_gf = model::gflops_per_node(m, n, sl.seconds,
                                                double(nodes));
    row.push_back(TextTable::num(sl_gf));
    double best = 0.0;
    for (const i64 c : bench::c_values()) {
      if (!bench::grid_ok(ranks, c, m, n)) {
        row.push_back("-");
        continue;
      }
      const auto ch = model::eval_cacqr2(m, n, c, ranks / (c * c), s2);
      const double gf = model::gflops_per_node(m, n, ch.seconds,
                                               double(nodes));
      best = std::max(best, gf);
      row.push_back(TextTable::num(gf));
    }
    row.push_back(TextTable::num(best));
    final_ratio = best / sl_gf;
    row.push_back(TextTable::num(final_ratio, 3));
    t.row(std::move(row));
  }
  cacqr::bench::emit(name, t);
  std::cout << name << ": final-step ratio = " << final_ratio << "x\n\n";
}

}  // namespace

int main() {
  weak_figure("fig5a_weak_s2_131072a_x_8192b", 131072.0, 8192.0);
  weak_figure("fig5b_weak_s2_262144a_x_4096b", 262144.0, 4096.0);
  weak_figure("fig5c_weak_s2_524288a_x_2048b", 524288.0, 2048.0);
  weak_figure("fig5d_weak_s2_1048576a_x_1024b", 1048576.0, 1024.0);
  return 0;
}
