/// \file bench_table34_cqr1d_lines.cpp
/// \brief Tables III and IV: per-line costs of 1D-CQR and 1D-CQR2
///        (Algorithms 6-7), measured on a real 1D thread-grid and printed
///        against the analytic rows.

#include "common.hpp"
#include "cacqr/core/cqr_1d.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/factor.hpp"
#include "cacqr/lin/flops.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/model/costs.hpp"

namespace {

using namespace cacqr;
using dist::DistMatrix;

rt::CostCounters measure(int ranks,
                         const std::function<void(rt::Comm&)>& body) {
  std::vector<rt::CostCounters> deltas(static_cast<std::size_t>(ranks));
  rt::Runtime::run(ranks, [&](rt::Comm& world) {
    const auto before = world.counters();
    body(world);
    deltas[static_cast<std::size_t>(world.rank())] = world.counters() - before;
  });
  return rt::max_counters(deltas);
}

std::string fmt(const rt::CostCounters& c) {
  return "a=" + std::to_string(c.msgs) + " b=" + std::to_string(c.words) +
         " g=" + std::to_string(c.flops);
}

std::string fmt(const model::Cost& c) {
  return "a=" + TextTable::num(c.alpha, 4) + " b=" + TextTable::num(c.beta, 5) +
         " g=" + TextTable::num(c.gamma, 6);
}

}  // namespace

int main() {
  const int p = 8;
  const i64 m = 64 * p, n = 16;
  lin::Matrix a = lin::hashed_matrix(11, m, n);

  TextTable t;
  t.header({"table", "line", "operation", "measured (max rank)", "model"});

  // Table III line 1: local Syrk of the m/P x n block.
  {
    auto c = measure(p, [&](rt::Comm& world) {
      auto da = DistMatrix::from_global(a, p, 1, world.rank(), 0);
      lin::Matrix x(n, n);
      lin::gram(1.0, da.local(), 0.0, x);
      world.charge_local_flops();
    });
    model::Cost mc;
    mc.gamma = model::flops_gram(double(m) / p, double(n));
    t.row({"III", "1", "Syrk(m/P, n)", fmt(c), fmt(mc)});
  }

  // Table III line 2: Allreduce of the n^2 Gram matrix.
  {
    auto c = measure(p, [&](rt::Comm& world) {
      std::vector<double> z(static_cast<std::size_t>(n * n));
      world.allreduce_sum(z);
    });
    t.row({"III", "2", "Allreduce(n^2, P)", fmt(c),
           fmt(model::cost_allreduce(double(n * n), p))});
  }

  // Table III line 3: redundant CholInv(n).
  {
    auto c = measure(p, [&](rt::Comm& world) {
      lin::Matrix z(n, n);
      lin::gram(4.0, a, 0.0, z);  // SPD by construction
      lin::flops::reset();        // charge only the factorization
      (void)lin::cholinv(z);
      world.charge_local_flops();
    });
    model::Cost mc;
    mc.gamma = model::flops_cholinv(double(n));
    t.row({"III", "3", "CholInv(n)", fmt(c), fmt(mc)});
  }

  // Table III line 4: local triangular multiply Q = A R^{-1}.
  {
    auto c = measure(p, [&](rt::Comm& world) {
      auto da = DistMatrix::from_global(a, p, 1, world.rank(), 0);
      // A dense upper-triangular operand: the kernel skips explicit
      // zeros, so an identity would undercount the line's flops.
      lin::Matrix r_inv(n, n);
      for (i64 j = 0; j < n; ++j) {
        for (i64 i = 0; i <= j; ++i) r_inv(i, j) = 1.0 + double(i + j);
      }
      lin::flops::reset();
      lin::trmm(lin::Side::Right, lin::Uplo::Upper, lin::Trans::N,
                lin::Diag::NonUnit, 1.0, r_inv, da.local());
      world.charge_local_flops();
    });
    model::Cost mc;
    mc.gamma = model::flops_trmm(double(m) / p, double(n));
    t.row({"III", "4", "MM(m/P, n, n) as trmm", fmt(c), fmt(mc)});
  }

  // Table IV: 1D-CQR2 = 2x 1D-CQR + local R2*R1.
  {
    auto c = measure(p, [&](rt::Comm& world) {
      auto da = DistMatrix::from_global(a, p, 1, world.rank(), 0);
      (void)core::cqr2_1d(da, world);
    });
    t.row({"IV", "1-3", "1D-CQR2 total", fmt(c),
           fmt(model::cost_cqr2_1d(double(m), double(n), p))});
  }

  bench::emit("table34_cqr1d_lines", t);
  return 0;
}
