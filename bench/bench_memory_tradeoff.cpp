/// \file bench_memory_tradeoff.cpp
/// \brief The paper's Section IV headline observation: "performance
///        improvements and superior scaling can be attained by increasing
///        the memory footprint to reduce communication for QR
///        factorization" -- replication factor c raises memory per rank
///        (mn/(dc) + n^2/c^2 with c-fold depth replication) and cuts
///        words moved (expected improvement ~sqrt(c) over 2D).  Measured
///        at small scale, modeled at paper scale.

#include "common.hpp"
#include "cacqr/core/ca_cqr.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/model/costs.hpp"

int main() {
  using namespace cacqr;
  using dist::DistMatrix;

  // Real execution: P = 64, sweep c over {1, 2, 4}; memory = local words
  // actually allocated for the inputs (A block + Gram block, x
  // replication is implicit in the rank count).
  {
    const i64 m = 128, n = 32;
    TextTable t;
    t.header({"c", "d", "A words/rank", "Gram words/rank", "msgs", "words"});
    for (const i64 c : {i64{1}, i64{2}, i64{4}}) {
      const i64 d = 64 / (c * c);
      auto per_rank = rt::Runtime::run(64, [&](rt::Comm& world) {
        grid::TunableGrid g(world, static_cast<int>(c), static_cast<int>(d));
        auto da = DistMatrix::from_global_on_tunable(
            lin::hashed_matrix(61, m, n), g);
        (void)core::ca_cqr2(da, g);
      });
      const auto mc = rt::max_counters(per_rank);
      t.row({std::to_string(c), std::to_string(d),
             std::to_string(m * n / (d * c)),
             std::to_string(n * n / (c * c)), std::to_string(mc.msgs),
             std::to_string(mc.words)});
    }
    std::cout << "Measured (real run, " << m << "x" << n << ", P=64):\n";
    bench::emit("memory_tradeoff_measured", t);
  }

  // Paper scale: 1024 Stampede2 nodes, the Figure 7(b) matrix.
  {
    const model::Machine s2 = model::stampede2();
    const double m = 2097152, n = 4096;
    const i64 ranks = 1024 * s2.ranks_per_node;
    TextTable t;
    t.header({"c", "d", "mem words/rank", "beta words", "alpha msgs",
              "GF/s/node"});
    for (const auto& [c, d] : model::valid_grids(ranks)) {
      if (double(d) > m || double(c) > n) continue;
      const auto cost = model::cost_ca_cqr2(m, n, double(c), double(d));
      t.row({std::to_string(c), std::to_string(d),
             TextTable::num(cost.mem, 5), TextTable::num(cost.beta, 5),
             TextTable::num(cost.alpha, 5),
             TextTable::num(model::gflops_per_node(m, n, cost.time(s2),
                                                   1024.0))});
    }
    std::cout << "Modeled at 1024 Stampede2 nodes, " << i64(m) << "x"
              << i64(n) << " (memory up, words down as c grows):\n";
    bench::emit("memory_tradeoff_modeled", t);
  }
  return 0;
}
