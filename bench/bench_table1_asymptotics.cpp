/// \file bench_table1_asymptotics.cpp
/// \brief Table I: asymptotic alpha/beta/gamma of MM3D, CFR3D, 1D-CQR2,
///        3D-CQR2 and CA-CQR2.  For each algorithm the bench evaluates
///        the (validated) cost model across a geometric range of P and
///        fits the log-log slope of each cost against the table's
///        predicted exponent.

#include <cmath>

#include "common.hpp"
#include "cacqr/model/costs.hpp"

namespace {

using cacqr::TextTable;
using cacqr::model::Cost;

/// log2(y2/y1) per log2(x2/x1): the empirical scaling exponent.
double slope(double y1, double y2, double factor) {
  return std::log2(y2 / y1) / std::log2(factor);
}

}  // namespace

int main() {
  using namespace cacqr;
  TextTable t;
  t.header({"algorithm", "cost", "slope vs P", "Table I prediction"});

  // MM3D, square n x n x n with n fixed: alpha ~ log P (slope ~ 0+),
  // beta ~ P^{-2/3}, gamma ~ P^{-1}.
  {
    const double n = 1 << 14;
    const Cost a = model::cost_mm3d(n, n, n, 8);     // P = 512
    const Cost b = model::cost_mm3d(n, n, n, 32);    // P = 32768
    const double f = 64.0;                           // P ratio
    t.row({"MM3D", "beta", TextTable::num(slope(a.beta, b.beta, f), 3),
           "-2/3"});
    t.row({"MM3D", "gamma", TextTable::num(slope(a.gamma, b.gamma, f), 3),
           "-1"});
  }

  // CFR3D: same exponents as MM3D, alpha ~ P^{2/3} log P with the paper's
  // bandwidth-minimizing base case n0 = n/P^{2/3}.
  {
    const double n = 1 << 14;
    const Cost a = model::cost_cfr3d(n, 8);
    const Cost b = model::cost_cfr3d(n, 32);
    const double f = 64.0;
    t.row({"CFR3D", "alpha", TextTable::num(slope(a.alpha, b.alpha, f), 3),
           "+2/3 (P^{2/3} log P)"});
    t.row({"CFR3D", "beta", TextTable::num(slope(a.beta, b.beta, f), 3),
           "-2/3"});
    t.row({"CFR3D", "gamma", TextTable::num(slope(a.gamma, b.gamma, f), 3),
           "-1"});
  }

  // 1D-CQR2: alpha ~ log P, beta ~ n^2 (slope 0), gamma: the mn^2/P term
  // scales away but the redundant n^3 term does not.
  {
    const double m = 1 << 26, n = 1 << 10;
    const Cost a = model::cost_cqr2_1d(m, n, 64);
    const Cost b = model::cost_cqr2_1d(m, n, 4096);
    const double f = 64.0;
    t.row({"1D-CQR2", "beta", TextTable::num(slope(a.beta, b.beta, f), 3),
           "0 (n^2, P-independent)"});
    t.row({"1D-CQR2", "gamma", TextTable::num(slope(a.gamma, b.gamma, f), 3),
           "-1 until n^3 dominates"});
  }

  // 3D-CQR2 (c = d = P^{1/3}): beta ~ mn/P^{2/3}.
  {
    const double m = 1 << 15, n = 1 << 15;
    const Cost a = model::cost_ca_cqr2(m, n, 8, 8);      // P = 512
    const Cost b = model::cost_ca_cqr2(m, n, 32, 32);    // P = 32768
    const double f = 64.0;
    t.row({"3D-CQR2", "beta", TextTable::num(slope(a.beta, b.beta, f), 3),
           "-2/3"});
    t.row({"3D-CQR2", "gamma", TextTable::num(slope(a.gamma, b.gamma, f), 3),
           "-1"});
  }

  // CA-CQR2 at the optimal grid ratio m/d = n/c: beta ~ (mn^2/P)^{2/3},
  // i.e. slope -2/3 with matrix fixed.
  {
    const double m = 1 << 22, n = 1 << 11;  // m/n = 2048
    // c = (P n / m)^{1/3}: P = 2^15 -> c = 2^{(15+11-22)/3} ~ 2.5 -> use
    // matched doublings that keep the ratio integral.
    const Cost a = model::cost_ca_cqr2(m, n, 2, 2048);   // P = 8192
    const Cost b = model::cost_ca_cqr2(m, n, 8, 8192);   // P = 524288
    const double f = 64.0;
    t.row({"CA-CQR2 (opt c)", "beta",
           TextTable::num(slope(a.beta, b.beta, f), 3), "-2/3"});
    t.row({"CA-CQR2 (opt c)", "gamma",
           TextTable::num(slope(a.gamma, b.gamma, f), 3), "-1"});
  }

  bench::emit("table1_asymptotics", t);
  return 0;
}
