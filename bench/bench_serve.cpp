/// \file bench_serve.cpp
/// \brief Throughput/latency of the factorization service under a mixed
///        small-panel workload: jobs/sec and p50/p99 client latency at
///        several submitter concurrency levels, with panel micro-batching
///        on and off.
///
/// The serving claim (ISSUE: factorization-as-a-service): when many small
/// tall-skinny factorize requests share one engine, grouping compatible
/// panels into one stacked CQR2 sweep pays the per-round protocol cost --
/// scheduler handoff, rank barriers, and one Gram Allreduce per pass --
/// once per batch instead of once per job, so throughput rises WITHOUT
/// hurting tail latency (results stay bitwise identical, so batching is a
/// pure scheduling change).  This harness measures exactly that claim:
/// every config row runs the same workload through a fresh service, and
/// the batching=false rows are the job-at-a-time baseline in the same
/// JSON.
///
/// Comparison rule (see docs/benchmarks.md): wall-clock numbers are only
/// comparable within one host; to validate a speedup, run both builds on
/// the same machine.
///
/// Usage: bench_serve [--json[=PATH]] [--metrics=PATH] [--quick]
///                    [--jobs=N] [--ranks=R]
///   --json    additionally write machine-readable results (default PATH:
///             bench_out/bench_serve.json) -- the artifact CI uploads and
///             PRs commit at perf/bench_serve.json.
///   --metrics write the process-wide obs metrics snapshot to PATH after
///             all rows complete (counters/gauges/histograms JSON).
///   --quick   fewer jobs and concurrency levels (CI smoke mode).
///   --jobs    jobs per submitter thread (default 64; quick 16).
///   --ranks   engine SPMD width (default 4).
///
/// Reported per (concurrency, batching) row (JSON schema_version 2; see
/// docs/benchmarks.md):
///   jobs_per_sec    completed jobs / wall seconds, submit of the first to
///                   completion of the last, submitter threads included;
///   p50/p99/p999_ms client-observed latency (submit call to wait return);
///   batched_share   fraction of jobs that rode a sweep of >= 2 panels;
///   rejected        backpressure rejections the submitters retried;
///   queue_depth_max admission-queue high-water seen by a ~1ms sampler;
///   queue_timeline  decimated (t_ms, depth) samples from that sampler.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/kernel.hpp"
#include "cacqr/obs/metrics.hpp"
#include "cacqr/serve/service.hpp"

namespace {

using namespace cacqr;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// The mixed workload: small tall-skinny panels, all batched-lane
/// eligible, with repeats so a loaded queue actually contains batchable
/// neighbors (the service's target traffic: many near-identical panel
/// factorizations from concurrent callers).
struct Shape {
  i64 m, n;
};
const std::vector<Shape>& workload_shapes() {
  static const std::vector<Shape> shapes = {
      {96, 8}, {128, 8}, {96, 8}, {160, 16}, {96, 8}, {128, 8}};
  return shapes;
}

struct QueueSample {
  double t_ms = 0.0;
  u64 depth = 0;
};

struct RowResult {
  int concurrency = 0;
  bool batching = false;
  u64 jobs = 0;
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double batched_share = 0.0;
  u64 batches = 0;
  u64 rejected = 0;
  u64 queue_depth_max = 0;
  std::vector<QueueSample> queue_timeline;
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

RowResult run_config(int ranks, int concurrency, bool batching,
                     int jobs_per_thread) {
  serve::FactorizeService svc({.ranks = ranks,
                               .queue_depth = 1024,
                               .batch_window = 8,
                               .batching = batching});

  // Warmup outside the timed window: arenas, pools, and the panel pads
  // for every workload shape.
  for (const Shape& s : workload_shapes()) {
    (void)svc.submit(lin::hashed_matrix(1000, s.m, s.n)).result();
  }
  const serve::ServiceStats warm = svc.stats();

  // Panels are pre-generated so the timed window contains only
  // submit/wait and the service's own work.
  const auto& shapes = workload_shapes();
  std::vector<lin::Matrix> panels;
  panels.reserve(shapes.size());
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    panels.push_back(
        lin::hashed_matrix(2000 + i, shapes[i].m, shapes[i].n));
  }

  std::vector<std::vector<double>> latencies(concurrency);
  std::atomic<u64> rejected{0};
  std::atomic<bool> start{false};
  std::vector<std::thread> submitters;
  submitters.reserve(concurrency);
  for (int t = 0; t < concurrency; ++t) {
    submitters.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      // Pipelined submission: a small window of outstanding jobs per
      // thread keeps the admission queue populated (what batching needs)
      // while bounding each thread's in-flight memory.
      constexpr int kWindow = 4;
      std::vector<serve::JobHandle> inflight;
      std::vector<double> submit_at;
      auto drain_one = [&] {
        (void)inflight.front().wait();
        latencies[t].push_back(now_seconds() - submit_at.front());
        inflight.erase(inflight.begin());
        submit_at.erase(submit_at.begin());
      };
      for (int i = 0; i < jobs_per_thread; ++i) {
        const lin::Matrix& a = panels[(t + i) % panels.size()];
        for (;;) {
          const double t0 = now_seconds();
          serve::JobHandle h = svc.submit(a);
          if (h.status() == serve::JobStatus::rejected) {
            // Backpressure: free a slot by draining our oldest job.
            rejected.fetch_add(1, std::memory_order_relaxed);
            if (!inflight.empty()) drain_one();
            continue;
          }
          inflight.push_back(std::move(h));
          submit_at.push_back(t0);
          break;
        }
        if (inflight.size() >= kWindow) drain_one();
      }
      while (!inflight.empty()) drain_one();
    });
  }

  // Queue-depth sampler: one thread polling stats() every ~1ms for the
  // duration of the timed window.  The depth it sees is the admission
  // queue only (jobs admitted but not yet picked up by the scheduler),
  // which is exactly the quantity batching feeds on.
  std::vector<QueueSample> samples;
  std::atomic<bool> sampling{true};
  std::thread sampler([&] {
    while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
    const double t0 = now_seconds();
    while (sampling.load(std::memory_order_acquire)) {
      samples.push_back({(now_seconds() - t0) * 1e3, svc.stats().queue_depth});
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const double t_start = now_seconds();
  start.store(true, std::memory_order_release);
  for (std::thread& th : submitters) th.join();
  const double t_end = now_seconds();
  sampling.store(false, std::memory_order_release);
  sampler.join();

  const serve::ServiceStats st = svc.stats();
  svc.shutdown();

  RowResult row;
  row.concurrency = concurrency;
  row.batching = batching;
  row.jobs = static_cast<u64>(concurrency) *
             static_cast<u64>(jobs_per_thread);
  row.seconds = t_end - t_start;
  row.jobs_per_sec = static_cast<double>(row.jobs) / row.seconds;
  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  row.p50_ms = percentile(all, 0.5) * 1e3;
  row.p99_ms = percentile(all, 0.99) * 1e3;
  row.p999_ms = percentile(all, 0.999) * 1e3;
  row.batched_share =
      static_cast<double>(st.batched_jobs - warm.batched_jobs) /
      static_cast<double>(row.jobs);
  row.batches = st.batches - warm.batches;
  row.rejected = rejected.load();
  for (const QueueSample& s : samples) {
    row.queue_depth_max = std::max(row.queue_depth_max, s.depth);
  }
  // Decimate the timeline to <= 256 points so the JSON stays small even
  // on long runs (every stride-th sample; the max above is exact).
  const std::size_t stride = samples.size() / 256 + 1;
  for (std::size_t i = 0; i < samples.size(); i += stride) {
    row.queue_timeline.push_back(samples[i]);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  std::string json_path = "bench_out/bench_serve.json";
  std::string metrics_path;
  int jobs_per_thread = 0;
  int ranks = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(7);
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(10);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs_per_thread = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--ranks=", 0) == 0) {
      ranks = std::atoi(arg.c_str() + 8);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json[=PATH]] [--metrics=PATH] [--quick] "
                   "[--jobs=N] [--ranks=R]\n",
                   argv[0]);
      return 1;
    }
  }
  if (jobs_per_thread <= 0) jobs_per_thread = quick ? 16 : 64;
  const std::vector<int> concurrency_levels =
      quick ? std::vector<int>{1, 4} : std::vector<int>{1, 4, 8};

  std::printf("bench_serve: ranks=%d jobs/thread=%d quick=%d\n", ranks,
              jobs_per_thread, quick ? 1 : 0);
  std::printf("%4s %9s %6s %12s %9s %9s %9s %8s %9s %6s\n", "conc",
              "batching", "jobs", "jobs/sec", "p50_ms", "p99_ms",
              "p999_ms", "batches", "batched%", "qmax");

  std::vector<RowResult> rows;
  for (const int conc : concurrency_levels) {
    for (const bool batching : {false, true}) {
      RowResult row = run_config(ranks, conc, batching, jobs_per_thread);
      std::printf("%4d %9s %6llu %12.1f %9.3f %9.3f %9.3f %8llu %8.1f%% "
                  "%6llu\n",
                  row.concurrency, row.batching ? "on" : "off",
                  static_cast<unsigned long long>(row.jobs),
                  row.jobs_per_sec, row.p50_ms, row.p99_ms, row.p999_ms,
                  static_cast<unsigned long long>(row.batches),
                  100.0 * row.batched_share,
                  static_cast<unsigned long long>(row.queue_depth_max));
      std::fflush(stdout);
      rows.push_back(std::move(row));
    }
  }

  if (json) {
    std::filesystem::path p(json_path);
    std::error_code ec;
    if (p.has_parent_path()) {
      std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream out(p);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   p.string().c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"bench_serve\",\n  \"schema_version\": 2,\n"
        << "  \"unit\": \"jobs_per_sec\",\n"
        << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
        << "  \"ranks\": " << ranks << ",\n"
        << "  \"jobs_per_thread\": " << jobs_per_thread << ",\n"
        << "  \"kernel_variant\": \""
        << lin::kernel::variant_name(lin::kernel::active_variant())
        << "\",\n  \"workload\": [";
    const auto& shapes = workload_shapes();
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      out << (i ? ", " : "") << "{\"m\": " << shapes[i].m
          << ", \"n\": " << shapes[i].n << "}";
    }
    out << "],\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const RowResult& r = rows[i];
      out << "    {\"concurrency\": " << r.concurrency << ", \"batching\": "
          << (r.batching ? "true" : "false") << ", \"jobs\": " << r.jobs
          << ", \"seconds\": " << r.seconds
          << ", \"jobs_per_sec\": " << r.jobs_per_sec
          << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
          << ", \"p999_ms\": " << r.p999_ms
          << ", \"batches\": " << r.batches
          << ", \"batched_share\": " << r.batched_share
          << ", \"rejected\": " << r.rejected
          << ", \"queue_depth_max\": " << r.queue_depth_max
          << ",\n     \"queue_timeline\": [";
      for (std::size_t s = 0; s < r.queue_timeline.size(); ++s) {
        out << (s ? ", " : "") << "[" << r.queue_timeline[s].t_ms << ", "
            << r.queue_timeline[s].depth << "]";
      }
      out << "]}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    out.close();
    if (!out) {
      std::fprintf(stderr, "error: write to %s failed\n",
                   p.string().c_str());
      return 1;
    }
    std::printf("json written to %s\n", p.string().c_str());
  }

  if (!metrics_path.empty()) {
    std::filesystem::path p(metrics_path);
    std::error_code ec;
    if (p.has_parent_path()) {
      std::filesystem::create_directories(p.parent_path(), ec);
    }
    if (!obs::Registry::global().write_snapshot(metrics_path)) {
      std::fprintf(stderr, "error: cannot write metrics snapshot to %s\n",
                   metrics_path.c_str());
      return 1;
    }
    std::printf("metrics snapshot written to %s\n", metrics_path.c_str());
  }
  return 0;
}
