#pragma once
/// \file common.hpp
/// \brief Shared machinery for the figure/table bench harnesses.
///
/// Every bench prints the same rows/series the paper reports (aligned
/// table on stdout) and writes a CSV next to the binary under bench_out/.
/// Absolute GF/s numbers come from the calibrated machine models; what is
/// expected to reproduce is the *shape*: who wins, by what factor, where
/// the crossovers fall (see EXPERIMENTS.md).

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "cacqr/model/sweep.hpp"
#include "cacqr/support/table.hpp"

namespace cacqr::bench {

/// Output directory for CSV artifacts (created on demand).
inline std::string out_dir() {
  const std::string dir = "bench_out";
  std::filesystem::create_directories(dir);
  return dir;
}

/// Emits a finished table to stdout and CSV.
inline void emit(const std::string& name, const TextTable& table) {
  std::cout << "==== " << name << " ====\n" << table.str() << "\n";
  table.write_csv(out_dir() + "/" + name + ".csv");
}

/// The c values swept for CA-CQR2 series in the figures.
inline std::vector<i64> c_values() { return {1, 2, 4, 8, 16, 32}; }

/// Whether grid (c, d = ranks/c^2) is usable for an m x n matrix.
inline bool grid_ok(i64 ranks, i64 c, double m, double n) {
  if (c * c > ranks || ranks % (c * c) != 0) return false;
  const i64 d = ranks / (c * c);
  if (d % c != 0) return false;
  return static_cast<double>(d) <= m && static_cast<double>(c) <= n;
}

/// One strong-scaling figure: GF/s/node for ScaLAPACK-best and per-c
/// CA-CQR2 series over the node counts, plus the best-vs-best ratio at
/// the largest node count (the number the paper quotes per plot).
inline void strong_scaling_figure(const std::string& name,
                                  const model::Machine& machine, double m,
                                  double n,
                                  const std::vector<i64>& node_counts) {
  TextTable t;
  // Two ScaLAPACK columns: the primary explicit-Q comparison (both
  // algorithms deliver Q and R; PDGEQRF + PDORGQR) and the implicit-Q
  // PGEQRF-only timing the paper benchmarked.
  std::vector<std::string> head = {"nodes", "ranks", "ScaLAPACK(best)",
                                   "ScaLAPACK(implicitQ)"};
  for (const i64 c : c_values()) {
    head.push_back("CACQR2(c=" + std::to_string(c) + ")");
  }
  head.push_back("CACQR2(best)");
  head.push_back("best_ratio");
  t.header(head);

  double last_ratio = 0.0;
  for (const i64 nodes : node_counts) {
    const i64 ranks = nodes * machine.ranks_per_node;
    std::vector<std::string> row = {std::to_string(nodes),
                                    std::to_string(ranks)};
    const auto sl = model::best_pgeqrf(m, n, ranks, machine);
    row.push_back(TextTable::num(
        model::gflops_per_node(m, n, sl.seconds, double(nodes))));
    const auto sl_iq =
        model::best_pgeqrf(m, n, ranks, machine, /*form_q=*/false);
    row.push_back(TextTable::num(
        model::gflops_per_node(m, n, sl_iq.seconds, double(nodes))));
    double best = 0.0;
    for (const i64 c : c_values()) {
      if (!grid_ok(ranks, c, m, n)) {
        row.push_back("-");
        continue;
      }
      const auto ch = model::eval_cacqr2(m, n, c, ranks / (c * c), machine);
      const double gf =
          model::gflops_per_node(m, n, ch.seconds, double(nodes));
      best = std::max(best, gf);
      row.push_back(TextTable::num(gf));
    }
    row.push_back(TextTable::num(best));
    last_ratio = best / model::gflops_per_node(m, n, sl.seconds,
                                               double(nodes));
    row.push_back(TextTable::num(last_ratio, 3));
    t.row(std::move(row));
  }
  emit(name, t);
  std::cout << name << ": CA-CQR2(best) / ScaLAPACK(best) at "
            << node_counts.back() << " nodes = " << last_ratio << "x\n\n";
}

/// The paper's weak-scaling (a, b) progression: nodes = base * a * b^2.
struct WeakStep {
  i64 a;
  i64 b;
};
inline std::vector<WeakStep> weak_steps() {
  return {{2, 1}, {1, 2}, {2, 2}, {4, 2}, {8, 2}, {4, 4}, {8, 4}};
}

}  // namespace cacqr::bench
