#include <gtest/gtest.h>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/factor.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/util.hpp"

namespace cacqr::lin {
namespace {

class PotrfSweep : public ::testing::TestWithParam<int> {};

TEST_P(PotrfSweep, ReconstructsInput) {
  const i64 n = GetParam();
  Rng rng(static_cast<u64>(n) * 7919);
  Matrix a = spd_with_cond(rng, n, 100.0);
  Matrix l = materialize(a.view());
  potrf(l);
  EXPECT_TRUE(is_upper_triangular(transposed(l)));
  // L L^T == A.
  Matrix back(n, n);
  gemm(Trans::N, Trans::T, 1.0, l, l, 0.0, back);
  EXPECT_LT(max_abs_diff(back, a), 1e-11 * (1.0 + max_abs(a)));
  // Diagonal strictly positive.
  for (i64 i = 0; i < n; ++i) EXPECT_GT(l(i, i), 0.0);
}

TEST_P(PotrfSweep, TrtriInvertsFactor) {
  const i64 n = GetParam();
  Rng rng(static_cast<u64>(n) * 104729);
  Matrix a = spd_with_cond(rng, n, 50.0);
  potrf(a);
  Matrix y = materialize(a.view());
  trtri_lower(y);
  // L * Y == I (ignore the strict upper triangle, both should carry zeros
  // in L's case and untouched zeros in Y's case).
  Matrix prod(n, n);
  gemm(Trans::N, Trans::N, 1.0, a, y, 0.0, prod);
  Matrix eye = Matrix::identity(n);
  EXPECT_LT(max_abs_diff(prod, eye), 1e-10 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PotrfSweep,
                         ::testing::Values(1, 2, 3, 8, 17, 48, 49, 96, 130));

TEST(PotrfTest, ThrowsOnIndefinite) {
  Matrix a = Matrix::identity(4);
  a(2, 2) = -1.0;  // indefinite
  try {
    potrf(a);
    FAIL() << "expected NotSpdError";
  } catch (const NotSpdError& e) {
    EXPECT_EQ(e.pivot, 2u);
  }
}

TEST(PotrfTest, ThrowsOnSemidefinite) {
  // Rank-1 Gram matrix: positive semidefinite, not definite.
  Matrix a(3, 3);
  for (i64 j = 0; j < 3; ++j) {
    for (i64 i = 0; i < 3; ++i) a(i, j) = 1.0;
  }
  EXPECT_THROW(potrf(a), NotSpdError);
}

TEST(PotrfTest, BlockedMatchesUnblockedPath) {
  // n larger than the internal block size exercises the blocked update;
  // cross-check against reconstruction (covered above) and determinism.
  Rng rng(5);
  Matrix a = spd_with_cond(rng, 100, 10.0);
  Matrix l1 = materialize(a.view());
  Matrix l2 = materialize(a.view());
  potrf(l1);
  potrf(l2);
  EXPECT_EQ(l1, l2);  // bitwise deterministic
}

TEST(PotrfTest, RejectsNonSquare) {
  Matrix a(3, 4);
  EXPECT_THROW(potrf(a), DimensionError);
}

TEST(TrtriTest, DiagonalOnly) {
  Matrix l = Matrix::identity(3);
  l(0, 0) = 2.0;
  l(1, 1) = 4.0;
  l(2, 2) = 8.0;
  trtri_lower(l);
  EXPECT_DOUBLE_EQ(l(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(l(1, 1), 0.25);
  EXPECT_DOUBLE_EQ(l(2, 2), 0.125);
}

TEST(TrtriTest, LargeRecursivePath) {
  Rng rng(23);
  const i64 n = 160;  // exercises the recursive splitting (block size 48)
  Matrix a = spd_with_cond(rng, n, 10.0);
  potrf(a);
  Matrix y = materialize(a.view());
  trtri_lower(y);
  Matrix prod(n, n);
  gemm(Trans::N, Trans::N, 1.0, a, y, 0.0, prod);
  EXPECT_LT(max_abs_diff(prod, Matrix::identity(n)), 1e-9);
}

TEST(CholInvTest, ProducesBothFactors) {
  Rng rng(29);
  Matrix a = spd_with_cond(rng, 24, 100.0);
  auto [l, y] = cholinv(a);
  Matrix back(24, 24);
  gemm(Trans::N, Trans::T, 1.0, l, l, 0.0, back);
  EXPECT_LT(max_abs_diff(back, a), 1e-11 * (1.0 + max_abs(a)));
  Matrix prod(24, 24);
  gemm(Trans::N, Trans::N, 1.0, l, y, 0.0, prod);
  EXPECT_LT(max_abs_diff(prod, Matrix::identity(24)), 1e-10);
}

TEST(CholInvTest, InputNotModified) {
  Rng rng(31);
  Matrix a = spd_with_cond(rng, 8, 10.0);
  Matrix saved = materialize(a.view());
  (void)cholinv(a);
  EXPECT_EQ(a, saved);
}

}  // namespace
}  // namespace cacqr::lin
