#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/qr.hpp"
#include "cacqr/lin/util.hpp"

namespace cacqr::lin {
namespace {

using QrParam = std::tuple<int, int>;  // m, n

class QrSweep : public ::testing::TestWithParam<QrParam> {};

TEST_P(QrSweep, FactorsAreValid) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<u64>(m * 1000 + n));
  Matrix a = gaussian(rng, m, n);
  auto [q, r] = householder_qr(a);

  EXPECT_EQ(q.rows(), m);
  EXPECT_EQ(q.cols(), n);
  EXPECT_TRUE(is_upper_triangular(r));
  for (i64 i = 0; i < n; ++i) EXPECT_GE(r(i, i), 0.0);
  EXPECT_LT(orthogonality_error(q), 1e-13 * std::sqrt(static_cast<double>(n)) + 1e-14);
  EXPECT_LT(residual_error(a, q, r), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrSweep,
                         ::testing::Values(QrParam{1, 1}, QrParam{4, 4},
                                           QrParam{16, 8}, QrParam{100, 17},
                                           QrParam{64, 64}, QrParam{257, 32},
                                           QrParam{512, 3}));

TEST(QrTest, UniquenessAgainstGram) {
  // With diag(R) > 0 the factorization is unique, so R^T R == A^T A.
  Rng rng(41);
  Matrix a = with_cond(rng, 40, 12, 10.0);
  auto [q, r] = householder_qr(a);
  Matrix rtr(12, 12);
  gemm(Trans::T, Trans::N, 1.0, r, r, 0.0, rtr);
  Matrix ata(12, 12);
  gram(1.0, a, 0.0, ata);
  EXPECT_LT(max_abs_diff(rtr, ata), 1e-11 * (1.0 + max_abs(ata)));
}

TEST(QrTest, RankDeficientColumnHandled) {
  // A zero column produces tau == 0 and a zero R row; no NaNs.
  Matrix a(6, 3);
  Rng rng(43);
  for (i64 i = 0; i < 6; ++i) {
    a(i, 0) = rng.normal();
    a(i, 2) = rng.normal();
  }
  Matrix packed = materialize(a.view());
  auto tau = geqrf(packed);
  for (i64 j = 0; j < 3; ++j) {
    for (i64 i = 0; i <= j; ++i) EXPECT_TRUE(std::isfinite(packed(i, j)));
  }
}

TEST(QrTest, RequiresTall) {
  Matrix a(3, 5);
  EXPECT_THROW(geqrf(a), DimensionError);
}

TEST(QrTest, ApplyQtMatchesExplicitQ) {
  Rng rng(47);
  Matrix a = gaussian(rng, 20, 6);
  Matrix packed = materialize(a.view());
  auto tau = geqrf(packed);
  Matrix q = orgqr(packed, tau);

  Matrix b = gaussian(rng, 20, 4);
  Matrix qtb_explicit(6, 4);
  gemm(Trans::T, Trans::N, 1.0, q, b, 0.0, qtb_explicit);

  Matrix c = materialize(b.view());
  apply_qt(packed, tau, c);
  EXPECT_LT(max_abs_diff(c.sub(0, 0, 6, 4), qtb_explicit.view()),
            1e-12 * (1.0 + max_abs(qtb_explicit)));
}

TEST(LstsqTest, RecoversExactSolution) {
  // Consistent system: b = A x_true exactly.
  Rng rng(53);
  Matrix a = with_cond(rng, 30, 8, 5.0);
  Matrix x_true = gaussian(rng, 8, 2);
  Matrix b(30, 2);
  matmul(a, x_true, b);
  Matrix x = lstsq(a, b);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-10);
}

TEST(LstsqTest, ResidualOrthogonalToRange) {
  // For inconsistent b, A^T (A x - b) must vanish (normal equations).
  Rng rng(59);
  Matrix a = with_cond(rng, 25, 6, 3.0);
  Matrix b = gaussian(rng, 25, 1);
  Matrix x = lstsq(a, b);
  Matrix resid = materialize(b.view());
  gemm(Trans::N, Trans::N, 1.0, a, x, -1.0, resid);
  scal(-1.0, resid);  // resid = A x - b
  Matrix atr(6, 1);
  gemm(Trans::T, Trans::N, 1.0, a, resid, 0.0, atr);
  EXPECT_LT(max_abs(atr), 1e-11 * (1.0 + max_abs(b)));
}

TEST(QrTest, IllConditionedStillBackwardStable) {
  Rng rng(61);
  Matrix a = with_cond(rng, 60, 12, 1e10);
  auto [q, r] = householder_qr(a);
  // Householder QR is unconditionally backward stable: both errors stay at
  // machine-epsilon level regardless of conditioning.
  EXPECT_LT(orthogonality_error(q), 1e-12);
  EXPECT_LT(residual_error(a, q, r), 1e-12);
}

}  // namespace
}  // namespace cacqr::lin
