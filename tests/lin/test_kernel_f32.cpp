/// \file test_kernel_f32.cpp
/// \brief The fp32 micro-kernel lane: narrow/widen conversions, per-variant
///        bitwise determinism across thread budgets and overlap modes,
///        cross-variant numerical agreement, and agreement with the fp64
///        kernels to the fp32 backward-error envelope.
///
/// Same determinism contract as the fp64 lane (test_kernel_variants.cpp):
/// for a FIXED variant the fp32 kernels are bitwise deterministic across
/// budgets and overlap; ACROSS variants (and against the fp64 reference)
/// only O(eps32)-scaled agreement is promised.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/blas_f.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/kernel.hpp"
#include "cacqr/lin/parallel.hpp"
#include "cacqr/rt/comm.hpp"

namespace {

using namespace cacqr;
using lin::Matrix;
using lin::MatrixF;
namespace kernel = lin::kernel;
namespace parallel = lin::parallel;

struct VariantGuard {
  kernel::Variant saved = kernel::active_variant();
  ~VariantGuard() { kernel::set_kernel_variant(saved); }
};

struct BudgetGuard {
  int saved = parallel::thread_budget();
  ~BudgetGuard() { parallel::set_thread_budget(saved); }
};

struct OverlapGuard {
  bool saved = rt::overlap_enabled();
  ~OverlapGuard() { rt::set_overlap_enabled(saved); }
};

bool bytes_equal(const MatrixF& a, const MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(float)) == 0;
}

MatrixF narrowed(const Matrix& a) {
  MatrixF f = MatrixF::uninit(a.rows(), a.cols());
  lin::narrow(a, f);
  return f;
}

// ----------------------------------------------------- narrow / widen

TEST(NarrowWiden, RoundTripIsExactFp32Rounding) {
  const Matrix a = lin::hashed_matrix(71, 53, 9);
  MatrixF f = MatrixF::uninit(53, 9);
  lin::narrow(a, f);
  Matrix back(53, 9);
  lin::widen(f, back);
  for (i64 j = 0; j < a.cols(); ++j) {
    for (i64 i = 0; i < a.rows(); ++i) {
      // narrow is the elementwise fp32 rounding; widen is exact.
      EXPECT_EQ(back(i, j), static_cast<double>(static_cast<float>(a(i, j))))
          << i << "," << j;
    }
  }
}

TEST(NarrowWiden, BitwiseAcrossBudgets) {
  BudgetGuard guard;
  const Matrix a = lin::hashed_matrix(72, 400, 40);
  parallel::set_thread_budget(1);
  const MatrixF ref = narrowed(a);
  for (const int budget : {2, 4}) {
    parallel::set_thread_budget(budget);
    EXPECT_TRUE(bytes_equal(narrowed(a), ref)) << "t=" << budget;
  }
}

// ------------------------------------------------ the fp32 kernel lane

/// One representative of each packed fp32 entry path, big enough to
/// engage the threaded driver and straddle every variant's blocking.
struct KernelOutputsF32 {
  MatrixF gemm_tn;  // C = 1.25 A^T B   (the c > 1 Gram-assembly path)
  MatrixF gemm_nn;  // C = A X
  MatrixF gram;     // G = A^T A
};

KernelOutputsF32 run_kernels_f32() {
  const i64 m = 700;
  const i64 n = 90;
  const MatrixF a = narrowed(lin::hashed_matrix(41, m, n));
  const MatrixF b = narrowed(lin::hashed_matrix(43, m, n));
  const MatrixF xs = narrowed(lin::hashed_matrix(47, n, n));
  KernelOutputsF32 out{MatrixF(n, n), MatrixF(m, n), MatrixF(n, n)};
  lin::gemm_f32(lin::Trans::T, lin::Trans::N, 1.25f, a, b, 0.0f,
                out.gemm_tn);
  lin::gemm_f32(lin::Trans::N, lin::Trans::N, 1.0f, a, xs, 0.0f,
                out.gemm_nn);
  lin::gram_f32(1.0f, a, 0.0f, out.gram);
  return out;
}

TEST(KernelF32Determinism, BitwiseAcrossBudgetsAndOverlap) {
  VariantGuard vguard;
  BudgetGuard bguard;
  OverlapGuard oguard;
  for (const kernel::Variant v : kernel::supported_variants()) {
    kernel::set_kernel_variant(v);
    parallel::set_thread_budget(1);
    rt::set_overlap_enabled(false);
    const KernelOutputsF32 ref = run_kernels_f32();
    for (const int budget : {1, 4}) {
      for (const bool overlap : {false, true}) {
        parallel::set_thread_budget(budget);
        rt::set_overlap_enabled(overlap);
        const KernelOutputsF32 got = run_kernels_f32();
        EXPECT_TRUE(bytes_equal(got.gemm_tn, ref.gemm_tn))
            << kernel::variant_name(v) << " gemm_tn t=" << budget
            << " overlap=" << overlap;
        EXPECT_TRUE(bytes_equal(got.gemm_nn, ref.gemm_nn))
            << kernel::variant_name(v) << " gemm_nn t=" << budget
            << " overlap=" << overlap;
        EXPECT_TRUE(bytes_equal(got.gram, ref.gram))
            << kernel::variant_name(v) << " gram t=" << budget
            << " overlap=" << overlap;
      }
    }
  }
}

/// Componentwise relative agreement under the k-scaled fp32 backward-
/// error envelope: |x - y| <= tol_k (|x| + |y| + 1), tol_k = 8 k eps32.
void expect_componentwise_close_f32(const MatrixF& x, const MatrixF& y,
                                    i64 k, const char* tag) {
  ASSERT_EQ(x.rows(), y.rows());
  ASSERT_EQ(x.cols(), y.cols());
  const double tol =
      8.0 * static_cast<double>(k) *
      static_cast<double>(std::numeric_limits<float>::epsilon());
  for (i64 j = 0; j < x.cols(); ++j) {
    for (i64 i = 0; i < x.rows(); ++i) {
      const double xv = x(i, j);
      const double yv = y(i, j);
      const double d = std::abs(xv - yv);
      ASSERT_LE(d, tol * (std::abs(xv) + std::abs(yv) + 1.0))
          << tag << " (" << i << ", " << j << ")";
    }
  }
}

TEST(KernelF32Agreement, AllVariantsMatchGenericToTolerance) {
  VariantGuard vguard;
  kernel::set_kernel_variant(kernel::Variant::generic);
  const KernelOutputsF32 ref = run_kernels_f32();
  const i64 k = 700;  // reduction length of gemm_tn/gram
  for (const kernel::Variant v : kernel::supported_variants()) {
    if (v == kernel::Variant::generic) continue;
    kernel::set_kernel_variant(v);
    const KernelOutputsF32 got = run_kernels_f32();
    expect_componentwise_close_f32(got.gemm_tn, ref.gemm_tn, k,
                                   kernel::variant_name(v));
    expect_componentwise_close_f32(got.gemm_nn, ref.gemm_nn, 90,
                                   kernel::variant_name(v));
    expect_componentwise_close_f32(got.gram, ref.gram, k,
                                   kernel::variant_name(v));
  }
}

TEST(KernelF32Agreement, GramF32MatchesFp64Gram) {
  // The fp32 Gram must agree with the fp64 Gram of the same matrix to
  // the fp32 envelope -- the accuracy claim the mixed-precision driver's
  // first pass is built on.
  const i64 m = 700;
  const i64 n = 90;
  const Matrix a = lin::hashed_matrix(41, m, n);
  Matrix g64(n, n);
  lin::gram(1.0, a, 0.0, g64);
  MatrixF gf = MatrixF(n, n);
  lin::gram_f32(1.0f, narrowed(a), 0.0f, gf);
  Matrix g32(n, n);
  lin::widen(gf, g32);
  const double tol =
      8.0 * static_cast<double>(m) *
      static_cast<double>(std::numeric_limits<float>::epsilon());
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = 0; i < n; ++i) {
      const double d = std::abs(g32(i, j) - g64(i, j));
      EXPECT_LE(d, tol * (std::abs(g64(i, j)) + 1.0)) << i << "," << j;
    }
  }
}

TEST(KernelF32Agreement, GramF32ResultIsSymmetric) {
  // gram_f32 computes the lower triangle through the kernel lane and
  // mirrors it; the mirrored result must be exactly symmetric.
  const MatrixF a = narrowed(lin::hashed_matrix(49, 300, 37));
  MatrixF g(37, 37);
  lin::gram_f32(1.0f, a, 0.0f, g);
  for (i64 j = 0; j < 37; ++j) {
    for (i64 i = 0; i < j; ++i) {
      EXPECT_EQ(g(i, j), g(j, i)) << i << "," << j;
    }
  }
}

}  // namespace
