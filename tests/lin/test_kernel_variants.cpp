/// \file test_kernel_variants.cpp
/// \brief The SIMD micro-kernel variant family: CACQR_KERNEL parsing,
///        dispatch-probe consistency, loud refusal of unsupported forced
///        variants, per-variant bitwise determinism across thread budgets
///        and overlap modes, and cross-variant numerical agreement.
///
/// Determinism contract (DESIGN.md section 2): for a FIXED variant the
/// kernels are bitwise deterministic across thread budgets and overlap
/// on/off -- the one-owner tile schedule never splits a k-reduction.
/// ACROSS variants only O(eps) agreement is promised: a variant with a
/// different micro-tile (avx512's 16x14) or different cache blocking
/// changes the pc-loop accumulation splits, which reorders floating-point
/// additions.  The componentwise relative tolerance below scales with the
/// reduction length k, the standard backward-error envelope.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/kernel.hpp"
#include "cacqr/lin/parallel.hpp"
#include "cacqr/lin/util.hpp"
#include "cacqr/rt/comm.hpp"
#include "cacqr/support/error.hpp"

namespace {

using namespace cacqr;
using lin::Matrix;
namespace kernel = lin::kernel;
namespace parallel = lin::parallel;

/// Restores the entry micro-kernel variant on scope exit, so a test
/// forcing avx2 cannot leak it into the rest of the suite.
struct VariantGuard {
  kernel::Variant saved = kernel::active_variant();
  ~VariantGuard() { kernel::set_kernel_variant(saved); }
};

/// Restores the worker budget on scope exit (same idiom as
/// test_parallel.cpp).
struct BudgetGuard {
  int saved = parallel::thread_budget();
  ~BudgetGuard() { parallel::set_thread_budget(saved); }
};

/// Restores the overlap toggle on scope exit.
struct OverlapGuard {
  bool saved = rt::overlap_enabled();
  ~OverlapGuard() { rt::set_overlap_enabled(saved); }
};

bool bytes_equal(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(double)) == 0;
}

bool contains(const std::vector<kernel::Variant>& vs, kernel::Variant v) {
  for (const kernel::Variant x : vs) {
    if (x == v) return true;
  }
  return false;
}

// --------------------------------------------------- CACQR_KERNEL parsing

TEST(ParseKernelVariant, AutoSpellings) {
  EXPECT_EQ(kernel::parse_kernel_variant(nullptr),
            kernel::VariantChoice::automatic);
  EXPECT_EQ(kernel::parse_kernel_variant(""),
            kernel::VariantChoice::automatic);
  EXPECT_EQ(kernel::parse_kernel_variant("auto"),
            kernel::VariantChoice::automatic);
}

TEST(ParseKernelVariant, NamedVariants) {
  EXPECT_EQ(kernel::parse_kernel_variant("generic"),
            kernel::VariantChoice::generic);
  EXPECT_EQ(kernel::parse_kernel_variant("avx2"),
            kernel::VariantChoice::avx2);
  EXPECT_EQ(kernel::parse_kernel_variant("avx512"),
            kernel::VariantChoice::avx512);
  EXPECT_EQ(kernel::parse_kernel_variant("neon"),
            kernel::VariantChoice::neon);
}

TEST(ParseKernelVariant, RejectsEverythingElse) {
  for (const char* bad : {"AVX2", "avx-512", "sse2", "generic ", " neon",
                          "0", "best", "Auto"}) {
    EXPECT_EQ(kernel::parse_kernel_variant(bad),
              kernel::VariantChoice::invalid)
        << "accepted: '" << bad << "'";
  }
}

TEST(ParseKernelVariant, RoundTripsVariantNames) {
  // Every name variant_name produces must parse back to the same variant
  // -- keeps the env-var surface and the diagnostics in sync.
  for (const kernel::Variant v :
       {kernel::Variant::generic, kernel::Variant::avx2,
        kernel::Variant::avx512, kernel::Variant::neon}) {
    const kernel::VariantChoice c =
        kernel::parse_kernel_variant(kernel::variant_name(v));
    EXPECT_EQ(static_cast<int>(c),
              static_cast<int>(v) + 1);  // choice order: automatic first
  }
}

// ----------------------------------------------------- dispatch probing

TEST(KernelDispatch, GenericIsAlwaysSupported) {
  EXPECT_TRUE(kernel::variant_supported(kernel::Variant::generic));
  EXPECT_TRUE(contains(kernel::supported_variants(),
                       kernel::Variant::generic));
}

TEST(KernelDispatch, SupportedSetIsConsistent) {
  const std::vector<kernel::Variant> vs = kernel::supported_variants();
  EXPECT_FALSE(vs.empty());
  for (const kernel::Variant v :
       {kernel::Variant::generic, kernel::Variant::avx2,
        kernel::Variant::avx512, kernel::Variant::neon}) {
    EXPECT_EQ(kernel::variant_supported(v), contains(vs, v))
        << kernel::variant_name(v);
  }
  // The SIMD families are per-architecture: a host can never execute
  // both the x86 and the aarch64 lanes.
  EXPECT_FALSE(kernel::variant_supported(kernel::Variant::avx2) &&
               kernel::variant_supported(kernel::Variant::neon));
}

TEST(KernelDispatch, ActiveVariantIsSupported) {
  EXPECT_TRUE(kernel::variant_supported(kernel::active_variant()));
}

TEST(KernelDispatch, SetVariantReturnsPreviousAndSticks) {
  VariantGuard guard;
  const kernel::Variant entry = kernel::active_variant();
  const kernel::Variant prev =
      kernel::set_kernel_variant(kernel::Variant::generic);
  EXPECT_EQ(prev, entry);
  EXPECT_EQ(kernel::active_variant(), kernel::Variant::generic);
  EXPECT_EQ(kernel::set_kernel_variant(entry), kernel::Variant::generic);
}

TEST(KernelDispatch, ForcingUnsupportedVariantThrows) {
  bool any_unsupported = false;
  for (const kernel::Variant v :
       {kernel::Variant::avx2, kernel::Variant::avx512,
        kernel::Variant::neon}) {
    if (kernel::variant_supported(v)) continue;
    any_unsupported = true;
    EXPECT_THROW(kernel::set_kernel_variant(v), Error)
        << kernel::variant_name(v);
  }
  // Impossible by the per-architecture argument above, but keep the test
  // honest if it ever runs on an exotic host.
  if (!any_unsupported) GTEST_SKIP() << "host executes every variant";
}

// ------------------------------------- per-variant bitwise determinism

/// One representative of each packed-kernel entry path, big enough to
/// engage the threaded driver and straddle every variant's blocking.
struct KernelOutputs {
  Matrix gemm_tn;  // C = 1.3 A^T B        (the Gram-like path)
  Matrix gemm_nn;  // C = A X              (panel x square)
  Matrix gram;     // G = A^T A            (triangular filter)
};

KernelOutputs run_kernels() {
  const i64 m = 700;
  const i64 n = 90;
  Matrix a = lin::hashed_matrix(41, m, n);
  Matrix b = lin::hashed_matrix(43, m, n);
  Matrix xs = lin::hashed_matrix(47, n, n);
  KernelOutputs out{Matrix(n, n), Matrix(m, n), Matrix(n, n)};
  lin::gemm(lin::Trans::T, lin::Trans::N, 1.3, a, b, 0.0, out.gemm_tn);
  lin::matmul(a, xs, out.gemm_nn);
  lin::gram(1.0, a, 0.0, out.gram);
  return out;
}

TEST(KernelVariantDeterminism, BitwiseAcrossBudgetsAndOverlap) {
  VariantGuard vguard;
  BudgetGuard bguard;
  OverlapGuard oguard;
  for (const kernel::Variant v : kernel::supported_variants()) {
    kernel::set_kernel_variant(v);
    parallel::set_thread_budget(1);
    rt::set_overlap_enabled(false);
    const KernelOutputs ref = run_kernels();
    for (const int budget : {1, 4}) {
      for (const bool overlap : {false, true}) {
        parallel::set_thread_budget(budget);
        rt::set_overlap_enabled(overlap);
        const KernelOutputs got = run_kernels();
        EXPECT_TRUE(bytes_equal(got.gemm_tn, ref.gemm_tn))
            << kernel::variant_name(v) << " gemm_tn t=" << budget
            << " overlap=" << overlap;
        EXPECT_TRUE(bytes_equal(got.gemm_nn, ref.gemm_nn))
            << kernel::variant_name(v) << " gemm_nn t=" << budget
            << " overlap=" << overlap;
        EXPECT_TRUE(bytes_equal(got.gram, ref.gram))
            << kernel::variant_name(v) << " gram t=" << budget
            << " overlap=" << overlap;
      }
    }
  }
}

// --------------------------------------- cross-variant numerical agreement

/// Componentwise relative agreement under the k-scaled backward-error
/// envelope: |x - y| <= tol_k * (|x| + |y| + 1), tol_k = 8 k eps.  The
/// "+1" absorbs entries near zero, where relative error is meaningless
/// for a dot product of O(1) terms.
void expect_componentwise_close(const Matrix& x, const Matrix& y, i64 k,
                                const char* tag) {
  ASSERT_EQ(x.rows(), y.rows());
  ASSERT_EQ(x.cols(), y.cols());
  const double tol =
      8.0 * static_cast<double>(k) * std::numeric_limits<double>::epsilon();
  for (i64 j = 0; j < x.cols(); ++j) {
    for (i64 i = 0; i < x.rows(); ++i) {
      const double d = std::abs(x(i, j) - y(i, j));
      ASSERT_LE(d, tol * (std::abs(x(i, j)) + std::abs(y(i, j)) + 1.0))
          << tag << " (" << i << ", " << j << ")";
    }
  }
}

TEST(KernelVariantAgreement, AllVariantsMatchGenericToTolerance) {
  VariantGuard vguard;
  kernel::set_kernel_variant(kernel::Variant::generic);
  const KernelOutputs ref = run_kernels();
  const i64 k = 700;  // reduction length of run_kernels' gemm_tn/gram
  for (const kernel::Variant v : kernel::supported_variants()) {
    if (v == kernel::Variant::generic) continue;
    kernel::set_kernel_variant(v);
    const KernelOutputs got = run_kernels();
    expect_componentwise_close(got.gemm_tn, ref.gemm_tn, k,
                               kernel::variant_name(v));
    expect_componentwise_close(got.gemm_nn, ref.gemm_nn, 90,
                               kernel::variant_name(v));
    expect_componentwise_close(got.gram, ref.gram, k,
                               kernel::variant_name(v));
  }
}

}  // namespace
