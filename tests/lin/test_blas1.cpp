#include <gtest/gtest.h>

#include <cmath>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/flops.hpp"
#include "cacqr/lin/generate.hpp"

namespace cacqr::lin {
namespace {

TEST(Blas1Test, Axpy) {
  Matrix x(3, 2), y(3, 2);
  for (i64 j = 0; j < 2; ++j) {
    for (i64 i = 0; i < 3; ++i) {
      x(i, j) = static_cast<double>(i + j);
      y(i, j) = 1.0;
    }
  }
  axpy(2.0, x, y);
  for (i64 j = 0; j < 2; ++j) {
    for (i64 i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(y(i, j), 1.0 + 2.0 * static_cast<double>(i + j));
    }
  }
}

TEST(Blas1Test, AxpyShapeMismatchThrows) {
  Matrix x(3, 2), y(2, 3);
  EXPECT_THROW(axpy(1.0, x, y), DimensionError);
}

TEST(Blas1Test, Scal) {
  Matrix x(2, 2);
  x(0, 0) = 1;
  x(1, 1) = -2;
  scal(-3.0, x);
  EXPECT_DOUBLE_EQ(x(0, 0), -3.0);
  EXPECT_DOUBLE_EQ(x(1, 1), 6.0);
}

TEST(Blas1Test, DotAndNrm2Agree) {
  Rng rng(5);
  Matrix x = gaussian(rng, 7, 3);
  const double d = dot(x, x);
  const double n = nrm2(x);
  EXPECT_NEAR(std::sqrt(d), n, 1e-12 * n);
}

TEST(Blas1Test, Nrm2AvoidsOverflow) {
  Matrix x(2, 1);
  x(0, 0) = 1e200;
  x(1, 0) = 1e200;
  EXPECT_NEAR(nrm2(x), std::sqrt(2.0) * 1e200, 1e188);
}

TEST(Blas1Test, Nrm2AvoidsUnderflow) {
  Matrix x(2, 1);
  x(0, 0) = 1e-200;
  x(1, 0) = 1e-200;
  EXPECT_NEAR(nrm2(x), std::sqrt(2.0) * 1e-200, 1e-212);
}

TEST(Blas1Test, GemvNoTrans) {
  // A = [1 2; 3 4], x = [1; 1] -> A x = [3; 7].
  Matrix a(2, 2), x(2, 1), y(2, 1);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  x(0, 0) = 1;
  x(1, 0) = 1;
  gemv(Trans::N, 1.0, a, x, 0.0, y);
  EXPECT_DOUBLE_EQ(y(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(y(1, 0), 7.0);
}

TEST(Blas1Test, GemvTransWithBeta) {
  Matrix a(2, 2), x(2, 1), y(2, 1);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  x(0, 0) = 1;
  x(1, 0) = 2;
  y(0, 0) = 10;
  y(1, 0) = 20;
  // y = A^T x + 0.5 y = [1+6; 2+8] + [5; 10] = [12; 20].
  gemv(Trans::T, 1.0, a, x, 0.5, y);
  EXPECT_DOUBLE_EQ(y(0, 0), 12.0);
  EXPECT_DOUBLE_EQ(y(1, 0), 20.0);
}

TEST(Blas1Test, FlopAccounting) {
  flops::reset();
  Matrix x(4, 5), y(4, 5);
  axpy(1.0, x, y);
  EXPECT_EQ(flops::peek(), 2 * 4 * 5);
  const i64 taken = flops::take();
  EXPECT_EQ(taken, 2 * 4 * 5);
  EXPECT_EQ(flops::peek(), 0);
}

}  // namespace
}  // namespace cacqr::lin
