#include <gtest/gtest.h>

#include <cmath>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/factor.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/util.hpp"

namespace cacqr::lin {
namespace {

TEST(GenerateTest, GaussianIsDeterministicInSeed) {
  Rng r1(9), r2(9);
  Matrix a = gaussian(r1, 10, 4);
  Matrix b = gaussian(r2, 10, 4);
  EXPECT_EQ(a, b);
}

TEST(GenerateTest, RandomOrthogonalIsOrthogonal) {
  Rng rng(10);
  for (const i64 n : {1, 2, 7, 32}) {
    Matrix q = random_orthogonal(rng, n);
    EXPECT_LT(orthogonality_error(q), 1e-13) << "n=" << n;
  }
}

TEST(GenerateTest, WithSingularValuesHasPrescribedSpectrum) {
  Rng rng(11);
  const std::vector<double> sigma = {4.0, 2.0, 1.0, 0.5};
  Matrix a = with_singular_values(rng, 20, 4, sigma);
  // ||A||_F^2 == sum sigma_i^2 for exact SVD construction.
  const double f = frob_norm(a);
  const double expect = std::sqrt(16.0 + 4.0 + 1.0 + 0.25);
  EXPECT_NEAR(f, expect, 1e-10);
  // sigma_max via the Gram matrix trace bound sanity: x^T A^T A x <= s1^2.
  EXPECT_NEAR(cond2_estimate(a), 8.0, 0.5);
}

TEST(GenerateTest, WithCondHitsTarget) {
  Rng rng(12);
  Matrix a = with_cond(rng, 64, 8, 1e6);
  const double est = cond2_estimate(a);
  EXPECT_GT(est, 3e5);
  EXPECT_LT(est, 3e6);
}

TEST(GenerateTest, SpdIsSymmetricAndFactorizable) {
  Rng rng(13);
  Matrix a = spd_with_cond(rng, 30, 1e4);
  for (i64 j = 0; j < 30; ++j) {
    for (i64 i = 0; i < 30; ++i) EXPECT_EQ(a(i, j), a(j, i));
  }
  // Must be positive definite: Cholesky succeeds.
  Matrix l = materialize(a.view());
  EXPECT_NO_THROW(potrf(l));
}

TEST(GenerateTest, EntryHashIsPure) {
  EXPECT_EQ(entry_hash(5, 3, 4), entry_hash(5, 3, 4));
  EXPECT_NE(entry_hash(5, 3, 4), entry_hash(5, 4, 3));
  EXPECT_NE(entry_hash(5, 3, 4), entry_hash(6, 3, 4));
  for (i64 i = 0; i < 50; ++i) {
    const double v = entry_hash(1, i, 2 * i + 1);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(GenerateTest, HashedMatrixMatchesEntryHash) {
  Matrix a = hashed_matrix(77, 6, 5);
  for (i64 j = 0; j < 5; ++j) {
    for (i64 i = 0; i < 6; ++i) EXPECT_EQ(a(i, j), entry_hash(77, i, j));
  }
}

TEST(GenerateTest, HashedMatrixIsWellConditioned) {
  // Tall hashed matrices behave like iid uniform: condition number stays
  // modest, which the distributed tests rely on for CholeskyQR stability.
  Matrix a = hashed_matrix(123, 256, 16);
  EXPECT_LT(cond2_estimate(a), 20.0);
}

}  // namespace
}  // namespace cacqr::lin
