#include <gtest/gtest.h>

#include "cacqr/lin/matrix.hpp"

namespace cacqr::lin {
namespace {

TEST(MatrixTest, ZeroInitialized) {
  Matrix a(3, 4);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 4);
  for (i64 j = 0; j < 4; ++j) {
    for (i64 i = 0; i < 3; ++i) EXPECT_EQ(a(i, j), 0.0);
  }
}

TEST(MatrixTest, ColumnMajorLayout) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(1, 0) = 2;
  a(0, 1) = 3;
  a(1, 2) = 6;
  EXPECT_EQ(a.data()[0], 1);
  EXPECT_EQ(a.data()[1], 2);
  EXPECT_EQ(a.data()[2], 3);
  EXPECT_EQ(a.data()[5], 6);
}

TEST(MatrixTest, Identity) {
  Matrix eye = Matrix::identity(4);
  for (i64 j = 0; j < 4; ++j) {
    for (i64 i = 0; i < 4; ++i) EXPECT_EQ(eye(i, j), i == j ? 1.0 : 0.0);
  }
}

TEST(MatrixTest, SubViewAliasesStorage) {
  Matrix a(4, 4);
  auto block = a.sub(1, 2, 2, 2);
  block(0, 0) = 42.0;
  block(1, 1) = -1.0;
  EXPECT_EQ(a(1, 2), 42.0);
  EXPECT_EQ(a(2, 3), -1.0);
  EXPECT_EQ(block.ld, 4);
  EXPECT_EQ(block.rows, 2);
}

TEST(MatrixTest, SubViewBoundsChecked) {
  Matrix a(4, 4);
  EXPECT_THROW((void)a.sub(3, 3, 2, 2), DimensionError);
  EXPECT_THROW((void)a.sub(-1, 0, 1, 1), DimensionError);
  EXPECT_NO_THROW((void)a.sub(0, 0, 4, 4));
}

TEST(MatrixTest, NestedSubView) {
  Matrix a(6, 6);
  for (i64 j = 0; j < 6; ++j) {
    for (i64 i = 0; i < 6; ++i) a(i, j) = static_cast<double>(10 * i + j);
  }
  auto outer = a.sub(1, 1, 4, 4);
  auto inner = outer.sub(1, 1, 2, 2);
  EXPECT_EQ(inner(0, 0), a(2, 2));
  EXPECT_EQ(inner(1, 1), a(3, 3));
}

TEST(MatrixTest, MaterializeCopies) {
  Matrix a(3, 3);
  a(1, 1) = 5.0;
  Matrix b = materialize(a.sub(0, 0, 2, 2));
  EXPECT_EQ(b.rows(), 2);
  EXPECT_EQ(b(1, 1), 5.0);
  b(1, 1) = 9.0;
  EXPECT_EQ(a(1, 1), 5.0);  // deep copy
}

TEST(MatrixTest, Equality) {
  Matrix a(2, 2), b(2, 2);
  EXPECT_TRUE(a == b);
  b(0, 1) = 1e-300;
  EXPECT_FALSE(a == b);
}

TEST(MatrixTest, SizeUsesCheckedMultiply) {
  Matrix a(3, 4);
  EXPECT_EQ(a.size(), 12);
  Matrix empty;
  EXPECT_EQ(empty.size(), 0);
}

TEST(MaterializeTest, ContiguousViewFastPath) {
  // ld == rows takes the single-memcpy path; result must be identical.
  Matrix a(7, 5);
  for (i64 j = 0; j < 5; ++j) {
    for (i64 i = 0; i < 7; ++i) a(i, j) = static_cast<double>(i * 100 + j);
  }
  Matrix b = materialize(a.view());
  EXPECT_TRUE(a == b);
}

TEST(MaterializeTest, StridedViewPerColumnCopy) {
  Matrix a(8, 8);
  for (i64 j = 0; j < 8; ++j) {
    for (i64 i = 0; i < 8; ++i) a(i, j) = static_cast<double>(i * 100 + j);
  }
  auto v = a.sub(2, 3, 4, 3);  // ld 8 > rows 4
  Matrix b = materialize(v);
  for (i64 j = 0; j < 3; ++j) {
    for (i64 i = 0; i < 4; ++i) EXPECT_EQ(b(i, j), v(i, j));
  }
}

TEST(MaterializeTest, DegenerateViews) {
  Matrix a(0, 4);
  Matrix b = materialize(a.view());
  EXPECT_EQ(b.rows(), 0);
  EXPECT_EQ(b.cols(), 4);
  Matrix c(4, 0);
  EXPECT_EQ(materialize(c.view()).cols(), 0);
}

TEST(UninitTest, ShapeAndFullOverwriteMatchZeroConstructed) {
  Matrix u = Matrix::uninit(9, 5);
  EXPECT_EQ(u.rows(), 9);
  EXPECT_EQ(u.cols(), 5);
  EXPECT_EQ(u.size(), 45);
  // After a full overwrite an uninit matrix is indistinguishable from a
  // zero-constructed one -- the only legal way to use it.
  Matrix z(9, 5);
  for (i64 j = 0; j < 5; ++j) {
    for (i64 i = 0; i < 9; ++i) {
      const double v = static_cast<double>(i * 10 + j);
      u(i, j) = v;
      z(i, j) = v;
    }
  }
  EXPECT_TRUE(u == z);
}

TEST(UninitTest, DegenerateAndZeroSized) {
  EXPECT_EQ(Matrix::uninit(0, 7).size(), 0);
  EXPECT_EQ(Matrix::uninit(7, 0).rows(), 7);
  EXPECT_THROW(Matrix::uninit(-1, 2), DimensionError);
}

TEST(UninitTest, ZeroingConstructorStillZeroes) {
  // The audit contract: Matrix(m, n) (identity, DistMatrix construction,
  // padding) keeps value-initialized storage.
  Matrix z(16, 16);
  for (i64 j = 0; j < 16; ++j) {
    for (i64 i = 0; i < 16; ++i) EXPECT_EQ(z(i, j), 0.0);
  }
  Matrix id = Matrix::identity(4);
  for (i64 j = 0; j < 4; ++j) {
    for (i64 i = 0; i < 4; ++i) EXPECT_EQ(id(i, j), i == j ? 1.0 : 0.0);
  }
}

}  // namespace
}  // namespace cacqr::lin
