#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/flops.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/util.hpp"

namespace cacqr::lin {
namespace {

/// Reference triple-loop product used to validate the blocked kernel.
Matrix naive_gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                  ConstMatrixView b, double beta, ConstMatrixView c0) {
  const i64 m = ta == Trans::N ? a.rows : a.cols;
  const i64 k = ta == Trans::N ? a.cols : a.rows;
  const i64 n = tb == Trans::N ? b.cols : b.rows;
  Matrix c = materialize(c0);
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = 0; i < m; ++i) {
      double acc = 0.0;
      for (i64 kk = 0; kk < k; ++kk) {
        const double av = ta == Trans::N ? a(i, kk) : a(kk, i);
        const double bv = tb == Trans::N ? b(kk, j) : b(j, kk);
        acc += av * bv;
      }
      c(i, j) = alpha * acc + beta * c(i, j);
    }
  }
  return c;
}

using GemmParam = std::tuple<int, int, int, int, int>;  // m, n, k, ta, tb

class GemmSweep : public ::testing::TestWithParam<GemmParam> {};

TEST_P(GemmSweep, MatchesNaive) {
  const auto [m, n, k, tai, tbi] = GetParam();
  const Trans ta = tai ? Trans::T : Trans::N;
  const Trans tb = tbi ? Trans::T : Trans::N;
  Rng rng(static_cast<u64>(1000 * m + 100 * n + 10 * k + 2 * tai + tbi));
  Matrix a = gaussian(rng, ta == Trans::N ? m : k, ta == Trans::N ? k : m);
  Matrix b = gaussian(rng, tb == Trans::N ? k : n, tb == Trans::N ? n : k);
  Matrix c = gaussian(rng, m, n);
  Matrix expect = naive_gemm(ta, tb, -1.5, a, b, 0.5, c);
  gemm(ta, tb, -1.5, a, b, 0.5, c);
  EXPECT_LT(max_abs_diff(c, expect), 1e-11 * (1.0 + max_abs(expect)))
      << "m=" << m << " n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(
        GemmParam{1, 1, 1, 0, 0}, GemmParam{3, 2, 4, 0, 0},
        GemmParam{16, 16, 16, 0, 0}, GemmParam{33, 17, 65, 0, 0},
        GemmParam{128, 64, 300, 0, 0}, GemmParam{300, 129, 64, 0, 0},
        GemmParam{8, 8, 8, 1, 0}, GemmParam{31, 17, 12, 1, 0},
        GemmParam{64, 33, 129, 1, 0}, GemmParam{8, 8, 8, 0, 1},
        GemmParam{17, 31, 12, 0, 1}, GemmParam{64, 129, 33, 0, 1},
        GemmParam{8, 8, 8, 1, 1}, GemmParam{23, 19, 29, 1, 1},
        GemmParam{5, 130, 7, 1, 1},
        // Shapes straddling the packed kernel's MC/KC cache blocks and the
        // MR/NR register tile in every transpose case.
        GemmParam{149, 13, 261, 0, 0}, GemmParam{150, 11, 259, 1, 0},
        GemmParam{145, 157, 30, 0, 1}, GemmParam{146, 9, 257, 1, 1}));

TEST(GemmTest, SubViewOperands) {
  // Multiplying sub-blocks must respect leading dimensions.
  Rng rng(77);
  Matrix big = gaussian(rng, 10, 10);
  auto a = big.sub(1, 1, 4, 3);
  auto b = big.sub(2, 4, 3, 5);
  Matrix c(4, 5);
  matmul(a, b, c);
  Matrix zero(4, 5);
  Matrix expect = naive_gemm(Trans::N, Trans::N, 1.0, a, b, 0.0, zero.view());
  EXPECT_LT(max_abs_diff(c, expect), 1e-12);
}

TEST(GemmTest, BetaZeroOverwritesNan) {
  // beta == 0 must overwrite even NaN garbage in C (BLAS semantics).
  Matrix a = Matrix::identity(2);
  Matrix b = Matrix::identity(2);
  Matrix c(2, 2);
  c(0, 0) = std::nan("");
  gemm(Trans::N, Trans::N, 1.0, a, b, 0.0, c);
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
}

TEST(GemmTest, DimensionMismatchThrows) {
  Matrix a(3, 4), b(5, 2), c(3, 2);
  EXPECT_THROW(matmul(a, b, c), DimensionError);
  Matrix b2(4, 2), cbad(2, 2);
  EXPECT_THROW(matmul(a, b2, cbad), DimensionError);
}

TEST(GemmTest, FlopCount) {
  Matrix a(8, 4), b(4, 6), c(8, 6);
  flops::reset();
  matmul(a, b, c);
  EXPECT_EQ(flops::take(), 2 * 8 * 6 * 4);
}

TEST(GemmTest, AlphaZeroFastPathChargesNoFlops) {
  // Regression: the seed charged 2*m*n*k for the alpha == 0 early return,
  // inflating the machine model's gamma tally for a scaling-only call.
  Rng rng(99);
  Matrix a = gaussian(rng, 8, 4);
  Matrix b = gaussian(rng, 4, 6);
  Matrix c = gaussian(rng, 8, 6);
  Matrix expect = materialize(c.view());
  scal(0.5, expect);
  flops::reset();
  gemm(Trans::N, Trans::N, 0.0, a, b, 0.5, c);
  EXPECT_EQ(flops::take(), 0);
  EXPECT_LT(max_abs_diff(c, expect), 1e-15);
}

TEST(GemmTest, ZeroInnerDimensionChargesNoFlops) {
  Matrix a(5, 0), b(0, 3), c(5, 3);
  c(1, 1) = 7.0;
  flops::reset();
  gemm(Trans::N, Trans::N, 1.0, a, b, 0.0, c);
  EXPECT_EQ(flops::take(), 0);
  EXPECT_EQ(c(1, 1), 0.0);  // beta == 0 still overwrites
}

TEST(GramTest, MatchesGemmTN) {
  Rng rng(11);
  Matrix a = gaussian(rng, 20, 7);
  Matrix g1(7, 7), g2(7, 7);
  gram(1.0, a, 0.0, g1);
  gemm(Trans::T, Trans::N, 1.0, a, a, 0.0, g2);
  EXPECT_LT(max_abs_diff(g1, g2), 1e-12 * max_abs(g2));
}

TEST(GramTest, ResultExactlySymmetric) {
  Rng rng(13);
  Matrix a = gaussian(rng, 33, 9);
  Matrix g(9, 9);
  gram(1.0, a, 0.0, g);
  for (i64 j = 0; j < 9; ++j) {
    for (i64 i = 0; i < 9; ++i) EXPECT_EQ(g(i, j), g(j, i));
  }
}

TEST(GramTest, HalfTheGemmFlops) {
  Matrix a(16, 8);
  flops::reset();
  Matrix g(8, 8);
  gram(1.0, a, 0.0, g);
  const i64 f = flops::take();
  EXPECT_EQ(f, 16 * 8 * 9);  // m * n * (n+1)
  EXPECT_LT(f, 2 * 16 * 8 * 8);
}

TEST(SyrkTest, MatchesGemmNT) {
  Rng rng(17);
  Matrix a = gaussian(rng, 9, 21);
  Matrix c1(9, 9), c2(9, 9);
  syrk_nt(-1.0, a, 0.0, c1, Uplo::Lower);
  gemm(Trans::N, Trans::T, -1.0, a, a, 0.0, c2);
  EXPECT_LT(max_abs_diff(c1, c2), 1e-12 * (1.0 + max_abs(c2)));
}

TEST(SyrkTest, AccumulatesWithBeta) {
  Rng rng(19);
  Matrix a = gaussian(rng, 5, 4);
  Matrix c = Matrix::identity(5);
  syrk_nt(1.0, a, 2.0, c, Uplo::Lower);
  Matrix expect = Matrix::identity(5);
  scal(2.0, expect);
  gemm(Trans::N, Trans::T, 1.0, a, a, 1.0, expect);
  EXPECT_LT(max_abs_diff(c, expect), 1e-12 * (1.0 + max_abs(expect)));
}

// ---------------------------------------------------------------- sweeps
// Parameterized validation of the blocked gram/syrk_nt against the dense
// gemm reference across shapes that are not multiples of the kernel's
// MR/NR/MC/KC blocks (mirrors GemmSweep above).

using SymParam = std::tuple<int, int>;  // m (or k), n

class GramSweep : public ::testing::TestWithParam<SymParam> {};

TEST_P(GramSweep, MatchesGemmAndStaysSymmetric) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<u64>(500 + 37 * m + n));
  Matrix a = gaussian(rng, m, n);
  Matrix g = gaussian(rng, n, n);
  Matrix expect = materialize(g.view());
  gemm(Trans::T, Trans::N, -1.5, a, a, 0.5, expect);
  // Gram mirrors the lower triangle, so symmetrize the reference too.
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = j + 1; i < n; ++i) expect(j, i) = expect(i, j);
  }
  gram(-1.5, a, 0.5, g);
  EXPECT_LT(max_abs_diff(g, expect), 1e-11 * (1.0 + max_abs(expect)))
      << "m=" << m << " n=" << n;
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = 0; i < n; ++i) EXPECT_EQ(g(i, j), g(j, i));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GramSweep,
                         ::testing::Values(SymParam{1, 1}, SymParam{9, 7},
                                           SymParam{300, 37}, SymParam{64, 64},
                                           SymParam{257, 150},
                                           SymParam{33, 129}));

class SyrkSweep : public ::testing::TestWithParam<SymParam> {};

TEST_P(SyrkSweep, MatchesGemmBothUplos) {
  const auto [k, n] = GetParam();
  for (const Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
    Rng rng(static_cast<u64>(800 + 41 * k + n + (uplo == Uplo::Upper)));
    Matrix a = gaussian(rng, n, k);
    Matrix c = gaussian(rng, n, n);
    Matrix expect = materialize(c.view());
    gemm(Trans::N, Trans::T, 2.0, a, a, -0.5, expect);
    for (i64 j = 0; j < n; ++j) {  // mirrored from the computed triangle
      for (i64 i = j + 1; i < n; ++i) {
        if (uplo == Uplo::Lower) {
          expect(j, i) = expect(i, j);
        } else {
          expect(i, j) = expect(j, i);
        }
      }
    }
    syrk_nt(2.0, a, -0.5, c, uplo);
    EXPECT_LT(max_abs_diff(c, expect), 1e-11 * (1.0 + max_abs(expect)))
        << "k=" << k << " n=" << n << " upper=" << (uplo == Uplo::Upper);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SyrkSweep,
                         ::testing::Values(SymParam{1, 1}, SymParam{9, 7},
                                           SymParam{300, 37}, SymParam{64, 64},
                                           SymParam{257, 150},
                                           SymParam{33, 129}));

TEST(GramTest, SubViewOperandWithLeadingDimension) {
  Rng rng(23);
  Matrix big = gaussian(rng, 40, 20);
  auto a = big.sub(3, 2, 25, 9);  // ld 40 > rows 25
  Matrix g(9, 9), expect(9, 9);
  gram(1.0, a, 0.0, g);
  gemm(Trans::T, Trans::N, 1.0, a, a, 0.0, expect);
  EXPECT_LT(max_abs_diff(g, expect), 1e-12 * (1.0 + max_abs(expect)));
}

TEST(GramTest, DegenerateShapes) {
  Matrix a0(0, 5), g0(5, 5);
  g0(2, 2) = 3.0;
  flops::reset();
  gram(1.0, a0, 0.0, g0);  // zero rows: G = 0
  EXPECT_EQ(flops::take(), 0);
  EXPECT_EQ(max_abs(g0), 0.0);
  Matrix a1(7, 0), g1(0, 0);
  EXPECT_NO_THROW(gram(1.0, a1, 0.0, g1));
}

TEST(SyrkTest, FlopCountFormula) {
  Matrix a(9, 5);
  Matrix c(9, 9);
  flops::reset();
  syrk_nt(1.0, a, 0.0, c, Uplo::Lower);
  EXPECT_EQ(flops::take(), 9 * 10 * 5);  // n * (n+1) * k
}

TEST(SyrkTest, SubViewOperand) {
  Rng rng(29);
  Matrix big = gaussian(rng, 30, 30);
  auto a = big.sub(2, 4, 11, 13);
  Matrix c1(11, 11), c2(11, 11);
  syrk_nt(1.0, a, 0.0, c1, Uplo::Upper);
  gemm(Trans::N, Trans::T, 1.0, a, a, 0.0, c2);
  EXPECT_LT(max_abs_diff(c1, c2), 1e-12 * (1.0 + max_abs(c2)));
}

}  // namespace
}  // namespace cacqr::lin
