#include <gtest/gtest.h>

#include <tuple>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/flops.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/util.hpp"

namespace cacqr::lin {
namespace {

/// Random well-conditioned triangular matrix (unit-dominant diagonal).
Matrix random_tri(Rng& rng, i64 n, Uplo uplo, Diag diag) {
  Matrix t(n, n);
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = 0; i < n; ++i) {
      const bool stored = uplo == Uplo::Lower ? i > j : i < j;
      if (stored) t(i, j) = 0.3 * rng.normal();
    }
    t(j, j) = diag == Diag::Unit ? 1.0 : 2.0 + rng.uniform();
  }
  return t;
}

/// Densifies op(T) honoring uplo/diag so gemm can serve as the reference.
Matrix densify(ConstMatrixView t, Uplo uplo, Trans trans, Diag diag) {
  const i64 n = t.rows;
  Matrix full(n, n);
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = 0; i < n; ++i) {
      const bool stored = uplo == Uplo::Lower ? i >= j : i <= j;
      if (stored) full(i, j) = (i == j && diag == Diag::Unit) ? 1.0 : t(i, j);
    }
  }
  return trans == Trans::T ? transposed(full) : full;
}

using TriParam = std::tuple<int, int, int, int, int>;  // side,uplo,trans,diag,n

class TrmmSweep : public ::testing::TestWithParam<TriParam> {};

TEST_P(TrmmSweep, MatchesDenseReference) {
  const auto [sidei, uploi, transi, diagi, n] = GetParam();
  const Side side = sidei ? Side::Right : Side::Left;
  const Uplo uplo = uploi ? Uplo::Upper : Uplo::Lower;
  const Trans trans = transi ? Trans::T : Trans::N;
  const Diag diag = diagi ? Diag::Unit : Diag::NonUnit;
  Rng rng(static_cast<u64>(97 * n + 8 * sidei + 4 * uploi + 2 * transi + diagi));

  Matrix t = random_tri(rng, n, uplo, diag);
  const i64 rows = side == Side::Left ? n : n + 3;
  const i64 cols = side == Side::Left ? n + 3 : n;
  Matrix b = gaussian(rng, rows, cols);
  Matrix dense = densify(t, uplo, trans, diag);

  Matrix expect(rows, cols);
  if (side == Side::Left) {
    gemm(Trans::N, Trans::N, -2.0, dense, b, 0.0, expect);
  } else {
    gemm(Trans::N, Trans::N, -2.0, b, dense, 0.0, expect);
  }

  trmm(side, uplo, trans, diag, -2.0, t, b);
  EXPECT_LT(max_abs_diff(b, expect), 1e-11 * (1.0 + max_abs(expect)));
}

class TrsmSweep : public ::testing::TestWithParam<TriParam> {};

TEST_P(TrsmSweep, SolveThenMultiplyRoundTrips) {
  const auto [sidei, uploi, transi, diagi, n] = GetParam();
  const Side side = sidei ? Side::Right : Side::Left;
  const Uplo uplo = uploi ? Uplo::Upper : Uplo::Lower;
  const Trans trans = transi ? Trans::T : Trans::N;
  const Diag diag = diagi ? Diag::Unit : Diag::NonUnit;
  Rng rng(static_cast<u64>(131 * n + 8 * sidei + 4 * uploi + 2 * transi + diagi));

  Matrix t = random_tri(rng, n, uplo, diag);
  const i64 rows = side == Side::Left ? n : n + 2;
  const i64 cols = side == Side::Left ? n + 2 : n;
  Matrix b = gaussian(rng, rows, cols);
  Matrix x = materialize(b.view());

  trsm(side, uplo, trans, diag, 1.0, t, x);
  // op(T) X == B (left) or X op(T) == B (right)?
  Matrix dense = densify(t, uplo, trans, diag);
  Matrix back(rows, cols);
  if (side == Side::Left) {
    gemm(Trans::N, Trans::N, 1.0, dense, x, 0.0, back);
  } else {
    gemm(Trans::N, Trans::N, 1.0, x, dense, 0.0, back);
  }
  EXPECT_LT(max_abs_diff(back, b), 1e-10 * (1.0 + max_abs(b)));
}

// Sizes above 32 exercise the blocked recursion (gemm off-diagonal
// updates); 97 and 130 are deliberately not multiples of the base block.
INSTANTIATE_TEST_SUITE_P(
    AllVariants, TrmmSweep,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1),
                       ::testing::Values(0, 1), ::testing::Values(0, 1),
                       ::testing::Values(1, 5, 23, 64, 97, 130)));

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TrsmSweep,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1),
                       ::testing::Values(0, 1), ::testing::Values(0, 1),
                       ::testing::Values(1, 5, 23, 64, 97, 130)));

TEST(TrsmTest, AlphaScaling) {
  Rng rng(3);
  Matrix t = random_tri(rng, 4, Uplo::Lower, Diag::NonUnit);
  Matrix b = gaussian(rng, 4, 2);
  Matrix x1 = materialize(b.view());
  Matrix x2 = materialize(b.view());
  trsm(Side::Left, Uplo::Lower, Trans::N, Diag::NonUnit, 2.0, t, x1);
  trsm(Side::Left, Uplo::Lower, Trans::N, Diag::NonUnit, 1.0, t, x2);
  scal(2.0, x2);
  EXPECT_LT(max_abs_diff(x1, x2), 1e-12 * (1.0 + max_abs(x2)));
}

TEST(TrmmTest, InverseComposesToIdentity) {
  // B * U then solve against U returns B.
  Rng rng(31);
  Matrix u = random_tri(rng, 8, Uplo::Upper, Diag::NonUnit);
  Matrix b = gaussian(rng, 5, 8);
  Matrix orig = materialize(b.view());
  trmm(Side::Right, Uplo::Upper, Trans::N, Diag::NonUnit, 1.0, u, b);
  trsm(Side::Right, Uplo::Upper, Trans::N, Diag::NonUnit, 1.0, u, b);
  EXPECT_LT(max_abs_diff(b, orig), 1e-10 * (1.0 + max_abs(orig)));
}

TEST(TrmmTest, FlopCountFormula) {
  // The documented dense count, independent of blocking and data:
  // vectors * n * (n + 1) with vectors = cols (left) / rows (right).
  Rng rng(41);
  Matrix t = random_tri(rng, 17, Uplo::Lower, Diag::NonUnit);
  Matrix bl = gaussian(rng, 17, 5);
  flops::reset();
  trmm(Side::Left, Uplo::Lower, Trans::N, Diag::NonUnit, 1.0, t, bl);
  EXPECT_EQ(flops::take(), 5 * 17 * 18);
  Matrix br = gaussian(rng, 7, 17);
  flops::reset();
  trmm(Side::Right, Uplo::Lower, Trans::T, Diag::Unit, -2.0, t, br);
  EXPECT_EQ(flops::take(), 7 * 17 * 18);
}

TEST(TrsmTest, FlopCountFormula) {
  Rng rng(43);
  Matrix t = random_tri(rng, 17, Uplo::Upper, Diag::NonUnit);
  Matrix bl = gaussian(rng, 17, 5);
  flops::reset();
  trsm(Side::Left, Uplo::Upper, Trans::N, Diag::NonUnit, 1.0, t, bl);
  EXPECT_EQ(flops::take(), 5 * 17 * 18);
  // Right side: the diagonal divisions are charged only for NonUnit.
  Matrix br = gaussian(rng, 7, 17);
  flops::reset();
  trsm(Side::Right, Uplo::Upper, Trans::N, Diag::NonUnit, 1.0, t, br);
  EXPECT_EQ(flops::take(), 7 * 17 * 18);
  Matrix bu = gaussian(rng, 7, 17);
  Matrix tu = random_tri(rng, 17, Uplo::Upper, Diag::Unit);
  flops::reset();
  trsm(Side::Right, Uplo::Upper, Trans::N, Diag::Unit, 1.0, tu, bu);
  EXPECT_EQ(flops::take(), 7 * 17 * 16);
  // alpha != 1 additionally charges the scal pass (rows * cols).
  flops::reset();
  trsm(Side::Right, Uplo::Upper, Trans::N, Diag::Unit, 2.0, tu, bu);
  EXPECT_EQ(flops::take(), 7 * 17 * 16 + 7 * 17);
}

TEST(TrmmTest, BlockedFlopCountMatchesFormulaAboveBaseCase) {
  // n = 130 goes through two recursion levels; the charge must still be
  // the closed-form count, bit-identical to the seed's loops.
  Rng rng(47);
  Matrix t = random_tri(rng, 130, Uplo::Lower, Diag::NonUnit);
  Matrix b = gaussian(rng, 9, 130);
  flops::reset();
  trmm(Side::Right, Uplo::Lower, Trans::T, Diag::NonUnit, 1.0, t, b);
  EXPECT_EQ(flops::take(), 9 * 130 * 131);
  Matrix b2 = gaussian(rng, 130, 9);
  flops::reset();
  trsm(Side::Left, Uplo::Lower, Trans::N, Diag::NonUnit, 1.0, t, b2);
  EXPECT_EQ(flops::take(), 9 * 130 * 131);
}

TEST(TrmmTest, SubViewOperandsRespectLeadingDimensions) {
  Rng rng(53);
  Matrix tbig = random_tri(rng, 40, Uplo::Lower, Diag::NonUnit);
  auto t = lin::ConstMatrixView{tbig.data(), 33, 33, 40};  // ld > rows
  Matrix bbig = gaussian(rng, 50, 40);
  auto b = bbig.sub(4, 3, 33, 9);
  Matrix dense = densify(materialize(t), Uplo::Lower, Trans::N,
                         Diag::NonUnit);
  Matrix expect(33, 9);
  gemm(Trans::N, Trans::N, 1.0, dense, b, 0.0, expect);
  trmm(Side::Left, Uplo::Lower, Trans::N, Diag::NonUnit, 1.0, t, b);
  EXPECT_LT(max_abs_diff(materialize(b), expect),
            1e-11 * (1.0 + max_abs(expect)));
}

TEST(TrsmTest, SubViewOperandsRespectLeadingDimensions) {
  Rng rng(59);
  Matrix tbig = random_tri(rng, 40, Uplo::Upper, Diag::NonUnit);
  auto t = lin::ConstMatrixView{tbig.data(), 37, 37, 40};
  Matrix bbig = gaussian(rng, 50, 45);
  auto b = bbig.sub(2, 5, 11, 37);
  Matrix orig = materialize(b);
  trsm(Side::Right, Uplo::Upper, Trans::T, Diag::NonUnit, 1.0, t, b);
  Matrix dense = densify(materialize(t), Uplo::Upper, Trans::T,
                         Diag::NonUnit);
  Matrix back(11, 37);
  gemm(Trans::N, Trans::N, 1.0, materialize(b), dense, 0.0, back);
  EXPECT_LT(max_abs_diff(back, orig), 1e-9 * (1.0 + max_abs(orig)));
}

TEST(TriangularTest, DegenerateShapesAreNoOps) {
  Matrix t0(0, 0);
  Matrix b0(0, 4), b1(4, 0);
  flops::reset();
  EXPECT_NO_THROW(
      trmm(Side::Left, Uplo::Lower, Trans::N, Diag::NonUnit, 1.0, t0, b0));
  EXPECT_NO_THROW(
      trsm(Side::Right, Uplo::Upper, Trans::T, Diag::Unit, 1.0, t0, b1));
  EXPECT_EQ(flops::take(), 0);
  // Zero right-hand-side columns against a real triangle.
  Rng rng(61);
  Matrix t = random_tri(rng, 6, Uplo::Lower, Diag::NonUnit);
  Matrix bempty(6, 0);
  EXPECT_NO_THROW(
      trsm(Side::Left, Uplo::Lower, Trans::N, Diag::NonUnit, 1.0, t, bempty));
}

}  // namespace
}  // namespace cacqr::lin
