/// \file test_kernel.cpp
/// \brief Direct tests of the packed micro-kernel driver (kernel.hpp):
///        all four transpose cases, triangle tile filters, awkward shapes
///        around the MR/NR/MC/KC block boundaries, and strided sub-views.

#include <gtest/gtest.h>

#include <tuple>

#include "cacqr/lin/flops.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/kernel.hpp"
#include "cacqr/lin/util.hpp"

namespace cacqr::lin {
namespace {

/// Reference accumulate: C += alpha * op(A) * op(B).
Matrix naive_accumulate(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                        ConstMatrixView b, ConstMatrixView c0) {
  const i64 m = c0.rows;
  const i64 n = c0.cols;
  const i64 k = ta == Trans::N ? a.cols : a.rows;
  Matrix c = materialize(c0);
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = 0; i < m; ++i) {
      double acc = 0.0;
      for (i64 kk = 0; kk < k; ++kk) {
        const double av = ta == Trans::N ? a(i, kk) : a(kk, i);
        const double bv = tb == Trans::N ? b(kk, j) : b(j, kk);
        acc += av * bv;
      }
      c(i, j) += alpha * acc;
    }
  }
  return c;
}

using AccumParam = std::tuple<int, int, int, int, int>;  // m, n, k, ta, tb

class KernelAccumulateSweep : public ::testing::TestWithParam<AccumParam> {};

TEST_P(KernelAccumulateSweep, MatchesNaive) {
  const auto [m, n, k, tai, tbi] = GetParam();
  const Trans ta = tai ? Trans::T : Trans::N;
  const Trans tb = tbi ? Trans::T : Trans::N;
  Rng rng(static_cast<u64>(7000 + 977 * m + 83 * n + 11 * k + 2 * tai + tbi));
  Matrix a = gaussian(rng, ta == Trans::N ? m : k, ta == Trans::N ? k : m);
  Matrix b = gaussian(rng, tb == Trans::N ? k : n, tb == Trans::N ? n : k);
  Matrix c = gaussian(rng, m, n);
  Matrix expect = naive_accumulate(ta, tb, 1.5, a, b, c);
  kernel::gemm_accumulate(ta, tb, 1.5, a, b, c);
  EXPECT_LT(max_abs_diff(c, expect), 1e-11 * (1.0 + max_abs(expect)))
      << "m=" << m << " n=" << n << " k=" << k << " ta=" << tai
      << " tb=" << tbi;
}

// Shapes chosen to hit every packing edge: below/at/above MR (8) and NR
// (6), straddling MC (144) and KC (256), and one NC-scale column count.
INSTANTIATE_TEST_SUITE_P(
    BlockEdges, KernelAccumulateSweep,
    ::testing::Values(
        AccumParam{1, 1, 1, 0, 0}, AccumParam{8, 6, 16, 0, 0},
        AccumParam{7, 5, 9, 0, 0}, AccumParam{9, 7, 300, 0, 0},
        AccumParam{17, 13, 257, 1, 0}, AccumParam{145, 7, 13, 1, 0},
        AccumParam{143, 149, 255, 0, 1}, AccumParam{16, 300, 16, 0, 1},
        AccumParam{151, 11, 259, 1, 1}, AccumParam{30, 42, 70, 1, 1}));

TEST(KernelAccumulateTest, DoesNotScaleCAndChargesNoFlops) {
  Rng rng(42);
  Matrix a = gaussian(rng, 10, 4);
  Matrix b = gaussian(rng, 4, 3);
  Matrix c = gaussian(rng, 10, 3);
  Matrix expect = naive_accumulate(Trans::N, Trans::N, -2.0, a, b, c);
  flops::reset();
  kernel::gemm_accumulate(Trans::N, Trans::N, -2.0, a, b, c);
  EXPECT_EQ(flops::take(), 0);  // accounting lives in the public wrappers
  EXPECT_LT(max_abs_diff(c, expect), 1e-12 * (1.0 + max_abs(expect)));
}

TEST(KernelAccumulateTest, SubViewOperandsRespectLeadingDimensions) {
  Rng rng(43);
  Matrix big = gaussian(rng, 40, 40);
  auto a = big.sub(3, 1, 17, 9);    // ld 40 > rows 17
  auto b = big.sub(5, 11, 9, 13);
  Matrix cbig(30, 30);
  auto c = cbig.sub(2, 2, 17, 13);  // strided output too
  Matrix expect = naive_accumulate(Trans::N, Trans::N, 1.0, a, b, c);
  kernel::gemm_accumulate(Trans::N, Trans::N, 1.0, a, b, c);
  EXPECT_LT(max_abs_diff(materialize(c), expect), 1e-12);
  // Entries of cbig outside the view stay untouched (zero).
  EXPECT_EQ(cbig(0, 0), 0.0);
  EXPECT_EQ(cbig(29, 29), 0.0);
}

TEST(KernelAccumulateTest, DegenerateDimensionsAreNoOps) {
  Matrix a(0, 5), b(5, 0), c(0, 0);
  EXPECT_NO_THROW(kernel::gemm_accumulate(Trans::N, Trans::N, 1.0, a, b, c));
  Matrix a2(4, 0), b2(0, 3), c2(4, 3);
  kernel::gemm_accumulate(Trans::N, Trans::N, 1.0, a2, b2, c2);  // k == 0
  EXPECT_EQ(max_abs(c2), 0.0);
}

/// The triangle filters must produce exact results on the requested
/// triangle; the opposite strict triangle may hold tile spill-over.
TEST(KernelTileFilterTest, LowerFilterCoversLowerTriangle) {
  Rng rng(44);
  const i64 n = 37;  // not a multiple of MR or NR
  Matrix a = gaussian(rng, 50, n);
  Matrix c(n, n), full(n, n);
  kernel::gemm_accumulate(Trans::T, Trans::N, 1.0, a, a, c,
                          kernel::TileFilter::Lower);
  kernel::gemm_accumulate(Trans::T, Trans::N, 1.0, a, a, full);
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = j; i < n; ++i) {
      EXPECT_EQ(c(i, j), full(i, j)) << i << "," << j;
    }
  }
}

TEST(KernelTileFilterTest, UpperFilterCoversUpperTriangle) {
  Rng rng(45);
  const i64 n = 41;
  Matrix a = gaussian(rng, n, 23);
  Matrix c(n, n), full(n, n);
  kernel::gemm_accumulate(Trans::N, Trans::T, 1.0, a, a, c,
                          kernel::TileFilter::Upper);
  kernel::gemm_accumulate(Trans::N, Trans::T, 1.0, a, a, full);
  for (i64 j = 0; j < n; ++j) {
    for (i64 i = 0; i <= j; ++i) {
      EXPECT_EQ(c(i, j), full(i, j)) << i << "," << j;
    }
  }
}

TEST(KernelTileFilterTest, LowerFilterSkipsFarUpperTiles) {
  // Tiles strictly above the diagonal must not be touched at all: with a
  // large enough matrix the (0, n-1) corner sits in a skipped tile.
  Rng rng(46);
  const i64 n = 64;  // corner tile (0, 60..63) is strictly upper
  Matrix a = gaussian(rng, 16, n);
  Matrix c(n, n);
  kernel::gemm_accumulate(Trans::T, Trans::N, 1.0, a, a, c,
                          kernel::TileFilter::Lower);
  EXPECT_EQ(c(0, n - 1), 0.0);
}

}  // namespace
}  // namespace cacqr::lin
