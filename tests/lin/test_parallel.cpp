/// \file test_parallel.cpp
/// \brief Worker-pool primitives, packing-arena reuse, and the bitwise
///        determinism contract of the threaded kernels.
///
/// The determinism tests are the load-bearing ones: every level-3 kernel
/// must produce byte-identical output at any thread budget, because the
/// distributed algorithms and the modeled-time validation assume kernel
/// results (and flop tallies) are independent of intra-rank threading.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/factor.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/kernel.hpp"
#include "cacqr/lin/parallel.hpp"
#include "cacqr/support/rng.hpp"

namespace {

using namespace cacqr;
using lin::Matrix;
namespace parallel = lin::parallel;

/// Restores the calling thread's worker budget on scope exit so tests do
/// not leak budget overrides into each other (CI runs the whole suite at
/// CACQR_THREADS=1 and =4).
struct BudgetGuard {
  int saved = parallel::thread_budget();
  ~BudgetGuard() { parallel::set_thread_budget(saved); }
};

bool bytes_equal(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(double)) == 0;
}

// ------------------------------------------------------------ primitives

TEST(SplitRange, DealsWholeGrainUnitsExactlyOnce) {
  const i64 count = 103;
  const i64 grain = 8;
  std::vector<int> hits(static_cast<std::size_t>(count), 0);
  i64 prev_end = 0;
  for (int part = 0; part < 4; ++part) {
    const auto r = parallel::split_range(count, grain, part, 4);
    EXPECT_EQ(r.begin, prev_end);
    EXPECT_EQ(r.begin % grain, 0);
    prev_end = r.end;
    for (i64 i = r.begin; i < r.end; ++i) ++hits[static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(prev_end, count);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(SplitRange, PartsBeyondUnitCountAreEmpty) {
  // 2 units of grain 10 dealt to 5 parts: parts 2..4 get nothing.
  const auto r4 = parallel::split_range(20, 10, 4, 5);
  EXPECT_EQ(r4.begin, r4.end);
  const auto r0 = parallel::split_range(20, 10, 0, 5);
  EXPECT_EQ(r0.begin, 0);
  EXPECT_EQ(r0.end, 10);
}

TEST(Pool, RunExecutesEveryTidOnce) {
  std::vector<std::atomic<int>> seen(4);
  for (auto& s : seen) s.store(0);
  parallel::run(4, [&](parallel::Team& team) {
    EXPECT_EQ(team.size(), 4);
    seen[static_cast<std::size_t>(team.tid())].fetch_add(1);
  });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(Pool, BarrierSeparatesPhases) {
  std::atomic<int> phase1{0};
  std::atomic<bool> ok{true};
  parallel::run(4, [&](parallel::Team& team) {
    phase1.fetch_add(1);
    team.barrier();
    if (phase1.load() != 4) ok.store(false);
    team.barrier();
    phase1.fetch_add(1);
    team.barrier();
    if (phase1.load() != 8) ok.store(false);
  });
  EXPECT_TRUE(ok.load());
}

TEST(Pool, NestedRegionsRunInline) {
  std::atomic<int> inner_sizes{0};
  parallel::run(3, [&](parallel::Team&) {
    parallel::run(3, [&](parallel::Team& inner) {
      inner_sizes.fetch_add(inner.size());
    });
  });
  // Every nested region collapsed to a team of one.
  EXPECT_EQ(inner_sizes.load(), 3);
}

TEST(Pool, WorkerExceptionPropagatesToCaller) {
  EXPECT_THROW(
      parallel::run(4,
                    [&](parallel::Team& team) {
                      if (team.tid() == 1) {
                        throw std::runtime_error("worker failure");
                      }
                    }),
      std::runtime_error);
  // The pool must remain usable after a failed region.
  std::atomic<int> count{0};
  parallel::run(4, [&](parallel::Team&) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  BudgetGuard guard;
  parallel::set_thread_budget(4);
  const i64 count = 1037;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(count));
  for (auto& h : hits) h.store(0);
  parallel::parallel_for(count, 16, [&](i64 b, i64 e) {
    for (i64 i = b; i < e; ++i) hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingleChunkRunInline) {
  BudgetGuard guard;
  parallel::set_thread_budget(4);
  int calls = 0;
  parallel::parallel_for(0, 1, [&](i64, i64) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel::parallel_for(5, 100, [&](i64 b, i64 e) {
    ++calls;
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 5);
  });
  EXPECT_EQ(calls, 1);
}

TEST(Budget, ClampsAndRestores) {
  BudgetGuard guard;
  parallel::set_thread_budget(0);
  EXPECT_EQ(parallel::thread_budget(), 1);
  parallel::set_thread_budget(6);
  EXPECT_EQ(parallel::thread_budget(), 6);
  EXPECT_GE(parallel::env_threads(), 1);
  EXPECT_GE(parallel::hardware_threads(), 1);
}

// ------------------------------------------------- bitwise determinism
//
// Shapes are chosen to straddle the MC/KC/NR block boundaries AND to
// exceed the kernel's parallel threshold, so the threaded driver actually
// engages (both the ic-split and the shared-A cooperative paths).

template <class Body>
Matrix run_at_budget(int budget, Body&& body) {
  BudgetGuard guard;
  parallel::set_thread_budget(budget);
  return body();
}

TEST(BitwiseIdentity, GemmNnAcrossThreadCounts) {
  Rng rng(42);
  const Matrix a = lin::gaussian(rng, 1201, 300);
  const Matrix b = lin::gaussian(rng, 300, 97);
  const Matrix c0 = lin::gaussian(rng, 1201, 97);
  auto body = [&] {
    Matrix c = c0;
    lin::gemm(lin::Trans::N, lin::Trans::N, 0.75, a, b, 0.5, c);
    return c;
  };
  const Matrix c1 = run_at_budget(1, body);
  for (int t : {2, 3, 4}) {
    EXPECT_TRUE(bytes_equal(c1, run_at_budget(t, body))) << "threads=" << t;
  }
}

TEST(BitwiseIdentity, GemmTnSharedPackPathAcrossThreadCounts) {
  // C is 97 x 97: a single MC block, so the team must take the
  // cooperative shared-A path.
  Rng rng(7);
  const Matrix a = lin::gaussian(rng, 1500, 97);
  const Matrix b = lin::gaussian(rng, 1500, 97);
  auto body = [&] {
    Matrix c(97, 97);
    lin::gemm(lin::Trans::T, lin::Trans::N, 1.0, a, b, 0.0, c);
    return c;
  };
  const Matrix c1 = run_at_budget(1, body);
  for (int t : {2, 4, 8}) {
    EXPECT_TRUE(bytes_equal(c1, run_at_budget(t, body))) << "threads=" << t;
  }
}

TEST(BitwiseIdentity, GramAcrossThreadCounts) {
  Rng rng(11);
  const Matrix a = lin::gaussian(rng, 2000, 130);
  auto body = [&] {
    Matrix g(130, 130);
    lin::gram(1.0, a, 0.0, g);
    return g;
  };
  const Matrix g1 = run_at_budget(1, body);
  for (int t : {2, 4}) {
    EXPECT_TRUE(bytes_equal(g1, run_at_budget(t, body))) << "threads=" << t;
  }
}

TEST(BitwiseIdentity, TrmmTrsmRightAcrossThreadCounts) {
  Rng rng(23);
  Matrix t = lin::spd_with_cond(rng, 200, 10.0);
  lin::potrf(t);
  const Matrix b = lin::gaussian(rng, 900, 200);
  auto trmm_body = [&] {
    Matrix w = b;
    lin::trmm(lin::Side::Right, lin::Uplo::Lower, lin::Trans::T,
              lin::Diag::NonUnit, 1.0, t, w);
    return w;
  };
  auto trsm_body = [&] {
    Matrix w = b;
    lin::trsm(lin::Side::Right, lin::Uplo::Lower, lin::Trans::T,
              lin::Diag::NonUnit, 1.0, t, w);
    return w;
  };
  const Matrix m1 = run_at_budget(1, trmm_body);
  const Matrix s1 = run_at_budget(1, trsm_body);
  for (int threads : {2, 4}) {
    EXPECT_TRUE(bytes_equal(m1, run_at_budget(threads, trmm_body)))
        << "trmm threads=" << threads;
    EXPECT_TRUE(bytes_equal(s1, run_at_budget(threads, trsm_body)))
        << "trsm threads=" << threads;
  }
}

TEST(BitwiseIdentity, PotrfAcrossThreadCounts) {
  Rng rng(31);
  const Matrix spd = lin::spd_with_cond(rng, 300, 50.0);
  auto body = [&] {
    Matrix l = spd;
    lin::potrf(l);
    return l;
  };
  const Matrix l1 = run_at_budget(1, body);
  for (int t : {2, 4}) {
    EXPECT_TRUE(bytes_equal(l1, run_at_budget(t, body))) << "threads=" << t;
  }
}

// ------------------------------------------------------------ arenas

TEST(PackArena, NoAllocationsAfterFirstSameShapeCall) {
  for (int threads : {1, 4}) {
    BudgetGuard guard;
    parallel::set_thread_budget(threads);
    Rng rng(static_cast<u64>(100 + threads));
    const Matrix a = lin::gaussian(rng, 1201, 300);
    const Matrix b = lin::gaussian(rng, 300, 97);
    Matrix c(1201, 97);
    // Warm every participating thread's arena (two calls: the pool and
    // the arenas both finish growing on the first).
    lin::matmul(a, b, c);
    lin::matmul(a, b, c);
    const i64 before = lin::kernel::arena_stats().allocations;
    for (int i = 0; i < 3; ++i) lin::matmul(a, b, c);
    const i64 after = lin::kernel::arena_stats().allocations;
    EXPECT_EQ(before, after) << "threads=" << threads;
  }
}

TEST(Affinity, ParsesSpecsExactly) {
  EXPECT_EQ(parallel::parse_affinity(nullptr), parallel::Affinity::off);
  EXPECT_EQ(parallel::parse_affinity(""), parallel::Affinity::off);
  EXPECT_EQ(parallel::parse_affinity("compact"),
            parallel::Affinity::compact);
  EXPECT_EQ(parallel::parse_affinity("spread"), parallel::Affinity::spread);
  // Unknown or near-miss specs fall back to off, never throw.
  EXPECT_EQ(parallel::parse_affinity("Compact"), parallel::Affinity::off);
  EXPECT_EQ(parallel::parse_affinity("numa"), parallel::Affinity::off);
}

TEST(Affinity, ModeIsStableAndResultsUnaffected) {
  // The process-wide mode is parsed once; whatever it is, parallel
  // regions must produce identical results (pinning is placement only).
  const parallel::Affinity mode = parallel::affinity_mode();
  EXPECT_EQ(parallel::affinity_mode(), mode);
  BudgetGuard guard;
  parallel::set_thread_budget(4);
  std::vector<i64> owner(64, -1);
  parallel::parallel_for(64, 1, [&](i64 b, i64 e) {
    for (i64 i = b; i < e; ++i) owner[static_cast<std::size_t>(i)] = i;
  });
  for (i64 i = 0; i < 64; ++i) {
    EXPECT_EQ(owner[static_cast<std::size_t>(i)], i);
  }
}

TEST(PackArena, StatsAreCoherent) {
  Rng rng(55);
  const Matrix a = lin::gaussian(rng, 600, 80);
  Matrix g(80, 80);
  lin::gram(1.0, a, 0.0, g);
  const auto stats = lin::kernel::arena_stats();
  EXPECT_GT(stats.allocations, 0);
  EXPECT_GT(stats.bytes_in_use, 0);
  EXPECT_GE(stats.high_water_bytes, stats.bytes_in_use);
}

}  // namespace
