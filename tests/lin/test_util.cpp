#include <gtest/gtest.h>

#include <cmath>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/qr.hpp"
#include "cacqr/lin/util.hpp"

namespace cacqr::lin {
namespace {

TEST(UtilTest, CopyRespectsStrides) {
  Rng rng(1);
  Matrix a = gaussian(rng, 6, 6);
  Matrix b(3, 3);
  copy(a.sub(1, 1, 3, 3), b);
  for (i64 j = 0; j < 3; ++j) {
    for (i64 i = 0; i < 3; ++i) EXPECT_EQ(b(i, j), a(i + 1, j + 1));
  }
}

TEST(UtilTest, SetAll) {
  Matrix a(3, 4);
  set_all(a, -1.0, 2.0);
  for (i64 j = 0; j < 4; ++j) {
    for (i64 i = 0; i < 3; ++i) {
      EXPECT_EQ(a(i, j), i == j ? 2.0 : -1.0);
    }
  }
}

TEST(UtilTest, TransposedAndInplaceAgree) {
  Rng rng(2);
  Matrix a = gaussian(rng, 5, 5);
  Matrix t = transposed(a);
  Matrix b = materialize(a.view());
  transpose_inplace(b);
  EXPECT_EQ(t, b);
  // Double transpose is identity.
  transpose_inplace(b);
  EXPECT_EQ(a, b);
}

TEST(UtilTest, TransposeRectangular) {
  Matrix a(2, 3);
  a(0, 2) = 5.0;
  a(1, 0) = -2.0;
  Matrix t = transposed(a);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t(2, 0), 5.0);
  EXPECT_EQ(t(0, 1), -2.0);
}

TEST(UtilTest, FrobNorm) {
  Matrix a(2, 2);
  a(0, 0) = 3.0;
  a(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(frob_norm(a), 5.0);
}

TEST(UtilTest, MaxAbsDiff) {
  Matrix a(2, 2), b(2, 2);
  b(1, 0) = -0.5;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
  EXPECT_DOUBLE_EQ(max_abs(b), 0.5);
}

TEST(UtilTest, OrthogonalityErrorOfExactQ) {
  EXPECT_LT(orthogonality_error(Matrix::identity(5)), 1e-15);
  Rng rng(3);
  Matrix q = random_orthogonal(rng, 12);
  EXPECT_LT(orthogonality_error(q), 1e-13);
  // Breaking a column doubles... breaks it measurably.
  q(0, 0) += 0.1;
  EXPECT_GT(orthogonality_error(q), 0.05);
}

TEST(UtilTest, IsUpperTriangular) {
  Matrix r(3, 3);
  r(0, 1) = 1.0;
  EXPECT_TRUE(is_upper_triangular(r));
  r(2, 0) = 1e-30;
  EXPECT_FALSE(is_upper_triangular(r));
}

TEST(UtilTest, Cond2EstimateMatchesConstruction) {
  Rng rng(4);
  for (const double kappa : {1.0, 10.0, 1e4, 1e8}) {
    Matrix a = with_cond(rng, 80, 10, kappa);
    const double est = cond2_estimate(a);
    EXPECT_GT(est, 0.5 * kappa) << "kappa=" << kappa;
    EXPECT_LT(est, 2.0 * kappa) << "kappa=" << kappa;
  }
}

}  // namespace
}  // namespace cacqr::lin
