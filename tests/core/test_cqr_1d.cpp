#include <gtest/gtest.h>

#include "cacqr/core/cqr.hpp"
#include "cacqr/core/cqr_1d.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/util.hpp"
#include "cacqr/support/math.hpp"

namespace cacqr::core {
namespace {

using dist::DistMatrix;

class Cqr1dSweep : public ::testing::TestWithParam<int> {};

TEST_P(Cqr1dSweep, MatchesSequentialCqr2) {
  const int p = GetParam();
  const i64 m = 16 * p;
  const i64 n = 8;
  rt::Runtime::run(p, [&](rt::Comm& world) {
    lin::Matrix a = lin::hashed_matrix(61, m, n);
    auto da = DistMatrix::from_global(a, p, 1, world.rank(), 0);

    auto [q, r] = cqr2_1d(da, world);

    auto seq = cqr2(a);
    EXPECT_LT(lin::max_abs_diff(r, seq.r), 1e-10 * (1.0 + lin::max_abs(seq.r)))
        << "p=" << p;
    // Q is row-distributed: check the local rows against the sequential Q.
    for (i64 lj = 0; lj < n; ++lj) {
      for (i64 li = 0; li < q.layout().local_rows(); ++li) {
        EXPECT_NEAR(q.local()(li, lj), seq.q(q.layout().global_row(li), lj),
                    1e-10)
            << "p=" << p;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, Cqr1dSweep, ::testing::Values(1, 2, 4, 8));

TEST(Cqr1dTest, SinglePassInvariants) {
  const int p = 4;
  rt::Runtime::run(p, [&](rt::Comm& world) {
    lin::Matrix a = lin::hashed_matrix(62, 32, 6);
    auto da = DistMatrix::from_global(a, p, 1, world.rank(), 0);
    auto [q, r] = cqr_1d(da, world);
    EXPECT_TRUE(lin::is_upper_triangular(r));
    lin::Matrix qg = gather(q, world);
    EXPECT_LT(lin::orthogonality_error(qg), 1e-12);
    EXPECT_LT(lin::residual_error(a, qg, r), 1e-13);
  });
}

TEST(Cqr1dTest, RReplicatedOnEveryRank) {
  const int p = 4;
  rt::Runtime::run(p, [&](rt::Comm& world) {
    lin::Matrix a = lin::hashed_matrix(63, 16, 4);
    auto da = DistMatrix::from_global(a, p, 1, world.rank(), 0);
    auto res = cqr2_1d(da, world);
    // Allgather every rank's R and compare bitwise: the redundant
    // factorizations must agree exactly (identical reduced Gram inputs).
    std::vector<double> mine(res.r.data(), res.r.data() + res.r.size());
    std::vector<double> all(mine.size() * p);
    world.allgather(mine, all);
    for (int rk = 1; rk < p; ++rk) {
      for (std::size_t i = 0; i < mine.size(); ++i) {
        EXPECT_EQ(all[rk * mine.size() + i], all[i]);
      }
    }
  });
}

TEST(Cqr1dTest, LayoutValidation) {
  rt::Runtime::run(4, [](rt::Comm& world) {
    // Wrong row_procs.
    DistMatrix bad(16, 4, 2, 1, world.rank() % 2, 0);
    EXPECT_THROW((void)cqr_1d(bad, world), DimensionError);
  });
}

TEST(Cqr1dCostTest, AllreduceDominatedCommunication) {
  // Table I, 1D-CQR: alpha ~ log P, beta ~ n^2 -- independent of m.
  const int p = 8;
  const i64 n = 8;
  for (const i64 m : {i64{64}, i64{256}}) {
    auto per_rank = rt::Runtime::run(p, [&](rt::Comm& world) {
      lin::Matrix a = lin::hashed_matrix(64, m, n);
      auto da = DistMatrix::from_global(a, p, 1, world.rank(), 0);
      (void)cqr2_1d(da, world);
    });
    const auto mc = rt::max_counters(per_rank);
    // Two allreduces of n^2 words: beta <= 2 * 2n^2, alpha = 2 * 2 lg P.
    EXPECT_EQ(mc.msgs, 2 * 2 * ceil_log2(p));
    EXPECT_LE(mc.words, 4 * n * n);
    EXPECT_GT(mc.words, 2 * n * n);
  }
}

}  // namespace
}  // namespace cacqr::core
