/// \file test_mixed_precision.cpp
/// \brief The precision axis of the CholeskyQR drivers: fp64 stays the
///        bit-identical default, `mixed` recovers fp64-level orthogonality
///        on well-conditioned inputs via the fp64 correction pass, `fp32`
///        degrades gracefully, high condition numbers fall back to the
///        full-fp64 shifted CholeskyQR3 through auto_shift, and every mode
///        is bitwise deterministic across budgets and overlap settings.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <span>
#include <string>

#include "cacqr/core/cqr_1d.hpp"
#include "cacqr/core/factorize.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/parallel.hpp"
#include "cacqr/lin/util.hpp"
#include "cacqr/support/rng.hpp"

namespace cacqr::core {
namespace {

namespace parallel = lin::parallel;

struct BudgetGuard {
  int saved = parallel::thread_budget();
  ~BudgetGuard() { parallel::set_thread_budget(saved); }
};

struct OverlapGuard {
  bool saved = rt::overlap_enabled();
  ~OverlapGuard() { rt::set_overlap_enabled(saved); }
};

TEST(MixedPrecisionTest, Fp64OptionIsTheBitIdenticalDefault) {
  rt::Runtime::run(4, [](rt::Comm& world) {
    const lin::Matrix a = lin::hashed_matrix(91, 96, 16);
    const FactorizeResult def = factorize(a, world);
    const FactorizeResult f64 =
        factorize(a, world, {.precision = Precision::fp64});
    EXPECT_EQ(lin::max_abs_diff(def.q, f64.q), 0.0);
    EXPECT_EQ(lin::max_abs_diff(def.r, f64.r), 0.0);
  });
}

TEST(MixedPrecisionTest, MixedMeetsFp64TolerancesWhenWellConditioned) {
  // The headline claim: an fp32 first-pass Gram plus the fp64 second
  // pass (CholeskyQR2's correction sweep) lands at fp64-level
  // orthogonality and residual on well-conditioned inputs -- both on the
  // 1D family (c = 1 forces the cqr_1d Gram path) and on a c > 1 CA grid
  // (the gemm-form Gram assembly).
  struct Grid {
    int ranks;
    int c;
    int d;
  };
  for (const Grid g : {Grid{4, 1, 4}, Grid{8, 2, 2}}) {
    rt::Runtime::run(g.ranks, [&](rt::Comm& world) {
      const lin::Matrix a = lin::hashed_matrix(92, 160, 16);
      const FactorizeResult res = factorize(
          a, world, {.c = g.c, .d = g.d, .precision = Precision::mixed});
      EXPECT_FALSE(res.used_shift) << "c=" << g.c;
      EXPECT_LT(lin::orthogonality_error(res.q), 1e-12) << "c=" << g.c;
      EXPECT_LT(lin::residual_error(a, res.q, res.r), 1e-12) << "c=" << g.c;
      EXPECT_TRUE(lin::is_upper_triangular(res.r));
    });
  }
}

TEST(MixedPrecisionTest, EnvVarMovesTheDefaultPrecision) {
  const char* saved = std::getenv("CACQR_PRECISION");
  const std::string saved_val = saved ? saved : "";
  ::setenv("CACQR_PRECISION", "mixed", 1);
  EXPECT_EQ(default_precision(), Precision::mixed);
  EXPECT_EQ(FactorizeOptions{}.precision, Precision::mixed);
  ::setenv("CACQR_PRECISION", "fp32", 1);
  EXPECT_EQ(default_precision(), Precision::fp32);
  ::setenv("CACQR_PRECISION", "float64", 1);  // malformed: loud failure
  EXPECT_THROW((void)default_precision(), Error);
  ::unsetenv("CACQR_PRECISION");
  EXPECT_EQ(default_precision(), Precision::fp64);
  if (saved) {
    ::setenv("CACQR_PRECISION", saved_val.c_str(), 1);
  }
}

TEST(MixedPrecisionTest, MixedActuallyTakesTheFp32Lane) {
  // Guard against the precision knob silently degenerating to fp64: the
  // fp32 Gram rounds differently, so the factors cannot be bit-identical
  // to the fp64 run (they agree only to fp64-level tolerance, above).
  rt::Runtime::run(4, [](rt::Comm& world) {
    const lin::Matrix a = lin::hashed_matrix(93, 128, 16);
    const FactorizeResult f64 = factorize(a, world);
    const FactorizeResult mixed =
        factorize(a, world, {.precision = Precision::mixed});
    EXPECT_GT(lin::max_abs_diff(f64.q, mixed.q), 0.0);
  });
}

TEST(MixedPrecisionTest, Fp32ModeDegradesGracefully) {
  // Both passes' Grams in fp32: orthogonality is fp32-level (not fp64),
  // but the residual stays fp64-level -- Q is produced by actually
  // applying the computed R1/R2 in fp64, so A ~= QR holds regardless of
  // how accurate the Gram was.
  rt::Runtime::run(4, [](rt::Comm& world) {
    const lin::Matrix a = lin::hashed_matrix(94, 160, 16);
    const FactorizeResult res =
        factorize(a, world, {.precision = Precision::fp32});
    EXPECT_LT(lin::orthogonality_error(res.q), 1e-4);
    EXPECT_LT(lin::residual_error(a, res.q, res.r), 1e-12);
  });
}

TEST(MixedPrecisionTest, HighCondFallsBackToFp64ShiftedCqr3) {
  // kappa ~ 1e6: comfortably inside fp64 CholeskyQR2's range (kappa^2 ~
  // 1e12 << 1/eps64) but far beyond fp32's (kappa^2 >> 1/eps32 ~ 1.7e7),
  // so the fp32 Gram's Cholesky must break down and auto_shift must
  // rerun the FULL-fp64 shifted CholeskyQR3 -- same quality as the fp64
  // fallback path.
  Rng rng(95);
  const lin::Matrix a = lin::with_cond(rng, 64, 8, 1e6);
  rt::Runtime::run(4, [&](rt::Comm& world) {
    const FactorizeResult f64 = factorize(a, world);
    EXPECT_FALSE(f64.used_shift);  // fp64 handles this kappa directly
    const FactorizeResult mixed =
        factorize(a, world, {.precision = Precision::mixed});
    EXPECT_TRUE(mixed.used_shift);
    EXPECT_LT(lin::orthogonality_error(mixed.q), 1e-10);
    EXPECT_LT(lin::residual_error(a, mixed.q, mixed.r), 1e-9);
  });
}

TEST(MixedPrecisionTest, HighCondWithoutAutoShiftPropagates) {
  Rng rng(96);
  const lin::Matrix a = lin::with_cond(rng, 64, 8, 1e6);
  rt::Runtime::run(4, [&](rt::Comm& world) {
    EXPECT_THROW(
        (void)factorize(a, world,
                        {.auto_shift = false, .precision = Precision::mixed}),
        NotSpdError);
  });
}

TEST(MixedPrecisionTest, ThreePassIgnoresPrecision) {
  // The shifted CholeskyQR3 path is always full fp64; requesting mixed
  // with passes = 3 must produce bit-identical factors to plain fp64.
  rt::Runtime::run(4, [](rt::Comm& world) {
    const lin::Matrix a = lin::hashed_matrix(97, 64, 8);
    const FactorizeResult f64 = factorize(a, world, {.passes = 3});
    const FactorizeResult mixed = factorize(
        a, world, {.passes = 3, .precision = Precision::mixed});
    EXPECT_EQ(lin::max_abs_diff(f64.q, mixed.q), 0.0);
    EXPECT_EQ(lin::max_abs_diff(f64.r, mixed.r), 0.0);
  });
}

TEST(MixedPrecisionTest, BitwiseDeterministicAcrossBudgetsAndOverlap) {
  BudgetGuard bguard;
  OverlapGuard oguard;
  for (const Precision prec : {Precision::mixed, Precision::fp32}) {
    parallel::set_thread_budget(1);
    rt::set_overlap_enabled(false);
    // Rank 0 publishes its reference factors (the body may execute in a
    // forked child, so captured writes would not reach this caller).
    const rt::RunOutput ref_run =
        rt::Runtime::run_collect(4, [&](rt::Comm& world) {
          const lin::Matrix a = lin::hashed_matrix(98, 128, 16);
          const FactorizeResult res =
              factorize(a, world, {.precision = prec});
          if (world.rank() == 0) {
            const double dims[] = {static_cast<double>(res.q.rows()),
                                   static_cast<double>(res.q.cols()),
                                   static_cast<double>(res.r.rows()),
                                   static_cast<double>(res.r.cols())};
            world.publish(dims);
            world.publish(std::span<const double>(
                res.q.data(), static_cast<std::size_t>(res.q.size())));
            world.publish(std::span<const double>(
                res.r.data(), static_cast<std::size_t>(res.r.size())));
          }
        });
    const std::vector<double>& blob = ref_run.published[0];
    ASSERT_GE(blob.size(), 4u);
    std::size_t off = 4;
    auto unpack = [&](i64 rows, i64 cols) {
      lin::Matrix m(rows, cols);
      std::memcpy(m.data(), blob.data() + off,
                  static_cast<std::size_t>(m.size()) * sizeof(double));
      off += static_cast<std::size_t>(m.size());
      return m;
    };
    const lin::Matrix ref_q = unpack(static_cast<i64>(blob[0]),
                                     static_cast<i64>(blob[1]));
    const lin::Matrix ref_r = unpack(static_cast<i64>(blob[2]),
                                     static_cast<i64>(blob[3]));
    for (const int budget : {1, 4}) {
      for (const bool overlap : {false, true}) {
        parallel::set_thread_budget(budget);
        rt::set_overlap_enabled(overlap);
        rt::Runtime::run(4, [&](rt::Comm& world) {
          const lin::Matrix a = lin::hashed_matrix(98, 128, 16);
          const FactorizeResult res =
              factorize(a, world, {.precision = prec});
          EXPECT_EQ(lin::max_abs_diff(res.q, ref_q), 0.0)
              << precision_name(prec) << " t=" << budget
              << " overlap=" << overlap;
          EXPECT_EQ(lin::max_abs_diff(res.r, ref_r), 0.0)
              << precision_name(prec) << " t=" << budget
              << " overlap=" << overlap;
        });
      }
    }
  }
}

TEST(MixedPrecisionTest, Cqr2_1dDirectMixedPass) {
  // The DistMatrix-level entry point: cqr2_1d's precision parameter maps
  // `mixed` onto the first pass only, and the result still meets fp64
  // tolerances.
  const int p = 4;
  rt::Runtime::run(p, [&](rt::Comm& world) {
    const lin::Matrix a = lin::hashed_matrix(99, 64, 8);
    auto da = dist::DistMatrix::from_global(a, p, 1, world.rank(), 0);
    auto [q, r] = cqr2_1d(da, world, Precision::mixed);
    const lin::Matrix qg = gather(q, world);
    EXPECT_LT(lin::orthogonality_error(qg), 1e-12);
    EXPECT_LT(lin::residual_error(a, qg, r), 1e-12);
  });
}

}  // namespace
}  // namespace cacqr::core
