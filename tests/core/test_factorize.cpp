#include <gtest/gtest.h>

#include "cacqr/core/factorize.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/qr.hpp"
#include "cacqr/lin/util.hpp"

namespace cacqr::core {
namespace {

TEST(ChooseGridTest, PicksValidShapes) {
  for (const int p : {1, 2, 4, 8, 16, 27, 32, 64, 100}) {
    for (const auto& [m, n] : {std::pair<i64, i64>{1 << 20, 1 << 5},
                               {1 << 12, 1 << 10}, {1 << 8, 1 << 8}}) {
      const auto [c, d] = choose_grid(p, m, n);
      EXPECT_TRUE(grid::TunableGrid::valid_shape(p, c, d))
          << "p=" << p << " m=" << m << " n=" << n << " -> c=" << c
          << " d=" << d;
    }
  }
}

TEST(ChooseGridTest, TallSkinnyPrefersSmallC) {
  // Extremely overdetermined: the 1D layout is optimal.
  const auto [c, d] = choose_grid(64, i64{1} << 26, 64);
  EXPECT_EQ(c, 1);
  EXPECT_EQ(d, 64);
}

TEST(ChooseGridTest, SquarePrefersFullCube) {
  const auto [c, d] = choose_grid(64, 4096, 4096);
  EXPECT_EQ(c, 4);
  EXPECT_EQ(d, 4);
}

TEST(FactorizeTest, ExactDivisibleShape) {
  rt::Runtime::run(8, [](rt::Comm& world) {
    lin::Matrix a = lin::hashed_matrix(81, 32, 8);
    auto res = factorize(a, world, {.c = 2, .d = 2});
    EXPECT_EQ(res.c, 2);
    EXPECT_EQ(res.d, 2);
    EXPECT_FALSE(res.used_shift);
    EXPECT_LT(lin::orthogonality_error(res.q), 1e-11);
    EXPECT_LT(lin::residual_error(a, res.q, res.r), 1e-12);
    EXPECT_TRUE(lin::is_upper_triangular(res.r));
  });
}

TEST(FactorizeTest, AwkwardShapesArePadded) {
  // Dimensions with no relation to the grid: 37 x 5 on P = 8 and 16.
  for (const int p : {8, 16}) {
    rt::Runtime::run(p, [&](rt::Comm& world) {
      lin::Matrix a = lin::hashed_matrix(82, 37, 5);
      auto res = factorize(a, world);
      EXPECT_EQ(res.q.rows(), 37);
      EXPECT_EQ(res.q.cols(), 5);
      EXPECT_EQ(res.r.rows(), 5);
      EXPECT_LT(lin::orthogonality_error(res.q), 1e-11) << "p=" << p;
      EXPECT_LT(lin::residual_error(a, res.q, res.r), 1e-11) << "p=" << p;
    });
  }
}

TEST(FactorizeTest, PrimeDimensions) {
  rt::Runtime::run(4, [](rt::Comm& world) {
    lin::Matrix a = lin::hashed_matrix(83, 101, 13);
    auto res = factorize(a, world);
    EXPECT_LT(lin::orthogonality_error(res.q), 1e-11);
    EXPECT_LT(lin::residual_error(a, res.q, res.r), 1e-11);
  });
}

TEST(FactorizeTest, MatchesHouseholder) {
  rt::Runtime::run(8, [](rt::Comm& world) {
    lin::Matrix a = lin::hashed_matrix(84, 50, 10);
    auto res = factorize(a, world);
    auto hh = lin::householder_qr(a);
    EXPECT_LT(lin::max_abs_diff(res.r, hh.r),
              1e-9 * (1.0 + lin::max_abs(hh.r)));
    EXPECT_LT(lin::max_abs_diff(res.q, hh.q), 1e-9);
  });
}

TEST(FactorizeTest, SinglePassOption) {
  rt::Runtime::run(4, [](rt::Comm& world) {
    lin::Matrix a = lin::hashed_matrix(85, 24, 6);
    auto res = factorize(a, world, {.passes = 1});
    // One pass on a well-conditioned matrix is already good.
    EXPECT_LT(lin::orthogonality_error(res.q), 1e-10);
  });
}

TEST(FactorizeTest, AutoShiftFallback) {
  Rng rng(86);
  lin::Matrix a = lin::with_cond(rng, 32, 8, 1e11);
  rt::Runtime::run(4, [&](rt::Comm& world) {
    auto res = factorize(a, world);
    EXPECT_TRUE(res.used_shift);
    EXPECT_LT(lin::orthogonality_error(res.q), 1e-10);
    EXPECT_LT(lin::residual_error(a, res.q, res.r), 1e-9);
  });
}

TEST(FactorizeTest, AutoShiftDisabledPropagates) {
  Rng rng(87);
  lin::Matrix a = lin::with_cond(rng, 32, 8, 1e11);
  rt::Runtime::run(4, [&](rt::Comm& world) {
    EXPECT_THROW((void)factorize(a, world, {.auto_shift = false}),
                 NotSpdError);
  });
}

TEST(FactorizeTest, ExplicitThreePass) {
  rt::Runtime::run(4, [](rt::Comm& world) {
    lin::Matrix a = lin::hashed_matrix(88, 40, 8);
    auto res = factorize(a, world, {.passes = 3});
    EXPECT_TRUE(res.used_shift);
    EXPECT_LT(lin::orthogonality_error(res.q), 1e-12);
  });
}

TEST(FactorizeTest, WideMatrixRejected) {
  rt::Runtime::run(2, [](rt::Comm& world) {
    lin::Matrix a(4, 8);
    EXPECT_THROW((void)factorize(a, world), DimensionError);
  });
}

TEST(FactorizeTest, SingleRankWorks) {
  rt::Runtime::run(1, [](rt::Comm& world) {
    lin::Matrix a = lin::hashed_matrix(89, 20, 7);
    auto res = factorize(a, world);
    EXPECT_EQ(res.c, 1);
    EXPECT_EQ(res.d, 1);
    EXPECT_LT(lin::orthogonality_error(res.q), 1e-12);
  });
}

}  // namespace
}  // namespace cacqr::core
