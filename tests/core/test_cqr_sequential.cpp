#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>

#include "cacqr/core/cqr.hpp"
#include "cacqr/core/shifted.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/flops.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/qr.hpp"
#include "cacqr/lin/util.hpp"

namespace cacqr::core {
namespace {

TEST(CqrTest, WellConditionedBasics) {
  Rng rng(1);
  lin::Matrix a = lin::gaussian(rng, 50, 10);
  auto [q, r] = cqr(a);
  EXPECT_TRUE(lin::is_upper_triangular(r));
  for (i64 i = 0; i < 10; ++i) EXPECT_GT(r(i, i), 0.0);
  EXPECT_LT(lin::orthogonality_error(q), 1e-12);
  EXPECT_LT(lin::residual_error(a, q, r), 1e-13);
}

TEST(CqrTest, MatchesHouseholderFactors) {
  // With positive diagonals both factorizations are the unique reduced QR.
  Rng rng(2);
  lin::Matrix a = lin::with_cond(rng, 40, 8, 100.0);
  auto chol_fact = cqr(a);
  auto hh = lin::householder_qr(a);
  EXPECT_LT(lin::max_abs_diff(chol_fact.r, hh.r),
            1e-9 * (1.0 + lin::max_abs(hh.r)));
  EXPECT_LT(lin::max_abs_diff(chol_fact.q, hh.q), 1e-9);
}

TEST(CqrTest, OrthogonalityDegradesAsKappaSquared) {
  // The classical CholeskyQR bound: ||Q^T Q - I|| ~ kappa^2 eps.
  Rng rng(3);
  lin::Matrix mild = lin::with_cond(rng, 100, 12, 1e2);
  lin::Matrix hard = lin::with_cond(rng, 100, 12, 1e6);
  const double e_mild = lin::orthogonality_error(cqr(mild).q);
  const double e_hard = lin::orthogonality_error(cqr(hard).q);
  // Four orders of magnitude in kappa -> ~eight orders in error; allow
  // generous slack but insist on strong growth.
  EXPECT_GT(e_hard, 1e4 * e_mild);
  // Residual stays small in both cases (backward stability of the solve).
  EXPECT_LT(lin::residual_error(mild, cqr(mild).q, cqr(mild).r), 1e-12);
  EXPECT_LT(lin::residual_error(hard, cqr(hard).q, cqr(hard).r), 1e-12);
}

TEST(CqrTest, BreaksDownPastInverseSqrtEps) {
  // kappa^2 eps >> 1: the Gram matrix is numerically indefinite.
  Rng rng(4);
  lin::Matrix a = lin::with_cond(rng, 80, 10, 1e12);
  EXPECT_THROW((void)cqr(a), NotSpdError);
}

TEST(Cqr2Test, RestoresOrthogonality) {
  // CholeskyQR2's whole point: kappa <~ eps^{-1/2} gives eps-level Q.
  Rng rng(5);
  for (const double kappa : {1e2, 1e4, 1e6}) {
    lin::Matrix a = lin::with_cond(rng, 100, 12, kappa);
    auto [q, r] = cqr2(a);
    EXPECT_LT(lin::orthogonality_error(q), 1e-13) << "kappa=" << kappa;
    EXPECT_LT(lin::residual_error(a, q, r), 1e-12) << "kappa=" << kappa;
  }
}

TEST(Cqr2Test, MatchesHouseholderAccuracy) {
  Rng rng(6);
  lin::Matrix a = lin::with_cond(rng, 120, 16, 1e5);
  auto chol2 = cqr2(a);
  auto hh = lin::householder_qr(a);
  const double e_chol = lin::orthogonality_error(chol2.q);
  const double e_hh = lin::orthogonality_error(hh.q);
  EXPECT_LT(e_chol, 10.0 * e_hh + 1e-14);
}

TEST(Cqr2Test, RequiresTall) {
  lin::Matrix a(3, 5);
  EXPECT_THROW((void)cqr2(a), DimensionError);
}

TEST(ShiftedCqr3Test, SurvivesExtremeConditioning) {
  // kappa ~ 1e10: CQR2 breaks down, shifted CQR3 matches Householder.
  Rng rng(7);
  lin::Matrix a = lin::with_cond(rng, 100, 10, 1e10);
  EXPECT_THROW((void)cqr2(a), NotSpdError);
  auto [q, r] = shifted_cqr3(a);
  EXPECT_LT(lin::orthogonality_error(q), 1e-12);
  EXPECT_LT(lin::residual_error(a, q, r), 1e-11);
}

TEST(ShiftedCqr3Test, WellConditionedStillExact) {
  Rng rng(8);
  lin::Matrix a = lin::gaussian(rng, 60, 8);
  auto [q, r] = shifted_cqr3(a);
  EXPECT_LT(lin::orthogonality_error(q), 1e-13);
  EXPECT_LT(lin::residual_error(a, q, r), 1e-12);
}

TEST(ShiftedCqr3Test, ShiftFormula) {
  // s = 11 (mn + n(n+1)) eps ||A||^2.
  const double s = recommended_shift(100, 10, 4.0);
  EXPECT_NEAR(s, 11.0 * (1000.0 + 110.0) * DBL_EPSILON * 4.0, 1e-18);
}

TEST(Cqr2Test, FlopCountNearPaperFormula) {
  // The paper charges CQR2 4mn^2 + (5/3)n^3 critical-path flops.
  const i64 m = 200, n = 16;
  Rng rng(9);
  lin::Matrix a = lin::gaussian(rng, m, n);
  lin::flops::reset();
  (void)cqr2(a);
  const double measured = static_cast<double>(lin::flops::take());
  const double predicted =
      4.0 * static_cast<double>(m) * static_cast<double>(n * n) +
      5.0 / 3.0 * static_cast<double>(n * n * n);
  EXPECT_NEAR(measured / predicted, 1.0, 0.15);
}

}  // namespace
}  // namespace cacqr::core
