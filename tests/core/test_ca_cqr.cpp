#include <gtest/gtest.h>

#include <tuple>

#include "cacqr/core/ca_cqr.hpp"
#include "cacqr/core/cqr.hpp"
#include "cacqr/core/shifted.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/util.hpp"

namespace cacqr::core {
namespace {

using dist::DistMatrix;

using GridParam = std::tuple<int, int, int, int>;  // c, d, m-units, n-units

class CaCqrSweep : public ::testing::TestWithParam<GridParam> {};

/// m = mu * d rows, n = nu * c cols: the divisibility the low-level entry
/// points require (the high-level driver pads; see test_factorize.cpp).
TEST_P(CaCqrSweep, MatchesSequentialCqr2) {
  const auto [c, d, mu, nu] = GetParam();
  const int p = c * c * d;
  const i64 m = static_cast<i64>(mu) * d;
  const i64 n = static_cast<i64>(nu) * c;
  ASSERT_GE(m, n);
  rt::Runtime::run(p, [&, c = c, d = d](rt::Comm& world) {
    grid::TunableGrid g(world, c, d);
    lin::Matrix a = lin::hashed_matrix(71, m, n);
    auto da = DistMatrix::from_global_on_tunable(a, g);

    auto res = ca_cqr2(da, g);

    auto seq = cqr2(a);
    lin::Matrix qg = gather(res.q, g.slice());
    lin::Matrix rg = gather(res.r, g.subcube().slice());
    EXPECT_LT(lin::max_abs_diff(rg, seq.r),
              1e-9 * (1.0 + lin::max_abs(seq.r)))
        << "c=" << c << " d=" << d << " m=" << m << " n=" << n;
    EXPECT_LT(lin::max_abs_diff(qg, seq.q), 1e-9)
        << "c=" << c << " d=" << d << " m=" << m << " n=" << n;
  });
}

INSTANTIATE_TEST_SUITE_P(
    GridsAndShapes, CaCqrSweep,
    ::testing::Values(GridParam{1, 1, 24, 6},   // sequential degenerate
                      GridParam{1, 4, 8, 6},    // 1D grid (P=4)
                      GridParam{1, 8, 6, 4},    // 1D grid (P=8)
                      GridParam{2, 2, 16, 4},   // full cube (P=8, 3D-CQR2)
                      GridParam{2, 4, 8, 4},    // tunable (P=16, 2 subcubes)
                      GridParam{2, 8, 6, 3},    // tunable (P=32, 4 subcubes)
                      GridParam{4, 4, 8, 2},    // full cube (P=64)
                      GridParam{2, 4, 16, 8},   // larger blocks (P=16)
                      GridParam{2, 2, 48, 12}));

TEST(CaGramTest, ComputesGramOnSubcubeSlice) {
  const int c = 2, d = 4;
  rt::Runtime::run(c * c * d, [&](rt::Comm& world) {
    grid::TunableGrid g(world, c, d);
    lin::Matrix a = lin::hashed_matrix(72, 16, 8);
    auto da = DistMatrix::from_global_on_tunable(a, g);
    auto z = ca_gram(da, g);
    lin::Matrix zg = gather(z, g.subcube().slice());
    lin::Matrix expect(8, 8);
    lin::gram(1.0, a, 0.0, expect);
    EXPECT_LT(lin::max_abs_diff(zg, expect),
              1e-12 * (1.0 + lin::max_abs(expect)));
  });
}

TEST(CaGramTest, EverySubcubeOwnsTheSameGram) {
  // d/c = 4 subcubes must all own identical copies of Z.
  const int c = 2, d = 8;
  rt::Runtime::run(c * c * d, [&](rt::Comm& world) {
    grid::TunableGrid g(world, c, d);
    lin::Matrix a = lin::hashed_matrix(73, 16, 4);
    auto da = DistMatrix::from_global_on_tunable(a, g);
    auto z = ca_gram(da, g);
    lin::Matrix zg = gather(z, g.subcube().slice());
    lin::Matrix expect(4, 4);
    lin::gram(1.0, a, 0.0, expect);
    // Tolerance instead of equality: different subcubes sum the strided
    // allreduce in different orders.
    EXPECT_LT(lin::max_abs_diff(zg, expect), 1e-12)
        << "subcube " << g.subcube_index();
  });
}

TEST(CaCqrTest, SinglePassInvariants) {
  const int c = 2, d = 4;
  rt::Runtime::run(c * c * d, [&](rt::Comm& world) {
    grid::TunableGrid g(world, c, d);
    lin::Matrix a = lin::hashed_matrix(74, 32, 8);
    auto da = DistMatrix::from_global_on_tunable(a, g);
    auto res = ca_cqr(da, g);
    lin::Matrix qg = gather(res.q, g.slice());
    lin::Matrix rg = gather(res.r, g.subcube().slice());
    EXPECT_TRUE(lin::is_upper_triangular(rg));
    for (i64 i = 0; i < 8; ++i) EXPECT_GT(rg(i, i), 0.0);
    EXPECT_LT(lin::orthogonality_error(qg), 1e-11);
    EXPECT_LT(lin::residual_error(a, qg, rg), 1e-12);
  });
}

TEST(CaCqrTest, QReplicatedAcrossDepth) {
  const int c = 2, d = 2;
  rt::Runtime::run(c * c * d, [&](rt::Comm& world) {
    grid::TunableGrid g(world, c, d);
    lin::Matrix a = lin::hashed_matrix(75, 8, 4);
    auto da = DistMatrix::from_global_on_tunable(a, g);
    auto res = ca_cqr2(da, g);
    std::vector<double> mine(res.q.local().data(),
                             res.q.local().data() + res.q.local().size());
    std::vector<double> all(mine.size() * c);
    g.depth().allgather(mine, all);
    for (int zz = 0; zz < c; ++zz) {
      for (std::size_t i = 0; i < mine.size(); ++i) {
        EXPECT_DOUBLE_EQ(all[zz * mine.size() + i], mine[i]);
      }
    }
  });
}

TEST(CaCqrTest, BaseCaseKnobDoesNotChangeResult) {
  const int c = 2, d = 2;
  rt::Runtime::run(c * c * d, [&](rt::Comm& world) {
    grid::TunableGrid g(world, c, d);
    lin::Matrix a = lin::hashed_matrix(76, 16, 8);
    auto da = DistMatrix::from_global_on_tunable(a, g);
    auto res_deep = ca_cqr2(da, g, {.base_case = 2});
    auto res_shallow = ca_cqr2(da, g, {.base_case = 8});
    lin::Matrix q1 = gather(res_deep.q, g.slice());
    lin::Matrix q2 = gather(res_shallow.q, g.slice());
    EXPECT_LT(lin::max_abs_diff(q1, q2), 1e-11);
  });
}

TEST(CaCqrTest, IllConditionedThrowsEverywhere) {
  const int c = 2, d = 2;
  // kappa ~ 1e12 >> eps^{-1/2}: the Gram factorization must fail.
  Rng rng(77);
  lin::Matrix a = lin::with_cond(rng, 16, 8, 1e12);
  rt::Runtime::run(c * c * d, [&](rt::Comm& world) {
    grid::TunableGrid g(world, c, d);
    auto da = DistMatrix::from_global_on_tunable(a, g);
    EXPECT_THROW((void)ca_cqr2(da, g), NotSpdError);
  });
}

TEST(CaCqr3Test, ShiftedHandlesIllConditioning) {
  const int c = 2, d = 2;
  Rng rng(78);
  lin::Matrix a = lin::with_cond(rng, 16, 8, 1e9);
  rt::Runtime::run(c * c * d, [&](rt::Comm& world) {
    grid::TunableGrid g(world, c, d);
    auto da = DistMatrix::from_global_on_tunable(a, g);
    auto res = ca_cqr3(da, g);
    lin::Matrix qg = gather(res.q, g.slice());
    lin::Matrix rg = gather(res.r, g.subcube().slice());
    EXPECT_LT(lin::orthogonality_error(qg), 1e-11);
    EXPECT_LT(lin::residual_error(a, qg, rg), 1e-10);
  });
}

class InverseDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(InverseDepthSweep, SameFactorsAsFullInverse) {
  // The InverseDepth strategy changes the schedule, not the math: Q and R
  // must agree with the depth-0 result to rounding.
  const int depth = GetParam();
  const int c = 2, d = 4;
  rt::Runtime::run(c * c * d, [&](rt::Comm& world) {
    grid::TunableGrid g(world, c, d);
    lin::Matrix a = lin::hashed_matrix(811, 32, 16);
    auto da = DistMatrix::from_global_on_tunable(a, g);
    auto base = ca_cqr2(da, g, {.base_case = 4});
    auto alt = ca_cqr2(da, g, {.base_case = 4, .inverse_depth = depth});
    lin::Matrix q0 = gather(base.q, g.slice());
    lin::Matrix q1 = gather(alt.q, g.slice());
    lin::Matrix r0 = gather(base.r, g.subcube().slice());
    lin::Matrix r1 = gather(alt.r, g.subcube().slice());
    EXPECT_LT(lin::max_abs_diff(q0, q1), 1e-10) << "depth=" << depth;
    EXPECT_LT(lin::max_abs_diff(r0, r1), 1e-10 * (1.0 + lin::max_abs(r0)));
  });
}

INSTANTIATE_TEST_SUITE_P(Depths, InverseDepthSweep, ::testing::Values(1, 2));

TEST(InverseDepthTest, TradesFlopsForSynchronization) {
  // Paper Section III-A: deeper inversion cuts multiply flops (toward 2x)
  // and raises the synchronization (message) count.
  const int c = 2, d = 2;
  const i64 m = 64, n = 32;
  auto run_with = [&](int depth) {
    auto per_rank = rt::Runtime::run(c * c * d, [&](rt::Comm& world) {
      grid::TunableGrid g(world, c, d);
      auto da = DistMatrix::from_global_on_tunable(
          lin::hashed_matrix(812, m, n), g);
      (void)ca_cqr2(da, g, {.base_case = 4, .inverse_depth = depth});
    });
    return rt::max_counters(per_rank);
  };
  const auto d0 = run_with(0);
  const auto d2 = run_with(2);
  EXPECT_LT(d2.flops, d0.flops);
  EXPECT_GT(d2.msgs, d0.msgs);
}

TEST(InverseDepthTest, IgnoredAtCEqualsOne) {
  // The 1D path already exploits triangular structure locally.
  rt::Runtime::run(4, [&](rt::Comm& world) {
    grid::TunableGrid g(world, 1, 4);
    auto da = DistMatrix::from_global_on_tunable(
        lin::hashed_matrix(813, 16, 8), g);
    auto r0 = ca_cqr2(da, g);
    auto r1 = ca_cqr2(da, g, {.inverse_depth = 3});
    EXPECT_EQ(gather(r0.q, g.slice()), gather(r1.q, g.slice()));
  });
}

TEST(CaCqrCostTest, CommunicationShrinksWithLargerC) {
  // The headline claim (Table I): beta_1D ~ n^2 versus beta_CA ~
  // mn/(dc) + n^2/c^2.  For square-ish matrices -- exactly the regime the
  // paper says 1D-CQR2 cannot scale in -- the replicated Gram allreduce
  // dominates 1D and the c = P^(1/3) grid must move far fewer words.
  const i64 m = 64, n = 64;
  auto words_for = [&](int c, int d) {
    auto per_rank = rt::Runtime::run(c * c * d, [&](rt::Comm& world) {
      grid::TunableGrid g(world, c, d);
      auto da = DistMatrix::from_global_on_tunable(
          lin::hashed_matrix(79, m, n), g);
      (void)ca_cqr2(da, g);
    });
    return rt::max_counters(per_rank).words;
  };
  const i64 w_1d = words_for(1, 64);  // P=64, 1D
  const i64 w_ca = words_for(4, 4);   // P=64, full cube
  EXPECT_LT(w_ca, w_1d);
}

TEST(CaCqrCostTest, SynchronizationGrowsWithC) {
  // The other side of the tradeoff: more messages with larger c.
  const i64 m = 64, n = 16;
  auto msgs_for = [&](int c, int d) {
    auto per_rank = rt::Runtime::run(c * c * d, [&](rt::Comm& world) {
      grid::TunableGrid g(world, c, d);
      auto da = DistMatrix::from_global_on_tunable(
          lin::hashed_matrix(80, m, n), g);
      (void)ca_cqr2(da, g);
    });
    return rt::max_counters(per_rank).msgs;
  };
  EXPECT_GT(msgs_for(2, 4), msgs_for(1, 16));
}

}  // namespace
}  // namespace cacqr::core
