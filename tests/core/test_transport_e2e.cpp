/// \file test_transport_e2e.cpp
/// \brief End-to-end factorization conformance across transports: cqr_1d
///        and ca_cqr2 must produce bitwise-identical per-rank Q and R
///        under the modeled (threads) and shm (forked processes)
///        backends, across the worker-budget {1, 4} x overlap {off, on}
///        acceptance matrix.  One-owner local stages, fixed collective
///        schedules, and backend-independent delivery compose into
///        whole-factorization determinism.

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "cacqr/core/ca_cqr.hpp"
#include "cacqr/core/cqr_1d.hpp"
#include "cacqr/dist/dist_matrix.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/rt/comm.hpp"

namespace cacqr::core {
namespace {

using dist::DistMatrix;

#if defined(__SANITIZE_THREAD__)
#define CACQR_TSAN 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CACQR_TSAN 1
#endif
#endif

bool shm_testable() {
#if defined(CACQR_TSAN)
  return false;
#else
  return rt::transport_available(rt::TransportKind::shm);
#endif
}

struct OverlapGuard {
  bool saved = rt::overlap_enabled();
  ~OverlapGuard() { rt::set_overlap_enabled(saved); }
};

void publish_matrix(rt::Comm& world, const lin::Matrix& m) {
  const double dims[] = {static_cast<double>(m.rows()),
                         static_cast<double>(m.cols())};
  world.publish(dims);
  world.publish(std::span<const double>(
      m.data(), static_cast<std::size_t>(m.size())));
}

/// Runs `body` (which publishes its factors) on p ranks over `kind` with
/// the given worker budget and overlap setting; returns the per-rank
/// published blobs.
std::vector<std::vector<double>> run_case(
    int p, int budget, bool overlap, rt::TransportKind kind,
    const std::function<void(rt::Comm&)>& body) {
  OverlapGuard guard;
  rt::set_overlap_enabled(overlap);
  rt::RunOutput out = rt::Runtime::run_collect(
      p, body, rt::Machine::counting(), budget, kind);
  return std::move(out.published);
}

/// The acceptance matrix: for budgets {1, 4} x overlap {off, on}, the
/// shm run's per-rank factors must be byte-identical to the modeled run
/// of the SAME configuration.
void expect_e2e_conformant(int p, const std::function<void(rt::Comm&)>& body) {
  if (!shm_testable()) GTEST_SKIP() << "shm transport not testable here";
  for (const int budget : {1, 4}) {
    for (const bool overlap : {false, true}) {
      const auto modeled =
          run_case(p, budget, overlap, rt::TransportKind::modeled, body);
      const auto shm =
          run_case(p, budget, overlap, rt::TransportKind::shm, body);
      ASSERT_EQ(modeled.size(), shm.size());
      for (int r = 0; r < p; ++r) {
        const auto i = static_cast<std::size_t>(r);
        ASSERT_EQ(modeled[i].size(), shm[i].size())
            << "rank " << r << " t=" << budget << " overlap=" << overlap;
        EXPECT_EQ(0, std::memcmp(modeled[i].data(), shm[i].data(),
                                 modeled[i].size() * sizeof(double)))
            << "rank " << r << " t=" << budget << " overlap=" << overlap;
      }
    }
  }
}

class TransportE2e : public ::testing::TestWithParam<int> {};

TEST_P(TransportE2e, Cqr1dFactorsBitwiseAcrossBackends) {
  const int p = GetParam();
  expect_e2e_conformant(p, [p](rt::Comm& world) {
    const lin::Matrix a = lin::hashed_matrix(501, 128 * p, 32);
    auto da = DistMatrix::from_global(a, p, 1, world.rank(), 0);
    auto res = cqr_1d(da, world);
    publish_matrix(world, res.q.local());
    publish_matrix(world, res.r);
  });
}

TEST_P(TransportE2e, Cqr2_1dFactorsBitwiseAcrossBackends) {
  const int p = GetParam();
  expect_e2e_conformant(p, [p](rt::Comm& world) {
    const lin::Matrix a = lin::hashed_matrix(502, 96 * p, 24);
    auto da = DistMatrix::from_global(a, p, 1, world.rank(), 0);
    auto res = cqr2_1d(da, world);
    publish_matrix(world, res.q.local());
    publish_matrix(world, res.r);
  });
}

TEST_P(TransportE2e, CaCqr2FactorsBitwiseAcrossBackends) {
  // P = c*c*d with c | d: both rank counts use the c=1 column (P=2 ->
  // (1,2), P=4 -> (1,4)), the deepest-replication shapes at these sizes.
  const int p = GetParam();
  const int c = 1;
  const int d = p;
  expect_e2e_conformant(p, [c, d](rt::Comm& world) {
    grid::TunableGrid g(world, c, d);
    const lin::Matrix a = lin::hashed_matrix(503, 256, 32);
    auto da = DistMatrix::from_global_on_tunable(a, g);
    auto res = ca_cqr2(da, g);
    publish_matrix(world, res.q.local());
    publish_matrix(world, res.r.local());
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, TransportE2e, ::testing::Values(2, 4));

}  // namespace
}  // namespace cacqr::core
