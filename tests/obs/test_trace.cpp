#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "cacqr/obs/trace.hpp"
#include "cacqr/support/json.hpp"

namespace cacqr::obs {
namespace {

using support::Json;

/// Saves and restores the process-wide trace mode + dir around each test:
/// the CI trace pass runs this whole suite with CACQR_TRACE=all, so tests
/// must set the state they need explicitly and put it back after.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_mode_ = trace_mode();
    saved_dir_ = trace_dir();
    char tmpl[] = "/tmp/cacqr_trace_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    set_trace_dir(dir_);
  }
  void TearDown() override {
    set_trace_mode(saved_mode_);
    set_trace_dir(saved_dir_);
    set_trace_buffer_capacity(0);
  }

  /// Exports this process's rings and parses the per-pid file back.
  Json exported() {
    EXPECT_TRUE(write_process_trace());
    const auto doc = support::read_json_file(
        dir_ + "/trace-" + std::to_string(getpid()) + ".json");
    EXPECT_TRUE(doc.has_value());
    return doc.value_or(Json());
  }

  static std::vector<Json> events_named(const Json& doc,
                                        const std::string& name) {
    std::vector<Json> out;
    const Json& ev = doc["traceEvents"];
    for (std::size_t i = 0; i < ev.size(); ++i) {
      if (ev.at(i)["name"].as_string() == name) out.push_back(ev.at(i));
    }
    return out;
  }

  TraceMode saved_mode_ = TraceMode::off;
  std::string saved_dir_;
  std::string dir_;
};

TEST_F(TraceTest, ModeGatesRecording) {
  set_trace_mode(TraceMode::off);
  EXPECT_FALSE(trace_on());
  EXPECT_EQ(trace_mode(), TraceMode::off);
  set_trace_mode(TraceMode::rank0);
  EXPECT_TRUE(trace_on());
  set_trace_mode(TraceMode::all);
  EXPECT_TRUE(trace_on());
  EXPECT_EQ(trace_mode(), TraceMode::all);
}

TEST_F(TraceTest, RecorderRoundTripsThroughExport) {
  set_trace_mode(TraceMode::all);
  const u64 t0 = now_ns();
  complete("test", "obs_rt_complete", t0, t0 + 2500,
           {{"alpha", 1.5}, {"beta", -2.0}});
  instant("test", "obs_rt_instant", {{"k", 7.0}});
  counter("test", "obs_rt_counter", 42.0);
  const u64 id = new_async_id();
  async_begin("test", "obs_rt_async", id, {{"seq", 3.0}});
  async_end("test", "obs_rt_async", id);

  const Json doc = exported();
  EXPECT_EQ(doc["schema_version"].as_int(), 1);
  EXPECT_TRUE(doc["traceEvents"].is_array());

  const auto comp = events_named(doc, "obs_rt_complete");
  ASSERT_EQ(comp.size(), 1u);
  EXPECT_EQ(comp[0]["ph"].as_string(), "X");
  EXPECT_EQ(comp[0]["cat"].as_string(), "test");
  EXPECT_DOUBLE_EQ(comp[0]["dur"].as_number(), 2.5);  // microseconds
  EXPECT_DOUBLE_EQ(comp[0]["args"]["alpha"].as_number(), 1.5);
  EXPECT_DOUBLE_EQ(comp[0]["args"]["beta"].as_number(), -2.0);

  const auto inst = events_named(doc, "obs_rt_instant");
  ASSERT_EQ(inst.size(), 1u);
  EXPECT_EQ(inst[0]["ph"].as_string(), "i");
  EXPECT_DOUBLE_EQ(inst[0]["args"]["k"].as_number(), 7.0);

  const auto ctr = events_named(doc, "obs_rt_counter");
  ASSERT_EQ(ctr.size(), 1u);
  EXPECT_EQ(ctr[0]["ph"].as_string(), "C");
  EXPECT_DOUBLE_EQ(ctr[0]["args"]["value"].as_number(), 42.0);

  const auto as = events_named(doc, "obs_rt_async");
  ASSERT_EQ(as.size(), 2u);
  EXPECT_EQ(as[0]["ph"].as_string(), "b");
  EXPECT_EQ(as[1]["ph"].as_string(), "e");
  EXPECT_EQ(as[0]["id"].as_int(), as[1]["id"].as_int());
}

TEST_F(TraceTest, SpanScopeRecordsOnceWithArgs) {
  set_trace_mode(TraceMode::all);
  {
    SpanScope span("test", "obs_rt_scope");
    span.arg("n", 64.0);
    span.close();
    span.close();  // idempotent: the dtor must not record a second event
  }
  const auto got = events_named(exported(), "obs_rt_scope");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0]["ph"].as_string(), "X");
  EXPECT_DOUBLE_EQ(got[0]["args"]["n"].as_number(), 64.0);
}

TEST_F(TraceTest, Rank0ModeFiltersOtherRanks) {
  set_trace_mode(TraceMode::rank0);
  const int prev = set_trace_rank(5);
  instant("test", "obs_rt_filtered");
  set_trace_rank(0);
  instant("test", "obs_rt_rank0_kept");
  set_trace_rank(-1);
  instant("test", "obs_rt_driver_kept");
  set_trace_rank(prev);

  const Json doc = exported();
  EXPECT_EQ(events_named(doc, "obs_rt_filtered").size(), 0u);
  EXPECT_EQ(events_named(doc, "obs_rt_rank0_kept").size(), 1u);
  EXPECT_EQ(events_named(doc, "obs_rt_driver_kept").size(), 1u);
}

TEST_F(TraceTest, RankTagSetsProcessRow) {
  set_trace_mode(TraceMode::all);
  const int prev = set_trace_rank(3);
  instant("test", "obs_rt_on_rank3");
  set_trace_rank(prev);
  const auto got = events_named(exported(), "obs_rt_on_rank3");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0]["pid"].as_int(), 3);
}

TEST_F(TraceTest, FullRingDropsNewestAndCounts) {
  set_trace_mode(TraceMode::all);
  set_trace_buffer_capacity(16);
  const u64 dropped_before = dropped_events();
  // A fresh thread gets a fresh (16-event) ring; the overflow is dropped,
  // never overwritten.
  std::thread t([] {
    for (int i = 0; i < 50; ++i) instant("test", "obs_rt_flood");
  });
  t.join();
  EXPECT_GE(dropped_events() - dropped_before, 34u);
  const auto kept = events_named(exported(), "obs_rt_flood");
  EXPECT_EQ(kept.size(), 16u);
  EXPECT_GE(exported()["dropped_events"].as_int(), 34);
}

TEST_F(TraceTest, MergeCombinesFilesAndSkipsGarbage) {
  auto one_event_doc = [](const std::string& name) {
    Json e = Json::object();
    e.set("name", name);
    e.set("ph", "i");
    e.set("pid", 0);
    e.set("tid", 1);
    e.set("ts", 1.0);
    Json doc = Json::object();
    doc.set("schema_version", 1);
    Json ev = Json::array();
    ev.push_back(std::move(e));
    doc.set("traceEvents", std::move(ev));
    return doc;
  };
  const std::string a = dir_ + "/trace-100001.json";
  const std::string b = dir_ + "/trace-100002.json";
  ASSERT_TRUE(support::write_json_file(a, one_event_doc("from_a"), -1));
  ASSERT_TRUE(support::write_json_file(b, one_event_doc("from_b"), -1));

  const std::string out = dir_ + "/merged.json";
  ASSERT_TRUE(merge_trace_files({a, b, dir_ + "/missing.json"}, out));
  const auto merged = support::read_json_file(out);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ((*merged)["traceEvents"].size(), 2u);

  // Directory form picks up every trace-*.json (merged.json is ignored).
  const std::string out2 = dir_ + "/merged2.json";
  ASSERT_TRUE(merge_trace_dir(dir_, out2));
  const auto merged2 = support::read_json_file(out2);
  ASSERT_TRUE(merged2.has_value());
  EXPECT_EQ((*merged2)["traceEvents"].size(), 2u);

  EXPECT_FALSE(merge_trace_files({dir_ + "/missing.json"}, out));
}

TEST_F(TraceTest, OffModeRecordsNothing) {
  set_trace_mode(TraceMode::all);
  instant("test", "obs_rt_marker_before");  // ensure the export is nonempty
  set_trace_mode(TraceMode::off);
  instant("test", "obs_rt_while_off");
  SpanScope span("test", "obs_rt_span_while_off");
  span.close();
  set_trace_mode(TraceMode::all);
  const Json doc = exported();
  EXPECT_EQ(events_named(doc, "obs_rt_while_off").size(), 0u);
  EXPECT_EQ(events_named(doc, "obs_rt_span_while_off").size(), 0u);
  EXPECT_EQ(events_named(doc, "obs_rt_marker_before").size(), 1u);
}

}  // namespace
}  // namespace cacqr::obs
