#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cacqr/obs/metrics.hpp"
#include "cacqr/support/json.hpp"

namespace cacqr::obs {
namespace {

using support::Json;

TEST(MetricsTest, CounterAccumulates) {
  Registry reg;
  Counter& c = reg.counter("jobs");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(&reg.counter("jobs"), &c);  // find-or-create is stable
}

TEST(MetricsTest, GaugeSetAndHighWater) {
  Registry reg;
  Gauge& g = reg.gauge("depth");
  g.set(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.record_max(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.record_max(5.0);  // below the high-water: ignored
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.set(1.0);  // set always wins
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(MetricsTest, HistogramBucketsAndOverflow) {
  Registry reg;
  const double bounds[] = {1.0, 10.0, 100.0};
  Histogram& h = reg.histogram("latency", bounds);
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (boundary is inclusive)
  h.observe(7.0);    // bucket 1
  h.observe(100.0);  // bucket 2
  h.observe(1e6);    // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 7.0 + 100.0 + 1e6);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  // Later registrations ignore their bounds and return the same instance.
  const double other[] = {5.0};
  EXPECT_EQ(&reg.histogram("latency", other), &h);
  EXPECT_EQ(h.bounds().size(), 3u);
}

TEST(MetricsTest, InstrumentsAreThreadSafe) {
  Registry reg;
  Counter& c = reg.counter("hits");
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 4000u);
}

TEST(MetricsTest, SnapshotIsDeterministicAndSorted) {
  Registry reg;
  // Registered out of order on purpose: the snapshot must sort by name.
  reg.counter("zeta").add(1);
  reg.counter("alpha").add(2);
  reg.gauge("mid").set(0.5);
  const double bounds[] = {1.0, 2.0};
  reg.histogram("hist", bounds).observe(1.5);

  const Json snap = reg.snapshot();
  EXPECT_EQ(snap["schema_version"].as_int(), 1);
  const auto& counters = snap["counters"].members();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "alpha");
  EXPECT_EQ(counters[1].first, "zeta");
  EXPECT_EQ(snap["counters"]["alpha"].as_int(), 2);
  EXPECT_DOUBLE_EQ(snap["gauges"]["mid"].as_number(), 0.5);

  const Json& hist = snap["histograms"]["hist"];
  EXPECT_EQ(hist["count"].as_int(), 1);
  EXPECT_DOUBLE_EQ(hist["sum"].as_number(), 1.5);
  ASSERT_EQ(hist["buckets"].size(), 3u);  // 2 bounds + overflow
  EXPECT_DOUBLE_EQ(hist["buckets"].at(0)["le"].as_number(), 1.0);
  EXPECT_EQ(hist["buckets"].at(1)["count"].as_int(), 1);
  EXPECT_EQ(hist["buckets"].at(2)["le"].as_string(), "inf");

  // Byte-identical on repeat: the schema round-trip contract.
  EXPECT_EQ(snap.dump(), reg.snapshot().dump());
}

TEST(MetricsTest, SnapshotRoundTripsThroughFile) {
  Registry reg;
  reg.counter("written").add(7);
  char tmpl[] = "/tmp/cacqr_metrics_test_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string path = std::string(tmpl) + "/metrics.json";
  ASSERT_TRUE(reg.write_snapshot(path));
  const auto doc = support::read_json_file(path);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ((*doc)["counters"]["written"].as_int(), 7);
  std::remove(path.c_str());
}

TEST(MetricsTest, GlobalRegistryIsSingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

}  // namespace
}  // namespace cacqr::obs
