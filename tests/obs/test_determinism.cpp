#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "cacqr/core/factorize.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/obs/trace.hpp"
#include "cacqr/rt/comm.hpp"

namespace cacqr::obs {
namespace {

/// One factorization through the SPMD runtime, returning the bits that
/// must not depend on tracing: Q, R, and the per-rank cost counters.
struct RunBits {
  std::vector<double> q;
  std::vector<double> r;
  std::vector<rt::CostCounters> counters;
};

RunBits run_once(int passes) {
  RunBits out;
  out.counters = rt::Runtime::run(4, [&](rt::Comm& world) {
    lin::Matrix a = lin::hashed_matrix(321, 96, 12);
    auto res = core::factorize(a, world, {.passes = passes});
    if (world.rank() == 0) {
      out.q.assign(res.q.data(), res.q.data() + res.q.size());
      out.r.assign(res.r.data(), res.r.data() + res.r.size());
    }
  });
  return out;
}

/// The headline contract of the tracing layer: recording must never touch
/// numerical state, the tallies, or the modeled clock.  Bitwise equality,
/// not tolerance.
TEST(TraceDeterminismTest, ResultsAreBitwiseIdenticalTraceOnVsOff) {
  const TraceMode saved_mode = trace_mode();
  const std::string saved_dir = trace_dir();

  set_trace_mode(TraceMode::off);
  const RunBits off = run_once(2);

  char tmpl[] = "/tmp/cacqr_det_test_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  set_trace_dir(tmpl);
  set_trace_mode(TraceMode::all);
  const RunBits on = run_once(2);

  set_trace_mode(saved_mode);
  set_trace_dir(saved_dir);

  ASSERT_EQ(off.q.size(), on.q.size());
  ASSERT_EQ(off.r.size(), on.r.size());
  for (std::size_t i = 0; i < off.q.size(); ++i) {
    ASSERT_EQ(off.q[i], on.q[i]) << "Q differs at " << i;
  }
  for (std::size_t i = 0; i < off.r.size(); ++i) {
    ASSERT_EQ(off.r[i], on.r[i]) << "R differs at " << i;
  }
  ASSERT_EQ(off.counters.size(), on.counters.size());
  for (std::size_t r = 0; r < off.counters.size(); ++r) {
    EXPECT_EQ(off.counters[r].msgs, on.counters[r].msgs) << "rank " << r;
    EXPECT_EQ(off.counters[r].words, on.counters[r].words) << "rank " << r;
    EXPECT_EQ(off.counters[r].flops, on.counters[r].flops) << "rank " << r;
    EXPECT_EQ(off.counters[r].time, on.counters[r].time) << "rank " << r;
  }
}

}  // namespace
}  // namespace cacqr::obs
