#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cacqr/support/rng.hpp"
#include "cacqr/rt/comm.hpp"

namespace cacqr::rt {
namespace {

/// Deterministic per-rank payload so every rank can compute the expected
/// reduction/concatenation locally.
std::vector<double> payload(int rank, std::size_t n, u64 salt = 0) {
  std::vector<double> v(n);
  Rng rng(static_cast<u64>(rank) * 1315423911ULL + salt + 1);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

class CollectiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSweep, BcastDeliversRootData) {
  const int p = GetParam();
  for (const std::size_t n : {std::size_t{1}, std::size_t{17}, std::size_t{256}}) {
    for (const int root : {0, p - 1, p / 2}) {
      Runtime::run(p, [&](Comm& c) {
        std::vector<double> expect = payload(root, n, 11);
        std::vector<double> data = c.rank() == root
                                       ? expect
                                       : std::vector<double>(n, -999.0);
        c.bcast(data, root);
        EXPECT_EQ(data, expect) << "p=" << p << " n=" << n << " root=" << root;
      });
    }
  }
}

TEST_P(CollectiveSweep, AllreduceSumsEverywhere) {
  const int p = GetParam();
  for (const std::size_t n : {std::size_t{1}, std::size_t{13}, std::size_t{200}}) {
    std::vector<double> expect(n, 0.0);
    for (int r = 0; r < p; ++r) {
      auto v = payload(r, n, 22);
      for (std::size_t i = 0; i < n; ++i) expect[i] += v[i];
    }
    Runtime::run(p, [&](Comm& c) {
      std::vector<double> data = payload(c.rank(), n, 22);
      c.allreduce_sum(data);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(data[i], expect[i], 1e-12 * p) << "p=" << p << " n=" << n;
      }
    });
  }
}

TEST_P(CollectiveSweep, ReduceMatchesAllreduceOnRoot) {
  const int p = GetParam();
  const std::size_t n = 37;
  std::vector<double> expect(n, 0.0);
  for (int r = 0; r < p; ++r) {
    auto v = payload(r, n, 33);
    for (std::size_t i = 0; i < n; ++i) expect[i] += v[i];
  }
  Runtime::run(p, [&](Comm& c) {
    std::vector<double> data = payload(c.rank(), n, 33);
    c.reduce_sum(data, p - 1);
    if (c.rank() == p - 1) {
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(data[i], expect[i], 1e-12 * p);
      }
    }
  });
}

TEST_P(CollectiveSweep, AllgatherConcatenatesInRankOrder) {
  const int p = GetParam();
  for (const std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{64}}) {
    Runtime::run(p, [&](Comm& c) {
      std::vector<double> mine = payload(c.rank(), n, 44);
      std::vector<double> all(n * static_cast<std::size_t>(p));
      c.allgather(mine, all);
      for (int r = 0; r < p; ++r) {
        auto expect = payload(r, n, 44);
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(all[static_cast<std::size_t>(r) * n + i], expect[i])
              << "p=" << p << " r=" << r;
        }
      }
    });
  }
}

TEST_P(CollectiveSweep, BarrierCompletes) {
  const int p = GetParam();
  Runtime::run(p, [&](Comm& c) {
    for (int i = 0; i < 3; ++i) c.barrier();
  });
}

// Power-of-two and awkward non-power-of-two communicator sizes, including
// primes (exercises the fold paths of every collective).
INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 11, 16));

TEST(CollectiveTest, BackToBackCollectivesDoNotCrossTalk) {
  // Same comm, same shapes, consecutive ops: sequence tags must keep the
  // butterfly stages of op k separate from op k+1.
  Runtime::run(4, [](Comm& c) {
    for (int round = 0; round < 10; ++round) {
      std::vector<double> v = {static_cast<double>(c.rank() + round)};
      c.allreduce_sum(v);
      const double expect = 4.0 * round + 0.0 + 1.0 + 2.0 + 3.0;
      EXPECT_DOUBLE_EQ(v[0], expect);
    }
  });
}

TEST(CollectiveTest, CollectivesOnSubCommunicators) {
  Runtime::run(8, [](Comm& c) {
    Comm sub = c.split(c.rank() % 2, c.rank());
    std::vector<double> v = {1.0};
    sub.allreduce_sum(v);
    EXPECT_DOUBLE_EQ(v[0], 4.0);
    // Broadcast on the sub-communicator from its last rank.
    std::vector<double> b = {sub.rank() == 3 ? 7.0 : 0.0};
    sub.bcast(b, 3);
    EXPECT_DOUBLE_EQ(b[0], 7.0);
  });
}

TEST(CollectiveTest, LargePayloadStress) {
  Runtime::run(4, [](Comm& c) {
    const std::size_t n = 1 << 15;
    std::vector<double> v(n, 1.0);
    c.allreduce_sum(v);
    for (std::size_t i = 0; i < n; i += 997) EXPECT_DOUBLE_EQ(v[i], 4.0);
  });
}

TEST(CollectiveTest, AllgatherSizeValidation) {
  EXPECT_THROW(Runtime::run(2,
                            [](Comm& c) {
                              std::vector<double> mine(3), all(5);
                              c.allgather(mine, all);
                            }),
               CommError);
}

TEST(CollectiveTest, MixedCollectiveSequence) {
  // A realistic CholeskyQR-like communication sequence on one comm.
  Runtime::run(8, [](Comm& c) {
    std::vector<double> g = {static_cast<double>(c.rank())};
    c.allreduce_sum(g);  // 0+..+7 = 28
    EXPECT_DOUBLE_EQ(g[0], 28.0);
    std::vector<double> b(4, c.rank() == 2 ? 3.0 : 0.0);
    c.bcast(b, 2);
    EXPECT_DOUBLE_EQ(b[3], 3.0);
    std::vector<double> mine = {g[0] + b[0]};
    std::vector<double> all(8);
    c.allgather(mine, all);
    for (const double x : all) EXPECT_DOUBLE_EQ(x, 31.0);
    c.barrier();
  });
}

}  // namespace
}  // namespace cacqr::rt
