/// \file test_conformance.cpp
/// \brief Cross-backend conformance: the SAME rank body run under the
///        modeled (threads, in-process mailboxes) and shm (forked
///        processes, shared-memory rings) transports must produce
///        bitwise-identical published payloads AND identical per-rank
///        cost tallies -- msgs, words, flops, and the modeled clock.
///
/// This is the load-bearing guarantee of the transport seam (DESIGN.md
/// section 10): all charging and clock stamping happens in the
/// backend-independent send/recv layer, so switching how bytes move can
/// never move a counter.  Every collective pattern of the tests/rt suite
/// reappears here as a publish-based scenario: blocking collectives,
/// nonblocking requests completed out of order, fp32 wire payloads, p2p
/// bursts, and sub-communicator traffic, each at P in {2, 4}.

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <vector>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/matrix.hpp"
#include "cacqr/lin/matrix_f.hpp"
#include "cacqr/rt/comm.hpp"
#include "cacqr/support/rng.hpp"

namespace cacqr::rt {
namespace {

// fork()ing rank children from a process that runs TSan-instrumented
// threads is unsupported (the child inherits the tool's locked state),
// so the shm side of the comparison is skipped under ThreadSanitizer.
#if defined(__SANITIZE_THREAD__)
#define CACQR_TSAN 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CACQR_TSAN 1
#endif
#endif

bool shm_testable() {
#if defined(CACQR_TSAN)
  return false;
#else
  return transport_available(TransportKind::shm);
#endif
}

/// Distinct alpha/beta/gamma so clock equality is a real constraint.
constexpr Machine kMachine{1e-6, 1e-9, 1e-11};

/// Deterministic per-rank payload.
std::vector<double> payload(int rank, std::size_t n, u64 salt = 0) {
  std::vector<double> v(n);
  Rng rng(static_cast<u64>(rank) * 2166136261ULL + salt + 1);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

/// Runs `body` under both backends and asserts the full RunOutput --
/// published blobs bitwise, every counter field exactly -- agrees.
/// `exact_clock` is false only for bodies with SEVERAL collectives in
/// flight at once: the request engine executes whichever step's message
/// arrived first, so the interleaving (and with it the modeled clock's
/// recv-stamp maxing) is arrival-order dependent across backends -- the
/// same documented schedule freedom as ConcurrentRequestsKeepRawTallies.
/// Results and raw msgs/words/flops tallies stay exact regardless.
void expect_conformant(int p, const std::function<void(Comm&)>& body,
                       bool exact_clock = true) {
  if (!shm_testable()) GTEST_SKIP() << "shm transport not testable here";
  const RunOutput modeled =
      Runtime::run_collect(p, body, kMachine, 0, TransportKind::modeled);
  const RunOutput shm =
      Runtime::run_collect(p, body, kMachine, 0, TransportKind::shm);
  ASSERT_EQ(modeled.counters.size(), shm.counters.size());
  ASSERT_EQ(modeled.published.size(), shm.published.size());
  for (int r = 0; r < p; ++r) {
    const auto i = static_cast<std::size_t>(r);
    const auto& mb = modeled.published[i];
    const auto& sb = shm.published[i];
    ASSERT_EQ(mb.size(), sb.size()) << "rank " << r;
    EXPECT_EQ(0, std::memcmp(mb.data(), sb.data(),
                             mb.size() * sizeof(double)))
        << "published payload differs on rank " << r;
    EXPECT_EQ(modeled.counters[i].msgs, shm.counters[i].msgs)
        << "rank " << r;
    EXPECT_EQ(modeled.counters[i].words, shm.counters[i].words)
        << "rank " << r;
    EXPECT_EQ(modeled.counters[i].flops, shm.counters[i].flops)
        << "rank " << r;
    // Exact equality: the modeled clock is charged identically on every
    // backend (stamps ride the wire; receives max against them).
    if (exact_clock) {
      EXPECT_EQ(modeled.counters[i].time, shm.counters[i].time)
          << "rank " << r;
    }
  }
}

class TransportConformance : public ::testing::TestWithParam<int> {};

TEST_P(TransportConformance, BlockingCollectives) {
  expect_conformant(GetParam(), [](Comm& c) {
    std::vector<double> b = payload(c.rank(), 65, 1);
    c.bcast(b, c.size() - 1);
    std::vector<double> r = payload(c.rank(), 33, 2);
    c.allreduce_sum(r);
    std::vector<double> d = payload(c.rank(), 17, 3);
    c.reduce_sum(d, 0);
    std::vector<double> mine = payload(c.rank(), 9, 4);
    std::vector<double> all(mine.size() * static_cast<std::size_t>(c.size()));
    c.allgather(mine, all);
    c.barrier();
    c.publish(b);
    c.publish(r);
    c.publish(d);
    c.publish(all);
  });
}

TEST_P(TransportConformance, NonblockingOutOfOrderCompletion) {
  expect_conformant(
      GetParam(),
      [](Comm& c) {
        std::vector<double> red = payload(c.rank(), 64, 11);
        std::vector<double> bc = c.rank() == 0
                                     ? payload(0, 32, 12)
                                     : std::vector<double>(32, -1.0);
        Request ra = c.start_allreduce_sum(red);
        Request rb = c.start_bcast(bc, 0);
        rb.wait();  // finish the later request first
        ra.wait();
        c.publish(red);
        c.publish(bc);
      },
      /*exact_clock=*/false);  // two collectives in flight at once
}

TEST_P(TransportConformance, F32WirePayloads) {
  expect_conformant(GetParam(), [](Comm& c) {
    lin::MatrixF odd = lin::MatrixF::uninit(21, 1);  // tail-pad lane rides
    for (i64 i = 0; i < odd.rows(); ++i) {
      odd.data()[i] = static_cast<float>((c.rank() + 1) * (i % 13 - 6));
    }
    c.allreduce_sum_f32(odd.wire());
    lin::MatrixF even = lin::MatrixF::uninit(8, 4);
    for (i64 i = 0; i < 32; ++i) {
      even.data()[i] = static_cast<float>((c.rank() + 2) * (i % 7 - 3));
    }
    c.reduce_sum_f32(even.wire(), 0);
    c.publish(odd.wire());
    c.publish(even.wire());
  });
}

TEST_P(TransportConformance, P2pBurstAndTagSelectivity) {
  expect_conformant(GetParam(), [](Comm& c) {
    const int partner = c.rank() ^ 1;
    std::vector<double> swapped = {static_cast<double>(c.rank()) + 0.5};
    c.sendrecv_swap(partner < c.size() ? partner : c.rank(), 3, swapped);
    c.publish(swapped);
    if (c.size() < 2) return;
    // Ring burst with reversed-tag receives: FIFO per channel plus tag
    // matching out of post order.
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    for (int t = 0; t < 8; ++t) {
      std::vector<double> v = {static_cast<double>(c.rank() * 100 + t)};
      c.send(next, t, v);
    }
    std::vector<double> got(8);
    for (int t = 7; t >= 0; --t) {
      std::vector<double> v(1);
      c.recv(prev, t, v);
      got[static_cast<std::size_t>(t)] = v[0];
    }
    c.publish(got);
  });
}

TEST_P(TransportConformance, SubCommunicatorTraffic) {
  expect_conformant(GetParam(), [](Comm& c) {
    Comm sub = c.split(c.rank() % 2, c.rank());
    std::vector<double> v = payload(c.world_rank(), 25, 21);
    sub.allreduce_sum(v);
    std::vector<double> w = {static_cast<double>(c.rank())};
    c.allreduce_sum(w);
    c.publish(v);
    c.publish(w);
  });
}

TEST_P(TransportConformance, KernelFlopsDrainIdentically) {
  // Local gemm flops recorded by lin:: drain into the tally at the next
  // communication call; the drain accounting must not depend on the
  // backend.
  expect_conformant(GetParam(), [](Comm& c) {
    lin::Matrix a(16, 16), b(16, 16), prod(16, 16);
    lin::matmul(a, b, prod);
    std::vector<double> v = payload(c.rank(), 8, 31);
    c.allreduce_sum(v);
    c.publish(v);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, TransportConformance,
                         ::testing::Values(2, 4));

}  // namespace
}  // namespace cacqr::rt
