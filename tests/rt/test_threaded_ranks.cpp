/// \file test_threaded_ranks.cpp
/// \brief Rank runtime x kernel worker pool interaction: per-rank thread
///        budgets, oversubscription-free division, and the invariant that
///        intra-rank threading never changes cost tallies or results.
///
/// These cases double as the ThreadSanitizer smoke target: P rank threads
/// each drive their own worker team through the packed kernels while
/// exchanging messages, which exercises every cross-thread hand-off in the
/// pool and the mailboxes.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/matrix.hpp"
#include "cacqr/lin/parallel.hpp"
#include "cacqr/rt/comm.hpp"
#include "cacqr/support/rng.hpp"

namespace cacqr::rt {
namespace {

namespace parallel = lin::parallel;

/// Deterministic per-rank panel.
lin::Matrix rank_panel(int rank, i64 m, i64 n) {
  Rng rng(static_cast<u64>(rank) * 2654435761ULL + 17);
  return lin::gaussian(rng, m, n);
}

TEST(ThreadedRanks, ExplicitBudgetReachesEveryRank) {
  const int p = 4;
  std::vector<int> budgets(static_cast<std::size_t>(p), -1);
  Runtime::run(
      p, [&](Comm& c) { budgets[static_cast<std::size_t>(c.rank())] =
                            parallel::thread_budget(); },
      Machine::counting(), 3);
  for (int b : budgets) EXPECT_EQ(b, 3);
}

TEST(ThreadedRanks, DefaultBudgetDividesCallerBudget) {
  const int saved = parallel::thread_budget();
  parallel::set_thread_budget(8);
  std::vector<int> budgets(2, -1);
  Runtime::run(2, [&](Comm& c) {
    budgets[static_cast<std::size_t>(c.rank())] = parallel::thread_budget();
  });
  EXPECT_EQ(budgets[0], 4);
  EXPECT_EQ(budgets[1], 4);
  // The caller's own budget survives a run (including the inline P=1 path).
  EXPECT_EQ(parallel::thread_budget(), 8);
  int inline_budget = -1;
  Runtime::run(1, [&](Comm&) { inline_budget = parallel::thread_budget(); });
  EXPECT_EQ(inline_budget, 8);
  EXPECT_EQ(parallel::thread_budget(), 8);
  parallel::set_thread_budget(saved);
}

/// One CholeskyQR-shaped round per rank: local Gram, allreduce, and a
/// comparison against the single-threaded result.  Returns per-rank final
/// counters so callers can compare tallies across thread budgets.
std::vector<CostCounters> gram_round(int p, int threads_per_rank,
                                     std::vector<lin::Matrix>* results) {
  results->assign(static_cast<std::size_t>(p), lin::Matrix());
  return Runtime::run(
      p,
      [&](Comm& c) {
        const lin::Matrix a = rank_panel(c.rank(), 800, 96);
        lin::Matrix g(96, 96);
        lin::gram(1.0, a, 0.0, g);
        c.allreduce_sum(std::span<double>(
            g.data(), static_cast<std::size_t>(g.size())));
        (*results)[static_cast<std::size_t>(c.rank())] = g;
      },
      Machine::counting(), threads_per_rank);
}

TEST(ThreadedRanks, ThreadingChangesNeitherResultsNorTallies) {
  const int p = 4;
  std::vector<lin::Matrix> r1;
  std::vector<lin::Matrix> r4;
  const auto counters1 = gram_round(p, 1, &r1);
  const auto counters4 = gram_round(p, 4, &r4);
  for (int r = 0; r < p; ++r) {
    const auto& m1 = r1[static_cast<std::size_t>(r)];
    const auto& m4 = r4[static_cast<std::size_t>(r)];
    ASSERT_EQ(m1.size(), m4.size());
    EXPECT_EQ(0, std::memcmp(m1.data(), m4.data(),
                             static_cast<std::size_t>(m1.size()) *
                                 sizeof(double)))
        << "rank " << r;
    EXPECT_EQ(counters1[static_cast<std::size_t>(r)].flops,
              counters4[static_cast<std::size_t>(r)].flops);
    EXPECT_EQ(counters1[static_cast<std::size_t>(r)].msgs,
              counters4[static_cast<std::size_t>(r)].msgs);
    EXPECT_EQ(counters1[static_cast<std::size_t>(r)].words,
              counters4[static_cast<std::size_t>(r)].words);
    EXPECT_EQ(counters1[static_cast<std::size_t>(r)].time,
              counters4[static_cast<std::size_t>(r)].time);
  }
}

TEST(ThreadedRanks, PoolSmokeUnderMessageTraffic) {
  // Many small rounds: pools wake/park while mailboxes churn.  Nothing to
  // assert beyond completion and agreement; TSAN does the real checking.
  const int p = 3;
  Runtime::run(
      p,
      [&](Comm& c) {
        for (int round = 0; round < 5; ++round) {
          const lin::Matrix a = rank_panel(c.rank() + 10 * round, 256, 48);
          lin::Matrix g(48, 48);
          lin::gram(1.0, a, 0.0, g);
          std::vector<double> sum(g.data(),
                                  g.data() + static_cast<std::size_t>(g.size()));
          c.allreduce_sum(sum);
          c.barrier();
        }
      },
      Machine::counting(), 2);
}

}  // namespace
}  // namespace cacqr::rt
