/// \file test_threaded_ranks.cpp
/// \brief Rank runtime x kernel worker pool interaction: per-rank thread
///        budgets, oversubscription-free division, and the invariant that
///        intra-rank threading never changes cost tallies or results.
///
/// These cases double as the ThreadSanitizer smoke target: P rank threads
/// each drive their own worker team through the packed kernels while
/// exchanging messages, which exercises every cross-thread hand-off in the
/// pool and the mailboxes.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/matrix.hpp"
#include "cacqr/lin/parallel.hpp"
#include "cacqr/rt/comm.hpp"
#include "cacqr/support/rng.hpp"

namespace cacqr::rt {
namespace {

namespace parallel = lin::parallel;

/// Deterministic per-rank panel.
lin::Matrix rank_panel(int rank, i64 m, i64 n) {
  Rng rng(static_cast<u64>(rank) * 2654435761ULL + 17);
  return lin::gaussian(rng, m, n);
}

/// Publishes the rank's kernel worker budget (transport-agnostic: the
/// body may run in a forked child).
void publish_budget(Comm& c) {
  const double b[] = {static_cast<double>(parallel::thread_budget())};
  c.publish(b);
}

TEST(ThreadedRanks, ExplicitBudgetReachesEveryRank) {
  const int p = 4;
  const RunOutput out = Runtime::run_collect(
      p, [](Comm& c) { publish_budget(c); }, Machine::counting(), 3);
  ASSERT_EQ(out.published.size(), static_cast<std::size_t>(p));
  for (const auto& blob : out.published) {
    ASSERT_EQ(blob.size(), 1u);
    EXPECT_EQ(blob[0], 3.0);
  }
}

TEST(ThreadedRanks, DefaultBudgetDividesCallerBudget) {
  const int saved = parallel::thread_budget();
  parallel::set_thread_budget(8);
  const RunOutput two =
      Runtime::run_collect(2, [](Comm& c) { publish_budget(c); });
  ASSERT_EQ(two.published.size(), 2u);
  EXPECT_EQ(two.published[0][0], 4.0);
  EXPECT_EQ(two.published[1][0], 4.0);
  // The caller's own budget survives a run (including the inline P=1 path).
  EXPECT_EQ(parallel::thread_budget(), 8);
  const RunOutput one =
      Runtime::run_collect(1, [](Comm& c) { publish_budget(c); });
  ASSERT_EQ(one.published.size(), 1u);
  EXPECT_EQ(one.published[0][0], 8.0);
  EXPECT_EQ(parallel::thread_budget(), 8);
  parallel::set_thread_budget(saved);
}

/// One CholeskyQR-shaped round per rank: local Gram, allreduce, and a
/// comparison against the single-threaded result.  Each rank publishes
/// its reduced Gram block; the per-rank blobs and final counters come
/// back through run_collect so callers can compare across thread budgets.
RunOutput gram_round(int p, int threads_per_rank) {
  return Runtime::run_collect(
      p,
      [&](Comm& c) {
        const lin::Matrix a = rank_panel(c.rank(), 800, 96);
        lin::Matrix g(96, 96);
        lin::gram(1.0, a, 0.0, g);
        c.allreduce_sum(std::span<double>(
            g.data(), static_cast<std::size_t>(g.size())));
        c.publish(std::span<const double>(
            g.data(), static_cast<std::size_t>(g.size())));
      },
      Machine::counting(), threads_per_rank);
}

TEST(ThreadedRanks, ThreadingChangesNeitherResultsNorTallies) {
  const int p = 4;
  const RunOutput run1 = gram_round(p, 1);
  const RunOutput run4 = gram_round(p, 4);
  const auto& counters1 = run1.counters;
  const auto& counters4 = run4.counters;
  for (int r = 0; r < p; ++r) {
    const auto& m1 = run1.published[static_cast<std::size_t>(r)];
    const auto& m4 = run4.published[static_cast<std::size_t>(r)];
    ASSERT_EQ(m1.size(), m4.size());
    EXPECT_EQ(0, std::memcmp(m1.data(), m4.data(),
                             m1.size() * sizeof(double)))
        << "rank " << r;
    EXPECT_EQ(counters1[static_cast<std::size_t>(r)].flops,
              counters4[static_cast<std::size_t>(r)].flops);
    EXPECT_EQ(counters1[static_cast<std::size_t>(r)].msgs,
              counters4[static_cast<std::size_t>(r)].msgs);
    EXPECT_EQ(counters1[static_cast<std::size_t>(r)].words,
              counters4[static_cast<std::size_t>(r)].words);
    EXPECT_EQ(counters1[static_cast<std::size_t>(r)].time,
              counters4[static_cast<std::size_t>(r)].time);
  }
}

TEST(ThreadedRanks, PoolSmokeUnderMessageTraffic) {
  // Many small rounds: pools wake/park while mailboxes churn.  Nothing to
  // assert beyond completion and agreement; TSAN does the real checking.
  const int p = 3;
  Runtime::run(
      p,
      [&](Comm& c) {
        for (int round = 0; round < 5; ++round) {
          const lin::Matrix a = rank_panel(c.rank() + 10 * round, 256, 48);
          lin::Matrix g(48, 48);
          lin::gram(1.0, a, 0.0, g);
          std::vector<double> sum(g.data(),
                                  g.data() + static_cast<std::size_t>(g.size()));
          c.allreduce_sum(sum);
          c.barrier();
        }
      },
      Machine::counting(), 2);
}

}  // namespace
}  // namespace cacqr::rt
