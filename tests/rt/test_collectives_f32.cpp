/// \file test_collectives_f32.cpp
/// \brief The fp32-payload collectives: allreduce/reduce over float pairs
///        riding whole 8-byte wire words (lin::MatrixF::wire()), odd-tail
///        padding, the halved-beta counter claim, the nonblocking flavor,
///        and the fp32 kernels' closed-form flop accounting.

#include <gtest/gtest.h>

#include <vector>

#include "cacqr/lin/blas_f.hpp"
#include "cacqr/lin/matrix_f.hpp"
#include "cacqr/rt/comm.hpp"
#include "cacqr/support/math.hpp"

namespace cacqr::rt {
namespace {

/// Deterministic per-rank fp32 payload of small integers: sums over any
/// realistic rank count are exactly representable in fp32, so the
/// butterfly's summation order cannot show through and results can be
/// checked with EXPECT_EQ.
lin::MatrixF payload_f32(int rank, i64 rows, i64 cols, int salt = 0) {
  lin::MatrixF f = lin::MatrixF::uninit(rows, cols);
  for (i64 i = 0; i < rows * cols; ++i) {
    f.data()[i] =
        static_cast<float>((rank + 1) * ((i + salt) % 13 - 6));
  }
  return f;
}

class F32CollectiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(F32CollectiveSweep, AllreduceSumsFloatsEverywhere) {
  const int p = GetParam();
  // Odd float counts (7x3, 1x1) force the zeroed tail-pad lane; 8x4 is
  // the even case.
  for (const auto& [rows, cols] :
       {std::pair<i64, i64>{7, 3}, {8, 4}, {1, 1}}) {
    std::vector<float> expect(static_cast<std::size_t>(rows * cols), 0.0f);
    for (int r = 0; r < p; ++r) {
      const lin::MatrixF v = payload_f32(r, rows, cols);
      for (i64 i = 0; i < rows * cols; ++i) {
        expect[static_cast<std::size_t>(i)] += v.data()[i];
      }
    }
    Runtime::run(p, [&](Comm& c) {
      lin::MatrixF mine = payload_f32(c.rank(), rows, cols);
      c.allreduce_sum_f32(mine.wire());
      for (i64 i = 0; i < rows * cols; ++i) {
        EXPECT_EQ(mine.data()[i], expect[static_cast<std::size_t>(i)])
            << "p=" << p << " shape=" << rows << "x" << cols << " i=" << i;
      }
    });
  }
}

TEST_P(F32CollectiveSweep, OddTailPadStaysZero) {
  // wire() zeroes the pad float of an odd-sized payload before shipping;
  // every rank contributes 0 there, so the reduced pad must still be 0
  // (and in particular not uninitialized garbage).
  const int p = GetParam();
  const i64 n = 21;  // odd: floats n..n rides the last word's upper lane
  Runtime::run(p, [&](Comm& c) {
    lin::MatrixF mine = payload_f32(c.rank(), n, 1);
    c.allreduce_sum_f32(mine.wire());
    EXPECT_EQ(mine.data()[n], 0.0f) << "p=" << p;
  });
}

TEST_P(F32CollectiveSweep, ReduceMatchesAllreduceOnRoot) {
  const int p = GetParam();
  const i64 n = 19;
  std::vector<float> expect(static_cast<std::size_t>(n), 0.0f);
  for (int r = 0; r < p; ++r) {
    const lin::MatrixF v = payload_f32(r, n, 1, 5);
    for (i64 i = 0; i < n; ++i) {
      expect[static_cast<std::size_t>(i)] += v.data()[i];
    }
  }
  Runtime::run(p, [&](Comm& c) {
    lin::MatrixF mine = payload_f32(c.rank(), n, 1, 5);
    c.reduce_sum_f32(mine.wire(), p - 1);
    if (c.rank() == p - 1) {
      for (i64 i = 0; i < n; ++i) {
        EXPECT_EQ(mine.data()[i], expect[static_cast<std::size_t>(i)])
            << "p=" << p << " i=" << i;
      }
    }
  });
}

TEST_P(F32CollectiveSweep, NonblockingMatchesBlocking) {
  const int p = GetParam();
  const i64 n = 33;
  Runtime::run(p, [&](Comm& c) {
    lin::MatrixF blocking = payload_f32(c.rank(), n, 1, 9);
    lin::MatrixF nonblocking = payload_f32(c.rank(), n, 1, 9);
    c.allreduce_sum_f32(blocking.wire());
    Request req = c.start_allreduce_sum_f32(nonblocking.wire());
    req.wait();
    for (i64 i = 0; i < n; ++i) {
      EXPECT_EQ(nonblocking.data()[i], blocking.data()[i])
          << "p=" << p << " i=" << i;
    }
  });
}

// Power-of-two and awkward non-power-of-two communicator sizes, the same
// sweep the fp64 collectives run (exercises the fold paths).
INSTANTIATE_TEST_SUITE_P(Sizes, F32CollectiveSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 11, 16));

TEST(F32CostTest, AllreduceChargesHalfTheBetaOfFp64) {
  // The point of the wire-word representation: an fp32 allreduce of 2k
  // floats moves exactly the words (and messages) of an fp64 allreduce
  // of k doubles -- the halved beta falls out of the existing counters.
  for (const int p : {2, 4, 8}) {
    const i64 floats = 1 << 11;
    const i64 words = floats / 2;
    const CostCounters c32 = max_counters(Runtime::run(p, [&](Comm& c) {
      lin::MatrixF v(floats, 1);
      c.allreduce_sum_f32(v.wire());
    }));
    const CostCounters c64 = max_counters(Runtime::run(p, [&](Comm& c) {
      std::vector<double> v(static_cast<std::size_t>(words), 0.0);
      c.allreduce_sum(v);
    }));
    EXPECT_EQ(c32.msgs, c64.msgs) << "p=" << p;
    EXPECT_EQ(c32.words, c64.words) << "p=" << p;
    EXPECT_EQ(c32.msgs, 2 * ceil_log2(p)) << "p=" << p;
  }
}

TEST(F32CostTest, KernelsChargeClosedFormFp64Flops) {
  // blas_f.hpp's accounting contract: the fp32 kernels charge the SAME
  // closed-form flop counts as their fp64 twins (gamma counts
  // operations; the cheaper fp32 rate is a machine property).
  auto per_rank = Runtime::run(1, [](Comm& c) {
    lin::MatrixF a(8, 8);
    lin::MatrixF b(8, 8);
    lin::MatrixF out(8, 8);
    lin::gemm_f32(lin::Trans::N, lin::Trans::N, 1.0f, a, b, 0.0f, out);
    lin::MatrixF t(8, 4);
    lin::MatrixF g(4, 4);
    lin::gram_f32(1.0f, t, 0.0f, g);
    c.barrier();  // drains the thread-local tally
  });
  // gemm: 2*8^3 = 1024; gram: m*n*(n+1) = 8*4*5 = 160.
  EXPECT_EQ(per_rank[0].flops, 1024 + 160);
}

}  // namespace
}  // namespace cacqr::rt
