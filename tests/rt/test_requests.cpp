/// \file test_requests.cpp
/// \brief The nonblocking request engine: wait(start_*) must be bit-for-bit
///        the blocking collective (results, msgs/words/flops tallies, AND
///        the modeled clock), concurrent requests must complete out of
///        order (even rank-dependent order) without deadlock, and progress
///        must advance an in-flight collective underneath local work.

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <vector>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/matrix.hpp"
#include "cacqr/lin/util.hpp"
#include "cacqr/rt/comm.hpp"
#include "cacqr/support/rng.hpp"

namespace cacqr::rt {
namespace {

/// Deterministic per-rank payload so every rank can compute the expected
/// reduction/concatenation locally.
std::vector<double> payload(int rank, std::size_t n, u64 salt = 0) {
  std::vector<double> v(n);
  Rng rng(static_cast<u64>(rank) * 1315423911ULL + salt + 1);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

/// Machine with distinct alpha/beta/gamma so clock equality is a real
/// constraint, not 0 == 0.
constexpr Machine kMachine{1e-6, 1e-9, 1e-11};

struct ParityRun {
  std::vector<std::vector<double>> data;  ///< per-rank final buffer
  std::vector<CostCounters> counters;     ///< per-rank final tallies
};

/// Runs `body(comm, data)` on p ranks under kMachine; data starts as the
/// rank's payload.  A small gemm precedes the communication so pending
/// kernel-flop drains interact with the clock exactly as on the real hot
/// paths.  Results come back via Comm::publish so the comparison works on
/// every transport backend.
ParityRun run_p(int p, std::size_t n, u64 salt,
                const std::function<void(Comm&, std::vector<double>&)>& body) {
  RunOutput raw = Runtime::run_collect(
      p,
      [&](Comm& c) {
        lin::Matrix a(8, 8), b(8, 8), prod(8, 8);
        lin::matmul(a, b, prod);  // pending flops drained by the collective
        std::vector<double> data = payload(c.rank(), n, salt);
        body(c, data);
        c.publish(data);
      },
      kMachine);
  return {std::move(raw.published), std::move(raw.counters)};
}

void expect_identical(const ParityRun& blocking, const ParityRun& request,
                      int p) {
  for (int r = 0; r < p; ++r) {
    const auto i = static_cast<std::size_t>(r);
    EXPECT_EQ(blocking.data[i], request.data[i]) << "rank " << r;
    EXPECT_EQ(blocking.counters[i].msgs, request.counters[i].msgs)
        << "rank " << r;
    EXPECT_EQ(blocking.counters[i].words, request.counters[i].words)
        << "rank " << r;
    EXPECT_EQ(blocking.counters[i].flops, request.counters[i].flops)
        << "rank " << r;
    // Exact: the request engine executes the identical charge sequence.
    EXPECT_EQ(blocking.counters[i].time, request.counters[i].time)
        << "rank " << r;
  }
}

class RequestParity : public ::testing::TestWithParam<int> {};

TEST_P(RequestParity, BcastWaitStartMatchesBlocking) {
  const int p = GetParam();
  for (const std::size_t n : {std::size_t{1}, std::size_t{17}, std::size_t{256}}) {
    const int root = p / 2;
    auto blocking = run_p(p, n, 71, [&](Comm& c, std::vector<double>& d) {
      c.bcast(d, root);
    });
    auto request = run_p(p, n, 71, [&](Comm& c, std::vector<double>& d) {
      Request r = c.start_bcast(d, root);
      r.wait();
    });
    expect_identical(blocking, request, p);
  }
}

TEST_P(RequestParity, AllreduceWaitStartMatchesBlocking) {
  const int p = GetParam();
  for (const std::size_t n : {std::size_t{1}, std::size_t{13}, std::size_t{200}}) {
    auto blocking = run_p(p, n, 72, [&](Comm& c, std::vector<double>& d) {
      c.allreduce_sum(d);
    });
    auto request = run_p(p, n, 72, [&](Comm& c, std::vector<double>& d) {
      Request r = c.start_allreduce_sum(d);
      r.wait();
    });
    expect_identical(blocking, request, p);
  }
}

TEST_P(RequestParity, AllgatherWaitStartMatchesBlocking) {
  const int p = GetParam();
  const std::size_t n = 37;
  auto gather_body = [&](Comm& c, std::vector<double>& d, bool use_request) {
    std::vector<double> all(n * static_cast<std::size_t>(p));
    if (use_request) {
      Request r = c.start_allgather(d, all);
      r.wait();
    } else {
      c.allgather(d, all);
    }
    d = std::move(all);
  };
  auto blocking = run_p(p, n, 73, [&](Comm& c, std::vector<double>& d) {
    gather_body(c, d, false);
  });
  auto request = run_p(p, n, 73, [&](Comm& c, std::vector<double>& d) {
    gather_body(c, d, true);
  });
  expect_identical(blocking, request, p);
}

TEST_P(RequestParity, SendrecvSwapWaitStartMatchesBlocking) {
  const int p = GetParam();
  const std::size_t n = 50;
  // Pair neighbors; odd p leaves the last rank (and p == 1 everyone)
  // swapping with itself, the documented no-op.
  auto partner_of = [p](int r) {
    const int q = r ^ 1;
    return q < p ? q : r;
  };
  auto blocking = run_p(p, n, 74, [&](Comm& c, std::vector<double>& d) {
    c.sendrecv_swap(partner_of(c.rank()), 9, d);
  });
  auto request = run_p(p, n, 74, [&](Comm& c, std::vector<double>& d) {
    Request r = c.start_sendrecv_swap(partner_of(c.rank()), 9, d);
    r.wait();
  });
  expect_identical(blocking, request, p);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RequestParity,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8));

TEST(RequestTest, OutOfOrderCompletionSameComm) {
  // Two requests in flight on one communicator, completed in the opposite
  // order they were started.
  const int p = 4;
  Runtime::run(p, [&](Comm& c) {
    std::vector<double> red = payload(c.rank(), 64, 81);
    std::vector<double> bc = c.rank() == 1 ? payload(1, 32, 82)
                                           : std::vector<double>(32, -1.0);
    Request ra = c.start_allreduce_sum(red);
    Request rb = c.start_bcast(bc, 1);
    rb.wait();  // finish the later request first
    ra.wait();

    std::vector<double> expect_red(64, 0.0);
    for (int r = 0; r < p; ++r) {
      auto v = payload(r, 64, 81);
      for (std::size_t i = 0; i < v.size(); ++i) expect_red[i] += v[i];
    }
    for (std::size_t i = 0; i < expect_red.size(); ++i) {
      EXPECT_NEAR(red[i], expect_red[i], 1e-12 * p);
    }
    EXPECT_EQ(bc, payload(1, 32, 82));
  });
}

TEST(RequestTest, RankDependentWaitOrder) {
  // Even ranks wait A then B, odd ranks B then A: a rank blocked on one
  // collective must still drive its share of the other (wait drives all
  // in-flight requests), or this deadlocks.
  const int p = 8;
  Runtime::run(p, [&](Comm& c) {
    std::vector<double> a = payload(c.rank(), 48, 91);
    std::vector<double> b = payload(c.rank(), 48, 92);
    Request ra = c.start_allreduce_sum(a);
    Request rb = c.start_allreduce_sum(b);
    if (c.rank() % 2 == 0) {
      ra.wait();
      rb.wait();
    } else {
      rb.wait();
      ra.wait();
    }
    std::vector<double> ea(48, 0.0), eb(48, 0.0);
    for (int r = 0; r < p; ++r) {
      auto va = payload(r, 48, 91);
      auto vb = payload(r, 48, 92);
      for (std::size_t i = 0; i < 48; ++i) {
        ea[i] += va[i];
        eb[i] += vb[i];
      }
    }
    for (std::size_t i = 0; i < 48; ++i) {
      EXPECT_NEAR(a[i], ea[i], 1e-12 * p);
      EXPECT_NEAR(b[i], eb[i], 1e-12 * p);
    }
  });
}

TEST(RequestTest, ConcurrentRequestsKeepRawTallies) {
  // msgs/words/flops are per-step sums, so completing two collectives
  // through interleaved progress must tally exactly like back-to-back
  // blocking calls (the modeled clock may differ: flop drains interleave
  // with recv stamps differently, which is the documented overlap
  // semantics).
  const int p = 4;
  const std::size_t n = 96;
  auto blocking = run_p(p, n, 101, [&](Comm& c, std::vector<double>& d) {
    std::vector<double> e = payload(c.rank(), n, 102);
    c.allreduce_sum(d);
    c.allreduce_sum(e);
  });
  auto overlapped = run_p(p, n, 101, [&](Comm& c, std::vector<double>& d) {
    std::vector<double> e = payload(c.rank(), n, 102);
    Request ra = c.start_allreduce_sum(d);
    Request rb = c.start_allreduce_sum(e);
    rb.wait();
    ra.wait();
  });
  for (int r = 0; r < p; ++r) {
    const auto i = static_cast<std::size_t>(r);
    EXPECT_EQ(blocking.data[i], overlapped.data[i]);
    EXPECT_EQ(blocking.counters[i].msgs, overlapped.counters[i].msgs);
    EXPECT_EQ(blocking.counters[i].words, overlapped.counters[i].words);
    EXPECT_EQ(blocking.counters[i].flops, overlapped.counters[i].flops);
  }
}

TEST(RequestTest, BlockingCollectiveWhileRequestInFlight) {
  // A blocking collective issued between start and wait: its internal
  // wait loop must drive the older request's steps too.
  const int p = 4;
  Runtime::run(p, [&](Comm& c) {
    std::vector<double> a = payload(c.rank(), 40, 111);
    std::vector<double> b = payload(c.rank(), 24, 112);
    Request ra = c.start_allreduce_sum(a);
    c.allreduce_sum(b);  // blocking, younger
    ra.wait();
    std::vector<double> ea(40, 0.0);
    for (int r = 0; r < p; ++r) {
      auto v = payload(r, 40, 111);
      for (std::size_t i = 0; i < 40; ++i) ea[i] += v[i];
    }
    for (std::size_t i = 0; i < 40; ++i) EXPECT_NEAR(a[i], ea[i], 1e-12 * p);
  });
}

TEST(RequestTest, TestPollsToCompletion) {
  const int p = 4;
  Runtime::run(p, [&](Comm& c) {
    std::vector<double> v = {static_cast<double>(c.rank())};
    Request r = c.start_allreduce_sum(v);
    while (!r.test()) {
    }
    EXPECT_DOUBLE_EQ(v[0], 6.0);  // 0+1+2+3
    EXPECT_TRUE(r.test());        // idempotent once done
  });
}

TEST(RequestTest, TestObservesAbort) {
  // A rank polling test() while its partner dies must unwind via
  // AbortError (like a blocked wait), not spin forever on a Recv step
  // that can never be satisfied; the run rethrows the original error.
  EXPECT_THROW(
      Runtime::run(2,
                   [](Comm& c) {
                     if (c.rank() == 1) {
                       throw std::runtime_error("rank 1 failed");
                     }
                     std::vector<double> v(8, 1.0);
                     Request r = c.start_allreduce_sum(v);
                     while (!r.test()) {
                     }
                   }),
      std::runtime_error);
}

TEST(RequestTest, FailedStepPoisonsRequest) {
  // Mismatched bcast payload sizes: the non-root's scatter Recv consumes
  // a wrong-size message and throws CommError.  The poisoned request
  // must not retry the step (the message is gone) and the run surfaces
  // the original error.
  EXPECT_THROW(Runtime::run(2,
                            [](Comm& c) {
                              std::vector<double> v(c.rank() == 0 ? 8 : 6,
                                                    1.0);
                              c.bcast(v, 0);
                            }),
               CommError);
}

TEST(RequestTest, FailedStepWithAnotherRequestInFlight) {
  // The same failure while an unrelated request is in flight: the
  // failing start/wait must unregister its own state (no dangling entry
  // for the destructor drains to chase) and the healthy request still
  // completes during teardown.
  EXPECT_THROW(Runtime::run(2,
                            [](Comm& c) {
                              std::vector<double> ok(16, 1.0);
                              Request r1 = c.start_allreduce_sum(ok);
                              std::vector<double> bad(c.rank() == 0 ? 8 : 6,
                                                      1.0);
                              c.bcast(bad, 0);
                              r1.wait();
                            }),
               CommError);
}

TEST(RequestTest, DroppedRequestCompletesInDestructor) {
  // A handle destroyed without wait() must complete the collective (the
  // partners' schedules depend on our steps).
  const int p = 4;
  Runtime::run(p, [&](Comm& c) {
    std::vector<double> v(16, c.rank() == 2 ? 5.0 : 0.0);
    { Request r = c.start_bcast(v, 2); }
    for (const double x : v) EXPECT_DOUBLE_EQ(x, 5.0);
  });
}

TEST(RequestTest, TrivialRequestsAreImmediatelyDone) {
  Runtime::run(1, [](Comm& c) {
    std::vector<double> v = {1.0};
    Request r = c.start_allreduce_sum(v);
    EXPECT_TRUE(r.valid());
    EXPECT_TRUE(r.test());
    r.wait();
    EXPECT_DOUBLE_EQ(v[0], 1.0);
  });
  Runtime::run(2, [](Comm& c) {
    std::vector<double> empty;
    Request r = c.start_bcast(empty, 0);
    EXPECT_TRUE(r.test());
    Request self = c.start_sendrecv_swap(c.rank(), 3, empty);
    EXPECT_TRUE(self.test());
  });
}

TEST(RequestTest, ProgressScopeAdvancesRequestDuringCopy) {
  // The overlap pattern of the dist/core hot paths: a threaded staging
  // copy between start and wait, with ProgressScope polling in between.
  const int p = 4;
  Runtime::run(
      p,
      [&](Comm& c) {
        std::vector<double> v = payload(c.rank(), 512, 121);
        Request r = c.start_allreduce_sum(v);
        const lin::Matrix src = lin::Matrix::identity(128);
        lin::Matrix dst = lin::Matrix::uninit(128, 128);
        {
          ProgressScope scope(c);
          lin::copy(src, dst);
        }
        r.wait();
        EXPECT_TRUE(src == dst);
        std::vector<double> expect(512, 0.0);
        for (int rr = 0; rr < p; ++rr) {
          auto w = payload(rr, 512, 121);
          for (std::size_t i = 0; i < w.size(); ++i) expect[i] += w[i];
        }
        for (std::size_t i = 0; i < expect.size(); ++i) {
          EXPECT_NEAR(v[i], expect[i], 1e-12 * p);
        }
      },
      Machine::counting(), 4);
}

TEST(RequestTest, RequestsOnSubCommunicators) {
  Runtime::run(8, [](Comm& c) {
    Comm sub = c.split(c.rank() % 2, c.rank());
    std::vector<double> v = {1.0};
    std::vector<double> w = {static_cast<double>(c.rank())};
    Request rs = sub.start_allreduce_sum(v);
    Request rw = c.start_allreduce_sum(w);
    rw.wait();
    rs.wait();
    EXPECT_DOUBLE_EQ(v[0], 4.0);
    EXPECT_DOUBLE_EQ(w[0], 28.0);
  });
}

}  // namespace
}  // namespace cacqr::rt
